file(REMOVE_RECURSE
  "libhd_apps.a"
)
