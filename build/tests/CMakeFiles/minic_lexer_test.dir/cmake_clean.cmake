file(REMOVE_RECURSE
  "CMakeFiles/minic_lexer_test.dir/minic_lexer_test.cc.o"
  "CMakeFiles/minic_lexer_test.dir/minic_lexer_test.cc.o.d"
  "minic_lexer_test"
  "minic_lexer_test.pdb"
  "minic_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
