#include "gpurt/records.h"

namespace hd::gpurt {

std::vector<Record> LocateRecords(std::string_view data) {
  std::vector<Record> out;
  std::int64_t start = 0;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(data.size()); ++i) {
    if (data[i] == '\n') {
      out.push_back(Record{start, i - start + 1});
      start = i + 1;
    }
  }
  if (start < static_cast<std::int64_t>(data.size())) {
    out.push_back(
        Record{start, static_cast<std::int64_t>(data.size()) - start});
  }
  return out;
}

void ChargeLocateKernel(gpusim::KernelSim& kernel, std::int64_t input_bytes) {
  kernel.DistributeUnits(
      input_bytes, [&kernel](int b, int t, std::int64_t bytes) {
        // Contiguous chunk scan with vector loads.
        kernel.ChargeGlobalBytes(b, t, bytes, /*vectorized=*/true,
                                 /*granule_bytes=*/bytes);
        kernel.ChargeOp(b, t, minic::OpClass::kIntAlu, (bytes + 3) / 4);
      });
}

}  // namespace hd::gpurt
