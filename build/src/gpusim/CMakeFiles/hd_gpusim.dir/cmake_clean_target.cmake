file(REMOVE_RECURSE
  "libhd_gpusim.a"
)
