#include "analysis/analyzer.h"

#include "analysis/passes.h"
#include "minic/lexer.h"
#include "minic/parser.h"

namespace hd::analysis {

const char* PlacementName(Placement p) {
  switch (p) {
    case Placement::kConstant: return "constant";
    case Placement::kGlobal: return "global";
    case Placement::kTexture: return "texture";
    case Placement::kFirstPrivate: return "firstprivate";
    case Placement::kPrivate: return "private";
  }
  return "?";
}

namespace {

bool ClauseNames(const minic::Directive& dir, const char* clause,
                 const std::string& name) {
  auto it = dir.clauses.find(clause);
  if (it == dir.clauses.end()) return false;
  for (const auto& arg : it->second) {
    if (arg == name) return true;
  }
  return false;
}

}  // namespace

// Keep in lockstep with translator::ClassifyVariables (Algorithm 1): the
// translator derives its VarClass from this decision, and a test pins the
// two against each other over every benchmark source.
PlacementDecision ClassifyPlacement(const std::string& name,
                                    const RegionContext& rc,
                                    const AnalyzerOptions& opts) {
  const minic::Directive& dir = *rc.directive;
  const minic::Type& t = rc.info.outer_types.at(name);
  if (ClauseNames(dir, "texture", name)) {
    return {Placement::kTexture,
            "texture(...) clause: read-only, served by the texture cache"};
  }
  if (ClauseNames(dir, "sharedRO", name)) {
    if (t.IsScalarValue()) {
      return {Placement::kConstant,
              "sharedRO scalar: passed as a kernel parameter (constant "
              "memory)"};
    }
    return {Placement::kGlobal,
            "sharedRO array: copied once into device global memory"};
  }
  if (ClauseNames(dir, "firstprivate", name)) {
    return {Placement::kFirstPrivate,
            "firstprivate(...) clause: per-thread copy initialised from the "
            "host value"};
  }
  if (opts.auto_firstprivate && rc.info.read_before_write.count(name)) {
    return {Placement::kFirstPrivate,
            "read before written in the region: automatic firstprivate "
            "detection (paper §3.2)"};
  }
  return {Placement::kPrivate,
          "written before any read: uninitialised per-thread copy"};
}

int KvSlotBytes(const minic::Type& t, int declared_len, int int_text_bytes,
                int double_text_bytes) {
  using minic::Scalar;
  if (declared_len > 0) {
    // keylength/vallength count elements of the emitted variable.
    const std::int64_t elem =
        t.is_array || t.is_pointer ? minic::ScalarSize(t.scalar) : 1;
    // char arrays: length == bytes; numeric: render as text.
    if (t.scalar == Scalar::kChar && (t.is_array || t.is_pointer)) {
      return declared_len;
    }
    if (!t.is_array && !t.is_pointer) {
      return t.IsFloating() ? double_text_bytes : int_text_bytes;
    }
    return static_cast<int>(declared_len * elem);
  }
  if (t.scalar == Scalar::kChar && t.is_array) {
    return static_cast<int>(t.array_size);
  }
  if (t.IsFloating()) return double_text_bytes;
  return int_text_bytes;
}

void RunPasses(const minic::TranslationUnit& unit, const AnalyzerOptions& opts,
               AnalysisResult* result) {
  using minic::Directive;
  DiagnosticEngine& de = result->diags;
  const std::string& file = opts.source_name;

  const minic::FunctionDef* main_fn = unit.FindFunction("main");
  for (const auto& fn : unit.functions) {
    if (fn.get() == main_fn) continue;
    for (const minic::Stmt* r : minic::FindAllDirectiveRegions(*fn)) {
      de.Warning("HD113", "directive-check", file, r->directive->line, 0,
                 "mapreduce directive in function '" + fn->name +
                     "' is ignored: the translator only offloads regions in "
                     "main()",
                 "move the annotated region into main()");
    }
  }
  if (main_fn == nullptr) {
    Diagnostic d;
    d.severity = opts.require_directive ? Severity::kError : Severity::kWarning;
    d.id = "HD101";
    d.pass = "directive-check";
    d.file = file;
    d.message = "program has no main() function";
    d.hint = "HeteroDoop filters are whole programs with a main() entry";
    de.Add(std::move(d));
    return;
  }

  bool seen_map = false, seen_combine = false;
  for (const minic::Stmt* r : minic::FindAllDirectiveRegions(*main_fn)) {
    const bool is_map = r->directive->kind == Directive::Kind::kMapper;
    bool& seen = is_map ? seen_map : seen_combine;
    if (seen) {
      de.Warning("HD114", "directive-check", file, r->directive->line, 0,
                 std::string("duplicate ") + (is_map ? "mapper" : "combiner") +
                     " directive is ignored: the translator uses the first "
                     "one only",
                 "merge the regions or remove the extra directive");
      continue;
    }
    seen = true;
    RegionContext rc;
    rc.fn = main_fn;
    rc.region = r;
    rc.directive = r->directive.get();
    rc.info = minic::AnalyzeRegion(*main_fn, *r);
    result->regions.push_back(std::move(rc));
  }
  if (result->regions.empty()) {
    Diagnostic d;
    d.severity = opts.require_directive ? Severity::kError : Severity::kNote;
    d.id = "HD102";
    d.pass = "directive-check";
    d.file = file;
    d.message = "no mapreduce directive found in main()";
    d.hint = "annotate the record loop with #pragma mapreduce mapper "
             "key(...) value(...)";
    de.Add(std::move(d));
  }

  const PassContext ctx{&unit, &opts, &result->regions};
  RunDirectiveCheck(ctx, &de);
  RunRaceCheck(ctx, &de);
  RunKvBounds(ctx, &de);
  RunPlacementAudit(ctx, &de);
  RunPortability(ctx, &de);
  de.SortBySource();
}

AnalysisResult AnalyzeSource(const std::string& source,
                             const AnalyzerOptions& opts) {
  AnalysisResult result;
  try {
    result.unit = minic::Parse(source);
  } catch (const std::exception& e) {
    result.diags.Error("HD001", "parse", opts.source_name, 0, 0,
                       std::string("cannot parse source: ") + e.what());
    return result;
  }
  RunPasses(*result.unit, opts, &result);
  return result;
}

}  // namespace hd::analysis
