// Minimal JSON support shared by the trace/metrics exporters and the
// schema-validation tests: a deterministic streaming writer (shortest
// round-trip number formatting via std::to_chars, locale-independent) and a
// small recursive-descent parser producing a Value tree.
//
// Determinism matters here: two runs of the same seeded simulation must
// serialize byte-identical documents, so the writer never consults locale,
// pointer values, or iteration order of unordered containers.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hd::json {

// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string Escape(std::string_view s);

// Formats a finite double with the shortest representation that parses back
// to the same value. HD_CHECKs that `v` is finite (JSON has no inf/nan).
std::string FormatNumber(double v);

// Streaming writer with automatic comma/colon placement. Usage:
//   Writer w(os);
//   w.BeginObject(); w.Key("rows"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();
  Writer& Key(std::string_view k);
  Writer& String(std::string_view v);
  Writer& Int(std::int64_t v);
  Writer& Number(double v);
  Writer& Bool(bool v);
  Writer& Null();

 private:
  void BeforeValue();

  std::ostream& os_;
  // One entry per open container: is_object and whether a value has been
  // emitted at this level yet (comma placement).
  struct Level {
    bool is_object = false;
    bool has_value = false;
    bool key_pending = false;
  };
  std::vector<Level> stack_;
};

// Parsed JSON value. Objects keep insertion (document) order.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // First member named `key`, or nullptr. Objects only.
  const Value* Find(std::string_view key) const;
};

// Parses one complete JSON document; throws std::runtime_error (with the
// byte offset) on malformed input or trailing garbage.
Value Parse(std::string_view text);

}  // namespace hd::json
