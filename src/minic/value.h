// Runtime values and the memory model for the mini-C interpreter.
//
// Every variable — scalar or array — is backed by a MemObject. Pointers are
// (object, element-index) pairs, which gives us bounds checking for free and
// lets the GPU cost model attribute every access to a memory space.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "minic/types.h"

namespace hd::minic {

// Where an object lives, for cost attribution. Host objects are ordinary
// CPU memory; the device spaces mirror the CUDA hierarchy the paper uses.
enum class MemSpace : std::uint8_t {
  kHost,
  kDeviceGlobal,
  kDeviceShared,
  kDeviceConstant,
  kDeviceTexture,
  kDeviceLocal,  // registers / per-thread private storage
};

struct Ptr;

// A contiguous typed allocation. Elements are stored widened (int64 for
// integral scalars, double for floating scalars). A MemObject can also be a
// "pointer cell" array, backing pointer-typed variables and parameters.
class MemObject {
 public:
  struct PtrCellTag {};

  MemObject(std::string name, Scalar elem, std::int64_t count,
            MemSpace space)
      : name_(std::move(name)), elem_(elem), space_(space) {
    HD_CHECK(count >= 0);
    if (IsFloatElem()) {
      f_.assign(static_cast<std::size_t>(count), 0.0);
    } else {
      i_.assign(static_cast<std::size_t>(count), 0);
    }
  }

  MemObject(std::string name, PtrCellTag, std::int64_t count, MemSpace space);

  const std::string& name() const { return name_; }
  Scalar elem() const { return elem_; }
  MemSpace space() const { return space_; }
  void set_space(MemSpace s) { space_ = s; }
  bool is_ptr_cell() const { return is_ptr_cell_; }
  bool IsFloatElem() const {
    return elem_ == Scalar::kFloat || elem_ == Scalar::kDouble;
  }
  std::int64_t size() const {
    if (is_ptr_cell_) return static_cast<std::int64_t>(p_.size());
    return static_cast<std::int64_t>(IsFloatElem() ? f_.size() : i_.size());
  }
  std::int64_t elem_bytes() const {
    return is_ptr_cell_ ? 8 : ScalarSize(elem_);
  }

  void CheckIndex(std::int64_t idx) const {
    HD_CHECK_MSG(!freed_, "use after free of '" << name_ << "'");
    HD_CHECK_MSG(idx >= 0 && idx < size(),
                 "out-of-bounds access to '" << name_ << "' index " << idx
                                             << " (size " << size() << ")");
  }

  std::int64_t LoadInt(std::int64_t idx) const {
    HD_CHECK_MSG(!is_ptr_cell_, "data access to pointer cell '" << name_ << "'");
    CheckIndex(idx);
    return IsFloatElem() ? static_cast<std::int64_t>(f_[idx]) : i_[idx];
  }
  double LoadFloat(std::int64_t idx) const {
    CheckIndex(idx);
    return IsFloatElem() ? f_[idx] : static_cast<double>(i_[idx]);
  }
  void StoreInt(std::int64_t idx, std::int64_t v) {
    CheckIndex(idx);
    if (IsFloatElem()) {
      f_[idx] = static_cast<double>(v);
    } else {
      i_[idx] = Narrow(v);
    }
  }
  void StoreFloat(std::int64_t idx, double v) {
    CheckIndex(idx);
    if (IsFloatElem()) {
      f_[idx] = elem_ == Scalar::kFloat ? static_cast<float>(v) : v;
    } else {
      i_[idx] = Narrow(static_cast<std::int64_t>(v));
    }
  }

  // Grows an integral object (used by getline's realloc semantics).
  void Resize(std::int64_t count) {
    if (IsFloatElem()) {
      f_.resize(static_cast<std::size_t>(count), 0.0);
    } else {
      i_.resize(static_cast<std::size_t>(count), 0);
    }
  }

  Ptr LoadPtr(std::int64_t idx) const;
  void StorePtr(std::int64_t idx, const Ptr& p);

  void MarkFreed() { freed_ = true; }
  bool freed() const { return freed_; }

  // Reads a NUL-terminated string starting at idx (char objects only).
  std::string ReadCString(std::int64_t idx) const;
  // Writes a string plus NUL terminator at idx; checks capacity.
  void WriteCString(std::int64_t idx, std::string_view s);

 private:
  std::int64_t Narrow(std::int64_t v) const {
    return elem_ == Scalar::kChar ? static_cast<signed char>(v) : v;
  }
  std::string name_;
  Scalar elem_;
  MemSpace space_;
  bool is_ptr_cell_ = false;
  bool freed_ = false;
  std::vector<std::int64_t> i_;
  std::vector<double> f_;
  std::vector<Ptr> p_;
};

// A typed pointer value: element index within an object. A null pointer has
// obj == nullptr.
struct Ptr {
  MemObject* obj = nullptr;
  std::int64_t index = 0;
  bool IsNull() const { return obj == nullptr; }
};

inline MemObject::MemObject(std::string name, PtrCellTag, std::int64_t count,
                            MemSpace space)
    : name_(std::move(name)),
      elem_(Scalar::kVoid),
      space_(space),
      is_ptr_cell_(true),
      p_(static_cast<std::size_t>(count)) {}

inline Ptr MemObject::LoadPtr(std::int64_t idx) const {
  HD_CHECK_MSG(is_ptr_cell_, "LoadPtr on data object '" << name_ << "'");
  CheckIndex(idx);
  return p_[idx];
}

inline void MemObject::StorePtr(std::int64_t idx, const Ptr& p) {
  HD_CHECK_MSG(is_ptr_cell_, "StorePtr on data object '" << name_ << "'");
  CheckIndex(idx);
  p_[idx] = p;
}

// A runtime value. The interpreter keeps C's int/float distinction so that
// `1/2 == 0` while `1.0/2 == 0.5`.
struct Value {
  enum class Kind : std::uint8_t { kInt, kFloat, kPtr };
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double f = 0.0;
  Ptr p;

  static Value Int(std::int64_t v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value Float(double v) {
    Value x;
    x.kind = Kind::kFloat;
    x.f = v;
    return x;
  }
  static Value Pointer(Ptr p) {
    Value x;
    x.kind = Kind::kPtr;
    x.p = p;
    return x;
  }
  static Value Null() { return Pointer(Ptr{}); }

  bool IsTruthy() const {
    switch (kind) {
      case Kind::kInt: return i != 0;
      case Kind::kFloat: return f != 0.0;
      case Kind::kPtr: return !p.IsNull();
    }
    return false;
  }
  std::int64_t AsInt() const {
    switch (kind) {
      case Kind::kInt: return i;
      case Kind::kFloat: return static_cast<std::int64_t>(f);
      case Kind::kPtr: return p.IsNull() ? 0 : 1;
    }
    return 0;
  }
  double AsFloat() const {
    return kind == Kind::kFloat ? f : static_cast<double>(AsInt());
  }
};

// Owns all MemObjects created during one interpreter run. Objects are stable
// in memory (deque of unique_ptr) so raw MemObject* stays valid.
class Memory {
 public:
  MemObject* Alloc(std::string name, Scalar elem, std::int64_t count,
                   MemSpace space = MemSpace::kHost) {
    objects_.push_back(
        std::make_unique<MemObject>(std::move(name), elem, count, space));
    return objects_.back().get();
  }

  MemObject* AllocPtrCell(std::string name, std::int64_t count = 1,
                          MemSpace space = MemSpace::kHost) {
    objects_.push_back(std::make_unique<MemObject>(
        std::move(name), MemObject::PtrCellTag{}, count, space));
    return objects_.back().get();
  }

  std::size_t num_objects() const { return objects_.size(); }

 private:
  std::deque<std::unique_ptr<MemObject>> objects_;
};

}  // namespace hd::minic
