file(REMOVE_RECURSE
  "CMakeFiles/hd_sched.dir/policy.cc.o"
  "CMakeFiles/hd_sched.dir/policy.cc.o.d"
  "libhd_sched.a"
  "libhd_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
