// Iterative kmeans: the paper notes kmeans is an *iterative* clustering
// application — each MapReduce job assigns points to centroids and the
// reduce phase recomputes them, feeding the next iteration.
//
// This example drives multiple HeteroDoop jobs in a loop: after every job,
// the reducer's new centroids are spliced into the next iteration's map
// source (the host program embeds them as the sharedRO/texture table), and
// the loop stops when centroids stop moving. 2-D points with %.2f values
// keep the sources readable.
//
// Build & run:  cmake --build build && ./build/examples/iterative_kmeans
#include <cmath>
#include <iostream>
#include <sstream>

#include "common/prng.h"
#include "common/strings.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

namespace {

constexpr int kK = 4;      // clusters
constexpr int kDims = 2;   // point dimensionality

// Map source with the current centroid table embedded as an initialised
// read-only array (texture memory on the GPU).
std::string MapSource(const std::vector<double>& centroids) {
  std::ostringstream os;
  os << R"(
int nextTok(char *line, int offset, char *buf, int read, int maxb) {
  int i = offset;
  int j = 0;
  while (i < read && (line[i] == ' ' || line[i] == '\n')) i++;
  if (i >= read || line[i] == '\0') return -1;
  while (i < read && line[i] != ' ' && line[i] != '\n' &&
         line[i] != '\0' && j < maxb - 1) {
    buf[j] = line[i];
    i++;
    j++;
  }
  buf[j] = '\0';
  return i;
}
int main() {
  double centroids[)" << kK * kDims << R"(];
)";
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    os << "  centroids[" << i << "] = " << hd::FormatDouble(centroids[i], 6)
       << ";\n";
  }
  os << R"(
  char tok[32], vbuf[64], *line;
  size_t nbytes = 4096;
  int read, offset, best, c, d;
  double point[2];
  double dist, bestDist, diff;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(best) value(vbuf) vallength(64) kvpairs(1) \
    texture(centroids)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = 0;
    for (d = 0; d < 2; d++) {
      offset = nextTok(line, offset, tok, read, 32);
      if (offset == -1) break;
      point[d] = atof(tok);
    }
    if (offset == -1) continue;
    bestDist = 1.0e30;
    best = 0;
    for (c = 0; c < )" << kK << R"(; c++) {
      dist = 0.0;
      for (d = 0; d < 2; d++) {
        diff = point[d] - centroids[c * 2 + d];
        dist += diff * diff;
      }
      if (dist < bestDist) {
        bestDist = dist;
        best = c;
      }
    }
    sprintf(vbuf, "%.2f %.2f", point[0], point[1]);
    printf("%d\t%s\n", best, vbuf);
  }
  free(line);
  return 0;
}
)";
  return os.str();
}

// Averages member points per centroid.
constexpr const char* kReduceSource = R"(
int main() {
  char key[16], prevKey[16];
  double sx, sy, x, y;
  int count;
  prevKey[0] = '\0';
  sx = 0.0; sy = 0.0; count = 0;
  while (scanf("%s %lf %lf", key, &x, &y) == 3) {
    if (strcmp(key, prevKey) != 0) {
      if (prevKey[0] != '\0')
        printf("%s\t%.6f %.6f\n", prevKey, sx / count, sy / count);
      strcpy(prevKey, key);
      sx = 0.0; sy = 0.0; count = 0;
    }
    sx += x; sy += y; count++;
  }
  if (prevKey[0] != '\0')
    printf("%s\t%.6f %.6f\n", prevKey, sx / count, sy / count);
  return 0;
}
)";

// Four well-separated Gaussian blobs.
std::vector<std::string> GenerateBlobs(int points_per_split, int splits) {
  const double means[kK][kDims] = {{2, 2}, {8, 2}, {2, 8}, {8, 8}};
  std::vector<std::string> out;
  hd::Prng prng(1234);
  for (int s = 0; s < splits; ++s) {
    std::string split;
    for (int i = 0; i < points_per_split; ++i) {
      const auto blob = prng.NextBounded(kK);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.2f %.2f\n",
                    means[blob][0] + 0.8 * prng.NextGaussian(),
                    means[blob][1] + 0.8 * prng.NextGaussian());
      split += buf;
    }
    out.push_back(std::move(split));
  }
  return out;
}

}  // namespace

int main() {
  using namespace hd;

  const std::vector<std::string> splits = GenerateBlobs(800, 4);

  // Deliberately poor initial centroids: all in one corner.
  std::vector<double> centroids = {1, 1, 1.5, 1, 1, 1.5, 1.5, 1.5};

  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 2;
  cluster.map_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.heartbeat_sec = 0.05;

  std::cout << "Iterative kmeans: " << kK << " clusters, "
            << splits.size() * 800 << " points, tail scheduling\n\n";
  for (int iter = 1; iter <= 8; ++iter) {
    gpurt::JobProgram job =
        gpurt::CompileJob(MapSource(centroids), "", kReduceSource);
    hadoop::FunctionalTaskSource::Options fopts;
    fopts.num_reducers = 2;
    hadoop::FunctionalTaskSource source(job, splits, fopts);
    hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source, sched::Policy::kTail).Run();

    // Splice the reducer's centroids into the next iteration.
    std::vector<double> next = centroids;
    for (const auto& kv : r.final_output) {
      const int c = std::stoi(kv.key);
      const auto fields = SplitWhitespace(kv.value);
      for (int d = 0; d < kDims && d < static_cast<int>(fields.size()); ++d) {
        next[static_cast<std::size_t>(c * kDims + d)] =
            std::strtod(fields[static_cast<std::size_t>(d)].c_str(), nullptr);
      }
    }
    double movement = 0.0;
    for (std::size_t i = 0; i < centroids.size(); ++i) {
      movement += std::abs(next[i] - centroids[i]);
    }
    centroids = std::move(next);

    std::cout << "iter " << iter << ": movement = "
              << FormatDouble(movement, 4) << ", centroids =";
    for (int c = 0; c < kK; ++c) {
      std::cout << " (" << FormatDouble(centroids[c * 2], 2) << ","
                << FormatDouble(centroids[c * 2 + 1], 2) << ")";
    }
    std::cout << " [" << r.gpu_tasks << " GPU tasks]\n";
    if (movement < 1e-3) {
      std::cout << "\nConverged after " << iter << " iterations.\n";
      break;
    }
  }
  return 0;
}
