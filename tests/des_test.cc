// des::Scheduler contract tests: the heap and calendar backends must be
// observationally identical — same pop order on any schedule, including
// exact-time ties, reentrant scheduling from callbacks, and cancellation
// — because every modeled bench pin relies on backend interchangeability.
#include <cmath>
#include <limits>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/prng.h"
#include "des/scheduler.h"

namespace {

using hd::des::EventHandle;
using hd::des::MakeScheduler;
using hd::des::Payload;
using hd::des::Scheduler;

// ---------------------------------------------------------------------
// Property: identical pop order across backends.

// One observed event: (time, tag). Comparing full logs across backends
// is stronger than comparing checksums — failures print the divergence.
struct LogEntry {
  double time;
  std::uint64_t tag;
  bool operator==(const LogEntry&) const = default;
};

struct PropertyReplay {
  Scheduler* sched = nullptr;
  std::vector<LogEntry> log;
  hd::Prng prng{0};
  double horizon = 0.0;
  std::vector<EventHandle> cancelable;

  static void Event(void* ctx, const Payload& pay);
};

void PropertyReplay::Event(void* ctx, const Payload& pay) {
  auto& r = *static_cast<PropertyReplay*>(ctx);
  r.log.push_back({r.sched->now(), pay.u0});
  // Reentrant scheduling: some handlers schedule follow-up work, with a
  // bias toward zero and near-zero delays so same-instant ordering and
  // the calendar's staged-drain flush path (a mid-stage push that lands
  // before the rest of the stage) both get exercised.
  const std::uint64_t dice = r.prng.NextBounded(8);
  if (r.sched->now() >= r.horizon) return;
  if (dice == 0) {
    r.sched->After(0.0, &PropertyReplay::Event, &r, Payload{pay.u0 + 1000, 0});
  } else if (dice == 1) {
    r.sched->After(r.prng.NextDouble(0.0, 1e-4), &PropertyReplay::Event, &r,
                   Payload{pay.u0 + 2000, 0});
  } else if (dice == 2) {
    const EventHandle h =
        r.sched->After(r.prng.NextDouble(0.0, 5.0), &PropertyReplay::Event,
                       &r, Payload{pay.u0 + 3000, 0});
    r.cancelable.push_back(h);
  } else if (dice == 3 && !r.cancelable.empty()) {
    // Cancel a random outstanding handle (it may already have fired —
    // Cancel on a stale handle must be a harmless no-op).
    const std::size_t i = r.prng.NextBounded(r.cancelable.size());
    r.sched->Cancel(r.cancelable[i]);
  }
}

std::vector<LogEntry> ReplaySchedule(const std::string& backend,
                                     std::uint64_t seed) {
  const auto sched = MakeScheduler(backend);
  PropertyReplay r;
  r.sched = sched.get();
  r.prng = hd::Prng(seed);
  r.horizon = 50.0;
  hd::Prng build(seed ^ 0x9e3779b97f4a7c15ULL);
  const int initial = 50 + static_cast<int>(build.NextBounded(200));
  for (int i = 0; i < initial; ++i) {
    // Coarse times make exact-time ties common across independent
    // schedules.
    const double t = static_cast<double>(build.NextBounded(500)) * 0.1;
    sched->At(t, &PropertyReplay::Event, &r,
              Payload{static_cast<std::uint64_t>(i), 0});
  }
  sched->Run();
  return r.log;
}

TEST(DesProperty, BackendsPopIdenticalOrderOnRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto heap = ReplaySchedule("heap", seed);
    const auto calendar = ReplaySchedule("calendar", seed);
    ASSERT_EQ(heap.size(), calendar.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
      ASSERT_TRUE(heap[i] == calendar[i])
          << "seed " << seed << " diverged at event " << i << ": heap=("
          << heap[i].time << "," << heap[i].tag << ") calendar=("
          << calendar[i].time << "," << calendar[i].tag << ")";
    }
    // Times are non-decreasing — a basic sanity on the order itself.
    for (std::size_t i = 1; i < heap.size(); ++i) {
      ASSERT_LE(heap[i - 1].time, heap[i].time) << "seed " << seed;
    }
  }
}

// Exact-time ties must break by insertion order on both backends.
TEST(DesProperty, TiesBreakByInsertionOrderOnBothBackends) {
  for (const char* backend : {"heap", "calendar"}) {
    const auto sched = MakeScheduler(backend);
    std::vector<std::uint64_t> order;
    struct Ctx {
      std::vector<std::uint64_t>* order;
    } ctx{&order};
    const auto record = [](void* c, const Payload& pay) {
      static_cast<Ctx*>(c)->order->push_back(pay.u0);
    };
    // Interleave two tied instants, scheduled out of time order.
    for (std::uint64_t i = 0; i < 10; ++i) {
      sched->At(2.0, record, &ctx, Payload{100 + i, 0});
      sched->At(1.0, record, &ctx, Payload{i, 0});
    }
    sched->Run();
    ASSERT_EQ(order.size(), 20u) << backend;
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(order[i], i) << backend;            // t=1 batch, FIFO
      EXPECT_EQ(order[10 + i], 100 + i) << backend;  // t=2 batch, FIFO
    }
  }
}

// A calendar pushed through several grow-resizes must still drain in
// exact order (resize re-estimates width and reinserts every key).
TEST(DesProperty, CalendarResizeKeepsExactOrderAtLargeN) {
  const auto sched = MakeScheduler("calendar");
  hd::Prng prng(7);
  struct Ctx {
    double last = -1.0;
    std::uint64_t last_seq = 0;
    std::uint64_t fired = 0;
  } ctx;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double t = prng.NextDouble(0.0, 1000.0);
    sched->At(t, [](void* c, const Payload& pay) {
      auto& x = *static_cast<Ctx*>(c);
      const double t2 = hd::des::UnpackDouble(pay.u0);
      ASSERT_GE(t2, x.last);
      x.last = t2;
      ++x.fired;
    }, &ctx, Payload{hd::des::PackDouble(t), 0});
  }
  sched->Run();
  EXPECT_EQ(ctx.fired, static_cast<std::uint64_t>(kN));
}

// ---------------------------------------------------------------------
// Cancellation handles.

TEST(DesHandle, CancelRetiresEventAndInvalidatesHandle) {
  for (const char* backend : {"heap", "calendar"}) {
    const auto sched = MakeScheduler(backend);
    int fired = 0;
    const auto bump = [](void* c, const Payload&) {
      ++*static_cast<int*>(c);
    };
    const EventHandle h = sched->After(1.0, bump, &fired);
    EXPECT_TRUE(sched->Pending(h)) << backend;
    EXPECT_TRUE(sched->Cancel(h)) << backend;
    EXPECT_FALSE(sched->Pending(h)) << backend;
    // Double-cancel is a no-op returning false.
    EXPECT_FALSE(sched->Cancel(h)) << backend;
    sched->Run();
    EXPECT_EQ(fired, 0) << backend;
  }
}

TEST(DesHandle, HandleGoesStaleAfterFiring) {
  for (const char* backend : {"heap", "calendar"}) {
    const auto sched = MakeScheduler(backend);
    int fired = 0;
    const auto bump = [](void* c, const Payload&) {
      ++*static_cast<int*>(c);
    };
    const EventHandle h = sched->After(1.0, bump, &fired);
    sched->Run();
    EXPECT_EQ(fired, 1) << backend;
    EXPECT_FALSE(sched->Pending(h)) << backend;
    EXPECT_FALSE(sched->Cancel(h)) << backend;
  }
}

TEST(DesHandle, SlotReuseDoesNotResurrectOldHandles) {
  const auto sched = MakeScheduler("calendar");
  int fired = 0;
  const auto bump = [](void* c, const Payload&) { ++*static_cast<int*>(c); };
  const EventHandle old = sched->After(1.0, bump, &fired);
  ASSERT_TRUE(sched->Cancel(old));
  // The freed slot is recycled for the next event; the old handle's
  // generation no longer matches, so it can neither cancel nor observe
  // the new occupant.
  const EventHandle fresh = sched->After(2.0, bump, &fired);
  EXPECT_EQ(old.slot, fresh.slot);
  EXPECT_NE(old.gen, fresh.gen);
  EXPECT_FALSE(sched->Pending(old));
  EXPECT_FALSE(sched->Cancel(old));
  EXPECT_TRUE(sched->Pending(fresh));
  sched->Run();
  EXPECT_EQ(fired, 1);
}

TEST(DesHandle, NullHandleIsInert) {
  const auto sched = MakeScheduler("calendar");
  EventHandle null;
  EXPECT_TRUE(null.null());
  EXPECT_FALSE(sched->Pending(null));
  EXPECT_FALSE(sched->Cancel(null));
}

// ---------------------------------------------------------------------
// Argument validation at the call site.

TEST(DesValidation, AfterRejectsNaNAndNegativeDelays) {
  const auto sched = MakeScheduler("calendar");
  const auto nop = [](void*, const Payload&) {};
  try {
    sched->After(std::nan(""), nop, nullptr);
    FAIL() << "NaN delay accepted";
  } catch (const hd::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("nan"), std::string::npos)
        << e.what();
  }
  try {
    sched->After(-2.5, nop, nullptr);
    FAIL() << "negative delay accepted";
  } catch (const hd::CheckError& e) {
    // The offending value must appear in the message.
    EXPECT_NE(std::string(e.what()).find("-2.5"), std::string::npos)
        << e.what();
  }
  // The closure overload validates identically.
  EXPECT_THROW(sched->After(-1.0, [] {}), hd::CheckError);
  EXPECT_THROW(
      sched->After(std::numeric_limits<double>::infinity(), nop, nullptr),
      hd::CheckError);
}

TEST(DesValidation, AtRejectsPastAndNonFiniteTimes) {
  const auto sched = MakeScheduler("heap");
  const auto nop = [](void*, const Payload&) {};
  sched->At(5.0, nop, nullptr);
  sched->Run();
  ASSERT_EQ(sched->now(), 5.0);
  try {
    sched->At(4.0, nop, nullptr);
    FAIL() << "past time accepted";
  } catch (const hd::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos) << e.what();
  }
  EXPECT_THROW(sched->At(std::nan(""), nop, nullptr), hd::CheckError);
}

TEST(DesValidation, FactoryRejectsUnknownBackendListingOptions) {
  try {
    MakeScheduler("splay");
    FAIL() << "unknown backend accepted";
  } catch (const hd::CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("splay"), std::string::npos) << msg;
    EXPECT_NE(msg.find("calendar"), std::string::npos) << msg;
    EXPECT_NE(msg.find("heap"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------
// Pool bookkeeping.

TEST(DesPool, PendingCountTracksLiveEventsOnly) {
  const auto sched = MakeScheduler("calendar");
  const auto nop = [](void*, const Payload&) {};
  EXPECT_TRUE(sched->empty());
  const EventHandle a = sched->After(1.0, nop, nullptr);
  sched->After(2.0, nop, nullptr);
  EXPECT_EQ(sched->pending(), 2u);
  sched->Cancel(a);
  // The canceled key is still stored (lazy deletion) but no longer live.
  EXPECT_EQ(sched->pending(), 1u);
  sched->Run();
  EXPECT_TRUE(sched->empty());
  EXPECT_EQ(sched->pending(), 0u);
}

TEST(DesPool, ClosureOverloadRunsAndRecycles) {
  for (const char* backend : {"heap", "calendar"}) {
    const auto sched = MakeScheduler(backend);
    int order = 0;
    sched->After(2.0, [&order] { EXPECT_EQ(++order, 2); });
    sched->At(1.0, [&order] { EXPECT_EQ(++order, 1); });
    // A canceled closure must be freed, not leaked (ASan-enforced).
    const EventHandle h = sched->After(3.0, [&order] { ++order; });
    sched->Cancel(h);
    sched->Run();
    EXPECT_EQ(order, 2) << backend;
  }
}

}  // namespace
