#include "minic/sema.h"

#include <functional>
#include <vector>

#include "common/check.h"

namespace hd::minic {
namespace {

// Builtins that only *write* through their pointer argument at the given
// position; passing an outer array there does not force firstprivate.
bool BuiltinWritesArg(const std::string& callee, std::size_t arg_index) {
  if (callee == "strcpy" || callee == "strncpy" || callee == "sprintf" ||
      callee == "memset") {
    return arg_index == 0;
  }
  if (callee == "getline") return arg_index <= 1;
  if (callee == "scanf") return arg_index >= 1;
  return false;
}

// Tracks per-variable first-access direction while walking the region.
class RegionWalker {
 public:
  RegionWalker(const std::map<std::string, Type>& visible, RegionInfo* out)
      : visible_(visible), out_(out) {
    scopes_.emplace_back();
  }

  void WalkStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        WalkExpr(*s.expr, Access::kRead);
        break;
      case StmtKind::kDecl:
        for (const auto& d : s.decls) {
          if (d.init) WalkExpr(*d.init, Access::kRead);
          scopes_.back().insert(d.name);
        }
        break;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (const auto& sub : s.stmts) WalkStmt(*sub);
        scopes_.pop_back();
        break;
      case StmtKind::kIf:
        WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.then_stmt);
        if (s.else_stmt) WalkStmt(*s.else_stmt);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.body);
        break;
      case StmtKind::kFor:
        scopes_.emplace_back();
        if (s.init_stmt) WalkStmt(*s.init_stmt);
        if (s.expr) WalkExpr(*s.expr, Access::kRead);
        WalkStmt(*s.body);
        if (s.step) WalkExpr(*s.step, Access::kRead);
        scopes_.pop_back();
        break;
      case StmtKind::kReturn:
        if (s.expr) WalkExpr(*s.expr, Access::kRead);
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        break;
    }
  }

  const std::set<std::string>& written() const { return written_; }

 private:
  enum class Access { kRead, kWrite, kReadWrite };

  bool DeclaredInside(const std::string& name) const {
    for (const auto& sc : scopes_) {
      if (sc.count(name)) return true;
    }
    return false;
  }

  void Note(const std::string& name, Access acc) {
    if (DeclaredInside(name)) return;
    auto it = visible_.find(name);
    if (it == visible_.end()) return;  // builtin constant or function name
    out_->used_outer.insert(name);
    out_->outer_types.emplace(name, it->second);
    if (acc != Access::kWrite && !written_.count(name)) {
      out_->read_before_write.insert(name);
    }
    if (acc != Access::kRead) written_.insert(name);
  }

  void WalkExpr(const Expr& e, Access acc) {
    switch (e.kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
        return;
      case ExprKind::kVarRef:
        Note(e.string_value, acc);
        return;
      case ExprKind::kIndex:
        // base[idx]: the base array is touched with direction `acc`; the
        // index is always read.
        WalkExpr(*e.a, acc);
        WalkExpr(*e.b, Access::kRead);
        return;
      case ExprKind::kUnary:
        switch (e.un_op) {
          case UnOp::kPreInc: case UnOp::kPreDec:
          case UnOp::kPostInc: case UnOp::kPostDec:
            WalkExpr(*e.a, Access::kReadWrite);
            return;
          case UnOp::kAddrOf:
            // Taking the address escapes the variable: conservatively
            // read-write (except as handled in call args below).
            WalkExpr(*e.a, Access::kReadWrite);
            return;
          case UnOp::kDeref:
            WalkExpr(*e.a, acc == Access::kWrite ? Access::kReadWrite : acc);
            return;
          default:
            WalkExpr(*e.a, Access::kRead);
            return;
        }
      case ExprKind::kBinary:
        WalkExpr(*e.a, Access::kRead);
        WalkExpr(*e.b, Access::kRead);
        return;
      case ExprKind::kAssign:
        // The RHS is evaluated before the store; a compound assignment also
        // reads the LHS before writing it.
        WalkExpr(*e.b, Access::kRead);
        WalkExpr(*e.a, e.assign_op == AssignOp::kAssign ? Access::kWrite
                                                        : Access::kReadWrite);
        return;
      case ExprKind::kCall: {
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Expr& arg = *e.args[i];
          const bool write_only = BuiltinWritesArg(e.string_value, i);
          // A bare array/pointer name (or &var) passed to a write-only
          // builtin position counts as a write; anything else is a read
          // (conservative for user functions).
          if (write_only) {
            if (arg.kind == ExprKind::kVarRef) {
              WalkExpr(arg, Access::kWrite);
              continue;
            }
            if (arg.kind == ExprKind::kUnary && arg.un_op == UnOp::kAddrOf &&
                arg.a->kind == ExprKind::kVarRef) {
              Note(arg.a->string_value, Access::kWrite);
              continue;
            }
          }
          WalkExpr(arg, Access::kRead);
        }
        return;
      }
      case ExprKind::kCast:
        WalkExpr(*e.a, acc);
        return;
      case ExprKind::kTernary:
        WalkExpr(*e.a, Access::kRead);
        WalkExpr(*e.b, Access::kRead);
        WalkExpr(*e.c, Access::kRead);
        return;
      case ExprKind::kSizeof:
        return;
    }
  }

  const std::map<std::string, Type>& visible_;
  RegionInfo* out_;
  std::vector<std::set<std::string>> scopes_;
  std::set<std::string> written_;
};

// Walks the function body, maintaining the visible-symbol map, until it
// reaches `region`; returns true when found (map then holds the symbols
// visible at that point).
bool CollectVisible(const Stmt& s, const Stmt& region,
                    std::map<std::string, Type>* visible) {
  if (&s == &region) return true;
  switch (s.kind) {
    case StmtKind::kDecl:
      for (const auto& d : s.decls) (*visible)[d.name] = d.type;
      return false;
    case StmtKind::kBlock: {
      // Clone-on-descend so declarations inside nested blocks do not leak.
      std::map<std::string, Type> inner = *visible;
      for (const auto& sub : s.stmts) {
        if (&*sub == &region || CollectVisible(*sub, region, &inner)) {
          *visible = inner;
          return true;
        }
      }
      return false;
    }
    case StmtKind::kIf:
      if (s.then_stmt && CollectVisible(*s.then_stmt, region, visible)) {
        return true;
      }
      if (s.else_stmt && CollectVisible(*s.else_stmt, region, visible)) {
        return true;
      }
      return false;
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
      return s.body && CollectVisible(*s.body, region, visible);
    case StmtKind::kFor: {
      std::map<std::string, Type> inner = *visible;
      if (s.init_stmt && CollectVisible(*s.init_stmt, region, &inner)) {
        *visible = inner;
        return true;
      }
      if (s.body && CollectVisible(*s.body, region, &inner)) {
        *visible = inner;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

RegionInfo AnalyzeRegion(const FunctionDef& fn, const Stmt& region) {
  std::map<std::string, Type> visible;
  for (const auto& p : fn.params) visible[p.name] = p.type;
  bool found = (&*fn.body == &region);
  if (!found) found = CollectVisible(*fn.body, region, &visible);
  HD_CHECK_MSG(found, "region not found inside function '" << fn.name << "'");
  RegionInfo info;
  RegionWalker walker(visible, &info);
  walker.WalkStmt(region);
  for (const auto& name : info.used_outer) {
    if (!walker.written().count(name)) info.never_written.insert(name);
  }
  return info;
}

const Stmt* FindDirectiveRegion(const FunctionDef& fn, Directive::Kind kind) {
  const Stmt* found = nullptr;
  std::function<void(const Stmt&)> walk = [&](const Stmt& s) {
    if (found) return;
    if (s.directive && s.directive->kind == kind) {
      found = &s;
      return;
    }
    switch (s.kind) {
      case StmtKind::kBlock:
        for (const auto& sub : s.stmts) walk(*sub);
        break;
      case StmtKind::kIf:
        if (s.then_stmt) walk(*s.then_stmt);
        if (s.else_stmt) walk(*s.else_stmt);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        if (s.body) walk(*s.body);
        break;
      case StmtKind::kFor:
        if (s.body) walk(*s.body);
        break;
      default:
        break;
    }
  };
  walk(*fn.body);
  return found;
}

}  // namespace hd::minic
