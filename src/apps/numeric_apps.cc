// Linear regression (LR) and BlackScholes (BS): the scientific workloads
// (§7.1). LR computes per-regressor partial sums with a component-wise sum
// combiner; BS is the map-only option-pricing kernel (the paper's most
// compute-intensive benchmark, 128 pricing iterations per option).
#include <cmath>
#include <map>

#include "apps/apps_internal.h"
#include "apps/gen.h"
#include "apps/golden_util.h"
#include "apps/sources.h"

namespace hd::apps {
namespace {

std::string LinearRegressionMapSource() {
  return std::string(kNextTokSource) + R"(
int main() {
  char rid[16], tok[32], vbuf[160], *line;
  size_t nbytes = 4096;
  int read, offset;
  double x, y;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(rid) value(vbuf) keylength(16) \
    vallength(160) kvpairs(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = nextTok(line, 0, rid, read, 16);
    if (offset == -1) continue;
    offset = nextTok(line, offset, tok, read, 32);
    if (offset == -1) continue;
    x = atof(tok);
    offset = nextTok(line, offset, tok, read, 32);
    if (offset == -1) continue;
    y = atof(tok);
    sprintf(vbuf, "1 %.6f %.6f %.6f %.6f", x, y, x * x, x * y);
    printf("%s\t%s\n", rid, vbuf);
  }
  free(line);
  return 0;
}
)";
}

// Component-wise sum of the (n, sx, sy, sxx, sxy) tuples per regressor.
std::string LrSumFilter(bool with_directive) {
  std::string src = R"(
int main() {
  char key[16], prevKey[16], vbuf[200];
  double n, sx, sy, sxx, sxy;
  double an, ax, ay, axx, axy;
  int read;
  prevKey[0] = '\0';
  an = 0.0; ax = 0.0; ay = 0.0; axx = 0.0; axy = 0.0;
)";
  if (with_directive) {
    src += "  #pragma mapreduce combiner key(prevKey) value(vbuf) \\\n"
           "    keyin(key) valuein(n) keylength(16) vallength(200) \\\n"
           "    firstprivate(prevKey, an, ax, ay, axx, axy)\n";
  }
  src += R"(  {
    while ((read = scanf("%s %lf %lf %lf %lf %lf", key, &n, &sx, &sy,
                         &sxx, &sxy)) == 6) {
      if (strcmp(key, prevKey) != 0) {
        if (prevKey[0] != '\0') {
          sprintf(vbuf, "%.6f %.6f %.6f %.6f %.6f", an, ax, ay, axx, axy);
          printf("%s\t%s\n", prevKey, vbuf);
        }
        strcpy(prevKey, key);
        an = 0.0; ax = 0.0; ay = 0.0; axx = 0.0; axy = 0.0;
      }
      an += n; ax += sx; ay += sy; axx += sxx; axy += sxy;
    }
    if (prevKey[0] != '\0') {
      sprintf(vbuf, "%.6f %.6f %.6f %.6f %.6f", an, ax, ay, axx, axy);
      printf("%s\t%s\n", prevKey, vbuf);
    }
  }
  return 0;
}
)";
  return src;
}

// Final fit: slope and intercept per regressor from the summed tuples.
constexpr const char* kLrReduceSource = R"(
int main() {
  char key[16], prevKey[16];
  double n, sx, sy, sxx, sxy;
  double an, ax, ay, axx, axy;
  double slope, intercept;
  prevKey[0] = '\0';
  an = 0.0; ax = 0.0; ay = 0.0; axx = 0.0; axy = 0.0;
  while (scanf("%s %lf %lf %lf %lf %lf", key, &n, &sx, &sy, &sxx, &sxy)
         == 6) {
    if (strcmp(key, prevKey) != 0) {
      if (prevKey[0] != '\0') {
        slope = (an * axy - ax * ay) / (an * axx - ax * ax);
        intercept = (ay - slope * ax) / an;
        printf("%s\t%.4f %.4f\n", prevKey, slope, intercept);
      }
      strcpy(prevKey, key);
      an = 0.0; ax = 0.0; ay = 0.0; axx = 0.0; axy = 0.0;
    }
    an += n; ax += sx; ay += sy; axx += sxx; axy += sxy;
  }
  if (prevKey[0] != '\0') {
    slope = (an * axy - ax * ay) / (an * axx - ax * ax);
    intercept = (ay - slope * ax) / an;
    printf("%s\t%.4f %.4f\n", prevKey, slope, intercept);
  }
  return 0;
}
)";

std::string BlackScholesMapSource() {
  return std::string(kNextTokSource) + R"(
double cndf(double x) {
  return 0.5 * (1.0 + erf(x / 1.4142135623730951));
}
int main() {
  char id[24], tok[32], vbuf[64], *line;
  size_t nbytes = 4096;
  int read, offset, it;
  double S, K, r, v, T, d1, d2, call, put;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(id) value(vbuf) keylength(24) vallength(64) \
    kvpairs(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = nextTok(line, 0, id, read, 24);
    if (offset == -1) continue;
    offset = nextTok(line, offset, tok, read, 32);
    S = atof(tok);
    offset = nextTok(line, offset, tok, read, 32);
    K = atof(tok);
    offset = nextTok(line, offset, tok, read, 32);
    r = atof(tok);
    offset = nextTok(line, offset, tok, read, 32);
    v = atof(tok);
    offset = nextTok(line, offset, tok, read, 32);
    T = atof(tok);
    call = 0.0;
    put = 0.0;
    for (it = 0; it < 128; it++) {
      d1 = (log(S / K) + (r + 0.5 * v * v) * T) / (v * sqrt(T));
      d2 = d1 - v * sqrt(T);
      call = S * cndf(d1) - K * exp(-r * T) * cndf(d2);
      put = K * exp(-r * T) * cndf(-d2) - S * cndf(-d1);
    }
    sprintf(vbuf, "%.6f %.6f", call, put);
    printf("%s\t%s\n", id, vbuf);
  }
  free(line);
  return 0;
}
)";
}

std::vector<gpurt::KvPair> LinearRegressionGolden(
    const std::vector<std::string>& splits) {
  struct Acc {
    double n = 0, sx = 0, sy = 0, sxx = 0, sxy = 0;
  };
  std::map<std::string, Acc> acc;
  auto round6 = [](double v) {
    return std::strtod(RenderF("%.6f", v).c_str(), nullptr);
  };
  for (const auto& split : splits) {
    for (const auto& rec : Records(split)) {
      auto toks = RecordTokens(rec);
      if (toks.size() < 3) continue;
      const double x = std::strtod(toks[1].c_str(), nullptr);
      const double y = std::strtod(toks[2].c_str(), nullptr);
      Acc& a = acc[toks[0]];
      // The combiner consumes the mapper's %.6f renderings.
      a.n += 1;
      a.sx += round6(x);
      a.sy += round6(y);
      a.sxx += round6(x * x);
      a.sxy += round6(x * y);
    }
  }
  std::vector<gpurt::KvPair> out;
  for (const auto& [rid, a] : acc) {
    const double slope =
        (a.n * a.sxy - a.sx * a.sy) / (a.n * a.sxx - a.sx * a.sx);
    const double intercept = (a.sy - slope * a.sx) / a.n;
    out.push_back({rid, RenderF("%.4f", slope) + " " +
                            RenderF("%.4f", intercept)});
  }
  return out;
}

std::vector<gpurt::KvPair> BlackScholesGolden(
    const std::vector<std::string>& splits) {
  auto cndf = [](double x) {
    return 0.5 * (1.0 + std::erf(x / 1.4142135623730951));
  };
  std::vector<gpurt::KvPair> out;
  for (const auto& split : splits) {
    for (const auto& rec : Records(split)) {
      auto toks = RecordTokens(rec);
      if (toks.size() < 6) continue;
      const double S = std::strtod(toks[1].c_str(), nullptr);
      const double K = std::strtod(toks[2].c_str(), nullptr);
      const double r = std::strtod(toks[3].c_str(), nullptr);
      const double v = std::strtod(toks[4].c_str(), nullptr);
      const double T = std::strtod(toks[5].c_str(), nullptr);
      const double d1 =
          (std::log(S / K) + (r + 0.5 * v * v) * T) / (v * std::sqrt(T));
      const double d2 = d1 - v * std::sqrt(T);
      const double call =
          S * cndf(d1) - K * std::exp(-r * T) * cndf(d2);
      const double put =
          K * std::exp(-r * T) * cndf(-d2) - S * cndf(-d1);
      out.push_back(
          {toks[0], RenderF("%.6f", call) + " " + RenderF("%.6f", put)});
    }
  }
  return out;
}

}  // namespace

Benchmark MakeLinearRegression() {
  Benchmark b;
  b.id = "LR";
  b.name = "Linear Regression";
  b.io_intensive = false;
  b.has_combiner = true;
  b.pct_map_combine_active = 86;
  b.map_source = LinearRegressionMapSource();
  b.combine_source = LrSumFilter(/*with_directive=*/true);
  b.reduce_source = kLrReduceSource;
  b.generate = GenRegressors;
  b.golden = LinearRegressionGolden;
  b.exact_output = false;  // double accumulation order varies with schedule
  b.cluster1 = {true, 16, 2560, 714.0};
  b.cluster2 = {true, 16, 3840, 356.0};
  return b;
}

Benchmark MakeBlackScholes() {
  Benchmark b;
  b.id = "BS";
  b.name = "BlackScholes";
  b.io_intensive = false;
  b.has_combiner = false;
  b.map_only = true;
  b.pct_map_combine_active = 100;
  b.map_source = BlackScholesMapSource();
  b.generate = GenOptions;
  b.golden = BlackScholesGolden;
  b.exact_output = true;
  b.cluster1 = {true, 0, 3600, 890.0};
  b.cluster2 = {true, 0, 5120, 210.0};
  return b;
}

}  // namespace hd::apps
