// Chrome trace-event exporter: collects Sink events in memory and writes a
// chrome://tracing / Perfetto-loadable JSON document.
//
// Time-domain mapping: Sink timestamps are modeled seconds; Chrome's `ts`
// and `dur` are microseconds, written as shortest-round-trip doubles so the
// mapping is exact and two same-seed runs serialize byte-identical files.
// Track naming goes through metadata events (`process_name`/`thread_name`),
// emitted before the data events in registration order, plus explicit
// `process_sort_index`/`thread_sort_index` events pinning each named lane
// to its numeric pid/tid (so "sm2" sorts before "sm10" in Perfetto).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace hd::trace {

class ChromeTraceSink final : public Sink {
 public:
  struct Event {
    char phase = 'X';  // 'X' complete span, 'i' instant
    std::string category;
    std::string name;
    Track track;
    double start_sec = 0.0;
    double dur_sec = 0.0;  // spans only
    Args args;
  };

  void Span(std::string_view category, std::string_view name, Track track,
            double start_sec, double dur_sec, Args args = {}) override;
  void Instant(std::string_view category, std::string_view name, Track track,
               double at_sec, Args args = {}) override;
  void NameProcess(std::int32_t pid, std::string_view name) override;
  void NameThread(Track track, std::string_view name) override;

  const std::vector<Event>& events() const { return events_; }

  // Serialises {"displayTimeUnit":"ms","traceEvents":[...]}.
  void Write(std::ostream& os) const;

 private:
  std::vector<Event> events_;
  std::vector<std::pair<std::int32_t, std::string>> process_names_;
  std::vector<std::pair<Track, std::string>> thread_names_;
};

}  // namespace hd::trace
