#include "apps/sources.h"

namespace hd::apps {

const char* kGetWordSource = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i];
    i++;
    j++;
  }
  word[j] = '\0';
  return i - offset;
}
)";

const char* kNextTokSource = R"(
int nextTok(char *line, int offset, char *buf, int read, int maxb) {
  int i = offset;
  int j = 0;
  while (i < read && (line[i] == ' ' || line[i] == '\t' ||
                      line[i] == '\n')) i++;
  if (i >= read || line[i] == '\0') return -1;
  while (i < read && line[i] != ' ' && line[i] != '\t' &&
         line[i] != '\n' && line[i] != '\0' && j < maxb - 1) {
    buf[j] = line[i];
    i++;
    j++;
  }
  buf[j] = '\0';
  return i;
}
)";

std::string SumFilterSource(bool with_directive, int key_bytes) {
  const std::string kb = std::to_string(key_bytes);
  std::string src = "int main() {\n";
  src += "  char key[" + kb + "], prevKey[" + kb + "];\n";
  src += R"(  int count, val, read;
  prevKey[0] = '\0';
  count = 0;
)";
  if (with_directive) {
    src += "  #pragma mapreduce combiner key(prevKey) value(count) \\\n"
           "    keyin(key) valuein(val) keylength(" + kb + ") vallength(1) \\\n"
           "    firstprivate(prevKey, count)\n";
  }
  src += R"(  {
    while ((read = scanf("%s %d", key, &val)) == 2) {
      if (strcmp(key, prevKey) == 0) {
        count += val;
      } else {
        if (prevKey[0] != '\0')
          printf("%s\t%d\n", prevKey, count);
        strcpy(prevKey, key);
        count = val;
      }
    }
    if (prevKey[0] != '\0')
      printf("%s\t%d\n", prevKey, count);
  }
  return 0;
}
)";
  return src;
}

}  // namespace hd::apps
