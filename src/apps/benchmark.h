// The benchmark suite (Table 2): six PUMA applications plus two scientific
// workloads, each expressed as HeteroDoop-annotated mini-C streaming
// filters with a synthetic input generator and a native C++ golden
// reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpurt/kv.h"

namespace hd::apps {

// Table 2 row, per cluster.
struct ClusterParams {
  bool available = true;  // KM does not fit Cluster2's GPUs (§7.3)
  int reduce_tasks = 0;
  int map_tasks = 0;
  double input_gb = 0.0;
};

struct Benchmark {
  std::string id;    // "WC"
  std::string name;  // "Wordcount"
  bool io_intensive = false;
  bool has_combiner = false;
  bool map_only = false;
  // Fraction of CPU-only job time with map+combine active (Table 2 col 2).
  int pct_map_combine_active = 90;

  // HeteroDoop-annotated streaming filter sources (mini-C).
  std::string map_source;
  std::string combine_source;  // empty when has_combiner is false
  std::string reduce_source;   // empty for map-only jobs

  // Generates one fileSplit of approximately `bytes`.
  std::string (*generate)(std::int64_t bytes, std::uint64_t seed);

  // Reference implementation: the expected final job output for the given
  // splits, as unsorted pairs.
  std::vector<gpurt::KvPair> (*golden)(const std::vector<std::string>& splits);

  // Whether the job output is bitwise-deterministic across schedules (pure
  // integer aggregation / per-record computation). Floating accumulations
  // (KM, LR) depend on addition order and need tolerance comparison.
  bool exact_output = true;

  ClusterParams cluster1;
  ClusterParams cluster2;

  int num_reducers() const { return cluster1.reduce_tasks; }
};

// All eight benchmarks in the paper's Table 2 order:
// GR, HS, WC, HR, LR, KM, CL, BS.
const std::vector<Benchmark>& AllBenchmarks();

// Lookup by id; HD_CHECKs on unknown ids.
const Benchmark& GetBenchmark(const std::string& id);

// Compares job output against the golden reference. For exact benchmarks
// the sorted pair multisets must match; otherwise keys must match and
// whitespace-separated numeric fields must agree within `tol` relative
// error. Returns an empty string on success, else a description of the
// first mismatch.
std::string CompareWithGolden(const Benchmark& bench,
                              std::vector<gpurt::KvPair> golden,
                              std::vector<gpurt::KvPair> actual,
                              double tol = 1e-6);

}  // namespace hd::apps
