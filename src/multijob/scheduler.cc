#include "multijob/scheduler.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hd::multijob {
namespace {

using hadoop::JobState;

class FifoScheduler final : public InterJobScheduler {
 public:
  const char* name() const override { return "fifo"; }

  std::size_t PickJob(const std::vector<const JobState*>& runnable,
                      const std::vector<const JobState*>&) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < runnable.size(); ++i) {
      if (runnable[i]->id < runnable[best]->id) best = i;
    }
    return best;
  }
};

class FairScheduler final : public InterJobScheduler {
 public:
  const char* name() const override { return "fair"; }

  std::size_t PickJob(const std::vector<const JobState*>& runnable,
                      const std::vector<const JobState*>&) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < runnable.size(); ++i) {
      const JobState& a = *runnable[i];
      const JobState& b = *runnable[best];
      if (a.running_tasks < b.running_tasks ||
          (a.running_tasks == b.running_tasks && a.id < b.id)) {
        best = i;
      }
    }
    return best;
  }
};

class CapacityScheduler final : public InterJobScheduler {
 public:
  explicit CapacityScheduler(std::vector<double> weights)
      : weights_(std::move(weights)) {
    HD_CHECK_MSG(!weights_.empty(), "capacity scheduler needs >= 1 pool");
    for (double w : weights_) HD_CHECK_MSG(w > 0.0, "pool weights positive");
  }

  const char* name() const override { return "capacity"; }

  std::size_t PickJob(const std::vector<const JobState*>& runnable,
                      const std::vector<const JobState*>& active) override {
    // Cluster-wide running tasks per pool, over every in-flight job.
    std::vector<int> running(weights_.size(), 0);
    for (const JobState* j : active) {
      running[PoolOf(*j)] += j->running_tasks;
    }
    // Most underserved pool among those with a runnable job.
    double best_deficit = std::numeric_limits<double>::infinity();
    std::size_t best = runnable.size();
    for (std::size_t i = 0; i < runnable.size(); ++i) {
      const std::size_t pool = PoolOf(*runnable[i]);
      const double deficit =
          static_cast<double>(running[pool]) / weights_[pool];
      const bool better =
          best == runnable.size() || deficit < best_deficit ||
          (deficit == best_deficit &&
           runnable[i]->id < runnable[best]->id);  // FIFO within the pool
      if (better) {
        best_deficit = deficit;
        best = i;
      }
    }
    return best;
  }

  const std::vector<double>* pool_weights() const override {
    return &weights_;
  }

 private:
  std::size_t PoolOf(const JobState& j) const {
    if (j.pool < 0 || j.pool >= static_cast<int>(weights_.size())) return 0;
    return static_cast<std::size_t>(j.pool);
  }

  std::vector<double> weights_;
};

class SloScheduler final : public InterJobScheduler {
 public:
  explicit SloScheduler(std::unique_ptr<InterJobScheduler> inner)
      : inner_(std::move(inner)) {
    HD_CHECK(inner_ != nullptr);
  }

  const char* name() const override { return "slo"; }
  const InterJobScheduler* inner() const { return inner_.get(); }

  const std::vector<double>* pool_weights() const override {
    return inner_->pool_weights();
  }

  std::size_t PickJob(const std::vector<const JobState*>& runnable,
                      const std::vector<const JobState*>& active) override {
    // Earliest deadline first over the deadline-carrying (streaming window)
    // jobs: the window nearest to SLO violation takes the slot. Jobs
    // without a deadline (infinity: plain batch) never preempt one that
    // has one; with no deadline in sight the inner scheduler decides, so
    // pure-batch workloads behave exactly as the inner policy.
    std::size_t best = runnable.size();
    for (std::size_t i = 0; i < runnable.size(); ++i) {
      const JobState& j = *runnable[i];
      if (std::isinf(j.deadline_sec)) continue;
      const bool better =
          best == runnable.size() ||
          j.deadline_sec < runnable[best]->deadline_sec ||
          (j.deadline_sec == runnable[best]->deadline_sec &&
           j.id < runnable[best]->id);
      if (better) best = i;
    }
    if (best != runnable.size()) return best;
    return inner_->PickJob(runnable, active);
  }

 private:
  std::unique_ptr<InterJobScheduler> inner_;
};

}  // namespace

const char* SchedulerKindName(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kFair: return "fair";
    case SchedulerKind::kCapacity: return "capacity";
  }
  return "?";
}

std::unique_ptr<InterJobScheduler> MakeFifoScheduler() {
  return std::make_unique<FifoScheduler>();
}

std::unique_ptr<InterJobScheduler> MakeFairScheduler() {
  return std::make_unique<FairScheduler>();
}

std::unique_ptr<InterJobScheduler> MakeCapacityScheduler(
    std::vector<double> pool_weights) {
  return std::make_unique<CapacityScheduler>(std::move(pool_weights));
}

std::unique_ptr<InterJobScheduler> MakeSloScheduler(
    std::unique_ptr<InterJobScheduler> inner) {
  return std::make_unique<SloScheduler>(std::move(inner));
}

std::unique_ptr<InterJobScheduler> MakeScheduler(
    SchedulerKind kind, std::vector<double> pool_weights) {
  switch (kind) {
    case SchedulerKind::kFifo: return MakeFifoScheduler();
    case SchedulerKind::kFair: return MakeFairScheduler();
    case SchedulerKind::kCapacity:
      if (pool_weights.empty()) pool_weights = {2.0, 1.0};
      return MakeCapacityScheduler(std::move(pool_weights));
  }
  return nullptr;
}

SchedulerKind SchedulerKindFromName(const std::string& name) {
  if (name == "fifo") return SchedulerKind::kFifo;
  if (name == "fair") return SchedulerKind::kFair;
  if (name == "capacity") return SchedulerKind::kCapacity;
  HD_CHECK_MSG(false, "unknown inter-job scheduler kind '" << name
                          << "' (valid: " << kSchedulerKindNames << ")");
  return SchedulerKind::kFifo;  // unreachable; HD_CHECK_MSG throws
}

std::unique_ptr<InterJobScheduler> MakeScheduler(
    const std::string& name, std::vector<double> pool_weights) {
  if (name.rfind("slo-", 0) == 0) {
    return MakeSloScheduler(MakeScheduler(
        SchedulerKindFromName(name.substr(4)), std::move(pool_weights)));
  }
  if (name == "fifo" || name == "fair" || name == "capacity") {
    return MakeScheduler(SchedulerKindFromName(name),
                         std::move(pool_weights));
  }
  HD_CHECK_MSG(false, "unknown inter-job scheduler '" << name
                          << "' (valid: " << kSchedulerNames << ")");
  return nullptr;  // unreachable; HD_CHECK_MSG throws
}

}  // namespace hd::multijob
