// Reproduces Fig. 6: execution-time breakdown of a single GPU task into the
// Fig. 1 phases — input read, record count, map, aggregate, sort, combine,
// output write — as percentages per benchmark.
#include <iostream>

#include "bench/bench_util.h"
#include "common/table.h"

int main() {
  using namespace hd;
  std::cout << "Fig. 6: execution-time breakdown of a GPU task (%)\n\n";
  Table t({"Benchmark", "InRead", "RecCnt", "Map", "Aggr", "Sort", "Comb",
           "OutWrite", "Total(ms)"});
  for (const auto& b : apps::AllBenchmarks()) {
    bench::MeasureConfig cfg;
    cfg.measure_baseline = false;
    const bench::MeasuredTask m = bench::MeasureTask(b, cfg);
    const auto& p = m.gpu.phases;
    const double total = p.Total();
    auto pct = [&](double v) { return 100.0 * v / total; };
    t.Row()
        .Cell(b.id)
        .Cell(pct(p.input_read), 1)
        .Cell(pct(p.record_count), 1)
        .Cell(pct(p.map), 1)
        .Cell(pct(p.aggregate), 1)
        .Cell(pct(p.sort), 1)
        .Cell(pct(p.combine), 1)
        .Cell(pct(p.output_write), 1)
        .Cell(total * 1e3, 3);
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: aggregation negligible everywhere; WC "
               "sort-heavy (long keys);\nBS dominated by output write; "
               "KM/CL map-heavy.\n";
  return 0;
}
