// The HDnnn registry is the single minting point for diagnostic ids. These
// tests fail the build when an id is duplicated, a hundred-block has gaps,
// or the registry drifts from the ids the analysis sources actually emit.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diag_registry.h"

namespace hd::analysis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Every "HDnnn" string literal in a source file.
std::set<std::string> IdsInFile(const std::string& path) {
  const std::string text = ReadFile(path);
  std::set<std::string> ids;
  for (std::size_t i = 0; i + 6 <= text.size(); ++i) {
    if (text[i] != '"' || text.compare(i + 1, 2, "HD") != 0) continue;
    if (i + 6 < text.size() && std::isdigit(text[i + 3]) &&
        std::isdigit(text[i + 4]) && std::isdigit(text[i + 5]) &&
        text[i + 6] == '"') {
      ids.insert(text.substr(i + 1, 5));
    }
  }
  return ids;
}

// The analysis sources that emit diagnostics (excluding the registry
// itself, which by construction mentions every id).
const std::vector<std::string>& EmittingSources() {
  static const std::vector<std::string> files = {
      std::string(HD_REPO_DIR) + "/src/analysis/analyzer.cc",
      std::string(HD_REPO_DIR) + "/src/analysis/passes.cc",
      std::string(HD_REPO_DIR) + "/src/analysis/infer.cc",
  };
  return files;
}

TEST(DiagRegistry, NoDuplicateIds) {
  std::set<std::string> seen;
  for (const DiagInfo& d : DiagRegistry()) {
    EXPECT_TRUE(seen.insert(d.id).second) << "duplicate id " << d.id;
  }
}

TEST(DiagRegistry, IdsAreOrderedAndWellFormed) {
  std::string prev;
  for (const DiagInfo& d : DiagRegistry()) {
    const std::string id = d.id;
    ASSERT_EQ(id.size(), 5u) << id;
    ASSERT_EQ(id.substr(0, 2), "HD") << id;
    EXPECT_LT(prev, id) << "registry must be sorted by id";
    prev = id;
    EXPECT_NE(std::string(d.pass), "") << id;
    EXPECT_NE(std::string(d.summary), "") << id;
  }
}

TEST(DiagRegistry, HundredBlocksAreGapless) {
  // Within each hundred-block (one pass family) ids run consecutively from
  // n*100 + 1: a gap means an id was retired without renumbering or a new
  // id skipped ahead.
  std::map<int, std::vector<int>> blocks;
  for (const DiagInfo& d : DiagRegistry()) {
    const int n = std::stoi(std::string(d.id).substr(2));
    blocks[n / 100].push_back(n % 100);
  }
  EXPECT_FALSE(blocks.empty());
  for (const auto& [block, ids] : blocks) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], static_cast<int>(i) + 1)
          << "gap in HD" << block << "xx block at position " << i;
    }
  }
}

TEST(DiagRegistry, EveryEmittedIdIsRegistered) {
  for (const std::string& file : EmittingSources()) {
    for (const std::string& id : IdsInFile(file)) {
      EXPECT_NE(FindDiag(id), nullptr)
          << id << " is emitted in " << file << " but not registered";
    }
  }
}

TEST(DiagRegistry, EveryRegisteredIdIsEmittedSomewhere) {
  std::set<std::string> emitted;
  for (const std::string& file : EmittingSources()) {
    const auto ids = IdsInFile(file);
    emitted.insert(ids.begin(), ids.end());
  }
  for (const DiagInfo& d : DiagRegistry()) {
    EXPECT_TRUE(emitted.count(d.id))
        << d.id << " is registered but no analysis source emits it";
  }
}

TEST(DiagRegistry, FindDiagHandlesUnknownIds) {
  EXPECT_EQ(FindDiag("HD999"), nullptr);
  EXPECT_EQ(FindDiag(""), nullptr);
  const DiagInfo* d = FindDiag("HD601");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(std::string(d->pass), "infer");
}

}  // namespace
}  // namespace hd::analysis
