// Single registry of every HDnnn diagnostic id the analysis tools emit.
//
// Each hundred-block belongs to one pass family (HD0xx parse, HD1xx
// directive-check, HD2xx race-check, HD3xx kv-bounds, HD4xx placement-audit,
// HD5xx portability, HD6xx infer). The registry is the one place a new id is
// minted: a test cross-checks it against the ids actually emitted in the
// analysis sources and fails on duplicates or gaps, and the SARIF renderer
// publishes it as the tool's rule table.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"

namespace hd::analysis {

struct DiagInfo {
  const char* id;    // "HDnnn"
  const char* pass;  // producing pass family
  Severity severity; // default severity (some ids escalate by mode)
  const char* summary;  // one-line rule description (SARIF shortDescription)
};

// All registered diagnostics, ordered by id.
const std::vector<DiagInfo>& DiagRegistry();

// Lookup by id; null when unregistered.
const DiagInfo* FindDiag(const std::string& id);

}  // namespace hd::analysis
