// Region analysis for the translator (supports Algorithm 1 of the paper).
//
// Given a function and a directive-annotated region inside it, computes:
//   * which variables used inside the region are declared outside it
//     (the kernel's external variables, to be classified as sharedRO /
//     firstprivate / private),
//   * which of those are read before they are written (the compiler's
//     automatic firstprivate detection described in §3.2),
//   * the declared type of every external variable.
#pragma once

#include <map>
#include <set>
#include <string>

#include "minic/ast.h"

namespace hd::minic {

struct RegionInfo {
  // Variables referenced in the region but declared outside it.
  std::set<std::string> used_outer;
  // Subset of used_outer whose first access in the region may be a read
  // (conservative): these need firstprivate initialisation.
  std::set<std::string> read_before_write;
  // Subset of used_outer that is never written inside the region: eligible
  // for sharedRO placement.
  std::set<std::string> never_written;
  // Declared types of used_outer variables.
  std::map<std::string, Type> outer_types;
};

// Analyzes `region` (a statement within fn->body). HD_CHECKs that the
// region is actually reachable inside the function body.
RegionInfo AnalyzeRegion(const FunctionDef& fn, const Stmt& region);

// Finds the first statement in the function carrying a directive of the
// given kind, or null.
const Stmt* FindDirectiveRegion(const FunctionDef& fn, Directive::Kind kind);

}  // namespace hd::minic
