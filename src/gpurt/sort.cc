#include "gpurt/sort.h"

#include <algorithm>
#include <cmath>

namespace hd::gpurt {

void SortPairsByKey(std::vector<KvPair>* pairs) {
  std::stable_sort(pairs->begin(), pairs->end(), KvKeyLess);
}

void ChargeSortKernel(gpusim::KernelSim& kernel, std::int64_t sort_elements,
                      int key_slot_bytes, bool vectorized, bool compacted,
                      int extra_global_passes) {
  if (sort_elements <= 1) return;
  int passes = 0;
  for (std::int64_t n = 1; n < sort_elements; n <<= 1) ++passes;
  passes += extra_global_passes;
  // Satish-style structure: runs up to the shared-memory tile size merge
  // on chip; only the remaining log2(n / tile) passes stream keys through
  // global memory (our indirection keeps the KV data in place, §5.3).
  constexpr int kTileElems = 1024;
  int shared_passes = 0;
  for (std::int64_t n = 1; n < std::min<std::int64_t>(sort_elements,
                                                      kTileElems);
       n <<= 1) {
    ++shared_passes;
  }
  const int global_passes = std::max(1, passes - shared_passes);
  shared_passes = passes - global_passes;

  kernel.DistributeUnits(
      sort_elements * global_passes, [&](int b, int t, std::int64_t units) {
        // Merge passes stream the two sorted runs: key loads through the
        // indirection array are sequential within a run, so DRAM misses
        // amortise over whole lines; the index writes stream likewise.
        // Scattered (uncompacted) input degrades key loads to one random
        // run per key.
        kernel.ChargeGlobalBytes(b, t, units * key_slot_bytes, vectorized,
                                 /*granule_bytes=*/
                                 compacted ? units * key_slot_bytes
                                           : key_slot_bytes);
        kernel.ChargeGlobalBytes(b, t, units * 4, /*vectorized=*/true,
                                 /*granule_bytes=*/units * 4);
        // Comparison cost: 4 key bytes per ALU op.
        kernel.ChargeOp(b, t, minic::OpClass::kIntAlu,
                        units * ((key_slot_bytes + 3) / 4));
      });
  kernel.DistributeUnits(
      sort_elements * shared_passes, [&](int b, int t, std::int64_t units) {
        // On-chip tile merges: shared-memory traffic plus compares.
        kernel.ChargeShared(b, t, units * ((key_slot_bytes + 3) / 4));
        kernel.ChargeOp(b, t, minic::OpClass::kIntAlu,
                        units * ((key_slot_bytes + 3) / 4));
      });
}

}  // namespace hd::gpurt
