// Round-trip equivalence: strip the hand-written #pragma mapreduce
// directives from every benchmark app, re-infer them with hdinfer, and pin
// the result — the inferred kernel plans must agree with the hand-annotated
// plans, and the executed map tasks (CPU and GPU paths) must produce
// byte-identical partitions across input seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/infer.h"
#include "apps/benchmark.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/job_program.h"
#include "translator/translator.h"

namespace hd {
namespace {

using apps::Benchmark;
using apps::GetBenchmark;

constexpr std::uint64_t kSeeds[] = {1, 7, 42};

// Strips the pragma and re-infers, asserting success; returns the
// re-annotated source.
std::string ReInfer(const std::string& source, const std::string& what) {
  const std::string stripped = analysis::StripDirectives(source);
  EXPECT_NE(stripped, source) << what << ": app source carries no pragma?";
  analysis::InferOptions opts;
  opts.source_name = what;
  const analysis::InferResult r = analysis::InferDirectives(stripped, opts);
  EXPECT_TRUE(r.ok) << what << " failed to infer:\n" << r.diags.RenderText();
  return r.annotated_source;
}

void ExpectPlansAgree(const translator::KernelPlan& orig,
                      const translator::KernelPlan& inf,
                      const std::string& what) {
  EXPECT_EQ(orig.kind, inf.kind) << what;
  EXPECT_EQ(orig.key_var, inf.key_var) << what;
  EXPECT_EQ(orig.value_var, inf.value_var) << what;
  EXPECT_EQ(orig.keyin_var, inf.keyin_var) << what;
  EXPECT_EQ(orig.valuein_var, inf.valuein_var) << what;
  EXPECT_EQ(orig.kv.key_slot_bytes, inf.kv.key_slot_bytes) << what;
  EXPECT_EQ(orig.kv.val_slot_bytes, inf.kv.val_slot_bytes) << what;
  EXPECT_EQ(orig.kv.key_is_array, inf.kv.key_is_array) << what;
  EXPECT_EQ(orig.kv.val_is_array, inf.kv.val_is_array) << what;
  // Algorithm-1 placements must match variable by variable: a texture or
  // firstprivate drift would silently change the GPU execution.
  ASSERT_EQ(orig.vars.size(), inf.vars.size()) << what;
  for (std::size_t i = 0; i < orig.vars.size(); ++i) {
    EXPECT_EQ(orig.vars[i].name, inf.vars[i].name) << what;
    EXPECT_EQ(orig.vars[i].cls, inf.vars[i].cls)
        << what << " var " << orig.vars[i].name;
  }
}

void ExpectSamePartitions(const gpurt::MapTaskResult& a,
                          const gpurt::MapTaskResult& b,
                          const std::string& what) {
  ASSERT_EQ(a.partitions.size(), b.partitions.size()) << what;
  for (std::size_t p = 0; p < a.partitions.size(); ++p) {
    ASSERT_EQ(a.partitions[p].size(), b.partitions[p].size())
        << what << " partition " << p;
    for (std::size_t i = 0; i < a.partitions[p].size(); ++i) {
      ASSERT_EQ(a.partitions[p][i].key, b.partitions[p][i].key)
          << what << " partition " << p << " pair " << i;
      ASSERT_EQ(a.partitions[p][i].value, b.partitions[p][i].value)
          << what << " partition " << p << " pair " << i;
    }
  }
}

class InferRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(InferRoundTrip, StrippedBenchmarkReInfersAndPinsOutputs) {
  const Benchmark& bench = GetBenchmark(GetParam());

  // strip -> infer -> re-annotate both filters.
  const std::string map_inferred = ReInfer(bench.map_source, bench.id + ".map");
  std::string combine_inferred;
  if (bench.has_combiner) {
    combine_inferred = ReInfer(bench.combine_source, bench.id + ".combine");
  }
  if (::testing::Test::HasFailure()) return;

  const gpurt::JobProgram orig = gpurt::CompileJob(
      bench.map_source, bench.combine_source, bench.reduce_source);
  const gpurt::JobProgram inferred = gpurt::CompileJob(
      map_inferred, combine_inferred, bench.reduce_source);

  ASSERT_TRUE(orig.map.map_plan && inferred.map.map_plan);
  ExpectPlansAgree(*orig.map.map_plan, *inferred.map.map_plan,
                   bench.id + ".map");
  ASSERT_EQ(orig.has_combiner(), inferred.has_combiner());
  if (orig.has_combiner()) {
    ASSERT_TRUE(orig.combine->combine_plan && inferred.combine->combine_plan);
    ExpectPlansAgree(*orig.combine->combine_plan,
                     *inferred.combine->combine_plan, bench.id + ".combine");
  }

  // Pinned outputs: identical schedules must yield byte-identical
  // partitions on both execution paths, for every seed.
  const gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  for (const std::uint64_t seed : kSeeds) {
    const std::string split = bench.generate(2500, seed);
    const std::string what = bench.id + " seed " + std::to_string(seed);

    gpurt::CpuTaskOptions copts;
    copts.num_reducers = bench.map_only ? 0 : 2;
    ExpectSamePartitions(gpurt::CpuMapTask(orig, cpu, copts).Run(split),
                         gpurt::CpuMapTask(inferred, cpu, copts).Run(split),
                         what + " cpu");

    gpurt::GpuTaskOptions gopts;
    gopts.num_reducers = bench.map_only ? 0 : 2;
    gopts.blocks = 4;
    gopts.threads = 64;
    gpusim::GpuDevice d0(gpusim::DeviceConfig::TeslaK40());
    gpusim::GpuDevice d1(gpusim::DeviceConfig::TeslaK40());
    ExpectSamePartitions(gpurt::GpuMapTask(orig, &d0, gopts).Run(split),
                         gpurt::GpuMapTask(inferred, &d1, gopts).Run(split),
                         what + " gpu");
  }
}

TEST_P(InferRoundTrip, TranslatorHookCompilesStrippedSources) {
  // The one-call path: CompileJob with infer_missing_directives compiles
  // pragma-free filters directly.
  const Benchmark& bench = GetBenchmark(GetParam());
  translator::TranslateOptions opts;
  opts.infer_missing_directives = true;
  const gpurt::JobProgram job = gpurt::CompileJob(
      analysis::StripDirectives(bench.map_source),
      bench.has_combiner ? analysis::StripDirectives(bench.combine_source)
                         : std::string(),
      bench.reduce_source, opts);
  ASSERT_TRUE(job.map.map_plan.has_value());
  EXPECT_EQ(job.has_combiner(), bench.has_combiner);
}

std::vector<std::string> AllIds() {
  std::vector<std::string> ids;
  for (const auto& b : apps::AllBenchmarks()) ids.push_back(b.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(AllApps, InferRoundTrip,
                         ::testing::ValuesIn(AllIds()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace hd
