#include "hadoop/cluster_core.h"

#include <algorithm>

#include "common/check.h"

namespace hd::hadoop {

void ValidateClusterConfig(const ClusterConfig& cfg) {
  HD_CHECK_MSG(cfg.num_slaves > 0, "cluster needs at least one slave");
  HD_CHECK_MSG(cfg.map_slots_per_node > 0,
               "each slave needs at least one CPU map slot");
  HD_CHECK_MSG(cfg.reduce_slots_per_node >= 0,
               "reduce_slots_per_node must be non-negative");
  HD_CHECK_MSG(cfg.gpus_per_node >= 0, "gpus_per_node must be non-negative");
  HD_CHECK_MSG(cfg.heartbeat_sec > 0.0, "heartbeat_sec must be positive");
  HD_CHECK_MSG(cfg.network_bytes_per_sec > 0.0,
               "network_bytes_per_sec must be positive");
  HD_CHECK_MSG(cfg.reduce_slowstart >= 0.0 && cfg.reduce_slowstart <= 1.0,
               "reduce_slowstart must be a fraction in [0, 1]");
  HD_CHECK_MSG(cfg.trace_pid_base >= 0, "trace_pid_base must be non-negative");
  if (!cfg.node_speed_factors.empty()) {
    HD_CHECK_MSG(static_cast<int>(cfg.node_speed_factors.size()) ==
                     cfg.num_slaves,
                 "node_speed_factors must have one entry per slave");
    for (double f : cfg.node_speed_factors) {
      HD_CHECK_MSG(f > 0.0, "node speed factors must be positive");
    }
  }
}

ClusterCore::ClusterCore(ClusterConfig cfg) : cfg_(std::move(cfg)) {
  ValidateClusterConfig(cfg_);
  nodes_.resize(static_cast<std::size_t>(cfg_.num_slaves));
  for (auto& n : nodes_) {
    n.free_cpu = cfg_.map_slots_per_node;
    n.free_gpu = cfg_.gpus_per_node;
  }
  if (cfg_.sink != nullptr) {
    cfg_.sink->NameProcess(cfg_.trace_pid_base, "jobtracker");
    free_cpu_lanes_.resize(nodes_.size());
    free_gpu_lanes_.resize(nodes_.size());
    for (int node = 0; node < cfg_.num_slaves; ++node) {
      cfg_.sink->NameProcess(cfg_.trace_pid_base + node + 1,
                             "node" + std::to_string(node));
      cfg_.sink->NameThread(NodeTrack(node, 0), "tasktracker");
      auto& cpu = free_cpu_lanes_[static_cast<std::size_t>(node)];
      auto& gpu = free_gpu_lanes_[static_cast<std::size_t>(node)];
      // Stored highest-first so acquiring from the back hands out the
      // lowest free tid (tasks fill rows top-down in the viewer).
      for (int s = cfg_.map_slots_per_node; s >= 1; --s) {
        cfg_.sink->NameThread(NodeTrack(node, s),
                              "cpu" + std::to_string(s - 1));
        cpu.push_back(s);
      }
      for (int g = cfg_.gpus_per_node; g >= 1; --g) {
        const int tid = cfg_.map_slots_per_node + g;
        cfg_.sink->NameThread(NodeTrack(node, tid),
                              "gpu" + std::to_string(g - 1));
        gpu.push_back(tid);
      }
    }
  }
}

void ClusterCore::EmitHeartbeat(int node_id) {
  if (cfg_.sink == nullptr) return;
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  cfg_.sink->Instant("hadoop", "heartbeat", NodeTrack(node_id, 0),
                     events_.now(),
                     {trace::Arg::Int("free_cpu", n.free_cpu),
                      trace::Arg::Int("free_gpu", n.free_gpu)});
}

void ClusterCore::InitJob(JobState& job) {
  HD_CHECK(job.source != nullptr);
  if (job.fs != nullptr) {
    HD_CHECK_MSG(job.fs->NumSplits(job.input_path) ==
                     job.source->num_map_tasks(),
                 "input file split count does not match the task source");
  }
  job.remaining_maps = job.source->num_map_tasks();
  job.pending.resize(static_cast<std::size_t>(job.remaining_maps));
  for (int i = 0; i < job.remaining_maps; ++i) job.pending[i] = i;
  job.node_stats.assign(static_cast<std::size_t>(cfg_.num_slaves), {});
}

sched::NodeSched ClusterCore::SchedView(const JobState& job,
                                        int node_id) const {
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  const bool gpu_blind = job.policy == sched::Policy::kCpuOnly;
  sched::NodeSched v;
  v.free_cpu_slots = n.free_cpu;
  v.free_gpu_slots = gpu_blind ? 0 : n.free_gpu;
  v.num_gpus = gpu_blind ? 0 : cfg_.gpus_per_node;
  v.ave_speedup =
      job.node_stats[static_cast<std::size_t>(node_id)].AveSpeedup();
  return v;
}

int ClusterCore::HeartbeatCap(const JobState& job, int node_id) const {
  return sched::MaxTasksThisHeartbeat(
      job.policy, SchedView(job, node_id),
      static_cast<int>(job.pending.size()), job.max_speedup, cfg_.num_slaves);
}

bool ClusterCore::NodeHasUsableSlot(const JobState& job, int node_id) const {
  const NodeSlots& n = nodes_[static_cast<std::size_t>(node_id)];
  if (n.free_cpu > 0) return true;
  return job.policy != sched::Policy::kCpuOnly && n.free_gpu > 0;
}

bool ClusterCore::IsLocal(const JobState& job, int node_id, int task) const {
  if (job.fs == nullptr) return true;
  return job.fs->Split(job.input_path, task).IsLocalTo(node_id);
}

std::vector<int> ClusterCore::PickTasks(JobState& job, int node_id,
                                        int max_tasks) {
  std::vector<int> picked;
  if (max_tasks <= 0) return picked;
  // Pass 1: data-local splits.
  for (auto it = job.pending.begin();
       it != job.pending.end() &&
       static_cast<int>(picked.size()) < max_tasks;) {
    if (IsLocal(job, node_id, *it)) {
      picked.push_back(*it);
      it = job.pending.erase(it);
    } else {
      ++it;
    }
  }
  // Pass 2: any split.
  while (static_cast<int>(picked.size()) < max_tasks &&
         !job.pending.empty()) {
    picked.push_back(job.pending.front());
    job.pending.erase(job.pending.begin());
  }
  return picked;
}

void ClusterCore::PlaceTask(JobState& job, int node_id, int task,
                            double maps_remaining_per_node) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  const sched::NodeSched view = SchedView(job, node_id);
  const bool want_gpu =
      sched::PlaceOnGpu(job.policy, view, maps_remaining_per_node);
  if (cfg_.sink != nullptr && job.policy == sched::Policy::kTail &&
      sched::TailForces(view, maps_remaining_per_node)) {
    // Algorithm 2's forced-GPU decision, with the inputs that produced it.
    const trace::Args args = {
        trace::Arg::Int("job", job.id),
        trace::Arg::Int("task", task),
        trace::Arg::Float("maps_remaining_per_node", maps_remaining_per_node),
        trace::Arg::Float("ave_speedup", view.ave_speedup),
        trace::Arg::Int("num_gpus", view.num_gpus),
        trace::Arg::Int("free_cpu", view.free_cpu_slots),
        trace::Arg::Int("free_gpu", view.free_gpu_slots)};
    if (!job.tail_onset_traced) {
      job.tail_onset_traced = true;
      cfg_.sink->Instant("sched", "tail_onset", JobTrack(job), events_.now(),
                         args);
    }
    cfg_.sink->Instant("sched", "forced_gpu", NodeTrack(node_id, 0),
                       events_.now(), args);
  }
  if (want_gpu) {
    if (node.free_gpu > 0) {
      StartMap(job, node_id, task, /*on_gpu=*/true);
    } else {
      // Tail forcing with every local GPU busy: hand the task back so the
      // next TaskTracker with an idle GPU picks it up, rather than queueing
      // behind this node's GPU.
      ++gpu_bounces_;
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("hadoop.gpu_bounces").Add(1);
      }
      if (cfg_.sink != nullptr) {
        cfg_.sink->Instant("sched", "gpu_bounce", NodeTrack(node_id, 0),
                           events_.now(),
                           {trace::Arg::Int("job", job.id),
                            trace::Arg::Int("task", task)});
      }
      job.pending.insert(job.pending.begin(), task);
    }
    return;
  }
  if (node.free_cpu > 0) {
    StartMap(job, node_id, task, /*on_gpu=*/false);
  } else if (job.policy != sched::Policy::kCpuOnly && node.free_gpu > 0) {
    StartMap(job, node_id, task, /*on_gpu=*/true);
  } else {
    // No capacity after all (tail cap raced with completions): put back.
    job.pending.insert(job.pending.begin(), task);
  }
}

void ClusterCore::StartMap(JobState& job, int node_id, int task, bool on_gpu) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  MapTaskTiming timing;
  if (on_gpu) {
    try {
      timing = job.source->MapTask(task, /*on_gpu=*/true);
    } catch (const GpuTaskFailure&) {
      // §5.1: the failure is reported to the TaskTracker, the GPU driver is
      // revived, and the task is rescheduled — here directly onto a CPU
      // slot when one is free.
      ++job.result.gpu_failures;
      if (cfg_.metrics != nullptr) {
        cfg_.metrics->counter("hadoop.gpu_failures").Add(1);
      }
      if (cfg_.sink != nullptr) {
        cfg_.sink->Instant("hadoop", "gpu_failure", NodeTrack(node_id, 0),
                           events_.now(),
                           {trace::Arg::Int("job", job.id),
                            trace::Arg::Int("task", task)});
      }
      if (node.free_cpu > 0) {
        StartMap(job, node_id, task, /*on_gpu=*/false);
      } else {
        job.pending.insert(job.pending.begin(), task);
      }
      return;
    }
    --node.free_gpu;
    ++job.result.gpu_tasks;
  } else {
    timing = job.source->MapTask(task, /*on_gpu=*/false);
    HD_CHECK(node.free_cpu > 0);
    --node.free_cpu;
    ++job.result.cpu_tasks;
  }
  ++job.running_tasks;
  if (job.first_start_time < 0.0) job.first_start_time = events_.now();
  double duration = timing.seconds;
  if (!cfg_.node_speed_factors.empty()) {
    duration *= cfg_.node_speed_factors[static_cast<std::size_t>(node_id)];
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " start task=" << task << " node=" << node_id
                << (on_gpu ? " GPU" : " CPU") << " dur=" << timing.seconds
                << "\n";
  }
  if (!IsLocal(job, node_id, task)) {
    ++job.result.nonlocal_tasks;
    duration += static_cast<double>(job.fs->Split(job.input_path, task).bytes) /
                cfg_.network_bytes_per_sec;
  }
  job.result.total_map_output_bytes += timing.output_bytes;
  int lane = -1;
  if (cfg_.sink != nullptr) {
    auto& lanes = on_gpu ? free_gpu_lanes_[static_cast<std::size_t>(node_id)]
                         : free_cpu_lanes_[static_cast<std::size_t>(node_id)];
    HD_CHECK(!lanes.empty());
    lane = lanes.back();
    lanes.pop_back();
  }
  events_.After(duration, [this, &job, node_id, task, on_gpu, duration, lane] {
    FinishMap(job, node_id, task, on_gpu, duration, lane);
  });
}

void ClusterCore::FinishMap(JobState& job, int node_id, int task, bool on_gpu,
                            double duration, int lane) {
  NodeSlots& node = nodes_[static_cast<std::size_t>(node_id)];
  JobNodeStats& stats = job.node_stats[static_cast<std::size_t>(node_id)];
  if (cfg_.sink != nullptr) {
    cfg_.sink->Span("task", on_gpu ? "gpu_map" : "cpu_map",
                    NodeTrack(node_id, lane), events_.now() - duration,
                    duration,
                    {trace::Arg::Int("job", job.id),
                     trace::Arg::Int("task", task),
                     trace::Arg::Str("label", job.label),
                     trace::Arg::Float("duration_sec", duration)});
    auto& lanes = on_gpu ? free_gpu_lanes_[static_cast<std::size_t>(node_id)]
                         : free_cpu_lanes_[static_cast<std::size_t>(node_id)];
    lanes.push_back(lane);
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter(on_gpu ? "hadoop.gpu_tasks" : "hadoop.cpu_tasks")
        .Add(1);
    cfg_.metrics
        ->distribution(on_gpu ? "hadoop.gpu_task_sec" : "hadoop.cpu_task_sec")
        .Record(duration);
  }
  if (cfg_.trace != nullptr) {
    *cfg_.trace << "t=" << events_.now();
    if (trace_job_ids_) *cfg_.trace << " job=" << job.id;
    *cfg_.trace << " finish task=" << task << " node=" << node_id
                << (on_gpu ? " GPU" : " CPU") << "\n";
  }
  if (on_gpu) {
    ++node.free_gpu;
    gpu_busy_sec_ += duration;
    stats.gpu_avg = (stats.gpu_avg * stats.gpu_n + duration) / (stats.gpu_n + 1);
    ++stats.gpu_n;
  } else {
    ++node.free_cpu;
    cpu_busy_sec_ += duration;
    stats.cpu_avg = (stats.cpu_avg * stats.cpu_n + duration) / (stats.cpu_n + 1);
    ++stats.cpu_n;
  }
  job.max_speedup = std::max(job.max_speedup, stats.AveSpeedup());
  job.result.max_observed_speedup = job.max_speedup;
  --job.remaining_maps;
  ++job.maps_done;
  --job.running_tasks;

  OnMapsProgress(job);
  OnTaskFinished(job, node_id);
}

void ClusterCore::OnMapsProgress(JobState& job) {
  const int total = job.source->num_map_tasks();
  if (!job.reduces_scheduled && job.source->num_reducers() > 0 &&
      job.maps_done >= static_cast<int>(cfg_.reduce_slowstart * total)) {
    job.reduces_scheduled = true;
    const int reduce_capacity = cfg_.num_slaves * cfg_.reduce_slots_per_node;
    HD_CHECK_MSG(job.source->num_reducers() <= reduce_capacity,
                 "more reducers than reduce slots; wave scheduling of "
                 "reducers is not modeled");
    job.reduce_start.assign(
        static_cast<std::size_t>(job.source->num_reducers()), events_.now());
    if (cfg_.sink != nullptr) {
      cfg_.sink->Instant(
          "hadoop", "reduce_slowstart", JobTrack(job), events_.now(),
          {trace::Arg::Int("job", job.id),
           trace::Arg::Int("maps_done", job.maps_done),
           trace::Arg::Int("reducers", job.source->num_reducers())});
    }
  }
  if (job.remaining_maps == 0) FinishJob(job);
}

void ClusterCore::FinishJob(JobState& job) {
  HD_CHECK(!job.done);
  job.done = true;
  job.result.map_phase_end_sec = events_.now();
  double makespan = job.result.map_phase_end_sec;
  if (job.source->num_reducers() > 0) {
    if (!job.reduces_scheduled) {
      job.reduce_start.assign(
          static_cast<std::size_t>(job.source->num_reducers()), events_.now());
    }
    const double shuffle_bytes_per_reducer =
        static_cast<double>(job.result.total_map_output_bytes) /
        job.source->num_reducers();
    for (int r = 0; r < job.source->num_reducers(); ++r) {
      const double fetch_done =
          std::max(job.result.map_phase_end_sec,
                   job.reduce_start[static_cast<std::size_t>(r)] +
                       shuffle_bytes_per_reducer / cfg_.network_bytes_per_sec);
      makespan = std::max(makespan, fetch_done + job.source->ReduceSeconds(r));
    }
  }
  job.result.makespan_sec = makespan;
  job.result.final_output = job.source->FinalOutput();
  if (cfg_.sink != nullptr) {
    const std::string name =
        job.label.empty() ? "job" + std::to_string(job.id) : job.label;
    cfg_.sink->NameThread(JobTrack(job), "job" + std::to_string(job.id));
    // Map phase and full job as nested spans on the job's JobTracker lane.
    cfg_.sink->Span(
        "job", name, JobTrack(job), job.submit_time,
        makespan - job.submit_time,
        {trace::Arg::Int("job", job.id),
         trace::Arg::Str("policy", sched::PolicyName(job.policy)),
         trace::Arg::Int("cpu_tasks", job.result.cpu_tasks),
         trace::Arg::Int("gpu_tasks", job.result.gpu_tasks),
         trace::Arg::Int("nonlocal_tasks", job.result.nonlocal_tasks),
         trace::Arg::Float("max_observed_speedup",
                           job.result.max_observed_speedup)});
    if (job.first_start_time >= 0.0) {
      cfg_.sink->Span("job", "map_phase", JobTrack(job), job.first_start_time,
                      job.result.map_phase_end_sec - job.first_start_time,
                      {trace::Arg::Int("maps", job.maps_done)});
    }
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("hadoop.jobs").Add(1);
    cfg_.metrics->distribution("hadoop.job_latency_sec")
        .Record(makespan - job.submit_time);
  }
  OnJobFinished(job);
}

}  // namespace hd::hadoop
