// Tree-walking interpreter for the mini-C dialect.
//
// This is HeteroDoop's "gcc path": benchmark sources execute on the CPU
// through this interpreter, reading records from an IoEnv and emitting KV
// text exactly like a Hadoop Streaming filter. The GPU path reuses the same
// interpreter per simulated thread, with builtins overridden by the runtime
// (getline→getRecord, printf→emitKV, scanf→getKV) and hooks wired to the
// device cost model.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "minic/ast.h"
#include "minic/hooks.h"
#include "minic/io.h"
#include "minic/value.h"

namespace hd::minic {

class InterpError : public std::runtime_error {
 public:
  explicit InterpError(const std::string& what) : std::runtime_error(what) {}
};

class Interp {
 public:
  struct Options {
    // Abort knob against runaway user programs.
    std::int64_t max_steps = 500'000'000;
    // Memory space for objects the interpreted program creates (locals,
    // string literals, malloc). The GPU runtime sets kDeviceLocal so
    // region-internal variables are charged as registers/private storage.
    MemSpace default_space = MemSpace::kHost;
  };

  using BuiltinFn =
      std::function<Value(Interp&, const std::vector<Value>&)>;

  Interp(const TranslationUnit& unit, IoEnv* io, ExecHooks* hooks,
         Options opts);
  Interp(const TranslationUnit& unit, IoEnv* io, ExecHooks* hooks)
      : Interp(unit, io, hooks, Options()) {}

  // Replaces or adds a builtin (used by the GPU runtime).
  void OverrideBuiltin(const std::string& name, BuiltinFn fn);

  // Runs `int main()`; returns its exit code.
  std::int64_t RunMain();

  // Runs main() until `region` is about to execute, then stops. Returns
  // true if the region was reached; the call frame is left alive so the
  // embedder can inspect variable values via Lookup() — this is how the GPU
  // host driver captures firstprivate initial values and sharedRO array
  // contents to pass as kernel parameters (Algorithm 1).
  bool RunMainUntilRegion(const Stmt& region);

  // Calls a named user function with already-evaluated arguments.
  Value CallUserFunction(const std::string& name, std::vector<Value> args);

  // --- embedder API (GPU kernel execution) --------------------------------
  // The runtime pre-binds kernel variables into a fresh scope, then executes
  // the annotated region statement directly.
  void PushScope();
  void PopScope();
  void Bind(const std::string& name, MemObject* obj, Type type);
  // Looks up a binding in the current call frame; null if absent.
  MemObject* Lookup(const std::string& name) const;
  // Executes one statement in the current environment (break/continue/
  // return escaping the region are errors).
  void ExecRegion(const Stmt& stmt);

  // --- services for builtins ----------------------------------------------
  Memory& memory() { return memory_; }
  MemSpace default_space() const { return opts_.default_space; }
  IoEnv& io() { return *io_; }
  ExecHooks& hooks() { return *hooks_; }
  const TranslationUnit& unit() const { return unit_; }

  // Reads a C string through a pointer value (with read cost charged).
  std::string ReadString(const Value& v);
  // Writes a C string through a pointer value (with write cost charged).
  void WriteString(const Value& v, std::string_view s);
  // printf-style formatting shared by printf/sprintf; reads %s args through
  // ReadString.
  std::string Format(const std::string& fmt, const std::vector<Value>& args,
                     std::size_t first_arg);
  // Dereference helpers used by scanf-style builtins.
  Ptr RequirePtr(const Value& v, const char* what);
  void StoreThroughPtr(const Ptr& p, const Value& v);

  std::int64_t steps() const { return steps_; }

 private:
  enum class Flow { kNormal, kBreak, kContinue, kReturn };

  struct Binding {
    MemObject* obj = nullptr;
    Type type;
  };
  using Scope = std::unordered_map<std::string, Binding>;
  struct Frame {
    std::vector<Scope> scopes;
  };

  [[noreturn]] void Fail(int line, const std::string& msg) const;
  void Step(int line);

  Binding* FindBinding(const std::string& name);
  const Binding* FindBinding(const std::string& name) const;

  Flow ExecStmt(const Stmt& s);
  void ExecDecl(const Stmt& s);

  Value EvalExpr(const Expr& e);
  // Resolves an expression to a storage location.
  Ptr EvalLValue(const Expr& e);
  Value LoadFrom(const Ptr& p, int line, bool charge = true);
  void StoreTo(const Ptr& p, const Value& v, int line, bool charge = true);

  Value EvalBinary(const Expr& e);
  Value EvalUnary(const Expr& e);
  Value EvalCall(const Expr& e);
  Value ApplyBin(BinOp op, const Value& a, const Value& b, int line);

  MemObject* StringLiteralObject(const Expr& e);

  const TranslationUnit& unit_;
  IoEnv* io_;
  ExecHooks* hooks_;
  Options opts_;
  Memory memory_;
  std::vector<Frame> frames_;
  Value return_value_;
  const Stmt* stop_at_ = nullptr;
  bool reached_stop_ = false;
  std::int64_t steps_ = 0;
  std::unordered_map<std::string, BuiltinFn> builtins_;
  std::unordered_map<const Expr*, MemObject*> string_literals_;
};

// Installs the default CPU builtin set (stdio, string.h, math.h, ctype.h,
// malloc/free). Called by the constructor; exposed for tests.
void RegisterDefaultBuiltins(Interp& interp);

}  // namespace hd::minic
