// The fault-tolerance contract: deterministic injection (src/fault) and
// the JobTracker recovery semantics of the cluster engine — expiry
// re-execution, bounded retries, blacklisting, speculative execution and
// the exactly-once commit protocol.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"
#include "hadoop/task_source.h"
#include "multijob/workload.h"

namespace hd::hadoop {
namespace {

using sched::Policy;

CalibratedTaskSource::Params BaseParams() {
  CalibratedTaskSource::Params p;
  p.num_maps = 32;
  p.num_reducers = 2;
  p.cpu_task_sec = 10.0;
  p.gpu_task_sec = 2.0;
  p.variation = 0.0;
  p.map_output_bytes = 1 << 20;
  p.reduce_sec = 1.0;
  return p;
}

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  return c;
}

// --- FaultSpec / ClusterConfig validation --------------------------------

TEST(FaultSpec, ValidationRejectsBadFields) {
  auto rejects = [](auto mutate) {
    fault::FaultSpec s;
    mutate(s);
    EXPECT_THROW(fault::ValidateFaultSpec(s), CheckError);
  };
  rejects([](fault::FaultSpec& s) { s.crash_mttf_sec = -1.0; });
  rejects([](fault::FaultSpec& s) { s.permanent_fraction = 1.5; });
  rejects([](fault::FaultSpec& s) { s.restart_sec = -1.0; });
  rejects([](fault::FaultSpec& s) { s.heartbeat_drop_prob = -0.1; });
  rejects([](fault::FaultSpec& s) { s.cpu_fail_prob = 2.0; });
  rejects([](fault::FaultSpec& s) { s.gpu_oom_prob = -0.5; });
  rejects([](fault::FaultSpec& s) { s.slow_factor = 0.5; });
  fault::ValidateFaultSpec(fault::FaultSpec{});  // defaults are valid
}

TEST(FaultConfig, ClusterValidationRejectsBadRecoveryFields) {
  CalibratedTaskSource src(BaseParams());
  auto rejects = [&src](auto mutate) {
    ClusterConfig c = SmallCluster();
    mutate(c);
    EXPECT_THROW(JobEngine(c, &src, Policy::kCpuOnly), CheckError);
  };
  rejects([](ClusterConfig& c) { c.max_task_attempts = 0; });
  rejects([](ClusterConfig& c) { c.max_gpu_attempts = 0; });
  rejects([](ClusterConfig& c) { c.blacklist_task_failures = 0; });
  rejects([](ClusterConfig& c) { c.retry_backoff_sec = -1.0; });
  rejects([](ClusterConfig& c) { c.heartbeat_expiry_sec = c.heartbeat_sec; });
  rejects([](ClusterConfig& c) { c.speculation_slowdown = 1.0; });
}

// --- Injector determinism -------------------------------------------------

TEST(FaultInjector, CrashPlanDeterministicAndSane) {
  fault::FaultSpec s;
  s.seed = 7;
  s.crash_mttf_sec = 200.0;
  s.permanent_fraction = 0.3;
  s.restart_sec = 30.0;
  s.horizon_sec = 2000.0;
  const fault::FaultInjector a(s), b(s);
  const auto pa = a.CrashPlan(8);
  EXPECT_FALSE(pa.empty());
  // Identical across injector instances and query repetitions.
  EXPECT_EQ(pa.size(), b.CrashPlan(8).size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const auto pb = b.CrashPlan(8);
    EXPECT_DOUBLE_EQ(pa[i].at_sec, pb[i].at_sec);
    EXPECT_EQ(pa[i].node, pb[i].node);
    EXPECT_EQ(pa[i].permanent, pb[i].permanent);
  }
  // Ordered by time; inside the horizon; a permanent crash is each node's
  // last.
  std::map<int, bool> dead;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (i > 0) EXPECT_GE(pa[i].at_sec, pa[i - 1].at_sec);
    EXPECT_LT(pa[i].at_sec, s.horizon_sec);
    EXPECT_FALSE(dead[pa[i].node]);
    if (pa[i].permanent) dead[pa[i].node] = true;
  }
}

TEST(FaultInjector, DrawsAreStatelessAndOrderIndependent) {
  fault::FaultSpec s;
  s.seed = 11;
  s.cpu_fail_prob = 0.3;
  s.gpu_fail_prob = 0.3;
  s.gpu_oom_prob = 0.2;
  s.heartbeat_drop_prob = 0.25;
  s.slow_node_prob = 0.5;
  const fault::FaultInjector inj(s);
  // Query in two different orders: every site's outcome is a pure function
  // of its identity.
  std::vector<fault::AttemptOutcome> fwd, bwd;
  for (int t = 0; t < 50; ++t) fwd.push_back(inj.DrawAttempt(0, t, 0, true));
  for (int t = 49; t >= 0; --t) bwd.push_back(inj.DrawAttempt(0, t, 0, true));
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(fwd[static_cast<std::size_t>(t)],
              bwd[static_cast<std::size_t>(49 - t)]);
  }
  EXPECT_EQ(inj.DropHeartbeat(2, 17), inj.DropHeartbeat(2, 17));
  EXPECT_DOUBLE_EQ(inj.SlowFactor(3), inj.SlowFactor(3));
  const double fp = inj.FailPoint(1, 2, 3);
  EXPECT_GE(fp, 0.1);
  EXPECT_LT(fp, 0.9);
}

// --- Recovery semantics ---------------------------------------------------

// A transient outage longer than the expiry window loses the tracker: its
// running attempts re-enqueue AND the maps it already committed re-execute
// (their output lived on its local disk and reducers still need it).
TEST(FaultRecovery, ExpiryRerunsCommittedMaps) {
  fault::FaultSpec s;
  s.seed = 3;
  s.crash_mttf_sec = 120.0;
  s.permanent_fraction = 0.0;
  s.restart_sec = 45.0;  // > heartbeat_expiry_sec: the node gets lost
  s.horizon_sec = 400.0;
  const fault::FaultInjector inj(s);
  ASSERT_FALSE(inj.CrashPlan(4).empty());

  CalibratedTaskSource src(BaseParams());
  ClusterConfig c = SmallCluster();
  c.heartbeat_sec = 1.0;
  c.heartbeat_expiry_sec = 5.0;
  c.faults = &inj;
  const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();
  EXPECT_GT(r.nodes_lost, 0);
  EXPECT_GT(r.maps_reexecuted, 0);
  EXPECT_GT(r.task_retries, 0);
  // Re-execution costs time over the fault-free run.
  CalibratedTaskSource clean_src(BaseParams());
  ClusterConfig clean = c;
  clean.faults = nullptr;
  const JobResult base = JobEngine(clean, &clean_src, Policy::kCpuOnly).Run();
  EXPECT_GT(r.makespan_sec, base.makespan_sec);
  // Commit accounting stayed exact: every map's bytes counted exactly once.
  EXPECT_EQ(r.total_map_output_bytes, base.total_map_output_bytes);
}

// An outage shorter than the expiry window is a tracker restart: the
// JobTracker never declares it lost, but the attempts that died in the
// crash still reschedule when the tracker re-registers (this was a
// livelock once: tasks stuck kRunning with no attempt).
TEST(FaultRecovery, ShortOutageReschedulesKilledAttempts) {
  fault::FaultSpec s;
  s.seed = 5;
  s.crash_mttf_sec = 60.0;
  s.permanent_fraction = 0.0;
  s.restart_sec = 3.0;  // < expiry: never declared lost
  s.horizon_sec = 600.0;
  const fault::FaultInjector inj(s);
  CalibratedTaskSource src(BaseParams());
  ClusterConfig c = SmallCluster();
  c.heartbeat_sec = 1.0;
  c.heartbeat_expiry_sec = 10.0;
  c.faults = &inj;
  const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();  // finishes
  EXPECT_EQ(r.nodes_lost, 0);
  EXPECT_GT(r.killed_attempts, 0);
  EXPECT_GT(r.task_retries, 0);
}

TEST(FaultRecovery, FailedAttemptsRetryWithBackoffThenSucceed) {
  fault::FaultSpec s;
  s.seed = 2;
  s.cpu_fail_prob = 0.3;
  const fault::FaultInjector inj(s);
  CalibratedTaskSource src(BaseParams());
  ClusterConfig c = SmallCluster();
  c.faults = &inj;
  c.max_task_attempts = 10;
  const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();
  EXPECT_GT(r.task_failures, 0);
  EXPECT_EQ(r.task_failures, r.task_retries);  // every failure re-enqueued
  // cpu_tasks counts started attempts: one commit per map plus the failures.
  EXPECT_EQ(r.cpu_tasks, 32 + r.task_failures);
  // Exactly-once commit: bytes accumulate at commit time, once per map.
  EXPECT_EQ(r.total_map_output_bytes, 32 * (1 << 20));
}

TEST(FaultRecovery, ExhaustedAttemptsFailTheJob) {
  fault::FaultSpec s;
  s.seed = 2;
  s.cpu_fail_prob = 1.0;  // every attempt fails partway
  const fault::FaultInjector inj(s);
  CalibratedTaskSource src(BaseParams());
  ClusterConfig c = SmallCluster();
  c.faults = &inj;
  c.max_task_attempts = 3;
  c.retry_backoff_sec = 0.1;
  EXPECT_THROW(JobEngine(c, &src, Policy::kCpuOnly).Run(), JobFailedError);
}

TEST(FaultRecovery, BlacklistsFailingTrackerButNeverTheLastOne) {
  fault::FaultSpec s;
  s.seed = 19;
  s.cpu_fail_prob = 0.45;
  const fault::FaultInjector inj(s);
  {
    CalibratedTaskSource src(BaseParams());
    ClusterConfig c = SmallCluster();
    c.faults = &inj;
    c.max_task_attempts = 64;
    c.blacklist_task_failures = 3;
    c.retry_backoff_sec = 0.1;
    const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();
    EXPECT_GT(r.nodes_blacklisted, 0);
    EXPECT_EQ(r.cpu_tasks, 32 + r.task_failures);
    EXPECT_EQ(r.total_map_output_bytes, 32 * (1 << 20));
  }
  {
    // Single-tracker cluster under the same fault rate: blacklisting it
    // would livelock the cluster, so the engine must keep it schedulable.
    CalibratedTaskSource src(BaseParams());
    ClusterConfig c = SmallCluster();
    c.num_slaves = 1;
    c.faults = &inj;
    c.max_task_attempts = 64;
    c.blacklist_task_failures = 3;
    c.retry_backoff_sec = 0.1;
    const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();
    EXPECT_EQ(r.nodes_blacklisted, 0);
    EXPECT_EQ(r.cpu_tasks, 32 + r.task_failures);
    EXPECT_EQ(r.total_map_output_bytes, 32 * (1 << 20));
  }
}

TEST(FaultRecovery, GpuAttemptCapDemotesToCpu) {
  // A job whose GPU tasks always fail (kmeans on Cluster2): without the
  // cap, tail forcing bounces tasks through the GPU forever. With it, each
  // task fails at most max_gpu_attempts GPU launches before running
  // CPU-only.
  CalibratedTaskSource::Params p = BaseParams();
  p.gpu_supported = false;
  CalibratedTaskSource src(p);
  ClusterConfig c = SmallCluster();
  c.max_gpu_attempts = 2;
  const JobResult r = JobEngine(c, &src, Policy::kGpuFirst).Run();
  EXPECT_EQ(r.gpu_tasks, 0);
  EXPECT_GT(r.gpu_demotions, 0);
  EXPECT_LE(r.gpu_failures,
            static_cast<std::int64_t>(p.num_maps) * c.max_gpu_attempts);
  EXPECT_EQ(r.cpu_tasks, p.num_maps);
}

TEST(FaultRecovery, SpeculationRescuesSlowNodeAndCommitsOnce) {
  CalibratedTaskSource::Params p = BaseParams();
  p.num_reducers = 0;  // map-only: makespan is pure map placement
  CalibratedTaskSource src(p);
  ClusterConfig c = SmallCluster();
  c.gpus_per_node = 0;
  c.node_speed_factors = {1.0, 1.0, 1.0, 6.0};  // one crippled tracker
  c.speculation = true;
  const JobResult r = JobEngine(c, &src, Policy::kCpuOnly).Run();
  EXPECT_GT(r.speculative_launched, 0);
  EXPECT_GT(r.speculative_wins, 0);
  // Exactly one commit per map: wins + losses account for every duplicate,
  // and output bytes (accumulated at commit) count each map once.
  EXPECT_EQ(r.speculative_wins + r.speculative_losses,
            r.speculative_launched);
  EXPECT_EQ(r.cpu_tasks, p.num_maps + r.speculative_launched);
  EXPECT_EQ(r.total_map_output_bytes,
            static_cast<std::int64_t>(p.num_maps) * (1 << 20));

  CalibratedTaskSource src2(p);
  ClusterConfig no_spec = c;
  no_spec.speculation = false;
  const JobResult slow = JobEngine(no_spec, &src2, Policy::kCpuOnly).Run();
  EXPECT_LT(r.makespan_sec, slow.makespan_sec);  // speculation helped
}

// --- Determinism and the exactly-once headline ----------------------------

TEST(FaultRecovery, SeededReplayIsBitIdentical) {
  fault::FaultSpec s;
  s.seed = 23;
  s.crash_mttf_sec = 150.0;
  s.permanent_fraction = 0.2;
  s.restart_sec = 40.0;
  s.horizon_sec = 600.0;
  s.cpu_fail_prob = 0.1;
  s.gpu_fail_prob = 0.1;
  s.gpu_oom_prob = 0.05;
  s.heartbeat_drop_prob = 0.05;
  s.slow_node_prob = 0.3;
  const fault::FaultInjector inj(s);
  auto run = [&inj] {
    CalibratedTaskSource src(BaseParams());
    ClusterConfig c = SmallCluster();
    c.heartbeat_sec = 1.0;
    c.heartbeat_expiry_sec = 5.0;
    c.faults = &inj;
    c.speculation = true;
    c.max_task_attempts = 16;
    return JobEngine(c, &src, Policy::kTail).Run();
  };
  const JobResult a = run();
  const JobResult b = run();
  EXPECT_DOUBLE_EQ(a.makespan_sec, b.makespan_sec);
  EXPECT_EQ(a.cpu_tasks, b.cpu_tasks);
  EXPECT_EQ(a.gpu_tasks, b.gpu_tasks);
  EXPECT_EQ(a.task_failures, b.task_failures);
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.killed_attempts, b.killed_attempts);
  EXPECT_EQ(a.maps_reexecuted, b.maps_reexecuted);
  EXPECT_EQ(a.speculative_launched, b.speculative_launched);
  EXPECT_EQ(a.nodes_lost, b.nodes_lost);
  EXPECT_EQ(a.total_map_output_bytes, b.total_map_output_bytes);
}

constexpr const char* kWcMap = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i]; i++; j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0; offset = 0; one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kSumReduce = R"(
int main() {
  char word[30], prevWord[30];
  int count, val;
  prevWord[0] = '\0';
  count = 0;
  while (scanf("%s %d", word, &val) == 2) {
    if (strcmp(word, prevWord) == 0) { count += val; }
    else {
      if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
      strcpy(prevWord, word);
      count = val;
    }
  }
  if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  return 0;
}
)";

std::map<std::string, long> Histogram(const std::vector<gpurt::KvPair>& kvs) {
  std::map<std::string, long> h;
  for (const auto& kv : kvs) {
    h[kv.key] += std::strtol(kv.value.c_str(), nullptr, 10);
  }
  return h;
}

// The headline invariant: a functional job's committed output is
// bit-identical with faults injected and without — node losses, retries,
// re-executed maps and speculative duplicates change when work runs,
// never what it computes.
TEST(FaultRecovery, OutputBitIdenticalUnderFaults) {
  const gpurt::JobProgram job = gpurt::CompileJob(kWcMap, "", kSumReduce);
  const std::vector<std::string> splits = {
      "the cat sat on the mat\n", "the dog ate the bone\n",
      "cat and dog and mat\n",    "bone of the dog\n",
      "a cat a dog a bone\n",     "mat under the cat\n",
      "the quick brown fox\n",    "fox and cat and dog\n"};
  FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 2;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;

  // Clock scaled to the functional tasks' microsecond durations; the
  // transient outage outlives the expiry window so committed maps on a
  // lost tracker re-execute.
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 2e-5;
  c.heartbeat_expiry_sec = 1e-4;
  c.retry_backoff_sec = 2e-5;
  c.max_task_attempts = 16;
  c.speculation = true;

  FunctionalTaskSource clean(job, splits, fopts);
  const JobResult base = JobEngine(c, &clean, Policy::kTail).Run();
  const auto want = Histogram(base.final_output);
  ASSERT_FALSE(want.empty());

  std::int64_t recovery_events = 0;
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
    fault::FaultSpec s;
    s.seed = seed;
    s.crash_mttf_sec = 4e-4;
    s.permanent_fraction = 0.0;
    s.restart_sec = 1.5e-4;
    s.horizon_sec = 0.05;
    s.cpu_fail_prob = 0.15;
    s.gpu_fail_prob = 0.15;
    s.gpu_oom_prob = 0.05;
    s.heartbeat_drop_prob = 0.05;
    s.slow_node_prob = 0.25;
    const fault::FaultInjector inj(s);
    ClusterConfig fc = c;
    fc.faults = &inj;
    FunctionalTaskSource src(job, splits, fopts);
    const JobResult r = JobEngine(fc, &src, Policy::kTail).Run();
    EXPECT_EQ(Histogram(r.final_output), want) << "seed " << seed;
    recovery_events += r.task_failures + r.task_retries + r.killed_attempts +
                       r.maps_reexecuted + r.speculative_launched;
  }
  // The invariance must have been exercised, not vacuous.
  EXPECT_GT(recovery_events, 0);
}

// Fault-free runs with the injector attached but all rates zero behave
// identically to a null injector (the draws all come back clean).
TEST(FaultRecovery, ZeroRateInjectorMatchesNullInjector) {
  const fault::FaultInjector inj(fault::FaultSpec{});
  CalibratedTaskSource a_src(BaseParams()), b_src(BaseParams());
  ClusterConfig c = SmallCluster();
  const JobResult base = JobEngine(c, &a_src, Policy::kTail).Run();
  c.faults = &inj;
  const JobResult faulted = JobEngine(c, &b_src, Policy::kTail).Run();
  EXPECT_DOUBLE_EQ(base.makespan_sec, faulted.makespan_sec);
  EXPECT_EQ(base.cpu_tasks, faulted.cpu_tasks);
  EXPECT_EQ(base.gpu_tasks, faulted.gpu_tasks);
  EXPECT_EQ(faulted.task_failures, 0);
  EXPECT_EQ(faulted.nodes_lost, 0);
}

// The multi-job engine recovers too: a faulted workload drains, reports
// cluster-level availability and per-job recovery counters.
TEST(FaultRecovery, MultiJobWorkloadSurvivesFaults) {
  fault::FaultSpec s;
  s.seed = 31;
  s.crash_mttf_sec = 300.0;
  s.permanent_fraction = 0.1;
  s.restart_sec = 40.0;
  s.horizon_sec = 1200.0;
  s.cpu_fail_prob = 0.05;
  s.gpu_fail_prob = 0.05;
  s.heartbeat_drop_prob = 0.02;
  s.slow_node_prob = 0.2;
  const fault::FaultInjector inj(s);
  ClusterConfig c;
  c.num_slaves = 8;
  c.map_slots_per_node = 4;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.faults = &inj;
  c.speculation = true;
  c.max_task_attempts = 16;
  multijob::WorkloadSpec spec;
  spec.mode = multijob::WorkloadSpec::Mode::kClosedLoop;
  spec.num_jobs = 8;
  spec.concurrency = 4;
  spec.policy = Policy::kTail;
  spec.seed = 20150615;
  const multijob::WorkloadMetrics m = multijob::RunWorkload(
      c, multijob::SchedulerKind::kFair, multijob::Table2Mix(16, 2), spec);
  EXPECT_EQ(m.jobs.size(), 8u);
  EXPECT_GT(m.nodes_crashed, 0);
  EXPECT_GT(m.availability, 0.0);
  EXPECT_LE(m.availability, 1.0);
  // Same spec replays bit-identically.
  const multijob::WorkloadMetrics m2 = multijob::RunWorkload(
      c, multijob::SchedulerKind::kFair, multijob::Table2Mix(16, 2), spec);
  EXPECT_DOUBLE_EQ(m.makespan_sec, m2.makespan_sec);
  EXPECT_EQ(m.TotalTaskRetries(), m2.TotalTaskRetries());
  EXPECT_EQ(m.TotalMapsReexecuted(), m2.TotalMapsReexecuted());
  EXPECT_DOUBLE_EQ(m.availability, m2.availability);
}

}  // namespace
}  // namespace hd::hadoop
