
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_property_test.cc" "tests/CMakeFiles/pipeline_property_test.dir/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/pipeline_property_test.dir/pipeline_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/hd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hadoop/CMakeFiles/hd_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/gpurt/CMakeFiles/hd_gpurt.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/hd_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/hd_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/hd_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hd_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
