# Empty dependencies file for fig4a_cluster1.
# This may be replaced when dependencies are built.
