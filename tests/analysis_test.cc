// Tests for the hdlint static analyzer: diagnostics engine rendering,
// pass behaviour over the examples/bad negative corpus (golden-compared),
// clean runs over every registered benchmark app, and agreement between
// the analysis layer's Algorithm 1 mirror and the translator's plans.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "apps/benchmark.h"
#include "translator/translator.h"

namespace hd::analysis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool HasId(const DiagnosticEngine& de, const std::string& id) {
  for (const auto& d : de.diagnostics()) {
    if (d.id == id) return true;
  }
  return false;
}

const Diagnostic* FindId(const DiagnosticEngine& de, const std::string& id) {
  for (const auto& d : de.diagnostics()) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// DiagnosticEngine.
// ---------------------------------------------------------------------------

TEST(Diagnostics, CountsAndRenderText) {
  DiagnosticEngine de;
  de.Error("HD999", "test-pass", "a.c", 3, 7, "boom", "fix it");
  de.Warning("HD998", "test-pass", "a.c", 1, 2, "hmm");
  de.Note("HD997", "test-pass", "a.c", 5, 0, "fyi");
  EXPECT_EQ(de.ErrorCount(), 1);
  EXPECT_EQ(de.WarningCount(), 1);
  EXPECT_EQ(de.NoteCount(), 1);
  EXPECT_TRUE(de.HasErrors());

  de.SortBySource();
  EXPECT_EQ(de.diagnostics()[0].id, "HD998");  // line 1 first after sort
  const std::string text = de.RenderText();
  EXPECT_NE(text.find("a.c:3:7: error: boom [test-pass HD999]"),
            std::string::npos);
  EXPECT_NE(text.find("  hint: fix it"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 note(s)"),
            std::string::npos);
}

TEST(Diagnostics, RenderJsonEscapesSpecials) {
  DiagnosticEngine de;
  de.Error("HD999", "p", "dir/a \"b\".c", 1, 1, "line1\nline2\tend\\");
  const std::string json = de.RenderJson();
  EXPECT_NE(json.find("dir/a \\\"b\\\".c"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\tend\\\\"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one-line document
}

// ---------------------------------------------------------------------------
// Golden corpus: examples/bad/<case>.c vs <case>.expected.
// ---------------------------------------------------------------------------

void CheckGolden(const std::string& name) {
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/bad/";
  const std::string source = ReadFile(dir + name + ".c");
  const std::string expected = ReadFile(dir + name + ".expected");
  AnalyzerOptions opts;
  opts.source_name = name + ".c";  // goldens are recorded with bare names
  const AnalysisResult result = AnalyzeSource(source, opts);
  EXPECT_EQ(result.diags.RenderText(), expected) << "corpus case " << name;
}

TEST(BadCorpus, BadClausesGolden) { CheckGolden("bad_clauses"); }
TEST(BadCorpus, RacedSharedWriteGolden) { CheckGolden("raced_shared_write"); }
TEST(BadCorpus, OversizedKvGolden) { CheckGolden("oversized_kv"); }
TEST(BadCorpus, TextureDemotionGolden) { CheckGolden("texture_demotion"); }

TEST(BadCorpus, ErrorCasesHaveErrorsDemotionDoesNot) {
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/bad/";
  for (const char* name : {"bad_clauses", "raced_shared_write",
                           "oversized_kv"}) {
    const AnalysisResult r = AnalyzeSource(ReadFile(dir + name + ".c"));
    EXPECT_TRUE(r.diags.HasErrors()) << name;
  }
  const AnalysisResult r =
      AnalyzeSource(ReadFile(dir + "texture_demotion.c"));
  EXPECT_FALSE(r.diags.HasErrors());
  EXPECT_GE(r.diags.WarningCount(), 2);
}

// ---------------------------------------------------------------------------
// Pass behaviour on focused inputs.
// ---------------------------------------------------------------------------

TEST(Analyzer, ReportsEveryProblemInOneRun) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n) keyin(word) kvpairs(bad)
  while (getRecord(word)) {
    n = strlen(word);
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  EXPECT_TRUE(HasId(r.diags, "HD105"));  // keyin on mapper
  EXPECT_TRUE(HasId(r.diags, "HD108"));  // non-integer kvpairs
  EXPECT_GE(r.diags.ErrorCount(), 2);    // both reported, not just the first
  const Diagnostic* d = FindId(r.diags, "HD105");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 5);  // directive line
  EXPECT_EQ(d->pass, "directive-check");
}

TEST(Analyzer, RaceSitesCarryExactLocations) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
  int table[8];
  int i;
  for (i = 0; i < 8; i++) table[i] = i;
#pragma mapreduce mapper key(word) value(n) sharedRO(table)
  while (getRecord(word)) {
    n = table[0];
    table[0] = n;
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  const Diagnostic* d = FindId(r.diags, "HD201");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 11);  // the write site, not the directive
  EXPECT_GT(d->col, 0);
  EXPECT_EQ(d->severity, Severity::kError);
}

TEST(Analyzer, ConstantIndexCollisionIsCalledOut) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int out[4];
  int n;
  out[0] = 0;
  n = out[0];
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    n = out[1] + 1;
    out[1] = n;
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  const Diagnostic* d = FindId(r.diags, "HD204");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("same"), std::string::npos)
      << "constant index should note the all-threads collision: "
      << d->message;
}

TEST(Analyzer, KvBoundsLoopEmissionWarns) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char line[64];
  char word[16];
  int one;
#pragma mapreduce mapper key(word) value(one) kvpairs(4)
  while (getRecord(line)) {
    int i;
    for (i = 0; i < 4; i++) {
      one = 1;
      strncpy(word, line, 15);
      printf("%s\t%d\n", word, one);
    }
  }
  return 0;
})");
  EXPECT_TRUE(HasId(r.diags, "HD304"));
  EXPECT_FALSE(r.diags.HasErrors());
}

TEST(Analyzer, MapperThatNeverEmitsWarns) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    n = strlen(word);
  }
  return 0;
})");
  EXPECT_TRUE(HasId(r.diags, "HD305"));
}

TEST(Analyzer, PortabilityFindsRecursionAndUnknownCalls) {
  const AnalysisResult r = AnalyzeSource(R"(
int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    n = fact(strlen(word)) + mystery(word);
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  EXPECT_TRUE(HasId(r.diags, "HD501"));
  const Diagnostic* d = FindId(r.diags, "HD502");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("mystery"), std::string::npos);
  EXPECT_EQ(d->line, 11);
}

TEST(Analyzer, HostOnlyCallInsideRegionIsError) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    n = 1;
    exit(1);
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  EXPECT_TRUE(HasId(r.diags, "HD504"));
}

TEST(Analyzer, UnboundedLoopWarns) {
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    int i;
    i = 0;
    n = 0;
    while (i < 10) { n = n + 1; }
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
  const Diagnostic* d = FindId(r.diags, "HD503");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 10);
}

TEST(Analyzer, ParseFailureBecomesDiagnostic) {
  const AnalysisResult r = AnalyzeSource("int main( {");
  EXPECT_EQ(r.unit, nullptr);
  EXPECT_TRUE(HasId(r.diags, "HD001"));
  EXPECT_TRUE(r.diags.HasErrors());
}

TEST(Analyzer, LintModeIsLenientAboutMissingDirective) {
  AnalyzerOptions lint;  // require_directive = false
  const AnalysisResult r1 = AnalyzeSource("int main() { return 0; }", lint);
  EXPECT_FALSE(r1.diags.HasErrors());
  EXPECT_TRUE(HasId(r1.diags, "HD102"));

  AnalyzerOptions strict;
  strict.require_directive = true;
  const AnalysisResult r2 =
      AnalyzeSource("int main() { return 0; }", strict);
  EXPECT_TRUE(r2.diags.HasErrors());
}

TEST(Analyzer, AuditNotesExplainEveryExternalVariable) {
  AnalyzerOptions opts;
  opts.audit_notes = true;
  const AnalysisResult r = AnalyzeSource(R"(
int main() {
  char word[16];
  int n;
#pragma mapreduce mapper key(word) value(n)
  while (getRecord(word)) {
    n = 1;
    printf("%s\t%d\n", word, n);
  }
  return 0;
})",
                                         opts);
  int notes = 0;
  for (const auto& d : r.diags.diagnostics()) {
    if (d.id == "HD401") ++notes;
  }
  EXPECT_GE(notes, 2);  // word and n both explained
}

// ---------------------------------------------------------------------------
// Benchmark apps: hdlint-clean, and mirror agreement with the translator.
// ---------------------------------------------------------------------------

TEST(Apps, EveryBenchmarkSourceLintsWithoutErrors) {
  for (const auto& b : apps::AllBenchmarks()) {
    for (const auto& [tag, src] :
         {std::pair<const char*, const std::string*>{"map", &b.map_source},
          {"combine", &b.combine_source},
          {"reduce", &b.reduce_source}}) {
      if (src->empty()) continue;
      AnalyzerOptions opts;
      opts.source_name = b.id + ":" + tag;
      const AnalysisResult r = AnalyzeSource(*src, opts);
      EXPECT_FALSE(r.diags.HasErrors())
          << b.id << " " << tag << " source:\n" << r.diags.RenderText();
    }
  }
}

Placement ExpectedPlacement(translator::VarClass c) {
  switch (c) {
    case translator::VarClass::kSharedROScalar: return Placement::kConstant;
    case translator::VarClass::kSharedROArray: return Placement::kGlobal;
    case translator::VarClass::kTexture: return Placement::kTexture;
    case translator::VarClass::kFirstPrivate: return Placement::kFirstPrivate;
    case translator::VarClass::kPrivate: return Placement::kPrivate;
  }
  return Placement::kPrivate;
}

// Pins analysis::ClassifyPlacement to the translator's VarPlan over every
// benchmark: the two layers must never drift apart.
TEST(Apps, PlacementMirrorAgreesWithTranslatorPlans) {
  for (const auto& b : apps::AllBenchmarks()) {
    for (const std::string* src : {&b.map_source, &b.combine_source}) {
      if (src->empty()) continue;
      const translator::TranslatedProgram tp = translator::Translate(*src);
      AnalyzerOptions aopts;
      const AnalysisResult ar = AnalyzeSource(*src, aopts);
      ASSERT_FALSE(ar.diags.HasErrors()) << b.id;
      for (const auto& plan : {tp.map_plan, tp.combine_plan}) {
        if (!plan) continue;
        const RegionContext* rc = nullptr;
        for (const auto& region : ar.regions) {
          if (region.directive->kind == plan->kind) rc = &region;
        }
        ASSERT_NE(rc, nullptr) << b.id;
        for (const auto& vp : plan->vars) {
          const PlacementDecision d = ClassifyPlacement(vp.name, *rc, aopts);
          EXPECT_EQ(d.placement, ExpectedPlacement(vp.cls))
              << b.id << " variable " << vp.name << ": " << d.reason;
          EXPECT_FALSE(d.reason.empty());
        }
        // KV slot widths come from the same function the plan used.
        const int declared_key =
            plan->directive->Has("keylength")
                ? std::stoi(plan->directive->Arg("keylength"))
                : 0;
        const auto key_t = rc->info.outer_types.at(plan->key_var);
        EXPECT_EQ(KvSlotBytes(key_t, declared_key, 16, 28),
                  plan->kv.key_slot_bytes)
            << b.id;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Translate() integration: one throw carries all errors, with locations.
// ---------------------------------------------------------------------------

TEST(TranslateIntegration, SingleThrowReportsAllErrorsWithLocations) {
  try {
    translator::Translate(R"(
int main() {
  char word[16];
  int n;
  int table[4];
  n = table[0];
#pragma mapreduce mapper key(word) value(n) sharedRO(table) kvpairs(nope)
  while (getRecord(word)) {
    n = table[1];
    table[1] = n + 1;
    printf("%s\t%d\n", word, n);
  }
  return 0;
})");
    FAIL() << "expected TranslateError";
  } catch (const translator::TranslateError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HD108"), std::string::npos) << what;  // bad kvpairs
    EXPECT_NE(what.find("HD201"), std::string::npos) << what;  // raced write
    ASSERT_GE(e.diagnostics().size(), 2u);
    bool saw_site = false;
    for (const auto& d : e.diagnostics()) {
      if (d.id == "HD201") {
        EXPECT_EQ(d.line, 10);
        EXPECT_GT(d.col, 0);
        saw_site = true;
      }
    }
    EXPECT_TRUE(saw_site);
  }
}

TEST(TranslateIntegration, ValidProgramStillTranslates) {
  const translator::TranslatedProgram tp = translator::Translate(R"(
int main() {
  char word[16];
  int one;
#pragma mapreduce mapper key(word) value(one) keylength(16)
  while (getRecord(word)) {
    one = 1;
    printf("%s\t%d\n", word, one);
  }
  return 0;
})");
  ASSERT_TRUE(tp.map_plan.has_value());
  EXPECT_EQ(tp.map_plan->kv.key_slot_bytes, 16);
}

}  // namespace
}  // namespace hd::analysis
