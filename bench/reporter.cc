#include "bench/reporter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"
#include "common/table.h"

namespace hd::bench {

namespace {

json::Value JString(std::string s) {
  json::Value v;
  v.kind = json::Value::Kind::kString;
  v.string = std::move(s);
  return v;
}

json::Value JNumber(double d) {
  json::Value v;
  v.kind = json::Value::Kind::kNumber;
  v.number = d;
  return v;
}

json::Value JBool(bool b) {
  json::Value v;
  v.kind = json::Value::Kind::kBool;
  v.boolean = b;
  return v;
}

void WriteValue(json::Writer& w, const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull: w.Null(); return;
    case json::Value::Kind::kBool: w.Bool(v.boolean); return;
    case json::Value::Kind::kNumber: w.Number(v.number); return;
    case json::Value::Kind::kString: w.String(v.string); return;
    case json::Value::Kind::kArray:
      w.BeginArray();
      for (const auto& e : v.array) WriteValue(w, e);
      w.EndArray();
      return;
    case json::Value::Kind::kObject:
      w.BeginObject();
      for (const auto& [k, e] : v.object) {
        w.Key(k);
        WriteValue(w, e);
      }
      w.EndObject();
      return;
  }
}

// A sink for --quiet: swallow everything.
class NullBuf : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
};

NullBuf& TheNullBuf() {
  static NullBuf buf;
  return buf;
}

[[noreturn]] void Usage(const std::string& id, int code) {
  std::fprintf(stderr,
               "usage: %s [--json <path>] [--trace-out <path>] "
               "[--metrics-out <path>] [--timeseries-out <path>] "
               "[--sample-interval <sec>] [--seed <n>] [--policy <name>] "
               "[--scheduler <name>] [--fail-on-alert] [--smoke] [--quiet]\n"
               "  --json <path>         write the %s report\n"
               "  --trace-out <path>    write a Chrome/Perfetto trace of the "
               "run (alias: --trace)\n"
               "  --metrics-out <path>  write just the flat metrics JSON\n"
               "  --timeseries-out <path>  write live telemetry sampled over "
               "modeled time\n"
               "                        (heterodoop.timeseries.v1 JSONL; "
               "read with `hdprof timeline`)\n"
               "  --sample-interval <sec>  telemetry sampling period in "
               "modeled seconds (default 5)\n"
               "  --seed <n>            workload/injector seed (ignored by "
               "fully deterministic binaries)\n"
               "  --policy <name>       run only this per-job policy "
               "(cpu-only, gpu-first, tail)\n"
               "  --scheduler <name>    run only this inter-job scheduler "
               "(fifo, fair, capacity, slo-*)\n"
               "  --fail-on-alert       exit nonzero when any telemetry SLO "
               "alert fired during\n"
               "                        the run (needs --timeseries-out to "
               "enable the sampler)\n"
               "  --smoke               shrunk inputs (fast schema checks)\n"
               "  --quiet               suppress the human-readable output\n",
               id.c_str(), kSchema);
  std::exit(code);
}

}  // namespace

ReportTable::ReportTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  HD_CHECK(!columns_.empty());
}

ReportTable& ReportTable::Row() {
  HD_CHECK_MSG(rows_.empty() || rows_.back().size() == columns_.size(),
               "table '" << title_ << "': previous row is incomplete");
  rows_.emplace_back();
  human_rows_.emplace_back();
  return *this;
}

void ReportTable::Push(json::Value v, std::string human) {
  HD_CHECK_MSG(!rows_.empty(), "Cell() before Row()");
  HD_CHECK_MSG(rows_.back().size() < columns_.size(),
               "table '" << title_ << "': more cells than columns");
  rows_.back().push_back(std::move(v));
  human_rows_.back().push_back(std::move(human));
}

ReportTable& ReportTable::Cell(std::string v) {
  std::string human = v;
  Push(JString(std::move(v)), std::move(human));
  return *this;
}

ReportTable& ReportTable::Cell(const char* v) { return Cell(std::string(v)); }

ReportTable& ReportTable::Cell(double v, int precision) {
  Push(JNumber(v), FormatDouble(v, precision));
  return *this;
}

ReportTable& ReportTable::Cell(std::uint64_t v) {
  Push(JNumber(static_cast<double>(v)), std::to_string(v));
  return *this;
}

ReportTable& ReportTable::Cell(std::int64_t v) {
  Push(JNumber(static_cast<double>(v)), std::to_string(v));
  return *this;
}

ReportTable& ReportTable::Cell(int v) {
  return Cell(static_cast<std::int64_t>(v));
}

void ReportTable::PrintHuman(std::ostream& os) const {
  Table t(columns_);
  for (const auto& row : human_rows_) {
    t.Row();
    for (const auto& cell : row) t.Cell(cell);
  }
  t.Print(os);
}

Reporter::Reporter(std::string benchmark_id, int argc, char** argv)
    : benchmark_id_(std::move(benchmark_id)) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_ = true;
    } else if (arg == "--quiet") {
      quiet_ = true;
    } else if (arg == "--fail-on-alert") {
      fail_on_alert_ = true;
    } else if (arg == "--seed") {
      if (i + 1 >= argc) Usage(benchmark_id_, 2);
      char* end = nullptr;
      seed_ = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') Usage(benchmark_id_, 2);
      has_seed_ = true;
    } else if (arg == "--policy" || arg == "--scheduler") {
      if (i + 1 >= argc) Usage(benchmark_id_, 2);
      (arg == "--policy" ? policy_ : scheduler_) = argv[++i];
    } else if (arg == "--sample-interval") {
      if (i + 1 >= argc) Usage(benchmark_id_, 2);
      char* end = nullptr;
      sample_interval_ = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(sample_interval_ > 0.0)) {
        Usage(benchmark_id_, 2);
      }
    } else if (arg == "--json" || arg == "--trace" || arg == "--trace-out" ||
               arg == "--metrics-out" || arg == "--timeseries-out") {
      if (i + 1 >= argc) Usage(benchmark_id_, 2);
      std::string& slot = arg == "--json"          ? json_path_
                          : arg == "--metrics-out" ? metrics_path_
                          : arg == "--timeseries-out"
                              ? timeseries_path_
                              : trace_path_;
      slot = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(benchmark_id_, 0);
    } else {
      Usage(benchmark_id_, 2);
    }
  }
  if (!trace_path_.empty()) {
    chrome_ = std::make_unique<trace::ChromeTraceSink>();
  }
  if (!timeseries_path_.empty()) {
    trace::TimeSeriesOptions opts;
    opts.sample_interval_sec = sample_interval_;
    timeseries_ = std::make_unique<trace::TimeSeries>(opts);
  }
  null_out_ = std::make_unique<std::ostream>(&TheNullBuf());
}

Reporter::~Reporter() { Finish(); }

trace::Sink* Reporter::sink() { return chrome_.get(); }

std::ostream& Reporter::out() { return quiet_ ? *null_out_ : std::cout; }

ReportTable& Reporter::AddTable(std::string title,
                                std::vector<std::string> columns) {
  tables_.push_back(
      std::make_unique<ReportTable>(std::move(title), std::move(columns)));
  return *tables_.back();
}

void Reporter::Print(const ReportTable& t) { t.PrintHuman(out()); }

void Reporter::Config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, JString(value));
}
void Reporter::Config(const std::string& key, const char* value) {
  Config(key, std::string(value));
}
void Reporter::Config(const std::string& key, double value) {
  config_.emplace_back(key, JNumber(value));
}
void Reporter::Config(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, JNumber(static_cast<double>(value)));
}
void Reporter::Config(const std::string& key, int value) {
  Config(key, static_cast<std::int64_t>(value));
}
void Reporter::Config(const std::string& key, bool value) {
  config_.emplace_back(key, JBool(value));
}

int Reporter::Finish() {
  if (finished_) return exit_code_;
  finished_ = true;

  if (!json_path_.empty()) {
    std::ofstream f(json_path_, std::ios::binary);
    HD_CHECK_MSG(f.good(), "cannot open --json path '" << json_path_ << "'");
    json::Writer w(f);
    w.BeginObject();
    w.Key("schema").String(kSchema);
    w.Key("benchmark").String(benchmark_id_);
    w.Key("smoke").Bool(smoke_);
    w.Key("config");
    w.BeginObject();
    for (const auto& [k, v] : config_) {
      w.Key(k);
      WriteValue(w, v);
    }
    w.EndObject();
    w.Key("modeled_seconds").Number(modeled_seconds_);
    w.Key("rows");
    w.BeginArray();
    for (const auto& t : tables_) {
      for (const auto& row : t->rows_) {
        w.BeginObject();
        w.Key("table").String(t->title_);
        for (std::size_t c = 0; c < row.size(); ++c) {
          w.Key(t->columns_[c]);
          WriteValue(w, row[c]);
        }
        w.EndObject();
      }
    }
    w.EndArray();
    w.Key("metrics");
    std::ostringstream ms;
    registry_.WriteJson(ms);
    WriteValue(w, json::Parse(ms.str()));
    // Always present: SLO alert transitions from the telemetry sampler,
    // empty without --timeseries-out (schema stability over brevity).
    w.Key("alerts");
    w.BeginArray();
    if (timeseries_ != nullptr) {
      for (const trace::AlertEvent& a : timeseries_->slo_monitor().alerts()) {
        w.BeginObject();
        w.Key("t").Number(a.at_sec);
        w.Key("rule").String(a.rule);
        w.Key("state").String(a.firing ? "firing" : "resolved");
        w.Key("value").Number(a.value);
        w.EndObject();
      }
    }
    w.EndArray();
    w.EndObject();
    f << "\n";
    HD_CHECK_MSG(f.good(), "write to '" << json_path_ << "' failed");
  }

  if (!metrics_path_.empty()) {
    std::ofstream f(metrics_path_, std::ios::binary);
    HD_CHECK_MSG(f.good(),
                 "cannot open --metrics-out path '" << metrics_path_ << "'");
    registry_.WriteJson(f);
    HD_CHECK_MSG(f.good(), "write to '" << metrics_path_ << "' failed");
  }

  if (!trace_path_.empty()) {
    std::ofstream f(trace_path_, std::ios::binary);
    HD_CHECK_MSG(f.good(), "cannot open --trace-out path '" << trace_path_
                                                            << "'");
    chrome_->Write(f);
    HD_CHECK_MSG(f.good(), "write to '" << trace_path_ << "' failed");
  }

  if (!timeseries_path_.empty()) {
    std::ofstream f(timeseries_path_, std::ios::binary);
    HD_CHECK_MSG(f.good(), "cannot open --timeseries-out path '"
                               << timeseries_path_ << "'");
    timeseries_->WriteJsonl(f);
    HD_CHECK_MSG(f.good(), "write to '" << timeseries_path_ << "' failed");
  }

  // CI gate: with --fail-on-alert, any SLO rule that transitioned to
  // firing during the run turns into a nonzero exit, with the offending
  // transitions listed on stderr.
  if (fail_on_alert_ && timeseries_ != nullptr) {
    int firing = 0;
    for (const trace::AlertEvent& a : timeseries_->slo_monitor().alerts()) {
      if (!a.firing) continue;
      ++firing;
      std::fprintf(stderr, "%s: SLO alert '%s' fired at t=%g (value %g)\n",
                   benchmark_id_.c_str(), a.rule.c_str(), a.at_sec, a.value);
    }
    if (firing > 0) {
      std::fprintf(stderr, "%s: --fail-on-alert: %d alert%s fired\n",
                   benchmark_id_.c_str(), firing, firing == 1 ? "" : "s");
      exit_code_ = 1;
    }
  }
  return exit_code_;
}

}  // namespace hd::bench
