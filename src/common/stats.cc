#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hd::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  HD_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    HD_CHECK_MSG(x > 0.0, "geometric mean needs positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double NearestRankPercentile(std::vector<double> xs, double q) {
  HD_CHECK(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

double Utilization(double busy_sec, double capacity_units,
                   double horizon_sec) {
  if (capacity_units <= 0.0 || horizon_sec <= 0.0) return 0.0;
  return busy_sec / (capacity_units * horizon_sec);
}

}  // namespace hd::stats
