// Reproduces Fig. 4(a): overall job speedup of HeteroDoop over CPU-only
// Hadoop on Cluster1 (48 slaves x 20-core Xeon + 1 Tesla K40), with
// GPU-first and tail scheduling.
//
// Method: one representative data-local task per benchmark is executed
// functionally on the Cluster1 machine models; its CPU/GPU durations are
// scaled to the production 256 MiB fileSplit and replayed through the
// heartbeat-driven cluster engine at Table 2's task counts.
#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "common/strings.h"
#include "hadoop/engine.h"

int main(int argc, char** argv) {
  using namespace hd;
  using hadoop::CalibratedTaskSource;
  using hadoop::ClusterConfig;
  using hadoop::JobEngine;
  using sched::Policy;

  bench::Reporter rep("fig4a_cluster1", argc, argv);
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;

  rep.out() << "Fig. 4(a): job speedup over CPU-only Hadoop, Cluster1\n"
            << "(48 slaves, 20 CPU map slots + 1 K40 GPU per node)\n\n";

  ClusterConfig cluster;
  cluster.num_slaves = 48;
  cluster.map_slots_per_node = 20;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.network_bytes_per_sec = 6.0e9;  // FDR InfiniBand
  // The DES replays feed the shared registry; the event trace covers the
  // per-benchmark measured tasks (one pid each).
  cluster.metrics = rep.metrics();

  rep.Config("split_bytes", split_bytes);
  rep.Config("num_slaves", cluster.num_slaves);
  rep.Config("map_slots_per_node", cluster.map_slots_per_node);
  rep.Config("gpus_per_node", cluster.gpus_per_node);
  rep.Config("network_bytes_per_sec", cluster.network_bytes_per_sec);

  auto& t = rep.AddTable(
      "fig4a", {"Benchmark", "CPU-only (s)", "GPU-first x", "Tail x",
                "Task speedup", "GPU tasks (tail)"});
  std::vector<double> tail_speedups;
  int pid = 0;
  for (const auto& b : apps::AllBenchmarks()) {
    bench::MeasureConfig mcfg;  // Cluster1 models are the defaults
    mcfg.measure_baseline = false;
    mcfg.split_bytes = split_bytes;
    mcfg.sink = rep.sink();
    mcfg.metrics = rep.metrics();
    mcfg.track.pid = pid;
    if (mcfg.sink != nullptr) mcfg.sink->NameProcess(pid, b.id);
    ++pid;
    const bench::MeasuredTask m = bench::MeasureTask(b, mcfg);

    CalibratedTaskSource::Params p;
    p.num_maps = b.cluster1.map_tasks;
    p.num_reducers = b.cluster1.reduce_tasks;
    p.cpu_task_sec = m.CpuSec() * bench::kProductionScale;
    p.gpu_task_sec = m.GpuSec() * bench::kProductionScale;
    p.variation = 0.10;
    p.map_output_bytes = static_cast<std::int64_t>(
        m.gpu.stats.output_bytes * bench::kProductionScale);
    p.reduce_sec = 8.0;

    double makespans[3];
    int i = 0;
    std::int64_t tail_gpu_tasks = 0;
    for (Policy policy :
         {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
      CalibratedTaskSource source(p);
      hadoop::JobResult r = JobEngine(cluster, &source, policy).Run();
      rep.AddModeledSeconds(r.makespan_sec);
      makespans[i++] = r.makespan_sec;
      if (policy == Policy::kTail) tail_gpu_tasks = r.gpu_tasks;
    }
    t.Row()
        .Cell(b.id)
        .Cell(makespans[0], 0)
        .Cell(makespans[0] / makespans[1], 2)
        .Cell(makespans[0] / makespans[2], 2)
        .Cell(m.Speedup(), 2)
        .Cell(tail_gpu_tasks);
    tail_speedups.push_back(makespans[0] / makespans[2]);
  }
  rep.Print(t);
  auto& g = rep.AddTable("fig4a_geomean", {"Geomean tail x"});
  g.Row().Cell(bench::GeoMean(tail_speedups), 2);
  rep.out() << "\nGeometric-mean tail-scheduled speedup: "
            << FormatDouble(bench::GeoMean(tail_speedups), 2)
            << "x   (paper: up to 2.78x, geomean 1.6x)\n";
  return rep.Finish();
}
