#include "hadoop/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hd::hadoop::ckpt {

json::Value ParseCheckpoint(const std::string& text) {
  json::Value doc;
  try {
    doc = json::Parse(text);
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("corrupt checkpoint: ") + e.what());
  }
  if (!doc.is_object()) {
    throw CheckpointError("corrupt checkpoint: document is not an object");
  }
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw CheckpointError("corrupt checkpoint: missing schema marker");
  }
  if (schema->string != kCheckpointSchema) {
    throw CheckpointError("checkpoint schema '" + schema->string +
                          "' is not " + kCheckpointSchema);
  }
  return doc;
}

const json::Value& Get(const json::Value& obj, const char* key) {
  if (!obj.is_object()) {
    throw CheckpointError(std::string("corrupt checkpoint: expected object "
                                      "holding '") +
                          key + "'");
  }
  const json::Value* v = obj.Find(key);
  if (v == nullptr) {
    throw CheckpointError(std::string("corrupt checkpoint: missing field '") +
                          key + "'");
  }
  return *v;
}

double Num(const json::Value& obj, const char* key) {
  const json::Value& v = Get(obj, key);
  if (!v.is_number()) {
    throw CheckpointError(std::string("corrupt checkpoint: field '") + key +
                          "' is not a number");
  }
  return v.number;
}

std::int64_t Int(const json::Value& obj, const char* key) {
  return static_cast<std::int64_t>(Num(obj, key));
}

bool Bool(const json::Value& obj, const char* key) {
  const json::Value& v = Get(obj, key);
  if (v.kind != json::Value::Kind::kBool) {
    throw CheckpointError(std::string("corrupt checkpoint: field '") + key +
                          "' is not a bool");
  }
  return v.boolean;
}

const std::string& Str(const json::Value& obj, const char* key) {
  const json::Value& v = Get(obj, key);
  if (!v.is_string()) {
    throw CheckpointError(std::string("corrupt checkpoint: field '") + key +
                          "' is not a string");
  }
  return v.string;
}

const std::vector<json::Value>& Arr(const json::Value& obj, const char* key) {
  const json::Value& v = Get(obj, key);
  if (!v.is_array()) {
    throw CheckpointError(std::string("corrupt checkpoint: field '") + key +
                          "' is not an array");
  }
  return v.array;
}

std::uint64_t U64(const json::Value& obj, const char* key) {
  const std::string& s = Str(obj, key);
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || s.empty()) {
    throw CheckpointError(std::string("corrupt checkpoint: field '") + key +
                          "' is not a decimal u64");
  }
  return v;
}

std::string U64Str(std::uint64_t v) { return std::to_string(v); }

void AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.good()) {
      throw CheckpointError("cannot open checkpoint temp file '" + tmp + "'");
    }
    f << contents;
    f.flush();
    if (!f.good()) {
      throw CheckpointError("write to checkpoint temp file '" + tmp +
                            "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw CheckpointError("cannot rename checkpoint into place at '" + path +
                          "'");
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw CheckpointError("cannot open checkpoint '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace hd::hadoop::ckpt
