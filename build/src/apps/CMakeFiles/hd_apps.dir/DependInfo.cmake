
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cluster_apps.cc" "src/apps/CMakeFiles/hd_apps.dir/cluster_apps.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/cluster_apps.cc.o.d"
  "/root/repo/src/apps/gen.cc" "src/apps/CMakeFiles/hd_apps.dir/gen.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/gen.cc.o.d"
  "/root/repo/src/apps/golden_util.cc" "src/apps/CMakeFiles/hd_apps.dir/golden_util.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/golden_util.cc.o.d"
  "/root/repo/src/apps/hist_apps.cc" "src/apps/CMakeFiles/hd_apps.dir/hist_apps.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/hist_apps.cc.o.d"
  "/root/repo/src/apps/numeric_apps.cc" "src/apps/CMakeFiles/hd_apps.dir/numeric_apps.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/numeric_apps.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/hd_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sources.cc" "src/apps/CMakeFiles/hd_apps.dir/sources.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/sources.cc.o.d"
  "/root/repo/src/apps/text_apps.cc" "src/apps/CMakeFiles/hd_apps.dir/text_apps.cc.o" "gcc" "src/apps/CMakeFiles/hd_apps.dir/text_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpurt/CMakeFiles/hd_gpurt.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/hd_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/hd_minic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
