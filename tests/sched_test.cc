#include <gtest/gtest.h>

#include "sched/policy.h"

namespace hd::sched {
namespace {

NodeSched MakeNode(int free_cpu, int free_gpu, int gpus, double speedup) {
  return NodeSched{free_cpu, free_gpu, gpus, speedup};
}

TEST(Policy, Names) {
  EXPECT_STREQ(PolicyName(Policy::kCpuOnly), "cpu-only");
  EXPECT_STREQ(PolicyName(Policy::kGpuFirst), "gpu-first");
  EXPECT_STREQ(PolicyName(Policy::kTail), "tail");
}

TEST(Policy, CpuOnlyNeverUsesGpu) {
  NodeSched n = MakeNode(2, 1, 1, 6.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kCpuOnly, n, 0.5));
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kCpuOnly, n, 100, 6.0, 4), 2);
}

TEST(Policy, GpuFirstPrefersFreeGpu) {
  EXPECT_TRUE(PlaceOnGpu(Policy::kGpuFirst, MakeNode(2, 1, 1, 6.0), 100));
  EXPECT_FALSE(PlaceOnGpu(Policy::kGpuFirst, MakeNode(2, 0, 1, 6.0), 100));
}

TEST(Policy, GpuFirstCountsAllFreeSlots) {
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kGpuFirst, MakeNode(3, 1, 1, 6.0),
                                  100, 6.0, 4),
            4);
}

TEST(Policy, TailBodyBehavesLikeGpuFirst) {
  // Plenty of maps remain: taskTail = 1 GPU * 6x = 6 < 100 remaining/node.
  NodeSched n = MakeNode(2, 0, 1, 6.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 100));
  n.free_gpu_slots = 1;
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 100));
}

TEST(Policy, TailForcesGpuWhenTailBegins) {
  // remaining/node (3) <= taskTail (6): force GPU even with the GPU busy.
  NodeSched n = MakeNode(2, 0, 1, 6.0);
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 3.0));
}

TEST(Policy, TailThresholdScalesWithGpus) {
  // 3 GPUs at 4x: taskTail = 12.
  NodeSched n = MakeNode(2, 0, 3, 4.0);
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 12.0));
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 13.0));
}

TEST(Policy, JobTailCapsAssignmentsPerHeartbeat) {
  // jobTail = 1 GPU * 6x * 4 slaves = 24. With 20 pending (< jobTail) the
  // JobTracker hands out at most numGPUs tasks.
  NodeSched n = MakeNode(5, 1, 1, 6.0);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 20, 6.0, 4), 1);
  // Before the tail, all free slots are fed.
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 100, 6.0, 4), 6);
}

TEST(Policy, SpeedupOfOneDisablesTailEffects) {
  // Without observed speedup the tail degenerates to tiny thresholds.
  NodeSched n = MakeNode(2, 0, 1, 1.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 2.0));
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 1.0));
}

}  // namespace
}  // namespace hd::sched
