// Critical-path analysis over the Hadoop DES job timeline.
//
// The cluster engine (src/hadoop) traces every job as a span DAG: one
// "job" span per job on its JobTracker lane, one "task" span per map
// attempt on the executing node's slot lane, plus scheduling instants
// (tail_onset / forced_gpu / gpu_bounce). This module reconstructs, per
// job, the *makespan-critical chain*: the sequence of task spans — with
// explicit "wait" segments for scheduling gaps and a trailing
// "shuffle_reduce" segment for reduce jobs — that tiles the interval
// [job start, job end] exactly, so chain segment durations sum to the job
// makespan by construction.
//
// The walk is backwards from the job's end: at each cursor position pick
// the task ending latest at or before the cursor (ties: earliest start,
// then lowest task id — deterministic for a given trace); if that task
// ends strictly before the cursor, the uncovered gap becomes a "wait"
// segment (slots idle or occupied by off-chain work).
//
// On top of the chain sit two derived reports:
//   * per-task slack (job end minus task end) and a straggler report for
//     the chain's tasks, attributing tail time to input skew (duration
//     beyond `skew_factor` x the same-device median) vs device placement
//     (a CPU task that the job's observed GPU speedup would have shrunk);
//   * Algorithm 2 accounting — tail-onset time, forced-GPU decisions,
//     GPU bounces, tail tasks rescued (GPU tasks started after onset) —
//     and a policy comparison quantifying the tail scheduler's makespan
//     saving when one trace holds the same job under two policies on
//     disjoint pid ranges (ClusterConfig::trace_pid_base).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/trace_file.h"

namespace hd::prof {

// One map attempt recovered from a "task" span.
struct TaskRecord {
  int task = -1;
  int job = -1;
  bool on_gpu = false;
  std::int32_t pid = 0;  // node process in the trace
  std::int32_t tid = 0;  // slot lane
  double start_sec = 0.0;
  double dur_sec = 0.0;
  double slack_sec = 0.0;  // job end - task end; 0 for the final task

  // Fault-tolerance span args (all default on a fault-free trace).
  int attempt = 0;          // per-task attempt index
  bool speculative = false;  // duplicate straggler attempt
  bool killed = false;       // truncated by node loss or losing the race
  bool failed = false;       // injected transient failure
  bool preempted = false;    // killed by a capacity-quota preemption
  bool restored = false;     // resumed across a checkpoint warm restart

  // Whether this attempt's slot time is recovery work rather than the
  // job's first-attempt execution.
  bool IsRecovery() const {
    return attempt > 0 || speculative || killed || failed || restored;
  }

  // The dominant recovery class of this attempt ("" when not recovery):
  // "preemption" (quota kill), "speculation", "fault" (injected failure or
  // a node-loss/race kill), "retry" (a later attempt of a failed task), or
  // "checkpoint_replay" (an otherwise-clean attempt re-armed from a
  // heterodoop.ckpt.v1 snapshot by a warm restart).
  const char* RecoveryClass() const {
    if (!IsRecovery()) return "";
    if (preempted) return "preemption";
    if (speculative) return "speculation";
    if (failed || killed) return "fault";
    if (attempt > 0) return "retry";
    return "checkpoint_replay";
  }

  double end_sec() const { return start_sec + dur_sec; }
};

struct ChainSegment {
  enum class Kind { kTask, kWait, kShuffleReduce, kRecovery };

  Kind kind = Kind::kWait;
  // "cpu_map"/"gpu_map", "wait", "shuffle_reduce", "recovery".
  std::string name;
  // kRecovery only: the critical attempt's TaskRecord::RecoveryClass()
  // ("preemption", "speculation", "fault", "retry", "checkpoint_replay").
  std::string recovery_class;
  int task = -1;     // kTask / kRecovery only
  bool on_gpu = false;
  double start_sec = 0.0;
  double dur_sec = 0.0;
};

// Why a critical-chain task ran long.
struct Straggler {
  int task = -1;
  bool on_gpu = false;
  double dur_sec = 0.0;
  // "input_skew": duration > skew_factor x same-device median.
  // "device_placement": CPU task the job's observed speedup would shrink.
  // "none": on the chain but neither skewed nor misplaced.
  std::string cause = "none";
  // Tail seconds the cause explains: duration beyond the device median for
  // input skew, duration minus duration/speedup for device placement.
  double excess_sec = 0.0;
};

struct JobAnalysis {
  int job_id = 0;
  std::int32_t tracker_pid = 0;  // the engine run this job belongs to
  std::string name;              // job label from the trace
  std::string policy;            // scheduling policy arg of the job span
  double start_sec = 0.0;
  double end_sec = 0.0;
  double makespan_sec = 0.0;  // end - start
  double max_observed_speedup = 1.0;

  std::vector<TaskRecord> tasks;  // all attempts, trace order
  std::vector<ChainSegment> chain;  // tiles [start, end], earliest first
  std::vector<Straggler> stragglers;  // chain tasks, latest-ending first

  // Algorithm 2 accounting (zero / negative when the policy never forced).
  double tail_onset_sec = -1.0;
  int forced_gpu = 0;
  int gpu_bounces = 0;
  int tail_tasks_rescued = 0;  // GPU tasks started at/after tail onset

  // Fault-tolerance accounting (all zero on a fault-free trace).
  int retry_attempts = 0;        // attempts with attempt index > 0
  int speculative_attempts = 0;
  int killed_attempts = 0;
  int failed_attempts = 0;
  int preempted_attempts = 0;  // quota-preemption kills
  int restored_attempts = 0;   // attempts resumed across a warm restart

  // Sum of chain segment durations; equals makespan_sec by construction
  // (up to FP addition rounding).
  double ChainTotalSec() const;
  double ChainWaitSec() const;
  // Chain time attributable to recovery and speculation: segments whose
  // critical attempt was a retry, a speculative duplicate, or an attempt
  // that failed or was killed. Part of the exact makespan tiling.
  double ChainRecoverySec() const;
  // Recovery chain time of one class ("preemption", "checkpoint_replay",
  // ...); the classes partition ChainRecoverySec().
  double ChainRecoveryClassSec(const char* cls) const;
};

struct CriticalPathOptions {
  // A task is input-skewed when it runs longer than this factor times the
  // median duration of same-device tasks in its job.
  double skew_factor = 1.5;
};

// Analyses every job in the trace. Engine runs sharing the file on
// disjoint pid ranges are told apart by their "jobtracker" process names;
// results are ordered by (tracker pid, job id).
std::vector<JobAnalysis> AnalyzeJobs(const TraceFile& trace,
                                     const CriticalPathOptions& opts = {});

// The tail scheduler's benefit for one job run under two policies in the
// same trace (same job id and label, different tracker pid).
struct PolicyComparison {
  std::string job_name;
  std::string baseline_policy;  // the non-tail run
  double baseline_makespan_sec = 0.0;
  double tail_makespan_sec = 0.0;
  double saved_sec = 0.0;  // baseline - tail
  double saved_fraction = 0.0;  // saved / baseline
};

std::vector<PolicyComparison> ComparePolicies(
    const std::vector<JobAnalysis>& jobs);

}  // namespace hd::prof
