// Tests for the observability layer (src/trace): event/metrics APIs, the
// Chrome exporter, the instrumentation contracts (phase spans reproduce
// PhaseBreakdown exactly; tracing never perturbs modeled numbers), and
// byte-identical serialization across same-seed runs.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark.h"
#include "common/json.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/job_program.h"
#include "gpusim/device.h"
#include "hadoop/engine.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "trace/slo.h"
#include "trace/timeseries.h"
#include "trace/trace.h"

namespace {

using namespace hd;

constexpr std::int64_t kSplitBytes = 16 << 10;

gpurt::MapTaskResult RunGpuTask(const apps::Benchmark& b,
                                trace::Sink* sink,
                                trace::Registry* metrics) {
  gpurt::JobProgram job =
      gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source);
  gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
  gpurt::GpuTaskOptions opts;
  opts.num_reducers = b.map_only ? 0 : b.num_reducers();
  opts.sink = sink;
  opts.metrics = metrics;
  return gpurt::GpuMapTask(job, &device, opts)
      .Run(b.generate(kSplitBytes, 20150615));
}

hadoop::JobResult RunSmallCluster(trace::Sink* sink,
                                  trace::Registry* metrics) {
  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = 37;
  p.num_reducers = 2;
  p.cpu_task_sec = 12.0;
  p.gpu_task_sec = 2.0;
  p.variation = 0.1;
  hadoop::CalibratedTaskSource source(p);
  hadoop::ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 3;
  c.gpus_per_node = 1;
  c.sink = sink;
  c.metrics = metrics;
  return hadoop::JobEngine(c, &source, sched::Policy::kTail).Run();
}

TEST(TraceSink, PhaseSpansSumExactlyToPhaseTotal) {
  trace::ChromeTraceSink sink;
  const gpurt::MapTaskResult r = RunGpuTask(apps::GetBenchmark("WC"), &sink,
                                            nullptr);
  double sum = 0.0;
  double cursor = 0.0;
  int n = 0;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' || e.category != "phase") continue;
    // Phases are laid out back-to-back in PhaseBreakdown order, so the
    // running sum both equals the next start and reproduces Total().
    EXPECT_EQ(cursor, e.start_sec);
    sum += e.dur_sec;
    cursor = e.start_sec + e.dur_sec;
    ++n;
  }
  EXPECT_GE(n, 5);
  EXPECT_EQ(sum, r.phases.Total());
}

TEST(TraceSink, KernelAndSmSpansStayWithinTheirPhase) {
  trace::ChromeTraceSink sink;
  RunGpuTask(apps::GetBenchmark("WC"), &sink, nullptr);
  // Index phase spans by name, then check every kernel/SM span nests
  // inside the phase span of the same name.
  std::vector<const trace::ChromeTraceSink::Event*> phases;
  for (const auto& e : sink.events()) {
    if (e.phase == 'X' && e.category == "phase") phases.push_back(&e);
  }
  int checked = 0;
  const double eps = 1e-12;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' ||
        (e.category != "kernel" && e.category != "sm")) {
      continue;
    }
    bool nested = false;
    for (const auto* p : phases) {
      if (p->name == e.name && e.start_sec >= p->start_sec - eps &&
          e.start_sec + e.dur_sec <= p->start_sec + p->dur_sec + eps) {
        nested = true;
        break;
      }
    }
    EXPECT_TRUE(nested) << e.category << "/" << e.name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(TraceSink, TracingDoesNotPerturbGpuModeledNumbers) {
  const apps::Benchmark& b = apps::GetBenchmark("WC");
  const gpurt::MapTaskResult off = RunGpuTask(b, nullptr, nullptr);
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const gpurt::MapTaskResult on = RunGpuTask(b, &sink, &reg);
  EXPECT_EQ(off.phases.input_read, on.phases.input_read);
  EXPECT_EQ(off.phases.record_count, on.phases.record_count);
  EXPECT_EQ(off.phases.map, on.phases.map);
  EXPECT_EQ(off.phases.aggregate, on.phases.aggregate);
  EXPECT_EQ(off.phases.sort, on.phases.sort);
  EXPECT_EQ(off.phases.combine, on.phases.combine);
  EXPECT_EQ(off.phases.output_write, on.phases.output_write);
  EXPECT_EQ(off.stats.output_bytes, on.stats.output_bytes);
  EXPECT_EQ(off.stats.out_kv_pairs, on.stats.out_kv_pairs);
}

TEST(TraceSink, TracingDoesNotPerturbClusterModeledNumbers) {
  const hadoop::JobResult off = RunSmallCluster(nullptr, nullptr);
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const hadoop::JobResult on = RunSmallCluster(&sink, &reg);
  EXPECT_EQ(off.makespan_sec, on.makespan_sec);
  EXPECT_EQ(off.cpu_tasks, on.cpu_tasks);
  EXPECT_EQ(off.gpu_tasks, on.gpu_tasks);
}

TEST(TraceSink, SameSeedRunsSerializeByteIdentically) {
  std::string serialized[2];
  for (int i = 0; i < 2; ++i) {
    trace::ChromeTraceSink sink;
    RunGpuTask(apps::GetBenchmark("WC"), &sink, nullptr);
    RunSmallCluster(&sink, nullptr);
    std::ostringstream os;
    sink.Write(os);
    serialized[i] = os.str();
  }
  EXPECT_FALSE(serialized[0].empty());
  EXPECT_EQ(serialized[0], serialized[1]);
}

TEST(TraceSink, ChromeJsonIsWellFormedWithRequiredKeys) {
  trace::ChromeTraceSink sink;
  RunSmallCluster(&sink, nullptr);
  std::ostringstream os;
  sink.Write(os);
  const json::Value doc = json::Parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const json::Value* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());
  bool seen_data_event = false;
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const json::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_NE(e.Find("pid"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    EXPECT_NE(e.Find("name"), nullptr);
    if (ph->string == "M") {
      // Metadata (track naming) precedes every data event.
      EXPECT_FALSE(seen_data_event);
      continue;
    }
    seen_data_event = true;
    EXPECT_TRUE(ph->string == "X" || ph->string == "i") << ph->string;
    ASSERT_NE(e.Find("ts"), nullptr);
    if (ph->string == "X") {
      const json::Value* dur = e.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  EXPECT_TRUE(seen_data_event);
}

TEST(TraceSink, ClusterTaskSpansDoNotOverlapPerLane) {
  trace::ChromeTraceSink sink;
  RunSmallCluster(&sink, nullptr);
  // One map slot (lane) runs one task at a time: on each (pid, tid) the
  // task spans must be disjoint in DES virtual time.
  struct SpanRec {
    double start, end;
  };
  std::map<std::pair<int, int>, std::vector<SpanRec>> lanes;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' || e.category != "task") continue;
    lanes[{e.track.pid, e.track.tid}].push_back(
        {e.start_sec, e.start_sec + e.dur_sec});
  }
  ASSERT_FALSE(lanes.empty());
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRec& a, const SpanRec& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].end, spans[i].start + 1e-9)
          << "overlap on pid=" << lane.first << " tid=" << lane.second;
    }
  }
}

TEST(TraceSink, ClusterRunEmitsSchedulingEvents) {
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const hadoop::JobResult r = RunSmallCluster(&sink, &reg);
  int heartbeats = 0, tasks = 0, jobs = 0;
  bool saw_tail_onset = false;
  for (const auto& e : sink.events()) {
    if (e.category == "hadoop" && e.name == "heartbeat") ++heartbeats;
    if (e.category == "task") ++tasks;
    if (e.category == "job" && e.phase == 'X' && e.name != "map_phase") ++jobs;
    if (e.category == "sched" && e.name == "tail_onset") saw_tail_onset = true;
  }
  EXPECT_GT(heartbeats, 0);
  EXPECT_EQ(tasks, r.cpu_tasks + r.gpu_tasks);
  EXPECT_EQ(jobs, 1);
  EXPECT_TRUE(saw_tail_onset);
  // The registry saw the same totals the JobResult reports.
  const trace::Counter* cpu = reg.FindCounter("hadoop.cpu_tasks");
  const trace::Counter* gpu = reg.FindCounter("hadoop.gpu_tasks");
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(gpu, nullptr);
  EXPECT_EQ(cpu->value(), r.cpu_tasks);
  EXPECT_EQ(gpu->value(), r.gpu_tasks);
}

TEST(TraceSink, GpuTaskFillsRegistry) {
  trace::Registry reg;
  const gpurt::MapTaskResult r =
      RunGpuTask(apps::GetBenchmark("WC"), nullptr, &reg);
  const trace::Counter* tasks = reg.FindCounter("gpurt.gpu.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value(), 1);
  const trace::Counter* out = reg.FindCounter("gpurt.gpu.output_bytes");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->value(), static_cast<std::int64_t>(r.stats.output_bytes));
  const trace::Distribution* task_sec =
      reg.FindDistribution("gpurt.gpu.task_sec");
  ASSERT_NE(task_sec, nullptr);
  EXPECT_EQ(task_sec->count(), 1);
  EXPECT_EQ(task_sec->Mean(), r.phases.Total());
}

TEST(Registry, WriteJsonExportsFlatSortedObject) {
  trace::Registry reg;
  reg.counter("b.count").Add(3);
  reg.gauge("a.gauge").Set(1.5);
  auto& d = reg.distribution("c.dist");
  d.Record(1.0);
  d.Record(3.0);
  d.Record(2.0);
  std::ostringstream os;
  reg.WriteJson(os);
  const json::Value doc = json::Parse(os.str());
  ASSERT_TRUE(doc.is_object());
  // Counters export as integers, gauges as numbers, distributions expand.
  const json::Value* count = doc.Find("b.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3.0);
  const json::Value* gauge = doc.Find("a.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, 1.5);
  EXPECT_NE(doc.Find("c.dist.count"), nullptr);
  EXPECT_EQ(doc.Find("c.dist.count")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.min")->number, 1.0);
  EXPECT_EQ(doc.Find("c.dist.mean")->number, 2.0);
  EXPECT_EQ(doc.Find("c.dist.p50")->number, 2.0);
  EXPECT_EQ(doc.Find("c.dist.p95")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.p99")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.p999")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.max")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.sum")->number, 6.0);
  // Keys come out sorted by metric name (distribution suffixes expand in a
  // fixed order under their base name), and the export is deterministic.
  std::vector<std::string> expected = {
      "a.gauge",      "b.count",     "c.dist.count", "c.dist.min",
      "c.dist.mean",  "c.dist.p50",  "c.dist.p95",   "c.dist.p99",
      "c.dist.p999",  "c.dist.max",  "c.dist.sum"};
  std::vector<std::string> keys;
  for (const auto& [k, v] : doc.object) keys.push_back(k);
  EXPECT_EQ(keys, expected);
  std::ostringstream again;
  reg.WriteJson(again);
  EXPECT_EQ(os.str(), again.str());
}

TEST(Registry, DistributionPercentilesAreNearestRankAndDeterministic) {
  trace::Registry reg;
  auto& d = reg.distribution("lat");
  // Recorded in reverse so the export proves it sorts, not replays.
  for (int i = 100; i >= 1; --i) d.Record(static_cast<double>(i));
  std::ostringstream os;
  reg.WriteJson(os);
  const json::Value doc = json::Parse(os.str());
  EXPECT_EQ(doc.Find("lat.p50")->number, 50.0);
  EXPECT_EQ(doc.Find("lat.p95")->number, 95.0);
  EXPECT_EQ(doc.Find("lat.p99")->number, 99.0);
  // Nearest-rank p999 over 100 samples is the 100th (ceil(99.9)): the max.
  EXPECT_EQ(doc.Find("lat.p999")->number, 100.0);
  EXPECT_EQ(doc.Find("lat.min")->number, 1.0);
  EXPECT_EQ(doc.Find("lat.max")->number, 100.0);
  std::ostringstream again;
  reg.WriteJson(again);
  EXPECT_EQ(os.str(), again.str());
}

TEST(TraceSink, ChromeLanesCarryNumericSortIndexMetadata) {
  trace::ChromeTraceSink sink;
  // Two-digit vs one-digit lanes: Perfetto's lexicographic fallback would
  // order "sm10" before "sm2"; the exporter pins numeric order instead.
  sink.NameProcess(7, "device");
  sink.NameThread({7, 2}, "sm2");
  sink.NameThread({7, 10}, "sm10");
  sink.Span("sm", "k", {7, 2}, 0.0, 1.0);
  std::ostringstream os;
  sink.Write(os);
  const json::Value doc = json::Parse(os.str());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int process_sorts = 0;
  std::map<int, double> thread_sorts;  // tid -> sort_index
  bool seen_data_event = false;
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "M") {
      seen_data_event = true;
      continue;
    }
    EXPECT_FALSE(seen_data_event);  // all metadata precedes data events
    const std::string name = e.Find("name")->string;
    const json::Value* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    if (name == "process_sort_index") {
      ++process_sorts;
      EXPECT_EQ(args->Find("sort_index")->number, e.Find("pid")->number);
    } else if (name == "thread_sort_index") {
      thread_sorts[static_cast<int>(e.Find("tid")->number)] =
          args->Find("sort_index")->number;
    }
  }
  EXPECT_EQ(process_sorts, 1);
  ASSERT_EQ(thread_sorts.size(), 2u);
  EXPECT_EQ(thread_sorts[2], 2.0);
  EXPECT_EQ(thread_sorts[10], 10.0);
  EXPECT_LT(thread_sorts[2], thread_sorts[10]);
}

TEST(Registry, NullSinkDiscardsEverything) {
  trace::NullSink sink;
  sink.NameProcess(0, "p");
  sink.NameThread({0, 1}, "t");
  sink.Span("c", "n", {0, 1}, 0.0, 1.0, {trace::Arg::Int("k", 1)});
  sink.Instant("c", "n", {0, 1}, 0.5, {trace::Arg::Str("k", "v")});
  // Nothing observable; this exercises the enabled-path API shape.
  SUCCEED();
}

TEST(Registry, FindIsLookupOnlyAndEmptyReflectsState) {
  trace::Registry reg;
  EXPECT_TRUE(reg.empty());
  // Find* never creates: a miss on an empty registry leaves it empty.
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindGauge("nope"), nullptr);
  EXPECT_EQ(reg.FindDistribution("nope"), nullptr);
  EXPECT_TRUE(reg.empty());
  reg.counter("c");
  EXPECT_FALSE(reg.empty());
  EXPECT_NE(reg.FindCounter("c"), nullptr);
  // A counter name is invisible to the other families.
  EXPECT_EQ(reg.FindGauge("c"), nullptr);
  EXPECT_EQ(reg.FindDistribution("c"), nullptr);
}

TEST(Registry, WriteJsonIsByteIdenticalAcrossCreationOrders) {
  // Interleaved creation orders must serialize identically: the export is
  // keyed by sorted metric name, not by registration history.
  trace::Registry a;
  a.counter("z.count").Add(7);
  a.gauge("m.gauge").Set(2.5);
  a.distribution("a.dist").Record(4.0);
  trace::Registry b;
  b.distribution("a.dist").Record(4.0);
  b.counter("z.count").Add(7);
  b.gauge("m.gauge").Set(2.5);
  std::ostringstream osa, osb;
  a.WriteJson(osa);
  b.WriteJson(osb);
  EXPECT_EQ(osa.str(), osb.str());
}

TEST(Registry, EmptyRegistryWritesEmptyObject) {
  trace::Registry reg;
  std::ostringstream os;
  reg.WriteJson(os);
  const json::Value doc = json::Parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.object.empty());
}

TEST(Distribution, ReservoirCapKeepsRunningStatsExact) {
  trace::Distribution capped;
  capped.SetReservoirCap(8, 42);
  trace::Distribution full;
  for (int i = 1; i <= 1000; ++i) {
    capped.Record(static_cast<double>(i));
    full.Record(static_cast<double>(i));
  }
  // count/sum/min/max/mean stay exact under the cap — only the retained
  // sample set (and thus percentiles) is approximate.
  EXPECT_EQ(capped.count(), 1000);
  EXPECT_EQ(capped.Sum(), full.Sum());
  EXPECT_EQ(capped.Min(), 1.0);
  EXPECT_EQ(capped.Max(), 1000.0);
  EXPECT_EQ(capped.Mean(), full.Mean());
  EXPECT_EQ(capped.retained(), 8);
  EXPECT_EQ(full.retained(), 1000);
  // Approximate percentiles still come from genuine recorded values.
  const double p50 = capped.Percentile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(Distribution, UnderTheCapBehaviorIsExactlyUnbounded) {
  trace::Distribution capped;
  capped.SetReservoirCap(100, 7);
  trace::Distribution full;
  for (int i = 50; i >= 1; --i) {
    capped.Record(static_cast<double>(i));
    full.Record(static_cast<double>(i));
  }
  // Below the cap the reservoir never evicts, so every statistic matches
  // the unbounded distribution bit for bit.
  for (double q : {0.50, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(capped.Percentile(q), full.Percentile(q));
  }
  EXPECT_EQ(capped.retained(), 50);
}

TEST(Distribution, ReservoirIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    trace::Distribution d;
    d.SetReservoirCap(16, seed);
    for (int i = 1; i <= 500; ++i) d.Record(static_cast<double>(i));
    std::vector<double> qs;
    for (double q : {0.25, 0.50, 0.75, 0.99}) qs.push_back(d.Percentile(q));
    return qs;
  };
  EXPECT_EQ(run(1), run(1));  // same seed, same reservoir
  trace::Distribution d;
  EXPECT_EQ(d.reservoir_cap(), 0);  // default: unbounded
}

TEST(WindowedDistribution, TumblingBucketsSummarizeAndForget) {
  trace::WindowedDistribution w(10.0);
  w.Record(1.0, 5.0);
  w.Record(9.0, 15.0);
  w.Record(12.0, 100.0);  // next bucket
  const trace::WindowSummary s0 = w.Summarize(0);
  EXPECT_EQ(s0.count, 2);
  EXPECT_EQ(s0.min, 5.0);
  EXPECT_EQ(s0.mean, 10.0);
  EXPECT_EQ(s0.max, 15.0);
  EXPECT_EQ(s0.p50, 5.0);   // nearest-rank over {5, 15}
  EXPECT_EQ(s0.p99, 15.0);
  // Summarize consumes the bucket: a second call sees it empty.
  EXPECT_EQ(w.Summarize(0).count, 0);
  const trace::WindowSummary s1 = w.Summarize(1);
  EXPECT_EQ(s1.count, 1);
  EXPECT_EQ(s1.p50, 100.0);
  // Bucket indexing is floor(t / width): t=10 lands in bucket 1, not 0.
  w.Record(10.0, 1.0);
  EXPECT_EQ(w.Summarize(1).count, 1);
}

TEST(TimeSeries, ProbesSampleGaugesCumulativesAndRates) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 10.0;
  trace::TimeSeries ts(opts);
  double depth = 3.0;
  double total = 0.0;
  ts.AddGaugeProbe("q.depth", [&] { return depth; });
  ts.AddCumulativeProbe("work.done", [&] { return total; });
  total = 40.0;
  ts.Sample(10.0, nullptr, nullptr);
  depth = 5.0;
  total = 100.0;
  ts.Sample(20.0, nullptr, nullptr);
  EXPECT_EQ(ts.samples_taken(), 2);
  const trace::TimeSeries::Series* q = ts.Find("q.depth");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, "gauge");
  ASSERT_EQ(q->points.size(), 2u);
  EXPECT_EQ(q->points[0].second, 3.0);
  EXPECT_EQ(q->points[1].second, 5.0);
  // Cumulative probes export the raw counter and a derived per-second
  // rate over the sampling interval.
  EXPECT_EQ(ts.LastValue("work.done"), 100.0);
  const trace::TimeSeries::Series* rate = ts.Find("work.done.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind, "rate");
  EXPECT_EQ(rate->points[0].second, 4.0);   // 40 over the first 10 s
  EXPECT_EQ(rate->points[1].second, 6.0);   // (100-40)/10
}

TEST(TimeSeries, RegistrySnapshotSkipsNamesShadowedByProbes) {
  trace::Registry reg;
  reg.counter("jobs.done").Add(5);
  reg.gauge("free.slots").Set(9.0);
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 5.0;
  trace::TimeSeries ts(opts);
  // A live probe with the same name as a registry counter must win; the
  // registry copy would double-append and zero the derived rate.
  ts.AddCumulativeProbe("jobs.done", [] { return 7.0; });
  ts.Sample(5.0, &reg, nullptr);
  EXPECT_EQ(ts.LastValue("jobs.done"), 7.0);
  EXPECT_EQ(ts.LastValue("jobs.done.rate"), 7.0 / 5.0);
  ASSERT_EQ(ts.Find("jobs.done")->points.size(), 1u);
  // Unshadowed registry metrics snapshot normally.
  EXPECT_EQ(ts.LastValue("free.slots"), 9.0);
}

TEST(TimeSeries, DeltaOverReadsBackToTheWindowBaseline) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 1.0;
  trace::TimeSeries ts(opts);
  double v = 0.0;
  ts.AddCumulativeProbe("c", [&] { return v; });
  for (int t = 1; t <= 10; ++t) {
    v = static_cast<double>(t * t);
    ts.Sample(static_cast<double>(t), nullptr, nullptr);
  }
  // Delta over the trailing 3 s window: 100 - 49.
  EXPECT_EQ(ts.DeltaOver("c", 3.0), 51.0);
  // A window reaching before the first sample baselines at zero.
  EXPECT_EQ(ts.DeltaOver("c", 100.0), 100.0);
  EXPECT_EQ(ts.DeltaOver("missing", 3.0), 0.0);
}

TEST(TimeSeries, RingBufferDropsOldestPoints)  {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 1.0;
  opts.max_points_per_series = 4;
  trace::TimeSeries ts(opts);
  double v = 0.0;
  ts.AddGaugeProbe("g", [&] { return v; });
  for (int t = 1; t <= 10; ++t) {
    v = static_cast<double>(t);
    ts.Sample(static_cast<double>(t), nullptr, nullptr);
  }
  const trace::TimeSeries::Series* g = ts.Find("g");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->points.size(), 4u);
  EXPECT_EQ(g->points.front().second, 7.0);
  EXPECT_EQ(g->points.back().second, 10.0);
}

TEST(SloMonitor, ThresholdRulesFireAndResolveWithInstants) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 1.0;
  trace::TimeSeries ts(opts);
  double depth = 0.0;
  ts.AddGaugeProbe("q", [&] { return depth; });
  trace::SloRule r;
  r.name = "q_high";
  r.kind = trace::SloRule::Kind::kAbove;
  r.series = "q";
  r.threshold = 10.0;
  ts.slo().AddRule(r);
  trace::ChromeTraceSink sink;
  depth = 5.0;
  ts.Sample(1.0, nullptr, &sink);
  EXPECT_EQ(ts.slo_monitor().firing_count(), 0);
  depth = 12.0;
  ts.Sample(2.0, nullptr, &sink);
  EXPECT_EQ(ts.slo_monitor().firing_count(), 1);
  depth = 3.0;
  ts.Sample(3.0, nullptr, &sink);
  EXPECT_EQ(ts.slo_monitor().firing_count(), 0);
  const auto& alerts = ts.slo_monitor().alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].at_sec, 2.0);
  EXPECT_TRUE(alerts[0].firing);
  EXPECT_EQ(alerts[0].value, 12.0);
  EXPECT_EQ(alerts[1].at_sec, 3.0);
  EXPECT_FALSE(alerts[1].firing);
  // The transitions also land in the trace as slo instants.
  std::ostringstream os;
  sink.Write(os);
  EXPECT_NE(os.str().find("q_high"), std::string::npos);
}

TEST(SloMonitor, BurnRateNeedsBothWindowsHot) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 1.0;
  trace::TimeSeries ts(opts);
  double bad = 0.0, total = 0.0;
  ts.AddCumulativeProbe("bad", [&] { return bad; });
  ts.AddCumulativeProbe("total", [&] { return total; });
  trace::SloRule r;
  r.name = "burn";
  r.kind = trace::SloRule::Kind::kBurnRate;
  r.bad_series = "bad";
  r.total_series = "total";
  r.budget = 0.10;           // 10% error budget
  r.short_window_sec = 2.0;
  r.long_window_sec = 5.0;
  r.burn_threshold = 2.0;    // fire at 2x budget consumption
  ts.slo().AddRule(r);
  // Clean traffic for 5 s: no alert (0/0 and 0/N both burn zero).
  for (int t = 1; t <= 5; ++t) {
    total += 10.0;
    ts.Sample(static_cast<double>(t), nullptr, nullptr);
  }
  EXPECT_EQ(ts.slo_monitor().firing_count(), 0);
  // A sudden 50% bad fraction is 5x the budget: both windows blow past
  // the 2x threshold once the long window accumulates enough bad delta.
  for (int t = 6; t <= 10; ++t) {
    total += 10.0;
    bad += 5.0;
    ts.Sample(static_cast<double>(t), nullptr, nullptr);
  }
  EXPECT_EQ(ts.slo_monitor().firing_count(), 1);
  ASSERT_FALSE(ts.slo_monitor().alerts().empty());
  const trace::AlertEvent& first = ts.slo_monitor().alerts().front();
  EXPECT_TRUE(first.firing);
  EXPECT_EQ(first.value, (5.0 / 10.0) / 0.10);  // short-window burn = 5x
  // Recovery: clean traffic drains both windows and the alert resolves.
  for (int t = 11; t <= 20; ++t) {
    total += 10.0;
    ts.Sample(static_cast<double>(t), nullptr, nullptr);
  }
  EXPECT_EQ(ts.slo_monitor().firing_count(), 0);
  EXPECT_FALSE(ts.slo_monitor().alerts().back().firing);
}

TEST(TimeSeries, WriteJsonlIsDeterministicAndSchemaTagged) {
  auto build = [] {
    trace::TimeSeriesOptions opts;
    opts.sample_interval_sec = 2.0;
    trace::TimeSeries ts(opts);
    double v = 0.0;
    ts.AddCumulativeProbe("z.count", [&] { return v; });
    ts.AddGaugeProbe("a.gauge", [&] { return 1.5; });
    v = 8.0;
    ts.Sample(2.0, nullptr, nullptr);
    v = 20.0;
    ts.Sample(4.0, nullptr, nullptr);
    std::ostringstream os;
    ts.WriteJsonl(os);
    return os.str();
  };
  const std::string out = build();
  EXPECT_EQ(out, build());  // byte-identical across identical runs
  // Line 1 is the schema header; every line parses as standalone JSON.
  std::istringstream is(out);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  const json::Value header = json::Parse(line);
  EXPECT_EQ(header.Find("schema")->string, trace::kTimeSeriesSchema);
  EXPECT_EQ(header.Find("sample_interval_sec")->number, 2.0);
  EXPECT_EQ(header.Find("samples")->number, 2.0);
  std::vector<std::string> names;
  while (std::getline(is, line)) {
    const json::Value doc = json::Parse(line);
    ASSERT_TRUE(doc.is_object());
    if (doc.Find("type")->string == "series") {
      names.push_back(doc.Find("name")->string);
    }
  }
  // Series lines come out sorted by name.
  const std::vector<std::string> expected = {"a.gauge", "z.count",
                                             "z.count.rate"};
  EXPECT_EQ(names, expected);
}

}  // namespace
