// Tests for the observability layer (src/trace): event/metrics APIs, the
// Chrome exporter, the instrumentation contracts (phase spans reproduce
// PhaseBreakdown exactly; tracing never perturbs modeled numbers), and
// byte-identical serialization across same-seed runs.
#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark.h"
#include "common/json.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/job_program.h"
#include "gpusim/device.h"
#include "hadoop/engine.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace {

using namespace hd;

constexpr std::int64_t kSplitBytes = 16 << 10;

gpurt::MapTaskResult RunGpuTask(const apps::Benchmark& b,
                                trace::Sink* sink,
                                trace::Registry* metrics) {
  gpurt::JobProgram job =
      gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source);
  gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
  gpurt::GpuTaskOptions opts;
  opts.num_reducers = b.map_only ? 0 : b.num_reducers();
  opts.sink = sink;
  opts.metrics = metrics;
  return gpurt::GpuMapTask(job, &device, opts)
      .Run(b.generate(kSplitBytes, 20150615));
}

hadoop::JobResult RunSmallCluster(trace::Sink* sink,
                                  trace::Registry* metrics) {
  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = 37;
  p.num_reducers = 2;
  p.cpu_task_sec = 12.0;
  p.gpu_task_sec = 2.0;
  p.variation = 0.1;
  hadoop::CalibratedTaskSource source(p);
  hadoop::ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 3;
  c.gpus_per_node = 1;
  c.sink = sink;
  c.metrics = metrics;
  return hadoop::JobEngine(c, &source, sched::Policy::kTail).Run();
}

TEST(TraceSink, PhaseSpansSumExactlyToPhaseTotal) {
  trace::ChromeTraceSink sink;
  const gpurt::MapTaskResult r = RunGpuTask(apps::GetBenchmark("WC"), &sink,
                                            nullptr);
  double sum = 0.0;
  double cursor = 0.0;
  int n = 0;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' || e.category != "phase") continue;
    // Phases are laid out back-to-back in PhaseBreakdown order, so the
    // running sum both equals the next start and reproduces Total().
    EXPECT_EQ(cursor, e.start_sec);
    sum += e.dur_sec;
    cursor = e.start_sec + e.dur_sec;
    ++n;
  }
  EXPECT_GE(n, 5);
  EXPECT_EQ(sum, r.phases.Total());
}

TEST(TraceSink, KernelAndSmSpansStayWithinTheirPhase) {
  trace::ChromeTraceSink sink;
  RunGpuTask(apps::GetBenchmark("WC"), &sink, nullptr);
  // Index phase spans by name, then check every kernel/SM span nests
  // inside the phase span of the same name.
  std::vector<const trace::ChromeTraceSink::Event*> phases;
  for (const auto& e : sink.events()) {
    if (e.phase == 'X' && e.category == "phase") phases.push_back(&e);
  }
  int checked = 0;
  const double eps = 1e-12;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' ||
        (e.category != "kernel" && e.category != "sm")) {
      continue;
    }
    bool nested = false;
    for (const auto* p : phases) {
      if (p->name == e.name && e.start_sec >= p->start_sec - eps &&
          e.start_sec + e.dur_sec <= p->start_sec + p->dur_sec + eps) {
        nested = true;
        break;
      }
    }
    EXPECT_TRUE(nested) << e.category << "/" << e.name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(TraceSink, TracingDoesNotPerturbGpuModeledNumbers) {
  const apps::Benchmark& b = apps::GetBenchmark("WC");
  const gpurt::MapTaskResult off = RunGpuTask(b, nullptr, nullptr);
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const gpurt::MapTaskResult on = RunGpuTask(b, &sink, &reg);
  EXPECT_EQ(off.phases.input_read, on.phases.input_read);
  EXPECT_EQ(off.phases.record_count, on.phases.record_count);
  EXPECT_EQ(off.phases.map, on.phases.map);
  EXPECT_EQ(off.phases.aggregate, on.phases.aggregate);
  EXPECT_EQ(off.phases.sort, on.phases.sort);
  EXPECT_EQ(off.phases.combine, on.phases.combine);
  EXPECT_EQ(off.phases.output_write, on.phases.output_write);
  EXPECT_EQ(off.stats.output_bytes, on.stats.output_bytes);
  EXPECT_EQ(off.stats.out_kv_pairs, on.stats.out_kv_pairs);
}

TEST(TraceSink, TracingDoesNotPerturbClusterModeledNumbers) {
  const hadoop::JobResult off = RunSmallCluster(nullptr, nullptr);
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const hadoop::JobResult on = RunSmallCluster(&sink, &reg);
  EXPECT_EQ(off.makespan_sec, on.makespan_sec);
  EXPECT_EQ(off.cpu_tasks, on.cpu_tasks);
  EXPECT_EQ(off.gpu_tasks, on.gpu_tasks);
}

TEST(TraceSink, SameSeedRunsSerializeByteIdentically) {
  std::string serialized[2];
  for (int i = 0; i < 2; ++i) {
    trace::ChromeTraceSink sink;
    RunGpuTask(apps::GetBenchmark("WC"), &sink, nullptr);
    RunSmallCluster(&sink, nullptr);
    std::ostringstream os;
    sink.Write(os);
    serialized[i] = os.str();
  }
  EXPECT_FALSE(serialized[0].empty());
  EXPECT_EQ(serialized[0], serialized[1]);
}

TEST(TraceSink, ChromeJsonIsWellFormedWithRequiredKeys) {
  trace::ChromeTraceSink sink;
  RunSmallCluster(&sink, nullptr);
  std::ostringstream os;
  sink.Write(os);
  const json::Value doc = json::Parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const json::Value* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());
  bool seen_data_event = false;
  for (const json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const json::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_NE(e.Find("pid"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    EXPECT_NE(e.Find("name"), nullptr);
    if (ph->string == "M") {
      // Metadata (track naming) precedes every data event.
      EXPECT_FALSE(seen_data_event);
      continue;
    }
    seen_data_event = true;
    EXPECT_TRUE(ph->string == "X" || ph->string == "i") << ph->string;
    ASSERT_NE(e.Find("ts"), nullptr);
    if (ph->string == "X") {
      const json::Value* dur = e.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
  }
  EXPECT_TRUE(seen_data_event);
}

TEST(TraceSink, ClusterTaskSpansDoNotOverlapPerLane) {
  trace::ChromeTraceSink sink;
  RunSmallCluster(&sink, nullptr);
  // One map slot (lane) runs one task at a time: on each (pid, tid) the
  // task spans must be disjoint in DES virtual time.
  struct SpanRec {
    double start, end;
  };
  std::map<std::pair<int, int>, std::vector<SpanRec>> lanes;
  for (const auto& e : sink.events()) {
    if (e.phase != 'X' || e.category != "task") continue;
    lanes[{e.track.pid, e.track.tid}].push_back(
        {e.start_sec, e.start_sec + e.dur_sec});
  }
  ASSERT_FALSE(lanes.empty());
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const SpanRec& a, const SpanRec& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].end, spans[i].start + 1e-9)
          << "overlap on pid=" << lane.first << " tid=" << lane.second;
    }
  }
}

TEST(TraceSink, ClusterRunEmitsSchedulingEvents) {
  trace::ChromeTraceSink sink;
  trace::Registry reg;
  const hadoop::JobResult r = RunSmallCluster(&sink, &reg);
  int heartbeats = 0, tasks = 0, jobs = 0;
  bool saw_tail_onset = false;
  for (const auto& e : sink.events()) {
    if (e.category == "hadoop" && e.name == "heartbeat") ++heartbeats;
    if (e.category == "task") ++tasks;
    if (e.category == "job" && e.phase == 'X' && e.name != "map_phase") ++jobs;
    if (e.category == "sched" && e.name == "tail_onset") saw_tail_onset = true;
  }
  EXPECT_GT(heartbeats, 0);
  EXPECT_EQ(tasks, r.cpu_tasks + r.gpu_tasks);
  EXPECT_EQ(jobs, 1);
  EXPECT_TRUE(saw_tail_onset);
  // The registry saw the same totals the JobResult reports.
  const trace::Counter* cpu = reg.FindCounter("hadoop.cpu_tasks");
  const trace::Counter* gpu = reg.FindCounter("hadoop.gpu_tasks");
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(gpu, nullptr);
  EXPECT_EQ(cpu->value(), r.cpu_tasks);
  EXPECT_EQ(gpu->value(), r.gpu_tasks);
}

TEST(TraceSink, GpuTaskFillsRegistry) {
  trace::Registry reg;
  const gpurt::MapTaskResult r =
      RunGpuTask(apps::GetBenchmark("WC"), nullptr, &reg);
  const trace::Counter* tasks = reg.FindCounter("gpurt.gpu.tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value(), 1);
  const trace::Counter* out = reg.FindCounter("gpurt.gpu.output_bytes");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->value(), static_cast<std::int64_t>(r.stats.output_bytes));
  const trace::Distribution* task_sec =
      reg.FindDistribution("gpurt.gpu.task_sec");
  ASSERT_NE(task_sec, nullptr);
  EXPECT_EQ(task_sec->count(), 1);
  EXPECT_EQ(task_sec->Mean(), r.phases.Total());
}

TEST(Registry, WriteJsonExportsFlatSortedObject) {
  trace::Registry reg;
  reg.counter("b.count").Add(3);
  reg.gauge("a.gauge").Set(1.5);
  auto& d = reg.distribution("c.dist");
  d.Record(1.0);
  d.Record(3.0);
  d.Record(2.0);
  std::ostringstream os;
  reg.WriteJson(os);
  const json::Value doc = json::Parse(os.str());
  ASSERT_TRUE(doc.is_object());
  // Counters export as integers, gauges as numbers, distributions expand.
  const json::Value* count = doc.Find("b.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 3.0);
  const json::Value* gauge = doc.Find("a.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, 1.5);
  EXPECT_NE(doc.Find("c.dist.count"), nullptr);
  EXPECT_EQ(doc.Find("c.dist.count")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.min")->number, 1.0);
  EXPECT_EQ(doc.Find("c.dist.mean")->number, 2.0);
  EXPECT_EQ(doc.Find("c.dist.p50")->number, 2.0);
  EXPECT_EQ(doc.Find("c.dist.p95")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.p99")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.p999")->number, 3.0);
  EXPECT_EQ(doc.Find("c.dist.max")->number, 3.0);
  // Keys come out sorted by metric name (distribution suffixes expand in a
  // fixed order under their base name), and the export is deterministic.
  std::vector<std::string> expected = {
      "a.gauge",      "b.count",     "c.dist.count", "c.dist.min",
      "c.dist.mean",  "c.dist.p50",  "c.dist.p95",   "c.dist.p99",
      "c.dist.p999",  "c.dist.max"};
  std::vector<std::string> keys;
  for (const auto& [k, v] : doc.object) keys.push_back(k);
  EXPECT_EQ(keys, expected);
  std::ostringstream again;
  reg.WriteJson(again);
  EXPECT_EQ(os.str(), again.str());
}

TEST(Registry, DistributionPercentilesAreNearestRankAndDeterministic) {
  trace::Registry reg;
  auto& d = reg.distribution("lat");
  // Recorded in reverse so the export proves it sorts, not replays.
  for (int i = 100; i >= 1; --i) d.Record(static_cast<double>(i));
  std::ostringstream os;
  reg.WriteJson(os);
  const json::Value doc = json::Parse(os.str());
  EXPECT_EQ(doc.Find("lat.p50")->number, 50.0);
  EXPECT_EQ(doc.Find("lat.p95")->number, 95.0);
  EXPECT_EQ(doc.Find("lat.p99")->number, 99.0);
  // Nearest-rank p999 over 100 samples is the 100th (ceil(99.9)): the max.
  EXPECT_EQ(doc.Find("lat.p999")->number, 100.0);
  EXPECT_EQ(doc.Find("lat.min")->number, 1.0);
  EXPECT_EQ(doc.Find("lat.max")->number, 100.0);
  std::ostringstream again;
  reg.WriteJson(again);
  EXPECT_EQ(os.str(), again.str());
}

TEST(TraceSink, ChromeLanesCarryNumericSortIndexMetadata) {
  trace::ChromeTraceSink sink;
  // Two-digit vs one-digit lanes: Perfetto's lexicographic fallback would
  // order "sm10" before "sm2"; the exporter pins numeric order instead.
  sink.NameProcess(7, "device");
  sink.NameThread({7, 2}, "sm2");
  sink.NameThread({7, 10}, "sm10");
  sink.Span("sm", "k", {7, 2}, 0.0, 1.0);
  std::ostringstream os;
  sink.Write(os);
  const json::Value doc = json::Parse(os.str());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int process_sorts = 0;
  std::map<int, double> thread_sorts;  // tid -> sort_index
  bool seen_data_event = false;
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string != "M") {
      seen_data_event = true;
      continue;
    }
    EXPECT_FALSE(seen_data_event);  // all metadata precedes data events
    const std::string name = e.Find("name")->string;
    const json::Value* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    if (name == "process_sort_index") {
      ++process_sorts;
      EXPECT_EQ(args->Find("sort_index")->number, e.Find("pid")->number);
    } else if (name == "thread_sort_index") {
      thread_sorts[static_cast<int>(e.Find("tid")->number)] =
          args->Find("sort_index")->number;
    }
  }
  EXPECT_EQ(process_sorts, 1);
  ASSERT_EQ(thread_sorts.size(), 2u);
  EXPECT_EQ(thread_sorts[2], 2.0);
  EXPECT_EQ(thread_sorts[10], 10.0);
  EXPECT_LT(thread_sorts[2], thread_sorts[10]);
}

TEST(Registry, NullSinkDiscardsEverything) {
  trace::NullSink sink;
  sink.NameProcess(0, "p");
  sink.NameThread({0, 1}, "t");
  sink.Span("c", "n", {0, 1}, 0.0, 1.0, {trace::Arg::Int("k", 1)});
  sink.Instant("c", "n", {0, 1}, 0.5, {trace::Arg::Str("k", "v")});
  // Nothing observable; this exercises the enabled-path API shape.
  SUCCEED();
}

}  // namespace
