// Reproduces Fig. 3: the tail-scheduling idea on the paper's toy scenario —
// one node with two CPU slots and one GPU that is 6x faster, scheduling 19
// equal tasks. GPU-first leaves the GPU idle at the end while two slow CPU
// tasks straggle; tail scheduling forces the final tasks onto the GPU.
#include <sstream>
#include <string>

#include "bench/reporter.h"
#include "common/strings.h"
#include "hadoop/engine.h"

int main(int argc, char** argv) {
  using namespace hd;
  using hadoop::CalibratedTaskSource;
  using hadoop::ClusterConfig;
  using hadoop::JobEngine;
  using sched::Policy;

  bench::Reporter rep("fig3_tail_example", argc, argv);
  rep.Config("num_maps", 19);
  rep.Config("cpu_task_sec", 12.0);
  rep.Config("gpu_task_sec", 2.0);

  rep.out() << "Fig. 3: GPU-first vs tail scheduling (19 tasks, 2 CPU "
               "slots + 1 GPU at 6x)\n\n";

  auto& t =
      rep.AddTable("fig3", {"Scheme", "Makespan (s)", "CPU tasks",
                            "GPU tasks"});
  double makespans[2];
  std::string traces[2];
  int i = 0;
  for (Policy policy : {Policy::kGpuFirst, Policy::kTail}) {
    CalibratedTaskSource::Params p;
    p.num_maps = 19;
    p.num_reducers = 0;
    p.cpu_task_sec = 12.0;
    p.gpu_task_sec = 2.0;
    p.variation = 0.0;
    CalibratedTaskSource source(p);
    ClusterConfig c;
    c.num_slaves = 1;
    c.map_slots_per_node = 2;
    c.gpus_per_node = 1;
    c.heartbeat_sec = 0.1;
    std::ostringstream trace;
    c.trace = &trace;
    // Single node and two short runs: this is the DES event-trace showcase.
    // Both schemes feed the structured trace on disjoint pid ranges
    // (gpu-first at pid base 100, tail at 0) so hdprof can compare the two
    // policies from one file; only the tail run fills the metrics registry
    // so the flat export stays a single-run snapshot.
    c.sink = rep.sink();
    c.trace_pid_base = policy == Policy::kTail ? 0 : 100;
    if (policy == Policy::kTail) {
      c.metrics = rep.metrics();
    }
    hadoop::JobResult r = JobEngine(c, &source, policy).Run();
    rep.AddModeledSeconds(r.makespan_sec);
    t.Row()
        .Cell(sched::PolicyName(policy))
        .Cell(r.makespan_sec, 2)
        .Cell(r.cpu_tasks)
        .Cell(r.gpu_tasks);
    makespans[i] = r.makespan_sec;
    traces[i] = trace.str();
    ++i;
  }
  rep.Print(t);
  rep.out() << "\nTail scheduling saves "
            << FormatDouble((1.0 - makespans[1] / makespans[0]) * 100.0, 1)
            << "% of the makespan by forcing the tail tasks onto the GPU.\n";
  rep.out() << "\nTail schedule trace:\n" << traces[1];
  return rep.Finish();
}
