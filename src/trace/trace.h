// Structured event tracing for the simulated stack.
//
// Every layer — gpusim kernels, the gpurt host driver, the hadoop DES, the
// scheduling policies and the multi-job engine — reports *modeled-time*
// events through one Sink interface:
//
//   * spans: a named interval [start, start+dur) on a track,
//   * instants: a point event (a heartbeat, a forced-GPU decision),
//
// each carrying typed key/value args. Time is always modeled seconds in the
// emitting layer's domain: task-local seconds for a single host-driver run
// (offset by GpuTaskOptions::trace_origin_sec when embedded in a larger
// timeline), DES virtual seconds for cluster runs. Device cycles are
// converted to seconds by the emitter so one trace file has one time unit.
//
// Tracks map onto Chrome trace-event pid/tid pairs: pid groups related
// lanes (a cluster node, a device, the JobTracker), tid is the lane within
// it (a map slot, an SM, a job).
//
// The null sink is the null pointer: every instrumentation site guards on
// `sink != nullptr`, so a disabled trace costs one branch and never touches
// modeled state — seeded runs are bit-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hd::trace {

// One typed event argument.
struct Arg {
  enum class Kind { kInt, kFloat, kString };

  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double f = 0.0;
  std::string s;

  static Arg Int(std::string key, std::int64_t v) {
    Arg a;
    a.key = std::move(key);
    a.kind = Kind::kInt;
    a.i = v;
    return a;
  }
  static Arg Float(std::string key, double v) {
    Arg a;
    a.key = std::move(key);
    a.kind = Kind::kFloat;
    a.f = v;
    return a;
  }
  static Arg Str(std::string key, std::string v) {
    Arg a;
    a.key = std::move(key);
    a.kind = Kind::kString;
    a.s = std::move(v);
    return a;
  }
};
using Args = std::vector<Arg>;

// Where an event renders; maps onto Chrome's pid/tid.
struct Track {
  std::int32_t pid = 0;
  std::int32_t tid = 0;
};

class Sink {
 public:
  virtual ~Sink() = default;

  // A complete interval [start_sec, start_sec + dur_sec) on `track`.
  virtual void Span(std::string_view category, std::string_view name,
                    Track track, double start_sec, double dur_sec,
                    Args args = {}) = 0;

  // A point event at `at_sec`.
  virtual void Instant(std::string_view category, std::string_view name,
                       Track track, double at_sec, Args args = {}) = 0;

  // Viewer labels for a pid / a (pid, tid) lane. Idempotent per target.
  virtual void NameProcess(std::int32_t pid, std::string_view name) = 0;
  virtual void NameThread(Track track, std::string_view name) = 0;
};

// Discards everything. Instrumentation sites treat a null Sink* as "off",
// so this exists for callers that want a non-null sink object (e.g. to
// exercise the enabled code path without collecting).
class NullSink final : public Sink {
 public:
  void Span(std::string_view, std::string_view, Track, double, double,
            Args) override {}
  void Instant(std::string_view, std::string_view, Track, double,
               Args) override {}
  void NameProcess(std::int32_t, std::string_view) override {}
  void NameThread(Track, std::string_view) override {}
};

}  // namespace hd::trace
