// The Hadoop-style cluster engine: JobTracker + TaskTrackers exchanging
// heartbeats over a discrete-event simulation (§2.2, §5.1, §6).
//
// One JobEngine runs one MapReduce job to completion:
//   * map tasks are handed out in heartbeat responses (data-local splits
//     preferred when an HDFS is attached),
//   * each slave runs `map_slots_per_node` CPU streaming tasks plus one
//     reserved slot per GPU (the GPU driver of §5.1),
//   * the scheduling policy (sched::Policy) decides GPU placement,
//     including Algorithm 2's tail forcing,
//   * failed GPU attempts are rescheduled (fault tolerance), bounded by
//     ClusterConfig::max_gpu_attempts,
//   * reduce tasks start after the slow-start fraction of maps completes;
//     their shuffle is modeled from map output volume.
//
// With a fault::FaultInjector attached the engine additionally models the
// Hadoop 1.x recovery path: crashed or silent TaskTrackers expire and
// their work — including committed map outputs — is re-executed, failed
// attempts retry with backoff, failure-prone trackers are blacklisted,
// and (when enabled) stragglers get speculative duplicate attempts.
// Committed job output is bit-identical with or without faults.
//
// The slot/placement machinery lives in ClusterCore (cluster_core.h) so
// that multijob::MultiJobEngine can run N concurrent jobs over the same
// TaskTrackers; JobEngine is the single-tenant special case.
#pragma once

#include <string>

#include "hadoop/cluster_core.h"

namespace hd::hadoop {

class JobEngine : private ClusterCore {
 public:
  // `fs`/`input_path` enable locality-aware scheduling; both optional.
  JobEngine(ClusterConfig config, TaskTimeSource* source,
            sched::Policy policy, const hdfs::Hdfs* fs = nullptr,
            std::string input_path = {});

  JobResult Run();

 private:
  void Heartbeat(int node_id);
  // One link of a node's self-rescheduling heartbeat chain. The chain
  // stops while the node is down; OnNodeRecovered restarts it.
  void PulseTick(int node_id);
  // ClusterConfig::batch_heartbeats: one cluster-wide link serving every
  // live tracker in node order per interval.
  void BatchTick();
  static void PulseTickEvent(void* ctx, const des::Payload& p);
  static void BatchTickEvent(void* ctx, const des::Payload& p);
  void OnTaskFinished(JobState& job, int node_id) override;
  void VisitActiveJobs(const std::function<void(JobState&)>& fn) override;
  void OnNodeRecovered(int node_id) override;

  JobState job_;
};

}  // namespace hd::hadoop
