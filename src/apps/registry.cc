#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <tuple>
#include <sstream>

#include "apps/apps_internal.h"
#include "apps/benchmark.h"
#include "common/check.h"
#include "common/strings.h"

namespace hd::apps {

const std::vector<Benchmark>& AllBenchmarks() {
  static const std::vector<Benchmark> kAll = [] {
    std::vector<Benchmark> v;
    v.push_back(MakeGrep());
    v.push_back(MakeHistMovies());
    v.push_back(MakeWordcount());
    v.push_back(MakeHistRatings());
    v.push_back(MakeLinearRegression());
    v.push_back(MakeKmeans());
    v.push_back(MakeClassification());
    v.push_back(MakeBlackScholes());
    return v;
  }();
  return kAll;
}

const Benchmark& GetBenchmark(const std::string& id) {
  for (const auto& b : AllBenchmarks()) {
    if (b.id == id) return b;
  }
  HD_CHECK_MSG(false, "unknown benchmark '" << id << "'");
}

namespace {

std::vector<gpurt::KvPair> Sorted(std::vector<gpurt::KvPair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const gpurt::KvPair& a, const gpurt::KvPair& b) {
              return std::tie(a.key, a.value) < std::tie(b.key, b.value);
            });
  return pairs;
}

bool ValuesClose(const std::string& a, const std::string& b, double tol,
                 std::string* why) {
  const auto fa = SplitWhitespace(a);
  const auto fb = SplitWhitespace(b);
  if (fa.size() != fb.size()) {
    *why = "field count differs: '" + a + "' vs '" + b + "'";
    return false;
  }
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double x = std::strtod(fa[i].c_str(), nullptr);
    const double y = std::strtod(fb[i].c_str(), nullptr);
    const double scale = std::max({std::abs(x), std::abs(y), 1.0});
    if (std::abs(x - y) > tol * scale) {
      *why = "field " + std::to_string(i) + ": " + fa[i] + " vs " + fb[i];
      return false;
    }
  }
  return true;
}

}  // namespace

std::string CompareWithGolden(const Benchmark& bench,
                              std::vector<gpurt::KvPair> golden,
                              std::vector<gpurt::KvPair> actual,
                              double tol) {
  golden = Sorted(std::move(golden));
  actual = Sorted(std::move(actual));
  if (golden.size() != actual.size()) {
    return bench.id + ": pair count mismatch: golden " +
           std::to_string(golden.size()) + " vs actual " +
           std::to_string(actual.size());
  }
  for (std::size_t i = 0; i < golden.size(); ++i) {
    if (golden[i].key != actual[i].key) {
      return bench.id + ": key mismatch at " + std::to_string(i) + ": '" +
             golden[i].key + "' vs '" + actual[i].key + "'";
    }
    if (bench.exact_output) {
      if (golden[i].value != actual[i].value) {
        return bench.id + ": value mismatch for key '" + golden[i].key +
               "': '" + golden[i].value + "' vs '" + actual[i].value + "'";
      }
    } else {
      std::string why;
      if (!ValuesClose(golden[i].value, actual[i].value, tol, &why)) {
        return bench.id + ": value mismatch for key '" + golden[i].key +
               "': " + why;
      }
    }
  }
  return {};
}

}  // namespace hd::apps
