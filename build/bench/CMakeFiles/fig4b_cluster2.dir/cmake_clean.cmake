file(REMOVE_RECURSE
  "CMakeFiles/fig4b_cluster2.dir/fig4b_cluster2.cc.o"
  "CMakeFiles/fig4b_cluster2.dir/fig4b_cluster2.cc.o.d"
  "fig4b_cluster2"
  "fig4b_cluster2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_cluster2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
