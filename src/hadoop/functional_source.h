// TaskTimeSource that actually executes every task through the gpurt
// CPU/GPU paths, yielding both modeled durations and the job's real output.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/job_program.h"
#include "gpusim/device.h"
#include "hadoop/task_source.h"
#include "hdfs/hdfs.h"

namespace hd::hadoop {

class FunctionalTaskSource : public TaskTimeSource {
 public:
  struct Options {
    gpusim::DeviceConfig device = gpusim::DeviceConfig::TeslaK40();
    gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
    gpurt::GpuTaskOptions gpu;  // num_reducers is overridden
    gpurt::IoConfig io;
    int num_reducers = 1;  // <= 0 selects map-only
  };

  // Splits come either from an HDFS file (content-backed) ...
  FunctionalTaskSource(const gpurt::JobProgram& job, const hdfs::Hdfs& fs,
                       std::string input_path, Options options);
  // ... or directly from memory.
  FunctionalTaskSource(const gpurt::JobProgram& job,
                       std::vector<std::string> splits, Options options);

  int num_map_tasks() const override;
  int num_reducers() const override {
    return std::max(0, opts_.num_reducers);
  }

  MapTaskTiming MapTask(int idx, bool on_gpu) override;
  double ReduceSeconds(int reducer) override;
  std::vector<gpurt::KvPair> FinalOutput() override;

  // Latest attempt's result for a task (tests inspect phases).
  const gpurt::MapTaskResult& TaskResult(int idx) const;

 private:
  const std::string& SplitContent(int idx) const;
  void EnsureReduced();

  const gpurt::JobProgram& job_;
  const hdfs::Hdfs* fs_ = nullptr;
  std::string input_path_;
  std::vector<std::string> splits_;  // when not HDFS-backed
  Options opts_;
  gpusim::GpuDevice device_;

  std::map<int, gpurt::MapTaskResult> map_results_;
  bool reduced_ = false;
  std::vector<std::vector<gpurt::KvPair>> reduce_outputs_;
  std::vector<double> reduce_seconds_;
};

}  // namespace hd::hadoop
