// Chaos sweep over the deterministic fault injector (src/fault): failure
// rate x inter-job scheduler x per-job policy for makespan / availability
// curves, a single-job recovery table, and the headline exactly-once
// check — a functional wordcount job whose committed output must be
// bit-identical with faults injected and without. Faults change *when*
// everything happens, never *what* the job computes.
//
// The elastic-churn table reruns a fixed multi-tenant workload under
// runtime membership churn (join + drain leave + hard leave) with and
// without preemptive quotas, and the kill->restore row proves the HA
// story in-process: the churn run is snapshotted mid-flight, replayed
// from the checkpoint on a fresh engine, and the restored metrics must
// be bit-identical (the fault_sweep.restore_identical gauge).
//
// The shared Reporter `--seed N` flag (default 20150615) selects the
// injector seed, so CI's chaos-smoke job can assert output invariance
// across several seeds.
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "bench/reporter.h"
#include "fault/fault.h"
#include "gpurt/job_program.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"
#include "hadoop/task_source.h"
#include "multijob/engine.h"
#include "multijob/metrics.h"
#include "multijob/scheduler.h"
#include "multijob/workload.h"
#include "sched/policy.h"

namespace {

// Wordcount, verbatim from the paper's Fig. 1 style streaming programs —
// the functional job whose output the invariance rows compare.
constexpr const char* kWcMap = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i]; i++; j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0; offset = 0; one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kWcReduce = R"(
int main() {
  char word[30], prevWord[30];
  int count, val;
  prevWord[0] = '\0';
  count = 0;
  while (scanf("%s %d", word, &val) == 2) {
    if (strcmp(word, prevWord) == 0) { count += val; }
    else {
      if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
      strcpy(prevWord, word);
      count = val;
    }
  }
  if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  return 0;
}
)";

struct FaultLevel {
  const char* name;
  // Null spec (level "none") runs without an injector at all.
  bool enabled = false;
  hd::fault::FaultSpec spec;
};

// The calibrated-workload fault levels. Workload makespans run tens to a
// few hundred modeled seconds, so crash MTTFs sit in the hundreds — every
// run sees real outages without decapitating the cluster — and the fault
// horizon is bounded near the makespan scale so crash counters describe
// the run, not an idle post-drain tail.
std::vector<FaultLevel> Levels(std::uint64_t seed) {
  std::vector<FaultLevel> levels;
  levels.push_back({"none", false, {}});
  {
    FaultLevel l;
    l.name = "light";
    l.enabled = true;
    l.spec.seed = seed;
    l.spec.crash_mttf_sec = 500.0;
    l.spec.permanent_fraction = 0.05;
    l.spec.restart_sec = 25.0;
    l.spec.horizon_sec = 1000.0;
    l.spec.heartbeat_drop_prob = 0.01;
    l.spec.cpu_fail_prob = 0.02;
    l.spec.gpu_fail_prob = 0.02;
    l.spec.gpu_oom_prob = 0.01;
    l.spec.slow_node_prob = 0.15;
    l.spec.slow_factor = 1.5;
    levels.push_back(l);
  }
  {
    FaultLevel l;
    l.name = "heavy";
    l.enabled = true;
    l.spec.seed = seed + 1;
    l.spec.crash_mttf_sec = 180.0;
    l.spec.permanent_fraction = 0.1;
    l.spec.restart_sec = 40.0;
    l.spec.horizon_sec = 1000.0;
    l.spec.heartbeat_drop_prob = 0.04;
    l.spec.cpu_fail_prob = 0.06;
    l.spec.gpu_fail_prob = 0.06;
    l.spec.gpu_oom_prob = 0.03;
    l.spec.slow_node_prob = 0.3;
    l.spec.slow_factor = 2.0;
    levels.push_back(l);
  }
  return levels;
}

std::map<std::string, long> Histogram(
    const std::vector<hd::gpurt::KvPair>& kvs) {
  std::map<std::string, long> h;
  for (const auto& kv : kvs) h[kv.key] += std::strtol(kv.value.c_str(), nullptr, 10);
  return h;
}

// Exact (==, no tolerance) workload equality for the kill->restore check:
// every modeled number a warm restart must reproduce bit-identically.
bool SameWorkload(const hd::multijob::WorkloadMetrics& a,
                  const hd::multijob::WorkloadMetrics& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  bool same = a.makespan_sec == b.makespan_sec &&
              a.cpu_utilization == b.cpu_utilization &&
              a.gpu_utilization == b.gpu_utilization &&
              a.availability == b.availability &&
              a.gpu_bounces == b.gpu_bounces &&
              a.nodes_joined == b.nodes_joined &&
              a.nodes_left == b.nodes_left &&
              a.leaves_refused == b.leaves_refused &&
              a.preemptions == b.preemptions;
  for (std::size_t i = 0; same && i < a.jobs.size(); ++i) {
    const auto& x = a.jobs[i];
    const auto& y = b.jobs[i];
    same = x.submit_sec == y.submit_sec && x.start_sec == y.start_sec &&
           x.finish_sec == y.finish_sec &&
           x.result.cpu_tasks == y.result.cpu_tasks &&
           x.result.gpu_tasks == y.result.gpu_tasks &&
           x.result.killed_attempts == y.result.killed_attempts &&
           x.result.maps_reexecuted == y.result.maps_reexecuted &&
           x.result.preempted_attempts == y.result.preempted_attempts;
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hd;
  using multijob::SchedulerKind;
  using multijob::WorkloadMetrics;
  using multijob::WorkloadSpec;

  bench::Reporter rep("fault_sweep", argc, argv);
  const std::uint64_t seed = rep.seed(20150615);

  const int num_jobs = rep.smoke() ? 6 : 16;
  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 8;
  cluster.map_slots_per_node = 4;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.speculation = true;

  rep.Config("seed", static_cast<std::int64_t>(seed));
  rep.Config("num_jobs", num_jobs);
  rep.Config("num_slaves", cluster.num_slaves);
  rep.Config("map_slots_per_node", cluster.map_slots_per_node);
  rep.Config("gpus_per_node", cluster.gpus_per_node);
  rep.Config("speculation", true);

  const std::vector<FaultLevel> levels = Levels(seed);
  const std::vector<multijob::AppTemplate> mix = multijob::Table2Mix(24, 2);
  // --scheduler / --policy override the sweep dimension (even under
  // --smoke); unknown names fail fast listing the valid ones.
  const std::vector<SchedulerKind> schedulers =
      !rep.scheduler().empty()
          ? std::vector<SchedulerKind>{multijob::SchedulerKindFromName(
                rep.scheduler())}
      : rep.smoke() ? std::vector<SchedulerKind>{SchedulerKind::kFair}
                    : std::vector<SchedulerKind>{SchedulerKind::kFifo,
                                                 SchedulerKind::kFair,
                                                 SchedulerKind::kCapacity};
  const std::vector<sched::Policy> policies =
      !rep.policy().empty()
          ? std::vector<sched::Policy>{sched::MakePolicy(rep.policy())}
      : rep.smoke()
          ? std::vector<sched::Policy>{sched::Policy::kTail}
          : std::vector<sched::Policy>{sched::Policy::kCpuOnly,
                                       sched::Policy::kGpuFirst,
                                       sched::Policy::kTail};
  if (!rep.scheduler().empty()) rep.Config("scheduler", rep.scheduler());
  if (!rep.policy().empty()) rep.Config("policy", rep.policy());

  rep.out() << "Fault sweep: " << num_jobs
            << " closed-loop jobs over the Table 2 mix with the seeded\n"
            << "fault injector at three failure levels. Availability is\n"
            << "alive node-seconds over nodes x makespan; every recovery\n"
            << "counter is deterministic in (seed, level).\n\n";

  // Each engine run gets its own pid range so one trace file can hold the
  // whole sweep (the fig3 convention).
  int pid_base = 0;

  auto& t = rep.AddTable(
      "fault_multijob",
      {"faults", "sched", "policy", "makespan s", "avail", "crashes", "lost",
       "blackl", "hb drop", "fails", "retries", "killed", "reexec", "spec",
       "spec win", "p95 s"});
  for (const FaultLevel& level : levels) {
    for (SchedulerKind sk : schedulers) {
      for (sched::Policy policy : policies) {
        hadoop::ClusterConfig c = cluster;
        c.sink = rep.sink();
        c.metrics = rep.metrics();
        c.trace_pid_base = pid_base;
        pid_base += 100;
        const fault::FaultInjector injector(
            level.enabled ? level.spec : fault::FaultSpec{});
        if (level.enabled) c.faults = &injector;
        WorkloadSpec spec;
        spec.mode = WorkloadSpec::Mode::kClosedLoop;
        spec.num_jobs = num_jobs;
        spec.concurrency = 6;
        spec.policy = policy;
        spec.seed = 20150615;
        const WorkloadMetrics m = multijob::RunWorkload(c, sk, mix, spec);
        rep.AddModeledSeconds(m.makespan_sec);
        t.Row()
            .Cell(level.name)
            .Cell(multijob::SchedulerKindName(sk))
            .Cell(sched::PolicyName(policy))
            .Cell(m.makespan_sec, 1)
            .Cell(m.availability, 4)
            .Cell(m.nodes_crashed)
            .Cell(m.nodes_lost)
            .Cell(m.nodes_blacklisted)
            .Cell(m.heartbeats_dropped)
            .Cell(m.TotalTaskFailures())
            .Cell(m.TotalTaskRetries())
            .Cell(m.TotalKilledAttempts())
            .Cell(m.TotalMapsReexecuted())
            .Cell(m.TotalSpeculativeLaunched())
            .Cell(m.TotalSpeculativeWins())
            .Cell(m.LatencyPercentile(0.95), 1);
      }
    }
  }
  rep.Print(t);

  // Single calibrated job per policy: the recovery cost visible without
  // inter-job queueing noise.
  rep.out() << "\nSingle-job recovery cost (32 maps, 20 s CPU / 4 s GPU):\n\n";
  auto& sj = rep.AddTable(
      "fault_singlejob",
      {"faults", "policy", "makespan s", "fails", "retries", "killed",
       "reexec", "spec", "spec win", "gpu bounce"});
  for (const FaultLevel& level : levels) {
    for (sched::Policy policy : policies) {
      hadoop::CalibratedTaskSource::Params p;
      p.num_maps = rep.smoke() ? 16 : 32;
      p.num_reducers = 2;
      p.cpu_task_sec = 20.0;
      p.gpu_task_sec = 4.0;
      p.variation = 0.2;
      p.map_output_bytes = 16 << 20;
      p.seed = seed;
      hadoop::CalibratedTaskSource src(p);
      hadoop::ClusterConfig c = cluster;
      c.num_slaves = 4;
      c.sink = rep.sink();
      c.metrics = rep.metrics();
      c.trace_pid_base = pid_base;
      pid_base += 100;
      const fault::FaultInjector injector(
          level.enabled ? level.spec : fault::FaultSpec{});
      if (level.enabled) c.faults = &injector;
      const hadoop::JobResult r =
          hadoop::JobEngine(c, &src, policy).Run();
      rep.AddModeledSeconds(r.makespan_sec);
      sj.Row()
          .Cell(level.name)
          .Cell(sched::PolicyName(policy))
          .Cell(r.makespan_sec, 1)
          .Cell(r.task_failures)
          .Cell(r.task_retries)
          .Cell(r.killed_attempts)
          .Cell(r.maps_reexecuted)
          .Cell(r.speculative_launched)
          .Cell(r.speculative_wins)
          .Cell(r.gpu_failures);
    }
  }
  rep.Print(sj);

  // The headline invariant: a real (functional) wordcount job commits the
  // exact same output with faults injected as without. The fault spec here
  // is scaled to the functional job's millisecond task durations and leans
  // on aggressive attempt faults, dropped heartbeats and transient crashes
  // whose outage outlives the expiry window — so committed maps on a lost
  // tracker really do re-execute.
  rep.out() << "\nExactly-once output invariance (functional wordcount):\n\n";
  gpurt::JobProgram wc = gpurt::CompileJob(kWcMap, "", kWcReduce);
  const std::vector<std::string> splits = {
      "the cat sat on the mat\n",  "the dog ate the bone\n",
      "cat and dog and mat\n",     "bone of the dog\n",
      "a cat a dog a bone\n",      "mat under the cat\n",
      "the quick brown fox\n",     "fox and cat and dog\n",
      "the mat and the bone\n",    "dog sat on the bone\n",
      "quick cat quick dog\n",     "a fox under the mat\n",
      "bone and mat and fox\n",    "the dog the cat the fox\n",
      "sat under a brown mat\n",   "a quick brown dog ate\n"};
  hadoop::FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 2;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;

  // Functional task durations are tens of microseconds, so the cluster
  // clock scales down with them: 20 µs heartbeats, 0.1 ms expiry, and
  // transient crashes whose 0.15 ms outage outlives the expiry window —
  // committed maps on an expired tracker genuinely re-execute.
  hadoop::ClusterConfig fc;
  fc.num_slaves = 4;
  fc.map_slots_per_node = 2;
  fc.gpus_per_node = 1;
  fc.heartbeat_sec = 2e-5;
  fc.heartbeat_expiry_sec = 1e-4;
  fc.retry_backoff_sec = 2e-5;
  fc.max_task_attempts = 8;
  fc.speculation = true;

  fc.sink = rep.sink();
  fc.metrics = rep.metrics();

  std::map<std::string, long> baseline;
  {
    hadoop::FunctionalTaskSource src(wc, splits, fopts);
    fc.trace_pid_base = pid_base;
    pid_base += 100;
    const hadoop::JobResult r =
        hadoop::JobEngine(fc, &src, sched::Policy::kTail).Run();
    rep.AddModeledSeconds(r.makespan_sec);
    baseline = Histogram(r.final_output);
  }

  auto& inv = rep.AddTable("fault_invariance",
                           {"faults", "output_identical", "fails", "retries",
                            "killed", "reexec", "lost", "makespan s"});
  bool all_identical = true;
  for (const FaultLevel& level : levels) {
    fault::FaultSpec fspec;
    fspec.seed = level.enabled ? level.spec.seed : seed;
    if (level.enabled) {
      const bool heavy = std::string(level.name) == "heavy";
      fspec.crash_mttf_sec = heavy ? 3e-4 : 1e-3;
      fspec.permanent_fraction = 0.0;
      fspec.restart_sec = 1.5e-4;  // outlives the expiry window: maps re-run
      fspec.horizon_sec = 0.05;
      fspec.heartbeat_drop_prob = 0.05;
      fspec.cpu_fail_prob = heavy ? 0.2 : 0.08;
      fspec.gpu_fail_prob = fspec.cpu_fail_prob;
      fspec.gpu_oom_prob = 0.05;
      fspec.slow_node_prob = 0.25;
      fspec.slow_factor = 2.0;
    }
    const fault::FaultInjector injector(fspec);
    hadoop::ClusterConfig c = fc;
    c.trace_pid_base = pid_base;
    pid_base += 100;
    if (level.enabled) c.faults = &injector;
    hadoop::FunctionalTaskSource src(wc, splits, fopts);
    const hadoop::JobResult r =
        hadoop::JobEngine(c, &src, sched::Policy::kTail).Run();
    rep.AddModeledSeconds(r.makespan_sec);
    const bool identical = Histogram(r.final_output) == baseline;
    all_identical = all_identical && identical;
    inv.Row()
        .Cell(level.name)
        .Cell(static_cast<std::int64_t>(identical ? 1 : 0))
        .Cell(r.task_failures)
        .Cell(r.task_retries)
        .Cell(r.killed_attempts)
        .Cell(r.maps_reexecuted)
        .Cell(r.nodes_lost)
        .Cell(r.makespan_sec, 4);
  }
  rep.Print(inv);
  rep.metrics()->gauge("fault_sweep.output_identical")
      .Set(all_identical ? 1.0 : 0.0);

  // --- Elastic churn + kill->restore -------------------------------------
  // A fixed multi-tenant workload under runtime membership churn: one
  // tracker joins mid-run, one drains out, one is yanked hard. The
  // preempt variant arms per-tenant quota kills on top. The same-seed
  // static row anchors the comparison.
  rep.out() << "\nElastic churn (runtime resize + preemptive quotas):\n\n";
  std::vector<std::string> churn_ckpts;
  const double churn_interval = 13.7;
  auto run_churn = [&](bool churn, int budget, double ckpt_interval,
                       bool capture, const std::string* restore_text,
                       bool attach_reporting) {
    hadoop::ClusterConfig c;
    c.num_slaves = 6;
    c.map_slots_per_node = 3;
    c.reduce_slots_per_node = 2;
    c.gpus_per_node = 1;
    c.speculation = true;
    c.preemption_budget = budget;
    c.checkpoint_interval_sec = ckpt_interval;
    if (capture) {
      c.on_checkpoint = [&churn_ckpts](int, const std::string& text) {
        churn_ckpts.push_back(text);
      };
    }
    if (attach_reporting) {
      c.sink = rep.sink();
      c.metrics = rep.metrics();
      c.trace_pid_base = pid_base;
      pid_base += 100;
    }
    multijob::MultiJobEngine eng(c,
                                 multijob::MakeCapacityScheduler({3.0, 1.0}));
    if (churn) {
      eng.ScheduleJoin(15.0);
      eng.ScheduleLeave(40.0, 1, /*drain=*/true);
      eng.ScheduleLeave(60.0, 2, /*drain=*/false);
    }
    static constexpr int kMaps[] = {24, 32, 16, 24, 20, 28};
    static constexpr double kCpu[] = {9.0, 12.0, 7.0, 10.0, 8.0, 11.0};
    static constexpr double kSubmit[] = {0.0, 5.0, 9.0, 13.0, 17.0, 21.0};
    static constexpr sched::Policy kPolicies[] = {
        sched::Policy::kTail, sched::Policy::kCpuOnly,
        sched::Policy::kGpuFirst};
    const int num_churn_jobs = rep.smoke() ? 3 : 6;
    std::vector<std::unique_ptr<hadoop::CalibratedTaskSource>> keep;
    for (int j = 0; j < num_churn_jobs; ++j) {
      hadoop::CalibratedTaskSource::Params p;
      p.num_maps = kMaps[j];
      p.num_reducers = 2;
      p.cpu_task_sec = kCpu[j];
      p.gpu_task_sec = kCpu[j] / 2.0;
      p.variation = 0.3;
      p.seed = seed + static_cast<std::uint64_t>(j);
      keep.push_back(std::make_unique<hadoop::CalibratedTaskSource>(p));
      multijob::JobSpec s;
      s.source = keep.back().get();
      s.policy = kPolicies[j % 3];
      s.pool = j % 2;
      s.label = "churn" + std::to_string(j);
      eng.Submit(kSubmit[j], s);
    }
    if (restore_text != nullptr) eng.RestoreFromText(*restore_text);
    const multijob::WorkloadMetrics m = eng.Run();
    if (attach_reporting) rep.AddModeledSeconds(m.makespan_sec);
    return m;
  };

  auto& ct = rep.AddTable(
      "fault_churn",
      {"variant", "makespan s", "avail", "joins", "leaves", "killed",
       "reexec", "preempt", "p50 s", "p99 s"});
  struct ChurnVariant {
    const char* name;
    bool churn;
    int budget;
    double interval;
    bool capture;
  };
  // The preempt row doubles as the restore donor: it writes checkpoints on
  // the way (snapshot writes are proven not to perturb modeled numbers —
  // tests/ha_test.cc pins that).
  const ChurnVariant variants[] = {
      {"static", false, 0, 0.0, false},
      {"churn", true, 0, 0.0, false},
      {"churn+preempt", true, 2, churn_interval, true},
  };
  multijob::WorkloadMetrics donor;
  for (const ChurnVariant& v : variants) {
    const multijob::WorkloadMetrics m = run_churn(
        v.churn, v.budget, v.interval, v.capture, nullptr,
        /*attach_reporting=*/true);
    if (v.capture) donor = m;
    ct.Row()
        .Cell(v.name)
        .Cell(m.makespan_sec, 1)
        .Cell(m.availability, 4)
        .Cell(m.nodes_joined)
        .Cell(m.nodes_left)
        .Cell(m.TotalKilledAttempts())
        .Cell(m.TotalMapsReexecuted())
        .Cell(m.preemptions)
        .Cell(m.LatencyPercentile(0.5), 2)
        .Cell(m.LatencyPercentile(0.99), 2);
  }
  rep.Print(ct);

  // The kill->restore identity: replay the churn+preempt run from its
  // middle checkpoint on a fresh engine (same config, same submissions,
  // same membership plan — the warm-restart contract) and require every
  // modeled number to come out bit-identical.
  rep.out() << "\nKill->restore identity (churn+preempt, mid-run snapshot):\n\n";
  bool restore_identical = false;
  int restore_seq = 0;
  if (!churn_ckpts.empty()) {
    restore_seq = static_cast<int>(churn_ckpts.size()) / 2 + 1;
    const std::string& snap = churn_ckpts[churn_ckpts.size() / 2];
    const multijob::WorkloadMetrics restored = run_churn(
        /*churn=*/true, /*budget=*/2, churn_interval, /*capture=*/false,
        &snap, /*attach_reporting=*/false);
    restore_identical = SameWorkload(donor, restored);
  }
  auto& rt = rep.AddTable("fault_restore",
                          {"checkpoints", "restored from", "identical"});
  rt.Row()
      .Cell(static_cast<std::int64_t>(churn_ckpts.size()))
      .Cell(restore_seq)
      .Cell(static_cast<std::int64_t>(restore_identical ? 1 : 0));
  rep.Print(rt);
  rep.metrics()->gauge("fault_sweep.restore_identical")
      .Set(restore_identical ? 1.0 : 0.0);

  rep.out() << "\nReading guide: availability falls and makespan grows with\n"
               "the failure level, but output_identical stays 1 — recovery\n"
               "(re-execution, retries, speculation) changes when work runs,\n"
               "never what it computes. The attempt-id commit protocol\n"
               "guarantees each map commits exactly once.\n";
  return rep.Finish();
}
