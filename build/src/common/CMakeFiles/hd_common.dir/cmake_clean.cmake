file(REMOVE_RECURSE
  "CMakeFiles/hd_common.dir/strings.cc.o"
  "CMakeFiles/hd_common.dir/strings.cc.o.d"
  "CMakeFiles/hd_common.dir/table.cc.o"
  "CMakeFiles/hd_common.dir/table.cc.o.d"
  "libhd_common.a"
  "libhd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
