// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary regenerates one table or figure of the paper. Single
// GPU/CPU tasks are executed functionally on generated splits (scaled down
// from the 256 MB production fileSplits); cluster-scale runs replay the
// measured task times through the discrete-event engine at Table 2's task
// counts. All reported numbers are modeled (deterministic) times.
#pragma once

#include <iostream>
#include <string>

#include "apps/benchmark.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/job_program.h"
#include "gpusim/device.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hd::bench {

// Size of the generated fileSplit a single measured task processes. The
// production split is 256 MB (Table 3); we scale durations by the ratio
// when replaying cluster-scale runs.
constexpr std::int64_t kMeasuredSplitBytes = 192 << 10;
constexpr double kProductionScale =
    static_cast<double>(256LL << 20) / kMeasuredSplitBytes;

struct MeasuredTask {
  gpurt::MapTaskResult cpu;
  gpurt::MapTaskResult gpu;            // all optimisations on
  gpurt::MapTaskResult gpu_baseline;   // baseline-translated (§7.4)
  double CpuSec() const { return cpu.phases.Total(); }
  double GpuSec() const { return gpu.phases.Total(); }
  double GpuBaselineSec() const { return gpu_baseline.phases.Total(); }
  double Speedup() const { return CpuSec() / GpuSec(); }
  double BaselineSpeedup() const { return CpuSec() / GpuBaselineSec(); }
};

struct MeasureConfig {
  gpusim::DeviceConfig device = gpusim::DeviceConfig::TeslaK40();
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  gpurt::IoConfig io;
  std::int64_t split_bytes = kMeasuredSplitBytes;
  std::uint64_t seed = 20150615;  // HPDC'15
  bool measure_baseline = true;

  // Observability (src/trace), forwarded into the task options; null =
  // off. The three measured runs land on separate lanes under
  // `track.pid`: CPU phases on track.tid, optimised-GPU on tid+4 (its
  // kernel/SM lanes follow), baseline-GPU on tid+4+gpu_lane_stride.
  trace::Sink* sink = nullptr;
  trace::Registry* metrics = nullptr;
  trace::Track track;
  double trace_origin_sec = 0.0;
  // Lanes reserved per GPU run (phase lane + kernel lane + per-SM lanes).
  int gpu_lane_stride = 32;
};

// Runs one data-local map(+combine) task of `bench` on the CPU path, the
// optimised GPU path, and (optionally) the baseline-translated GPU path.
MeasuredTask MeasureTask(const apps::Benchmark& bench,
                         const MeasureConfig& config);

// GPU task options with every compiler/runtime optimisation disabled
// (the "baseline translated" bars of Fig. 5).
gpurt::GpuTaskOptions BaselineGpuOptions();

// Deprecated: forwards to stats::GeoMean (common/stats.h); kept so older
// bench code compiles unchanged.
double GeoMean(const std::vector<double>& xs);

}  // namespace hd::bench
