#include "analysis/diag_registry.h"

namespace hd::analysis {

const std::vector<DiagInfo>& DiagRegistry() {
  static const std::vector<DiagInfo> kRegistry = {
      // parse
      {"HD001", "parse", Severity::kError,
       "source failed to lex or parse as mini-C"},
      // directive-check (HD101 escalates to error in translator mode)
      {"HD101", "directive-check", Severity::kWarning,
       "program has no main() function"},
      {"HD102", "directive-check", Severity::kNote,
       "no mapreduce directive found in main()"},
      {"HD103", "directive-check", Severity::kError,
       "directive is missing the mandatory key()/value() clauses"},
      {"HD104", "directive-check", Severity::kError,
       "combiner directive is missing keyin()/valuein()"},
      {"HD105", "directive-check", Severity::kError,
       "combiner-only clause used on a mapper"},
      {"HD106", "directive-check", Severity::kError,
       "mapper-only clause used on a combiner"},
      {"HD107", "directive-check", Severity::kError,
       "clause has the wrong number of arguments"},
      {"HD108", "directive-check", Severity::kError,
       "clause expects a positive integer argument"},
      {"HD109", "directive-check", Severity::kWarning,
       "unknown clause is ignored"},
      {"HD110", "directive-check", Severity::kError,
       "variable appears in more than one placement clause"},
      {"HD111", "directive-check", Severity::kError,
       "clause names a variable the region does not use"},
      {"HD112", "directive-check", Severity::kError,
       "texture clause applied to a scalar"},
      {"HD113", "directive-check", Severity::kWarning,
       "directive outside main() is ignored"},
      {"HD114", "directive-check", Severity::kWarning,
       "duplicate mapper/combiner directive is ignored"},
      // race-check
      {"HD201", "race-check", Severity::kError,
       "sharedRO variable written inside the region"},
      {"HD202", "race-check", Severity::kError,
       "texture variable written inside the region"},
      {"HD203", "race-check", Severity::kWarning,
       "accumulation into an auto-privatized outer scalar"},
      {"HD204", "race-check", Severity::kWarning,
       "element write to an auto-privatized outer array"},
      // kv-bounds
      {"HD301", "kv-bounds", Severity::kError,
       "length clause exceeds the emitted buffer's declared size"},
      {"HD302", "kv-bounds", Severity::kWarning,
       "length clause smaller than the emitted buffer"},
      {"HD303", "kv-bounds", Severity::kError,
       "a record path emits more pairs than kvpairs() reserves"},
      {"HD304", "kv-bounds", Severity::kWarning,
       "emission inside a nested loop may exceed the kvpairs() hint"},
      {"HD305", "kv-bounds", Severity::kWarning,
       "mapper region never emits a KV pair"},
      // placement-audit
      {"HD401", "placement-audit", Severity::kNote,
       "Algorithm 1 placement explanation (--audit)"},
      {"HD402", "placement-audit", Severity::kWarning,
       "texture-eligible read-only array lost texture placement"},
      {"HD403", "placement-audit", Severity::kWarning,
       "char[] KV slot width defeats char4 vectorization"},
      // portability
      {"HD501", "portability", Severity::kError,
       "recursive function cannot be offloaded"},
      {"HD502", "portability", Severity::kError,
       "call to a function that is neither defined nor a builtin"},
      {"HD503", "portability", Severity::kWarning,
       "loop never modifies its condition variables"},
      {"HD504", "portability", Severity::kError,
       "host-only call (malloc/free/exit/fprintf) inside a region"},
      // infer (directive synthesis)
      {"HD601", "infer", Severity::kNote,
       "loop classified and directive synthesized"},
      {"HD602", "infer", Severity::kNote,
       "per-clause provenance of a synthesized directive"},
      {"HD603", "infer", Severity::kError,
       "no candidate record loop found to annotate"},
      {"HD604", "infer", Severity::kError,
       "candidate region never emits a KV pair"},
      {"HD605", "infer", Severity::kError,
       "emission sites disagree on the key/value pair"},
      {"HD606", "infer", Severity::kError,
       "loop-carried dependence defeats parallelization"},
      {"HD607", "infer", Severity::kError,
       "carried reduction uses a non-associative operator"},
      {"HD608", "infer", Severity::kError,
       "write-after-read aliasing on an outer array"},
      {"HD609", "infer", Severity::kError,
       "KV input/output shape cannot be inferred"},
      {"HD610", "infer", Severity::kNote,
       "region already annotated; left unchanged"},
  };
  return kRegistry;
}

const DiagInfo* FindDiag(const std::string& id) {
  for (const DiagInfo& d : DiagRegistry()) {
    if (id == d.id) return &d;
  }
  return nullptr;
}

}  // namespace hd::analysis
