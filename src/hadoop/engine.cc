#include "hadoop/engine.h"

#include "common/check.h"

namespace hd::hadoop {

JobEngine::JobEngine(ClusterConfig config, TaskTimeSource* source,
                     sched::Policy policy, const hdfs::Hdfs* fs,
                     std::string input_path)
    : ClusterCore(std::move(config)) {
  job_.source = source;
  job_.policy = policy;
  job_.fs = fs;
  job_.input_path = std::move(input_path);
  InitJob(job_);
}

void JobEngine::Heartbeat(int node_id) {
  if (job_.done) return;
  if (!HeartbeatDelivered(node_id)) return;
  EmitHeartbeat(node_id);
  // A blacklisted tracker keeps heartbeating but gets no work.
  if (!NodeSchedulable(node_id)) return;
  // JobTracker side: choose how many tasks this response carries, and the
  // numMapsRemainingPerNode estimate it ships alongside (Algorithm 2,
  // lines 8-9) — both computed before handing out this response's tasks.
  const int max_tasks = HeartbeatCap(job_, node_id);
  const double remaining_per_node =
      static_cast<double>(job_.pending.size()) / cfg_.num_slaves;
  const std::vector<int> tasks = PickTasks(job_, node_id, max_tasks);
  // TaskTracker side: place each assigned task.
  for (int task : tasks) PlaceTask(job_, node_id, task, remaining_per_node);
  // With the pending queue drained, idle slots may hunt stragglers.
  MaybeSpeculate(job_, node_id);
}

void JobEngine::OnTaskFinished(JobState& job, int node_id) {
  if (!job.done) {
    // Out-of-band heartbeat on task completion (Hadoop 1.x behaviour).
    Heartbeat(node_id);
  }
}

void JobEngine::VisitActiveJobs(const std::function<void(JobState&)>& fn) {
  fn(job_);
}

void JobEngine::PulseTickEvent(void* ctx, const des::Payload& p) {
  static_cast<JobEngine*>(ctx)->PulseTick(static_cast<int>(p.u0));
}

void JobEngine::BatchTickEvent(void* ctx, const des::Payload&) {
  static_cast<JobEngine*>(ctx)->BatchTick();
}

void JobEngine::OnNodeRecovered(int node_id) {
  if (job_.done) return;
  // In batch mode the cluster-wide chain never stopped; the recovered
  // node is picked up on its next tick.
  if (cfg_.batch_heartbeats) return;
  events_.After(cfg_.heartbeat_sec, &JobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), 0});
}

void JobEngine::PulseTick(int node_id) {
  if (job_.done) return;
  // A dead tracker sends nothing; the chain resumes at recovery.
  if (!health_[static_cast<std::size_t>(node_id)].alive) return;
  Heartbeat(node_id);
  events_.After(cfg_.heartbeat_sec, &JobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), 0});
}

void JobEngine::BatchTick() {
  if (job_.done) return;
  for (int n = 0; n < cfg_.num_slaves; ++n) {
    if (job_.done) break;
    if (!health_[static_cast<std::size_t>(n)].alive) continue;
    Heartbeat(n);
  }
  if (job_.done) return;
  events_.After(cfg_.heartbeat_sec, &JobEngine::BatchTickEvent, this);
}

JobResult JobEngine::Run() {
  ScheduleFaultPlan();
  StartTelemetry();
  if (cfg_.batch_heartbeats) {
    // One cluster-wide heartbeat tick per interval: O(1) standing events
    // instead of O(nodes). Trackers are served in node order; the
    // per-node stagger is gone, so modeled numbers differ from the
    // per-node chains (documented on ClusterConfig).
    events_.At(cfg_.heartbeat_sec, &JobEngine::BatchTickEvent, this);
  } else {
    // Staggered initial heartbeats, then one per interval per node until
    // the job completes. Completions additionally trigger out-of-band
    // heartbeats.
    for (int n = 0; n < cfg_.num_slaves; ++n) {
      const double offset =
          cfg_.heartbeat_sec * (n + 1) / (cfg_.num_slaves + 1);
      events_.At(offset, &JobEngine::PulseTickEvent, this,
                 des::Payload{static_cast<std::uint64_t>(n), 0});
    }
  }
  events_.Run();
  HD_CHECK_MSG(job_.done, "event queue drained before the job completed");
  return job_.result;
}

}  // namespace hd::hadoop
