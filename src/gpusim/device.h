// The simulated GPU device: bounded non-virtual memory plus host-link and
// clock conversions.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "gpusim/config.h"

namespace hd::gpusim {

// Thrown when a device allocation exceeds the remaining global memory —
// GPUs have no virtual memory (§2.1), so this is a hard failure the runtime
// must design around (and the reason KM cannot run on Cluster2, §7.3).
class DeviceOomError : public std::runtime_error {
 public:
  explicit DeviceOomError(const std::string& what)
      : std::runtime_error(what) {}
};

class GpuDevice {
 public:
  explicit GpuDevice(DeviceConfig config) : config_(std::move(config)) {}

  const DeviceConfig& config() const { return config_; }

  // Reserves `bytes` of device global memory; returns an allocation handle.
  std::int64_t Malloc(std::int64_t bytes, const std::string& tag) {
    HD_CHECK(bytes >= 0);
    if (bytes > free_bytes()) {
      throw DeviceOomError("device OOM allocating " + std::to_string(bytes) +
                           " bytes for '" + tag + "' (free: " +
                           std::to_string(free_bytes()) + ")");
    }
    const std::int64_t id = next_id_++;
    allocations_[id] = bytes;
    used_ += bytes;
    return id;
  }

  void Free(std::int64_t id) {
    auto it = allocations_.find(id);
    HD_CHECK_MSG(it != allocations_.end(), "double free of allocation " << id);
    used_ -= it->second;
    allocations_.erase(it);
  }

  void FreeAll() {
    allocations_.clear();
    used_ = 0;
  }

  std::int64_t used_bytes() const { return used_; }
  std::int64_t free_bytes() const {
    return config_.global_mem_bytes - used_;
  }

  // PCIe transfer time for `bytes` (either direction).
  double TransferSeconds(std::int64_t bytes) const {
    return static_cast<double>(bytes) / config_.pcie_bytes_per_sec;
  }

  double CyclesToSeconds(double cycles) const {
    return cycles / (config_.core_clock_ghz * 1e9);
  }

 private:
  DeviceConfig config_;
  std::map<std::int64_t, std::int64_t> allocations_;
  std::int64_t next_id_ = 1;
  std::int64_t used_ = 0;
};

}  // namespace hd::gpusim
