#include "trace/timeseries.h"

#include <cmath>

#include "common/check.h"
#include "common/json.h"

namespace hd::trace {

TimeSeries::TimeSeries(TimeSeriesOptions opts) : opts_(opts) {
  HD_CHECK_MSG(
      std::isfinite(opts_.sample_interval_sec) &&
          opts_.sample_interval_sec > 0.0,
      "sample_interval_sec must be positive, got " << opts_.sample_interval_sec);
  HD_CHECK_MSG(opts_.max_points_per_series > 1,
               "max_points_per_series must exceed 1");
}

void TimeSeries::AddGaugeProbe(std::string name, ProbeFn fn) {
  RegisterProbeName(name);
  probes_.push_back({std::move(name), Probe::Kind::kGauge, std::move(fn), 1.0});
}

void TimeSeries::AddCumulativeProbe(std::string name, ProbeFn fn) {
  RegisterProbeName(name);
  probes_.push_back(
      {std::move(name), Probe::Kind::kCumulative, std::move(fn), 1.0});
}

void TimeSeries::AddRateProbe(std::string name, ProbeFn fn, double scale) {
  RegisterProbeName(name);
  probes_.push_back(
      {std::move(name), Probe::Kind::kRate, std::move(fn), scale});
}

void TimeSeries::RegisterProbeName(const std::string& name) {
  // Duplicate probes would double-append per tick and corrupt the derived
  // rate series. One TimeSeries serves one engine run; a second engine
  // re-registering the same probes is the usual way to trip this.
  HD_CHECK_MSG(probe_names_.insert(name).second,
               "telemetry probe '" << name << "' registered twice");
}

WindowedDistribution& TimeSeries::windowed(std::string_view name) {
  auto it = windowed_.find(name);
  if (it == windowed_.end()) {
    it = windowed_
             .emplace(std::string(name),
                      WindowedDistribution(opts_.sample_interval_sec))
             .first;
  }
  return it->second;
}

void TimeSeries::Append(std::string_view name, const char* kind, double t,
                        double v) {
  HD_CHECK_MSG(std::isfinite(v),
               "non-finite telemetry value for series " << name);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), Series{}).first;
    it->second.kind = kind;
  }
  Series& s = it->second;
  s.points.emplace_back(t, v);
  if (s.points.size() > opts_.max_points_per_series) s.points.pop_front();
}

const TimeSeries::Series* TimeSeries::Find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

double TimeSeries::LastValue(std::string_view name) const {
  const Series* s = Find(name);
  if (s == nullptr || s->points.empty()) return 0.0;
  return s->points.back().second;
}

double TimeSeries::DeltaOver(std::string_view name, double window_sec) const {
  const Series* s = Find(name);
  if (s == nullptr || s->points.empty()) return 0.0;
  const Point& latest = s->points.back();
  const double target = latest.first - window_sec;
  // Baseline: the value at the last sample at or before `target`. Counters
  // start at 0 at t = 0, so a window reaching past the first sample (or
  // before t = 0) sees a zero baseline. The per-series ring must cover the
  // longest SLO window — at the defaults, 4096 points vs 300 s, it does by
  // two orders of magnitude.
  double baseline = 0.0;
  for (const Point& p : s->points) {
    if (p.first > target) break;
    baseline = p.second;
  }
  return latest.second - baseline;
}

void TimeSeries::Sample(double now, const Registry* registry, Sink* sink) {
  const double interval = opts_.sample_interval_sec;
  const std::int64_t tick = std::llround(now / interval);

  for (Probe& probe : probes_) {
    const double v = probe.fn();
    switch (probe.kind) {
      case Probe::Kind::kGauge:
        Append(probe.name, "gauge", now, v);
        break;
      case Probe::Kind::kCumulative: {
        const double prev = LastValue(probe.name);
        Append(probe.name, "counter", now, v);
        Append(probe.name + ".rate", "rate", now, (v - prev) / interval);
        break;
      }
      case Probe::Kind::kRate: {
        // The raw accumulator is not itself a series, so the previous
        // snapshot lives on the probe rather than in a series point.
        const double rate = (v - probe.prev_raw) / interval * probe.scale;
        probe.prev_raw = v;
        Append(probe.name, "rate", now, rate);
        break;
      }
    }
  }

  if (registry != nullptr) {
    for (const auto& [name, counter] : registry->counters()) {
      if (probe_names_.count(name) != 0) continue;  // live probe wins
      const double v = static_cast<double>(counter.value());
      const double prev = LastValue(name);
      Append(name, "counter", now, v);
      Append(name + ".rate", "rate", now, (v - prev) / interval);
    }
    for (const auto& [name, gauge] : registry->gauges()) {
      if (probe_names_.count(name) != 0) continue;
      Append(name, "gauge", now, gauge.value());
    }
  }

  // Summarize the just-completed tumbling bucket (bucket tick-1 covers
  // [(tick-1) * interval, tick * interval)).
  for (auto& [name, wd] : windowed_) {
    const WindowSummary s = wd.Summarize(tick - 1);
    Append(name + ".count", "window", now, static_cast<double>(s.count));
    if (s.count > 0) {
      Append(name + ".p50", "window", now, s.p50);
      Append(name + ".p99", "window", now, s.p99);
      Append(name + ".max", "window", now, s.max);
    }
  }

  slo_.Evaluate(now, *this, sink);
  ++samples_taken_;
}

void TimeSeries::WriteJsonl(std::ostream& os) const {
  {
    json::Writer w(os);
    w.BeginObject();
    w.Key("schema").String(kTimeSeriesSchema);
    w.Key("sample_interval_sec").Number(opts_.sample_interval_sec);
    w.Key("samples").Int(samples_taken_);
    w.Key("series").Int(static_cast<std::int64_t>(series_.size()));
    w.Key("alerts").Int(static_cast<std::int64_t>(slo_.alerts().size()));
    w.EndObject();
    os << '\n';
  }
  for (const auto& [name, s] : series_) {
    json::Writer w(os);
    w.BeginObject();
    w.Key("type").String("series");
    w.Key("name").String(name);
    w.Key("kind").String(s.kind);
    w.Key("points").BeginArray();
    for (const Point& p : s.points) {
      w.BeginArray();
      w.Number(p.first).Number(p.second);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    os << '\n';
  }
  for (const AlertEvent& a : slo_.alerts()) {
    json::Writer w(os);
    w.BeginObject();
    w.Key("type").String("alert");
    w.Key("t").Number(a.at_sec);
    w.Key("rule").String(a.rule);
    w.Key("state").String(a.firing ? "firing" : "resolved");
    w.Key("value").Number(a.value);
    w.EndObject();
    os << '\n';
  }
}

}  // namespace hd::trace
