// Structured diagnostics for the HeteroDoop static analyzer (hdlint).
//
// Every finding carries a severity, a stable diagnostic ID (HDnnn — see the
// table in DESIGN.md), the pass that produced it, a source location
// (file:line:col, 0 meaning "unknown"), a human message, and an optional
// fix-it hint. The DiagnosticEngine collects findings across passes so one
// run reports every problem, and renders them as text (compiler-style) or
// JSON (machine-readable, for editor/CI integration).
#pragma once

#include <string>
#include <vector>

namespace hd::analysis {

enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string id;    // stable "HDnnn" code
  std::string pass;  // producing pass, e.g. "directive-check"
  std::string file;  // source name ("<source>" for in-memory programs)
  int line = 0;      // 1-based; 0 = unknown
  int col = 0;       // 1-based; 0 = unknown
  std::string message;
  std::string hint;  // fix-it suggestion; may be empty
};

class DiagnosticEngine {
 public:
  void Add(Diagnostic d);

  // Convenience emitters. `hint` may be empty.
  void Error(std::string id, std::string pass, std::string file, int line,
             int col, std::string message, std::string hint = {});
  void Warning(std::string id, std::string pass, std::string file, int line,
               int col, std::string message, std::string hint = {});
  void Note(std::string id, std::string pass, std::string file, int line,
            int col, std::string message, std::string hint = {});

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int ErrorCount() const;
  int WarningCount() const;
  int NoteCount() const;
  bool HasErrors() const { return ErrorCount() > 0; }
  bool empty() const { return diags_.empty(); }

  // Stable sort by (file, line, col, severity) so multi-pass output reads in
  // source order regardless of pass execution order.
  void SortBySource();

  // Compiler-style text: one "file:line:col: severity: message [pass ID]"
  // line per diagnostic, hints indented underneath, plus a summary line.
  std::string RenderText() const;

  // {"diagnostics": [...], "errors": N, "warnings": N, "notes": N}
  // (schema documented in DESIGN.md).
  std::string RenderJson() const;

  // SARIF 2.1.0 document (CI code-scanning interchange): one run for
  // `tool_name` (hdlint / hdinfer) whose rule table is drawn from the
  // DiagRegistry entries this run actually used. Output is deterministic —
  // rules sorted by id, results in the engine's (source-sorted) order.
  std::string RenderSarif(const std::string& tool_name) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace hd::analysis
