// JobTracker checkpoint format "heterodoop.ckpt.v1" — shared helpers.
//
// A checkpoint is one JSON document snapshotting the whole control-plane
// state of a MultiJobEngine/StreamEngine run at a checkpoint boundary
// (modeled time k * checkpoint_interval_sec): job/task/attempt tables,
// scheduler queues, node health and blacklists, the membership plan,
// pipeline window seqs and watermarks, and the metrics registry. Every
// number is serialized with shortest-round-trip formatting (common/json.h),
// and 64-bit generator states as decimal strings (JSON doubles only hold 53
// bits), so a restore reproduces the captured state bit-for-bit.
//
// Restore contract (MultiJobEngine::RestoreFromText): the caller rebuilds
// an engine with the same configuration, re-registers the same pipelines,
// re-submits the same batch jobs in the same order and re-schedules the
// same membership plan, then restores. The engine overlays the snapshot:
// committed work is never redone, in-flight attempts resume with their
// original completion times, and the continued run produces byte-identical
// final output and metrics to the uninterrupted same-seed run (ties between
// unrelated standing chains at the exact capture instant excepted — pick a
// cadence that does not align with heartbeats, see DESIGN.md).
//
// This header holds the error type and the typed JSON field accessors the
// engine-side writers/readers share; the engine state itself is serialized
// by ClusterCore/MultiJobEngine/StreamEngine (they own the fields).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"

namespace hd::hadoop {

inline constexpr const char* kCheckpointSchema = "heterodoop.ckpt.v1";

// A checkpoint could not be parsed, failed schema validation, or does not
// match the engine it is being restored into. The message lists every
// mismatch found (the ClusterConfig::Validate convention).
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

namespace ckpt {

// Parses a checkpoint document and validates the schema marker. Throws
// CheckpointError (with the parser's byte offset) on malformed input,
// truncation, or a wrong/missing schema.
json::Value ParseCheckpoint(const std::string& text);

// Typed field access; each throws CheckpointError naming the missing or
// mistyped key, so a corrupt document is rejected with a structured error
// instead of a crash.
const json::Value& Get(const json::Value& obj, const char* key);
double Num(const json::Value& obj, const char* key);
std::int64_t Int(const json::Value& obj, const char* key);
bool Bool(const json::Value& obj, const char* key);
const std::string& Str(const json::Value& obj, const char* key);
const std::vector<json::Value>& Arr(const json::Value& obj, const char* key);
// 64-bit word stored as a decimal string (full precision).
std::uint64_t U64(const json::Value& obj, const char* key);
std::string U64Str(std::uint64_t v);

// Writes `contents` to `path` atomically (temp file + rename), so a crash
// mid-write never leaves a truncated checkpoint behind.
void AtomicWriteFile(const std::string& path, const std::string& contents);

// Reads a whole file; throws CheckpointError when it cannot be opened.
std::string ReadFile(const std::string& path);

}  // namespace ckpt
}  // namespace hd::hadoop
