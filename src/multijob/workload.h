// Trace-driven workload generation: samples job streams over the Table 2
// application mix and runs them through a MultiJobEngine.
//
// Two arrival models:
//   * open-loop Poisson — jobs arrive at rate lambda regardless of cluster
//     state (throughput/latency-vs-load sweeps);
//   * closed-loop fixed concurrency — K jobs always in flight; a
//     completion immediately submits the next (saturation throughput).
// All sampling draws from common/prng.h, so a (mix, spec) pair replays
// bit-identically across runs and machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.h"
#include "hadoop/cluster_core.h"
#include "hadoop/task_source.h"
#include "multijob/metrics.h"
#include "multijob/scheduler.h"
#include "sched/policy.h"

namespace hd::multijob {

// One entry of the app mix: a Table 2 benchmark scaled down to a
// calibrated multi-wave job, plus its sampling weight.
struct AppTemplate {
  std::string id;      // Table 2 benchmark id ("WC", "BS", ...)
  double weight = 1.0;
  int pool = 0;        // Capacity scheduler pool
  hadoop::CalibratedTaskSource::Params params;
};

// The eight Table 2 applications with representative calibrated durations:
// CPU task seconds reflect the IO-vs-compute split and the per-app GPU
// speedups match the optimized single-task measurements of the Fig. 5
// harness (EXPERIMENTS.md). Map counts are Table 2's Cluster1 counts
// scaled to `maps_per_job`; IO-intensive apps land in pool 0,
// compute-intensive in pool 1.
std::vector<AppTemplate> Table2Mix(int maps_per_job = 32,
                                   int num_reducers = 2);

struct WorkloadSpec {
  enum class Mode { kOpenPoisson, kClosedLoop };
  Mode mode = Mode::kOpenPoisson;
  int num_jobs = 32;
  double arrival_rate_per_sec = 0.02;  // open-loop lambda
  int concurrency = 4;                 // closed-loop K
  sched::Policy policy = sched::Policy::kTail;  // per-job policy
  std::uint64_t seed = 1;
};

// Samples `spec.num_jobs` jobs from `mix` (weighted by AppTemplate::weight,
// deterministic in spec.seed) and runs them on `cluster` under the given
// inter-job scheduler. Owns every task source for the engine's lifetime.
WorkloadMetrics RunWorkload(const hadoop::ClusterConfig& cluster,
                            SchedulerKind scheduler,
                            const std::vector<AppTemplate>& mix,
                            const WorkloadSpec& spec);

}  // namespace hd::multijob
