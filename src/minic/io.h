// The stdio abstraction seen by mini-C programs.
//
// Hadoop Streaming runs map/combine/reduce as unix filters: records arrive
// on stdin and KV pairs leave on stdout. IoEnv is that pipe. The CPU path
// uses TextIoEnv over in-memory buffers; the GPU path substitutes an
// environment whose reads come from the device-resident fileSplit
// (getRecord) and whose writes go to the global KV store (emitKV/storeKV).
#pragma once

#include <string>
#include <string_view>

namespace hd::minic {

class IoEnv {
 public:
  virtual ~IoEnv() = default;

  // getline(): fetches the next full input record including its trailing
  // '\n' (if the source had one). Returns false at EOF.
  virtual bool NextLine(std::string* line) = 0;

  // scanf(): fetches the next whitespace-delimited token. Returns false at
  // EOF. Token and line cursors are shared, as with real stdio.
  virtual bool NextToken(std::string* tok) = 0;

  // printf(): appends formatted output.
  virtual void Write(std::string_view text) = 0;
};

// IoEnv over in-memory text buffers.
class TextIoEnv : public IoEnv {
 public:
  explicit TextIoEnv(std::string input) : input_(std::move(input)) {}

  bool NextLine(std::string* line) override {
    if (pos_ >= input_.size()) return false;
    std::size_t nl = input_.find('\n', pos_);
    if (nl == std::string::npos) {
      *line = input_.substr(pos_);
      pos_ = input_.size();
    } else {
      *line = input_.substr(pos_, nl - pos_ + 1);
      pos_ = nl + 1;
    }
    return true;
  }

  bool NextToken(std::string* tok) override {
    while (pos_ < input_.size() && IsSpace(input_[pos_])) ++pos_;
    if (pos_ >= input_.size()) return false;
    std::size_t start = pos_;
    while (pos_ < input_.size() && !IsSpace(input_[pos_])) ++pos_;
    *tok = input_.substr(start, pos_ - start);
    return true;
  }

  void Write(std::string_view text) override { output_.append(text); }

  const std::string& output() const { return output_; }
  std::string TakeOutput() { return std::move(output_); }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  std::string input_;
  std::size_t pos_ = 0;
  std::string output_;
};

}  // namespace hd::minic
