// The cluster engines' event queue: a thin facade over the pluggable
// simulator core in src/des/. The backend ("calendar" by default, or
// the reference "heap") comes from ClusterConfig::des_backend; both pop
// in identical (time, seq) order, so modeled numbers are bit-identical
// across backends.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "des/scheduler.h"

namespace hd::hadoop {

// A deterministic event queue: ties in time break by insertion order.
class EventQueue {
 public:
  using Fn = std::function<void()>;

  EventQueue() : sched_(des::MakeCalendarScheduler()) {}
  explicit EventQueue(const std::string& backend)
      : sched_(des::MakeScheduler(backend)) {}

  // Closure forms (allocate; cold paths and tests).
  void At(double time, Fn fn) { sched_->At(time, std::move(fn)); }
  void After(double delay, Fn fn) { sched_->After(delay, std::move(fn)); }

  // Pooled forms (allocation-free hot path). The returned handle cancels
  // the event in O(1) via Cancel().
  des::EventHandle At(double time, des::Handler fn, void* ctx,
                      des::Payload payload = {}) {
    return sched_->At(time, fn, ctx, payload);
  }
  des::EventHandle After(double delay, des::Handler fn, void* ctx,
                         des::Payload payload = {}) {
    return sched_->After(delay, fn, ctx, payload);
  }

  bool Cancel(des::EventHandle h) { return sched_->Cancel(h); }
  bool Pending(des::EventHandle h) const { return sched_->Pending(h); }

  double now() const { return sched_->now(); }
  bool empty() const { return sched_->empty(); }
  std::size_t pending() const { return sched_->pending(); }
  std::uint64_t serviced() const { return sched_->serviced(); }

  // Runs one event; returns false when the queue is empty.
  bool Step() { return sched_->Step(); }

  // Drains the queue.
  void Run() { sched_->Run(); }

  const char* backend() const { return sched_->name(); }

 private:
  std::unique_ptr<des::Scheduler> sched_;
};

}  // namespace hd::hadoop
