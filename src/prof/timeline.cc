#include "prof/timeline.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/json.h"

namespace hd::prof {

namespace {

double RelChange(double before, double after) {
  if (before == after) return 0.0;
  if (before == 0.0) return after > 0.0 ? 1.0 : -1.0;
  return (after - before) / std::fabs(before);
}

double MeanOf(const std::vector<std::pair<double, double>>& pts,
              std::size_t first) {
  if (first >= pts.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = first; i < pts.size(); ++i) sum += pts[i].second;
  return sum / static_cast<double>(pts.size() - first);
}

}  // namespace

double TsSeries::Min() const {
  HD_CHECK(!points.empty());
  double m = points[0].second;
  for (const auto& [t, v] : points) m = std::min(m, v);
  return m;
}

double TsSeries::Max() const {
  HD_CHECK(!points.empty());
  double m = points[0].second;
  for (const auto& [t, v] : points) m = std::max(m, v);
  return m;
}

double TsSeries::Mean() const { return MeanOf(points, 0); }

double TsSeries::Last() const {
  HD_CHECK(!points.empty());
  return points.back().second;
}

double TsSeries::SteadyMean() const { return MeanOf(points, points.size() / 2); }

TimeSeriesFile TimeSeriesFile::Parse(std::string_view text) {
  TimeSeriesFile f;
  bool saw_header = false;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (line.empty()) continue;
    const json::Value doc = json::Parse(line);
    if (!doc.is_object()) {
      throw std::runtime_error("timeseries line " + std::to_string(lineno) +
                               " is not a JSON object");
    }
    if (!saw_header) {
      const json::Value* schema = doc.Find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->string != kTimelineSchema) {
        throw std::runtime_error(std::string("not a ") + kTimelineSchema +
                                 " export");
      }
      if (const json::Value* v = doc.Find("sample_interval_sec");
          v && v->is_number()) {
        f.sample_interval_sec = v->number;
      }
      if (const json::Value* v = doc.Find("samples"); v && v->is_number()) {
        f.samples = static_cast<std::int64_t>(v->number);
      }
      saw_header = true;
      continue;
    }
    const json::Value* type = doc.Find("type");
    if (type == nullptr || !type->is_string()) {
      throw std::runtime_error("timeseries line " + std::to_string(lineno) +
                               " has no 'type'");
    }
    if (type->string == "series") {
      TsSeries s;
      if (const json::Value* v = doc.Find("name"); v && v->is_string()) {
        s.name = v->string;
      }
      if (const json::Value* v = doc.Find("kind"); v && v->is_string()) {
        s.kind = v->string;
      }
      if (const json::Value* v = doc.Find("points"); v && v->is_array()) {
        for (const json::Value& p : v->array) {
          if (!p.is_array() || p.array.size() != 2 ||
              !p.array[0].is_number() || !p.array[1].is_number()) {
            throw std::runtime_error("timeseries line " +
                                     std::to_string(lineno) +
                                     ": malformed point");
          }
          s.points.emplace_back(p.array[0].number, p.array[1].number);
        }
      }
      f.series.push_back(std::move(s));
    } else if (type->string == "alert") {
      TsAlert a;
      if (const json::Value* v = doc.Find("t"); v && v->is_number()) {
        a.t = v->number;
      }
      if (const json::Value* v = doc.Find("rule"); v && v->is_string()) {
        a.rule = v->string;
      }
      if (const json::Value* v = doc.Find("state"); v && v->is_string()) {
        a.state = v->string;
      }
      if (const json::Value* v = doc.Find("value"); v && v->is_number()) {
        a.value = v->number;
      }
      f.alerts.push_back(std::move(a));
    } else {
      throw std::runtime_error("timeseries line " + std::to_string(lineno) +
                               ": unknown type '" + type->string + "'");
    }
  }
  if (!saw_header) {
    throw std::runtime_error(std::string("not a ") + kTimelineSchema +
                             " export (empty file)");
  }
  return f;
}

TimeSeriesFile TimeSeriesFile::Load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw std::runtime_error("cannot read timeseries file '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return Parse(ss.str());
}

const TsSeries* TimeSeriesFile::Find(const std::string& name) const {
  for (const TsSeries& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool IsTimeSeriesFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  std::string line;
  if (!std::getline(f, line)) return false;
  return line.find(kTimelineSchema) != std::string::npos;
}

std::string Sparkline(const std::vector<std::pair<double, double>>& points,
                      int width) {
  // 8 brightness levels; space is reserved for "no data in this column".
  static constexpr const char kRamp[] = "_.-:=*#%@";
  static constexpr int kLevels = 9;
  if (points.empty() || width <= 0) return "";
  const int cols = std::min<int>(width, static_cast<int>(points.size()));
  double lo = points[0].second, hi = points[0].second;
  for (const auto& [t, v] : points) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  std::string out;
  out.reserve(static_cast<std::size_t>(cols));
  const std::size_t n = points.size();
  for (int c = 0; c < cols; ++c) {
    // Bucket by point index: [c*n/cols, (c+1)*n/cols).
    const std::size_t first = static_cast<std::size_t>(c) * n /
                              static_cast<std::size_t>(cols);
    const std::size_t last = static_cast<std::size_t>(c + 1) * n /
                             static_cast<std::size_t>(cols);
    double sum = 0.0;
    for (std::size_t i = first; i < last; ++i) sum += points[i].second;
    const double mean = sum / static_cast<double>(last - first);
    // A constant series renders as the lowest glyph, not as blanks.
    const int level =
        span <= 0.0
            ? 0
            : std::min(kLevels - 1,
                       static_cast<int>((mean - lo) / span * kLevels));
    out.push_back(kRamp[level]);
  }
  return out;
}

CompareResult CompareTimeSeries(const TimeSeriesFile& before,
                                const TimeSeriesFile& after,
                                double threshold) {
  CompareResult res;
  for (const TsSeries& b : before.series) {
    const TsSeries* a = after.Find(b.name);
    if (a == nullptr) {
      res.removed_benchmarks.push_back(b.name);
      continue;
    }
    const double bv = b.SteadyMean();
    const double av = a->SteadyMean();
    const double rel = RelChange(bv, av);
    if (std::fabs(rel) <= threshold) continue;
    Delta d;
    d.benchmark = b.name;
    d.metric = "steady_mean";
    d.before = bv;
    d.after = av;
    d.rel_change = rel;
    res.deltas.push_back(std::move(d));
  }
  for (const TsSeries& a : after.series) {
    if (before.Find(a.name) == nullptr) {
      res.added_benchmarks.push_back(a.name);
    }
  }
  return res;
}

}  // namespace hd::prof
