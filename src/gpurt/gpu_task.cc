#include "gpurt/gpu_task.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <map>
#include <memory>
#include <string_view>

#include "common/check.h"
#include "gpurt/kvstore.h"
#include "gpurt/records.h"
#include "gpurt/sort.h"
#include "minic/interp.h"

namespace hd::gpurt {

using gpusim::KernelSim;
using minic::Interp;
using minic::MemObject;
using minic::MemSpace;
using minic::Ptr;
using minic::Scalar;
using minic::Value;
using translator::KernelPlan;
using translator::VarClass;
using translator::VarPlan;

namespace {

// Frees device allocations when the task ends (including via exception).
class DeviceAllocGuard {
 public:
  explicit DeviceAllocGuard(gpusim::GpuDevice* device) : device_(device) {}
  ~DeviceAllocGuard() {
    for (auto id : ids_) device_->Free(id);
  }
  DeviceAllocGuard(const DeviceAllocGuard&) = delete;
  DeviceAllocGuard& operator=(const DeviceAllocGuard&) = delete;

  void Add(std::int64_t id) { ids_.push_back(id); }
  std::int64_t Malloc(std::int64_t bytes, const std::string& tag) {
    const std::int64_t id = device_->Malloc(bytes, tag);
    ids_.push_back(id);
    return id;
  }

 private:
  gpusim::GpuDevice* device_;
  std::vector<std::int64_t> ids_;
};

// Host-side values captured at region entry (the kernel parameters of
// Listings 3/4: sharedRO contents, firstprivate initial values).
struct HostSnapshot {
  std::map<std::string, std::vector<std::int64_t>> ints;
  std::map<std::string, std::vector<double>> floats;
  std::int64_t total_bytes = 0;
};

HostSnapshot CaptureSnapshot(const translator::TranslatedProgram& prog,
                             const KernelPlan& plan) {
  minic::TextIoEnv io("");
  minic::CountingHooks hooks;
  Interp interp(*prog.unit, &io, &hooks);
  HD_CHECK_MSG(interp.RunMainUntilRegion(*plan.region),
               "host prologue never reached the mapreduce region");
  HostSnapshot snap;
  for (const VarPlan& v : plan.vars) {
    if (v.cls == VarClass::kPrivate) continue;
    MemObject* obj = interp.Lookup(v.name);
    HD_CHECK_MSG(obj != nullptr, "variable '" << v.name
                                              << "' not live at region entry");
    HD_CHECK_MSG(!obj->is_ptr_cell(),
                 "cannot transfer pointer variable '"
                     << v.name << "' to the device; pass data, not pointers");
    if (obj->IsFloatElem()) {
      auto& dst = snap.floats[v.name];
      dst.resize(static_cast<std::size_t>(obj->size()));
      for (std::int64_t i = 0; i < obj->size(); ++i) dst[i] = obj->LoadFloat(i);
    } else {
      auto& dst = snap.ints[v.name];
      dst.resize(static_cast<std::size_t>(obj->size()));
      for (std::int64_t i = 0; i < obj->size(); ++i) dst[i] = obj->LoadInt(i);
    }
    snap.total_bytes += obj->size() * obj->elem_bytes();
  }
  return snap;
}

void InitFromSnapshot(MemObject* obj, const HostSnapshot& snap,
                      const std::string& name) {
  if (auto it = snap.ints.find(name); it != snap.ints.end()) {
    HD_CHECK(obj->size() >= static_cast<std::int64_t>(it->second.size()));
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      obj->StoreInt(static_cast<std::int64_t>(i), it->second[i]);
    }
    return;
  }
  if (auto it = snap.floats.find(name); it != snap.floats.end()) {
    HD_CHECK(obj->size() >= static_cast<std::int64_t>(it->second.size()));
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      obj->StoreFloat(static_cast<std::int64_t>(i), it->second[i]);
    }
    return;
  }
  HD_CHECK_MSG(false, "no snapshot value for '" << name << "'");
}

std::int64_t VarBytes(const minic::Type& t) {
  const std::int64_t n = t.is_array ? t.array_size : 1;
  return n * minic::ScalarSize(t.scalar);
}

// Shared (per-task) device objects for sharedRO arrays and texture arrays.
struct SharedDeviceVars {
  std::map<std::string, MemObject*> objects;
};

// Builds the shared device-resident objects and charges their copy-in.
SharedDeviceVars BuildSharedVars(minic::Memory* device_memory,
                                 const KernelPlan& plan,
                                 const HostSnapshot& snap, bool use_texture,
                                 DeviceAllocGuard* guard, double* copy_sec,
                                 const gpusim::GpuDevice& device) {
  SharedDeviceVars out;
  for (const VarPlan& v : plan.vars) {
    if (v.cls != VarClass::kSharedROArray && v.cls != VarClass::kTexture) {
      continue;
    }
    const MemSpace space = (v.cls == VarClass::kTexture && use_texture)
                               ? MemSpace::kDeviceTexture
                               : MemSpace::kDeviceGlobal;
    MemObject* obj = device_memory->Alloc("dev_" + v.name, v.type.scalar,
                                          v.type.is_array ? v.type.array_size
                                                          : 1,
                                          space);
    InitFromSnapshot(obj, snap, v.name);
    guard->Malloc(VarBytes(v.type), v.name);
    *copy_sec += device.TransferSeconds(VarBytes(v.type));
    out.objects[v.name] = obj;
  }
  return out;
}

// Binds all plan variables into `interp`'s current scope for one simulated
// GPU thread (Algorithm 1's handleVariables).
void BindPlanVars(Interp& interp, const KernelPlan& plan,
                  const HostSnapshot& snap, const SharedDeviceVars& shared,
                  KernelSim& kernel, int block, int lane,
                  MemSpace private_array_space) {
  for (const VarPlan& v : plan.vars) {
    switch (v.cls) {
      case VarClass::kSharedROScalar: {
        MemObject* obj = interp.memory().Alloc("const_" + v.name,
                                               v.type.scalar, 1,
                                               MemSpace::kDeviceConstant);
        InitFromSnapshot(obj, snap, v.name);
        interp.Bind(v.name, obj, v.type);
        break;
      }
      case VarClass::kSharedROArray:
      case VarClass::kTexture: {
        auto it = shared.objects.find(v.name);
        HD_CHECK(it != shared.objects.end());
        interp.Bind(v.name, it->second, v.type);
        break;
      }
      case VarClass::kFirstPrivate:
      case VarClass::kPrivate: {
        MemObject* obj;
        if (v.type.is_pointer) {
          obj = interp.memory().AllocPtrCell(v.name, 1, MemSpace::kDeviceLocal);
        } else if (v.type.is_array) {
          obj = interp.memory().Alloc(v.name, v.type.scalar,
                                      v.type.array_size, private_array_space);
        } else {
          obj = interp.memory().Alloc(v.name, v.type.scalar, 1,
                                      MemSpace::kDeviceLocal);
        }
        if (v.cls == VarClass::kFirstPrivate) {
          HD_CHECK_MSG(!v.type.is_pointer,
                       "firstprivate pointer '" << v.name << "' unsupported");
          InitFromSnapshot(obj, snap, v.name);
          // insertInKernelCopyCode: each thread copies the FP master copy
          // from global memory into its private storage (one sequential
          // run).
          kernel.ChargeGlobalBytes(block, lane, VarBytes(v.type),
                                   /*vectorized=*/true,
                                   /*granule_bytes=*/VarBytes(v.type));
        }
        interp.Bind(v.name, obj, v.type);
        break;
      }
    }
  }
}

// Emulates the record distribution the map kernel produces.
//
// Records are statically split across threadblocks (contiguous ranges);
// within a block, record stealing hands the next record to whichever thread
// frees up first — which converges to a least-loaded greedy assignment by
// record size. The functional simulator executes threads sequentially, so
// we reproduce that schedule analytically instead of with live atomics (the
// atomic costs are still charged per fetch in the kernel).
//
// Modes:
//   * block stealing (paper default): greedy within each block,
//   * global stealing (ablation):     greedy across all threads,
//   * static:                         contiguous chunk per thread (Fig. 7d
//                                     baseline).
std::vector<std::vector<std::int64_t>> AssignRecords(
    const std::vector<Record>& records, int blocks, int threads,
    bool stealing, bool global_stealing,
    std::int64_t max_records_per_thread) {
  const int total_threads = blocks * threads;
  std::vector<std::vector<std::int64_t>> assignment(
      static_cast<std::size_t>(total_threads));
  const auto n = static_cast<std::int64_t>(records.size());
  const std::int64_t per_block = (n + blocks - 1) / blocks;

  if (!stealing && !global_stealing) {
    for (int b = 0; b < blocks; ++b) {
      const std::int64_t lo = std::min<std::int64_t>(b * per_block, n);
      const std::int64_t hi = std::min<std::int64_t>(lo + per_block, n);
      const std::int64_t per_thread = (hi - lo + threads - 1) / threads;
      for (int t = 0; t < threads && per_thread > 0; ++t) {
        const std::int64_t s = std::min(lo + t * per_thread, hi);
        const std::int64_t e = std::min(s + per_thread, hi);
        for (std::int64_t r = s; r < e; ++r) {
          assignment[static_cast<std::size_t>(b) * threads + t].push_back(r);
        }
      }
    }
    return assignment;
  }

  // Greedy least-loaded (by record bytes): min-heap of (load, thread).
  using Slot = std::pair<std::int64_t, int>;  // (accumulated bytes, tid)
  auto assign_range = [&](std::int64_t lo, std::int64_t hi, int tid_base,
                          int tid_count) {
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
    for (int t = 0; t < tid_count; ++t) heap.emplace(0, tid_base + t);
    for (std::int64_t r = lo; r < hi; ++r) {
      Slot s = heap.top();
      heap.pop();
      auto& list = assignment[static_cast<std::size_t>(s.second)];
      if (static_cast<std::int64_t>(list.size()) >= max_records_per_thread) {
        // This thread's KV portion is exhausted (§4.1's stealing limit);
        // it leaves the pool.
        --r;
        HD_CHECK_MSG(!heap.empty(), "all threads hit the stealing limit with "
                                    "records left over");
        continue;
      }
      list.push_back(r);
      heap.emplace(s.first + records[static_cast<std::size_t>(r)].length,
                   s.second);
    }
  };

  if (global_stealing) {
    assign_range(0, n, 0, total_threads);
  } else {
    for (int b = 0; b < blocks; ++b) {
      const std::int64_t lo = std::min<std::int64_t>(b * per_block, n);
      const std::int64_t hi = std::min<std::int64_t>(lo + per_block, n);
      assign_range(lo, hi, b * threads, threads);
    }
  }
  return assignment;
}

// Parses one streaming printf payload into a KV pair; enforces the
// one-pair-per-printf convention of the mapper/combiner regions.
KvPair EmittedPair(const std::string& text, int line) {
  HD_CHECK_MSG(!text.empty() && text.back() == '\n',
               "KV emit at line " << line << " must end with \\n");
  const std::string body = text.substr(0, text.size() - 1);
  HD_CHECK_MSG(body.find('\n') == std::string::npos,
               "KV emit at line " << line << " contains multiple records");
  return ParseKvLine(body);
}

// One launched kernel's roofline report, kept for trace emission only
// (collected when opts_.sink is set; modeled numbers never depend on it).
struct KernelTraceRec {
  const char* phase;  // matching PhaseBreakdown field / phase-span name
  gpusim::KernelReport report;
  int blocks = 0;
  int threads = 0;
  bool per_sm = false;  // user kernels get per-SM busy lanes
};

}  // namespace

GpuMapTask::GpuMapTask(const JobProgram& job, gpusim::GpuDevice* device,
                       GpuTaskOptions options)
    : job_(job), device_(device), opts_(std::move(options)) {
  HD_CHECK(device_ != nullptr);
  HD_CHECK_MSG(job_.map.map_plan.has_value(), "job has no mapper plan");
}

MapTaskResult GpuMapTask::Run(const std::string& file_split) {
  const KernelPlan& map_plan = *job_.map.map_plan;
  const auto& dcfg = device_->config();

  // Default launch: four co-resident blocks per SM of 256 threads — enough
  // warps to hide memory latency at full occupancy.
  int blocks = opts_.blocks > 0 ? opts_.blocks
               : map_plan.blocks_hint > 0 ? map_plan.blocks_hint
                                          : 4 * dcfg.num_sms;
  int threads = opts_.threads > 0 ? opts_.threads
                : map_plan.threads_hint > 0 ? map_plan.threads_hint
                                            : 256;
  HD_CHECK(threads % dcfg.warp_size == 0);
  const int total_threads = blocks * threads;

  MapTaskResult result;
  DeviceAllocGuard guard(device_);
  std::vector<KernelTraceRec> kernel_traces;

  // --- Fig. 1 step 1: copy the fileSplit from HDFS into device memory. ---
  const auto input_bytes = static_cast<std::int64_t>(file_split.size());
  guard.Malloc(input_bytes, "ip");
  result.phases.input_read =
      opts_.io.ReadSeconds(static_cast<double>(input_bytes)) +
      device_->TransferSeconds(input_bytes);

  // Device-resident input buffer. Records are NUL-terminated in place (the
  // record locator rewrites '\n' so that in-kernel C string functions stop
  // at record boundaries).
  minic::Memory device_memory;
  MemObject* ip = device_memory.Alloc("ip", Scalar::kChar, input_bytes,
                                      MemSpace::kDeviceGlobal);
  for (std::int64_t i = 0; i < input_bytes; ++i) {
    const char c = file_split[static_cast<std::size_t>(i)];
    ip->StoreInt(i, c == '\n' ? '\0' : c);
  }

  // --- Fig. 1 step 2: record-locating kernel. ----------------------------
  const std::vector<Record> records = LocateRecords(file_split);
  result.stats.records = static_cast<std::int64_t>(records.size());
  // Runtime-library kernels (record locator, aggregation, sort) launch
  // with their own tuned geometry, independent of the user kernel's
  // blocks/threads clauses.
  const int rt_blocks = 2 * dcfg.num_sms;
  const int rt_threads = 256;
  {
    KernelSim locate(dcfg, rt_blocks, rt_threads, "record_count");
    ChargeLocateKernel(locate, input_bytes);
    gpusim::KernelReport report = locate.Finish();
    result.phases.record_count = report.elapsed_sec;
    if (opts_.sink != nullptr) {
      kernel_traces.push_back(
          {"record_count", std::move(report), rt_blocks, rt_threads, false});
    }
  }
  guard.Malloc(static_cast<std::int64_t>(records.size()) * 16,
               "recordLocator");

  // --- Fig. 1 step 3: allocate the global KV store. ----------------------
  const std::int64_t pair_bytes =
      map_plan.kv.key_slot_bytes + map_plan.kv.val_slot_bytes + 4;
  std::int64_t budget = opts_.kv_store_bytes;
  if (budget == 0) {
    // "The translator allocates all free GPU memory" (§3.2); the driver
    // holds back a tenth for combine output and bookkeeping buffers.
    budget = device_->free_bytes() * 9 / 10;
  }
  std::int64_t slots = budget / pair_bytes;
  if (map_plan.kvpairs_hint > 0) {
    // kvpairs clause: at most `hint` pairs per record, so the store can
    // shrink to (records + one slack slot per thread) * hint.
    slots = std::min<std::int64_t>(
        slots, (result.stats.records + total_threads) * map_plan.kvpairs_hint);
  }
  slots = std::max<std::int64_t>(slots, total_threads);
  GlobalKvStore kvstore(total_threads, slots, map_plan.kv.key_slot_bytes,
                        map_plan.kv.val_slot_bytes);
  guard.Malloc(slots * pair_bytes, "globalKVStore");
  guard.Malloc(static_cast<std::int64_t>(total_threads) * 4, "devKvCount");
  result.stats.allocated_slots = slots;

  // --- Fig. 1 step 4: the map kernel. -------------------------------------
  const HostSnapshot map_snap = CaptureSnapshot(job_.map, map_plan);
  double shared_copy_sec = 0.0;
  const SharedDeviceVars map_shared =
      BuildSharedVars(&device_memory, map_plan, map_snap, opts_.use_texture,
                      &guard, &shared_copy_sec, *device_);
  result.phases.input_read += shared_copy_sec;

  // Record-stealing limit: a thread may steal only while its KV portion
  // has room (§4.1). Known only when the kvpairs clause bounds emissions.
  const std::int64_t max_records_per_thread =
      map_plan.kvpairs_hint > 0
          ? std::max<std::int64_t>(1, kvstore.slots_per_thread() /
                                          map_plan.kvpairs_hint)
          : std::numeric_limits<std::int64_t>::max();

  KernelSim map_kernel(dcfg, blocks, threads, "map");
  map_kernel.set_vectorization_enabled(opts_.vectorize_map);
  const std::vector<std::vector<std::int64_t>> assignment = AssignRecords(
      records, blocks, threads, opts_.record_stealing, opts_.global_stealing,
      max_records_per_thread);

  for (int b = 0; b < blocks; ++b) {
    for (int t = 0; t < threads; ++t) {
      minic::TextIoEnv dead_io("");
      Interp::Options iopts;
      iopts.default_space = MemSpace::kDeviceLocal;
      Interp interp(*job_.map.unit, &dead_io, &map_kernel.Hooks(b, t), iopts);
      interp.PushScope();
      BindPlanVars(interp, map_plan, map_snap, map_shared, map_kernel, b, t,
                   MemSpace::kDeviceLocal);

      const int tid = b * threads + t;
      const std::vector<std::int64_t>& my_records =
          assignment[static_cast<std::size_t>(tid)];
      std::size_t cursor = 0;

      // getRecord (§5.2): replaces getline in the kernel (Listing 3).
      interp.OverrideBuiltin(
          "getline",
          [&, b, t, tid, cursor](
              Interp& in, const std::vector<Value>& args) mutable -> Value {
            if (args.size() < 2) throw minic::InterpError("getline: bad args");
            // Each fetch bumps the stealing counter: a shared-memory atomic
            // per block (Listing 3's recordIndex) — or a global atomic in
            // the ablated global-queue scheme.
            if (opts_.global_stealing) {
              map_kernel.ChargeGlobalAtomic(b, t);
            } else if (opts_.record_stealing) {
              map_kernel.ChargeSharedAtomic(b, t);
            }
            if (cursor >= my_records.size() || kvstore.Full(tid)) {
              return Value::Int(-1);
            }
            const std::int64_t idx = my_records[cursor++];
            // Read the recordLocator entry (offset+length).
            map_kernel.ChargeGlobalAccess(b, t, &records, idx * 16, 16,
                                          /*vectorizable=*/true);
            const Record& r = records[static_cast<std::size_t>(idx)];
            Ptr cell = in.RequirePtr(args[0], "getline line pointer");
            HD_CHECK_MSG(cell.obj->is_ptr_cell(),
                         "getline: first arg must be char**");
            cell.obj->StorePtr(cell.index, Ptr{ip, r.offset});
            if (args.size() >= 3 && args[1].kind == Value::Kind::kPtr &&
                !args[1].p.IsNull()) {
              in.StoreThroughPtr(args[1].p, Value::Int(r.length + 1));
            }
            return Value::Int(r.length);
          });

      // emitKV: replaces printf in the kernel (Listing 3).
      interp.OverrideBuiltin(
          "printf",
          [&, b, t, tid](Interp& in, const std::vector<Value>& args) -> Value {
            const std::string fmt = in.ReadString(args.at(0));
            const std::string text = in.Format(fmt, args, 1);
            // Each thread's portion fills sequentially: successive emits
            // land in adjacent slots of the global KV store. emitKV copies
            // the actual key/value bytes (plus terminators) into the fixed
            // slots; the padding is never touched.
            const std::int64_t slot_bytes =
                map_plan.kv.key_slot_bytes + map_plan.kv.val_slot_bytes;
            const std::int64_t pair_index =
                tid * kvstore.slots_per_thread() + kvstore.CountFor(tid);
            const std::int64_t slot_off = pair_index * slot_bytes;
            KvPair pair = EmittedPair(text, map_plan.region->line);
            const std::int64_t data_bytes =
                static_cast<std::int64_t>(pair.key.size() +
                                          pair.value.size()) + 2;
            kvstore.Emit(tid, std::move(pair));
            map_kernel.ChargeGlobalAccess(b, t, &kvstore, slot_off,
                                          std::min(data_bytes, slot_bytes),
                                          /*vectorizable=*/true);
            // indexArray entry (devKvCount stays in a register until
            // mapFinish, Listing 3).
            map_kernel.ChargeGlobalAccess(b, t, &map_plan, pair_index * 4, 4,
                                          /*vectorizable=*/true);
            return Value::Int(static_cast<std::int64_t>(text.size()));
          });

      interp.ExecRegion(*map_plan.region);
      interp.PopScope();
    }
  }
  {
    auto report = map_kernel.Finish();
    result.phases.map = report.elapsed_sec;
    result.stats.texture_hits = report.texture_hits;
    result.stats.texture_misses = report.texture_misses;
    result.stats.shared_atomics = report.shared_atomics;
    result.stats.global_atomics = report.global_atomics;
    result.stats.map_compute_cycles = report.compute_cycles;
    result.stats.map_mem_cycles = report.mem_cycles;
    result.stats.map_mem_requests = report.mem_requests;
    result.stats.map_bytes_requested = report.bytes_requested;
    result.stats.shared_bank_conflicts = report.shared_bank_conflicts;
    result.stats.atomic_conflicts = report.atomic_conflicts;
    result.stats.map_divergence = report.WarpDivergenceRatio();
    result.stats.map_coalescing = report.CoalescingEfficiency();
    if (opts_.sink != nullptr) {
      kernel_traces.push_back({"map", std::move(report), blocks, threads, true});
    }
  }
  result.stats.map_kv_pairs = kvstore.total_emitted();
  result.stats.whitespace_slots = kvstore.WhitespaceSlots();

  const bool map_only = opts_.num_reducers <= 0;
  const int num_partitions = map_only ? 1 : opts_.num_reducers;

  // --- Fig. 1 step 5: aggregation (whitespace compaction). ----------------
  if (!map_only && opts_.aggregate_before_sort) {
    KernelSim agg_kernel(dcfg, rt_blocks, rt_threads, "aggregate");
    kvstore.ChargeAggregation(agg_kernel);
    gpusim::KernelReport report = agg_kernel.Finish();
    result.phases.aggregate = report.elapsed_sec;
    if (opts_.sink != nullptr) {
      kernel_traces.push_back(
          {"aggregate", std::move(report), rt_blocks, rt_threads, false});
    }
  }

  std::vector<std::vector<KvPair>> partitions(
      static_cast<std::size_t>(num_partitions));
  const std::int64_t bounding_box = kvstore.UsedBoundingBoxSlots();
  {
    std::vector<KvPair> all = kvstore.TakeAll();
    for (auto& kv : all) {
      const int p = map_only ? 0 : PartitionOf(kv.key, num_partitions);
      partitions[static_cast<std::size_t>(p)].push_back(std::move(kv));
    }
  }

  if (!map_only) {

    // --- Fig. 1 step 6: intermediate sort per partition. ------------------
    KernelSim sort_kernel(dcfg, rt_blocks, rt_threads, "sort");
    // Without compaction the pairs sit scattered over the used bounding
    // box: the merge needs log2(spread) extra levels and random key loads.
    int extra_passes = 0;
    if (!opts_.aggregate_before_sort && result.stats.map_kv_pairs > 0) {
      const double spread = static_cast<double>(bounding_box) /
                            static_cast<double>(result.stats.map_kv_pairs);
      while ((1LL << extra_passes) < static_cast<std::int64_t>(spread)) {
        ++extra_passes;
      }
    }
    std::int64_t sort_elements_total = 0;
    for (auto& part : partitions) {
      SortPairsByKey(&part);
      const std::int64_t n = static_cast<std::int64_t>(part.size());
      sort_elements_total += n;
      ChargeSortKernel(sort_kernel, n, map_plan.kv.key_slot_bytes,
                       /*vectorized=*/true,
                       /*compacted=*/opts_.aggregate_before_sort,
                       extra_passes);
    }
    result.stats.sort_elements = sort_elements_total;
    gpusim::KernelReport report = sort_kernel.Finish();
    result.phases.sort = report.elapsed_sec;
    if (opts_.sink != nullptr) {
      kernel_traces.push_back(
          {"sort", std::move(report), rt_blocks, rt_threads, false});
    }
  }

  // --- Fig. 1 step 7: combine kernel. -------------------------------------
  if (!map_only && job_.has_combiner()) {
    const KernelPlan& cplan = *job_.combine->combine_plan;
    const HostSnapshot comb_snap = CaptureSnapshot(*job_.combine, cplan);
    double comb_copy_sec = 0.0;
    const SharedDeviceVars comb_shared =
        BuildSharedVars(&device_memory, cplan, comb_snap, opts_.use_texture,
                        &guard, &comb_copy_sec, *device_);

    KernelSim comb_kernel(dcfg, blocks, threads, "combine");
    comb_kernel.set_vectorization_enabled(opts_.vectorize_combine);
    const int warps_per_block = threads / dcfg.warp_size;
    const int total_warps = blocks * warps_per_block;

    std::int64_t combine_out_pairs = 0;
    int warp_cursor = 0;
    for (auto& part : partitions) {
      if (part.empty()) continue;
      const std::int64_t n = static_cast<std::int64_t>(part.size());
      // Each warp takes kvsPerThread pairs (Listing 4): bound chunks so a
      // warp never serialises more than ~1k pairs, while jobs
      // with few reducers still spread across all warps.
      const std::int64_t chunks_per_partition = std::max<std::int64_t>(
          std::max(1, total_warps / num_partitions), (n + 1023) / 1024);
      const std::int64_t chunk_size =
          (n + chunks_per_partition - 1) / chunks_per_partition;
      std::vector<KvPair> combined;
      for (std::int64_t start = 0; start < n; start += chunk_size) {
        const std::int64_t end = std::min(start + chunk_size, n);
        const int warp = warp_cursor++ % total_warps;
        const int cb = warp / warps_per_block;
        const int cl = (warp % warps_per_block) * dcfg.warp_size;

        // getKV: the warp streams its chunk of the sorted partition.
        std::string chunk_text;
        for (std::int64_t i = start; i < end; ++i) {
          chunk_text += part[static_cast<std::size_t>(i)].key;
          chunk_text += ' ';
          chunk_text += part[static_cast<std::size_t>(i)].value;
          chunk_text += '\n';
        }
        comb_kernel.ChargeGlobalBytes(
            cb, cl,
            static_cast<std::int64_t>(chunk_text.size()) + 4 * (end - start),
            /*vectorized=*/true,
            /*granule_bytes=*/static_cast<std::int64_t>(chunk_text.size()));

        minic::TextIoEnv chunk_io(std::move(chunk_text));
        Interp::Options iopts;
        iopts.default_space = MemSpace::kDeviceLocal;
        Interp interp(*job_.combine->unit, &chunk_io,
                      &comb_kernel.Hooks(cb, cl), iopts);
        interp.PushScope();
        // Private arrays of the combiner live in shared memory (Listing 4).
        BindPlanVars(interp, cplan, comb_snap, comb_shared, comb_kernel, cb,
                     cl, MemSpace::kDeviceShared);
        interp.OverrideBuiltin(
            "printf", [&, cb, cl](Interp& in,
                                  const std::vector<Value>& args) -> Value {
              const std::string fmt = in.ReadString(args.at(0));
              const std::string text = in.Format(fmt, args, 1);
              combined.push_back(EmittedPair(text, cplan.region->line));
              comb_kernel.ChargeGlobalBytes(
                  cb, cl, static_cast<std::int64_t>(text.size()) + 2,
                  /*vectorized=*/true,
                  /*granule_bytes=*/static_cast<std::int64_t>(text.size()) + 2);
              return Value::Int(static_cast<std::int64_t>(text.size()));
            });
        interp.ExecRegion(*cplan.region);
        interp.PopScope();
      }
      combine_out_pairs += static_cast<std::int64_t>(combined.size());
      part = std::move(combined);
    }
    gpusim::KernelReport report = comb_kernel.Finish();
    result.phases.combine = report.elapsed_sec;
    result.stats.out_kv_pairs = combine_out_pairs;
    if (opts_.sink != nullptr) {
      kernel_traces.push_back(
          {"combine", std::move(report), blocks, threads, true});
    }
  } else {
    result.stats.out_kv_pairs = result.stats.map_kv_pairs;
  }

  // --- Fig. 1 step 8: write the output. ------------------------------------
  std::int64_t out_bytes = 0;
  for (const auto& part : partitions) {
    for (const auto& kv : part) {
      out_bytes += static_cast<std::int64_t>(kv.key.size() +
                                             kv.value.size() + 2);
    }
  }
  result.stats.output_bytes = out_bytes;
  result.phases.output_write =
      device_->TransferSeconds(out_bytes) +
      (map_only ? opts_.io.HdfsWriteSeconds(static_cast<double>(out_bytes))
                : opts_.io.LocalWriteSeconds(static_cast<double>(out_bytes)));

  result.partitions = std::move(partitions);

  if (opts_.sink != nullptr) {
    trace::Sink& sink = *opts_.sink;
    const trace::Track kernel_lane{opts_.track.pid, opts_.track.tid + 1};
    sink.NameThread(kernel_lane, "kernels");
    const double clock_hz = dcfg.core_clock_ghz * 1e9;
    double at = opts_.trace_origin_sec;
    auto find_kernel = [&](std::string_view phase) -> const KernelTraceRec* {
      for (const auto& k : kernel_traces) {
        if (phase == k.phase) return &k;
      }
      return nullptr;
    };
    // Phases are laid out back-to-back in canonical PhaseBreakdown order,
    // so summing the phase-span durations reproduces Total() exactly.
    auto emit_phase = [&](const char* name, double dur, trace::Args args) {
      if (dur != 0.0) {
        sink.Span("phase", name, opts_.track, at, dur, std::move(args));
        if (const KernelTraceRec* k = find_kernel(name)) {
          const gpusim::KernelReport& r = k->report;
          sink.Span(
              "kernel", name, kernel_lane, at, r.elapsed_sec,
              {trace::Arg::Int("blocks", k->blocks),
               trace::Arg::Int("threads", k->threads),
               trace::Arg::Float("device_cycles", r.device_cycles),
               trace::Arg::Float("dram_roof_cycles", r.dram_roof_cycles),
               trace::Arg::Float("compute_cycles", r.compute_cycles),
               trace::Arg::Float("mem_cycles", r.mem_cycles),
               trace::Arg::Int("transactions", r.transactions),
               trace::Arg::Int("bytes_moved", r.bytes_moved),
               trace::Arg::Int("mem_requests", r.mem_requests),
               trace::Arg::Int("bytes_requested", r.bytes_requested),
               trace::Arg::Int("shared_accesses", r.shared_accesses),
               trace::Arg::Int("shared_bank_conflicts",
                               r.shared_bank_conflicts),
               trace::Arg::Int("atomic_conflicts", r.atomic_conflicts),
               trace::Arg::Float("divergence", r.WarpDivergenceRatio()),
               trace::Arg::Float("coalescing", r.CoalescingEfficiency()),
               trace::Arg::Float("transactions_per_request",
                                 r.TransactionsPerRequest()),
               trace::Arg::Float("texture_hit_rate", r.TextureHitRate())});
          if (k->per_sm) {
            for (std::size_t sm = 0; sm < r.sm_busy_cycles.size(); ++sm) {
              const double busy = r.sm_busy_cycles[sm] / clock_hz;
              if (busy == 0.0) continue;
              const trace::Track sm_lane{
                  opts_.track.pid,
                  opts_.track.tid + 2 + static_cast<std::int32_t>(sm)};
              sink.NameThread(sm_lane, "sm" + std::to_string(sm));
              sink.Span("sm", name, sm_lane,
                        at + dcfg.launch_overhead_sec, busy,
                        {trace::Arg::Float("busy_cycles",
                                           r.sm_busy_cycles[sm])});
            }
          }
        }
      }
      at += dur;
    };
    emit_phase("input_read", result.phases.input_read,
               {trace::Arg::Int("bytes", input_bytes)});
    emit_phase("record_count", result.phases.record_count,
               {trace::Arg::Int("records", result.stats.records)});
    emit_phase("map", result.phases.map,
               {trace::Arg::Int("records", result.stats.records),
                trace::Arg::Int("map_kv_pairs", result.stats.map_kv_pairs),
                trace::Arg::Int("allocated_slots",
                                result.stats.allocated_slots),
                trace::Arg::Int("whitespace_slots",
                                result.stats.whitespace_slots),
                trace::Arg::Int("texture_hits", result.stats.texture_hits),
                trace::Arg::Int("texture_misses",
                                result.stats.texture_misses),
                trace::Arg::Int("shared_atomics",
                                result.stats.shared_atomics),
                trace::Arg::Int("global_atomics",
                                result.stats.global_atomics)});
    emit_phase("aggregate", result.phases.aggregate, {});
    emit_phase("sort", result.phases.sort,
               {trace::Arg::Int("sort_elements", result.stats.sort_elements)});
    emit_phase("combine", result.phases.combine,
               {trace::Arg::Int("out_kv_pairs", result.stats.out_kv_pairs)});
    emit_phase("output_write", result.phases.output_write,
               {trace::Arg::Int("output_bytes", result.stats.output_bytes)});
  }
  if (opts_.metrics != nullptr) {
    AddTaskMetrics(*opts_.metrics, result, "gpurt.gpu");
  }
  return result;
}

}  // namespace hd::gpurt
