// Live telemetry: a DES-driven periodic sampler over modeled time.
//
// The engines treat a TimeSeries like a Sink or Registry — a null pointer
// means "off", and a configured sampler never touches modeled state: the
// sample event only *reads* engine counters and registry values, so every
// exact-double bench pin holds bit-identically with telemetry on or off
// (tests/bench_pin_test.cc proves it). Inserting the sampler's events
// shifts other events' schedule-time seq numbers uniformly without
// reordering any pair of them, which is all the (time, seq) queue
// discipline needs for the rest of the run to replay identically.
//
// Engines register *probes* before Run() and then call Sample() from a
// periodic DES event at exact modeled times k * sample_interval_sec
// (computed by multiplication, not accumulation, so tick times carry no
// floating-point drift). Each sample snapshots:
//
//   * every registered probe — kGauge (instantaneous value), kCumulative
//     (monotone counter: raw value plus a derived `<name>.rate` series of
//     delta/interval), kRate (delta/interval * scale only, e.g. slot
//     utilization from busy-seconds),
//   * every Registry counter (raw + `.rate`) and gauge, when a registry
//     is passed,
//   * the just-completed bucket of every WindowedDistribution — per-
//     interval p50/p99 instead of run-total percentiles,
//
// into per-series ring buffers of (t, value) points, then evaluates the
// SloMonitor rules. Export is the `heterodoop.timeseries.v1` JSONL
// schema: a header line, one line per series (name-sorted), one line per
// alert transition (time-sorted) — deterministic byte-for-byte for a
// seeded run.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/metrics.h"
#include "trace/slo.h"
#include "trace/trace.h"

namespace hd::trace {

inline constexpr const char* kTimeSeriesSchema = "heterodoop.timeseries.v1";

struct TimeSeriesOptions {
  double sample_interval_sec = 5.0;
  // Ring capacity per series; the oldest points fall off first. 4096
  // points at 5 s covers a 5.6-hour modeled horizon.
  std::size_t max_points_per_series = 4096;
};

class TimeSeries {
 public:
  // (modeled seconds, value)
  using Point = std::pair<double, double>;

  struct Series {
    std::string kind;  // "gauge" | "counter" | "rate" | "window"
    std::deque<Point> points;
  };

  explicit TimeSeries(TimeSeriesOptions opts = {});

  double sample_interval_sec() const { return opts_.sample_interval_sec; }
  std::int64_t samples_taken() const { return samples_taken_; }

  // --- Probe registration (engines, before Run) --------------------------
  using ProbeFn = std::function<double()>;
  // Instantaneous value sampled as-is.
  void AddGaugeProbe(std::string name, ProbeFn fn);
  // Monotone counter: records the raw value under `name` and
  // delta/interval under `<name>.rate`.
  void AddCumulativeProbe(std::string name, ProbeFn fn);
  // Rate-only: records delta/interval * scale under `name` (the raw
  // accumulator — e.g. busy slot-seconds — is not itself a series).
  void AddRateProbe(std::string name, ProbeFn fn, double scale = 1.0);

  // Lookup-or-create a tumbling-bucket distribution whose bucket width is
  // the sample interval; each Sample() summarizes the just-completed
  // bucket into `<name>.count/.p50/.p99/.max` series points.
  WindowedDistribution& windowed(std::string_view name);

  SloMonitor& slo() { return slo_; }
  const SloMonitor& slo_monitor() const { return slo_; }

  // --- Sampling (the engines' periodic DES event) ------------------------
  // Takes one snapshot at modeled time `now`: probes, the registry's
  // counters/gauges (when non-null), windowed-bucket summaries, then SLO
  // evaluation. Alert transitions become trace instants on `sink`.
  void Sample(double now, const Registry* registry, Sink* sink);

  // --- Read side ---------------------------------------------------------
  const std::map<std::string, Series, std::less<>>& series() const {
    return series_;
  }
  const Series* Find(std::string_view name) const;
  // Latest recorded value; 0 when the series is unknown or empty.
  double LastValue(std::string_view name) const;
  // Value change over the trailing `window_sec` ending at the latest
  // point (clamped to the earliest retained point). 0 for unknown series.
  double DeltaOver(std::string_view name, double window_sec) const;

  // The heterodoop.timeseries.v1 JSONL export described above.
  void WriteJsonl(std::ostream& os) const;

 private:
  struct Probe {
    enum class Kind { kGauge, kCumulative, kRate };
    std::string name;
    Kind kind;
    ProbeFn fn;
    double scale = 1.0;
    double prev_raw = 0.0;  // kRate: raw accumulator at the last sample
  };

  void Append(std::string_view name, const char* kind, double t, double v);
  void RegisterProbeName(const std::string& name);

  TimeSeriesOptions opts_;
  std::vector<Probe> probes_;
  // Probe names shadow same-named registry metrics during Sample(): an
  // engine's live probe (e.g. multijob.jobs_completed) wins over the
  // registry counter of the same name, which may only be filled at the
  // end of the run — and double-appending would zero the derived .rate.
  std::set<std::string, std::less<>> probe_names_;
  std::map<std::string, Series, std::less<>> series_;
  std::map<std::string, WindowedDistribution, std::less<>> windowed_;
  SloMonitor slo_;
  std::int64_t samples_taken_ = 0;
};

}  // namespace hd::trace
