// Reproduces Table 3: the two cluster configurations the evaluation uses,
// as this repository models them.
#include "bench/reporter.h"
#include "common/strings.h"
#include "gpurt/io_config.h"
#include "gpusim/config.h"

int main(int argc, char** argv) {
  using namespace hd;
  const auto k40 = gpusim::DeviceConfig::TeslaK40();
  const auto m2090 = gpusim::DeviceConfig::TeslaM2090();
  const auto xeon1 = gpusim::CpuConfig::XeonE5_2680();
  const auto xeon2 = gpusim::CpuConfig::XeonX5560();
  const gpurt::IoConfig io1;
  const gpurt::IoConfig io2 = gpurt::IoConfig::InMemory();

  bench::Reporter rep("table3_clusters", argc, argv);
  rep.out() << "Table 3: Cluster Setups Used\n\n";
  auto& t = rep.AddTable("table3", {"Property", "Cluster1", "Cluster2"});
  t.Row().Cell("#nodes").Cell("48 (+1 master)").Cell("32 (+1 master)");
  t.Row().Cell("CPU").Cell(xeon1.name).Cell(xeon2.name);
  t.Row().Cell("#CPU cores (map slots)").Cell(20).Cell(4);
  t.Row().Cell("GPU(s)").Cell(k40.name).Cell("3x " + m2090.name);
  t.Row().Cell("GPU SMs").Cell(k40.num_sms).Cell(m2090.num_sms);
  t.Row()
      .Cell("GPU memory")
      .Cell(HumanBytes(static_cast<std::uint64_t>(k40.global_mem_bytes)))
      .Cell(HumanBytes(static_cast<std::uint64_t>(m2090.global_mem_bytes)));
  t.Row()
      .Cell("Storage")
      .Cell("disk (" + FormatDouble(io1.hdfs_read_bytes_per_sec / 1e6, 0) +
            " MB/s read)")
      .Cell("in-memory (" +
            FormatDouble(io2.hdfs_read_bytes_per_sec / 1e9, 1) + " GB/s)");
  t.Row().Cell("HDFS block size").Cell("256 MiB").Cell("256 MiB");
  t.Row().Cell("HDFS replication").Cell(3).Cell(1);
  t.Row().Cell("Reduce slots / node").Cell(2).Cell(2);
  t.Row().Cell("Speculative execution").Cell("Off").Cell("Off");
  t.Row().Cell("% maps before reduce").Cell(20).Cell(20);
  rep.Print(t);
  return rep.Finish();
}
