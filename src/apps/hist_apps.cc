// Histmovies (HS) and Histratings (HR): the histogram benchmarks (§7.1).
// Both read the movie-ratings dataset; HS bins per-movie average ratings,
// HR bins every individual rating (feeding the combiner far more data,
// which is what makes HR compute-intensive).
#include <map>

#include "apps/apps_internal.h"
#include "apps/gen.h"
#include "apps/golden_util.h"
#include "apps/sources.h"

namespace hd::apps {
namespace {

std::string HistMoviesMapSource() {
  return std::string(kNextTokSource) + R"(
int main() {
  char tok[32], *line;
  size_t nbytes = 8192;
  int read, offset, one, bin, count;
  double sum, avg;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(bin) value(one) vallength(1) kvpairs(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = nextTok(line, 0, tok, read, 32);  /* movie id */
    sum = 0.0;
    count = 0;
    one = 1;
    while ((offset = nextTok(line, offset, tok, read, 32)) != -1) {
      sum += atof(tok);
      count++;
    }
    if (count > 0) {
      avg = sum / count;
      bin = (int) (avg * 2.0);  /* half-star bins: 2..10 */
      printf("%d\t%d\n", bin, one);
    }
  }
  free(line);
  return 0;
}
)";
}

std::string HistRatingsMapSource() {
  return std::string(kNextTokSource) + R"(
int main() {
  char tok[32], *line;
  size_t nbytes = 8192;
  int read, offset, one, rating;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(rating) value(one) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = nextTok(line, 0, tok, read, 32);  /* movie id */
    one = 1;
    while ((offset = nextTok(line, offset, tok, read, 32)) != -1) {
      rating = atoi(tok);
      printf("%d\t%d\n", rating, one);
    }
  }
  free(line);
  return 0;
}
)";
}

std::vector<gpurt::KvPair> HistMoviesGolden(
    const std::vector<std::string>& splits) {
  std::map<std::string, long long> counts;
  for (const auto& split : splits) {
    for (const auto& rec : Records(split)) {
      auto toks = RecordTokens(rec);
      if (toks.size() < 2) continue;
      double sum = 0.0;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        sum += std::strtod(toks[i].c_str(), nullptr);
      }
      const double avg = sum / static_cast<double>(toks.size() - 1);
      const int bin = static_cast<int>(avg * 2.0);
      counts[std::to_string(bin)]++;
    }
  }
  std::vector<gpurt::KvPair> out;
  for (const auto& [k, v] : counts) out.push_back({k, std::to_string(v)});
  return out;
}

std::vector<gpurt::KvPair> HistRatingsGolden(
    const std::vector<std::string>& splits) {
  std::map<std::string, long long> counts;
  for (const auto& split : splits) {
    for (const auto& rec : Records(split)) {
      auto toks = RecordTokens(rec);
      for (std::size_t i = 1; i < toks.size(); ++i) {
        counts[std::to_string(std::strtoll(toks[i].c_str(), nullptr, 10))]++;
      }
    }
  }
  std::vector<gpurt::KvPair> out;
  for (const auto& [k, v] : counts) out.push_back({k, std::to_string(v)});
  return out;
}

}  // namespace

Benchmark MakeHistMovies() {
  Benchmark b;
  b.id = "HS";
  b.name = "Histmovies";
  b.io_intensive = true;
  b.has_combiner = true;
  b.pct_map_combine_active = 91;
  b.map_source = HistMoviesMapSource();
  b.combine_source = SumFilterSource(/*with_directive=*/true, 16);
  b.reduce_source = SumFilterSource(/*with_directive=*/false, 16);
  b.generate = GenRatings;
  b.golden = HistMoviesGolden;
  b.exact_output = true;
  b.cluster1 = {true, 8, 4800, 1190.0};
  b.cluster2 = {true, 8, 640, 159.0};
  return b;
}

Benchmark MakeHistRatings() {
  Benchmark b;
  b.id = "HR";
  b.name = "Histratings";
  b.io_intensive = false;  // compute-intensive (Table 2)
  b.has_combiner = true;
  b.pct_map_combine_active = 92;
  b.map_source = HistRatingsMapSource();
  b.combine_source = SumFilterSource(/*with_directive=*/true, 16);
  b.reduce_source = SumFilterSource(/*with_directive=*/false, 16);
  b.generate = GenRatings;
  b.golden = HistRatingsGolden;
  b.exact_output = true;
  b.cluster1 = {true, 5, 4800, 591.0};
  b.cluster2 = {true, 5, 2560, 160.0};
  return b;
}

}  // namespace hd::apps
