#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/json.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/table.h"

namespace hd {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(HD_CHECK(1 + 1 == 2)); }

TEST(Check, ThrowsOnFalse) {
  EXPECT_THROW(HD_CHECK(false), CheckError);
}

TEST(Check, MessageCarriesContext) {
  try {
    HD_CHECK_MSG(2 > 3, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
  }
}

TEST(Prng, Deterministic) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(Prng, BoundedStaysInRange) {
  Prng p(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.NextBounded(13), 13u);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Prng p(7);
  for (int i = 0; i < 1000; ++i) {
    double d = p.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Prng, GaussianMomentsRoughlyStandard) {
  Prng p(123);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = p.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Zipf, RankZeroMostFrequent) {
  Prng p(5);
  ZipfSampler z(100, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[z.Sample(p)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(Zipf, AllRanksReachable) {
  Prng p(6);
  ZipfSampler z(4, 0.5);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 5000; ++i) counts[z.Sample(p)]++;
  EXPECT_EQ(counts.size(), 4u);
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto v = Split("a,,b,", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "");
  EXPECT_EQ(v[2], "b");
  EXPECT_EQ(v[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  auto v = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "foo");
  EXPECT_EQ(v[2], "baz");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  x y \t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Strings, JoinAndAffixes) {
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_TRUE(StartsWith("wordcount", "word"));
  EXPECT_FALSE(StartsWith("wc", "word"));
  EXPECT_TRUE(EndsWith("map.c", ".c"));
  EXPECT_FALSE(EndsWith("map.c", ".cu"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.5, 2), "1.50");
  EXPECT_EQ(FormatDouble(-0.125, 3), "-0.125");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(256ull << 20), "256.0 MiB");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.Row().Cell("wc").Cell(2.78, 2);
  t.Row().Cell("blackscholes").Cell(std::uint64_t{47});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("wc"), std::string::npos);
  EXPECT_NE(s.find("2.78"), std::string::npos);
  EXPECT_NE(s.find("blackscholes"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.Cell("x"), CheckError);
}

TEST(Stats, MeanHandlesEmptyAndValues) {
  EXPECT_EQ(stats::Mean({}), 0.0);
  EXPECT_EQ(stats::Mean({2.0, 4.0, 6.0}), 4.0);
}

TEST(Stats, GeoMean) {
  EXPECT_DOUBLE_EQ(stats::GeoMean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(stats::GeoMean({2.0, 8.0}), 4.0);
  EXPECT_THROW(stats::GeoMean({}), CheckError);
  EXPECT_THROW(stats::GeoMean({1.0, -1.0}), CheckError);
}

TEST(Stats, NearestRankPercentile) {
  EXPECT_EQ(stats::NearestRankPercentile({}, 0.5), 0.0);
  // Nearest-rank: the smallest sample with >= q of the mass at or below.
  std::vector<double> xs = {30.0, 10.0, 20.0, 40.0};
  EXPECT_EQ(stats::NearestRankPercentile(xs, 0.0), 10.0);
  EXPECT_EQ(stats::NearestRankPercentile(xs, 0.5), 20.0);
  EXPECT_EQ(stats::NearestRankPercentile(xs, 0.75), 30.0);
  EXPECT_EQ(stats::NearestRankPercentile(xs, 1.0), 40.0);
  EXPECT_THROW(stats::NearestRankPercentile(xs, 1.5), CheckError);
}

TEST(Stats, Utilization) {
  EXPECT_EQ(stats::Utilization(50.0, 10.0, 10.0), 0.5);
  EXPECT_EQ(stats::Utilization(5.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(stats::Utilization(5.0, 10.0, 0.0), 0.0);
}

TEST(Json, WriterProducesDeterministicDocument) {
  std::ostringstream os;
  json::Writer w(os);
  w.BeginObject();
  w.Key("s").String("a\"b\n");
  w.Key("i").Int(-7);
  w.Key("n").Number(0.1);
  w.Key("b").Bool(true);
  w.Key("a").BeginArray();
  w.Number(1.0);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\n\",\"i\":-7,\"n\":0.1,\"b\":true,"
            "\"a\":[1,null]}");
}

TEST(Json, NumberFormattingRoundTrips) {
  for (double v : {0.0, -0.125, 1e-9, 99.487739298268963, 1e300}) {
    const json::Value parsed = json::Parse(json::FormatNumber(v));
    EXPECT_EQ(parsed.number, v);
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(json::Parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json::Parse("[1,2"), std::runtime_error);
  EXPECT_THROW(json::Parse("{} trailing"), std::runtime_error);
}

TEST(Json, ParsePreservesObjectOrderAndFind) {
  const json::Value v = json::Parse("{\"z\":1,\"a\":[true,\"x\"]}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  const json::Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_TRUE(a->array[0].boolean);
  EXPECT_EQ(a->array[1].string, "x");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

}  // namespace
}  // namespace hd
