#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include <memory>
#include <vector>

#include "common/check.h"
#include "hadoop/task_source.h"
#include "multijob/engine.h"
#include "multijob/scheduler.h"
#include "stream/engine.h"
#include "stream/pipeline.h"
#include "stream/source.h"
#include "trace/timeseries.h"

namespace hd::stream {
namespace {

using hadoop::CalibratedTaskSource;
using hadoop::ClusterConfig;
using multijob::MakeFairScheduler;
using multijob::MakeSloScheduler;
using multijob::WorkloadMetrics;

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  return c;
}

PipelineSpec ReplayPipeline(std::vector<double> gaps) {
  PipelineSpec spec;
  spec.label = "replay";
  spec.source.shape = RateShape::kReplay;
  spec.source.replay_gaps = std::move(gaps);
  spec.job.records_per_map = 1;
  spec.job.cpu_task_sec = 2.0;
  spec.job.gpu_task_sec = 0.5;
  spec.job.variation = 0.0;
  return spec;
}

TEST(ArrivalSource, PoissonHoldsItsMeanAndReplays) {
  SourceSpec spec;
  spec.mean_rate_per_sec = 2.0;
  spec.seed = 11;
  ArrivalSource a(spec), b(spec);
  double ta = 0.0, tb = 0.0;
  int n = 0;
  for (;;) {
    ta = a.NextArrival(ta);
    tb = b.NextArrival(tb);
    EXPECT_EQ(ta, tb);  // bit-identical twin
    if (ta >= 5000.0) break;
    ++n;
  }
  // Long-run rate within 5% of the configured mean.
  EXPECT_NEAR(n / 5000.0, 2.0, 0.1);
}

TEST(ArrivalSource, ShapedSourcesPreserveTheConfiguredMean) {
  for (RateShape shape : {RateShape::kBursty, RateShape::kDiurnal}) {
    SourceSpec spec;
    spec.shape = shape;
    spec.mean_rate_per_sec = 3.0;
    spec.seed = 7;
    ArrivalSource src(spec);
    double t = 0.0;
    int n = 0;
    while ((t = src.NextArrival(t)) < 6000.0) ++n;
    EXPECT_NEAR(n / 6000.0, 3.0, 0.15) << RateShapeName(shape);
  }
}

TEST(ArrivalSource, ValidationRejectsBadSpecs) {
  SourceSpec bad;
  bad.mean_rate_per_sec = 0.0;
  EXPECT_THROW(ValidateSourceSpec(bad), CheckError);
  SourceSpec burst;
  burst.shape = RateShape::kBursty;
  burst.burst_factor = 5.0;
  burst.burst_duty = 0.5;  // 5 x 0.5 > 1 breaks mean preservation
  EXPECT_THROW(ValidateSourceSpec(burst), CheckError);
  PipelineSpec p;
  p.label = "";
  EXPECT_THROW(ValidatePipelineSpec(p), CheckError);
}

// A replay source with no arrivals: every span elapses empty. Empty
// windows run no job, complete at their seal, and the watermark passes
// straight through them.
TEST(StreamEngine, EmptyWindowsCompleteAtTheirSeal) {
  StreamEngine eng(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  PipelineSpec spec = ReplayPipeline({});
  spec.trigger.count = 10;
  spec.trigger.span_sec = 5.0;
  eng.AddPipeline(spec);
  const StreamMetrics sm = eng.RunStream(26.0);

  ASSERT_EQ(sm.pipelines.size(), 1u);
  const PipelineMetrics& p = sm.pipelines[0];
  // Time seals at 5/10/15/20/25, the horizon seal at 26.
  EXPECT_EQ(p.windows_sealed, 6);
  EXPECT_EQ(p.windows_empty, 6);
  EXPECT_EQ(p.seals_by_time, 5);
  EXPECT_EQ(p.windows_completed, 6);
  EXPECT_EQ(p.records_arrived, 0);
  EXPECT_TRUE(p.latencies_sec.empty());  // no job instances ran
  EXPECT_TRUE(sm.workload.jobs.empty());
  EXPECT_TRUE(p.stable);
}

// The documented trigger-tie convention: a record arriving at the exact
// instant the window's time trigger fires does NOT complete the count —
// the time trigger holds the earlier insertion sequence in the DES, the
// window seals by time, and the tying record opens the next window.
TEST(StreamEngine, CountTimeTieSealsByTime) {
  StreamEngine eng(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  PipelineSpec spec = ReplayPipeline({1.0, 9.0});  // arrivals at t=1, t=10
  spec.trigger.count = 2;
  spec.trigger.span_sec = 10.0;  // trigger at t=10: exact tie
  eng.AddPipeline(spec);
  const StreamMetrics sm = eng.RunStream(15.0);

  const PipelineMetrics& p = sm.pipelines[0];
  EXPECT_EQ(p.records_arrived, 2);
  EXPECT_EQ(p.seals_by_time, 1);   // the tie went to the time trigger
  EXPECT_EQ(p.seals_by_count, 0);  // ...never to the tying record
  EXPECT_EQ(p.windows_sealed, 2);  // [1 record @ time], [1 record @ horizon]
  EXPECT_EQ(p.records_processed, 2);
}

// Control for the tie test: one second more of span and the same arrivals
// seal by count.
TEST(StreamEngine, CountWinsWithoutTheTie) {
  StreamEngine eng(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  PipelineSpec spec = ReplayPipeline({1.0, 9.0});
  spec.trigger.count = 2;
  spec.trigger.span_sec = 11.0;
  eng.AddPipeline(spec);
  const StreamMetrics sm = eng.RunStream(15.0);

  const PipelineMetrics& p = sm.pipelines[0];
  EXPECT_EQ(p.seals_by_count, 1);
  EXPECT_EQ(p.seals_by_time, 0);
}

PipelineSpec OverloadPipeline(Backpressure bp) {
  // 30 records at 1/s into 5-record windows of 30 s CPU maps: windows seal
  // every ~5 s but each takes far longer to drain, so admission backs up.
  PipelineSpec spec = ReplayPipeline(std::vector<double>(30, 1.0));
  spec.trigger.count = 5;
  spec.trigger.span_sec = 100.0;
  spec.job.cpu_task_sec = 30.0;
  spec.job.gpu_task_sec = 10.0;
  spec.max_inflight_windows = 1;
  spec.max_pending_windows = 0;
  spec.backpressure = bp;
  return spec;
}

// Shed-vs-block accounting: shedding drops whole windows with record-exact
// accounting; blocking processes everything and shows the overload as
// queue depth instead.
TEST(StreamEngine, ShedAndBlockAccountForEveryRecord) {
  StreamEngine shed(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  shed.AddPipeline(OverloadPipeline(Backpressure::kShed));
  const StreamMetrics sm = shed.RunStream(40.0);
  const PipelineMetrics& ps = sm.pipelines[0];
  EXPECT_GT(ps.records_shed, 0);
  EXPECT_GT(ps.windows_shed, 0);
  EXPECT_EQ(ps.records_shed + ps.records_processed, ps.records_arrived);
  EXPECT_EQ(ps.windows_shed + ps.windows_completed, ps.windows_sealed);
  EXPECT_FALSE(ps.stable);  // steady-state shedding is instability

  StreamEngine block(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  block.AddPipeline(OverloadPipeline(Backpressure::kBlock));
  const StreamMetrics bm = block.RunStream(40.0);
  const PipelineMetrics& pb = bm.pipelines[0];
  EXPECT_EQ(pb.records_shed, 0);
  EXPECT_EQ(pb.records_processed, pb.records_arrived);
  // The queue rode past the admission bound instead of dropping.
  EXPECT_GT(pb.max_queue_depth, 1);
  EXPECT_FALSE(pb.stable);
  // More records flowed through than the shedding run processed.
  EXPECT_GT(pb.records_processed, ps.records_processed);
}

StreamMetrics SeededServiceRun(trace::TimeSeries* ts = nullptr) {
  ClusterConfig cfg = SmallCluster();
  cfg.timeseries = ts;
  StreamEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
  PipelineSpec clicks;
  clicks.label = "clicks";
  clicks.source.mean_rate_per_sec = 2.0;
  clicks.source.seed = 42;
  clicks.trigger.count = 12;
  clicks.trigger.span_sec = 8.0;
  clicks.slo_sec = 25.0;
  eng.AddPipeline(clicks);
  PipelineSpec logs;
  logs.label = "logs";
  logs.source.shape = RateShape::kBursty;
  logs.source.mean_rate_per_sec = 1.0;
  logs.source.seed = 43;
  logs.trigger.count = 16;
  logs.trigger.span_sec = 12.0;
  logs.backpressure = Backpressure::kShed;
  eng.AddPipeline(logs);
  return eng.RunStream(300.0, 60.0);
}

// Two runs of the same seeded service are bit-identical, window by window.
TEST(StreamEngine, SeededReplayIsBitIdentical) {
  const StreamMetrics a = SeededServiceRun();
  const StreamMetrics b = SeededServiceRun();
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    const PipelineMetrics& pa = a.pipelines[i];
    const PipelineMetrics& pb = b.pipelines[i];
    EXPECT_EQ(pa.records_arrived, pb.records_arrived);
    EXPECT_EQ(pa.windows_sealed, pb.windows_sealed);
    EXPECT_EQ(pa.latencies_sec, pb.latencies_sec);  // exact doubles
    EXPECT_EQ(pa.watermark_lags_sec, pb.watermark_lags_sec);
    EXPECT_EQ(pa.LatencyPercentile(0.99), pb.LatencyPercentile(0.99));
  }
  EXPECT_EQ(a.workload.makespan_sec, b.workload.makespan_sec);
  // And the run did real work in steady state.
  EXPECT_GT(a.pipelines[0].latencies_sec.size(), 5u);
}

// The null-source convention: a StreamEngine with no pipelines is a plain
// MultiJobEngine — batch workloads see bit-identical numbers.
TEST(StreamEngine, NoPipelinesIsExactlyBatch) {
  CalibratedTaskSource::Params tp;
  tp.num_maps = 12;
  tp.num_reducers = 2;
  tp.cpu_task_sec = 10.0;
  tp.gpu_task_sec = 2.0;
  tp.seed = 5;

  auto submit_three = [&](multijob::MultiJobEngine& eng,
                          std::vector<std::unique_ptr<CalibratedTaskSource>>&
                              keep) {
    for (int i = 0; i < 3; ++i) {
      keep.push_back(std::make_unique<CalibratedTaskSource>(tp));
      multijob::JobSpec js;
      js.source = keep.back().get();
      js.policy = sched::Policy::kTail;
      js.label = "batch";
      eng.Submit(10.0 * i, js);
    }
  };

  std::vector<std::unique_ptr<CalibratedTaskSource>> keep_batch;
  multijob::MultiJobEngine batch(SmallCluster(), MakeFairScheduler());
  submit_three(batch, keep_batch);
  const WorkloadMetrics mb = batch.Run();

  std::vector<std::unique_ptr<CalibratedTaskSource>> keep_stream;
  // Same inner scheduler: with no finite deadline anywhere, the SLO
  // composition always delegates.
  StreamEngine stream(SmallCluster(), MakeSloScheduler(MakeFairScheduler()));
  submit_three(stream, keep_stream);
  const StreamMetrics sm = stream.RunStream(1.0);

  EXPECT_TRUE(sm.pipelines.empty());
  EXPECT_EQ(sm.workload.makespan_sec, mb.makespan_sec);
  ASSERT_EQ(sm.workload.jobs.size(), mb.jobs.size());
  for (std::size_t i = 0; i < mb.jobs.size(); ++i) {
    EXPECT_EQ(sm.workload.jobs[i].start_sec, mb.jobs[i].start_sec);
    EXPECT_EQ(sm.workload.jobs[i].finish_sec, mb.jobs[i].finish_sec);
  }
  EXPECT_EQ(sm.workload.cpu_utilization, mb.cpu_utilization);
  EXPECT_EQ(sm.workload.gpu_utilization, mb.gpu_utilization);
}

// The telemetry sampler only reads state, so attaching it must not move a
// single modeled bit — exact-double comparisons across the whole service.
TEST(StreamTelemetry, SamplingDoesNotPerturbModeledNumbers) {
  const StreamMetrics off = SeededServiceRun();
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 5.0;
  trace::TimeSeries ts(opts);
  const StreamMetrics on = SeededServiceRun(&ts);
  EXPECT_GT(ts.samples_taken(), 0);
  ASSERT_EQ(off.pipelines.size(), on.pipelines.size());
  for (std::size_t i = 0; i < off.pipelines.size(); ++i) {
    EXPECT_EQ(off.pipelines[i].records_arrived,
              on.pipelines[i].records_arrived);
    EXPECT_EQ(off.pipelines[i].latencies_sec, on.pipelines[i].latencies_sec);
    EXPECT_EQ(off.pipelines[i].watermark_lags_sec,
              on.pipelines[i].watermark_lags_sec);
  }
  EXPECT_EQ(off.workload.makespan_sec, on.workload.makespan_sec);
}

TEST(StreamTelemetry, PipelinesExportSeriesAndWindowedPercentiles) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 5.0;
  trace::TimeSeries ts(opts);
  SeededServiceRun(&ts);
  for (const char* name :
       {"stream.clicks.queue_depth", "stream.clicks.records_arrived",
        "stream.clicks.records_arrived.rate", "stream.clicks.watermark_lag",
        "stream.logs.records_shed", "multijob.active_jobs",
        "des.events_per_sec", "cluster.gpu_util"}) {
    const trace::TimeSeries::Series* s = ts.Find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->points.empty()) << name;
  }
  // Window latency percentiles summarize per sampling interval; at least
  // one interval of the 300 s service saw completed windows.
  const trace::TimeSeries::Series* counts =
      ts.Find("stream.clicks.latency_sec.count");
  ASSERT_NE(counts, nullptr);
  bool any = false;
  for (const auto& [t, v] : counts->points) any = any || v > 0.0;
  EXPECT_TRUE(any);
  EXPECT_NE(ts.Find("stream.clicks.latency_sec.p99"), nullptr);
}

TEST(StreamTelemetry, OverloadFiresTheShedBudgetBurnAlert) {
  trace::TimeSeriesOptions opts;
  opts.sample_interval_sec = 2.0;
  trace::TimeSeries ts(opts);
  ClusterConfig cfg = SmallCluster();
  cfg.timeseries = &ts;
  StreamEngine eng(cfg, MakeSloScheduler(MakeFairScheduler()));
  eng.AddPipeline(OverloadPipeline(Backpressure::kShed));
  const StreamMetrics sm = eng.RunStream(40.0);
  ASSERT_GT(sm.pipelines[0].records_shed, 0);
  // The default shed-budget rule (1% of arrivals) must fire: the shed
  // fraction here is massive, so both burn windows blow past 2x budget.
  bool fired = false;
  for (const trace::AlertEvent& a : ts.slo_monitor().alerts()) {
    if (a.rule == "stream.replay.shed_budget_burn" && a.firing) fired = true;
  }
  EXPECT_TRUE(fired);

  // Under kBlock nothing sheds, so the same overload surfaces through the
  // queue-depth rule instead: the backlog climbs past the admission bound
  // (max_inflight 1 + max_pending 0).
  trace::TimeSeries bts(opts);
  ClusterConfig bcfg = SmallCluster();
  bcfg.timeseries = &bts;
  StreamEngine block(bcfg, MakeSloScheduler(MakeFairScheduler()));
  block.AddPipeline(OverloadPipeline(Backpressure::kBlock));
  block.RunStream(40.0);
  bool depth_fired = false;
  bool shed_fired = false;
  for (const trace::AlertEvent& a : bts.slo_monitor().alerts()) {
    if (a.rule == "stream.replay.queue_depth_high" && a.firing) {
      depth_fired = true;
    }
    if (a.rule == "stream.replay.shed_budget_burn" && a.firing) {
      shed_fired = true;
    }
  }
  EXPECT_TRUE(depth_fired);
  EXPECT_FALSE(shed_fired);  // blocking never sheds, so no budget burns
}

TEST(StreamTelemetry, SameSeedExportsAreByteIdentical) {
  auto run = [] {
    trace::TimeSeriesOptions opts;
    opts.sample_interval_sec = 5.0;
    trace::TimeSeries ts(opts);
    SeededServiceRun(&ts);
    std::ostringstream os;
    ts.WriteJsonl(os);
    return os.str();
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

// Window jobs carry seal + SLO as their deadline, and the SLO scheduler
// picks the window nearest to violation first.
TEST(SloScheduler, PrefersTheNearestFiniteDeadline) {
  auto slo = MakeSloScheduler(MakeFairScheduler());
  hadoop::JobState batch, late, soon;
  batch.id = 0;  // infinite deadline
  late.id = 1;
  late.deadline_sec = 200.0;
  soon.id = 2;
  soon.deadline_sec = 50.0;
  const std::vector<const hadoop::JobState*> runnable = {&batch, &late, &soon};
  EXPECT_EQ(slo->PickJob(runnable, runnable), 2u);
  // Without any finite deadline the inner scheduler decides (fair: fewest
  // running tasks, ties by submission order -> index 0).
  const std::vector<const hadoop::JobState*> batch_only = {&batch};
  EXPECT_EQ(slo->PickJob(batch_only, batch_only), 0u);
}

}  // namespace
}  // namespace hd::stream
