# Empty dependencies file for minic_sema_test.
# This may be replaced when dependencies are built.
