// Deterministic fault injection for the cluster engine.
//
// A FaultInjector turns a seeded FaultSpec into a reproducible failure
// schedule for a cluster run: TaskTracker crashes (permanent and
// transient), dropped heartbeats, per-attempt task failures on CPU and
// GPU (transient kernel fault vs. device OOM) and slow-node degradation
// factors. Following the trace::Sink convention, a null FaultInjector*
// on ClusterConfig means "fault-free" and costs one branch per site, so
// every existing bench pin stays bit-identical.
//
// Every draw is *stateless*: outcomes are hashed from (seed, site
// identity) with SplitMix64 rather than pulled from a shared PRNG
// stream, so the schedule a spec produces is independent of the order
// the engine happens to query it in. Two runs of the same seeded spec —
// or the same spec under different scheduling policies — see the exact
// same faults, which is what makes fault_sweep's policy columns and the
// output-invariance checks comparable.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace hd::fault {

// One scheduled TaskTracker crash. Transient crashes recover after
// `down_sec`; permanent crashes never do.
struct NodeCrash {
  int node = 0;
  double at_sec = 0.0;
  bool permanent = false;
  double down_sec = 0.0;  // 0 when permanent
};

// Packs a planned crash into the two 64-bit words of a pooled DES event
// payload (src/des): node and the permanent flag in the first word,
// down_sec bit_cast into the second. `at_sec` travels as the event's own
// timestamp, so the pair round-trips a NodeCrash exactly.
inline std::pair<std::uint64_t, std::uint64_t> PackNodeCrash(
    const NodeCrash& c) {
  return {static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.node)) |
              (c.permanent ? std::uint64_t{1} << 32 : 0),
          std::bit_cast<std::uint64_t>(c.down_sec)};
}

inline NodeCrash UnpackNodeCrash(std::uint64_t u0, std::uint64_t u1,
                                 double at_sec) {
  NodeCrash c;
  c.node = static_cast<int>(static_cast<std::uint32_t>(u0));
  c.at_sec = at_sec;
  c.permanent = (u0 >> 32) != 0;
  c.down_sec = std::bit_cast<double>(u1);
  return c;
}

struct FaultSpec {
  std::uint64_t seed = 1;

  // Per-node crash process: exponential inter-arrival with this mean
  // time to failure; 0 disables crashes. Crashes are planned inside
  // [0, horizon_sec); a permanent crash ends the node's schedule.
  double crash_mttf_sec = 0.0;
  double permanent_fraction = 0.5;  // fraction of crashes that are permanent
  double restart_sec = 30.0;        // transient downtime
  double horizon_sec = 100000.0;

  // Probability that one TaskTracker heartbeat never reaches the
  // JobTracker (the JT side sees silence; enough silence expires the node).
  double heartbeat_drop_prob = 0.0;

  // Per-attempt failure probabilities. A transient failure manifests
  // partway through the attempt (the slot is held, then freed and the
  // task retried with backoff); a device OOM fails the GPU launch
  // immediately, like task_source.h's GpuTaskFailure.
  double cpu_fail_prob = 0.0;
  double gpu_fail_prob = 0.0;
  double gpu_oom_prob = 0.0;

  // Slow-node degradation: each node independently runs all its tasks
  // `slow_factor` x slower with probability `slow_node_prob` (composes
  // with ClusterConfig::node_speed_factors). The straggler feed for
  // speculative execution.
  double slow_node_prob = 0.0;
  double slow_factor = 2.0;
};

// HD_CHECKs every FaultSpec invariant (probabilities in [0,1], positive
// times, slow_factor >= 1). Called by the FaultInjector constructor.
void ValidateFaultSpec(const FaultSpec& spec);

// What an injected map attempt does.
enum class AttemptOutcome {
  kOk,         // runs to completion
  kFail,       // transient failure partway through the attempt
  kDeviceOom,  // GPU launch fails immediately (GPU attempts only)
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  // The run's crash schedule for `num_nodes` TaskTrackers, ordered by
  // (at_sec, node). Deterministic in (spec.seed, num_nodes); crashes of
  // one node never overlap.
  std::vector<NodeCrash> CrashPlan(int num_nodes) const;

  // Degradation factor every task duration on `node` is multiplied by
  // (1.0 for healthy nodes).
  double SlowFactor(int node) const;

  // Whether heartbeat number `seq` from `node` is lost in flight.
  bool DropHeartbeat(int node, std::int64_t seq) const;

  // Outcome of attempt `attempt` of (job, task) on the given processor.
  AttemptOutcome DrawAttempt(int job, int task, int attempt,
                             bool on_gpu) const;

  // Where inside the attempt a kFail manifests, as a fraction of the
  // attempt duration in [0.1, 0.9).
  double FailPoint(int job, int task, int attempt) const;

 private:
  FaultSpec spec_;
};

}  // namespace hd::fault
