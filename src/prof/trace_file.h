// Reader for the Chrome trace-event JSON files the ChromeTraceSink writes.
//
// hdprof consumes the same artifacts the benches emit under --trace-out, so
// the reader only understands the subset the exporter produces: a
// {"displayTimeUnit","traceEvents"} envelope holding 'M' metadata events
// (process_name/thread_name/..._sort_index), 'X' complete spans and 'i'
// instants. Timestamps are converted back from microseconds to the modeled
// seconds every analysis works in; metadata events become the name maps and
// are not kept in `events`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"

namespace hd::prof {

struct TraceEvent {
  char phase = 'X';  // 'X' complete span, 'i' instant
  std::string category;
  std::string name;
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  double start_sec = 0.0;
  double dur_sec = 0.0;  // zero for instants

  json::Value args;  // the "args" object (kNull when absent)

  double end_sec() const { return start_sec + dur_sec; }

  // Typed arg lookup; returns the fallback when the key is missing or of
  // the wrong kind.
  double ArgNumber(std::string_view key, double fallback = 0.0) const;
  std::string ArgString(std::string_view key,
                        std::string fallback = {}) const;
};

class TraceFile {
 public:
  // Parses a serialized trace document; throws std::runtime_error on
  // malformed JSON or a missing traceEvents array.
  static TraceFile Parse(std::string_view text);
  // Reads and parses `path`; throws std::runtime_error when unreadable.
  static TraceFile Load(const std::string& path);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::map<std::int32_t, std::string>& process_names() const {
    return process_names_;
  }
  const std::map<std::pair<std::int32_t, std::int32_t>, std::string>&
  thread_names() const {
    return thread_names_;
  }

  // "" when the pid/lane was never named.
  std::string ProcessName(std::int32_t pid) const;
  std::string ThreadName(std::int32_t pid, std::int32_t tid) const;

 private:
  std::vector<TraceEvent> events_;
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> thread_names_;
};

}  // namespace hd::prof
