// Typed metrics registry: named counters, gauges and sample distributions
// with a deterministic flat-JSON export.
//
// The registry complements the event trace (trace.h): spans answer "where
// did the time go in this run", the registry answers "what were the totals"
// — task counts, KV volumes, texture hit rates, latency percentiles —
// in a machine-readable form every bench/test shares. Like the Sink, a
// null Registry* means "off" at every instrumentation site.
//
// Export is a single flat JSON object sorted by metric name: counters as
// integers, gauges as numbers, distributions expanded to
// `<name>.count/min/mean/p50/p95/p99/p999/max/sum` (nearest-rank percentiles
// from common/stats.h, deterministic for a given sample set). Flat keys keep
// downstream validation trivial (`json.load` + key lookup, no schema
// walker).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hd::trace {

class Counter {
 public:
  void Add(std::int64_t n = 1) { value_ += n; }
  void Set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A recorded sample set summarised at export time.
//
// count/Sum/Mean/Min/Max are exact for every sample ever recorded (running
// accumulators). Percentiles come from the retained sample vector, which is
// everything by default; SetReservoirCap bounds it with deterministic
// reservoir sampling (Algorithm R over a seeded SplitMix64 stream), after
// which percentiles are an unbiased estimate past the cap while the running
// statistics stay exact. Under the cap nothing changes — same samples, same
// order, same bits.
class Distribution {
 public:
  void Record(double x);
  std::int64_t count() const { return count_; }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const { return sum_; }
  // Nearest-rank percentile, q in [0, 1].
  double Percentile(double q) const;

  // Bounds the retained sample vector to `cap` entries (> 0). Must be set
  // before the cap is exceeded; the seed makes replacement draws
  // reproducible. Default: unbounded (cap 0).
  void SetReservoirCap(std::int64_t cap, std::uint64_t seed);
  std::int64_t reservoir_cap() const { return cap_; }
  // Retained samples (== count() while unbounded or under the cap).
  std::int64_t retained() const {
    return static_cast<std::int64_t>(samples_.size());
  }

  // Checkpoint support: raw retained samples plus the running accumulators
  // and reservoir state, so a restored registry reproduces the original's
  // export bit-for-bit and keeps recording from the same reservoir stream.
  const std::vector<double>& samples() const { return samples_; }
  std::uint64_t reservoir_rng() const { return rng_; }
  void RestoreState(std::vector<double> samples, std::int64_t count,
                    double sum, double min, double max, std::int64_t cap,
                    std::uint64_t rng) {
    samples_ = std::move(samples);
    count_ = count;
    sum_ = sum;
    min_ = min;
    max_ = max;
    cap_ = cap;
    rng_ = rng;
  }

 private:
  std::vector<double> samples_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int64_t cap_ = 0;  // 0 = unbounded
  std::uint64_t rng_ = 0;
};

// Per-interval percentile summary for one completed tumbling bucket.
struct WindowSummary {
  std::int64_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

// Tumbling-bucket windowed sample set: Record(t, x) files x under bucket
// floor(t / bucket_width); Summarize(k) reduces bucket k to percentiles
// and drops its samples, so a long run holds at most the open buckets.
// Everything is modeled-time driven and deterministic — same records,
// same buckets, same summaries.
class WindowedDistribution {
 public:
  explicit WindowedDistribution(double bucket_width_sec);

  double bucket_width_sec() const { return width_; }
  std::int64_t BucketIndex(double t) const;

  void Record(double t, double x);
  // Summary of bucket k; erases the bucket's samples. A never-filled
  // bucket yields count == 0.
  WindowSummary Summarize(std::int64_t k);

 private:
  double width_;
  std::map<std::int64_t, std::vector<double>> buckets_;
};

class Registry {
 public:
  // Lookup-or-create. References stay valid for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Distribution& distribution(std::string_view name);

  // Lookup-only; nullptr when the metric was never touched.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Distribution* FindDistribution(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && distributions_.empty();
  }

  // Name-sorted iteration for snapshotters (the telemetry sampler reads
  // counters and gauges each tick; distributions are summarized per
  // window by trace::WindowedDistribution instead).
  const std::map<std::string, Counter, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Distribution, std::less<>>& distributions()
      const {
    return distributions_;
  }

  // The flat metrics JSON object described above.
  void WriteJson(std::ostream& os) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Distribution, std::less<>> distributions_;
};

}  // namespace hd::trace
