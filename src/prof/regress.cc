#include "prof/regress.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/json.h"

namespace hd::prof {

namespace {

double RelChange(double before, double after) {
  if (before == after) return 0.0;
  if (before == 0.0) return after > 0.0 ? 1.0 : -1.0;
  return (after - before) / std::fabs(before);
}

bool IsPinned(const std::string& key) {
  return key.rfind(kPinnedPrefix, 0) == 0;
}

}  // namespace

const double* BenchRun::FindMetric(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return &v;
  }
  return nullptr;
}

const BenchRun* Suite::FindRun(const std::string& benchmark) const {
  for (const BenchRun& r : runs) {
    if (r.benchmark == benchmark) return &r;
  }
  return nullptr;
}

Suite ParseSuite(std::string_view text) {
  const json::Value doc = json::Parse(text);
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kSuiteSchema) {
    throw std::runtime_error(std::string("not a ") + kSuiteSchema +
                             " document");
  }
  Suite s;
  if (const json::Value* rev = doc.Find("rev"); rev && rev->is_string()) {
    s.rev = rev->string;
  }
  if (const json::Value* smoke = doc.Find("smoke")) s.smoke = smoke->boolean;
  const json::Value* suite = doc.Find("suite");
  if (suite == nullptr || !suite->is_array()) {
    throw std::runtime_error("suite document has no 'suite' array");
  }
  for (const json::Value& entry : suite->array) {
    if (!entry.is_object()) continue;
    BenchRun r;
    if (const json::Value* b = entry.Find("benchmark"); b && b->is_string()) {
      r.benchmark = b->string;
    }
    if (const json::Value* m = entry.Find("modeled_seconds");
        m && m->is_number()) {
      r.modeled_seconds = m->number;
    }
    if (const json::Value* metrics = entry.Find("metrics");
        metrics && metrics->is_object()) {
      for (const auto& [k, v] : metrics->object) {
        if (v.is_number()) r.metrics.emplace_back(k, v.number);
      }
    }
    s.runs.push_back(std::move(r));
  }
  return s;
}

Suite LoadSuite(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw std::runtime_error("cannot read suite file '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseSuite(ss.str());
}

void WriteSuite(std::ostream& os, const Suite& suite) {
  json::Writer w(os);
  w.BeginObject();
  w.Key("schema").String(kSuiteSchema);
  w.Key("rev").String(suite.rev);
  w.Key("smoke").Bool(suite.smoke);
  w.Key("suite").BeginArray();
  for (const BenchRun& r : suite.runs) {
    w.BeginObject();
    w.Key("benchmark").String(r.benchmark);
    w.Key("modeled_seconds").Number(r.modeled_seconds);
    w.Key("metrics").BeginObject();
    for (const auto& [k, v] : r.metrics) w.Key(k).Number(v);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

BenchRun RunFromBenchReport(std::string_view report_json) {
  const json::Value doc = json::Parse(report_json);
  const json::Value* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "heterodoop.bench.v1") {
    throw std::runtime_error("not a heterodoop.bench.v1 report");
  }
  BenchRun r;
  if (const json::Value* b = doc.Find("benchmark"); b && b->is_string()) {
    r.benchmark = b->string;
  }
  if (const json::Value* m = doc.Find("modeled_seconds");
      m && m->is_number()) {
    r.modeled_seconds = m->number;
  }
  if (const json::Value* metrics = doc.Find("metrics");
      metrics && metrics->is_object()) {
    for (const auto& [k, v] : metrics->object) {
      if (v.is_number()) r.metrics.emplace_back(k, v.number);
    }
  }
  return r;
}

CompareResult Compare(const Suite& before, const Suite& after,
                      const CompareOptions& opts) {
  CompareResult res;
  for (const BenchRun& b : before.runs) {
    const BenchRun* a = after.FindRun(b.benchmark);
    if (a == nullptr) {
      res.removed_benchmarks.push_back(b.benchmark);
      continue;
    }
    const double rel = RelChange(b.modeled_seconds, a->modeled_seconds);
    if (std::fabs(rel) > opts.threshold) {
      Delta d;
      d.benchmark = b.benchmark;
      d.metric = "modeled_seconds";
      d.before = b.modeled_seconds;
      d.after = a->modeled_seconds;
      d.rel_change = rel;
      d.scored = true;
      d.regression = rel > 0.0;
      if (d.regression) {
        ++res.regressions;
      } else {
        ++res.improvements;
      }
      res.deltas.push_back(std::move(d));
      // Attribution: every shared metric that moved beyond the threshold,
      // in the (sorted) metric order of the before run. Pinned metrics
      // are scored separately below, never attributed.
      for (const auto& [key, bv] : b.metrics) {
        if (IsPinned(key)) continue;
        const double* av = a->FindMetric(key);
        if (av == nullptr) continue;
        const double mrel = RelChange(bv, *av);
        if (std::fabs(mrel) <= opts.threshold) continue;
        Delta md;
        md.benchmark = b.benchmark;
        md.metric = key;
        md.before = bv;
        md.after = *av;
        md.rel_change = mrel;
        res.deltas.push_back(std::move(md));
      }
    }
    // Pinned wall-clock metrics: higher is better, scored against the
    // generous pinned threshold. A key that disappeared scores as a full
    // collapse — removing the pin silently is exactly what this guards.
    for (const auto& [key, bv] : b.metrics) {
      if (!IsPinned(key)) continue;
      const double* av = a->FindMetric(key);
      const double after_v = av != nullptr ? *av : 0.0;
      const double rel = RelChange(bv, after_v);
      if (rel >= -opts.pinned_threshold && av != nullptr) continue;
      Delta d;
      d.benchmark = b.benchmark;
      d.metric = key;
      d.before = bv;
      d.after = after_v;
      d.rel_change = rel;
      d.scored = true;
      d.regression = true;
      ++res.regressions;
      res.deltas.push_back(std::move(d));
    }
  }
  for (const BenchRun& a : after.runs) {
    if (before.FindRun(a.benchmark) == nullptr) {
      res.added_benchmarks.push_back(a.benchmark);
    }
  }
  return res;
}

}  // namespace hd::prof
