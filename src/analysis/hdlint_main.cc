// hdlint: command-line front end for the HeteroDoop static analyzer.
//
//   hdlint [--json|--sarif] [--audit] [--werror] file.c ...
//
// Runs every analysis pass over each input and prints diagnostics as text
// (or one JSON/SARIF document per file). Exit status: 0 when no file
// produced an error, 1 when any did (or any warning under --werror), 2 on
// usage/IO problems.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: hdlint [--json|--sarif] [--audit] [--werror] "
               "file.c ...\n"
               "  --json    print diagnostics as one JSON document per file\n"
               "  --sarif   print diagnostics as one SARIF 2.1.0 document "
               "per file\n"
               "  --audit   add placement-audit notes explaining Algorithm 1\n"
               "  --werror  treat warnings as errors for the exit status\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, sarif = false, audit = false, werror = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hdlint: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (json && sarif)) {
    PrintUsage();
    return 2;
  }

  bool failed = false;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "hdlint: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    hd::analysis::AnalyzerOptions opts;
    opts.source_name = path;
    opts.audit_notes = audit;
    const hd::analysis::AnalysisResult result =
        hd::analysis::AnalyzeSource(buf.str(), opts);

    std::string rendered;
    if (json) {
      rendered = result.diags.RenderJson() + "\n";
    } else if (sarif) {
      rendered = result.diags.RenderSarif("hdlint") + "\n";
    } else {
      rendered = result.diags.RenderText();
    }
    std::fputs(rendered.c_str(), stdout);
    if (result.diags.HasErrors() ||
        (werror && result.diags.WarningCount() > 0)) {
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
