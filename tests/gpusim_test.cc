#include <gtest/gtest.h>

#include "gpusim/cpu_model.h"
#include "gpusim/device.h"
#include "gpusim/kernel.h"
#include "gpusim/texture_cache.h"

namespace hd::gpusim {
namespace {

using minic::MemObject;
using minic::MemSpace;
using minic::OpClass;
using minic::Scalar;

DeviceConfig SmallDevice() {
  DeviceConfig c = DeviceConfig::TeslaK40();
  c.num_sms = 2;
  c.launch_overhead_sec = 0.0;
  return c;
}

TEST(Device, AllocAndFreeTracksUsage) {
  GpuDevice dev(SmallDevice());
  const std::int64_t total = dev.config().global_mem_bytes;
  EXPECT_EQ(dev.free_bytes(), total);
  auto a = dev.Malloc(1 << 20, "input");
  auto b = dev.Malloc(2 << 20, "kvstore");
  EXPECT_EQ(dev.used_bytes(), 3 << 20);
  dev.Free(a);
  EXPECT_EQ(dev.used_bytes(), 2 << 20);
  dev.Free(b);
  EXPECT_EQ(dev.free_bytes(), total);
}

TEST(Device, OomThrows) {
  DeviceConfig c = SmallDevice();
  c.global_mem_bytes = 1024;
  GpuDevice dev(c);
  dev.Malloc(1000, "a");
  EXPECT_THROW(dev.Malloc(100, "b"), DeviceOomError);
}

TEST(Device, DoubleFreeThrows) {
  GpuDevice dev(SmallDevice());
  auto a = dev.Malloc(16, "x");
  dev.Free(a);
  EXPECT_THROW(dev.Free(a), CheckError);
}

TEST(Device, FreeAllResets) {
  GpuDevice dev(SmallDevice());
  dev.Malloc(16, "x");
  dev.Malloc(32, "y");
  dev.FreeAll();
  EXPECT_EQ(dev.used_bytes(), 0);
}

TEST(Device, TransferTimeScalesWithBytes) {
  GpuDevice dev(SmallDevice());
  EXPECT_DOUBLE_EQ(dev.TransferSeconds(0), 0.0);
  EXPECT_GT(dev.TransferSeconds(1 << 20), 0.0);
  EXPECT_NEAR(dev.TransferSeconds(2 << 20) / dev.TransferSeconds(1 << 20), 2.0,
              1e-9);
}

TEST(TextureCache, HitsAfterFirstTouch) {
  TextureCacheSim cache(4, 128);
  int x;
  EXPECT_EQ(cache.Access(&x, 0, 64), 1);   // miss
  EXPECT_EQ(cache.Access(&x, 0, 64), 0);   // hit
  EXPECT_EQ(cache.Access(&x, 64, 64), 0);  // same line, hit
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(TextureCache, SpanningAccessTouchesMultipleLines) {
  TextureCacheSim cache(8, 128);
  int x;
  EXPECT_EQ(cache.Access(&x, 100, 100), 2);  // crosses a line boundary
}

TEST(TextureCache, LruEvicts) {
  TextureCacheSim cache(2, 128);
  int x;
  cache.Access(&x, 0, 1);    // line 0
  cache.Access(&x, 128, 1);  // line 1
  cache.Access(&x, 256, 1);  // line 2 evicts line 0
  EXPECT_EQ(cache.Access(&x, 0, 1), 1);  // line 0 misses again
}

TEST(TextureCache, DistinctObjectsDoNotAlias) {
  TextureCacheSim cache(8, 128);
  int x, y;
  cache.Access(&x, 0, 1);
  EXPECT_EQ(cache.Access(&y, 0, 1), 1);  // different object: miss
}

TEST(Kernel, ComputeCostUsesOpTable) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "t");
  k.ChargeOp(0, 0, OpClass::kIntAlu, 10);
  k.ChargeOp(0, 0, OpClass::kSpecial, 2);
  auto r = k.Finish();
  EXPECT_DOUBLE_EQ(r.compute_cycles,
                   10 * c.cycles_int_alu + 2 * c.cycles_special);
}

TEST(Kernel, WarpTimeIsMaxOverLanes) {
  DeviceConfig c = SmallDevice();
  KernelSim balanced(c, 1, 32, "balanced");
  for (int t = 0; t < 32; ++t) balanced.ChargeOp(0, t, OpClass::kIntAlu, 100);
  KernelSim skewed(c, 1, 32, "skewed");
  skewed.ChargeOp(0, 0, OpClass::kIntAlu, 3200);  // all work on one lane
  // Same total work; the skewed warp is 32x slower per the SIMD model.
  EXPECT_DOUBLE_EQ(balanced.Finish().compute_cycles, 100.0);
  EXPECT_DOUBLE_EQ(skewed.Finish().compute_cycles, 3200.0);
}

TEST(Kernel, LatencyHidingDividesMemoryTime) {
  DeviceConfig c = SmallDevice();
  c.max_resident_warps = 4;
  // One warp: no hiding beyond itself.
  KernelSim one(c, 1, 32, "one");
  one.ChargeGlobalBytes(0, 0, 400, /*vectorized=*/true);
  // Four warps with the same per-warp traffic: 4x the memory cycles but 4x
  // the hiding, so the block time stays flat.
  KernelSim four(c, 1, 128, "four");
  for (int w = 0; w < 4; ++w) {
    four.ChargeGlobalBytes(0, w * 32, 400, /*vectorized=*/true);
  }
  EXPECT_NEAR(one.Finish().elapsed_sec, four.Finish().elapsed_sec, 1e-12);
}

TEST(Kernel, VectorizedAccessCheaperThanScalar) {
  DeviceConfig c = SmallDevice();
  KernelSim vec(c, 1, 32, "vec");
  vec.ChargeGlobalBytes(0, 0, 1024, /*vectorized=*/true);
  KernelSim scl(c, 1, 32, "scl");
  scl.ChargeGlobalBytes(0, 0, 1024, /*vectorized=*/false);
  auto rv = vec.Finish(), rs = scl.Finish();
  // Same lines move from DRAM either way; the win is issuing one vector
  // instruction per 4 bytes instead of one scalar access per byte.
  EXPECT_EQ(rv.transactions, rs.transactions);
  EXPECT_LT(rv.mem_cycles, rs.mem_cycles);
  EXPECT_LT(rv.elapsed_sec, rs.elapsed_sec);
}

TEST(Kernel, SequentialAccessHitsLineCache) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "seq");
  int buf;
  // 128 sequential single-byte accesses: one DRAM miss, 127 L1 hits.
  for (int i = 0; i < 128; ++i) {
    k.ChargeGlobalAccess(0, 0, &buf, i, 1, /*vectorizable=*/false);
  }
  auto r = k.Finish();
  EXPECT_EQ(r.transactions, 1);
  EXPECT_NEAR(r.mem_cycles,
              128 * c.l1_latency + (c.global_latency - c.l1_latency), 1e-9);
}

TEST(Kernel, StridedAccessMissesEveryLine) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "stride");
  int buf;
  for (int i = 0; i < 16; ++i) {
    k.ChargeGlobalAccess(0, 0, &buf, i * 1024, 1, /*vectorizable=*/false);
  }
  EXPECT_EQ(k.Finish().transactions, 16);
}

TEST(Kernel, InterleavedStreamsDoNotThrash) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "interleave");
  int a, b;
  // Alternating sequential writes to two buffers (KV slots + index array).
  for (int i = 0; i < 32; ++i) {
    k.ChargeGlobalAccess(0, 0, &a, i * 4, 4, true);
    k.ChargeGlobalAccess(0, 0, &b, i * 4, 4, true);
  }
  // One miss per buffer line, not one per access.
  EXPECT_EQ(k.Finish().transactions, 2);
}

TEST(Kernel, DistributeUnitsCoversExactly) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 2, 32, "dist");
  std::int64_t total = 0;
  int lanes_used = 0;
  k.DistributeUnits(10, [&](int, int, std::int64_t units) {
    total += units;
    ++lanes_used;
  });
  EXPECT_EQ(total, 10);
  EXPECT_EQ(lanes_used, 10);  // 64 lanes available, only 10 have work
}

TEST(Kernel, BandwidthRoofApplies) {
  DeviceConfig c = SmallDevice();
  c.dram_bytes_per_cycle = 1.0;  // throttle DRAM
  KernelSim k(c, 1, 32, "bw");
  k.ChargeGlobalBytes(0, 0, 1 << 20, /*vectorized=*/true);
  auto r = k.Finish();
  // 1 MiB at 1 B/cycle = ~1M cycles, far above the latency term / hiding.
  EXPECT_GE(r.elapsed_sec, (1 << 20) / (c.core_clock_ghz * 1e9) * 0.99);
}

TEST(Kernel, BlocksSpreadOverSms) {
  DeviceConfig c = SmallDevice();  // 2 SMs
  // Two equal blocks land on different SMs: time of one block.
  KernelSim two(c, 2, 32, "two");
  two.ChargeOp(0, 0, OpClass::kIntAlu, 1000);
  two.ChargeOp(1, 0, OpClass::kIntAlu, 1000);
  // Three blocks: one SM runs two of them.
  KernelSim three(c, 3, 32, "three");
  for (int b = 0; b < 3; ++b) three.ChargeOp(b, 0, OpClass::kIntAlu, 1000);
  EXPECT_NEAR(three.Finish().elapsed_sec / two.Finish().elapsed_sec, 2.0,
              1e-9);
}

TEST(Kernel, SharedAtomicCheaperThanGlobal) {
  DeviceConfig c = SmallDevice();
  KernelSim sh(c, 1, 32, "sh");
  for (int i = 0; i < 100; ++i) sh.ChargeSharedAtomic(0, 0);
  KernelSim gl(c, 1, 32, "gl");
  for (int i = 0; i < 100; ++i) gl.ChargeGlobalAtomic(0, 0);
  EXPECT_LT(sh.Finish().elapsed_sec, gl.Finish().elapsed_sec);
  EXPECT_EQ(sh.Finish().shared_atomics, 100);
  EXPECT_EQ(gl.Finish().global_atomics, 100);
}

TEST(Kernel, WarpDivergenceRatioCountsLockstepPadding) {
  DeviceConfig c = SmallDevice();
  KernelSim balanced(c, 1, 32, "balanced");
  for (int t = 0; t < 32; ++t) balanced.ChargeOp(0, t, OpClass::kIntAlu, 100);
  const KernelReport rb = balanced.Finish();
  EXPECT_DOUBLE_EQ(rb.WarpDivergenceRatio(), 0.0);

  KernelSim skewed(c, 1, 32, "skewed");
  skewed.ChargeOp(0, 0, OpClass::kIntAlu, 3200);
  const KernelReport rs = skewed.Finish();
  // One busy lane in a 32-wide warp wastes 31/32 of the issue slots.
  EXPECT_DOUBLE_EQ(rs.WarpDivergenceRatio(), 1.0 - 1.0 / 32.0);
  // The counters never feed the timing model: same totals as before.
  EXPECT_DOUBLE_EQ(rs.compute_cycles, 3200.0 * c.cycles_int_alu);
}

TEST(Kernel, SharedBankConflictsCountWarpSerialization) {
  DeviceConfig c = SmallDevice();
  KernelSim solo(c, 1, 32, "solo");
  for (int i = 0; i < 100; ++i) solo.ChargeSharedAtomic(0, 0);
  // A single lane never waits on a warp-mate.
  EXPECT_EQ(solo.Finish().shared_bank_conflicts, 0);

  KernelSim contended(c, 1, 32, "contended");
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 25; ++i) contended.ChargeSharedAtomic(0, t);
  }
  // 100 atomics with the busiest lane holding 25: 75 serialized.
  const KernelReport r = contended.Finish();
  EXPECT_EQ(r.shared_atomics, 100);
  EXPECT_EQ(r.shared_bank_conflicts, 75);
}

TEST(Kernel, AtomicConflictsCountDeviceWideContention) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 2, 32, "atomics");  // contention spans blocks and warps
  for (int i = 0; i < 30; ++i) k.ChargeGlobalAtomic(0, 0);
  for (int i = 0; i < 20; ++i) k.ChargeGlobalAtomic(1, 5);
  const KernelReport r = k.Finish();
  EXPECT_EQ(r.global_atomics, 50);
  EXPECT_EQ(r.atomic_conflicts, 20);  // total 50 minus the busiest lane's 30
}

TEST(Kernel, CoalescingEfficiencyTracksLineUtilization) {
  DeviceConfig c = SmallDevice();
  const std::int64_t line = c.mem_line_bytes;
  int dummy = 0;
  KernelSim seq(c, 1, 32, "seq");
  seq.ChargeGlobalAccess(0, 0, &dummy, 0, line, /*vectorizable=*/true);
  const KernelReport rs = seq.Finish();
  EXPECT_EQ(rs.bytes_requested, line);
  EXPECT_EQ(rs.bytes_moved, line);  // one fully-used transaction
  EXPECT_DOUBLE_EQ(rs.CoalescingEfficiency(), 1.0);
  EXPECT_GT(rs.mem_requests, 0);

  KernelSim strided(c, 1, 32, "strided");
  for (int i = 0; i < 8; ++i) {
    // 4 useful bytes per otherwise-untouched line, strides far apart so
    // the per-lane line cache cannot help.
    strided.ChargeGlobalAccess(0, 0, &dummy, i * 16 * line, 4,
                               /*vectorizable=*/true);
  }
  const KernelReport rt = strided.Finish();
  EXPECT_EQ(rt.bytes_requested, 32);
  EXPECT_EQ(rt.bytes_moved, 8 * line);
  EXPECT_LT(rt.CoalescingEfficiency(), rs.CoalescingEfficiency());
  EXPECT_DOUBLE_EQ(rt.TransactionsPerRequest(),
                   static_cast<double>(rt.transactions) /
                       static_cast<double>(rt.mem_requests));
}

TEST(Kernel, HooksRouteBySpace) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "route");
  MemObject global("g", Scalar::kChar, 1024, MemSpace::kDeviceGlobal);
  MemObject local("l", Scalar::kChar, 64, MemSpace::kDeviceLocal);
  MemObject tex("t", Scalar::kFloat, 256, MemSpace::kDeviceTexture);
  auto& hooks = k.Hooks(0, 0);
  hooks.OnMemAccess(global, 0, 100, false, true);
  hooks.OnMemAccess(local, 0, 10, true, false);
  hooks.OnMemAccess(tex, 0, 4, false, false);
  auto r = k.Finish();
  EXPECT_GT(r.transactions, 0);
  EXPECT_EQ(r.texture_misses, 1);  // 16 bytes in one line
}

TEST(Kernel, TextureRereadHitsCache) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "tex");
  MemObject tex("centroids", Scalar::kDouble, 64, MemSpace::kDeviceTexture);
  auto& hooks = k.Hooks(0, 0);
  for (int rep = 0; rep < 10; ++rep) {
    hooks.OnMemAccess(tex, 0, 64, false, false);
  }
  auto r = k.Finish();
  EXPECT_EQ(r.texture_misses, 4);  // 512 bytes = 4 lines, first pass only
  EXPECT_EQ(r.texture_hits, 36);
}

TEST(Kernel, TextureWriteForbidden) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "texw");
  MemObject tex("t", Scalar::kInt, 8, MemSpace::kDeviceTexture);
  EXPECT_THROW(k.Hooks(0, 0).OnMemAccess(tex, 0, 1, true, false), CheckError);
}

TEST(Kernel, HostObjectAccessIsABug) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 1, 32, "host");
  MemObject host("h", Scalar::kInt, 8, MemSpace::kHost);
  EXPECT_THROW(k.Hooks(0, 0).OnMemAccess(host, 0, 1, false, false),
               CheckError);
}

TEST(Kernel, LaneIndexValidated) {
  DeviceConfig c = SmallDevice();
  KernelSim k(c, 2, 32, "bounds");
  EXPECT_THROW(k.ChargeOp(2, 0, OpClass::kIntAlu, 1), CheckError);
  EXPECT_THROW(k.ChargeOp(0, 32, OpClass::kIntAlu, 1), CheckError);
}

TEST(CpuModel, AccumulatesSeconds) {
  CpuConfig c = CpuConfig::XeonE5_2680();
  CpuTimingHooks hooks(c);
  hooks.OnOp(OpClass::kIntAlu, 1000);
  MemObject obj("a", Scalar::kInt, 64, MemSpace::kHost);
  hooks.OnMemAccess(obj, 0, 64, false, false);
  EXPECT_GT(hooks.seconds(), 0.0);
  const double before = hooks.seconds();
  hooks.OnOp(OpClass::kSpecial, 10);
  EXPECT_GT(hooks.seconds(), before);
  hooks.Reset();
  EXPECT_DOUBLE_EQ(hooks.seconds(), 0.0);
}

TEST(CpuModel, SpecialOpsCostMoreThanAlu) {
  CpuConfig c = CpuConfig::XeonE5_2680();
  CpuTimingHooks a(c), b(c);
  a.OnOp(OpClass::kIntAlu, 100);
  b.OnOp(OpClass::kSpecial, 100);
  EXPECT_LT(a.seconds(), b.seconds());
}

}  // namespace
}  // namespace hd::gpusim
