// Token definitions for the mini-C frontend.
#pragma once

#include <cstdint>
#include <string>

namespace hd::minic {

enum class Tok {
  kEof,
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  kCharLit,
  kPragma,  // full "#pragma ..." line (with continuations folded in)
  // Keywords.
  kKwInt,
  kKwChar,
  kKwFloat,
  kKwDouble,
  kKwVoid,
  kKwLong,
  kKwUnsigned,
  kKwConst,
  kKwSizeT,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwDo,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwSizeof,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPercentAssign,
  kPlusPlus,
  kMinusMinus,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kShl,
  kShr,
  kQuestion,
  kColon,
  kArrow,
  kDot,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;     // identifier spelling, literal text, or pragma body
  std::int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int col = 0;
};

// Returns a human-readable name for diagnostics.
const char* TokName(Tok t);

}  // namespace hd::minic
