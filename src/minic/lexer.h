// Hand-written lexer for the mini-C dialect accepted by HeteroDoop.
//
// Notable departures from a stock C lexer:
//   * `#pragma ...` lines are lexed into a single kPragma token (line
//     continuations with a trailing backslash are folded), because the
//     HeteroDoop directives attach to the statement that follows them.
//   * `#include <...>` lines are skipped — benchmark sources carry the usual
//     stdio/string/math includes for portability to a real compiler, but the
//     builtins are provided by the runtime here.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "minic/token.h"

namespace hd::minic {

// Thrown on malformed input; carries line/column context in what().
class LexError : public std::runtime_error {
 public:
  explicit LexError(const std::string& what) : std::runtime_error(what) {}
};

// Tokenises the whole translation unit. The final token is kEof.
std::vector<Token> Lex(std::string_view source);

}  // namespace hd::minic
