// Continuous-streaming service mode: standing pipelines over the
// multi-job cluster engine.
//
// A StreamEngine is a MultiJobEngine that stays up for a whole service
// horizon. Each registered pipeline is a standing `#pragma mapreduce`
// job: a seeded open-loop source (src/stream/source.h) emits records onto
// the DES clock; records buffer in the pipeline's open window until a
// watermark-style trigger seals it (count or modeled-time span, whichever
// fires first); each sealed non-empty window is admitted as one job
// instance over the existing map/shuffle/reduce machinery — so per-window
// output inherits the attempt-commit registry's exactly-once guarantee,
// fault injection, speculative execution and Algorithm 2 tail forcing
// unchanged.
//
// Admission control: at most max_inflight_windows of a pipeline execute
// concurrently; further sealed windows wait in a bounded ingress queue.
// At the bound the backpressure policy applies — kBlock lets the queue
// grow (depth growth is the instability signal), kShed drops the window
// with accounting. Window jobs carry deadline = seal + slo, which the
// SLO-aware inter-job scheduler (multijob::MakeSloScheduler) turns into
// earliest-deadline-first slot assignment, composed with FIFO/Fair/
// Capacity for batch jobs sharing the cluster.
//
// The watermark is the classic ordered low-watermark: it advances to the
// seal time of the latest window prefix whose members all completed
// (empty and shed windows complete at their seal). Watermark lag — now
// minus watermark, sampled at completions — measures how far the service
// runs behind its input.
//
// Streaming off is the null-source convention (trace::Sink, FaultInjector
// precedent): an engine with no pipelines is bit-identical to a plain
// MultiJobEngine, and batch-only workloads never see stream code.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hadoop/task_source.h"
#include "multijob/engine.h"
#include "stream/pipeline.h"
#include "stream/source.h"

namespace hd::stream {

// Everything a RunStream service horizon produced: per-pipeline
// steady-state metrics plus the underlying per-window-job workload
// metrics (latency there is per job instance, not per window).
struct StreamMetrics {
  std::vector<PipelineMetrics> pipelines;
  multijob::WorkloadMetrics workload;
  double horizon_sec = 0.0;
  double warmup_sec = 0.0;

  // Queue-stability verdict over every pipeline.
  bool Stable() const;
  // Records processed (all pipelines) per horizon second.
  double AchievedQps() const;
  // Sum of configured mean source rates.
  double OfferedQps() const;
  std::int64_t TotalRecordsShed() const;
  std::int64_t TotalSloViolations() const;
  std::int64_t TotalWindowsCompleted() const;
};

class StreamEngine : public multijob::MultiJobEngine {
 public:
  StreamEngine(hadoop::ClusterConfig cfg,
               std::unique_ptr<multijob::InterJobScheduler> scheduler);

  // Registers a standing pipeline; call before RunStream. Returns the
  // pipeline id (registration order).
  int AddPipeline(PipelineSpec spec);

  // Runs the service for `horizon_sec` of modeled time: sources emit
  // until the horizon, the open windows seal at it, and the run drains
  // every admitted window before returning. Windows sealed before
  // `warmup_sec` are excluded from the steady-state sample sets.
  // Batch jobs Submit()ed beforehand run alongside the pipelines.
  StreamMetrics RunStream(double horizon_sec, double warmup_sec = 0.0);

 protected:
  void OnJobCompleted(const multijob::JobStats& stats) override;

  // heterodoop.ckpt.v1 stream state: a "stream" top-level section (window
  // frontiers, source generator states, pending/inflight windows, pipeline
  // metrics) plus a per-job "window" tag so a restore can rebuild window
  // jobs' synthetic task sources the caller never owned.
  void WriteExtraSections(json::Writer& w) override;
  void RestoreExtraSections(const json::Value& doc) override;
  multijob::JobSpec MakeRestoredJobSpec(const json::Value& entry) override;
  void WriteJobExtra(json::Writer& w,
                     const hadoop::JobState& job) const override;

 private:
  struct Window {
    std::int64_t seq = -1;  // assigned at seal
    std::int64_t records = 0;
    double open_sec = 0.0;
    double seal_sec = 0.0;
  };

  struct Pipeline {
    PipelineSpec spec;
    ArrivalSource source;
    PipelineMetrics metrics;

    Window open;
    // The open window's armed time trigger; sealing cancels it outright
    // (generation-handle cancellation, no stale closure left to fire).
    des::EventHandle time_trigger;
    // Live event-frontier bookkeeping for checkpoints: the armed trigger's
    // absolute fire time and the pending arrival instant (-1 when none is
    // scheduled), so a restore re-arms both at their original positions.
    double trigger_at = -1.0;
    double next_arrival = -1.0;
    std::int64_t next_seq = 0;
    std::deque<WindowStats> pending;  // sealed, waiting for admission
    int inflight = 0;

    // Ordered low-watermark bookkeeping.
    std::map<std::int64_t, double> done_seals;  // out-of-order completions
    std::int64_t watermark_seq = 0;  // first seq not yet complete
    double watermark_sec = 0.0;

    explicit Pipeline(PipelineSpec s)
        : spec(std::move(s)), source(spec.source) {}
  };

  static void ArrivalEvent(void* ctx, const des::Payload& p);
  static void TimeTriggerEvent(void* ctx, const des::Payload& p);
  static void HorizonEvent(void* ctx, const des::Payload& p);
  void OnArrival(int p);
  void ScheduleNextArrival(int p);
  void ArmTimeTrigger(int p);
  void SealAtHorizon();
  void SealWindow(int p, const char* reason);
  void AdmitOrQueue(int p, WindowStats w);
  void SubmitWindow(int p, WindowStats w);
  // Builds the job spec (and its calibrated source) for pipeline p's
  // window `seq` holding `records`; shared by live submission and
  // checkpoint restore so both derive the identical per-window seed.
  multijob::JobSpec MakeWindowJobSpec(int p, std::int64_t seq,
                                      std::int64_t records);
  void FinishWindow(int p, WindowStats w);  // completion, empty or shed
  void SampleQueueDepth(Pipeline& pipe);
  void FinalizePipeline(Pipeline& pipe);
  // Registers pipeline p's telemetry probes (depth/inflight/lag gauges,
  // cumulative record/window counters) and its default SLO rules (shed
  // and deadline-miss burn-rate budgets from the spec, queue depth above
  // the admission bound). Called from RunStream when cfg_.timeseries is
  // configured.
  void RegisterPipelineTelemetry(int p);
  bool InSteadyState(const WindowStats& w) const {
    return w.seal_sec >= warmup_sec_;
  }
  trace::Track StreamTrack(int p) const;

  std::vector<std::unique_ptr<Pipeline>> pipes_;
  // Calibrated sources backing submitted window jobs; stable addresses
  // for the engine's lifetime.
  std::vector<std::unique_ptr<hadoop::CalibratedTaskSource>> window_sources_;
  // job id -> (pipeline, window) for completions; windows in flight as
  // jobs live here.
  std::map<int, std::pair<int, WindowStats>> inflight_windows_;
  // Window identity (pipeline, seq, records) of every window job ever
  // submitted; unlike inflight_windows_ entries are never erased, so a
  // checkpoint can tag completed window jobs for restore too.
  struct WindowRef {
    int pipe = 0;
    std::int64_t seq = 0;
    std::int64_t records = 0;
  };
  std::map<int, WindowRef> window_jobs_;
  double horizon_sec_ = 0.0;
  double warmup_sec_ = 0.0;
  bool streaming_ = false;  // inside RunStream
  // RestoreExtraSections overlaid a stream section: RunStream must keep
  // the checkpointed horizon/warmup and skip the fresh arming (the
  // restore already re-armed the captured frontier).
  bool stream_restored_ = false;
};

}  // namespace hd::stream
