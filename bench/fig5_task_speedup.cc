// Reproduces Fig. 5: speedup of a single data-local GPU task over a CPU
// task run by one core, for the baseline-translated code and with all
// compiler/runtime optimisations (vectorisation, texture memory, record
// stealing, KV aggregation before sort).
#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "common/strings.h"

int main(int argc, char** argv) {
  using namespace hd;
  bench::Reporter rep("fig5_task_speedup", argc, argv);
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;
  rep.Config("split_bytes", split_bytes);
  rep.Config("device", gpusim::DeviceConfig::TeslaK40().name);

  rep.out() << "Fig. 5: single GPU-task speedup over one CPU core\n"
            << "(split = " << split_bytes / 1024
            << " KiB; production fileSplits are 256 MiB)\n\n";
  auto& t = rep.AddTable(
      "fig5", {"Benchmark", "Baseline x", "Optimized x", "Opt. gain"});
  std::vector<double> speedups;
  int pid = 0;
  for (const auto& b : apps::AllBenchmarks()) {
    bench::MeasureConfig cfg;
    cfg.split_bytes = split_bytes;
    cfg.sink = rep.sink();
    cfg.metrics = rep.metrics();
    cfg.track.pid = pid;
    if (cfg.sink != nullptr) cfg.sink->NameProcess(pid, b.id);
    ++pid;
    const bench::MeasuredTask m = bench::MeasureTask(b, cfg);
    rep.AddModeledSeconds(m.CpuSec() + m.GpuSec() + m.GpuBaselineSec());
    t.Row()
        .Cell(b.id)
        .Cell(m.BaselineSpeedup(), 2)
        .Cell(m.Speedup(), 2)
        .Cell(m.GpuBaselineSec() / m.GpuSec(), 2);
    speedups.push_back(m.Speedup());
  }
  rep.Print(t);
  auto& g = rep.AddTable("fig5_geomean", {"Geomean x"});
  g.Row().Cell(bench::GeoMean(speedups), 2);
  rep.out() << "\nGeometric-mean optimized task speedup: "
            << FormatDouble(bench::GeoMean(speedups), 2)
            << "x (paper: up to 47x for BS; IO-intensive apps lowest)\n";
  return rep.Finish();
}
