// Result of one map(+combine) task, common to the CPU and GPU paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpurt/kv.h"
#include "trace/metrics.h"

namespace hd::gpurt {

// Per-phase modeled seconds (the Fig. 6 breakdown). Phases that a path does
// not run stay zero (e.g. record_count on the CPU path).
struct PhaseBreakdown {
  double input_read = 0.0;
  double record_count = 0.0;
  double map = 0.0;
  double aggregate = 0.0;
  double sort = 0.0;
  double combine = 0.0;
  double output_write = 0.0;

  double Total() const {
    return input_read + record_count + map + aggregate + sort + combine +
           output_write;
  }
};

// Deprecated as a reporting channel: new consumers should read these
// numbers from the trace::Registry the task fills when
// {Cpu,Gpu}TaskOptions::metrics is set (AddTaskMetrics below) instead of
// plumbing TaskStats fields by hand; the struct remains the internal
// carrier between the task paths and the registry.
struct TaskStats {
  std::int64_t records = 0;
  std::int64_t map_kv_pairs = 0;
  std::int64_t out_kv_pairs = 0;
  std::int64_t allocated_slots = 0;
  std::int64_t whitespace_slots = 0;
  std::int64_t sort_elements = 0;
  std::int64_t texture_hits = 0;
  std::int64_t texture_misses = 0;
  std::int64_t shared_atomics = 0;
  std::int64_t global_atomics = 0;
  // Map-kernel roofline terms (modeled cycles), for diagnostics/ablations.
  double map_compute_cycles = 0.0;
  double map_mem_cycles = 0.0;
  // Map-kernel hardware counters (gpusim::KernelReport): derived from the
  // same lane accounting as the timing model but never fed back into it.
  std::int64_t map_mem_requests = 0;
  std::int64_t map_bytes_requested = 0;
  std::int64_t shared_bank_conflicts = 0;
  std::int64_t atomic_conflicts = 0;
  double map_divergence = 0.0;   // KernelReport::WarpDivergenceRatio
  double map_coalescing = 0.0;   // KernelReport::CoalescingEfficiency
  std::int64_t output_bytes = 0;
};

struct MapTaskResult {
  // Post map(+combine) pairs, one vector per reduce partition; pairs within
  // a partition are key-grouped. For map-only jobs there is exactly one
  // partition holding the final output.
  std::vector<std::vector<KvPair>> partitions;
  PhaseBreakdown phases;
  TaskStats stats;

  std::int64_t TotalPairs() const {
    std::int64_t n = 0;
    for (const auto& p : partitions) n += static_cast<std::int64_t>(p.size());
    return n;
  }
};

// Folds one task's stats and phase breakdown into `registry` under
// `prefix` (e.g. "gpurt.gpu"): integer stats accumulate as counters,
// per-phase modeled seconds record into distributions — the shared
// reporting channel for benches and tests.
inline void AddTaskMetrics(trace::Registry& registry, const MapTaskResult& m,
                           const std::string& prefix) {
  const TaskStats& s = m.stats;
  registry.counter(prefix + ".tasks").Add(1);
  registry.counter(prefix + ".records").Add(s.records);
  registry.counter(prefix + ".map_kv_pairs").Add(s.map_kv_pairs);
  registry.counter(prefix + ".out_kv_pairs").Add(s.out_kv_pairs);
  registry.counter(prefix + ".allocated_slots").Add(s.allocated_slots);
  registry.counter(prefix + ".whitespace_slots").Add(s.whitespace_slots);
  registry.counter(prefix + ".sort_elements").Add(s.sort_elements);
  registry.counter(prefix + ".texture_hits").Add(s.texture_hits);
  registry.counter(prefix + ".texture_misses").Add(s.texture_misses);
  registry.counter(prefix + ".shared_atomics").Add(s.shared_atomics);
  registry.counter(prefix + ".global_atomics").Add(s.global_atomics);
  registry.counter(prefix + ".mem_requests").Add(s.map_mem_requests);
  registry.counter(prefix + ".bytes_requested").Add(s.map_bytes_requested);
  registry.counter(prefix + ".shared_bank_conflicts")
      .Add(s.shared_bank_conflicts);
  registry.counter(prefix + ".atomic_conflicts").Add(s.atomic_conflicts);
  registry.counter(prefix + ".output_bytes").Add(s.output_bytes);
  registry.gauge(prefix + ".map_compute_cycles").Set(s.map_compute_cycles);
  registry.gauge(prefix + ".map_mem_cycles").Set(s.map_mem_cycles);
  if (s.map_mem_requests > 0 || s.map_divergence > 0.0) {
    registry.distribution(prefix + ".map_divergence").Record(s.map_divergence);
    registry.distribution(prefix + ".map_coalescing").Record(s.map_coalescing);
  }
  const PhaseBreakdown& p = m.phases;
  registry.distribution(prefix + ".task_sec").Record(p.Total());
  registry.distribution(prefix + ".input_read_sec").Record(p.input_read);
  registry.distribution(prefix + ".record_count_sec").Record(p.record_count);
  registry.distribution(prefix + ".map_sec").Record(p.map);
  registry.distribution(prefix + ".aggregate_sec").Record(p.aggregate);
  registry.distribution(prefix + ".sort_sec").Record(p.sort);
  registry.distribution(prefix + ".combine_sec").Record(p.combine);
  registry.distribution(prefix + ".output_write_sec").Record(p.output_write);
}

}  // namespace hd::gpurt
