#include "stream/engine.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/prng.h"

namespace hd::stream {

bool StreamMetrics::Stable() const {
  for (const PipelineMetrics& p : pipelines) {
    if (!p.stable) return false;
  }
  return true;
}

double StreamMetrics::AchievedQps() const {
  if (horizon_sec <= 0.0) return 0.0;
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.records_processed;
  return static_cast<double>(n) / horizon_sec;
}

double StreamMetrics::OfferedQps() const {
  double r = 0.0;
  for (const PipelineMetrics& p : pipelines) r += p.offered_rate_per_sec;
  return r;
}

std::int64_t StreamMetrics::TotalRecordsShed() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.records_shed;
  return n;
}

std::int64_t StreamMetrics::TotalSloViolations() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.slo_violations;
  return n;
}

std::int64_t StreamMetrics::TotalWindowsCompleted() const {
  std::int64_t n = 0;
  for (const PipelineMetrics& p : pipelines) n += p.windows_completed;
  return n;
}

StreamEngine::StreamEngine(
    hadoop::ClusterConfig cfg,
    std::unique_ptr<multijob::InterJobScheduler> scheduler)
    : multijob::MultiJobEngine(std::move(cfg), std::move(scheduler)) {}

int StreamEngine::AddPipeline(PipelineSpec spec) {
  HD_CHECK_MSG(!streaming_, "pipelines must be registered before RunStream");
  ValidatePipelineSpec(spec);
  const int id = static_cast<int>(pipes_.size());
  pipes_.push_back(std::make_unique<Pipeline>(std::move(spec)));
  Pipeline& pipe = *pipes_.back();
  pipe.metrics.label = pipe.spec.label;
  pipe.metrics.slo_sec = pipe.spec.slo_sec;
  pipe.metrics.offered_rate_per_sec = pipe.spec.source.mean_rate_per_sec;
  return id;
}

trace::Track StreamEngine::StreamTrack(int p) const {
  // One pid above the cluster nodes' pid range, one lane per pipeline.
  return trace::Track{cfg_.trace_pid_base + cfg_.num_slaves + 1, p};
}

StreamMetrics StreamEngine::RunStream(double horizon_sec, double warmup_sec) {
  HD_CHECK_MSG(horizon_sec > 0.0, "stream horizon must be positive");
  HD_CHECK_MSG(warmup_sec >= 0.0 && warmup_sec < horizon_sec,
               "warmup must lie in [0, horizon)");
  HD_CHECK_MSG(!streaming_, "RunStream is not reentrant");
  streaming_ = true;
  horizon_sec_ = horizon_sec;
  warmup_sec_ = warmup_sec;

  if (cfg_.sink != nullptr && !pipes_.empty()) {
    cfg_.sink->NameProcess(cfg_.trace_pid_base + cfg_.num_slaves + 1,
                           "stream");
  }
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    Pipeline& pipe = *pipes_[p];
    if (cfg_.sink != nullptr) {
      cfg_.sink->NameThread(StreamTrack(static_cast<int>(p)),
                            pipe.spec.label);
    }
    pipe.open.open_sec = now();
    ArmTimeTrigger(static_cast<int>(p));
    ScheduleNextArrival(static_cast<int>(p));
  }
  if (!pipes_.empty()) {
    // The service horizon: sources already stop before it (no arrival is
    // scheduled at or past horizon), this seals every open window without
    // reopening and snapshots the ingress backlog the run leaves behind.
    events_.At(horizon_sec_, &StreamEngine::HorizonEvent, this);
  }
  if (cfg_.timeseries != nullptr) {
    for (std::size_t p = 0; p < pipes_.size(); ++p) {
      RegisterPipelineTelemetry(static_cast<int>(p));
    }
  }

  StreamMetrics out;
  out.workload = Run();  // drains every admitted window
  out.horizon_sec = horizon_sec_;
  out.warmup_sec = warmup_sec_;
  for (std::unique_ptr<Pipeline>& pipe : pipes_) {
    FinalizePipeline(*pipe);
    out.pipelines.push_back(pipe->metrics);
  }
  streaming_ = false;
  return out;
}

void StreamEngine::RegisterPipelineTelemetry(int p) {
  trace::TimeSeries& ts = *cfg_.timeseries;
  Pipeline* pipe = pipes_[static_cast<std::size_t>(p)].get();
  const std::string pfx = "stream." + pipe->spec.label + ".";
  ts.AddGaugeProbe(pfx + "queue_depth", [pipe] {
    return static_cast<double>(pipe->pending.size()) + pipe->inflight;
  });
  ts.AddGaugeProbe(pfx + "inflight", [pipe] {
    return static_cast<double>(pipe->inflight);
  });
  ts.AddGaugeProbe(pfx + "watermark_lag", [this, pipe] {
    return now() - pipe->watermark_sec;
  });
  ts.AddCumulativeProbe(pfx + "records_arrived", [pipe] {
    return static_cast<double>(pipe->metrics.records_arrived);
  });
  ts.AddCumulativeProbe(pfx + "records_processed", [pipe] {
    return static_cast<double>(pipe->metrics.records_processed);
  });
  ts.AddCumulativeProbe(pfx + "records_shed", [pipe] {
    return static_cast<double>(pipe->metrics.records_shed);
  });
  ts.AddCumulativeProbe(pfx + "windows_completed", [pipe] {
    return static_cast<double>(pipe->metrics.windows_completed);
  });
  ts.AddCumulativeProbe(pfx + "slo_violations", [pipe] {
    return static_cast<double>(pipe->metrics.slo_violations);
  });

  // Default SLO rules from the pipeline spec: a shed-rate budget and a
  // deadline-miss budget as multi-window burn rates, plus a queue-depth
  // threshold at the admission bound (the instability signal the
  // stability verdict reads post-hoc, live).
  const trace::Track track = StreamTrack(p);
  trace::SloRule shed;
  shed.name = pfx + "shed_budget_burn";
  shed.kind = trace::SloRule::Kind::kBurnRate;
  shed.bad_series = pfx + "records_shed";
  shed.total_series = pfx + "records_arrived";
  shed.budget = pipe->spec.shed_budget_fraction;
  shed.track = track;
  ts.slo().AddRule(shed);

  trace::SloRule miss;
  miss.name = pfx + "deadline_miss_burn";
  miss.kind = trace::SloRule::Kind::kBurnRate;
  miss.bad_series = pfx + "slo_violations";
  miss.total_series = pfx + "windows_completed";
  miss.budget = pipe->spec.miss_budget_fraction;
  miss.track = track;
  ts.slo().AddRule(miss);

  trace::SloRule depth;
  depth.name = pfx + "queue_depth_high";
  depth.kind = trace::SloRule::Kind::kAbove;
  depth.series = pfx + "queue_depth";
  depth.threshold = static_cast<double>(pipe->spec.max_inflight_windows +
                                        pipe->spec.max_pending_windows);
  depth.track = track;
  ts.slo().AddRule(depth);
}

void StreamEngine::ArrivalEvent(void* ctx, const des::Payload& p) {
  static_cast<StreamEngine*>(ctx)->OnArrival(static_cast<int>(p.u0));
}

void StreamEngine::TimeTriggerEvent(void* ctx, const des::Payload& p) {
  static_cast<StreamEngine*>(ctx)->SealWindow(static_cast<int>(p.u0), "time");
}

void StreamEngine::HorizonEvent(void* ctx, const des::Payload&) {
  static_cast<StreamEngine*>(ctx)->SealAtHorizon();
}

void StreamEngine::SealAtHorizon() {
  for (std::size_t p = 0; p < pipes_.size(); ++p) {
    SealWindow(static_cast<int>(p), "horizon");
    Pipeline& pipe = *pipes_[p];
    pipe.metrics.backlog_at_horizon =
        static_cast<std::int64_t>(pipe.pending.size()) + pipe.inflight;
  }
}

void StreamEngine::ScheduleNextArrival(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const double t = pipe.source.NextArrival(now());
  // Also false for +infinity (exhausted replay source).
  if (!(t < horizon_sec_)) return;
  events_.At(t, &StreamEngine::ArrivalEvent, this,
             des::Payload{static_cast<std::uint64_t>(p), 0});
}

void StreamEngine::OnArrival(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  ++pipe.metrics.records_arrived;
  ++pipe.open.records;
  // Sealing (which arms the next window's time trigger) happens before the
  // next arrival is drawn, so at an exact count/time tie the trigger holds
  // the earlier insertion sequence — the convention pipeline.h documents.
  if (pipe.open.records >= pipe.spec.trigger.count) SealWindow(p, "count");
  ScheduleNextArrival(p);
}

void StreamEngine::ArmTimeTrigger(int p) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const double when = pipe.open.open_sec + pipe.spec.trigger.span_sec;
  if (when >= horizon_sec_) return;  // the horizon seal covers this window
  pipe.time_trigger =
      events_.At(when, &StreamEngine::TimeTriggerEvent, this,
                 des::Payload{static_cast<std::uint64_t>(p), 0});
}

void StreamEngine::SealWindow(int p, const char* reason) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const bool at_horizon = std::strcmp(reason, "horizon") == 0;
  WindowStats w;
  w.seq = pipe.next_seq++;
  w.records = pipe.open.records;
  w.open_sec = pipe.open.open_sec;
  w.seal_sec = now();
  w.seal_reason = reason;
  // Retire the armed time trigger (a no-op when this seal *is* the
  // trigger firing — its handle is already spent).
  events_.Cancel(pipe.time_trigger);
  pipe.time_trigger = {};
  ++pipe.metrics.windows_sealed;
  if (std::strcmp(reason, "count") == 0) ++pipe.metrics.seals_by_count;
  if (std::strcmp(reason, "time") == 0) ++pipe.metrics.seals_by_time;
  if (!at_horizon) {
    pipe.open = Window{};
    pipe.open.open_sec = now();
    ArmTimeTrigger(p);
  }
  if (w.records == 0) {
    // A span elapsed with no arrivals: no job to run, the watermark passes
    // immediately.
    w.empty = true;
    ++pipe.metrics.windows_empty;
    w.submit_sec = w.seal_sec;
    w.finish_sec = w.seal_sec;
    FinishWindow(p, std::move(w));
  } else {
    AdmitOrQueue(p, std::move(w));
  }
  SampleQueueDepth(pipe);
}

void StreamEngine::AdmitOrQueue(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  if (pipe.inflight < pipe.spec.max_inflight_windows) {
    SubmitWindow(p, std::move(w));
    return;
  }
  const bool at_bound =
      static_cast<int>(pipe.pending.size()) >= pipe.spec.max_pending_windows;
  if (at_bound && pipe.spec.backpressure == Backpressure::kShed) {
    w.shed = true;
    ++pipe.metrics.windows_shed;
    if (InSteadyState(w)) ++pipe.metrics.windows_shed_steady;
    pipe.metrics.records_shed += w.records;
    w.submit_sec = w.seal_sec;
    w.finish_sec = w.seal_sec;  // the watermark passes a shed window
    FinishWindow(p, std::move(w));
    return;
  }
  // kBlock rides past the bound: an open-loop source cannot be paused, so
  // the queue absorbs the excess and sustained depth shows up in the
  // stability verdict instead.
  pipe.pending.push_back(std::move(w));
}

void StreamEngine::SubmitWindow(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  w.submit_sec = now();
  const WindowJobTemplate& t = pipe.spec.job;
  hadoop::CalibratedTaskSource::Params tp;
  tp.num_maps = static_cast<int>((w.records + t.records_per_map - 1) /
                                 t.records_per_map);
  tp.num_reducers = t.num_reducers;
  tp.cpu_task_sec = t.cpu_task_sec;
  tp.gpu_task_sec = t.gpu_task_sec;
  tp.variation = t.variation;
  tp.map_output_bytes = t.map_output_bytes;
  tp.reduce_sec = t.reduce_sec;
  // Per-window task timings derive from (pipeline seed, window seq), so a
  // same-seed rerun replays the exact workload window by window.
  tp.seed = SplitMix64(SplitMix64(pipe.spec.source.seed) ^
                       static_cast<std::uint64_t>(w.seq));
  window_sources_.push_back(
      std::make_unique<hadoop::CalibratedTaskSource>(tp));

  multijob::JobSpec js;
  js.source = window_sources_.back().get();
  js.policy = pipe.spec.policy;
  js.pool = pipe.spec.pool;
  js.label = pipe.spec.label + "/w" + std::to_string(w.seq);
  js.deadline_sec = w.seal_sec + pipe.spec.slo_sec;
  const int id = Submit(now(), std::move(js));
  ++pipe.inflight;
  inflight_windows_.emplace(id, std::make_pair(p, std::move(w)));
}

void StreamEngine::OnJobCompleted(const multijob::JobStats& stats) {
  const auto it = inflight_windows_.find(stats.job_id);
  if (it == inflight_windows_.end()) return;  // a batch job sharing the run
  const int p = it->second.first;
  WindowStats w = std::move(it->second.second);
  inflight_windows_.erase(it);
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  --pipe.inflight;
  w.finish_sec = stats.finish_sec;
  pipe.metrics.records_processed += w.records;
  FinishWindow(p, std::move(w));
  // The freed admission slot pulls the oldest queued window.
  while (!pipe.pending.empty() &&
         pipe.inflight < pipe.spec.max_inflight_windows) {
    WindowStats next = std::move(pipe.pending.front());
    pipe.pending.pop_front();
    SubmitWindow(p, std::move(next));
  }
}

void StreamEngine::FinishWindow(int p, WindowStats w) {
  Pipeline& pipe = *pipes_[static_cast<std::size_t>(p)];
  const bool ran = !w.shed && !w.empty;  // executed as a job instance
  if (!w.shed) ++pipe.metrics.windows_completed;
  if (ran && cfg_.timeseries != nullptr) {
    // Per-interval latency percentiles (tumbling buckets, no warmup
    // filter: the timeline should show ramp-up too).
    cfg_.timeseries->windowed("stream." + pipe.spec.label + ".latency_sec")
        .Record(now(), w.Latency());
  }
  if (ran && InSteadyState(w)) {
    pipe.metrics.latencies_sec.push_back(w.Latency());
    if (w.Latency() > pipe.spec.slo_sec) ++pipe.metrics.slo_violations;
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->distribution("stream." + pipe.spec.label + ".window_latency_sec")
          .Record(w.Latency());
    }
  }
  // Ordered low-watermark: advance over the contiguous completed prefix.
  pipe.done_seals[w.seq] = w.seal_sec;
  for (auto it = pipe.done_seals.find(pipe.watermark_seq);
       it != pipe.done_seals.end();
       it = pipe.done_seals.find(pipe.watermark_seq)) {
    pipe.watermark_sec = it->second;
    pipe.done_seals.erase(it);
    ++pipe.watermark_seq;
  }
  if (cfg_.timeseries != nullptr) {
    cfg_.timeseries
        ->windowed("stream." + pipe.spec.label + ".watermark_lag_sec")
        .Record(now(), now() - pipe.watermark_sec);
  }
  if (InSteadyState(w)) {
    const double lag = now() - pipe.watermark_sec;
    pipe.metrics.watermark_lags_sec.push_back(lag);
    if (cfg_.metrics != nullptr) {
      cfg_.metrics
          ->distribution("stream." + pipe.spec.label + ".watermark_lag_sec")
          .Record(lag);
    }
  }
  if (cfg_.sink != nullptr) {
    trace::Args args = {trace::Arg::Int("seq", w.seq),
                        trace::Arg::Int("records", w.records),
                        trace::Arg::Str("seal", w.seal_reason)};
    if (ran) {
      cfg_.sink->Span("stream", "window", StreamTrack(p), w.seal_sec,
                      w.finish_sec - w.seal_sec, std::move(args));
    } else {
      cfg_.sink->Instant("stream", w.shed ? "window_shed" : "window_empty",
                         StreamTrack(p), w.seal_sec, std::move(args));
    }
  }
}

void StreamEngine::SampleQueueDepth(Pipeline& pipe) {
  const std::int64_t depth =
      static_cast<std::int64_t>(pipe.pending.size()) + pipe.inflight;
  pipe.metrics.max_queue_depth =
      std::max(pipe.metrics.max_queue_depth, depth);
  if (now() >= warmup_sec_) {
    pipe.metrics.queue_depths.push_back(static_cast<double>(depth));
  }
}

void StreamEngine::FinalizePipeline(Pipeline& pipe) {
  PipelineMetrics& m = pipe.metrics;
  const std::vector<double>& d = m.queue_depths;
  const std::size_t third = d.size() / 3;
  double growth = 1.0;
  if (third > 0) {
    double first = 0.0, last = 0.0;
    for (std::size_t i = 0; i < third; ++i) first += d[i];
    for (std::size_t i = d.size() - third; i < d.size(); ++i) last += d[i];
    // The +1-window smoothing keeps a near-empty queue from exploding the
    // ratio, mirroring multijob's QueueWaitGrowth tau.
    growth = (last / static_cast<double>(third) + 1.0) /
             (first / static_cast<double>(third) + 1.0);
  }
  m.depth_growth = growth;
  const std::int64_t bound =
      pipe.spec.max_inflight_windows + pipe.spec.max_pending_windows;
  m.stable = m.windows_shed_steady == 0 && growth <= 2.0 &&
             m.backlog_at_horizon <= bound;
  if (cfg_.metrics != nullptr) {
    trace::Registry& reg = *cfg_.metrics;
    const std::string pfx = "stream." + pipe.spec.label + ".";
    reg.counter(pfx + "records_arrived").Set(m.records_arrived);
    reg.counter(pfx + "records_processed").Set(m.records_processed);
    reg.counter(pfx + "records_shed").Set(m.records_shed);
    reg.counter(pfx + "windows_sealed").Set(m.windows_sealed);
    reg.counter(pfx + "windows_empty").Set(m.windows_empty);
    reg.counter(pfx + "windows_shed").Set(m.windows_shed);
    reg.counter(pfx + "windows_completed").Set(m.windows_completed);
    reg.counter(pfx + "slo_violations").Set(m.slo_violations);
    reg.counter(pfx + "max_queue_depth").Set(m.max_queue_depth);
    reg.gauge(pfx + "depth_growth").Set(m.depth_growth);
    reg.gauge(pfx + "stable").Set(m.stable ? 1.0 : 0.0);
    reg.gauge(pfx + "watermark_sec").Set(pipe.watermark_sec);
  }
}

}  // namespace hd::stream
