file(REMOVE_RECURSE
  "CMakeFiles/hd_gpusim.dir/config.cc.o"
  "CMakeFiles/hd_gpusim.dir/config.cc.o.d"
  "CMakeFiles/hd_gpusim.dir/kernel.cc.o"
  "CMakeFiles/hd_gpusim.dir/kernel.cc.o.d"
  "CMakeFiles/hd_gpusim.dir/texture_cache.cc.o"
  "CMakeFiles/hd_gpusim.dir/texture_cache.cc.o.d"
  "libhd_gpusim.a"
  "libhd_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
