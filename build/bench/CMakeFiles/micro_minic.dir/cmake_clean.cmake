file(REMOVE_RECURSE
  "CMakeFiles/micro_minic.dir/micro_minic.cc.o"
  "CMakeFiles/micro_minic.dir/micro_minic.cc.o.d"
  "micro_minic"
  "micro_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
