// Result of one map(+combine) task, common to the CPU and GPU paths.
#pragma once

#include <cstdint>
#include <vector>

#include "gpurt/kv.h"

namespace hd::gpurt {

// Per-phase modeled seconds (the Fig. 6 breakdown). Phases that a path does
// not run stay zero (e.g. record_count on the CPU path).
struct PhaseBreakdown {
  double input_read = 0.0;
  double record_count = 0.0;
  double map = 0.0;
  double aggregate = 0.0;
  double sort = 0.0;
  double combine = 0.0;
  double output_write = 0.0;

  double Total() const {
    return input_read + record_count + map + aggregate + sort + combine +
           output_write;
  }
};

struct TaskStats {
  std::int64_t records = 0;
  std::int64_t map_kv_pairs = 0;
  std::int64_t out_kv_pairs = 0;
  std::int64_t allocated_slots = 0;
  std::int64_t whitespace_slots = 0;
  std::int64_t sort_elements = 0;
  std::int64_t texture_hits = 0;
  std::int64_t texture_misses = 0;
  std::int64_t shared_atomics = 0;
  std::int64_t global_atomics = 0;
  // Map-kernel roofline terms (modeled cycles), for diagnostics/ablations.
  double map_compute_cycles = 0.0;
  double map_mem_cycles = 0.0;
  std::int64_t output_bytes = 0;
};

struct MapTaskResult {
  // Post map(+combine) pairs, one vector per reduce partition; pairs within
  // a partition are key-grouped. For map-only jobs there is exactly one
  // partition holding the final output.
  std::vector<std::vector<KvPair>> partitions;
  PhaseBreakdown phases;
  TaskStats stats;

  std::int64_t TotalPairs() const {
    std::int64_t n = 0;
    for (const auto& p : partitions) n += static_cast<std::int64_t>(p.size());
    return n;
  }
};

}  // namespace hd::gpurt
