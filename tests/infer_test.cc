// Tests for the hdinfer directive-synthesis engine: pragma stripping,
// candidate classification, clause synthesis with provenance, the
// inference-negative corpus (golden-compared), source rewriting, and the
// deterministic JSON/SARIF renderings.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/diag_registry.h"
#include "analysis/infer.h"
#include "translator/translator.h"

namespace hd::analysis {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const Diagnostic* FindId(const DiagnosticEngine& de, const std::string& id) {
  for (const auto& d : de.diagnostics()) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

int CountId(const DiagnosticEngine& de, const std::string& id) {
  int n = 0;
  for (const auto& d : de.diagnostics()) {
    if (d.id == id) ++n;
  }
  return n;
}

constexpr const char* kPlainWordcount = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i];
    i++;
    j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[32], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 32)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kPlainSumCombiner = R"(
int main() {
  char key[32], prevKey[32];
  int count, val, read;
  prevKey[0] = '\0';
  count = 0;
  {
    while ((read = scanf("%s %d", key, &val)) == 2) {
      if (strcmp(key, prevKey) == 0) {
        count += val;
      } else {
        if (prevKey[0] != '\0')
          printf("%s\t%d\n", prevKey, count);
        strcpy(prevKey, key);
        count = val;
      }
    }
    if (prevKey[0] != '\0')
      printf("%s\t%d\n", prevKey, count);
  }
  return 0;
}
)";

// ---------------------------------------------------------------------------
// StripDirectives.
// ---------------------------------------------------------------------------

TEST(StripDirectives, RemovesPragmaAndContinuationLines) {
  const std::string src =
      "int main() {\n"
      "  #pragma mapreduce mapper key(k) value(v) \\\n"
      "    keylength(16) \\\n"
      "    kvpairs(1)\n"
      "  while (x) { }\n"
      "  return 0;\n"
      "}\n";
  EXPECT_EQ(StripDirectives(src),
            "int main() {\n  while (x) { }\n  return 0;\n}\n");
}

TEST(StripDirectives, LeavesOtherPragmasAndTextAlone) {
  const std::string src = "#pragma once\nint x;\n";
  EXPECT_EQ(StripDirectives(src), src);
}

// ---------------------------------------------------------------------------
// Mapper synthesis.
// ---------------------------------------------------------------------------

TEST(InferMapper, SynthesizesWordcountDirective) {
  const InferResult r = InferDirectives(kPlainWordcount);
  ASSERT_TRUE(r.ok) << r.diags.RenderText();
  ASSERT_EQ(r.regions.size(), 1u);
  EXPECT_EQ(r.regions[0].cls, LoopClass::kMapEmission);
  EXPECT_TRUE(r.regions[0].is_mapper);
  EXPECT_EQ(r.regions[0].directive,
            "#pragma mapreduce mapper key(word) value(one) keylength(32)");
  EXPECT_NE(FindId(r.diags, "HD601"), nullptr);
  // One provenance note per synthesized clause.
  EXPECT_EQ(CountId(r.diags, "HD602"), 3);
}

TEST(InferMapper, RewrittenSourceCarriesTheDirective) {
  const InferResult r = InferDirectives(kPlainWordcount);
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.annotated_source.find(
                "  #pragma mapreduce mapper key(word) value(one)"),
            std::string::npos);
  // The annotated program passes the translator unmodified.
  const auto prog = translator::Translate(r.annotated_source);
  ASSERT_TRUE(prog.map_plan.has_value());
  EXPECT_EQ(prog.map_plan->key_var, "word");
  EXPECT_EQ(prog.map_plan->value_var, "one");
  EXPECT_EQ(prog.map_plan->kv.key_slot_bytes, 32);
}

TEST(InferMapper, ReInferringAnnotatedSourceReportsHD610) {
  const InferResult first = InferDirectives(kPlainWordcount);
  ASSERT_TRUE(first.ok);
  const InferResult again = InferDirectives(first.annotated_source);
  EXPECT_TRUE(again.ok);
  ASSERT_EQ(again.regions.size(), 1u);
  EXPECT_TRUE(again.regions[0].already_annotated);
  EXPECT_NE(FindId(again.diags, "HD610"), nullptr);
  // --strip mode discards the pragma and re-synthesizes the same directive.
  InferOptions strip;
  strip.strip_existing = true;
  const InferResult redo = InferDirectives(first.annotated_source, strip);
  ASSERT_TRUE(redo.ok);
  ASSERT_EQ(redo.regions.size(), 1u);
  EXPECT_EQ(redo.regions[0].directive,
            "#pragma mapreduce mapper key(word) value(one) keylength(32)");
}

// ---------------------------------------------------------------------------
// Combiner synthesis.
// ---------------------------------------------------------------------------

TEST(InferCombiner, SynthesizesSumCombinerDirective) {
  const InferResult r = InferDirectives(kPlainSumCombiner);
  ASSERT_TRUE(r.ok) << r.diags.RenderText();
  ASSERT_EQ(r.regions.size(), 1u);
  EXPECT_EQ(r.regions[0].cls, LoopClass::kKeyedReduction);
  EXPECT_FALSE(r.regions[0].is_mapper);
  EXPECT_EQ(r.regions[0].directive,
            "#pragma mapreduce combiner key(prevKey) value(count) keyin(key) "
            "valuein(val) keylength(32) firstprivate(count, prevKey)");
}

TEST(InferCombiner, DirectiveAttachesToTheBlockNotTheLoop) {
  const InferResult r = InferDirectives(kPlainSumCombiner);
  ASSERT_TRUE(r.ok);
  // The pragma must sit above the `{` so the trailing group flush stays
  // inside the combiner region.
  const std::size_t pragma_pos = r.annotated_source.find("#pragma mapreduce");
  const std::size_t block_pos = r.annotated_source.find("\n  {\n");
  ASSERT_NE(pragma_pos, std::string::npos);
  ASSERT_NE(block_pos, std::string::npos);
  EXPECT_LT(pragma_pos, block_pos);
  const auto prog = translator::Translate(r.annotated_source);
  ASSERT_TRUE(prog.combine_plan.has_value());
  EXPECT_EQ(prog.combine_plan->key_var, "prevKey");
  EXPECT_EQ(prog.combine_plan->keyin_var, "key");
  EXPECT_EQ(prog.combine_plan->valuein_var, "val");
}

// ---------------------------------------------------------------------------
// Rejections are structured diagnostics, never crashes.
// ---------------------------------------------------------------------------

TEST(InferNegative, NoMainIsHD603) {
  const InferResult r = InferDirectives("int helper(int x) { return x; }\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(FindId(r.diags, "HD603"), nullptr);
}

TEST(InferNegative, NoCandidateLoopIsHD603) {
  const InferResult r = InferDirectives(
      "int main() {\n  int i;\n  i = 0;\n  while (i < 10) i++;\n"
      "  return 0;\n}\n");
  EXPECT_FALSE(r.ok);
  const Diagnostic* d = FindId(r.diags, "HD603");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("no candidate record loop"), std::string::npos);
}

TEST(InferNegative, RecordLoopThatNeverEmitsIsHD604) {
  const InferResult r = InferDirectives(
      "int main() {\n"
      "  char *line;\n"
      "  size_t nbytes = 128;\n"
      "  int read, total;\n"
      "  total = 0;\n"
      "  line = (char*) malloc(nbytes * sizeof(char));\n"
      "  while ((read = getline(&line, &nbytes, stdin)) != -1) {\n"
      "    read = read + 0;\n"
      "  }\n"
      "  free(line);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(FindId(r.diags, "HD604"), nullptr);
}

TEST(InferNegative, DisagreeingEmissionSitesAreHD605) {
  const InferResult r = InferDirectives(
      "int main() {\n"
      "  char *line;\n"
      "  size_t nbytes = 128;\n"
      "  int read, a, b;\n"
      "  line = (char*) malloc(nbytes * sizeof(char));\n"
      "  while ((read = getline(&line, &nbytes, stdin)) != -1) {\n"
      "    a = atoi(line);\n"
      "    b = a + 1;\n"
      "    if (a > 0) printf(\"%d\\t%d\\n\", a, b);\n"
      "    else printf(\"%d\\t%d\\n\", b, a);\n"
      "  }\n"
      "  free(line);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(FindId(r.diags, "HD605"), nullptr);
}

TEST(InferNegative, NonLiteralEmissionShapeIsHD609) {
  const InferResult r = InferDirectives(
      "int main() {\n"
      "  char *line;\n"
      "  size_t nbytes = 128;\n"
      "  int read, a;\n"
      "  line = (char*) malloc(nbytes * sizeof(char));\n"
      "  while ((read = getline(&line, &nbytes, stdin)) != -1) {\n"
      "    a = atoi(line);\n"
      "    printf(\"%d %d\\n\", a, read);\n"
      "  }\n"
      "  free(line);\n"
      "  return 0;\n"
      "}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(FindId(r.diags, "HD609"), nullptr);
}

// ---------------------------------------------------------------------------
// Inference-negative corpus: examples/bad/<case>.c vs <case>.expected.
// ---------------------------------------------------------------------------

void CheckGolden(const std::string& name, const std::string& want_id) {
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/bad/";
  const std::string source = ReadFile(dir + name + ".c");
  const std::string expected = ReadFile(dir + name + ".expected");
  InferOptions opts;
  opts.source_name = name + ".c";  // goldens are recorded with bare names
  const InferResult r = InferDirectives(source, opts);
  EXPECT_FALSE(r.ok) << "corpus case " << name;
  EXPECT_EQ(r.diags.RenderText(), expected) << "corpus case " << name;
  EXPECT_NE(FindId(r.diags, want_id), nullptr) << "corpus case " << name;
}

TEST(InferBadCorpus, LoopCarriedGolden) {
  CheckGolden("infer_loop_carried", "HD606");
}
TEST(InferBadCorpus, NonAssociativeReductionGolden) {
  CheckGolden("infer_nonassoc_reduction", "HD607");
}
TEST(InferBadCorpus, WriteAfterReadAliasGolden) {
  CheckGolden("infer_war_alias", "HD608");
}

// The positive corpus infers cleanly and the rewrite is hdlint-clean.
TEST(InferCorpus, PlainExamplesInferAndRewriteCleanly) {
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/infer/";
  for (const char* name : {"wordcount_plain", "sum_combiner_plain"}) {
    const InferResult r = InferDirectives(ReadFile(dir + name + ".c"));
    EXPECT_TRUE(r.ok) << name << "\n" << r.diags.RenderText();
    EXPECT_NO_THROW(translator::Translate(r.annotated_source)) << name;
  }
}

// ---------------------------------------------------------------------------
// Translator integration: infer_missing_directives.
// ---------------------------------------------------------------------------

TEST(TranslatorHook, InfersDirectivesForPlainSources) {
  translator::TranslateOptions opts;
  opts.infer_missing_directives = true;
  const auto prog = translator::Translate(kPlainWordcount, opts);
  ASSERT_TRUE(prog.map_plan.has_value());
  EXPECT_EQ(prog.map_plan->key_var, "word");
  EXPECT_EQ(prog.map_plan->kv.key_slot_bytes, 32);
}

TEST(TranslatorHook, InferenceFailureSurfacesHD6xxDiagnostics) {
  translator::TranslateOptions opts;
  opts.infer_missing_directives = true;
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/bad/";
  try {
    translator::Translate(ReadFile(dir + "infer_loop_carried.c"), opts);
    FAIL() << "expected TranslateError";
  } catch (const translator::TranslateError& e) {
    ASSERT_FALSE(e.diagnostics().empty());
    EXPECT_EQ(e.diagnostics()[0].id, "HD606");
  }
}

TEST(TranslatorHook, OffByDefaultStillRequiresDirectives) {
  EXPECT_THROW(translator::Translate(kPlainWordcount),
               translator::TranslateError);
}

// ---------------------------------------------------------------------------
// Deterministic machine-readable renderings.
// ---------------------------------------------------------------------------

TEST(InferOutput, JsonAndSarifAreDeterministic) {
  const InferResult a = InferDirectives(kPlainWordcount);
  const InferResult b = InferDirectives(kPlainWordcount);
  EXPECT_EQ(a.diags.RenderJson(), b.diags.RenderJson());
  EXPECT_EQ(a.diags.RenderSarif("hdinfer"), b.diags.RenderSarif("hdinfer"));
  EXPECT_EQ(a.annotated_source, b.annotated_source);
}

TEST(InferOutput, SarifCarriesRegistryRulesAndResults) {
  const std::string dir = std::string(HD_REPO_DIR) + "/examples/bad/";
  InferOptions opts;
  opts.source_name = "infer_war_alias.c";
  const InferResult r =
      InferDirectives(ReadFile(dir + "infer_war_alias.c"), opts);
  const std::string sarif = r.diags.RenderSarif("hdinfer");
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"hdinfer\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"HD608\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  // The rule table entry comes from the shared registry.
  const DiagInfo* info = FindDiag("HD608");
  ASSERT_NE(info, nullptr);
  EXPECT_NE(sarif.find(info->summary), std::string::npos);
}

}  // namespace
}  // namespace hd::analysis
