// Task execution/timing sources for the cluster engine.
//
// The engine is agnostic to how task durations arise:
//   * FunctionalTaskSource (functional_source.h) actually executes every
//     task through the gpurt CPU/GPU paths — used by tests and examples on
//     small inputs, giving end-to-end output correctness plus timing;
//   * CalibratedTaskSource replays representative measured durations with
//     deterministic per-task variation — used by the cluster-scale Fig. 4
//     benches, where Table 2's thousands of multi-hundred-MB splits cannot
//     be materialised.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "gpurt/kv.h"

namespace hd::hadoop {

// A map attempt failed on the GPU (device OOM, driver error). The engine
// reschedules the task — §5.1's fault-tolerance path.
class GpuTaskFailure : public std::runtime_error {
 public:
  explicit GpuTaskFailure(const std::string& what)
      : std::runtime_error(what) {}
};

struct MapTaskTiming {
  double seconds = 0.0;
  std::int64_t output_bytes = 0;
};

class TaskTimeSource {
 public:
  virtual ~TaskTimeSource() = default;

  virtual int num_map_tasks() const = 0;
  virtual int num_reducers() const = 0;

  // Runs (or estimates) map task `idx` on a CPU core or a GPU. Throws
  // GpuTaskFailure when on_gpu and the task cannot run there.
  virtual MapTaskTiming MapTask(int idx, bool on_gpu) = 0;

  // Compute seconds of reduce task `reducer` (merge + reduce function +
  // output write), excluding the shuffle which the engine models from
  // output bytes. Only called after every map task has completed.
  virtual double ReduceSeconds(int reducer) = 0;

  // Final job output (functional sources only; empty otherwise).
  virtual std::vector<gpurt::KvPair> FinalOutput() { return {}; }
};

// Replays representative task durations with deterministic log-normal-ish
// per-task variation.
class CalibratedTaskSource : public TaskTimeSource {
 public:
  struct Params {
    int num_maps = 1;
    int num_reducers = 1;
    double cpu_task_sec = 1.0;
    double gpu_task_sec = 1.0;
    // Relative per-task spread (paper reports <5% run-to-run variation but
    // record-size skew across splits is larger).
    double variation = 0.10;
    std::int64_t map_output_bytes = 1 << 20;
    double reduce_sec = 1.0;
    // False models a job whose GPU tasks always fail (kmeans exceeds the
    // M2090's memory on Cluster2, §7.3).
    bool gpu_supported = true;
    std::uint64_t seed = 1;
  };

  explicit CalibratedTaskSource(Params p) : p_(p) {
    HD_CHECK(p_.num_maps >= 1);
    HD_CHECK(p_.cpu_task_sec > 0);
    HD_CHECK(p_.gpu_task_sec > 0);
  }

  int num_map_tasks() const override { return p_.num_maps; }
  int num_reducers() const override { return p_.num_reducers; }

  MapTaskTiming MapTask(int idx, bool on_gpu) override {
    if (on_gpu && !p_.gpu_supported) {
      throw GpuTaskFailure("job unsupported on GPU (device memory)");
    }
    const double base = on_gpu ? p_.gpu_task_sec : p_.cpu_task_sec;
    // Same per-task factor on both paths: the skew comes from the split,
    // not from the processor.
    Prng prng(SplitMix64(p_.seed) ^ static_cast<std::uint64_t>(idx));
    const double factor = 1.0 + p_.variation * prng.NextGaussian();
    MapTaskTiming t;
    t.seconds = base * std::max(0.2, factor);
    t.output_bytes = p_.map_output_bytes;
    return t;
  }

  double ReduceSeconds(int) override { return p_.reduce_sec; }

 private:
  Params p_;
};

}  // namespace hd::hadoop
