// The Hadoop-style cluster engine: JobTracker + TaskTrackers exchanging
// heartbeats over a discrete-event simulation (§2.2, §5.1, §6).
//
// One JobEngine runs one MapReduce job to completion:
//   * map tasks are handed out in heartbeat responses (data-local splits
//     preferred when an HDFS is attached),
//   * each slave runs `map_slots_per_node` CPU streaming tasks plus one
//     reserved slot per GPU (the GPU driver of §5.1),
//   * the scheduling policy (sched::Policy) decides GPU placement,
//     including Algorithm 2's tail forcing,
//   * failed GPU attempts are rescheduled (fault tolerance),
//   * reduce tasks start after the slow-start fraction of maps completes;
//     their shuffle is modeled from map output volume.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "gpurt/kv.h"
#include "hadoop/des.h"
#include "hadoop/task_source.h"
#include "hdfs/hdfs.h"
#include "sched/policy.h"

namespace hd::hadoop {

struct ClusterConfig {
  int num_slaves = 4;
  int map_slots_per_node = 4;    // CPU map slots (Table 3: 20 / 4)
  int reduce_slots_per_node = 2;
  int gpus_per_node = 0;
  double heartbeat_sec = 3.0;
  double network_bytes_per_sec = 1.0e9;  // shuffle / non-local reads
  double reduce_slowstart = 0.2;  // Table 3: 20% maps before reduce starts
  // Extension (paper §9 future work): inter-node heterogeneity. When
  // non-empty, entry i scales every task duration on node i (e.g. 2.0 =
  // an older node at half speed). Size must equal num_slaves.
  std::vector<double> node_speed_factors;
  // Optional schedule trace (one line per task start/finish), for debugging
  // and for the Fig. 3 bench's timeline rendering.
  std::ostream* trace = nullptr;
};

struct JobResult {
  double makespan_sec = 0.0;
  double map_phase_end_sec = 0.0;
  std::int64_t cpu_tasks = 0;
  std::int64_t gpu_tasks = 0;
  std::int64_t gpu_failures = 0;
  std::int64_t nonlocal_tasks = 0;
  std::int64_t total_map_output_bytes = 0;
  double max_observed_speedup = 1.0;
  // Functional sources only: the job's final output (reduce output, or map
  // output for map-only jobs).
  std::vector<gpurt::KvPair> final_output;
};

class JobEngine {
 public:
  // `fs`/`input_path` enable locality-aware scheduling; both optional.
  JobEngine(ClusterConfig config, TaskTimeSource* source,
            sched::Policy policy, const hdfs::Hdfs* fs = nullptr,
            std::string input_path = {});

  JobResult Run();

 private:
  struct Node {
    int free_cpu = 0;
    int free_gpu = 0;
    double cpu_avg = 0.0;
    std::int64_t cpu_n = 0;
    double gpu_avg = 0.0;
    std::int64_t gpu_n = 0;

    double AveSpeedup() const {
      if (cpu_n == 0 || gpu_n == 0 || gpu_avg <= 0.0) return 1.0;
      return cpu_avg / gpu_avg;
    }
  };

  sched::NodeSched SchedView(const Node& n) const;
  void Heartbeat(int node_id);
  void PlaceTask(int node_id, int task, double maps_remaining_per_node);
  void StartMap(int node_id, int task, bool on_gpu);
  void FinishMap(int node_id, int task, bool on_gpu, double duration);
  void OnMapsProgress();
  void FinishJob();
  // Picks up to `max_tasks` pending tasks, preferring node-local splits.
  std::vector<int> PickTasks(int node_id, int max_tasks);
  bool IsLocal(int node_id, int task) const;

  ClusterConfig cfg_;
  TaskTimeSource* source_;
  sched::Policy policy_;
  const hdfs::Hdfs* fs_;
  std::string input_path_;

  EventQueue events_;
  std::vector<Node> nodes_;
  std::vector<int> pending_;   // unscheduled map task ids (FIFO)
  int remaining_maps_ = 0;     // scheduled-or-pending, not yet finished
  int maps_done_ = 0;
  double max_speedup_ = 1.0;
  bool reduces_scheduled_ = false;
  std::vector<double> reduce_start_;
  bool done_ = false;
  JobResult result_;
};

}  // namespace hd::hadoop
