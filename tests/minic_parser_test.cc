#include <gtest/gtest.h>

#include "minic/parser.h"

namespace hd::minic {
namespace {

std::unique_ptr<TranslationUnit> Ok(std::string_view src) {
  auto unit = Parse(src);
  EXPECT_NE(unit, nullptr);
  return unit;
}

TEST(Parser, EmptyUnit) {
  auto u = Ok("");
  EXPECT_TRUE(u->functions.empty());
}

TEST(Parser, SimpleFunction) {
  auto u = Ok("int main() { return 0; }");
  ASSERT_EQ(u->functions.size(), 1u);
  EXPECT_EQ(u->functions[0]->name, "main");
  EXPECT_EQ(u->functions[0]->return_type, Type::Int());
}

TEST(Parser, Parameters) {
  auto u = Ok("int f(char *s, int n, double x) { return n; }");
  const auto& ps = u->functions[0]->params;
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0].type, Type::PointerTo(Scalar::kChar));
  EXPECT_EQ(ps[1].type, Type::Int());
  EXPECT_EQ(ps[2].type, Type::Double());
}

TEST(Parser, ArrayParamDecays) {
  auto u = Ok("int f(float v[]) { return 0; }");
  EXPECT_EQ(u->functions[0]->params[0].type, Type::PointerTo(Scalar::kFloat));
}

TEST(Parser, VoidParamList) {
  auto u = Ok("int main(void) { return 0; }");
  EXPECT_TRUE(u->functions[0]->params.empty());
}

TEST(Parser, Declarations) {
  auto u = Ok(R"(
    int main() {
      char word[30], *line;
      int a = 3, b;
      double d = 1.5;
      return 0;
    })");
  const Stmt& body = *u->functions[0]->body;
  ASSERT_EQ(body.kind, StmtKind::kBlock);
  const Stmt& decl = *body.stmts[0];
  ASSERT_EQ(decl.kind, StmtKind::kDecl);
  ASSERT_EQ(decl.decls.size(), 2u);
  EXPECT_EQ(decl.decls[0].type, Type::ArrayOf(Scalar::kChar, 30));
  EXPECT_EQ(decl.decls[1].type, Type::PointerTo(Scalar::kChar));
  const Stmt& decl2 = *body.stmts[1];
  EXPECT_NE(decl2.decls[0].init, nullptr);
  EXPECT_EQ(decl2.decls[1].init, nullptr);
}

TEST(Parser, ArraySizeConstantFolded) {
  auto u = Ok("int main() { char buf[10*3+2]; return 0; }");
  EXPECT_EQ(u->functions[0]->body->stmts[0]->decls[0].type.array_size, 32);
}

TEST(Parser, NonConstArraySizeThrows) {
  EXPECT_THROW(Parse("int main() { int n = 3; char b[n]; return 0; }"),
               ParseError);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto u = Ok("int main() { int x; x = 1 + 2 * 3; return x; }");
  const Expr& assign = *u->functions[0]->body->stmts[1]->expr;
  ASSERT_EQ(assign.kind, ExprKind::kAssign);
  const Expr& rhs = *assign.b;
  ASSERT_EQ(rhs.kind, ExprKind::kBinary);
  EXPECT_EQ(rhs.bin_op, BinOp::kAdd);
  EXPECT_EQ(rhs.b->bin_op, BinOp::kMul);
}

TEST(Parser, AssignmentRightAssociative) {
  auto u = Ok("int main() { int a; int b; a = b = 1; return a; }");
  const Expr& e = *u->functions[0]->body->stmts[2]->expr;
  ASSERT_EQ(e.kind, ExprKind::kAssign);
  EXPECT_EQ(e.b->kind, ExprKind::kAssign);
}

TEST(Parser, CastExpression) {
  auto u = Ok("int main() { char *p; p = (char*) malloc(10); return 0; }");
  const Expr& assign = *u->functions[0]->body->stmts[1]->expr;
  EXPECT_EQ(assign.b->kind, ExprKind::kCast);
  EXPECT_EQ(assign.b->cast_type, Type::PointerTo(Scalar::kChar));
}

TEST(Parser, SizeofTypeAndExpr) {
  auto u = Ok(R"(int main() {
    int a; a = sizeof(double);
    int b[4]; a = sizeof b;
    return a; })");
  const Expr& s1 = *u->functions[0]->body->stmts[1]->expr->b;
  EXPECT_EQ(s1.kind, ExprKind::kSizeof);
  EXPECT_EQ(s1.cast_type.scalar, Scalar::kDouble);
}

TEST(Parser, ControlFlowForms) {
  auto u = Ok(R"(int main() {
    int i, s; s = 0;
    for (i = 0; i < 10; i++) s += i;
    while (s > 0) { s--; if (s == 5) break; else continue; }
    do { s++; } while (s < 3);
    return s; })");
  const auto& stmts = u->functions[0]->body->stmts;
  EXPECT_EQ(stmts[2]->kind, StmtKind::kFor);
  EXPECT_EQ(stmts[3]->kind, StmtKind::kWhile);
  EXPECT_EQ(stmts[4]->kind, StmtKind::kDoWhile);
}

TEST(Parser, ForWithDeclInit) {
  auto u = Ok("int main() { for (int i = 0; i < 4; ++i) { } return 0; }");
  const Stmt& f = *u->functions[0]->body->stmts[0];
  ASSERT_EQ(f.kind, StmtKind::kFor);
  EXPECT_EQ(f.init_stmt->kind, StmtKind::kDecl);
}

TEST(Parser, TernaryExpression) {
  auto u = Ok("int main() { int a; a = 1 ? 2 : 3; return a; }");
  EXPECT_EQ(u->functions[0]->body->stmts[1]->expr->b->kind,
            ExprKind::kTernary);
}

TEST(Parser, PragmaAttachesToWhile) {
  auto u = Ok(R"(
int main() {
  char word[30];
  int one;
  #pragma mapreduce mapper key(word) value(one) kvpairs(10)
  while (1) { break; }
  return 0;
})");
  const Stmt& loop = *u->functions[0]->body->stmts[2];
  ASSERT_EQ(loop.kind, StmtKind::kWhile);
  ASSERT_NE(loop.directive, nullptr);
  EXPECT_EQ(loop.directive->kind, Directive::Kind::kMapper);
  EXPECT_EQ(loop.directive->Arg("key"), "word");
  EXPECT_EQ(loop.directive->Arg("value"), "one");
  EXPECT_EQ(loop.directive->Arg("kvpairs"), "10");
}

TEST(Parser, PragmaAttachesToBlock) {
  auto u = Ok(R"(
int main() {
  char prev[30]; int count;
  #pragma mapreduce combiner key(prev) value(count) keyin(prev) valuein(count) \
    firstprivate(prev, count)
  {
    while (0) { }
  }
  return 0;
})");
  const Stmt& blk = *u->functions[0]->body->stmts[2];
  ASSERT_EQ(blk.kind, StmtKind::kBlock);
  ASSERT_NE(blk.directive, nullptr);
  EXPECT_EQ(blk.directive->kind, Directive::Kind::kCombiner);
  const auto& fp = blk.directive->clauses.at("firstprivate");
  ASSERT_EQ(fp.size(), 2u);
  EXPECT_EQ(fp[0], "prev");
  EXPECT_EQ(fp[1], "count");
}

TEST(Parser, PragmaOnPlainStatementThrows) {
  EXPECT_THROW(Parse(R"(
int main() {
  int x;
  #pragma mapreduce mapper key(x) value(x)
  x = 1;
  return 0;
})"),
               ParseError);
}

TEST(Parser, NonMapreducePragmaIgnored) {
  auto u = Ok(R"(
int main() {
  #pragma once something
  int x;
  x = 1;
  return x;
})");
  EXPECT_EQ(u->functions[0]->body->stmts[0]->kind, StmtKind::kDecl);
}

TEST(ParseDirective, RejectsMalformed) {
  EXPECT_THROW(ParseDirective("mapreduce mapper key", 1), ParseError);
  EXPECT_THROW(ParseDirective("mapreduce key(a)", 1), ParseError);
  EXPECT_THROW(ParseDirective("mapreduce mapper key(a) key(b)", 1),
               ParseError);
}

TEST(ParseDirective, NullForOtherPragmas) {
  EXPECT_EQ(ParseDirective("omp parallel for", 1), nullptr);
}

TEST(Parser, ErrorsCarryLocation) {
  try {
    Parse("int main() { int x = ; }");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("parse error"), std::string::npos);
  }
}

TEST(Parser, MissingSemicolonThrows) {
  EXPECT_THROW(Parse("int main() { int x x = 1; }"), ParseError);
}

}  // namespace
}  // namespace hd::minic
