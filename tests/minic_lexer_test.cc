#include <gtest/gtest.h>

#include "minic/lexer.h"

namespace hd::minic {
namespace {

std::vector<Tok> Kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const auto& t : Lex(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto toks = Lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::kEof);
}

TEST(Lexer, Identifiers) {
  auto toks = Lex("foo _bar baz42");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz42");
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(Kinds("int char while"),
            (std::vector<Tok>{Tok::kKwInt, Tok::kKwChar, Tok::kKwWhile,
                              Tok::kEof}));
}

TEST(Lexer, IntLiterals) {
  auto toks = Lex("0 42 0x1F");
  EXPECT_EQ(toks[0].int_value, 0);
  EXPECT_EQ(toks[1].int_value, 42);
  EXPECT_EQ(toks[2].int_value, 31);
}

TEST(Lexer, FloatLiterals) {
  auto toks = Lex("1.5 2e3 0.5f 3.");
  EXPECT_EQ(toks[0].kind, Tok::kFloatLit);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(toks[2].float_value, 0.5);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 3.0);
}

TEST(Lexer, StringEscapes) {
  auto toks = Lex(R"("a\tb\n" "\\" "\0")");
  EXPECT_EQ(toks[0].text, "a\tb\n");
  EXPECT_EQ(toks[1].text, "\\");
  EXPECT_EQ(toks[2].text, std::string(1, '\0'));
}

TEST(Lexer, CharLiterals) {
  auto toks = Lex(R"('a' '\0' '\t')");
  EXPECT_EQ(toks[0].int_value, 'a');
  EXPECT_EQ(toks[1].int_value, 0);
  EXPECT_EQ(toks[2].int_value, '\t');
}

TEST(Lexer, OperatorsMaximalMunch) {
  EXPECT_EQ(Kinds("++ + += == = <= << <"),
            (std::vector<Tok>{Tok::kPlusPlus, Tok::kPlus, Tok::kPlusAssign,
                              Tok::kEq, Tok::kAssign, Tok::kLe, Tok::kShl,
                              Tok::kLt, Tok::kEof}));
}

TEST(Lexer, CommentsSkipped) {
  EXPECT_EQ(Kinds("a // comment\n b /* multi\nline */ c"),
            (std::vector<Tok>{Tok::kIdent, Tok::kIdent, Tok::kIdent,
                              Tok::kEof}));
}

TEST(Lexer, PragmaCapturedAsSingleToken) {
  auto toks = Lex("#pragma mapreduce mapper key(word) value(one)\nint x;");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kPragma);
  EXPECT_EQ(toks[0].text, "mapreduce mapper key(word) value(one)");
  EXPECT_EQ(toks[1].kind, Tok::kKwInt);
}

TEST(Lexer, PragmaLineContinuation) {
  auto toks = Lex("#pragma mapreduce mapper key(word) \\\n value(one)\n");
  ASSERT_EQ(toks[0].kind, Tok::kPragma);
  EXPECT_NE(toks[0].text.find("value(one)"), std::string::npos);
  EXPECT_NE(toks[0].text.find("key(word)"), std::string::npos);
}

TEST(Lexer, IncludesSkipped) {
  auto toks = Lex("#include <stdio.h>\nint main");
  EXPECT_EQ(toks[0].kind, Tok::kKwInt);
}

TEST(Lexer, TracksLineNumbers) {
  auto toks = Lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("\"abc"), LexError);
}

TEST(Lexer, UnknownCharThrows) { EXPECT_THROW(Lex("int @"), LexError); }

TEST(Lexer, UnterminatedCommentThrows) {
  EXPECT_THROW(Lex("/* nope"), LexError);
}

}  // namespace
}  // namespace hd::minic
