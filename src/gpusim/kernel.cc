#include "gpusim/kernel.h"

#include <algorithm>

#include "common/check.h"

namespace hd::gpusim {

using minic::MemSpace;
using minic::OpClass;

KernelSim::KernelSim(const DeviceConfig& config, int num_blocks,
                     int threads_per_block, std::string name)
    : config_(config),
      num_blocks_(num_blocks),
      threads_per_block_(threads_per_block),
      name_(std::move(name)) {
  HD_CHECK(num_blocks > 0);
  HD_CHECK(threads_per_block > 0);
  lanes_.resize(static_cast<std::size_t>(num_blocks) * threads_per_block);
  hooks_.resize(lanes_.size());
  texture_caches_.reserve(config_.num_sms);
  for (int i = 0; i < config_.num_sms; ++i) {
    texture_caches_.emplace_back(config_.texture_cache_lines,
                                 config_.mem_line_bytes);
  }
}

LaneStats& KernelSim::Lane(int block, int lane) {
  HD_CHECK(block >= 0 && block < num_blocks_);
  HD_CHECK(lane >= 0 && lane < threads_per_block_);
  return lanes_[static_cast<std::size_t>(block) * threads_per_block_ + lane];
}

minic::ExecHooks& KernelSim::Hooks(int block, int lane) {
  auto& slot =
      hooks_[static_cast<std::size_t>(block) * threads_per_block_ + lane];
  if (!slot) slot = std::make_unique<LaneHooks>(this, block, lane);
  return *slot;
}

void KernelSim::ChargeOp(int block, int lane, OpClass op, std::int64_t count) {
  double per;
  switch (op) {
    case OpClass::kIntAlu: per = config_.cycles_int_alu; break;
    case OpClass::kIntMul: per = config_.cycles_int_mul; break;
    case OpClass::kIntDiv: per = config_.cycles_int_div; break;
    case OpClass::kFloatAlu: per = config_.cycles_float_alu; break;
    case OpClass::kFloatDiv: per = config_.cycles_float_div; break;
    case OpClass::kSpecial: per = config_.cycles_special; break;
    case OpClass::kBranch: per = config_.cycles_branch; break;
    case OpClass::kCall: per = config_.cycles_call; break;
    default: per = 1.0; break;
  }
  Lane(block, lane).compute_cycles += per * static_cast<double>(count);
}

void KernelSim::ChargeSharedAtomic(int block, int lane) {
  LaneStats& s = Lane(block, lane);
  s.mem_cycles += config_.atomic_shared;
  ++s.shared_atomic_ops;
  ++shared_atomics_;
}

void KernelSim::ChargeGlobalAtomic(int block, int lane) {
  LaneStats& s = Lane(block, lane);
  s.mem_cycles += config_.atomic_global;
  ++s.global_atomic_ops;
  ++global_atomics_;
}

void KernelSim::ChargeGlobalAccess(int block, int lane, const void* obj_id,
                                   std::int64_t byte_offset,
                                   std::int64_t bytes, bool vectorizable) {
  if (bytes <= 0) return;
  LaneStats& s = Lane(block, lane);
  const bool vec = vectorizable && vectorization_enabled_;
  const std::int64_t line_bytes = config_.mem_line_bytes;
  const std::int64_t first = byte_offset / line_bytes;
  const std::int64_t last = (byte_offset + bytes - 1) / line_bytes;
  // Every access issues at least L1-hit latency; lines beyond the lane's
  // most recent one additionally pay the DRAM miss.
  const std::int64_t accesses =
      vec ? (bytes + config_.vector_width_bytes - 1) /
                config_.vector_width_bytes
          : bytes;
  s.mem_requests += accesses;
  s.bytes_requested += bytes;
  s.mem_cycles += static_cast<double>(accesses) * config_.l1_latency;
  s.compute_cycles += static_cast<double>(accesses) * config_.cycles_mem_issue;
  for (std::int64_t line = first; line <= last; ++line) {
    if (s.TouchLine(obj_id, line)) continue;  // hit
    s.mem_cycles += config_.global_latency - config_.l1_latency;
    ++s.transactions;
    s.bytes_moved += line_bytes;
  }
}

void KernelSim::ChargeGlobalBytes(int block, int lane, std::int64_t bytes,
                                  bool vectorized, std::int64_t granule_bytes) {
  if (bytes <= 0) return;
  LaneStats& s = Lane(block, lane);
  const bool vec = vectorized && vectorization_enabled_;
  if (granule_bytes <= 0) granule_bytes = bytes;
  const std::int64_t line_bytes = config_.mem_line_bytes;
  // Each granule-sized run starts at an unrelated address: one DRAM miss
  // per line it spans; accesses within a line hit on chip.
  const std::int64_t runs = (bytes + granule_bytes - 1) / granule_bytes;
  const std::int64_t lines_per_run =
      (granule_bytes + line_bytes - 1) / line_bytes;
  const std::int64_t misses = runs * lines_per_run;
  const std::int64_t accesses =
      vec ? (bytes + config_.vector_width_bytes - 1) /
                config_.vector_width_bytes
          : bytes;
  s.mem_requests += accesses;
  s.bytes_requested += bytes;
  s.mem_cycles += static_cast<double>(accesses) * config_.l1_latency +
                  static_cast<double>(misses) *
                      (config_.global_latency - config_.l1_latency);
  s.compute_cycles += static_cast<double>(accesses) * config_.cycles_mem_issue;
  s.transactions += misses;
  s.bytes_moved += misses * line_bytes;
  // A bulk stream displaces the lane's tracked lines.
  s.DropLines();
}

void KernelSim::DistributeUnits(
    std::int64_t total_units,
    const std::function<void(int block, int lane, std::int64_t units)>& fn) {
  if (total_units <= 0) return;
  const std::int64_t lanes_total =
      static_cast<std::int64_t>(num_blocks_) * threads_per_block_;
  const std::int64_t base = total_units / lanes_total;
  const std::int64_t extra = total_units % lanes_total;
  std::int64_t i = 0;
  for (int b = 0; b < num_blocks_; ++b) {
    for (int t = 0; t < threads_per_block_; ++t, ++i) {
      const std::int64_t units = base + (i < extra ? 1 : 0);
      if (units > 0) fn(b, t, units);
    }
  }
}

void KernelSim::ChargeTexture(int block, int lane, const void* obj_id,
                              std::int64_t byte_offset, std::int64_t bytes) {
  if (bytes <= 0) return;
  const int sm = block % config_.num_sms;
  const int misses = texture_caches_[sm].Access(obj_id, byte_offset, bytes);
  const std::int64_t lines =
      (byte_offset + bytes - 1) / config_.mem_line_bytes -
      byte_offset / config_.mem_line_bytes + 1;
  LaneStats& s = Lane(block, lane);
  s.mem_cycles += misses * config_.global_latency +
                  static_cast<double>(lines - misses) *
                      config_.texture_hit_latency;
  s.compute_cycles += static_cast<double>(lines) * config_.cycles_mem_issue;
  s.transactions += lines;
  s.bytes_moved += static_cast<std::int64_t>(misses) * config_.mem_line_bytes;
}

void KernelSim::ChargeShared(int block, int lane, std::int64_t accesses) {
  LaneStats& s = Lane(block, lane);
  s.shared_accesses += accesses;
  s.mem_cycles += static_cast<double>(accesses) * config_.shared_latency;
  s.compute_cycles +=
      static_cast<double>(accesses) * config_.cycles_mem_issue;
}

void LaneHooks::OnOp(OpClass op, std::int64_t count) {
  kernel_->ChargeOp(block_, lane_, op, count);
}

void LaneHooks::OnMemAccess(const minic::MemObject& obj, std::int64_t index,
                            std::int64_t elem_count, bool is_write,
                            bool vectorizable) {
  const std::int64_t bytes = elem_count * obj.elem_bytes();
  switch (obj.space()) {
    case MemSpace::kDeviceLocal:
      // Private scalars/arrays compile to registers or L1-resident local
      // memory: charge pipeline cost only.
      kernel_->Lane(block_, lane_).compute_cycles +=
          static_cast<double>(elem_count);
      return;
    case MemSpace::kDeviceShared:
      kernel_->ChargeShared(block_, lane_, elem_count);
      return;
    case MemSpace::kDeviceConstant:
      kernel_->Lane(block_, lane_).mem_cycles +=
          kernel_->config_.constant_latency;
      return;
    case MemSpace::kDeviceTexture:
      HD_CHECK_MSG(!is_write, "write to texture memory object '"
                                  << obj.name() << "'");
      kernel_->ChargeTexture(block_, lane_, &obj, index * obj.elem_bytes(),
                             bytes);
      return;
    case MemSpace::kDeviceGlobal:
      kernel_->ChargeGlobalAccess(block_, lane_, &obj,
                                  index * obj.elem_bytes(), bytes,
                                  vectorizable);
      return;
    case MemSpace::kHost:
      HD_CHECK_MSG(false, "GPU kernel '" << kernel_->name()
                                         << "' touched host object '"
                                         << obj.name() << "'");
  }
}

KernelReport KernelSim::Finish() const {
  KernelReport r;
  const int warp = config_.warp_size;
  const int warps_per_block = (threads_per_block_ + warp - 1) / warp;
  std::vector<double> sm_cycles(config_.num_sms, 0.0);
  // Per-SM accumulation: an SM issues its resident warps' instructions
  // back-to-back (compute sums), overlaps memory latency across all warps
  // assigned to it (up to the residency limit), and cannot finish before
  // its slowest single lane (SIMD straggler).
  std::vector<double> sm_compute(config_.num_sms, 0.0);
  std::vector<double> sm_mem(config_.num_sms, 0.0);
  std::vector<double> sm_critical(config_.num_sms, 0.0);
  std::vector<int> sm_warps(config_.num_sms, 0);
  std::int64_t global_atomics_total = 0;
  std::int64_t global_atomics_max_lane = 0;
  for (int b = 0; b < num_blocks_; ++b) {
    const int sm = b % config_.num_sms;
    for (int w = 0; w < warps_per_block; ++w) {
      double warp_max_compute = 0.0;
      double warp_lane_compute = 0.0;
      int warp_lanes = 0;
      std::int64_t warp_shared_atomics = 0;
      std::int64_t warp_shared_atomics_max = 0;
      for (int t = w * warp; t < std::min((w + 1) * warp, threads_per_block_);
           ++t) {
        const LaneStats& s =
            lanes_[static_cast<std::size_t>(b) * threads_per_block_ + t];
        warp_max_compute = std::max(warp_max_compute, s.compute_cycles);
        warp_lane_compute += s.compute_cycles;
        ++warp_lanes;
        warp_shared_atomics += s.shared_atomic_ops;
        warp_shared_atomics_max =
            std::max(warp_shared_atomics_max, s.shared_atomic_ops);
        global_atomics_total += s.global_atomic_ops;
        global_atomics_max_lane =
            std::max(global_atomics_max_lane, s.global_atomic_ops);
        sm_mem[sm] += s.mem_cycles;
        sm_critical[sm] =
            std::max(sm_critical[sm], s.compute_cycles + s.mem_cycles);
        r.transactions += s.transactions;
        r.bytes_moved += s.bytes_moved;
        r.mem_requests += s.mem_requests;
        r.bytes_requested += s.bytes_requested;
        r.shared_accesses += s.shared_accesses;
      }
      sm_compute[sm] += warp_max_compute;
      r.compute_cycles += warp_max_compute;
      r.warp_issue_cycles += warp_max_compute * warp_lanes;
      r.lane_compute_cycles += warp_lane_compute;
      // Lockstep atomics to the warp's shared counter serialize: one lane
      // per round proceeds conflict-free, the rest wait.
      r.shared_bank_conflicts +=
          warp_shared_atomics - warp_shared_atomics_max;
    }
    sm_warps[sm] += warps_per_block;
  }
  r.atomic_conflicts = global_atomics_total - global_atomics_max_lane;
  for (int sm = 0; sm < config_.num_sms; ++sm) {
    r.mem_cycles += sm_mem[sm];
    const double hiding = std::max(
        1, std::min(sm_warps[sm], config_.max_resident_warps));
    sm_cycles[sm] =
        std::max({sm_compute[sm], sm_mem[sm] / hiding, sm_critical[sm]});
  }
  double device_cycles = *std::max_element(sm_cycles.begin(), sm_cycles.end());
  // Device-wide DRAM bandwidth roof.
  r.dram_roof_cycles =
      static_cast<double>(r.bytes_moved) / config_.dram_bytes_per_cycle;
  device_cycles = std::max(device_cycles, r.dram_roof_cycles);
  r.device_cycles = device_cycles;
  r.sm_busy_cycles = sm_cycles;
  r.elapsed_sec = config_.launch_overhead_sec +
                  device_cycles / (config_.core_clock_ghz * 1e9);
  for (const auto& cache : texture_caches_) {
    r.texture_hits += cache.hits();
    r.texture_misses += cache.misses();
  }
  r.shared_atomics = shared_atomics_;
  r.global_atomics = global_atomics_;
  return r;
}

}  // namespace hd::gpusim
