# Empty dependencies file for hd_sched.
# This may be replaced when dependencies are built.
