#include "analysis/infer.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/passes.h"
#include "minic/lexer.h"
#include "minic/parser.h"
#include "minic/sema.h"

namespace hd::analysis {

using minic::AccumSite;
using minic::AssignOp;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;

const char* LoopClassName(LoopClass c) {
  switch (c) {
    case LoopClass::kMapEmission: return "map-emission";
    case LoopClass::kKeyedReduction: return "keyed-reduction";
    case LoopClass::kNotParallelizable: return "not-parallelizable";
  }
  return "?";
}

namespace {

constexpr const char* kPass = "infer";

// ---------------------------------------------------------------------------
// Pragma stripping.
// ---------------------------------------------------------------------------

bool IsMapreducePragma(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return false;
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 6, "pragma") != 0) return false;
  i = line.find_first_not_of(" \t", i + 6);
  return i != std::string::npos && line.compare(i, 9, "mapreduce") == 0;
}

bool EndsWithBackslash(const std::string& line) {
  const std::size_t i = line.find_last_not_of(" \t");
  return i != std::string::npos && line[i] == '\\';
}

std::vector<std::string> SplitLines(const std::string& source) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    if (nl == std::string::npos) {
      if (pos < source.size()) lines.push_back(source.substr(pos));
      break;
    }
    lines.push_back(source.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

std::string StripDirectives(const std::string& source) {
  const std::vector<std::string> lines = SplitLines(source);
  std::vector<std::string> kept;
  kept.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!IsMapreducePragma(lines[i])) {
      kept.push_back(lines[i]);
      continue;
    }
    while (EndsWithBackslash(lines[i]) && i + 1 < lines.size()) ++i;
  }
  return JoinLines(kept);
}

namespace {

// ---------------------------------------------------------------------------
// Candidate discovery.
// ---------------------------------------------------------------------------

// One loop nest that could carry a mapreduce directive: the attachment
// statement (while loop or block) plus the record/KV loop whose iterations
// would become GPU threads.
struct Candidate {
  const Stmt* region = nullptr;
  const Stmt* loop = nullptr;
  bool is_mapper = false;
};

void WalkExprTree(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  if (e.a) WalkExprTree(*e.a, fn);
  if (e.b) WalkExprTree(*e.b, fn);
  if (e.c) WalkExprTree(*e.c, fn);
  for (const auto& arg : e.args) WalkExprTree(*arg, fn);
}

void WalkStmtExprs(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  if (s.expr) WalkExprTree(*s.expr, fn);
  if (s.step) WalkExprTree(*s.step, fn);
  for (const auto& d : s.decls) {
    if (d.init) WalkExprTree(*d.init, fn);
  }
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub) WalkStmtExprs(*sub, fn);
  }
  for (const auto& sub : s.stmts) WalkStmtExprs(*sub, fn);
}

bool ExprCallsAny(const Expr& e, std::initializer_list<const char*> names) {
  bool found = false;
  WalkExprTree(e, [&](const Expr& sub) {
    if (found || sub.kind != ExprKind::kCall) return;
    for (const char* n : names) {
      if (sub.string_value == n) found = true;
    }
  });
  return found;
}

bool IsLoop(const Stmt& s) {
  return s.kind == StmtKind::kWhile || s.kind == StmtKind::kDoWhile;
}

bool CondCallsAny(const Stmt& s, std::initializer_list<const char*> names) {
  return s.expr != nullptr && ExprCallsAny(*s.expr, names);
}

// First while/do-while under `s` whose condition consumes the sorted KV
// stream; null when there is none.
const Stmt* FindKvLoop(const Stmt& s) {
  if (IsLoop(s) && CondCallsAny(s, {"scanf", "getKV"})) return &s;
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub != nullptr) {
      if (const Stmt* found = FindKvLoop(*sub)) return found;
    }
  }
  for (const auto& sub : s.stmts) {
    if (const Stmt* found = FindKvLoop(*sub)) return found;
  }
  return nullptr;
}

bool ContainsRecordLoop(const Stmt& s) {
  if (IsLoop(s) && CondCallsAny(s, {"getline", "getRecord"})) return true;
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub != nullptr && ContainsRecordLoop(*sub)) return true;
  }
  for (const auto& sub : s.stmts) {
    if (ContainsRecordLoop(*sub)) return true;
  }
  return false;
}

void FindCandidates(const Stmt& s, std::vector<Candidate>* out,
                    std::vector<const Stmt*>* annotated) {
  if (s.directive != nullptr) {
    annotated->push_back(&s);
    return;  // hands off regions the programmer already annotated
  }
  if (IsLoop(s) && CondCallsAny(s, {"getline", "getRecord"})) {
    out->push_back({&s, &s, /*is_mapper=*/true});
    return;
  }
  if (IsLoop(s) && CondCallsAny(s, {"scanf", "getKV"})) {
    out->push_back({&s, &s, /*is_mapper=*/false});
    return;
  }
  if (s.kind == StmtKind::kBlock) {
    // A declaration-free block wrapping a KV loop (the combiner idiom: loop
    // plus trailing group flush) is the attachment point; a block that
    // declares variables or reads records is just scoping — descend.
    const bool has_decls =
        std::any_of(s.stmts.begin(), s.stmts.end(), [](const auto& sub) {
          return sub->kind == StmtKind::kDecl;
        });
    if (!has_decls && !ContainsRecordLoop(s)) {
      if (const Stmt* loop = FindKvLoop(s)) {
        out->push_back({&s, loop, /*is_mapper=*/false});
        return;
      }
    }
    for (const auto& sub : s.stmts) FindCandidates(*sub, out, annotated);
    return;
  }
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub != nullptr) FindCandidates(*sub, out, annotated);
  }
}

// ---------------------------------------------------------------------------
// Emission-shape inference.
// ---------------------------------------------------------------------------

// Accepts exactly the translator's emitKV idiom: a two-conversion format
// "%<spec>\t%<spec>\n" (escapes already decoded by the lexer).
bool IsKvFormat(const std::string& fmt) {
  const std::size_t tab = fmt.find('\t');
  if (tab == std::string::npos || fmt.find('\t', tab + 1) != std::string::npos)
    return false;
  if (fmt.empty() || fmt.back() != '\n') return false;
  auto one_conversion = [](const std::string& seg) {
    if (seg.size() < 2 || seg[0] != '%') return false;
    if (seg.find('%', 1) != std::string::npos) return false;
    return std::isalpha(static_cast<unsigned char>(seg.back())) != 0;
  };
  return one_conversion(fmt.substr(0, tab)) &&
         one_conversion(fmt.substr(tab + 1, fmt.size() - tab - 2));
}

struct EmissionSite {
  std::string key, value;
  int line = 0, col = 0;
};

struct ShapeResult {
  std::vector<EmissionSite> sites;
  bool rejected = false;  // an HD609 was reported
};

ShapeResult CollectEmissions(const Stmt& region, const std::string& file,
                             const char* region_kind, DiagnosticEngine* de) {
  ShapeResult out;
  WalkStmtExprs(region, [&](const Expr& e) {
    if (e.kind != ExprKind::kCall || e.string_value != "printf") return;
    if (e.args.empty() || e.args[0]->kind != ExprKind::kStringLit) {
      de->Error("HD609", kPass, file, e.line, e.col,
                std::string("printf in the candidate ") + region_kind +
                    " region has a non-literal format: the emission shape "
                    "cannot be inferred",
                "emit with printf(\"%s\\t%d\\n\", key, value)");
      out.rejected = true;
      return;
    }
    const std::string& fmt = e.args[0]->string_value;
    if (!IsKvFormat(fmt) || e.args.size() != 3 ||
        e.args[1]->kind != ExprKind::kVarRef ||
        e.args[2]->kind != ExprKind::kVarRef) {
      de->Error("HD609", kPass, file, e.line, e.col,
                std::string("printf in the candidate ") + region_kind +
                    " region is not a \"key\\tvalue\\n\" emission of two "
                    "plain variables",
                "every printf inside the region becomes an emitKV call; "
                "format exactly one key and one value field");
      out.rejected = true;
      return;
    }
    out.sites.push_back({e.args[1]->string_value, e.args[2]->string_value,
                         e.line, e.col});
  });
  return out;
}

// keyin/valuein: the first two data arguments of the scanf consuming the
// sorted KV stream (stripping &).
struct InputShape {
  std::string keyin, valuein;
  int line = 0, col = 0;
  bool ok = false;
};

const std::string* ScanfArgVar(const Expr& arg) {
  if (arg.kind == ExprKind::kVarRef) return &arg.string_value;
  if (arg.kind == ExprKind::kUnary && arg.un_op == minic::UnOp::kAddrOf &&
      arg.a->kind == ExprKind::kVarRef) {
    return &arg.a->string_value;
  }
  return nullptr;
}

InputShape FindInputShape(const Stmt& loop, const std::string& file,
                          DiagnosticEngine* de) {
  InputShape out;
  bool reported = false;
  WalkStmtExprs(loop, [&](const Expr& e) {
    if (out.ok || reported) return;
    if (e.kind != ExprKind::kCall ||
        (e.string_value != "scanf" && e.string_value != "getKV")) {
      return;
    }
    if (e.args.size() < 3) {
      de->Error("HD609", kPass, file, e.line, e.col,
                "combiner input scanf must read at least a key and a value "
                "field from the sorted KV stream",
                "scan with scanf(\"%s %d\", key, &val)");
      reported = true;
      return;
    }
    const std::string* k = ScanfArgVar(*e.args[1]);
    const std::string* v = ScanfArgVar(*e.args[2]);
    if (k == nullptr || v == nullptr) {
      de->Error("HD609", kPass, file, e.line, e.col,
                "combiner scanf key/value arguments must be plain variables "
                "(optionally address-taken)",
                "scan directly into the declared key buffer and value "
                "variable");
      reported = true;
      return;
    }
    out.keyin = *k;
    out.valuein = *v;
    out.line = e.line;
    out.col = e.col;
    out.ok = true;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Reduction-pattern matcher over the loop-carried write sites.
// ---------------------------------------------------------------------------

enum class SiteClass { kAssociative, kReset, kNonAssociative };

const char* AssignOpName(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAdd: return "+";
    case AssignOp::kSub: return "-";
    case AssignOp::kMul: return "*";
    case AssignOp::kDiv: return "/";
    case AssignOp::kMod: return "%";
  }
  return "?";
}

// Commutative/associative reduction operators: +, *, ++ always; integer -
// and -- accumulate a sum of negated operands; / and % reorder-unsafe; a
// comparison-guarded rebind is the min/max idiom; plain assignments that do
// not read the old value reset the accumulator at group boundaries.
SiteClass ClassifySite(const AccumSite& s, bool floating) {
  if (s.increment) return SiteClass::kAssociative;
  if (s.decrement) {
    return floating ? SiteClass::kNonAssociative : SiteClass::kAssociative;
  }
  if (s.via_builtin) return SiteClass::kReset;
  switch (s.op) {
    case AssignOp::kAdd:
    case AssignOp::kMul:
      return SiteClass::kAssociative;
    case AssignOp::kSub:
      return floating ? SiteClass::kNonAssociative : SiteClass::kAssociative;
    case AssignOp::kDiv:
    case AssignOp::kMod:
      return SiteClass::kNonAssociative;
    case AssignOp::kAssign:
      if (s.minmax_guarded) return SiteClass::kAssociative;
      if (!s.rhs_reads_self) return SiteClass::kReset;
      return SiteClass::kNonAssociative;
  }
  return SiteClass::kNonAssociative;
}

const char* SiteOpName(const AccumSite& s) {
  if (s.increment) return "++";
  if (s.decrement) return "--";
  if (s.minmax_guarded) return "min/max";
  return AssignOpName(s.op);
}

struct CarriedVerdict {
  bool allowed = false;       // combiner may keep it (firstprivate)
  bool reduction = false;     // all writes are associative accumulation
  bool aliasing = false;      // array with element write sites
  const AccumSite* bad_site = nullptr;  // first non-associative site
};

CarriedVerdict JudgeCarried(const std::string& name,
                            const minic::LoopDepInfo& dep, const Type& t) {
  CarriedVerdict v;
  auto it = dep.accum_sites.find(name);
  const std::vector<AccumSite>* sites =
      it != dep.accum_sites.end() ? &it->second : nullptr;
  if (t.is_array || t.is_pointer) {
    const bool element =
        sites != nullptr &&
        std::any_of(sites->begin(), sites->end(),
                    [](const AccumSite& s) { return s.element; });
    v.aliasing = element;
    // Whole-array rebinds (strcpy into a char[] tracker) are reset-style.
    v.allowed = !element && sites != nullptr &&
                std::all_of(sites->begin(), sites->end(), [&](const AccumSite& s) {
                  return ClassifySite(s, t.IsFloating()) != SiteClass::kNonAssociative;
                });
    return v;
  }
  if (sites == nullptr || sites->empty()) return v;  // escaped: unknown
  bool any_assoc = false;
  for (const AccumSite& s : *sites) {
    switch (ClassifySite(s, t.IsFloating())) {
      case SiteClass::kAssociative:
        any_assoc = true;
        break;
      case SiteClass::kReset:
        break;
      case SiteClass::kNonAssociative:
        if (v.bad_site == nullptr) v.bad_site = &s;
        break;
    }
  }
  if (v.bad_site != nullptr) return v;
  v.allowed = true;
  v.reduction = any_assoc;
  return v;
}

// ---------------------------------------------------------------------------
// Clause synthesis.
// ---------------------------------------------------------------------------

struct Clause {
  std::string text;        // "key(word)"
  std::string provenance;  // HD602 note body
};

bool IsCharArray(const Type& t) {
  return t.is_array && t.scalar == minic::Scalar::kChar && t.array_size > 0;
}

std::string DirectiveText(bool is_mapper, const std::vector<Clause>& clauses) {
  std::string out = std::string("#pragma mapreduce ") +
                    (is_mapper ? "mapper" : "combiner");
  for (const auto& c : clauses) {
    out += ' ';
    out += c.text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// The per-candidate synthesis pipeline.
// ---------------------------------------------------------------------------

struct Synthesis {
  bool ok = false;
  InferredRegion region;
};

Synthesis SynthesizeCandidate(const minic::FunctionDef& fn,
                              const Candidate& cand, const InferOptions& opts,
                              DiagnosticEngine* de) {
  const std::string& file = opts.source_name;
  const char* kind_name = cand.is_mapper ? "mapper" : "combiner";
  Synthesis out;
  out.region.is_mapper = cand.is_mapper;
  out.region.line = cand.region->line;

  const minic::RegionInfo info = minic::AnalyzeRegion(fn, *cand.region);
  const minic::LoopDepInfo dep = minic::AnalyzeLoopDependence(fn, *cand.loop);

  // 1. Emission shape: every printf in the region must be a KV emission and
  //    all sites must agree on the (key, value) pair.
  ShapeResult shape = CollectEmissions(*cand.region, file, kind_name, de);
  if (shape.rejected) return out;
  if (shape.sites.empty()) {
    de->Error("HD604", kPass, file, cand.region->line, cand.region->col,
              std::string("candidate ") + kind_name +
                  " region never emits a KV pair (no printf on any path)",
              "emit with printf(\"%s\\t%d\\n\", key, value) — the translator "
              "rewrites it to emitKV");
    return out;
  }
  const EmissionSite& first = shape.sites.front();
  for (const EmissionSite& s : shape.sites) {
    if (s.key != first.key || s.value != first.value) {
      de->Error("HD605", kPass, file, s.line, s.col,
                "emission sites disagree on the KV pair: (" + first.key +
                    ", " + first.value + ") at " + std::to_string(first.line) +
                    ":" + std::to_string(first.col) + " vs (" + s.key + ", " +
                    s.value + ")",
                "a region emits exactly one key variable and one value "
                "variable");
      return out;
    }
  }

  // 2. Combiner input shape (keyin/valuein).
  InputShape input;
  if (!cand.is_mapper) {
    input = FindInputShape(*cand.loop, file, de);
    if (!input.ok) return out;
  }

  // 3. Loop-carried dependence test / reduction matcher.
  std::vector<std::string> firstprivate;
  bool dep_rejected = false;
  for (const std::string& name : dep.carried) {
    const Type& t = dep.region.outer_types.at(name);
    const CarriedVerdict verdict = JudgeCarried(name, dep, t);
    auto first_read = dep.region.first_use.find(name);
    const int rline = first_read != dep.region.first_use.end()
                          ? first_read->second.first
                          : cand.loop->line;
    const int rcol = first_read != dep.region.first_use.end()
                         ? first_read->second.second
                         : 0;
    if (cand.is_mapper) {
      // Mapper threads each own one record: any carry between iterations
      // breaks the parallelization, associative or not.
      if (verdict.aliasing) {
        de->Error("HD608", kPass, file, rline, rcol,
                  "write-after-read aliasing on outer array '" + name +
                      "': the loop reads state an earlier iteration's "
                      "element write produced",
                  "cross-record aggregation must flow through emitKV "
                  "(printf) and the combiner/reducer");
      } else if (verdict.allowed && verdict.reduction) {
        de->Error("HD606", kPass, file, rline, rcol,
                  "'" + name + "' is a loop-carried reduction across records "
                      "('" + SiteOpName(dep.accum_sites.at(name).front()) +
                      "' accumulation): a mapper must be dependence-free",
                  "emit the per-record partial as a KV pair and sum it in a "
                  "combiner");
      } else {
        de->Error("HD606", kPass, file, rline, rcol,
                  "loop-carried dependence on '" + name +
                      "': each iteration reads the value the previous "
                      "iteration wrote",
                  "records must be independently processable to run one per "
                  "GPU thread");
      }
      dep_rejected = true;
      continue;
    }
    // Combiner threads own contiguous key groups of the sorted stream, so
    // the key-group tracker and associative accumulators are legal carries.
    if (name == first.key || verdict.allowed) {
      firstprivate.push_back(name);
      continue;
    }
    if (verdict.aliasing) {
      de->Error("HD608", kPass, file, rline, rcol,
                "write-after-read aliasing on outer array '" + name +
                    "' in the combiner loop",
                "aggregate through scalar accumulators or emit and re-reduce");
      dep_rejected = true;
    } else if (verdict.bad_site != nullptr) {
      de->Error("HD607", kPass, file, verdict.bad_site->line,
                verdict.bad_site->col,
                "reduction into '" + name + "' uses non-associative '" +
                    SiteOpName(*verdict.bad_site) + "' on " +
                    minic::TypeName(dep.region.outer_types.at(name)) +
                    ": combining partial results in a different order "
                    "changes the output",
                "rewrite as an associative accumulation (+, *, min, max) or "
                "keep this stage in the sequential reducer");
      dep_rejected = true;
    } else {
      de->Error("HD606", kPass, file, rline, rcol,
                "loop-carried dependence on '" + name +
                    "': the update is not a recognizable reduction",
                "only key-group trackers and associative accumulators may "
                "carry values between incoming pairs");
      dep_rejected = true;
    }
  }
  if (dep_rejected) return out;

  // 4. Clause synthesis.
  std::vector<Clause> clauses;
  auto loc = [](int line, int col) {
    return std::to_string(line) + ":" + std::to_string(col);
  };
  clauses.push_back({"key(" + first.key + ")",
                     "key(" + first.key + "): emitted as the first printf "
                     "field at " + loc(first.line, first.col)});
  clauses.push_back({"value(" + first.value + ")",
                     "value(" + first.value + "): emitted as the second "
                     "printf field at " + loc(first.line, first.col)});
  if (!cand.is_mapper) {
    clauses.push_back({"keyin(" + input.keyin + ")",
                       "keyin(" + input.keyin + "): first scanf field of the "
                       "incoming KV stream at " + loc(input.line, input.col)});
    clauses.push_back({"valuein(" + input.valuein + ")",
                       "valuein(" + input.valuein + "): second scanf field "
                       "of the incoming KV stream at " +
                       loc(input.line, input.col)});
  }
  auto add_length = [&](const char* clause, const std::string& var) {
    auto t = info.outer_types.find(var);
    if (t == info.outer_types.end() || !IsCharArray(t->second)) return;
    const std::string n = std::to_string(t->second.array_size);
    clauses.push_back({std::string(clause) + "(" + n + ")",
                       std::string(clause) + "(" + n + "): '" + var +
                       "' is declared char[" + n + "]"});
  };
  add_length("keylength", first.key);
  add_length("vallength", first.value);
  if (cand.is_mapper) {
    const Stmt* per_record =
        cand.region->body ? cand.region->body.get() : cand.region;
    const EmitShape es = ComputeEmitShape(*per_record);
    if (es.max_path == 1 && !es.in_loop) {
      clauses.push_back({"kvpairs(1)",
                         "kvpairs(1): every path through the record body "
                         "emits at most one pair"});
    }
    // Texture hints mirror hdlint's HD402 eligibility: read-only fixed
    // arrays with indexed reads, excluding the emitted pair.
    std::vector<std::string> texture;
    for (const std::string& name : info.used_outer) {
      if (name == first.key || name == first.value) continue;
      const Type& t = info.outer_types.at(name);
      if (!t.is_array || t.array_size <= 0) continue;
      if (!info.never_written.count(name)) continue;
      if (!info.indexed_read.count(name)) continue;
      texture.push_back(name);
    }
    if (!texture.empty()) {
      std::string args;
      for (const auto& name : texture) {
        if (!args.empty()) args += ", ";
        args += name;
      }
      clauses.push_back({"texture(" + args + ")",
                         "texture(" + args + "): read-only array(s) with "
                         "indexed reads, never written in the region"});
    }
  } else if (!firstprivate.empty()) {
    std::sort(firstprivate.begin(), firstprivate.end());
    std::string args;
    for (const auto& name : firstprivate) {
      if (!args.empty()) args += ", ";
      args += name;
    }
    std::string why;
    for (const auto& name : firstprivate) {
      if (!why.empty()) why += "; ";
      if (name == first.key) {
        why += "'" + name + "' tracks the current key group";
      } else {
        why += "'" + name + "' is an associative accumulator ('" +
               SiteOpName(dep.accum_sites.at(name).front()) + "')";
      }
    }
    clauses.push_back({"firstprivate(" + args + ")",
                       "firstprivate(" + args + "): carried across incoming "
                       "pairs — " + why});
  }

  out.ok = true;
  out.region.cls = cand.is_mapper ? LoopClass::kMapEmission
                                  : LoopClass::kKeyedReduction;
  out.region.directive = DirectiveText(cand.is_mapper, clauses);

  de->Note("HD601", kPass, file, cand.region->line, 0,
           std::string("classified ") + LoopClassName(out.region.cls) +
               "; synthesized: " + out.region.directive);
  if (opts.provenance_notes) {
    for (const auto& c : clauses) {
      de->Note("HD602", kPass, file, cand.region->line, 0, c.provenance);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Source rewriting.
// ---------------------------------------------------------------------------

// Inserts each directive above its region line, matching the region's
// indentation and wrapping long directives with backslash continuations
// (the lexer folds them back into one pragma line).
std::string InsertDirectives(
    const std::string& source,
    std::vector<std::pair<int, std::string>> inserts) {
  std::vector<std::string> lines = SplitLines(source);
  std::sort(inserts.begin(), inserts.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [line_no, directive] : inserts) {
    const std::size_t idx =
        std::min<std::size_t>(line_no > 0 ? line_no - 1 : 0, lines.size());
    std::string indent;
    if (idx < lines.size()) {
      const std::size_t ws = lines[idx].find_first_not_of(" \t");
      indent = lines[idx].substr(0, ws == std::string::npos ? 0 : ws);
    }
    std::vector<std::string> wrapped;
    std::istringstream toks(directive);
    std::string tok, current;
    while (toks >> tok) {
      if (current.empty()) {
        current = indent + tok;
      } else if (current.size() + 1 + tok.size() > 76) {
        wrapped.push_back(current + " \\");
        current = indent + "  " + tok;
      } else {
        current += ' ';
        current += tok;
      }
    }
    if (!current.empty()) wrapped.push_back(current);
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(idx),
                 wrapped.begin(), wrapped.end());
  }
  return JoinLines(lines);
}

}  // namespace

InferResult InferDirectives(const std::string& source,
                            const InferOptions& opts) {
  InferResult result;
  result.stripped_source =
      opts.strip_existing ? StripDirectives(source) : source;
  result.annotated_source = result.stripped_source;
  try {
    result.unit = minic::Parse(result.stripped_source);
  } catch (const std::exception& e) {
    result.diags.Error("HD001", "parse", opts.source_name, 0, 0,
                       std::string("cannot parse source: ") + e.what());
    return result;
  }

  const minic::FunctionDef* main_fn = result.unit->FindFunction("main");
  if (main_fn == nullptr) {
    result.diags.Error("HD603", kPass, opts.source_name, 0, 0,
                       "program has no main(): nothing to infer",
                       "HeteroDoop filters are whole programs with a main() "
                       "entry");
    return result;
  }

  std::vector<Candidate> candidates;
  std::vector<const Stmt*> annotated;
  for (const auto& s : main_fn->body->stmts) {
    FindCandidates(*s, &candidates, &annotated);
  }

  for (const Stmt* s : annotated) {
    result.diags.Note("HD610", kPass, opts.source_name, s->directive->line, 0,
                      "region already carries a mapreduce directive; left "
                      "unchanged",
                      "run with --strip to discard it and re-infer");
    InferredRegion r;
    r.cls = s->directive->kind == minic::Directive::Kind::kMapper
                ? LoopClass::kMapEmission
                : LoopClass::kKeyedReduction;
    r.is_mapper = s->directive->kind == minic::Directive::Kind::kMapper;
    r.line = s->line;
    r.already_annotated = true;
    result.regions.push_back(std::move(r));
  }
  if (candidates.empty() && annotated.empty()) {
    result.diags.Error("HD603", kPass, opts.source_name, main_fn->line, 0,
                       "no candidate record loop found in main(): nothing to "
                       "parallelize",
                       "mappers read records with a getline/getRecord while "
                       "loop; combiners consume the sorted stream with "
                       "scanf/getKV");
    return result;
  }

  std::vector<std::pair<int, std::string>> inserts;
  int synthesized = 0;
  for (const Candidate& cand : candidates) {
    Synthesis s = SynthesizeCandidate(*main_fn, cand, opts, &result.diags);
    if (s.ok) {
      ++synthesized;
      inserts.emplace_back(s.region.line, s.region.directive);
    }
    result.regions.push_back(std::move(s.region));
  }
  result.diags.SortBySource();

  if (!inserts.empty()) {
    result.annotated_source =
        InsertDirectives(result.stripped_source, std::move(inserts));
  }
  result.ok =
      !result.diags.HasErrors() && (synthesized > 0 || !annotated.empty());
  return result;
}

}  // namespace hd::analysis
