
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/config.cc" "src/gpusim/CMakeFiles/hd_gpusim.dir/config.cc.o" "gcc" "src/gpusim/CMakeFiles/hd_gpusim.dir/config.cc.o.d"
  "/root/repo/src/gpusim/kernel.cc" "src/gpusim/CMakeFiles/hd_gpusim.dir/kernel.cc.o" "gcc" "src/gpusim/CMakeFiles/hd_gpusim.dir/kernel.cc.o.d"
  "/root/repo/src/gpusim/texture_cache.cc" "src/gpusim/CMakeFiles/hd_gpusim.dir/texture_cache.cc.o" "gcc" "src/gpusim/CMakeFiles/hd_gpusim.dir/texture_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/hd_minic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
