#include "minic/parser.h"

#include <cctype>
#include <sstream>

#include "common/check.h"
#include "minic/lexer.h"

namespace hd::minic {

const std::string& Directive::Arg(const std::string& clause) const {
  auto it = clauses.find(clause);
  HD_CHECK_MSG(it != clauses.end(), "missing clause '" << clause << "'");
  HD_CHECK_MSG(it->second.size() == 1,
               "clause '" << clause << "' expects one argument");
  return it->second[0];
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::unique_ptr<TranslationUnit> ParseUnit() {
    auto unit = std::make_unique<TranslationUnit>();
    while (!At(Tok::kEof)) {
      if (Accept(Tok::kSemi)) continue;
      unit->functions.push_back(ParseFunction());
    }
    return unit;
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Next() const { return toks_[pos_ + 1 < toks_.size() ? pos_ + 1 : pos_]; }
  bool At(Tok k) const { return Cur().kind == k; }
  bool Accept(Tok k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token Expect(Tok k) {
    if (!At(k)) {
      Fail(std::string("expected ") + TokName(k) + ", found " +
           TokName(Cur().kind));
    }
    return toks_[pos_++];
  }
  [[noreturn]] void Fail(const std::string& msg) const {
    std::ostringstream os;
    os << "parse error at " << Cur().line << ":" << Cur().col << ": " << msg;
    throw ParseError(os.str());
  }

  bool AtTypeKeyword() const {
    switch (Cur().kind) {
      case Tok::kKwInt:
      case Tok::kKwChar:
      case Tok::kKwFloat:
      case Tok::kKwDouble:
      case Tok::kKwVoid:
      case Tok::kKwLong:
      case Tok::kKwUnsigned:
      case Tok::kKwConst:
      case Tok::kKwSizeT:
        return true;
      default:
        return false;
    }
  }

  // Parses the base scalar type (const/unsigned/long decorations folded).
  Scalar ParseBaseType() {
    while (Accept(Tok::kKwConst) || Accept(Tok::kKwUnsigned)) {
    }
    Scalar s;
    switch (Cur().kind) {
      case Tok::kKwInt: s = Scalar::kInt; break;
      case Tok::kKwChar: s = Scalar::kChar; break;
      case Tok::kKwFloat: s = Scalar::kFloat; break;
      case Tok::kKwDouble: s = Scalar::kDouble; break;
      case Tok::kKwVoid: s = Scalar::kVoid; break;
      case Tok::kKwLong: s = Scalar::kInt; break;
      case Tok::kKwSizeT: s = Scalar::kInt; break;
      default: Fail("expected a type");
    }
    ++pos_;
    // 'long long', 'long int', 'unsigned int' tails.
    while (Accept(Tok::kKwLong) || Accept(Tok::kKwInt)) {
    }
    while (Accept(Tok::kKwConst)) {
    }
    return s;
  }

  // --- declarations --------------------------------------------------------

  std::unique_ptr<FunctionDef> ParseFunction() {
    auto fn = std::make_unique<FunctionDef>();
    fn->line = Cur().line;
    Scalar base = ParseBaseType();
    Type ret{base, false, false, 0};
    if (Accept(Tok::kStar)) ret = Type::PointerTo(base);
    fn->return_type = ret;
    fn->name = Expect(Tok::kIdent).text;
    Expect(Tok::kLParen);
    if (!At(Tok::kRParen)) {
      if (At(Tok::kKwVoid) && Next().kind == Tok::kRParen) {
        ++pos_;  // 'void' parameter list
      } else {
        do {
          fn->params.push_back(ParseParam());
        } while (Accept(Tok::kComma));
      }
    }
    Expect(Tok::kRParen);
    fn->body = ParseBlock();
    return fn;
  }

  Param ParseParam() {
    Scalar base = ParseBaseType();
    Type t{base, false, false, 0};
    while (Accept(Tok::kStar)) t = Type::PointerTo(base);
    Param p;
    p.name = Expect(Tok::kIdent).text;
    if (Accept(Tok::kLBracket)) {
      // Array parameters decay to pointers; a size, if present, is ignored.
      if (!At(Tok::kRBracket)) ParseExpr();
      Expect(Tok::kRBracket);
      t = Type::PointerTo(base);
    }
    p.type = t;
    return p;
  }

  // --- statements ----------------------------------------------------------

  StmtPtr ParseBlock() {
    const int line = Cur().line, col = Cur().col;  // the '{' itself
    Expect(Tok::kLBrace);
    auto blk = std::make_unique<Stmt>(StmtKind::kBlock, line, col);
    while (!At(Tok::kRBrace)) {
      if (At(Tok::kEof)) Fail("unterminated block");
      blk->stmts.push_back(ParseStmt());
    }
    Expect(Tok::kRBrace);
    return blk;
  }

  StmtPtr ParseStmt() {
    if (At(Tok::kPragma)) {
      Token p = toks_[pos_++];
      auto dir = ParseDirective(p.text, p.line);
      StmtPtr s = ParseStmt();
      if (dir) {
        if (s->kind != StmtKind::kWhile && s->kind != StmtKind::kBlock &&
            s->kind != StmtKind::kFor) {
          Fail("mapreduce directive must precede a while loop or a block");
        }
        s->directive = std::move(dir);
      }
      return s;
    }
    if (At(Tok::kLBrace)) return ParseBlock();
    if (AtTypeKeyword()) return ParseDeclStmt();
    switch (Cur().kind) {
      case Tok::kKwIf: return ParseIf();
      case Tok::kKwWhile: return ParseWhile();
      case Tok::kKwDo: return ParseDoWhile();
      case Tok::kKwFor: return ParseFor();
      case Tok::kKwReturn: {
        auto s = std::make_unique<Stmt>(StmtKind::kReturn, Cur().line, Cur().col);
        ++pos_;
        if (!At(Tok::kSemi)) s->expr = ParseExpr();
        Expect(Tok::kSemi);
        return s;
      }
      case Tok::kKwBreak: {
        auto s = std::make_unique<Stmt>(StmtKind::kBreak, Cur().line, Cur().col);
        ++pos_;
        Expect(Tok::kSemi);
        return s;
      }
      case Tok::kKwContinue: {
        auto s = std::make_unique<Stmt>(StmtKind::kContinue, Cur().line, Cur().col);
        ++pos_;
        Expect(Tok::kSemi);
        return s;
      }
      default: {
        auto s = std::make_unique<Stmt>(StmtKind::kExpr, Cur().line, Cur().col);
        s->expr = ParseExpr();
        Expect(Tok::kSemi);
        return s;
      }
    }
  }

  StmtPtr ParseDeclStmt() {
    auto s = std::make_unique<Stmt>(StmtKind::kDecl, Cur().line, Cur().col);
    Scalar base = ParseBaseType();
    do {
      Declarator d;
      Type t{base, false, false, 0};
      while (Accept(Tok::kStar)) t = Type::PointerTo(base);
      d.name = Expect(Tok::kIdent).text;
      if (Accept(Tok::kLBracket)) {
        ExprPtr size = ParseExpr();
        Expect(Tok::kRBracket);
        t = Type::ArrayOf(base, FoldConstInt(*size));
      }
      d.type = t;
      if (Accept(Tok::kAssign)) d.init = ParseAssign();
      s->decls.push_back(std::move(d));
    } while (Accept(Tok::kComma));
    Expect(Tok::kSemi);
    return s;
  }

  StmtPtr ParseIf() {
    auto s = std::make_unique<Stmt>(StmtKind::kIf, Cur().line, Cur().col);
    Expect(Tok::kKwIf);
    Expect(Tok::kLParen);
    s->expr = ParseExpr();
    Expect(Tok::kRParen);
    s->then_stmt = ParseStmt();
    if (Accept(Tok::kKwElse)) s->else_stmt = ParseStmt();
    return s;
  }

  StmtPtr ParseWhile() {
    auto s = std::make_unique<Stmt>(StmtKind::kWhile, Cur().line, Cur().col);
    Expect(Tok::kKwWhile);
    Expect(Tok::kLParen);
    s->expr = ParseExpr();
    Expect(Tok::kRParen);
    s->body = ParseStmt();
    return s;
  }

  StmtPtr ParseDoWhile() {
    auto s = std::make_unique<Stmt>(StmtKind::kDoWhile, Cur().line, Cur().col);
    Expect(Tok::kKwDo);
    s->body = ParseStmt();
    Expect(Tok::kKwWhile);
    Expect(Tok::kLParen);
    s->expr = ParseExpr();
    Expect(Tok::kRParen);
    Expect(Tok::kSemi);
    return s;
  }

  StmtPtr ParseFor() {
    auto s = std::make_unique<Stmt>(StmtKind::kFor, Cur().line, Cur().col);
    Expect(Tok::kKwFor);
    Expect(Tok::kLParen);
    if (!At(Tok::kSemi)) {
      if (AtTypeKeyword()) {
        s->init_stmt = ParseDeclStmt();  // consumes ';'
      } else {
        auto init = std::make_unique<Stmt>(StmtKind::kExpr, Cur().line, Cur().col);
        init->expr = ParseExpr();
        Expect(Tok::kSemi);
        s->init_stmt = std::move(init);
      }
    } else {
      Expect(Tok::kSemi);
    }
    if (!At(Tok::kSemi)) s->expr = ParseExpr();
    Expect(Tok::kSemi);
    if (!At(Tok::kRParen)) s->step = ParseExpr();
    Expect(Tok::kRParen);
    s->body = ParseStmt();
    return s;
  }

  // --- expressions ---------------------------------------------------------
  // Full expressions use the comma-free C precedence ladder. The top-level
  // ParseExpr is assignment (we never need the comma operator).

  ExprPtr ParseExpr() { return ParseAssign(); }

  ExprPtr ParseAssign() {
    ExprPtr lhs = ParseTernary();
    AssignOp op;
    switch (Cur().kind) {
      case Tok::kAssign: op = AssignOp::kAssign; break;
      case Tok::kPlusAssign: op = AssignOp::kAdd; break;
      case Tok::kMinusAssign: op = AssignOp::kSub; break;
      case Tok::kStarAssign: op = AssignOp::kMul; break;
      case Tok::kSlashAssign: op = AssignOp::kDiv; break;
      case Tok::kPercentAssign: op = AssignOp::kMod; break;
      default: return lhs;
    }
    int line = Cur().line, col = Cur().col;
    ++pos_;
    auto e = std::make_unique<Expr>(ExprKind::kAssign, line, col);
    e->assign_op = op;
    e->a = std::move(lhs);
    e->b = ParseAssign();
    return e;
  }

  ExprPtr ParseTernary() {
    ExprPtr cond = ParseBinary(0);
    if (!At(Tok::kQuestion)) return cond;
    int line = Cur().line, col = Cur().col;
    ++pos_;
    auto e = std::make_unique<Expr>(ExprKind::kTernary, line, col);
    e->a = std::move(cond);
    e->b = ParseExpr();
    Expect(Tok::kColon);
    e->c = ParseTernary();
    return e;
  }

  // Precedence climbing over binary operators.
  static int Prec(Tok t) {
    switch (t) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq: case Tok::kNe: return 6;
      case Tok::kLt: case Tok::kGt: case Tok::kLe: case Tok::kGe: return 7;
      case Tok::kShl: case Tok::kShr: return 8;
      case Tok::kPlus: case Tok::kMinus: return 9;
      case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
      default: return -1;
    }
  }

  static BinOp ToBinOp(Tok t) {
    switch (t) {
      case Tok::kOrOr: return BinOp::kOr;
      case Tok::kAndAnd: return BinOp::kAnd;
      case Tok::kPipe: return BinOp::kBitOr;
      case Tok::kCaret: return BinOp::kBitXor;
      case Tok::kAmp: return BinOp::kBitAnd;
      case Tok::kEq: return BinOp::kEq;
      case Tok::kNe: return BinOp::kNe;
      case Tok::kLt: return BinOp::kLt;
      case Tok::kGt: return BinOp::kGt;
      case Tok::kLe: return BinOp::kLe;
      case Tok::kGe: return BinOp::kGe;
      case Tok::kShl: return BinOp::kShl;
      case Tok::kShr: return BinOp::kShr;
      case Tok::kPlus: return BinOp::kAdd;
      case Tok::kMinus: return BinOp::kSub;
      case Tok::kStar: return BinOp::kMul;
      case Tok::kSlash: return BinOp::kDiv;
      case Tok::kPercent: return BinOp::kMod;
      default: HD_CHECK_MSG(false, "not a binary operator"); return BinOp::kAdd;
    }
  }

  ExprPtr ParseBinary(int min_prec) {
    ExprPtr lhs = ParseUnary();
    for (;;) {
      int prec = Prec(Cur().kind);
      if (prec < 0 || prec < min_prec) return lhs;
      Tok op_tok = Cur().kind;
      int line = Cur().line, col = Cur().col;
      ++pos_;
      ExprPtr rhs = ParseBinary(prec + 1);
      auto e = std::make_unique<Expr>(ExprKind::kBinary, line, col);
      e->bin_op = ToBinOp(op_tok);
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr ParseUnary() {
    int line = Cur().line, col = Cur().col;
    auto mk_unary = [&](UnOp op) {
      ++pos_;
      auto e = std::make_unique<Expr>(ExprKind::kUnary, line, col);
      e->un_op = op;
      e->a = ParseUnary();
      return e;
    };
    switch (Cur().kind) {
      case Tok::kMinus: return mk_unary(UnOp::kNeg);
      case Tok::kBang: return mk_unary(UnOp::kNot);
      case Tok::kTilde: return mk_unary(UnOp::kBitNot);
      case Tok::kStar: return mk_unary(UnOp::kDeref);
      case Tok::kAmp: return mk_unary(UnOp::kAddrOf);
      case Tok::kPlusPlus: return mk_unary(UnOp::kPreInc);
      case Tok::kMinusMinus: return mk_unary(UnOp::kPreDec);
      case Tok::kPlus: ++pos_; return ParseUnary();
      case Tok::kKwSizeof: {
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::kSizeof, line, col);
        if (At(Tok::kLParen) && IsTypeTok(Next().kind)) {
          ++pos_;
          e->cast_type = ParseTypeName();
          Expect(Tok::kRParen);
        } else {
          e->a = ParseUnary();
        }
        return e;
      }
      case Tok::kLParen:
        if (IsTypeTok(Next().kind)) {
          // Cast expression: (type) unary
          ++pos_;
          Type t = ParseTypeName();
          Expect(Tok::kRParen);
          auto e = std::make_unique<Expr>(ExprKind::kCast, line, col);
          e->cast_type = t;
          e->a = ParseUnary();
          return e;
        }
        break;
      default:
        break;
    }
    return ParsePostfix();
  }

  static bool IsTypeTok(Tok t) {
    switch (t) {
      case Tok::kKwInt: case Tok::kKwChar: case Tok::kKwFloat:
      case Tok::kKwDouble: case Tok::kKwVoid: case Tok::kKwLong:
      case Tok::kKwUnsigned: case Tok::kKwConst: case Tok::kKwSizeT:
        return true;
      default:
        return false;
    }
  }

  Type ParseTypeName() {
    Scalar base = ParseBaseType();
    Type t{base, false, false, 0};
    while (Accept(Tok::kStar)) t = Type::PointerTo(base);
    return t;
  }

  ExprPtr ParsePostfix() {
    ExprPtr e = ParsePrimary();
    for (;;) {
      int line = Cur().line, col = Cur().col;
      if (Accept(Tok::kLBracket)) {
        auto idx = std::make_unique<Expr>(ExprKind::kIndex, line, col);
        idx->a = std::move(e);
        idx->b = ParseExpr();
        Expect(Tok::kRBracket);
        e = std::move(idx);
      } else if (At(Tok::kPlusPlus) || At(Tok::kMinusMinus)) {
        auto u = std::make_unique<Expr>(ExprKind::kUnary, line, col);
        u->un_op = At(Tok::kPlusPlus) ? UnOp::kPostInc : UnOp::kPostDec;
        ++pos_;
        u->a = std::move(e);
        e = std::move(u);
      } else {
        return e;
      }
    }
  }

  ExprPtr ParsePrimary() {
    int line = Cur().line, col = Cur().col;
    switch (Cur().kind) {
      case Tok::kIntLit: {
        auto e = std::make_unique<Expr>(ExprKind::kIntLit, line, col);
        e->int_value = Cur().int_value;
        ++pos_;
        return e;
      }
      case Tok::kCharLit: {
        auto e = std::make_unique<Expr>(ExprKind::kIntLit, line, col);
        e->int_value = Cur().int_value;
        ++pos_;
        return e;
      }
      case Tok::kFloatLit: {
        auto e = std::make_unique<Expr>(ExprKind::kFloatLit, line, col);
        e->float_value = Cur().float_value;
        ++pos_;
        return e;
      }
      case Tok::kStringLit: {
        auto e = std::make_unique<Expr>(ExprKind::kStringLit, line, col);
        e->string_value = Cur().text;
        ++pos_;
        return e;
      }
      case Tok::kIdent: {
        std::string name = Cur().text;
        ++pos_;
        if (At(Tok::kLParen)) {
          auto e = std::make_unique<Expr>(ExprKind::kCall, line, col);
          e->string_value = std::move(name);
          ++pos_;
          if (!At(Tok::kRParen)) {
            do {
              e->args.push_back(ParseAssign());
            } while (Accept(Tok::kComma));
          }
          Expect(Tok::kRParen);
          return e;
        }
        auto e = std::make_unique<Expr>(ExprKind::kVarRef, line, col);
        e->string_value = std::move(name);
        return e;
      }
      case Tok::kLParen: {
        ++pos_;
        ExprPtr e = ParseExpr();
        Expect(Tok::kRParen);
        return e;
      }
      default:
        Fail(std::string("unexpected token ") + TokName(Cur().kind));
    }
  }

  // Folds small constant integer expressions (array sizes).
  std::int64_t FoldConstInt(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.int_value;
      case ExprKind::kSizeof:
        if (!e.a) return ScalarSize(e.cast_type.scalar);
        break;
      case ExprKind::kUnary:
        if (e.un_op == UnOp::kNeg) return -FoldConstInt(*e.a);
        break;
      case ExprKind::kBinary: {
        std::int64_t a = FoldConstInt(*e.a), b = FoldConstInt(*e.b);
        switch (e.bin_op) {
          case BinOp::kAdd: return a + b;
          case BinOp::kSub: return a - b;
          case BinOp::kMul: return a * b;
          case BinOp::kDiv: HD_CHECK(b != 0); return a / b;
          default: break;
        }
        break;
      }
      default:
        break;
    }
    Fail("array size must be a constant integer expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<TranslationUnit> Parse(std::string_view source) {
  return Parser(Lex(source)).ParseUnit();
}

std::unique_ptr<Directive> ParseDirective(std::string_view pragma_text,
                                          int line) {
  // Tokenise the clause list with the regular lexer.
  std::vector<Token> toks = Lex(pragma_text);
  std::size_t i = 0;
  auto at_end = [&] { return toks[i].kind == Tok::kEof; };
  if (at_end() || toks[i].kind != Tok::kIdent ||
      toks[i].text != "mapreduce") {
    return nullptr;  // some other pragma; ignored
  }
  ++i;
  auto dir = std::make_unique<Directive>();
  dir->line = line;
  bool kind_seen = false;
  while (!at_end()) {
    if (toks[i].kind != Tok::kIdent) {
      throw ParseError("malformed mapreduce directive at line " +
                       std::to_string(line));
    }
    std::string name = toks[i++].text;
    if (name == "mapper" || name == "combiner") {
      dir->kind = name == "mapper" ? Directive::Kind::kMapper
                                   : Directive::Kind::kCombiner;
      kind_seen = true;
      continue;
    }
    // clause '(' arg (',' arg)* ')'
    if (toks[i].kind != Tok::kLParen) {
      throw ParseError("clause '" + name + "' expects arguments at line " +
                       std::to_string(line));
    }
    ++i;
    std::vector<std::string> args;
    while (toks[i].kind != Tok::kRParen) {
      if (toks[i].kind == Tok::kIdent) {
        args.push_back(toks[i].text);
      } else if (toks[i].kind == Tok::kIntLit) {
        args.push_back(std::to_string(toks[i].int_value));
      } else {
        throw ParseError("bad argument in clause '" + name + "' at line " +
                         std::to_string(line));
      }
      ++i;
      if (toks[i].kind == Tok::kComma) ++i;
    }
    ++i;  // ')'
    if (dir->clauses.count(name)) {
      throw ParseError("duplicate clause '" + name + "' at line " +
                       std::to_string(line));
    }
    dir->clauses.emplace(std::move(name), std::move(args));
  }
  if (!kind_seen) {
    throw ParseError("mapreduce directive needs 'mapper' or 'combiner'");
  }
  return dir;
}

std::string TypeName(const Type& t) {
  std::string base;
  switch (t.scalar) {
    case Scalar::kVoid: base = "void"; break;
    case Scalar::kChar: base = "char"; break;
    case Scalar::kInt: base = "int"; break;
    case Scalar::kFloat: base = "float"; break;
    case Scalar::kDouble: base = "double"; break;
  }
  if (t.is_pointer) return base + "*";
  if (t.is_array) return base + "[" + std::to_string(t.array_size) + "]";
  return base;
}

}  // namespace hd::minic
