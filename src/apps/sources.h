// Shared mini-C source fragments for the benchmark filters.
#pragma once

#include <string>

namespace hd::apps {

// Word extractor used by the text benchmarks (Listing 1's getWord): skips
// non-alphanumerics, copies up to maxw-1 chars, returns chars consumed
// from `offset` or -1 at end of record.
extern const char* kGetWordSource;

// Whitespace tokenizer used by the numeric benchmarks: copies the next
// token into buf and returns the new offset, or -1 at end of record.
extern const char* kNextTokSource;

// A sum combiner/reducer over "<key> <int>" streams, emitting "key\tsum".
// `with_directive` adds the HeteroDoop combiner pragma; `key_bytes` sizes
// the key buffers (and the keylength clause).
std::string SumFilterSource(bool with_directive, int key_bytes);

}  // namespace hd::apps
