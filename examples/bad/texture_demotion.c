/* hdlint negative case: placement-audit findings (warnings only — hdlint
 * exits 0 on this file; the lost optimisations do not block translation).
 * Expect: HD402 (read-only array 'table' is indexed in the region but not
 * placed in texture memory) and HD403 (keylength(30) gives a 30-byte key
 * slot, not a multiple of 4, so KV accesses cannot vectorize to char4). */
int main() {
  char word[30];
  double score;
  double table[256];
  int i;
  for (i = 0; i < 256; i++) table[i] = i * 0.5;
#pragma mapreduce mapper key(word) value(score) keylength(30)
  while (getRecord(word)) {
    score = table[strlen(word) % 256];
    printf("%s\t%.3f\n", word, score);
  }
  return 0;
}
