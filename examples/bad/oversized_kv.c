/* hdlint negative case: kv-bounds violations.
 * Expect: HD301 (keylength exceeds the declared char array — emitKV would
 * read past the buffer) and HD303 (three emissions on one record path but
 * kvpairs(2) reserves fewer slots). */
int main() {
  char word[16];
  int one;
#pragma mapreduce mapper key(word) value(one) keylength(32) kvpairs(2)
  while (getRecord(word)) {
    one = 1;
    printf("%s\t%d\n", word, one);
    printf("%s\t%d\n", word, one);
    printf("%s\t%d\n", word, one);
  }
  return 0;
}
