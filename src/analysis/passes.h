// Internal pass interface for the hdlint analyzer. Each pass is a free
// function over the prepared regions; passes never throw — every finding
// goes through the DiagnosticEngine so one run reports all problems.
#pragma once

#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"

namespace hd::analysis {

struct PassContext {
  const minic::TranslationUnit* unit = nullptr;
  const AnalyzerOptions* opts = nullptr;
  const std::vector<RegionContext>* regions = nullptr;
};

// Table 1 clause validation (HD103..HD112).
void RunDirectiveCheck(const PassContext& ctx, DiagnosticEngine* de);
// Cross-thread write hazards (HD201..HD204).
void RunRaceCheck(const PassContext& ctx, DiagnosticEngine* de);
// KV slot sizing and kvpairs-hint consistency (HD301..HD305).
void RunKvBounds(const PassContext& ctx, DiagnosticEngine* de);
// Algorithm 1 placement audit (HD401..HD403).
void RunPlacementAudit(const PassContext& ctx, DiagnosticEngine* de);
// Constructs the GPU path cannot execute (HD501..HD504).
void RunPortability(const PassContext& ctx, DiagnosticEngine* de);

// Static emission shape per record iteration (shared by kv-bounds and the
// directive-synthesis engine): the longest straight-line emission count
// through the per-record body, plus whether any emission sits inside a
// further nested loop (statically unbounded).
struct EmitShape {
  int max_path = 0;
  bool in_loop = false;
};
EmitShape ComputeEmitShape(const minic::Stmt& per_record_body);

}  // namespace hd::analysis
