/* hdlint negative case: directive-check violations (Table 1).
 * Expect: HD105 (keyin on mapper), HD108 (non-integer kvpairs),
 * HD109 (unknown clause), HD110 (variable in two placement clauses),
 * HD111 (clause naming an unused variable) — all reported in ONE run. */
int main() {
  char word[32];
  int count;
  int lookup[16];
  int i;
  for (i = 0; i < 16; i++) lookup[i] = i;
#pragma mapreduce mapper key(word) value(count) keyin(word) kvpairs(lots) sharedRO(lookup) texture(lookup) firstprivate(ghost) cache(word)
  while (getRecord(word)) {
    count = lookup[strlen(word) % 16];
    printf("%s\t%d\n", word, count);
  }
  return 0;
}
