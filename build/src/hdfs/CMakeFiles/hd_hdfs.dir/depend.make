# Empty dependencies file for hd_hdfs.
# This may be replaced when dependencies are built.
