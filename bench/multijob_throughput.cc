// Multi-job throughput/latency sweep: open-loop Poisson streams over the
// Table 2 app mix, crossed over inter-job scheduler (FIFO / Fair /
// Capacity) x per-job policy (cpu-only / gpu-first / tail) x arrival
// rate, plus a closed-loop saturation run. This is the experiment the
// paper's Fig. 4 never exercises: how Algorithm 2's tail forcing behaves
// when many jobs contend for the same GPU slots.
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "multijob/workload.h"

int main(int argc, char** argv) {
  using namespace hd;
  using multijob::SchedulerKind;
  using multijob::WorkloadMetrics;
  using multijob::WorkloadSpec;

  bench::Reporter rep("multijob_throughput", argc, argv);
  const int num_jobs = rep.smoke() ? 8 : 40;

  // A Cluster1-flavoured slice: 8 slaves x (4 CPU slots + 1 GPU).
  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 8;
  cluster.map_slots_per_node = 4;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;

  rep.Config("num_jobs", num_jobs);
  rep.Config("num_slaves", cluster.num_slaves);
  rep.Config("map_slots_per_node", cluster.map_slots_per_node);
  rep.Config("gpus_per_node", cluster.gpus_per_node);

  const std::vector<multijob::AppTemplate> mix = multijob::Table2Mix(24, 2);
  // --scheduler / --policy narrow the sweep to a single named dimension;
  // unknown names fail fast listing the valid ones.
  const std::vector<SchedulerKind> schedulers =
      rep.scheduler().empty()
          ? std::vector<SchedulerKind>{SchedulerKind::kFifo,
                                       SchedulerKind::kFair,
                                       SchedulerKind::kCapacity}
          : std::vector<SchedulerKind>{
                multijob::SchedulerKindFromName(rep.scheduler())};
  const std::vector<sched::Policy> policies =
      rep.policy().empty()
          ? std::vector<sched::Policy>{sched::Policy::kCpuOnly,
                                       sched::Policy::kGpuFirst,
                                       sched::Policy::kTail}
          : std::vector<sched::Policy>{sched::MakePolicy(rep.policy())};
  if (!rep.scheduler().empty()) rep.Config("scheduler", rep.scheduler());
  if (!rep.policy().empty()) rep.Config("policy", rep.policy());
  // Jobs average ~24 maps x ~20 s CPU over 40 slots: lightly loaded at one
  // job per 100 s, heavily contended at one per 25 s.
  const std::vector<double> rates = {0.01, 0.04};

  rep.out() << "Multi-job throughput: " << num_jobs
            << " Poisson jobs over the Table 2 mix\n"
            << "on 8 slaves x (4 CPU slots + 1 GPU); latency includes queue\n"
            << "wait, maps, shuffle and reduce.\n\n";

  auto& t = rep.AddTable(
      "multijob_open",
      {"sched", "policy", "rate/s", "stable", "growth", "p50 s", "p95 s",
       "p99 s", "p999 s", "wait s", "makespan s", "cpu%", "gpu%", "bounces",
       "jobs/h"});
  for (double rate : rates) {
    for (SchedulerKind sk : schedulers) {
      for (sched::Policy policy : policies) {
        WorkloadSpec spec;
        spec.mode = WorkloadSpec::Mode::kOpenPoisson;
        spec.num_jobs = num_jobs;
        spec.arrival_rate_per_sec = rate;
        spec.policy = policy;
        spec.seed = 20150615;  // HPDC'15
        const WorkloadMetrics m =
            multijob::RunWorkload(cluster, sk, mix, spec);
        rep.AddModeledSeconds(m.makespan_sec);
        // An overloaded open-loop queue never converges: report the
        // queue-growth verdict alongside the percentiles so an unstable
        // row's p99 reads as "still growing at 40 jobs", not steady state.
        t.Row()
            .Cell(multijob::SchedulerKindName(sk))
            .Cell(sched::PolicyName(policy))
            .Cell(rate, 3)
            .Cell(m.OpenLoopStable() ? "yes" : "NO")
            .Cell(m.QueueWaitGrowth(), 2)
            .Cell(m.LatencyPercentile(0.50), 1)
            .Cell(m.LatencyPercentile(0.95), 1)
            .Cell(m.LatencyPercentile(0.99), 1)
            .Cell(m.LatencyPercentile(0.999), 1)
            .Cell(m.MeanQueueWait(), 1)
            .Cell(m.makespan_sec, 1)
            .Cell(100.0 * m.cpu_utilization, 1)
            .Cell(100.0 * m.gpu_utilization, 1)
            .Cell(m.gpu_bounces)
            .Cell(m.ThroughputJobsPerHour(), 1);
      }
    }
  }
  rep.Print(t);

  rep.out() << "\nClosed-loop saturation (8 jobs always in flight):\n\n";
  auto& cl = rep.AddTable(
      "multijob_closed",
      {"sched", "policy", "p50 s", "p95 s", "makespan s", "cpu%", "gpu%",
       "jobs/h"});
  for (SchedulerKind sk : schedulers) {
    for (sched::Policy policy : policies) {
      WorkloadSpec spec;
      spec.mode = WorkloadSpec::Mode::kClosedLoop;
      spec.num_jobs = num_jobs;
      spec.concurrency = 8;
      spec.policy = policy;
      spec.seed = 20150615;
      // One representative run (fair + tail) carries the structured trace
      // and registry so the multi-job DES tracks have a single pid space.
      hadoop::ClusterConfig c = cluster;
      if (sk == SchedulerKind::kFair && policy == sched::Policy::kTail) {
        c.sink = rep.sink();
        c.metrics = rep.metrics();
        c.timeseries = rep.timeseries();
      }
      const WorkloadMetrics m = multijob::RunWorkload(c, sk, mix, spec);
      rep.AddModeledSeconds(m.makespan_sec);
      cl.Row()
          .Cell(multijob::SchedulerKindName(sk))
          .Cell(sched::PolicyName(policy))
          .Cell(m.LatencyPercentile(0.50), 1)
          .Cell(m.LatencyPercentile(0.95), 1)
          .Cell(m.makespan_sec, 1)
          .Cell(100.0 * m.cpu_utilization, 1)
          .Cell(100.0 * m.gpu_utilization, 1)
          .Cell(m.ThroughputJobsPerHour(), 1);
    }
  }
  rep.Print(cl);

  rep.out() << "\nReading guide: tail >= gpu-first on p50 when load is low\n"
               "(within-job tails dominate), but under heavy arrival rates\n"
               "forced-GPU placements from overlapping job tails contend for\n"
               "the same GPU slots (bounces column) and fair/capacity spread\n"
               "the queue wait that FIFO concentrates on late arrivals.\n"
               "Rows with stable=NO never reached steady state: queue wait\n"
               "kept growing across submissions (growth column), so their\n"
               "latency percentiles describe the first 40 jobs of an\n"
               "unbounded backlog, not a converged distribution.\n";
  return rep.Finish();
}
