// DES core scaling: events/sec of the redesigned event core on a
// synthetic 10k-tracker / 1M-task trace — the million-task workload
// ROADMAP's "DES hot-path speed" item calls for, replayed directly
// against des::Scheduler so the measurement isolates the event core
// from JobTracker bookkeeping.
//
// The trace mirrors the cluster engines' event mix:
//   - per-tracker heartbeat chains (staggered offsets, one standing event
//     per tracker that reschedules itself every heartbeat_sec until the
//     horizon) — the O(pending) pressure that motivates the calendar
//     queue's O(1) amortized push/pop;
//   - one pre-scheduled task-outcome event per task at a pseudo-random
//     time in the horizon (the AttemptDone/AttemptFailed population);
//   - a speculation duel on every 16th task: the handler schedules a
//     shadow attempt and cancels the previous duel's handle, exercising
//     generation-checked cancellation on the hot path.
//
// Four cores replay it:
//   legacy    — a faithful replica of the pre-redesign EventQueue (binary
//               heap of 48-byte nodes, one heap-allocated std::function
//               per event, cancellation by dead-closure no-op). The
//               baseline the tentpole is measured against.
//   heap      — des::Scheduler reference backend: same binary-heap
//               discipline, but pooled records and 24-byte keys.
//   calendar  — the calendar-queue backend (the repo-wide default).
//   calendar+batch-hb — calendar again, with the heartbeat chains
//               collapsed to one cluster-wide chain whose tick services
//               every tracker (ClusterConfig::batch_heartbeats' shape).
//
// Every row reports *serviced* trace events per second: the logical
// heartbeats, task outcomes, and surviving shadow attempts delivered to
// handlers. A batched tick services `trackers` heartbeats at once, and a
// dead closure services nothing, so the numerator is the same modeled
// workload (2,000,001 events at full scale) for all four rows — the
// throughput column divides like-for-like.
//
// The run checksums the live event stream (FNV over time bits x a visit
// counter) and HD_CHECKs all per-tracker cores agree — legacy included.
// The redesigned core must reproduce the legacy core's event stream
// bit-identically; this is the contract every modeled pin relies on,
// asserted at million-event scale.
//
// modeled_seconds is the deterministic horizon sum (never wall-clock),
// so the suite document stays comparable across machines; the wall-clock
// throughputs are exported as "pinned." metrics, which hdprof compare
// scores against its generous pinned threshold only.
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "common/check.h"
#include "common/prng.h"
#include "common/strings.h"
#include "des/scheduler.h"

namespace {

struct TraceParams {
  int trackers = 0;
  std::int64_t tasks = 0;
  double horizon_sec = 0.0;
  double heartbeat_sec = 3.0;
  bool batch_heartbeats = false;
  std::uint64_t seed = 0;
};

// ---------------------------------------------------------------------
// The pre-redesign core, replicated verbatim from the seed's
// hadoop::EventQueue: a binary heap of {time, seq, std::function} nodes.
// Every schedule heap-allocates a closure; every pop copies one off the
// heap top; canceled work stays queued and pops as a no-op.
class LegacyQueue {
 public:
  using Fn = std::function<void()>;

  void At(double time, Fn fn) {
    heap_.push(Event{time, seq_++, std::move(fn)});
  }
  void After(double delay, Fn fn) { At(now_ + delay, std::move(fn)); }
  double now() const { return now_; }

  bool Step() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
  }
  void Run() {
    while (Step()) {
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Fn fn;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
  double now_ = 0.0;
};

// Shared replay state: one instance per (core, params) run.
struct Replay {
  hd::des::Scheduler* sched = nullptr;
  TraceParams p;
  std::uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV-1a basis
  std::uint64_t serviced = 0;  // logical trace events delivered
  hd::des::EventHandle duel;  // last speculation shadow, canceled by the next

  // Folds (now, serviced-counter) into the checksum. Only live events
  // observe, so the stream is comparable across all per-tracker cores.
  void Observe(double now) {
    checksum = (checksum ^ std::bit_cast<std::uint64_t>(now)) *
               0x100000001b3ULL;
    checksum = (checksum ^ ++serviced) * 0x100000001b3ULL;
  }
};

void ShadowEvent(void* ctx, const hd::des::Payload&) {
  Replay& r = *static_cast<Replay*>(ctx);
  r.Observe(r.sched->now());
}

void TaskEvent(void* ctx, const hd::des::Payload& pay) {
  Replay& r = *static_cast<Replay*>(ctx);
  r.Observe(r.sched->now());
  if ((pay.u0 & 15u) == 0) {
    // Speculation duel: launch a shadow attempt, kill the previous one.
    r.sched->Cancel(r.duel);
    r.duel = r.sched->After(r.p.heartbeat_sec * 0.5, &ShadowEvent, &r,
                            hd::des::Payload{pay.u0, 1});
  }
}

void HeartbeatEvent(void* ctx, const hd::des::Payload& pay) {
  Replay& r = *static_cast<Replay*>(ctx);
  // A batched tick services every tracker's heartbeat at once; a
  // per-tracker tick services one.
  if (r.p.batch_heartbeats) {
    for (int n = 0; n < r.p.trackers; ++n) r.Observe(r.sched->now());
  } else {
    r.Observe(r.sched->now());
  }
  const double next = r.sched->now() + r.p.heartbeat_sec;
  if (next < r.p.horizon_sec) {
    r.sched->At(next, &HeartbeatEvent, &r, pay);
  }
}

struct RunResult {
  std::uint64_t serviced = 0;
  std::uint64_t checksum = 0;
  double wall_sec = 0.0;
  double events_per_sec = 0.0;

  void FinishTiming(std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point stop) {
    wall_sec = std::chrono::duration<double>(stop - start).count();
    events_per_sec =
        wall_sec > 0.0 ? static_cast<double>(serviced) / wall_sec : 0.0;
  }
};

// Builds the task-event times once per run; schedule order fixes the
// (time, seq) pop order, so every core must build the trace identically:
// heartbeat chains first, then the task population.
RunResult RunTrace(const std::string& backend, const TraceParams& p) {
  const auto sched = hd::des::MakeScheduler(backend);
  Replay r;
  r.sched = sched.get();
  r.p = p;

  const int chains = p.batch_heartbeats ? 1 : p.trackers;
  for (int n = 0; n < chains; ++n) {
    const double offset = p.heartbeat_sec * (n + 1) / (chains + 1);
    sched->At(offset, &HeartbeatEvent, &r,
              hd::des::Payload{static_cast<std::uint64_t>(n), 0});
  }
  hd::Prng prng(p.seed);
  for (std::int64_t i = 0; i < p.tasks; ++i) {
    const double t = prng.NextDouble(0.0, p.horizon_sec);
    sched->At(t, &TaskEvent, &r,
              hd::des::Payload{static_cast<std::uint64_t>(i), 0});
  }

  const auto start = std::chrono::steady_clock::now();
  sched->Run();
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.serviced = r.serviced;
  out.checksum = r.checksum;
  out.FinishTiming(start, stop);
  return out;
}

// The same trace through the legacy core, in its native idiom: one
// closure per event, speculation canceled by generation-checked no-op
// closures (the dead event still pops; it just does nothing).
RunResult RunLegacyTrace(const TraceParams& p) {
  struct State {
    LegacyQueue q;
    Replay r;  // only checksum/serviced used
    TraceParams p;
    std::uint64_t duel_gen = 0;
  } s;
  s.p = p;

  std::function<void(int)> chain = [&s, &chain](int n) {
    s.r.Observe(s.q.now());
    const double next = s.q.now() + s.p.heartbeat_sec;
    if (next < s.p.horizon_sec) {
      s.q.At(next, [&chain, n] { chain(n); });
    }
  };
  for (int n = 0; n < p.trackers; ++n) {
    const double offset = p.heartbeat_sec * (n + 1) / (p.trackers + 1);
    s.q.At(offset, [&chain, n] { chain(n); });
  }
  hd::Prng prng(p.seed);
  for (std::int64_t i = 0; i < p.tasks; ++i) {
    const double t = prng.NextDouble(0.0, p.horizon_sec);
    s.q.At(t, [&s, i] {
      s.r.Observe(s.q.now());
      if ((static_cast<std::uint64_t>(i) & 15u) == 0) {
        const std::uint64_t gen = ++s.duel_gen;
        s.q.After(s.p.heartbeat_sec * 0.5, [&s, gen] {
          if (s.duel_gen != gen) return;  // canceled: dead closure no-op
          s.r.Observe(s.q.now());
        });
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  s.q.Run();
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.serviced = s.r.serviced;
  out.checksum = s.r.checksum;
  out.FinishTiming(start, stop);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hd;

  bench::Reporter rep("des_scale", argc, argv);

  TraceParams p;
  p.trackers = rep.smoke() ? 1000 : 10000;
  p.tasks = rep.smoke() ? 100000 : 1000000;
  p.horizon_sec = rep.smoke() ? 60.0 : 300.0;
  p.heartbeat_sec = 3.0;
  p.seed = rep.seed(20150615);  // HPDC'15

  rep.Config("trackers", p.trackers);
  rep.Config("tasks", static_cast<std::int64_t>(p.tasks));
  rep.Config("horizon_sec", p.horizon_sec);
  rep.Config("heartbeat_sec", p.heartbeat_sec);
  rep.Config("seed", static_cast<std::int64_t>(p.seed));

  rep.out() << "DES core scaling: " << p.trackers
            << " heartbeat chains + " << p.tasks
            << " task events over a " << p.horizon_sec
            << " s horizon, replayed on\nthe pre-redesign core (legacy: "
               "closure events on a binary heap) and the\npooled "
               "des::Scheduler backends. Every per-tracker core must "
               "deliver the\nidentical live event stream (checksum column) "
               "— the contract that keeps\nevery modeled pin bit-identical "
               "across backends.\n\n";

  auto& t = rep.AddTable("des_scale",
                         {"core", "chains", "serviced", "wall s",
                          "events/s", "checksum"});

  const RunResult legacy = RunLegacyTrace(p);
  rep.AddModeledSeconds(p.horizon_sec);
  const RunResult heap = RunTrace("heap", p);
  rep.AddModeledSeconds(p.horizon_sec);
  const RunResult calendar = RunTrace("calendar", p);
  rep.AddModeledSeconds(p.horizon_sec);
  HD_CHECK_MSG(heap.checksum == calendar.checksum &&
                   heap.serviced == calendar.serviced,
               "calendar and heap delivered different event streams");
  HD_CHECK_MSG(legacy.checksum == heap.checksum &&
                   legacy.serviced == heap.serviced,
               "pooled cores delivered a different event stream than the "
               "legacy closure core");

  TraceParams batched = p;
  batched.batch_heartbeats = true;
  const RunResult batch = RunTrace("calendar", batched);
  rep.AddModeledSeconds(p.horizon_sec);
  HD_CHECK_MSG(batch.serviced == heap.serviced,
               "batched heartbeats serviced a different logical workload");

  auto row = [&](const char* name, int chains, const RunResult& r) {
    t.Row()
        .Cell(name)
        .Cell(chains)
        .Cell(r.serviced)
        .Cell(r.wall_sec, 3)
        .Cell(r.events_per_sec, 0)
        .Cell(std::to_string(r.checksum));
  };
  row("legacy-closure-heap", p.trackers, legacy);
  row("heap", p.trackers, heap);
  row("calendar", p.trackers, calendar);
  row("calendar+batch-hb", 1, batch);
  rep.Print(t);

  // The headline: the default core (calendar queue + batched heartbeats,
  // what ClusterConfig ships) against the pre-redesign closure core, on
  // the identical modeled workload.
  const double core_speedup = legacy.events_per_sec > 0.0
                                  ? batch.events_per_sec /
                                        legacy.events_per_sec
                                  : 0.0;
  const double backend_speedup = heap.events_per_sec > 0.0
                                     ? calendar.events_per_sec /
                                           heap.events_per_sec
                                     : 0.0;
  rep.out() << "\nredesigned core (calendar + batched heartbeats) vs "
               "legacy closure core: "
            << FormatDouble(core_speedup, 1)
            << "x events/sec\ncalendar vs pooled heap backend: "
            << FormatDouble(backend_speedup, 2)
            << "x; batching collapses " << p.trackers
            << " standing heartbeat events into 1.\n";

  // Deterministic gauges (identical on every machine)...
  rep.metrics()->counter("des.events_total").Set(
      static_cast<std::int64_t>(heap.serviced));
  rep.metrics()->gauge("des.order_identical").Set(1.0);
  // ...and the wall-clock pins hdprof compare scores with its generous
  // pinned threshold: absolute default-core throughput, the redesign's
  // end-to-end speedup, and the calendar/heap backend ratio.
  rep.metrics()->gauge("pinned.des.events_per_sec")
      .Set(batch.events_per_sec);
  rep.metrics()->gauge("pinned.des.core_speedup").Set(core_speedup);
  rep.metrics()->gauge("pinned.des.calendar_speedup").Set(backend_speedup);

  rep.out() << "\nReading guide: the legacy core pays a heap allocation "
               "per scheduled\nclosure and O(log pending) per 48-byte "
               "heap node, with pending dominated\nby the standing "
               "heartbeat chains; the pooled core schedules function\n"
               "pointers into an arena, orders 24-byte keys in O(1) "
               "amortized calendar\ndays, and services every tracker from "
               "one batched tick. The pinned\nevents/sec metrics fail the "
               "bench-regress gate only on order-of-magnitude\ncollapse "
               "(machine noise never trips them).\n";
  return rep.Finish();
}
