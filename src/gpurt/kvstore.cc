#include "gpurt/kvstore.h"

#include <algorithm>

namespace hd::gpurt {

GlobalKvStore::GlobalKvStore(int num_threads, std::int64_t total_slots,
                             int key_slot_bytes, int val_slot_bytes)
    : num_threads_(num_threads),
      total_slots_(total_slots),
      slots_per_thread_(total_slots / num_threads),
      key_slot_bytes_(key_slot_bytes),
      val_slot_bytes_(val_slot_bytes),
      portions_(static_cast<std::size_t>(num_threads)) {
  HD_CHECK(num_threads > 0);
  HD_CHECK_MSG(slots_per_thread_ > 0,
               "KV store too small: " << total_slots << " slots across "
                                      << num_threads << " threads");
  HD_CHECK(key_slot_bytes > 0);
  HD_CHECK(val_slot_bytes > 0);
}

void GlobalKvStore::Emit(int thread, KvPair kv) {
  HD_CHECK(thread >= 0 && thread < num_threads_);
  auto& portion = portions_[thread];
  HD_CHECK_MSG(static_cast<std::int64_t>(portion.size()) < slots_per_thread_,
               "thread " << thread << " overflowed its KV store portion ("
                         << slots_per_thread_ << " slots)");
  HD_CHECK_MSG(static_cast<int>(kv.key.size()) <= key_slot_bytes_,
               "key '" << kv.key << "' exceeds keylength slot ("
                       << key_slot_bytes_ << ")");
  HD_CHECK_MSG(static_cast<int>(kv.value.size()) <= val_slot_bytes_,
               "value '" << kv.value << "' exceeds vallength slot ("
                         << val_slot_bytes_ << ")");
  portion.push_back(std::move(kv));
  ++total_emitted_;
}

std::int64_t GlobalKvStore::CountFor(int thread) const {
  HD_CHECK(thread >= 0 && thread < num_threads_);
  return static_cast<std::int64_t>(portions_[thread].size());
}

bool GlobalKvStore::Full(int thread) const {
  return CountFor(thread) >= slots_per_thread_;
}

std::int64_t GlobalKvStore::max_count_per_thread() const {
  std::int64_t m = 0;
  for (const auto& p : portions_) {
    m = std::max(m, static_cast<std::int64_t>(p.size()));
  }
  return m;
}

std::int64_t GlobalKvStore::UsedBoundingBoxSlots() const {
  // Slots the sort must consider without aggregation: every thread's
  // portion up to the maximum used count (the scattered-pairs bounding
  // box). Over-allocation and emission skew both widen it.
  return max_count_per_thread() * num_threads_;
}

std::int64_t GlobalKvStore::WhitespaceSlots() const {
  return UsedBoundingBoxSlots() - total_emitted_;
}

void GlobalKvStore::ChargeAggregation(gpusim::KernelSim& kernel) const {
  // Phase 1: parallel exclusive scan of the per-thread KV counts
  // (work-efficient: ~2N shared-memory ops across N = num_threads_).
  kernel.DistributeUnits(
      2 * static_cast<std::int64_t>(num_threads_),
      [&kernel](int b, int t, std::int64_t units) {
        kernel.ChargeShared(b, t, units);
        kernel.ChargeOp(b, t, minic::OpClass::kIntAlu, units);
      });
  // Phase 2: each real pair's indirection entry is read and rewritten
  // (8 bytes, streaming).
  kernel.DistributeUnits(
      total_emitted(), [&kernel](int b, int t, std::int64_t moves) {
        kernel.ChargeGlobalBytes(b, t, moves * 8, /*vectorized=*/true,
                                 /*granule_bytes=*/moves * 8);
        kernel.ChargeOp(b, t, minic::OpClass::kIntAlu, moves);
      });
}

std::vector<KvPair> GlobalKvStore::TakeAll() {
  std::vector<KvPair> out;
  out.reserve(static_cast<std::size_t>(total_emitted_));
  for (auto& p : portions_) {
    for (auto& kv : p) out.push_back(std::move(kv));
    p.clear();
  }
  total_emitted_ = 0;
  return out;
}

}  // namespace hd::gpurt
