#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark.h"
#include "gpurt/job_program.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"
#include "multijob/engine.h"
#include "multijob/metrics.h"
#include "multijob/scheduler.h"
#include "multijob/workload.h"

namespace hd::multijob {
namespace {

using hadoop::CalibratedTaskSource;
using hadoop::ClusterConfig;
using hadoop::JobState;
using sched::Policy;

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.num_slaves = 4;
  c.map_slots_per_node = 2;
  c.reduce_slots_per_node = 2;
  c.gpus_per_node = 1;
  return c;
}

CalibratedTaskSource::Params CalibParams(int maps, double cpu_sec = 12.0,
                                         double gpu_sec = 2.0) {
  CalibratedTaskSource::Params p;
  p.num_maps = maps;
  p.num_reducers = 2;
  p.cpu_task_sec = cpu_sec;
  p.gpu_task_sec = gpu_sec;
  p.variation = 0.0;
  p.reduce_sec = 1.0;
  return p;
}

JobState MakeJobState(int id, int running, int pool = 0) {
  JobState j;
  j.id = id;
  j.running_tasks = running;
  j.pool = pool;
  j.pending = {0};
  return j;
}

// --- scheduler unit tests ---------------------------------------------------

TEST(Scheduler, Names) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kFifo), "fifo");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kFair), "fair");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kCapacity), "capacity");
  EXPECT_STREQ(MakeScheduler(SchedulerKind::kFifo)->name(), "fifo");
  EXPECT_STREQ(MakeScheduler(SchedulerKind::kFair)->name(), "fair");
  EXPECT_STREQ(MakeScheduler(SchedulerKind::kCapacity)->name(), "capacity");
}

TEST(Scheduler, FifoPicksEarliestSubmission) {
  JobState a = MakeJobState(3, 0), b = MakeJobState(1, 5), c = MakeJobState(2, 0);
  std::vector<const JobState*> runnable = {&a, &b, &c};
  auto s = MakeFifoScheduler();
  EXPECT_EQ(s->PickJob(runnable, runnable), 1u);  // id 1 wins despite load
}

TEST(Scheduler, FairPicksFewestRunningTasks) {
  JobState a = MakeJobState(1, 4), b = MakeJobState(2, 1), c = MakeJobState(3, 1);
  std::vector<const JobState*> runnable = {&a, &b, &c};
  auto s = MakeFairScheduler();
  EXPECT_EQ(s->PickJob(runnable, runnable), 1u);  // fewest, earliest id
}

TEST(Scheduler, CapacityPicksUnderservedPool) {
  // Pool 0 (weight 3) runs 3 tasks, pool 1 (weight 1) runs 0: deficits are
  // 1.0 vs 0.0, so the slot goes to pool 1 even though pool 0's job is
  // older.
  JobState a = MakeJobState(1, 3, /*pool=*/0), b = MakeJobState(2, 0, 1);
  std::vector<const JobState*> runnable = {&a, &b};
  auto s = MakeCapacityScheduler({3.0, 1.0});
  EXPECT_EQ(s->PickJob(runnable, runnable), 1u);
  // After pool 1 reaches its share the weighted deficits flip.
  b.running_tasks = 2;
  EXPECT_EQ(s->PickJob(runnable, runnable), 0u);
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, NearestRankPercentiles) {
  WorkloadMetrics m;
  for (int i = 1; i <= 100; ++i) {
    JobStats s;
    s.job_id = i;
    s.submit_sec = 0.0;
    s.start_sec = 0.0;
    s.finish_sec = static_cast<double>(i);
    m.jobs.push_back(s);
  }
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(1.00), 100.0);
  EXPECT_DOUBLE_EQ(m.LatencyPercentile(0.0), 1.0);
}

// --- engine -----------------------------------------------------------------

TEST(MultiJobEngine, SingleJobMatchesJobEngine) {
  // With one job, the multi-job engine must reduce to the single-job path:
  // same pulses, same placement, same makespan, for every policy.
  for (Policy policy : {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
    CalibratedTaskSource single_src(CalibParams(64));
    hadoop::JobResult single =
        hadoop::JobEngine(SmallCluster(), &single_src, policy).Run();

    CalibratedTaskSource multi_src(CalibParams(64));
    MultiJobEngine engine(SmallCluster(), MakeFifoScheduler());
    JobSpec spec;
    spec.source = &multi_src;
    spec.policy = policy;
    engine.Submit(0.0, spec);
    WorkloadMetrics m = engine.Run();

    ASSERT_EQ(m.jobs.size(), 1u) << sched::PolicyName(policy);
    EXPECT_DOUBLE_EQ(m.jobs[0].finish_sec, single.makespan_sec)
        << sched::PolicyName(policy);
    EXPECT_EQ(m.jobs[0].result.cpu_tasks, single.cpu_tasks);
    EXPECT_EQ(m.jobs[0].result.gpu_tasks, single.gpu_tasks);
  }
}

TEST(MultiJobEngine, FifoConcurrentOutputsMatchSequentialSingleJob) {
  // N functional jobs submitted at once under FIFO must produce, per job,
  // the same final output as running each through the single-job engine.
  const std::vector<std::string> ids = {"WC", "GR", "HS"};
  ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 2;
  c.gpus_per_node = 1;
  c.heartbeat_sec = 0.01;

  std::vector<gpurt::JobProgram> programs;
  std::vector<std::vector<std::string>> split_sets;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const apps::Benchmark& b = apps::GetBenchmark(ids[i]);
    programs.push_back(
        gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source));
    std::vector<std::string> splits;
    for (int s = 0; s < 4; ++s) {
      splits.push_back(b.generate(1200, /*seed=*/100 * (i + 1) + s));
    }
    split_sets.push_back(std::move(splits));
  }

  hadoop::FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 1;
  fopts.gpu.blocks = 2;
  fopts.gpu.threads = 32;

  std::vector<std::vector<gpurt::KvPair>> sequential;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    hadoop::FunctionalTaskSource src(programs[i], split_sets[i], fopts);
    sequential.push_back(
        hadoop::JobEngine(c, &src, Policy::kGpuFirst).Run().final_output);
  }

  std::vector<std::unique_ptr<hadoop::FunctionalTaskSource>> sources;
  MultiJobEngine engine(c, MakeFifoScheduler());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    sources.push_back(std::make_unique<hadoop::FunctionalTaskSource>(
        programs[i], split_sets[i], fopts));
    JobSpec spec;
    spec.source = sources.back().get();
    spec.policy = Policy::kGpuFirst;
    spec.label = ids[i];
    engine.Submit(0.0, spec);
  }
  WorkloadMetrics m = engine.Run();

  ASSERT_EQ(m.jobs.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(m.jobs[i].label, ids[i]);
    EXPECT_EQ(m.jobs[i].result.final_output, sequential[i]) << ids[i];
  }
}

TEST(MultiJobEngine, ConcurrentJobsShareSlotsAndAllComplete) {
  std::vector<std::unique_ptr<CalibratedTaskSource>> sources;
  MultiJobEngine engine(SmallCluster(), MakeFairScheduler());
  for (int j = 0; j < 5; ++j) {
    sources.push_back(std::make_unique<CalibratedTaskSource>(CalibParams(16)));
    JobSpec spec;
    spec.source = sources.back().get();
    spec.policy = Policy::kTail;
    engine.Submit(0.0, spec);
  }
  WorkloadMetrics m = engine.Run();
  ASSERT_EQ(m.jobs.size(), 5u);
  for (const JobStats& j : m.jobs) {
    EXPECT_EQ(j.result.cpu_tasks + j.result.gpu_tasks, 16);
    EXPECT_GE(j.QueueWait(), 0.0);
    EXPECT_GT(j.Latency(), 0.0);
  }
  EXPECT_GT(m.cpu_utilization, 0.0);
  EXPECT_LE(m.cpu_utilization, 1.0 + 1e-9);
  EXPECT_GT(m.gpu_utilization, 0.0);
  EXPECT_LE(m.gpu_utilization, 1.0 + 1e-9);
}

TEST(MultiJobEngine, FairCutsShortJobLatencyUnderLongJob) {
  // One long job monopolises a FIFO queue; Fair interleaves the shorts.
  auto run = [](SchedulerKind kind) {
    ClusterConfig c;
    c.num_slaves = 2;
    c.map_slots_per_node = 2;
    c.gpus_per_node = 0;
    std::vector<std::unique_ptr<CalibratedTaskSource>> sources;
    MultiJobEngine engine(c, MakeScheduler(kind));
    sources.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(64, /*cpu_sec=*/10.0)));
    JobSpec long_spec;
    long_spec.source = sources.back().get();
    long_spec.policy = Policy::kCpuOnly;
    engine.Submit(0.0, long_spec);
    for (int j = 0; j < 3; ++j) {
      sources.push_back(std::make_unique<CalibratedTaskSource>(
          CalibParams(4, /*cpu_sec=*/10.0)));
      JobSpec spec;
      spec.source = sources.back().get();
      spec.policy = Policy::kCpuOnly;
      engine.Submit(1.0, spec);
    }
    WorkloadMetrics m = engine.Run();
    double short_latency = 0.0;
    for (std::size_t j = 1; j < m.jobs.size(); ++j) {
      short_latency += m.jobs[j].Latency();
    }
    return short_latency / 3.0;
  };
  const double fifo = run(SchedulerKind::kFifo);
  const double fair = run(SchedulerKind::kFair);
  EXPECT_LT(fair, fifo * 0.5) << "fair=" << fair << " fifo=" << fifo;
}

TEST(MultiJobEngine, CapacityQuotaFavoursHeavyPool) {
  // Two identical jobs in pools weighted 3:1 — the heavy pool's job gets
  // ~3/4 of the slots and finishes first.
  ClusterConfig c;
  c.num_slaves = 2;
  c.map_slots_per_node = 4;
  c.gpus_per_node = 0;
  std::vector<std::unique_ptr<CalibratedTaskSource>> sources;
  MultiJobEngine engine(c, MakeCapacityScheduler({3.0, 1.0}));
  for (int j = 0; j < 2; ++j) {
    sources.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(48, /*cpu_sec=*/5.0)));
    JobSpec spec;
    spec.source = sources.back().get();
    spec.policy = Policy::kCpuOnly;
    spec.pool = j;
    engine.Submit(0.0, spec);
  }
  WorkloadMetrics m = engine.Run();
  ASSERT_EQ(m.jobs.size(), 2u);
  EXPECT_LT(m.jobs[0].finish_sec, m.jobs[1].finish_sec * 0.75);
}

TEST(MultiJobEngine, ClosedLoopFeedsOnCompletionAndHoldsConcurrency) {
  const int kTotal = 9, kConcurrency = 3;
  std::vector<std::unique_ptr<CalibratedTaskSource>> sources;
  for (int j = 0; j < kTotal; ++j) {
    sources.push_back(std::make_unique<CalibratedTaskSource>(CalibParams(8)));
  }
  MultiJobEngine engine(SmallCluster(), MakeFifoScheduler());
  int next = 0;
  int max_active_seen = 0;
  engine.set_on_job_done([&](const JobStats&) {
    max_active_seen = std::max(max_active_seen, engine.active_jobs());
    if (next < kTotal) {
      JobSpec spec;
      spec.source = sources[static_cast<std::size_t>(next)].get();
      spec.policy = Policy::kTail;
      engine.Submit(engine.now(), spec);
      ++next;
    }
  });
  for (; next < kConcurrency; ++next) {
    JobSpec spec;
    spec.source = sources[static_cast<std::size_t>(next)].get();
    spec.policy = Policy::kTail;
    engine.Submit(0.0, spec);
  }
  WorkloadMetrics m = engine.Run();
  EXPECT_EQ(m.jobs.size(), static_cast<std::size_t>(kTotal));
  EXPECT_LT(max_active_seen, kConcurrency);  // one just completed
  // Later jobs were submitted mid-run, not at time zero.
  EXPECT_GT(m.jobs.back().submit_sec, 0.0);
}

TEST(MultiJobEngine, TailContentionReportsGpuBounces) {
  // Many small GPU-friendly jobs ending together: tail forcing repeatedly
  // targets busy GPUs, which the contention counter must surface.
  ClusterConfig c = SmallCluster();
  c.heartbeat_sec = 0.2;
  std::vector<std::unique_ptr<CalibratedTaskSource>> sources;
  MultiJobEngine engine(c, MakeFairScheduler());
  for (int j = 0; j < 6; ++j) {
    sources.push_back(std::make_unique<CalibratedTaskSource>(
        CalibParams(12, /*cpu_sec=*/12.0, /*gpu_sec=*/1.0)));
    JobSpec spec;
    spec.source = sources.back().get();
    spec.policy = Policy::kTail;
    engine.Submit(0.0, spec);
  }
  WorkloadMetrics m = engine.Run();
  EXPECT_GT(m.gpu_bounces, 0);
  EXPECT_GT(m.TotalGpuTasks(), 0);
}

// --- workload generator -----------------------------------------------------

TEST(Workload, Table2MixCoversAllAppsWithScaledSizes) {
  const std::vector<AppTemplate> mix = Table2Mix(32, 2);
  ASSERT_EQ(mix.size(), 8u);
  double mean = 0.0;
  for (const AppTemplate& t : mix) {
    EXPECT_GE(t.params.num_maps, 4);
    EXPECT_GT(t.params.cpu_task_sec, t.params.gpu_task_sec);
    mean += t.params.num_maps;
  }
  mean /= 8.0;
  EXPECT_NEAR(mean, 32.0, 8.0);  // rounding aside, the mix averages out
  // BS has the extreme Fig. 5 speedup.
  const auto bs = std::find_if(mix.begin(), mix.end(),
                               [](const AppTemplate& t) { return t.id == "BS"; });
  ASSERT_NE(bs, mix.end());
  EXPECT_GT(bs->params.cpu_task_sec / bs->params.gpu_task_sec, 30.0);
}

TEST(Workload, FixedSeedPoissonIsBitIdentical) {
  WorkloadSpec spec;
  spec.mode = WorkloadSpec::Mode::kOpenPoisson;
  spec.num_jobs = 12;
  spec.arrival_rate_per_sec = 0.02;
  spec.policy = Policy::kTail;
  spec.seed = 42;
  const std::vector<AppTemplate> mix = Table2Mix(16, 2);
  const WorkloadMetrics a = RunWorkload(SmallCluster(), SchedulerKind::kFair,
                                        mix, spec);
  const WorkloadMetrics b = RunWorkload(SmallCluster(), SchedulerKind::kFair,
                                        mix, spec);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].label, b.jobs[j].label);
    EXPECT_EQ(a.jobs[j].submit_sec, b.jobs[j].submit_sec);
    EXPECT_EQ(a.jobs[j].start_sec, b.jobs[j].start_sec);
    EXPECT_EQ(a.jobs[j].finish_sec, b.jobs[j].finish_sec);
    EXPECT_EQ(a.jobs[j].result.gpu_tasks, b.jobs[j].result.gpu_tasks);
  }
  EXPECT_EQ(a.makespan_sec, b.makespan_sec);
  EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
  EXPECT_EQ(a.gpu_utilization, b.gpu_utilization);
  EXPECT_EQ(a.gpu_bounces, b.gpu_bounces);
}

TEST(Workload, DifferentSeedsDiverge) {
  WorkloadSpec spec;
  spec.num_jobs = 12;
  spec.arrival_rate_per_sec = 0.02;
  spec.seed = 1;
  const std::vector<AppTemplate> mix = Table2Mix(16, 2);
  const WorkloadMetrics a = RunWorkload(SmallCluster(), SchedulerKind::kFifo,
                                        mix, spec);
  spec.seed = 2;
  const WorkloadMetrics b = RunWorkload(SmallCluster(), SchedulerKind::kFifo,
                                        mix, spec);
  EXPECT_NE(a.makespan_sec, b.makespan_sec);
}

TEST(Workload, ClosedLoopCompletesAllJobs) {
  WorkloadSpec spec;
  spec.mode = WorkloadSpec::Mode::kClosedLoop;
  spec.num_jobs = 10;
  spec.concurrency = 3;
  spec.policy = Policy::kGpuFirst;
  spec.seed = 7;
  const WorkloadMetrics m = RunWorkload(SmallCluster(), SchedulerKind::kFifo,
                                        Table2Mix(12, 2), spec);
  EXPECT_EQ(m.jobs.size(), 10u);
  EXPECT_GT(m.ThroughputJobsPerHour(), 0.0);
}

TEST(Workload, HigherArrivalRateRaisesTailLatency) {
  const std::vector<AppTemplate> mix = Table2Mix(16, 2);
  WorkloadSpec spec;
  spec.num_jobs = 16;
  spec.policy = Policy::kTail;
  spec.seed = 3;
  spec.arrival_rate_per_sec = 0.001;  // ~idle cluster
  const WorkloadMetrics idle = RunWorkload(SmallCluster(),
                                           SchedulerKind::kFifo, mix, spec);
  spec.arrival_rate_per_sec = 0.05;  // heavy overlap
  const WorkloadMetrics busy = RunWorkload(SmallCluster(),
                                           SchedulerKind::kFifo, mix, spec);
  EXPECT_GT(busy.LatencyPercentile(0.95), idle.LatencyPercentile(0.95));
  EXPECT_GT(busy.MeanQueueWait(), idle.MeanQueueWait());
}

}  // namespace
}  // namespace hd::multijob
