// Lightweight invariant checking used across HeteroDoop modules.
//
// HD_CHECK is active in all build types: simulator state corruption must
// never silently produce wrong experiment numbers.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hd {

// Thrown on violated invariants; carries the failing expression and site.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "HD_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace hd

#define HD_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::hd::detail::CheckFailed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define HD_CHECK_MSG(expr, msg)                                     \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream hd_os_;                                    \
      hd_os_ << msg;                                                \
      ::hd::detail::CheckFailed(#expr, __FILE__, __LINE__, hd_os_.str()); \
    }                                                               \
  } while (0)
