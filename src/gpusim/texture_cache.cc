#include "gpusim/texture_cache.h"

namespace hd::gpusim {

bool TextureCacheSim::Touch(const Key& k) {
  auto it = map_.find(k);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  lru_.push_front(k);
  map_[k] = lru_.begin();
  if (static_cast<int>(lru_.size()) > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

int TextureCacheSim::Access(const void* obj_id, std::int64_t byte_offset,
                            std::int64_t bytes) {
  HD_CHECK(byte_offset >= 0);
  HD_CHECK(bytes > 0);
  const std::int64_t first = byte_offset / line_bytes_;
  const std::int64_t last = (byte_offset + bytes - 1) / line_bytes_;
  int miss_count = 0;
  for (std::int64_t line = first; line <= last; ++line) {
    if (Touch(Key{obj_id, line})) {
      ++hits_;
    } else {
      ++misses_;
      ++miss_count;
    }
  }
  return miss_count;
}

void TextureCacheSim::Reset() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace hd::gpusim
