// Kmeans (KM) and Classification (CL): centroid-based compute-intensive
// benchmarks (§7.1). Records are variable-length rating vectors ("each
// record contains a list of movie ratings, some records have fewer reviews
// than others", §4.1) — the record-size skew that motivates record
// stealing. Both scan a read-only centroid table per record, the access
// pattern the texture clause accelerates (Fig. 7a). KM emits the vector for
// centroid recomputation (no combiner, heavy values); CL only classifies.
#include <cmath>
#include <map>

#include "apps/apps_internal.h"
#include "apps/gen.h"
#include "apps/golden_util.h"
#include "apps/sources.h"

namespace hd::apps {
namespace {

constexpr int kMaxDims = 64;
constexpr int kCentroids = 32;

// Shared prologue: deterministic centroid table; distance over the rated
// dimensions only (sparse-vector kmeans).
constexpr const char* kCentroidInit = R"(
  double centroids[2048];  /* 32 centroids x 64 dims */
  int ci;
  int lcg;
  lcg = 12345;
  for (ci = 0; ci < 2048; ci++) {
    lcg = (lcg * 1103515245 + 12345) % 2147483647;
    centroids[ci] = (lcg % 1000) / 100.0;
  }
)";

constexpr const char* kParseLoop = R"(
    offset = 0;
    dims = 0;
    while (dims < 64 &&
           (offset = nextTok(line, offset, tok, read, 32)) != -1) {
      point[dims] = atof(tok);
      dims++;
    }
    if (dims < 1) continue;
)";

constexpr const char* kNearestLoop = R"(
    bestDist = 1.0e30;
    best = 0;
    for (c = 0; c < 32; c++) {
      dist = 0.0;
      for (d = 0; d < dims; d++) {
        diff = point[d] - centroids[c * 64 + d];
        dist += diff * diff;
      }
      if (dist < bestDist) {
        bestDist = dist;
        best = c;
      }
    }
)";

std::string KmeansMapSource() {
  return std::string(kNextTokSource) + "int main() {\n" + kCentroidInit + R"(
  char tok[32], vbuf[384], *line;
  size_t nbytes = 8192;
  int read, offset, best, c, d, pos, dims;
  double point[64];
  double dist, bestDist, diff;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(best) value(vbuf) vallength(384) kvpairs(1) \
    texture(centroids)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
)" + std::string(kParseLoop) + std::string(kNearestLoop) + R"(
    pos = sprintf(vbuf, "%d", dims);
    for (d = 0; d < dims; d++) {
      pos += sprintf(vbuf + pos, " %d", (int) point[d]);
    }
    printf("%d\t%s\n", best, vbuf);
  }
  free(line);
  return 0;
}
)";
}

// Averages the member vectors per centroid, per rated dimension (one
// sparse kmeans iteration). Values arrive as "dims f0 f1 ... f<dims-1>".
constexpr const char* kKmeansReduceSource = R"(
int main() {
  char key[16], prevKey[16], vbuf[1400];
  double sums[64], x;
  int counts[64];
  int d, dims, pos, maxdims;
  prevKey[0] = '\0';
  maxdims = 0;
  for (d = 0; d < 64; d++) {
    sums[d] = 0.0;
    counts[d] = 0;
  }
  while (scanf("%s %d", key, &dims) == 2) {
    if (strcmp(key, prevKey) != 0) {
      if (prevKey[0] != '\0') {
        pos = 0;
        for (d = 0; d < maxdims; d++) {
          if (counts[d] > 0) {
            pos += sprintf(vbuf + pos, "%.3f ", sums[d] / counts[d]);
          } else {
            pos += sprintf(vbuf + pos, "0.000 ");
          }
        }
        printf("%s\t%s\n", prevKey, vbuf);
      }
      strcpy(prevKey, key);
      for (d = 0; d < 64; d++) {
        sums[d] = 0.0;
        counts[d] = 0;
      }
      maxdims = 0;
    }
    if (dims > maxdims) maxdims = dims;
    for (d = 0; d < dims; d++) {
      scanf("%lf", &x);
      sums[d] += x;
      counts[d] = counts[d] + 1;
    }
  }
  if (prevKey[0] != '\0') {
    pos = 0;
    for (d = 0; d < maxdims; d++) {
      if (counts[d] > 0) {
        pos += sprintf(vbuf + pos, "%.3f ", sums[d] / counts[d]);
      } else {
        pos += sprintf(vbuf + pos, "0.000 ");
      }
    }
    printf("%s\t%s\n", prevKey, vbuf);
  }
  return 0;
}
)";

std::string ClassificationMapSource() {
  return std::string(kNextTokSource) + "int main() {\n" + kCentroidInit + R"(
  char tok[32], *line;
  size_t nbytes = 8192;
  int read, offset, best, c, d, one, dims;
  double point[64];
  double dist, bestDist, diff;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(best) value(one) vallength(1) kvpairs(1) \
    texture(centroids)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    one = 1;
)" + std::string(kParseLoop) + std::string(kNearestLoop) + R"(
    printf("%d\t%d\n", best, one);
  }
  free(line);
  return 0;
}
)";
}

// Nearest centroid of one parsed point, replicating the mini-C arithmetic.
int NearestCentroid(const std::vector<double>& point,
                    const std::vector<double>& centroids) {
  double best_dist = 1.0e30;
  int best = 0;
  for (int c = 0; c < kCentroids; ++c) {
    double dist = 0.0;
    for (std::size_t d = 0; d < point.size(); ++d) {
      const double diff =
          point[d] - centroids[static_cast<std::size_t>(c) * kMaxDims + d];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

std::vector<std::vector<double>> ParsePoints(
    const std::vector<std::string>& splits) {
  std::vector<std::vector<double>> points;
  for (const auto& split : splits) {
    for (const auto& rec : Records(split)) {
      auto toks = RecordTokens(rec);
      if (toks.empty()) continue;
      std::vector<double> p;
      for (std::size_t d = 0; d < toks.size() && d < kMaxDims; ++d) {
        p.push_back(std::strtod(toks[d].c_str(), nullptr));
      }
      points.push_back(std::move(p));
    }
  }
  return points;
}

std::vector<gpurt::KvPair> KmeansGolden(
    const std::vector<std::string>& splits) {
  const std::vector<double> centroids = KmeansCentroids();
  struct Acc {
    std::vector<double> sums = std::vector<double>(kMaxDims, 0.0);
    std::vector<long long> counts = std::vector<long long>(kMaxDims, 0);
    int maxdims = 0;
  };
  std::map<int, Acc> acc;
  for (const auto& p : ParsePoints(splits)) {
    const int best = NearestCentroid(p, centroids);
    Acc& a = acc[best];
    a.maxdims = std::max(a.maxdims, static_cast<int>(p.size()));
    for (std::size_t d = 0; d < p.size(); ++d) {
      // The reducer consumes the mapper's integer rendering of each rating.
      a.sums[d] += static_cast<double>(static_cast<long long>(p[d]));
      a.counts[d]++;
    }
  }
  std::vector<gpurt::KvPair> out;
  for (const auto& [cid, a] : acc) {
    std::string v;
    for (int d = 0; d < a.maxdims; ++d) {
      if (a.counts[static_cast<std::size_t>(d)] > 0) {
        v += RenderF("%.3f",
                     a.sums[static_cast<std::size_t>(d)] /
                         static_cast<double>(
                             a.counts[static_cast<std::size_t>(d)]));
      } else {
        v += "0.000";
      }
      v += ' ';
    }
    out.push_back({std::to_string(cid), std::move(v)});
  }
  return out;
}

std::vector<gpurt::KvPair> ClassificationGolden(
    const std::vector<std::string>& splits) {
  const std::vector<double> centroids = KmeansCentroids();
  std::map<int, long long> counts;
  for (const auto& p : ParsePoints(splits)) {
    counts[NearestCentroid(p, centroids)]++;
  }
  std::vector<gpurt::KvPair> out;
  for (const auto& [cid, n] : counts) {
    out.push_back({std::to_string(cid), std::to_string(n)});
  }
  return out;
}

}  // namespace

Benchmark MakeKmeans() {
  Benchmark b;
  b.id = "KM";
  b.name = "Kmeans";
  b.io_intensive = false;
  b.has_combiner = false;
  b.pct_map_combine_active = 89;
  b.map_source = KmeansMapSource();
  b.reduce_source = kKmeansReduceSource;
  b.generate = GenRatingVectors;
  b.golden = KmeansGolden;
  b.exact_output = false;  // double accumulation order varies with schedule
  b.cluster1 = {true, 16, 4800, 923.0};
  b.cluster2 = {false, 16, 0, 0.0};  // exceeds Cluster2 GPU memory (§7.3)
  return b;
}

Benchmark MakeClassification() {
  Benchmark b;
  b.id = "CL";
  b.name = "Classification";
  b.io_intensive = false;
  b.has_combiner = false;
  b.pct_map_combine_active = 92;
  b.map_source = ClassificationMapSource();
  b.reduce_source = SumFilterSource(/*with_directive=*/false, 16);
  b.generate = GenRatingVectors;
  b.golden = ClassificationGolden;
  b.exact_output = true;
  b.cluster1 = {true, 16, 4800, 923.0};
  b.cluster2 = {true, 16, 3200, 72.0};
  return b;
}

}  // namespace hd::apps
