#include "analysis/passes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>

namespace hd::analysis {

namespace {

using minic::Directive;
using minic::Expr;
using minic::ExprKind;
using minic::Stmt;
using minic::StmtKind;
using minic::Type;

const char* RegionKindName(const RegionContext& rc) {
  return rc.directive->kind == Directive::Kind::kMapper ? "mapper" : "combiner";
}

bool ClauseNames(const Directive& dir, const char* clause,
                 const std::string& name) {
  auto it = dir.clauses.find(clause);
  if (it == dir.clauses.end()) return false;
  return std::find(it->second.begin(), it->second.end(), name) !=
         it->second.end();
}

// ---------------------------------------------------------------------------
// directive-check: Table 1 clause validation.
// ---------------------------------------------------------------------------

// Clause schema. Arity: 1 = exactly one argument, -1 = one or more.
struct ClauseSpec {
  const char* name;
  int arity;
  bool integer;        // argument must be a positive integer
  bool combiner_only;  // keyin/valuein
  bool mapper_only;    // kvpairs
};

constexpr ClauseSpec kClauses[] = {
    {"key", 1, false, false, false},
    {"value", 1, false, false, false},
    {"keyin", 1, false, true, false},
    {"valuein", 1, false, true, false},
    {"keylength", 1, true, false, false},
    {"vallength", 1, true, false, false},
    {"kvpairs", 1, true, false, true},
    {"blocks", 1, true, false, false},
    {"threads", 1, true, false, false},
    {"sharedRO", -1, false, false, false},
    {"texture", -1, false, false, false},
    {"firstprivate", -1, false, false, false},
};

const ClauseSpec* FindClauseSpec(const std::string& name) {
  for (const auto& spec : kClauses) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

// Returns the clause argument parsed as a positive integer, or 0 after
// reporting HD108.
int CheckedIntArg(const Directive& dir, const char* clause,
                  const std::string& file, DiagnosticEngine* de) {
  auto it = dir.clauses.find(clause);
  if (it == dir.clauses.end() || it->second.size() != 1) return 0;
  const std::string& a = it->second[0];
  int value = 0;
  try {
    value = std::stoi(a);
  } catch (const std::exception&) {
    value = 0;
  }
  if (value <= 0) {
    de->Error("HD108", "directive-check", file, dir.line, 0,
              std::string("clause '") + clause +
                  "' expects a positive integer, got '" + a + "'");
    return 0;
  }
  return value;
}

void CheckRegionDirective(const RegionContext& rc, const AnalyzerOptions& opts,
                          DiagnosticEngine* de) {
  const Directive& dir = *rc.directive;
  const std::string& file = opts.source_name;
  const bool is_combiner = dir.kind == Directive::Kind::kCombiner;

  for (const auto& [name, args] : dir.clauses) {
    const ClauseSpec* spec = FindClauseSpec(name);
    if (spec == nullptr) {
      de->Warning("HD109", "directive-check", file, dir.line, 0,
                  "unknown clause '" + name + "' is ignored",
                  "supported clauses: key value keyin valuein keylength "
                  "vallength kvpairs blocks threads sharedRO texture "
                  "firstprivate (Table 1)");
      continue;
    }
    if (spec->arity == 1 && args.size() != 1) {
      de->Error("HD107", "directive-check", file, dir.line, 0,
                "clause '" + name + "' expects exactly one argument, got " +
                    std::to_string(args.size()));
    } else if (spec->arity == -1 && args.empty()) {
      de->Error("HD107", "directive-check", file, dir.line, 0,
                "clause '" + name + "' expects at least one variable");
    }
    if (spec->integer) CheckedIntArg(dir, spec->name, file, de);
    if (spec->combiner_only && !is_combiner) {
      de->Error("HD105", "directive-check", file, dir.line, 0,
                "clause '" + name + "' is only valid on the combiner",
                "the mapper reads records with getRecord, not incoming KV "
                "pairs");
    }
    if (spec->mapper_only && is_combiner) {
      de->Error("HD106", "directive-check", file, dir.line, 0,
                "clause '" + name + "' is only valid on the mapper",
                "combiner output volume is bounded by its input pairs");
    }
  }

  // Mandatory clauses.
  if (!dir.Has("key") || !dir.Has("value")) {
    de->Error("HD103", "directive-check", file, dir.line, 0,
              "mapreduce directive requires key(...) and value(...) clauses");
  }
  if (is_combiner && (!dir.Has("keyin") || !dir.Has("valuein"))) {
    de->Error("HD104", "directive-check", file, dir.line, 0,
              "combiner directive requires keyin(...) and valuein(...) "
              "clauses",
              "name the variables scanf fills from the incoming KV stream");
  }

  // Single-variable clauses must name variables the region actually uses.
  for (const char* clause : {"key", "value", "keyin", "valuein"}) {
    auto it = dir.clauses.find(clause);
    if (it == dir.clauses.end() || it->second.size() != 1) continue;
    const std::string& var = it->second[0];
    if (!rc.info.used_outer.count(var)) {
      de->Error("HD111", "directive-check", file, dir.line, 0,
                std::string(clause) + " variable '" + var +
                    "' is not used in the region or not declared",
                "declare '" + var + "' before the directive and reference it "
                                    "inside the region");
    }
  }

  // Placement clauses: arguments must be used in the region and may appear
  // in at most one placement clause.
  std::map<std::string, std::string> placement_of;
  for (const char* clause : {"sharedRO", "texture", "firstprivate"}) {
    auto it = dir.clauses.find(clause);
    if (it == dir.clauses.end()) continue;
    for (const auto& var : it->second) {
      if (!rc.info.used_outer.count(var)) {
        de->Error("HD111", "directive-check", file, dir.line, 0,
                  "clause '" + std::string(clause) + "' names variable '" +
                      var + "' that the region does not use",
                  "remove '" + var + "' from the clause or reference it "
                                     "inside the region");
        continue;
      }
      auto [prev, inserted] = placement_of.emplace(var, clause);
      if (!inserted) {
        de->Error("HD110", "directive-check", file, dir.line, 0,
                  "variable '" + var + "' appears in both '" + prev->second +
                      "' and '" + clause + "' placement clauses",
                  "a variable has exactly one Algorithm 1 placement");
      }
    }
  }

  // texture() demands an indexable (array/pointer) operand.
  if (auto it = dir.clauses.find("texture"); it != dir.clauses.end()) {
    for (const auto& var : it->second) {
      auto t = rc.info.outer_types.find(var);
      if (t != rc.info.outer_types.end() && t->second.IsScalarValue()) {
        de->Error("HD112", "directive-check", file, dir.line, 0,
                  "texture clause expects an array, got scalar '" + var + "'",
                  "texture memory serves cached array reads; use sharedRO "
                  "for scalars");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// race-check: cross-thread write hazards.
// ---------------------------------------------------------------------------

void CheckRegionRaces(const RegionContext& rc, const AnalyzerOptions& opts,
                      DiagnosticEngine* de) {
  const Directive& dir = *rc.directive;
  const std::string& file = opts.source_name;
  const bool is_mapper = dir.kind == Directive::Kind::kMapper;

  auto clause_arg = [&](const char* clause) -> std::string {
    auto it = dir.clauses.find(clause);
    return it != dir.clauses.end() && it->second.size() == 1 ? it->second[0]
                                                             : std::string();
  };
  const std::string key_var = clause_arg("key");
  const std::string value_var = clause_arg("value");

  for (const auto& [name, sites] : rc.info.write_sites) {
    const bool shared_ro = ClauseNames(dir, "sharedRO", name);
    const bool texture = ClauseNames(dir, "texture", name);
    if (shared_ro || texture) {
      // Every GPU thread executes the region concurrently: a write to
      // shared memory is a write-write race across the whole grid.
      for (const auto& s : sites) {
        de->Error(shared_ro ? "HD201" : "HD202", "race-check", file, s.line,
                  s.col,
                  std::string(shared_ro ? "sharedRO" : "texture") +
                      " variable '" + name + "' is written inside the " +
                      RegionKindName(rc) +
                      " region: cross-thread write-write race",
                  s.via_builtin
                      ? "the write happens through a builtin output "
                        "argument; copy into a private variable instead"
                      : "remove '" + name + "' from the " +
                            (shared_ro ? "sharedRO" : "texture") +
                            "(...) clause or assign to a private copy");
      }
      continue;
    }
    if (!is_mapper) continue;  // combiner threads own their key partitions
    if (name == key_var || name == value_var) continue;
    if (ClauseNames(dir, "firstprivate", name)) continue;
    if (!rc.info.read_before_write.count(name)) continue;
    // Read-before-write + written: Algorithm 1 privatizes a per-thread copy
    // initialised from the host value, so host-visible state silently
    // becomes thread-local. Accumulations lose every other thread's
    // contribution; under a shared placement they would be a data race.
    const Type& t = rc.info.outer_types.at(name);
    if (t.is_array || t.is_pointer) {
      for (const auto& s : sites) {
        if (!s.element) continue;
        de->Warning(
            "HD204", "race-check", file, s.line, s.col,
            "write to element of outer array '" + name +
                "' lands in a per-thread private copy" +
                (s.constant_index
                     ? "; the index is the same for every thread, so a "
                       "shared placement would make all threads collide on "
                       "one location"
                     : "; other threads' updates are lost and the host "
                       "never sees the result"),
            "cross-thread aggregation must flow through emitKV "
            "(printf) and the combiner/reducer");
      }
    } else {
      for (const auto& s : sites) {
        if (!s.compound) continue;
        de->Warning("HD203", "race-check", file, s.line, s.col,
                    "accumulation into outer variable '" + name +
                        "' updates a per-thread private copy: per-thread "
                        "partial results are lost at region exit",
                    "emit the partial value as a KV pair and sum in the "
                    "combiner, or annotate firstprivate(" +
                        name + ") if per-thread state is intended");
        break;  // one report per variable is enough
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kv-bounds: slot sizing and kvpairs-hint consistency.
// ---------------------------------------------------------------------------

int CountPrintfInExpr(const Expr& e) {
  int n = e.kind == ExprKind::kCall && e.string_value == "printf" ? 1 : 0;
  if (e.a) n += CountPrintfInExpr(*e.a);
  if (e.b) n += CountPrintfInExpr(*e.b);
  if (e.c) n += CountPrintfInExpr(*e.c);
  for (const auto& arg : e.args) n += CountPrintfInExpr(*arg);
  return n;
}

// Static emission count per record iteration: the longest straight-line
// path through the per-record body, with any emission nested in a further
// loop reported as unbounded.
struct EmitCount {
  int max_path = 0;
  bool in_loop = false;
};

EmitCount CountEmits(const Stmt& s) {
  EmitCount ec;
  switch (s.kind) {
    case StmtKind::kExpr:
    case StmtKind::kReturn:
      if (s.expr) ec.max_path = CountPrintfInExpr(*s.expr);
      break;
    case StmtKind::kDecl:
      for (const auto& d : s.decls) {
        if (d.init) ec.max_path += CountPrintfInExpr(*d.init);
      }
      break;
    case StmtKind::kBlock:
      for (const auto& sub : s.stmts) {
        EmitCount c = CountEmits(*sub);
        ec.max_path += c.max_path;
        ec.in_loop = ec.in_loop || c.in_loop;
      }
      break;
    case StmtKind::kIf: {
      ec.max_path = CountPrintfInExpr(*s.expr);
      EmitCount t = CountEmits(*s.then_stmt);
      EmitCount e = s.else_stmt ? CountEmits(*s.else_stmt) : EmitCount{};
      ec.max_path += std::max(t.max_path, e.max_path);
      ec.in_loop = t.in_loop || e.in_loop;
      break;
    }
    case StmtKind::kWhile:
    case StmtKind::kDoWhile:
    case StmtKind::kFor: {
      int inside = s.expr ? CountPrintfInExpr(*s.expr) : 0;
      if (s.step) inside += CountPrintfInExpr(*s.step);
      if (s.init_stmt) inside += CountEmits(*s.init_stmt).max_path;
      EmitCount body = CountEmits(*s.body);
      if (inside + body.max_path > 0 || body.in_loop) ec.in_loop = true;
      break;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      break;
  }
  return ec;
}

void CheckRegionKvBounds(const RegionContext& rc, const AnalyzerOptions& opts,
                         DiagnosticEngine* de) {
  const Directive& dir = *rc.directive;
  const std::string& file = opts.source_name;

  // Declared length clauses vs the declared capacity of the emitted array.
  auto check_len = [&](const char* var_clause, const char* len_clause) {
    auto vit = dir.clauses.find(var_clause);
    auto lit = dir.clauses.find(len_clause);
    if (vit == dir.clauses.end() || vit->second.size() != 1) return;
    if (lit == dir.clauses.end() || lit->second.size() != 1) return;
    const std::string& var = vit->second[0];
    auto t = rc.info.outer_types.find(var);
    if (t == rc.info.outer_types.end()) return;
    if (!(t->second.is_array && t->second.scalar == minic::Scalar::kChar)) {
      return;  // slot width for numeric/pointer emissions is text-rendered
    }
    int declared = 0;
    try {
      declared = std::stoi(lit->second[0]);
    } catch (const std::exception&) {
      return;  // HD108 already reported
    }
    const auto capacity = static_cast<int>(t->second.array_size);
    if (declared <= 0 || capacity <= 0) return;
    if (declared > capacity) {
      de->Error("HD301", "kv-bounds", file, dir.line, 0,
                std::string(len_clause) + "(" + std::to_string(declared) +
                    ") exceeds the declared size of '" + var + "' (char[" +
                    std::to_string(capacity) +
                    "]): emitKV would read past the end of the buffer",
                "shrink " + std::string(len_clause) + " to " +
                    std::to_string(capacity) + " or grow the array");
    } else if (declared < capacity) {
      de->Warning("HD302", "kv-bounds", file, dir.line, 0,
                  std::string(len_clause) + "(" + std::to_string(declared) +
                      ") is smaller than '" + var + "' (char[" +
                      std::to_string(capacity) +
                      "]): emitted strings may be truncated in the KV store",
                  "match " + std::string(len_clause) + " to the buffer size "
                  "unless strings are known to be shorter");
    }
  };
  check_len("key", "keylength");
  check_len("value", "vallength");

  if (dir.kind != Directive::Kind::kMapper) return;

  // kvpairs hints vs static emission counts along each path.
  const Stmt& region = *rc.region;
  const Stmt* per_record = region.body ? region.body.get() : &region;
  EmitCount ec = CountEmits(*per_record);
  const int hint = [&] {
    auto it = dir.clauses.find("kvpairs");
    if (it == dir.clauses.end() || it->second.size() != 1) return 0;
    try {
      return std::max(0, std::stoi(it->second[0]));
    } catch (const std::exception&) {
      return 0;
    }
  }();
  if (ec.max_path == 0 && !ec.in_loop) {
    de->Warning("HD305", "kv-bounds", file, dir.line, 0,
                "mapper region never emits a KV pair (no printf on any path)",
                "emit with printf(\"%s\\t%d\\n\", key, value) — the "
                "translator rewrites it to emitKV");
    return;
  }
  if (hint > 0) {
    if (ec.max_path > hint) {
      de->Error("HD303", "kv-bounds", file, dir.line, 0,
                "a record path emits " + std::to_string(ec.max_path) +
                    " KV pairs but kvpairs(" + std::to_string(hint) +
                    ") reserves fewer slots: the KV store portion would "
                    "overflow",
                "raise kvpairs to at least " + std::to_string(ec.max_path));
    }
    if (ec.in_loop) {
      de->Warning("HD304", "kv-bounds", file, dir.line, 0,
                  "emission inside a nested loop may exceed kvpairs(" +
                      std::to_string(hint) + ") for records with many tokens",
                  "size kvpairs for the worst-case emissions per record");
    }
  }
}

// ---------------------------------------------------------------------------
// placement-audit: explain Algorithm 1 decisions; flag lost optimisations.
// ---------------------------------------------------------------------------

void AuditRegionPlacement(const RegionContext& rc, const AnalyzerOptions& opts,
                          DiagnosticEngine* de) {
  const Directive& dir = *rc.directive;
  const std::string& file = opts.source_name;

  auto loc_of = [&](const std::string& name) -> std::pair<int, int> {
    auto it = rc.info.first_use.find(name);
    return it != rc.info.first_use.end() ? it->second
                                         : std::pair{dir.line, 0};
  };

  if (opts.audit_notes) {
    for (const auto& name : rc.info.used_outer) {
      const PlacementDecision d = ClassifyPlacement(name, rc, opts);
      auto [line, col] = loc_of(name);
      de->Note("HD401", "placement-audit", file, line, col,
               "'" + name + "' (" + minic::TypeName(rc.info.outer_types.at(
                   name)) + ") placed " + PlacementName(d.placement) + ": " +
                   d.reason);
    }
  }

  auto clause_arg = [&](const char* clause) -> std::string {
    auto it = dir.clauses.find(clause);
    return it != dir.clauses.end() && it->second.size() == 1 ? it->second[0]
                                                             : std::string();
  };
  const std::string key_var = clause_arg("key");
  const std::string value_var = clause_arg("value");

  // Texture-eligible read-only arrays that lost texture placement: indexed
  // reads from a never-written fixed array are exactly the access pattern
  // the texture cache accelerates (paper Fig. 7a).
  if (dir.kind == Directive::Kind::kMapper) {
    for (const auto& name : rc.info.used_outer) {
      if (name == key_var || name == value_var) continue;
      const Type& t = rc.info.outer_types.at(name);
      if (!t.is_array || t.array_size <= 0) continue;
      if (!rc.info.never_written.count(name)) continue;
      if (!rc.info.indexed_read.count(name)) continue;
      if (ClauseNames(dir, "texture", name) ||
          ClauseNames(dir, "sharedRO", name)) {
        continue;
      }
      auto [line, col] = loc_of(name);
      de->Warning("HD402", "placement-audit", file, line, col,
                  "read-only array '" + name +
                      "' is indexed in the region but not placed in texture "
                      "memory: every thread re-reads it from private copies",
                  "add texture(" + name + ") to the directive to serve the "
                  "reads from the texture cache");
    }
  }

  // char[] keys/values vectorize to char4 only when the slot width is a
  // multiple of 4.
  auto check_vec = [&](const char* var_clause, const char* len_clause) {
    const std::string var = clause_arg(var_clause);
    if (var.empty()) return;
    auto t = rc.info.outer_types.find(var);
    if (t == rc.info.outer_types.end()) return;
    if (!(t->second.scalar == minic::Scalar::kChar &&
          (t->second.is_array || t->second.is_pointer))) {
      return;
    }
    int declared_len = 0;
    if (auto it = dir.clauses.find(len_clause);
        it != dir.clauses.end() && it->second.size() == 1) {
      try {
        declared_len = std::stoi(it->second[0]);
      } catch (const std::exception&) {
        return;
      }
    }
    const int slot = KvSlotBytes(t->second, declared_len,
                                 opts.int_text_bytes, opts.double_text_bytes);
    if (slot > 0 && slot % 4 != 0) {
      de->Warning("HD403", "placement-audit", file, dir.line, 0,
                  std::string(var_clause) + " '" + var + "' occupies a " +
                      std::to_string(slot) +
                      "-byte slot, not a multiple of 4: KV accesses cannot "
                      "vectorize to char4 transactions",
                  "pad " + std::string(len_clause) + " to " +
                      std::to_string((slot + 3) / 4 * 4) +
                      " to enable vectorized emitKV/getKV");
    }
  };
  check_vec("key", "keylength");
  check_vec("value", "vallength");
}

// ---------------------------------------------------------------------------
// portability: constructs the GPU path cannot execute.
// ---------------------------------------------------------------------------

// Builtins the interpreter registers (minic/builtins.cc) plus the runtime
// KV primitives the translator swaps in.
const std::set<std::string>& KnownBuiltins() {
  static const std::set<std::string> kBuiltins = {
      "abs",      "atof",    "atoi",    "ceil",    "cos",     "erf",
      "exit",     "exp",     "fabs",    "floor",   "fmax",    "fmin",
      "fprintf",  "free",    "getline", "getline_buf", "isalnum",
      "isalpha",  "isdigit", "isspace", "log",     "log10",   "malloc",
      "memset",   "pow",     "printf",  "scanf",   "sin",     "sprintf",
      "sqrt",     "strcat",  "strcmp",  "strcpy",  "strlen",  "strncmp",
      "strncpy",  "strstr",  "tolower", "toupper",
      // Runtime KV primitives (appear after builtin rewriting).
      "getRecord", "emitKV", "getKV", "storeKV",
  };
  return kBuiltins;
}

// Calls the GPU runtime cannot service inside an offloaded region.
bool HostOnlyCall(const std::string& callee) {
  return callee == "malloc" || callee == "free" || callee == "exit" ||
         callee == "fprintf";
}

void WalkExprs(const Stmt& s, const std::function<void(const Expr&)>& fn);

void WalkExprTree(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  if (e.a) WalkExprTree(*e.a, fn);
  if (e.b) WalkExprTree(*e.b, fn);
  if (e.c) WalkExprTree(*e.c, fn);
  for (const auto& arg : e.args) WalkExprTree(*arg, fn);
}

void WalkExprs(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  if (s.expr) WalkExprTree(*s.expr, fn);
  if (s.step) WalkExprTree(*s.step, fn);
  for (const auto& d : s.decls) {
    if (d.init) WalkExprTree(*d.init, fn);
  }
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub) WalkExprs(*sub, fn);
  }
  for (const auto& sub : s.stmts) WalkExprs(*sub, fn);
}

void WalkStmts(const Stmt& s, const std::function<void(const Stmt&)>& fn) {
  fn(s);
  for (const Stmt* sub : {s.then_stmt.get(), s.else_stmt.get(), s.body.get(),
                          s.init_stmt.get()}) {
    if (sub) WalkStmts(*sub, fn);
  }
  for (const auto& sub : s.stmts) WalkStmts(*sub, fn);
}

// Variables that might be modified by the loop body/step: assignment and
// ++/-- targets, write-only builtin arguments, plus (conservatively) any
// variable passed to a call or address-taken.
void CollectModified(const Stmt& s, std::set<std::string>* out) {
  WalkExprs(s, [out](const Expr& e) {
    auto base_name = [](const Expr* b) -> const std::string* {
      while (b->kind == ExprKind::kIndex || b->kind == ExprKind::kCast ||
             (b->kind == ExprKind::kUnary && b->un_op == minic::UnOp::kDeref)) {
        b = b->a.get();
      }
      return b->kind == ExprKind::kVarRef ? &b->string_value : nullptr;
    };
    if (e.kind == ExprKind::kAssign) {
      if (const std::string* n = base_name(e.a.get())) out->insert(*n);
    } else if (e.kind == ExprKind::kUnary) {
      switch (e.un_op) {
        case minic::UnOp::kPreInc:
        case minic::UnOp::kPreDec:
        case minic::UnOp::kPostInc:
        case minic::UnOp::kPostDec:
        case minic::UnOp::kAddrOf:
          if (const std::string* n = base_name(e.a.get())) out->insert(*n);
          break;
        default:
          break;
      }
    } else if (e.kind == ExprKind::kCall) {
      for (const auto& arg : e.args) {
        if (const std::string* n = base_name(arg.get())) out->insert(*n);
      }
    }
  });
}

void CheckLoops(const minic::FunctionDef& fn, const AnalyzerOptions& opts,
                DiagnosticEngine* de) {
  WalkStmts(*fn.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::kWhile && s.kind != StmtKind::kDoWhile &&
        s.kind != StmtKind::kFor) {
      return;
    }
    if (!s.expr) return;  // for(;;) — deliberate
    std::set<std::string> cond_vars;
    bool cond_has_call = false;
    WalkExprTree(*s.expr, [&](const Expr& e) {
      if (e.kind == ExprKind::kVarRef) cond_vars.insert(e.string_value);
      if (e.kind == ExprKind::kCall) cond_has_call = true;
    });
    if (cond_vars.empty() || cond_has_call) return;
    std::set<std::string> modified;
    CollectModified(*s.body, &modified);
    if (s.step) {
      WalkExprTree(*s.step, [&](const Expr& e) {
        if (e.kind == ExprKind::kAssign || e.kind == ExprKind::kUnary) {
          const Expr* b = e.a.get();
          while (b != nullptr &&
                 (b->kind == ExprKind::kIndex || b->kind == ExprKind::kCast ||
                  (b->kind == ExprKind::kUnary &&
                   b->un_op == minic::UnOp::kDeref))) {
            b = b->a.get();
          }
          if (b != nullptr && b->kind == ExprKind::kVarRef) {
            modified.insert(b->string_value);
          }
        }
      });
    }
    const bool any_modified =
        std::any_of(cond_vars.begin(), cond_vars.end(),
                    [&](const std::string& v) { return modified.count(v); });
    if (!any_modified) {
      de->Warning("HD503", "portability", opts.source_name, s.line, s.col,
                  "loop in '" + fn.name +
                      "' never modifies its condition variables: the GPU "
                      "thread would spin forever on unchanged outer state",
                  "update one of the condition variables in the loop body");
    }
  });
}

void RunPortabilityImpl(const PassContext& ctx, DiagnosticEngine* de) {
  const AnalyzerOptions& opts = *ctx.opts;
  const std::string& file = opts.source_name;

  // Call graph over defined functions.
  std::map<std::string, std::set<std::string>> callees;
  for (const auto& fn : ctx.unit->functions) {
    auto& out = callees[fn->name];
    WalkExprs(*fn->body, [&](const Expr& e) {
      if (e.kind == ExprKind::kCall) out.insert(e.string_value);
    });
  }

  // HD502: calls that resolve to neither a defined function nor a builtin.
  for (const auto& fn : ctx.unit->functions) {
    std::set<std::string> reported;
    WalkExprs(*fn->body, [&](const Expr& e) {
      if (e.kind != ExprKind::kCall) return;
      const std::string& callee = e.string_value;
      if (callees.count(callee) || KnownBuiltins().count(callee)) return;
      if (!reported.insert(callee).second) return;
      de->Error("HD502", "portability", file, e.line, e.col,
                "call to undefined function '" + callee +
                    "': not defined in this program and not a runtime "
                    "builtin",
                "define '" + callee + "' in the same file — the translator "
                "inlines the whole program into the kernel");
    });
  }

  // HD501: recursion (direct or mutual) — GPU kernels have no call stack
  // for unbounded recursion and the interpreter mirrors that restriction.
  std::set<std::string> in_cycle;
  for (const auto& fn : ctx.unit->functions) {
    std::set<std::string> visiting, done;
    std::function<bool(const std::string&)> dfs =
        [&](const std::string& name) -> bool {
      if (visiting.count(name)) return true;
      if (done.count(name) || !callees.count(name)) return false;
      visiting.insert(name);
      bool cyclic = false;
      for (const auto& c : callees.at(name)) {
        if (dfs(c)) cyclic = true;
      }
      visiting.erase(name);
      done.insert(name);
      return cyclic && name == fn->name;
    };
    if (dfs(fn->name)) in_cycle.insert(fn->name);
  }
  for (const auto& fn : ctx.unit->functions) {
    if (in_cycle.count(fn->name)) {
      de->Error("HD501", "portability", file, fn->line, 0,
                "function '" + fn->name +
                    "' is recursive: recursion cannot be offloaded",
                "rewrite as an iterative loop with an explicit bound");
    }
  }

  // HD504: host-only calls inside an offloaded region.
  for (const RegionContext& rc : *ctx.regions) {
    std::set<std::string> reported;
    WalkExprs(*rc.region, [&](const Expr& e) {
      if (e.kind != ExprKind::kCall || !HostOnlyCall(e.string_value)) return;
      if (!reported.insert(e.string_value).second) return;
      de->Error("HD504", "portability", file, e.line, e.col,
                "'" + e.string_value + "' inside the " + RegionKindName(rc) +
                    " region: the GPU runtime has no " +
                    (e.string_value == "fprintf" ? "host stdio"
                                                 : "heap/process control"),
                "hoist the call out of the annotated region");
    });
  }

  // HD503: loops that never update their condition.
  for (const auto& fn : ctx.unit->functions) {
    CheckLoops(*fn, opts, de);
  }
}

}  // namespace

EmitShape ComputeEmitShape(const minic::Stmt& per_record_body) {
  const EmitCount ec = CountEmits(per_record_body);
  return {ec.max_path, ec.in_loop};
}

void RunDirectiveCheck(const PassContext& ctx, DiagnosticEngine* de) {
  for (const RegionContext& rc : *ctx.regions) {
    CheckRegionDirective(rc, *ctx.opts, de);
  }
}

void RunRaceCheck(const PassContext& ctx, DiagnosticEngine* de) {
  for (const RegionContext& rc : *ctx.regions) {
    CheckRegionRaces(rc, *ctx.opts, de);
  }
}

void RunKvBounds(const PassContext& ctx, DiagnosticEngine* de) {
  for (const RegionContext& rc : *ctx.regions) {
    CheckRegionKvBounds(rc, *ctx.opts, de);
  }
}

void RunPlacementAudit(const PassContext& ctx, DiagnosticEngine* de) {
  for (const RegionContext& rc : *ctx.regions) {
    AuditRegionPlacement(rc, *ctx.opts, de);
  }
}

void RunPortability(const PassContext& ctx, DiagnosticEngine* de) {
  RunPortabilityImpl(ctx, de);
}

}  // namespace hd::analysis
