// Property-style tests of the mini-C interpreter: C-semantics equivalence
// against native C++ evaluation across parameter sweeps, libc-equivalent
// string behaviour, and robustness of the frontend against malformed input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/prng.h"
#include "minic/interp.h"
#include "minic/lexer.h"
#include "minic/parser.h"

namespace hd::minic {
namespace {

std::string RunProgram(const std::string& src, std::string input = "") {
  auto unit = Parse(src);
  TextIoEnv io(std::move(input));
  CountingHooks hooks;
  Interp interp(*unit, &io, &hooks);
  interp.RunMain();
  return io.TakeOutput();
}

// --- integer arithmetic equivalence ----------------------------------------

class IntArithmetic : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(IntArithmetic, MatchesCpp) {
  const auto [a, b] = GetParam();
  std::string src = "int main() { int a, b; a = " + std::to_string(a) +
                    "; b = " + std::to_string(b) + ";\n"
                    "printf(\"%d %d %d %d %d %d %d\\n\", a + b, a - b, a * b,"
                    " a / b, a % b, a < b, a == b); return 0; }";
  char expect[160];
  std::snprintf(expect, sizeof expect, "%d %d %d %d %d %d %d\n", a + b, a - b,
                a * b, a / b, a % b, a < b, a == b);
  EXPECT_EQ(RunProgram(src), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, IntArithmetic,
    ::testing::Values(std::pair{7, 2}, std::pair{-7, 2}, std::pair{7, -2},
                      std::pair{-7, -2}, std::pair{0, 5}, std::pair{100, 7},
                      std::pair{-1, 1}, std::pair{12345, 89}));

// --- floating point equivalence ---------------------------------------------

class FloatArithmetic : public ::testing::TestWithParam<double> {};

TEST_P(FloatArithmetic, MathBuiltinsMatchLibm) {
  const double x = GetParam();
  std::string src = "int main() { double x; x = " + std::to_string(x) +
                    ";\nprintf(\"%.9f %.9f %.9f %.9f\\n\", sqrt(x), exp(x / "
                    "10.0), log(x + 1.0), erf(x / 5.0)); return 0; }";
  char expect[200];
  std::snprintf(expect, sizeof expect, "%.9f %.9f %.9f %.9f\n", std::sqrt(x),
                std::exp(x / 10.0), std::log(x + 1.0), std::erf(x / 5.0));
  EXPECT_EQ(RunProgram(src), expect);
}

INSTANTIATE_TEST_SUITE_P(Values, FloatArithmetic,
                         ::testing::Values(0.0, 0.5, 1.0, 2.25, 9.0, 144.5));

// --- string builtins match libc ----------------------------------------------

class StringPairs
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(StringPairs, StrcmpStrlenStrstrMatchLibc) {
  const auto [a, b] = GetParam();
  std::string src = std::string("int main() {\n") +
                    "  char a[64], b[64];\n"
                    "  strcpy(a, \"" + a + "\");\n"
                    "  strcpy(b, \"" + b + "\");\n"
                    "  int c; c = strcmp(a, b);\n"
                    "  int sign; sign = 0;\n"
                    "  if (c > 0) sign = 1;\n"
                    "  if (c < 0) sign = -1;\n"
                    "  printf(\"%d %d %d %d\\n\", sign, strlen(a), strlen(b),"
                    " strstr(a, b) != NULL);\n"
                    "  return 0; }";
  const int c = std::strcmp(a, b);
  char expect[80];
  std::snprintf(expect, sizeof expect, "%d %zu %zu %d\n",
                c > 0 ? 1 : (c < 0 ? -1 : 0), std::strlen(a), std::strlen(b),
                std::strstr(a, b) != nullptr);
  EXPECT_EQ(RunProgram(src), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StringPairs,
    ::testing::Values(std::pair{"abc", "abc"}, std::pair{"abc", "abd"},
                      std::pair{"abd", "abc"}, std::pair{"", ""},
                      std::pair{"abc", ""}, std::pair{"mapreduce", "red"},
                      std::pair{"short", "muchlongerneedle"}));

// --- control-flow equivalence over loop shapes -------------------------------

class LoopSums : public ::testing::TestWithParam<int> {};

TEST_P(LoopSums, ForWhileDoAgree) {
  const int n = GetParam();
  std::string src = "int main() { int n, i, a, b, c;\n"
                    "n = " + std::to_string(n) + ";\n"
                    "a = 0; for (i = 0; i < n; i++) a += i;\n"
                    "b = 0; i = 0; while (i < n) { b += i; i++; }\n"
                    "c = 0; i = 0; if (n > 0) { do { c += i; i++; } while (i < n); }\n"
                    "printf(\"%d %d %d\\n\", a, b, c); return 0; }";
  const long long s = static_cast<long long>(n) * (n - 1) / 2;
  char expect[80];
  std::snprintf(expect, sizeof expect, "%lld %lld %lld\n", s, s, s);
  EXPECT_EQ(RunProgram(src), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LoopSums, ::testing::Values(0, 1, 2, 17, 256));

// --- printf format sweep ------------------------------------------------------

TEST(Format, SpecifiersMatchSnprintf) {
  struct Case {
    const char* fmt;
    double v;
  };
  for (const Case& c : {Case{"%.0f", 3.7}, Case{"%.3f", 3.14159},
                        Case{"%8.2f", -1.5}, Case{"%e", 12345.678},
                        Case{"%g", 0.00001234}}) {
    // Render the literal at full precision (std::to_string truncates).
    char lit[64];
    std::snprintf(lit, sizeof lit, "%.17g", c.v);
    std::string src = std::string("int main() { printf(\"") + c.fmt +
                      "\\n\", " + lit + "); return 0; }";
    char expect[80];
    std::snprintf(expect, sizeof expect, (std::string(c.fmt) + "\n").c_str(),
                  c.v);
    EXPECT_EQ(RunProgram(src), expect) << c.fmt;
  }
}

TEST(Format, IntSpecifiersMatchSnprintf) {
  struct Case {
    const char* fmt;
    long long v;
  };
  for (const Case& c : {Case{"%d", -42}, Case{"%05d", 42}, Case{"%x", 48879},
                        Case{"%u", 7}, Case{"%c", 65}}) {
    std::string src = std::string("int main() { printf(\"") + c.fmt +
                      "\\n\", " + std::to_string(c.v) + "); return 0; }";
    char expect[80];
    const std::string host_fmt =
        std::string(c.fmt) == "%c" ? "%c\n"
                                   : ("%ll" + std::string(c.fmt).substr(
                                                  std::strlen(c.fmt) - 1) +
                                      "\n");
    if (std::string(c.fmt) == "%05d") {
      std::snprintf(expect, sizeof expect, "%05lld\n", c.v);
    } else if (std::string(c.fmt) == "%c") {
      std::snprintf(expect, sizeof expect, "%c\n", static_cast<int>(c.v));
    } else {
      std::snprintf(expect, sizeof expect, host_fmt.c_str(), c.v);
    }
    EXPECT_EQ(RunProgram(src), expect) << c.fmt;
  }
}

// --- determinism ---------------------------------------------------------------

TEST(Determinism, SameProgramSameCounts) {
  const char* src = R"(
int main() {
  char *line; size_t n = 64; int read; int total; total = 0;
  line = (char*) malloc(n);
  while ((read = getline(&line, &n, stdin)) != -1) total += read;
  printf("%d\n", total);
  return 0;
})";
  auto unit = Parse(src);
  std::int64_t ops[2];
  for (int i = 0; i < 2; ++i) {
    TextIoEnv io("aaa\nbb\nc\n");
    CountingHooks hooks;
    Interp interp(*unit, &io, &hooks);
    interp.RunMain();
    ops[i] = hooks.total_ops();
    EXPECT_EQ(io.output(), "9\n");
  }
  EXPECT_EQ(ops[0], ops[1]);
}

// --- frontend robustness: pseudo-random garbage must throw, never crash -------

TEST(Robustness, RandomGarbageNeverCrashes) {
  Prng prng(271828);
  const char alphabet[] =
      "abz019 \n\t(){}[];,+-*/%<>=!&|^~\"'.#pragma intwhile";
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    const int len = 1 + static_cast<int>(prng.NextBounded(120));
    for (int i = 0; i < len; ++i) {
      src += alphabet[prng.NextBounded(sizeof alphabet - 1)];
    }
    try {
      auto unit = Parse(src);
      (void)unit;  // parsed fine: also acceptable
    } catch (const LexError&) {
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, RandomTokenSoupNeverCrashes) {
  Prng prng(314159);
  const std::vector<std::string> toks = {
      "int",  "char", "while", "if",  "(", ")",  "{",  "}", ";",  "=",
      "main", "x",    "42",    "1.5", "+", "*",  "[",  "]", ",",  "return",
      "for",  "&",    "\"s\"", "!",   "-", "/*", "*/", "%", "do", "break"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string src;
    const int len = 1 + static_cast<int>(prng.NextBounded(60));
    for (int i = 0; i < len; ++i) {
      src += toks[prng.NextBounded(toks.size())] + " ";
    }
    try {
      auto unit = Parse(src);
      (void)unit;
    } catch (const LexError&) {
    } catch (const ParseError&) {
    } catch (const CheckError&) {
    }
  }
  SUCCEED();
}

// --- interpreter guards under adversarial programs -----------------------------

TEST(Robustness, DeepRecursionRejectedGracefully) {
  EXPECT_THROW(RunProgram("int f(int n) { return f(n + 1); }\n"
                          "int main() { return f(0); }"),
               InterpError);
}

TEST(Robustness, HugeAllocationIsJustMemory) {
  // 1M-element array: must work (the interpreter is not the place for
  // arbitrary limits).
  EXPECT_EQ(RunProgram("int main() { char b[1000000]; b[999999] = 65;\n"
                       "printf(\"%c\\n\", b[999999]); return 0; }"),
            "A\n");
}

}  // namespace
}  // namespace hd::minic
