#include "prof/critical_path.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace hd::prof {

namespace {

// Matching tolerance for "this task's end meets the cursor": DES times are
// exact doubles but ends are computed as start + dur, so allow a few ulps
// scaled to the timeline magnitude.
double Eps(double scale) { return 1e-9 * std::max(1.0, std::fabs(scale)); }

// Nearest-rank median of an unsorted sample set; 0 when empty.
double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(0.5 * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

// The engine run a node-process event belongs to: the greatest tracker pid
// strictly below the event pid (node pids are tracker_pid + node + 1).
std::int32_t TrackerFor(const std::set<std::int32_t>& trackers,
                        std::int32_t pid) {
  auto it = trackers.upper_bound(pid - 1);
  if (it == trackers.begin()) return trackers.empty() ? 0 : *trackers.begin();
  return *std::prev(it);
}

void BuildChain(JobAnalysis& job) {
  const double eps = Eps(job.end_sec);
  std::vector<ChainSegment> rev;  // latest-first during the walk
  std::vector<bool> used(job.tasks.size(), false);

  double cursor = job.end_sec;
  bool trailing = true;  // the first uncovered gap is the shuffle/reduce tail
  while (cursor > job.start_sec + eps) {
    // Latest-ending unused task at or before the cursor; ties broken by
    // earliest start then lowest task id so the walk is deterministic.
    int best = -1;
    for (std::size_t i = 0; i < job.tasks.size(); ++i) {
      if (used[i]) continue;
      const TaskRecord& t = job.tasks[i];
      if (t.end_sec() > cursor + eps) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const TaskRecord& b = job.tasks[static_cast<std::size_t>(best)];
      if (t.end_sec() > b.end_sec() + eps) {
        best = static_cast<int>(i);
      } else if (std::fabs(t.end_sec() - b.end_sec()) <= eps &&
                 (t.start_sec < b.start_sec ||
                  (t.start_sec == b.start_sec && t.task < b.task))) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) {
      // Nothing left before the cursor: the head of the timeline is
      // scheduling delay (first heartbeat).
      ChainSegment s;
      s.kind = ChainSegment::Kind::kWait;
      s.name = "wait";
      s.start_sec = job.start_sec;
      s.dur_sec = cursor - job.start_sec;
      rev.push_back(std::move(s));
      break;
    }
    const TaskRecord& t = job.tasks[static_cast<std::size_t>(best)];
    if (t.end_sec() < cursor - eps) {
      ChainSegment s;
      s.kind = trailing ? ChainSegment::Kind::kShuffleReduce
                        : ChainSegment::Kind::kWait;
      s.name = trailing ? "shuffle_reduce" : "wait";
      s.start_sec = t.end_sec();
      s.dur_sec = cursor - t.end_sec();
      rev.push_back(std::move(s));
      cursor = t.end_sec();
    }
    trailing = false;
    used[static_cast<std::size_t>(best)] = true;
    const double seg_start = std::max(job.start_sec, t.start_sec);
    if (cursor - seg_start <= 0.0) continue;  // zero-length; skip
    ChainSegment s;
    // Retry / speculative / killed / failed attempts on the chain are
    // recovery time: makespan spent because of a fault, not first-attempt
    // work. They tile the interval like any other segment.
    s.kind = t.IsRecovery() ? ChainSegment::Kind::kRecovery
                            : ChainSegment::Kind::kTask;
    s.name = t.IsRecovery() ? "recovery" : (t.on_gpu ? "gpu_map" : "cpu_map");
    s.recovery_class = t.RecoveryClass();
    s.task = t.task;
    s.on_gpu = t.on_gpu;
    s.start_sec = seg_start;
    s.dur_sec = cursor - seg_start;
    rev.push_back(std::move(s));
    cursor = seg_start;
  }
  job.chain.assign(rev.rbegin(), rev.rend());
}

void AttributeStragglers(JobAnalysis& job, const CriticalPathOptions& opts) {
  std::vector<double> cpu_durs;
  std::vector<double> gpu_durs;
  for (const TaskRecord& t : job.tasks) {
    (t.on_gpu ? gpu_durs : cpu_durs).push_back(t.dur_sec);
  }
  const double cpu_median = Median(std::move(cpu_durs));
  const double gpu_median = Median(std::move(gpu_durs));

  for (auto it = job.chain.rbegin(); it != job.chain.rend(); ++it) {
    if (it->kind != ChainSegment::Kind::kTask) continue;
    const TaskRecord* rec = nullptr;
    for (const TaskRecord& t : job.tasks) {
      if (t.task == it->task && t.on_gpu == it->on_gpu) {
        rec = &t;
        break;
      }
    }
    Straggler s;
    s.task = it->task;
    s.on_gpu = it->on_gpu;
    s.dur_sec = rec != nullptr ? rec->dur_sec : it->dur_sec;
    const double median = it->on_gpu ? gpu_median : cpu_median;
    if (median > 0.0 && s.dur_sec > opts.skew_factor * median) {
      s.cause = "input_skew";
      s.excess_sec = s.dur_sec - median;
    } else if (!it->on_gpu && job.max_observed_speedup > 1.0) {
      s.cause = "device_placement";
      s.excess_sec = s.dur_sec - s.dur_sec / job.max_observed_speedup;
    }
    job.stragglers.push_back(std::move(s));
  }
}

}  // namespace

double JobAnalysis::ChainTotalSec() const {
  double sum = 0.0;
  for (const ChainSegment& s : chain) sum += s.dur_sec;
  return sum;
}

double JobAnalysis::ChainWaitSec() const {
  double sum = 0.0;
  for (const ChainSegment& s : chain) {
    if (s.kind == ChainSegment::Kind::kWait) sum += s.dur_sec;
  }
  return sum;
}

double JobAnalysis::ChainRecoverySec() const {
  double sum = 0.0;
  for (const ChainSegment& s : chain) {
    if (s.kind == ChainSegment::Kind::kRecovery) sum += s.dur_sec;
  }
  return sum;
}

double JobAnalysis::ChainRecoveryClassSec(const char* cls) const {
  double sum = 0.0;
  for (const ChainSegment& s : chain) {
    if (s.kind == ChainSegment::Kind::kRecovery && s.recovery_class == cls) {
      sum += s.dur_sec;
    }
  }
  return sum;
}

std::vector<JobAnalysis> AnalyzeJobs(const TraceFile& trace,
                                     const CriticalPathOptions& opts) {
  // Pass 1: the engine runs sharing this trace, identified by their job
  // spans' pids (one JobTracker process per run).
  std::set<std::int32_t> trackers;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && e.category == "job" && e.name != "map_phase") {
      trackers.insert(e.pid);
    }
  }

  // Pass 2: one JobAnalysis per (tracker pid, job id), keyed so results
  // come out ordered.
  std::map<std::pair<std::int32_t, int>, JobAnalysis> jobs;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 'X' || e.category != "job" || e.name == "map_phase") {
      continue;
    }
    JobAnalysis a;
    a.job_id = static_cast<int>(e.ArgNumber("job", e.tid));
    a.tracker_pid = e.pid;
    a.name = e.name;
    a.policy = e.ArgString("policy");
    a.start_sec = e.start_sec;
    a.end_sec = e.end_sec();
    a.makespan_sec = e.dur_sec;
    a.max_observed_speedup = e.ArgNumber("max_observed_speedup", 1.0);
    jobs.emplace(std::make_pair(e.pid, a.job_id), std::move(a));
  }

  auto find_job = [&jobs, &trackers](std::int32_t event_pid,
                                     int job_id) -> JobAnalysis* {
    const std::int32_t tracker = TrackerFor(trackers, event_pid);
    auto it = jobs.find(std::make_pair(tracker, job_id));
    return it == jobs.end() ? nullptr : &it->second;
  };

  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && e.category == "task") {
      const int job_id = static_cast<int>(e.ArgNumber("job", -1.0));
      JobAnalysis* a = find_job(e.pid, job_id);
      if (a == nullptr) continue;
      TaskRecord t;
      t.task = static_cast<int>(e.ArgNumber("task", -1.0));
      t.job = job_id;
      t.on_gpu = e.name == "gpu_map";
      t.pid = e.pid;
      t.tid = e.tid;
      t.start_sec = e.start_sec;
      t.dur_sec = e.dur_sec;
      t.attempt = static_cast<int>(e.ArgNumber("attempt", 0.0));
      t.speculative = e.ArgNumber("speculative", 0.0) != 0.0;
      t.killed = e.ArgNumber("killed", 0.0) != 0.0;
      t.failed = e.ArgNumber("failed", 0.0) != 0.0;
      t.preempted = t.killed && e.ArgString("reason") == "preempted";
      t.restored = e.ArgNumber("restored", 0.0) != 0.0;
      if (t.attempt > 0) ++a->retry_attempts;
      if (t.speculative) ++a->speculative_attempts;
      if (t.killed) ++a->killed_attempts;
      if (t.failed) ++a->failed_attempts;
      if (t.preempted) ++a->preempted_attempts;
      if (t.restored) ++a->restored_attempts;
      a->tasks.push_back(std::move(t));
    } else if (e.phase == 'i' && e.category == "sched") {
      const int job_id = static_cast<int>(e.ArgNumber("job", -1.0));
      if (e.name == "tail_onset") {
        // Lives on the JobTracker lane itself.
        auto it = jobs.find(std::make_pair(e.pid, job_id));
        if (it != jobs.end() && it->second.tail_onset_sec < 0.0) {
          it->second.tail_onset_sec = e.start_sec;
        }
      } else if (e.name == "forced_gpu") {
        if (JobAnalysis* a = find_job(e.pid, job_id)) ++a->forced_gpu;
      } else if (e.name == "gpu_bounce") {
        if (JobAnalysis* a = find_job(e.pid, job_id)) ++a->gpu_bounces;
      }
    }
  }

  std::vector<JobAnalysis> out;
  out.reserve(jobs.size());
  for (auto& [key, a] : jobs) {
    for (TaskRecord& t : a.tasks) t.slack_sec = a.end_sec - t.end_sec();
    if (a.tail_onset_sec >= 0.0) {
      for (const TaskRecord& t : a.tasks) {
        if (t.on_gpu && t.start_sec >= a.tail_onset_sec - Eps(a.end_sec)) {
          ++a.tail_tasks_rescued;
        }
      }
    }
    BuildChain(a);
    AttributeStragglers(a, opts);
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<PolicyComparison> ComparePolicies(
    const std::vector<JobAnalysis>& jobs) {
  std::vector<PolicyComparison> out;
  for (const JobAnalysis& tail : jobs) {
    if (tail.policy != "tail") continue;
    for (const JobAnalysis& base : jobs) {
      if (&base == &tail || base.policy == "tail") continue;
      if (base.name != tail.name || base.job_id != tail.job_id) continue;
      PolicyComparison c;
      c.job_name = tail.name;
      c.baseline_policy = base.policy;
      c.baseline_makespan_sec = base.makespan_sec;
      c.tail_makespan_sec = tail.makespan_sec;
      c.saved_sec = base.makespan_sec - tail.makespan_sec;
      c.saved_fraction =
          base.makespan_sec > 0.0 ? c.saved_sec / base.makespan_sec : 0.0;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace hd::prof
