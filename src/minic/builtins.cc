// Default builtin set for the mini-C interpreter: the subset of libc the
// HeteroDoop benchmarks use. GPU execution overrides the stdio entries
// (getline/scanf/printf) with runtime equivalents, exactly as the paper's
// translator swaps them for getRecord/getKV/emitKV/storeKV.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "minic/interp.h"

namespace hd::minic {
namespace {

// Number of conversions applied, or -1 (EOF) if input ran out before the
// first conversion — matching C scanf.
Value ScanfImpl(Interp& in, const std::vector<Value>& args) {
  if (args.empty()) throw InterpError("scanf: missing format");
  const std::string fmt = in.ReadString(args[0]);
  std::size_t ai = 1;
  int converted = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') continue;  // literal whitespace/chars: token split
    ++i;
    while (i < fmt.size() && (fmt[i] == 'l' || fmt[i] == 'h')) ++i;
    if (i >= fmt.size()) throw InterpError("scanf: malformed format");
    const char conv = fmt[i];
    std::string tok;
    if (!in.io().NextToken(&tok)) {
      return Value::Int(converted == 0 ? -1 : converted);
    }
    if (ai >= args.size()) throw InterpError("scanf: too few arguments");
    const Value& dst = args[ai++];
    switch (conv) {
      case 's':
        in.WriteString(dst, tok);
        break;
      case 'd': case 'i': {
        Ptr p = in.RequirePtr(dst, "scanf %d");
        in.StoreThroughPtr(p, Value::Int(std::strtoll(tok.c_str(), nullptr, 10)));
        break;
      }
      case 'f': case 'e': case 'g': {
        Ptr p = in.RequirePtr(dst, "scanf %f");
        in.StoreThroughPtr(p, Value::Float(std::strtod(tok.c_str(), nullptr)));
        break;
      }
      case 'c': {
        Ptr p = in.RequirePtr(dst, "scanf %c");
        in.StoreThroughPtr(p, Value::Int(tok.empty() ? 0 : tok[0]));
        break;
      }
      default:
        throw InterpError(std::string("scanf: unsupported conversion %") + conv);
    }
    ++converted;
  }
  return Value::Int(converted);
}

Value GetlineImpl(Interp& in, const std::vector<Value>& args) {
  if (args.size() < 2) throw InterpError("getline: needs (&line, &n, stdin)");
  Ptr line_cell = in.RequirePtr(args[0], "getline line pointer");
  HD_CHECK_MSG(line_cell.obj->is_ptr_cell(),
               "getline: first argument must be a char** (got data pointer)");
  std::string rec;
  if (!in.io().NextLine(&rec)) return Value::Int(-1);
  Ptr buf = line_cell.obj->LoadPtr(line_cell.index);
  const auto needed = static_cast<std::int64_t>(rec.size()) + 1;
  if (buf.IsNull()) {
    MemObject* obj =
        in.memory().Alloc("getline_buf", Scalar::kChar, needed, in.default_space());
    buf = Ptr{obj, 0};
    line_cell.obj->StorePtr(line_cell.index, buf);
  } else if (buf.obj->size() - buf.index < needed) {
    // realloc semantics: grow the underlying object.
    buf.obj->Resize(buf.index + needed);
  }
  // Update *n if provided.
  if (args.size() >= 3 && args[1].kind == Value::Kind::kPtr &&
      !args[1].p.IsNull()) {
    in.StoreThroughPtr(args[1].p, Value::Int(buf.obj->size() - buf.index));
  }
  buf.obj->WriteCString(buf.index, rec);
  in.hooks().OnMemAccess(*buf.obj, buf.index, needed, /*is_write=*/true,
                         /*vectorizable=*/true);
  return Value::Int(static_cast<std::int64_t>(rec.size()));
}

Value PrintfImpl(Interp& in, const std::vector<Value>& args) {
  if (args.empty()) throw InterpError("printf: missing format");
  const std::string fmt = in.ReadString(args[0]);
  std::string out = in.Format(fmt, args, 1);
  in.io().Write(out);
  return Value::Int(static_cast<std::int64_t>(out.size()));
}

Value SprintfImpl(Interp& in, const std::vector<Value>& args) {
  if (args.size() < 2) throw InterpError("sprintf: needs (buf, fmt, ...)");
  const std::string fmt = in.ReadString(args[1]);
  std::string out = in.Format(fmt, args, 2);
  in.WriteString(args[0], out);
  return Value::Int(static_cast<std::int64_t>(out.size()));
}

// Reads chars of `v` (which must point into a char object) until NUL,
// charging a single vectorizable scan.
std::string ReadStr(Interp& in, const Value& v, const char* what) {
  Ptr p = in.RequirePtr(v, what);
  std::string s = p.obj->ReadCString(p.index);
  in.hooks().OnMemAccess(*p.obj, p.index,
                         static_cast<std::int64_t>(s.size()) + 1,
                         /*is_write=*/false, /*vectorizable=*/true);
  return s;
}

void RegisterString(Interp& interp) {
  interp.OverrideBuiltin("strlen", [](Interp& in, const std::vector<Value>& a) {
    std::string s = ReadStr(in, a.at(0), "strlen");
    in.hooks().OnOp(OpClass::kIntAlu, static_cast<std::int64_t>(s.size()));
    return Value::Int(static_cast<std::int64_t>(s.size()));
  });
  interp.OverrideBuiltin("strcmp", [](Interp& in, const std::vector<Value>& a) {
    std::string x = ReadStr(in, a.at(0), "strcmp");
    std::string y = ReadStr(in, a.at(1), "strcmp");
    in.hooks().OnOp(OpClass::kIntAlu,
                    static_cast<std::int64_t>(std::min(x.size(), y.size()) + 1));
    const int c = std::strcmp(x.c_str(), y.c_str());
    return Value::Int(c < 0 ? -1 : c > 0 ? 1 : 0);
  });
  interp.OverrideBuiltin("strncmp", [](Interp& in, const std::vector<Value>& a) {
    std::string x = ReadStr(in, a.at(0), "strncmp");
    std::string y = ReadStr(in, a.at(1), "strncmp");
    const auto n = static_cast<std::size_t>(a.at(2).AsInt());
    in.hooks().OnOp(OpClass::kIntAlu, static_cast<std::int64_t>(n));
    const int c = std::strncmp(x.c_str(), y.c_str(), n);
    return Value::Int(c < 0 ? -1 : c > 0 ? 1 : 0);
  });
  interp.OverrideBuiltin("strcpy", [](Interp& in, const std::vector<Value>& a) {
    std::string s = ReadStr(in, a.at(1), "strcpy src");
    in.WriteString(a.at(0), s);
    return a.at(0);
  });
  interp.OverrideBuiltin("strncpy", [](Interp& in, const std::vector<Value>& a) {
    std::string s = ReadStr(in, a.at(1), "strncpy src");
    const auto n = static_cast<std::size_t>(a.at(2).AsInt());
    if (s.size() > n) s.resize(n);
    in.WriteString(a.at(0), s);
    return a.at(0);
  });
  interp.OverrideBuiltin("strcat", [](Interp& in, const std::vector<Value>& a) {
    std::string d = ReadStr(in, a.at(0), "strcat dst");
    std::string s = ReadStr(in, a.at(1), "strcat src");
    in.WriteString(a.at(0), d + s);
    return a.at(0);
  });
  interp.OverrideBuiltin("strstr", [](Interp& in, const std::vector<Value>& a) {
    Ptr hay = in.RequirePtr(a.at(0), "strstr");
    std::string h = ReadStr(in, a.at(0), "strstr hay");
    std::string n = ReadStr(in, a.at(1), "strstr needle");
    in.hooks().OnOp(OpClass::kIntAlu,
                    static_cast<std::int64_t>(h.size() + n.size()));
    std::size_t pos = h.find(n);
    if (pos == std::string::npos) return Value::Null();
    return Value::Pointer(Ptr{hay.obj, hay.index + static_cast<std::int64_t>(pos)});
  });
  interp.OverrideBuiltin("memset", [](Interp& in, const std::vector<Value>& a) {
    Ptr p = in.RequirePtr(a.at(0), "memset");
    const std::int64_t v = a.at(1).AsInt();
    const std::int64_t n = a.at(2).AsInt();
    for (std::int64_t i = 0; i < n; ++i) p.obj->StoreInt(p.index + i, v);
    in.hooks().OnMemAccess(*p.obj, p.index, n, /*is_write=*/true,
                           /*vectorizable=*/true);
    return a.at(0);
  });
}

void RegisterMath(Interp& interp) {
  auto unary = [&interp](const char* name, double (*fn)(double),
                         OpClass op) {
    interp.OverrideBuiltin(name, [fn, op](Interp& in,
                                          const std::vector<Value>& a) {
      in.hooks().OnOp(op);
      return Value::Float(fn(a.at(0).AsFloat()));
    });
  };
  unary("sqrt", std::sqrt, OpClass::kSpecial);
  unary("exp", std::exp, OpClass::kSpecial);
  unary("log", std::log, OpClass::kSpecial);
  unary("log10", std::log10, OpClass::kSpecial);
  unary("erf", std::erf, OpClass::kSpecial);
  unary("sin", std::sin, OpClass::kSpecial);
  unary("cos", std::cos, OpClass::kSpecial);
  unary("fabs", std::fabs, OpClass::kFloatAlu);
  unary("floor", std::floor, OpClass::kFloatAlu);
  unary("ceil", std::ceil, OpClass::kFloatAlu);
  interp.OverrideBuiltin("pow", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kSpecial);
    return Value::Float(std::pow(a.at(0).AsFloat(), a.at(1).AsFloat()));
  });
  interp.OverrideBuiltin("fmax", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kFloatAlu);
    return Value::Float(std::fmax(a.at(0).AsFloat(), a.at(1).AsFloat()));
  });
  interp.OverrideBuiltin("fmin", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kFloatAlu);
    return Value::Float(std::fmin(a.at(0).AsFloat(), a.at(1).AsFloat()));
  });
  interp.OverrideBuiltin("abs", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kIntAlu);
    return Value::Int(std::llabs(a.at(0).AsInt()));
  });
}

void RegisterCtype(Interp& interp) {
  auto pred = [&interp](const char* name, int (*fn)(int)) {
    interp.OverrideBuiltin(name, [fn](Interp& in,
                                      const std::vector<Value>& a) {
      in.hooks().OnOp(OpClass::kIntAlu);
      const int c = static_cast<int>(a.at(0).AsInt()) & 0xFF;
      return Value::Int(fn(c) ? 1 : 0);
    });
  };
  pred("isspace", std::isspace);
  pred("isalpha", std::isalpha);
  pred("isdigit", std::isdigit);
  pred("isalnum", std::isalnum);
  interp.OverrideBuiltin("tolower", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kIntAlu);
    return Value::Int(std::tolower(static_cast<int>(a.at(0).AsInt()) & 0xFF));
  });
  interp.OverrideBuiltin("toupper", [](Interp& in, const std::vector<Value>& a) {
    in.hooks().OnOp(OpClass::kIntAlu);
    return Value::Int(std::toupper(static_cast<int>(a.at(0).AsInt()) & 0xFF));
  });
}

void RegisterStdlib(Interp& interp) {
  interp.OverrideBuiltin("malloc", [](Interp& in, const std::vector<Value>& a) {
    const std::int64_t n = a.at(0).AsInt();
    if (n < 0) throw InterpError("malloc: negative size");
    MemObject* obj =
        in.memory().Alloc("malloc", Scalar::kChar, n, in.default_space());
    return Value::Pointer(Ptr{obj, 0});
  });
  interp.OverrideBuiltin("free", [](Interp& in, const std::vector<Value>& a) {
    (void)in;
    if (a.at(0).kind == Value::Kind::kPtr && !a.at(0).p.IsNull()) {
      a.at(0).p.obj->MarkFreed();
    }
    return Value::Int(0);
  });
  interp.OverrideBuiltin("atoi", [](Interp& in, const std::vector<Value>& a) {
    std::string s = ReadStr(in, a.at(0), "atoi");
    in.hooks().OnOp(OpClass::kIntAlu, static_cast<std::int64_t>(s.size()) + 1);
    return Value::Int(std::strtoll(s.c_str(), nullptr, 10));
  });
  interp.OverrideBuiltin("atof", [](Interp& in, const std::vector<Value>& a) {
    std::string s = ReadStr(in, a.at(0), "atof");
    in.hooks().OnOp(OpClass::kIntAlu, static_cast<std::int64_t>(s.size()) + 1);
    return Value::Float(std::strtod(s.c_str(), nullptr));
  });
  interp.OverrideBuiltin("exit", [](Interp& in,
                                    const std::vector<Value>& a) -> Value {
    (void)in;
    throw InterpError("exit(" + std::to_string(a.at(0).AsInt()) + ") called");
  });
}

}  // namespace

void RegisterDefaultBuiltins(Interp& interp) {
  interp.OverrideBuiltin("getline", GetlineImpl);
  interp.OverrideBuiltin("scanf", ScanfImpl);
  interp.OverrideBuiltin("printf", PrintfImpl);
  interp.OverrideBuiltin("sprintf", SprintfImpl);
  interp.OverrideBuiltin("fprintf", [](Interp& in,
                                       const std::vector<Value>& a) {
    // fprintf(stderr/stdout, fmt, ...) — stream argument ignored.
    if (a.size() < 2) throw InterpError("fprintf: needs (stream, fmt, ...)");
    const std::string fmt = in.ReadString(a[1]);
    std::string out = in.Format(fmt, a, 2);
    in.io().Write(out);
    return Value::Int(static_cast<std::int64_t>(out.size()));
  });
  RegisterString(interp);
  RegisterMath(interp);
  RegisterCtype(interp);
  RegisterStdlib(interp);
}

}  // namespace hd::minic
