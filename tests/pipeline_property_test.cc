// Property tests over the GPU task pipeline and the cluster engine:
// invariants that must hold for every launch geometry, optimisation
// combination, and scheduling policy.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "apps/benchmark.h"
#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

namespace hd {
namespace {

using apps::Benchmark;
using apps::GetBenchmark;
using sched::Policy;

std::map<std::string, long> KeySums(const gpurt::MapTaskResult& r) {
  std::map<std::string, long> sums;
  for (const auto& part : r.partitions) {
    for (const auto& kv : part) sums[kv.key] += std::stol(kv.value);
  }
  return sums;
}

// --- GPU task invariants across launch geometries ---------------------------

struct GeometryCase {
  int blocks;
  int threads;
};

class LaunchGeometry : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(LaunchGeometry, WordcountSumsInvariant) {
  const auto [blocks, threads] = GetParam();
  const Benchmark& wc = GetBenchmark("WC");
  gpurt::JobProgram job =
      gpurt::CompileJob(wc.map_source, wc.combine_source, wc.reduce_source);
  const std::string split = wc.generate(6000, 77);

  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  gpurt::CpuTaskOptions copts;
  copts.num_reducers = 3;
  const auto cpu_sums = KeySums(gpurt::CpuMapTask(job, cpu, copts).Run(split));

  gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
  gpurt::GpuTaskOptions gopts;
  gopts.num_reducers = 3;
  gopts.blocks = blocks;
  gopts.threads = threads;
  auto gpu = gpurt::GpuMapTask(job, &device, gopts).Run(split);
  EXPECT_EQ(KeySums(gpu), cpu_sums)
      << blocks << "x" << threads;
  EXPECT_EQ(device.used_bytes(), 0);
  EXPECT_GT(gpu.phases.Total(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaunchGeometry,
    ::testing::Values(GeometryCase{1, 32}, GeometryCase{1, 256},
                      GeometryCase{3, 64}, GeometryCase{16, 32},
                      GeometryCase{8, 128}, GeometryCase{60, 256}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
      return "b" + std::to_string(info.param.blocks) + "t" +
             std::to_string(info.param.threads);
    });

// --- optimisation combinations never change results --------------------------

class OptimizationMask : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationMask, HistratingsResultsInvariant) {
  const int mask = GetParam();
  const Benchmark& hr = GetBenchmark("HR");
  gpurt::JobProgram job =
      gpurt::CompileJob(hr.map_source, hr.combine_source, hr.reduce_source);
  const std::string split = hr.generate(5000, 13);

  gpurt::GpuTaskOptions base;
  base.num_reducers = 2;
  base.blocks = 4;
  base.threads = 64;
  gpusim::GpuDevice d0(gpusim::DeviceConfig::TeslaK40());
  const auto reference = KeySums(gpurt::GpuMapTask(job, &d0, base).Run(split));

  gpurt::GpuTaskOptions opts = base;
  opts.vectorize_map = mask & 1;
  opts.vectorize_combine = mask & 2;
  opts.use_texture = mask & 4;
  opts.record_stealing = mask & 8;
  opts.aggregate_before_sort = mask & 16;
  gpusim::GpuDevice d1(gpusim::DeviceConfig::TeslaK40());
  EXPECT_EQ(KeySums(gpurt::GpuMapTask(job, &d1, opts).Run(split)), reference)
      << "mask=" << mask;
}

INSTANTIATE_TEST_SUITE_P(AllMasks, OptimizationMask,
                         ::testing::Range(0, 32));

// --- device sweep -------------------------------------------------------------

TEST(DeviceSweep, BothPaperDevicesRunEveryBenchmark) {
  for (const auto& bench : apps::AllBenchmarks()) {
    gpurt::JobProgram job = gpurt::CompileJob(
        bench.map_source, bench.combine_source, bench.reduce_source);
    const std::string split = bench.generate(2500, 3);
    for (auto device_config : {gpusim::DeviceConfig::TeslaK40(),
                               gpusim::DeviceConfig::TeslaM2090()}) {
      gpusim::GpuDevice device(device_config);
      gpurt::GpuTaskOptions opts;
      opts.num_reducers = bench.map_only ? 0 : 2;
      opts.blocks = 4;
      opts.threads = 64;
      auto r = gpurt::GpuMapTask(job, &device, opts).Run(split);
      EXPECT_GT(r.stats.records, 0) << bench.id << " " << device_config.name;
      EXPECT_GT(r.TotalPairs(), 0) << bench.id << " " << device_config.name;
      EXPECT_EQ(device.used_bytes(), 0) << bench.id;
    }
  }
}

// --- cluster engine invariants across configuration sweeps --------------------

struct EngineCase {
  Policy policy;
  int slaves;
  int slots;
  int gpus;
  double gpu_sec;
};

class EngineSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineSweep, ConservationAndBounds) {
  const EngineCase c = GetParam();
  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = 97;  // prime: exercises uneven waves
  p.num_reducers = 2;
  p.cpu_task_sec = 10.0;
  p.gpu_task_sec = c.gpu_sec;
  p.variation = 0.2;
  p.reduce_sec = 1.0;
  hadoop::CalibratedTaskSource source(p);
  hadoop::ClusterConfig cluster;
  cluster.num_slaves = c.slaves;
  cluster.map_slots_per_node = c.slots;
  cluster.gpus_per_node = c.gpus;
  hadoop::JobResult r = hadoop::JobEngine(cluster, &source, c.policy).Run();

  // Work conservation: every map ran exactly once.
  EXPECT_EQ(r.cpu_tasks + r.gpu_tasks, 97);
  if (c.policy == Policy::kCpuOnly) {
    EXPECT_EQ(r.gpu_tasks, 0);
  }

  // Makespan lower bound: total work / total throughput.
  const double cpu_rate = c.slaves * c.slots / p.cpu_task_sec;
  const double gpu_rate = c.policy == Policy::kCpuOnly
                              ? 0.0
                              : c.slaves * c.gpus / p.gpu_task_sec;
  const double lower = 97.0 / (cpu_rate + gpu_rate) * 0.75;  // w/ variation
  EXPECT_GE(r.makespan_sec, lower);
  // And a sanity upper bound: everything serial on one CPU slot.
  EXPECT_LE(r.makespan_sec, 97.0 * p.cpu_task_sec * 1.3);
  EXPECT_GE(r.makespan_sec, r.map_phase_end_sec);
}

std::vector<EngineCase> EngineCases() {
  std::vector<EngineCase> cases;
  for (Policy policy : {Policy::kCpuOnly, Policy::kGpuFirst, Policy::kTail}) {
    for (int slaves : {1, 3, 8}) {
      for (double gpu_sec : {1.0, 5.0}) {
        cases.push_back({policy, slaves, 2, 1, gpu_sec});
      }
    }
  }
  cases.push_back({Policy::kTail, 4, 4, 3, 0.5});
  cases.push_back({Policy::kGpuFirst, 4, 4, 3, 0.5});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Configs, EngineSweep,
                         ::testing::ValuesIn(EngineCases()));

// --- determinism of the full pipeline ------------------------------------------

TEST(Determinism, IdenticalRunsProduceIdenticalResults) {
  const Benchmark& gr = GetBenchmark("GR");
  gpurt::JobProgram job =
      gpurt::CompileJob(gr.map_source, gr.combine_source, gr.reduce_source);
  std::vector<std::string> splits = {gr.generate(3000, 1),
                                     gr.generate(3000, 2)};
  double makespans[2];
  std::vector<gpurt::KvPair> outputs[2];
  for (int i = 0; i < 2; ++i) {
    hadoop::FunctionalTaskSource::Options fopts;
    fopts.num_reducers = 2;
    hadoop::FunctionalTaskSource source(job, splits, fopts);
    hadoop::ClusterConfig cluster;
    cluster.num_slaves = 2;
    cluster.map_slots_per_node = 1;
    cluster.gpus_per_node = 1;
    cluster.heartbeat_sec = 0.05;
    hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source, Policy::kTail).Run();
    makespans[i] = r.makespan_sec;
    outputs[i] = r.final_output;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
  EXPECT_EQ(outputs[0], outputs[1]);
}

// --- partial GPU failure injection ---------------------------------------------

class FlakyGpuSource : public hadoop::TaskTimeSource {
 public:
  int num_map_tasks() const override { return 40; }
  int num_reducers() const override { return 0; }
  hadoop::MapTaskTiming MapTask(int idx, bool on_gpu) override {
    if (on_gpu && idx % 3 == 0) {
      throw hadoop::GpuTaskFailure("injected failure");
    }
    return {on_gpu ? 1.0 : 5.0, 1 << 10};
  }
  double ReduceSeconds(int) override { return 0.0; }
};

TEST(FaultInjection, PartialGpuFailuresStillComplete) {
  FlakyGpuSource source;
  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 2;
  cluster.map_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  hadoop::JobResult r =
      hadoop::JobEngine(cluster, &source, Policy::kGpuFirst).Run();
  EXPECT_EQ(r.cpu_tasks + r.gpu_tasks, 40);
  EXPECT_GT(r.gpu_failures, 0);
  EXPECT_GT(r.gpu_tasks, 0);  // non-multiples of 3 still run on the GPU
}

}  // namespace
}  // namespace hd
