# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/minic_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/minic_parser_test[1]_include.cmake")
include("/root/repo/build/tests/minic_interp_test[1]_include.cmake")
include("/root/repo/build/tests/minic_sema_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/gpurt_test[1]_include.cmake")
include("/root/repo/build/tests/hdfs_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/hadoop_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/minic_property_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_property_test[1]_include.cmake")
include("/root/repo/build/tests/seqfile_test[1]_include.cmake")
