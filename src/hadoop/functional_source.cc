#include "hadoop/functional_source.h"

#include <cmath>

#include "common/check.h"
#include "gpurt/sort.h"

namespace hd::hadoop {

FunctionalTaskSource::FunctionalTaskSource(const gpurt::JobProgram& job,
                                           const hdfs::Hdfs& fs,
                                           std::string input_path,
                                           Options options)
    : job_(job),
      fs_(&fs),
      input_path_(std::move(input_path)),
      opts_(std::move(options)),
      device_(opts_.device) {
  HD_CHECK_MSG(fs.HasContent(input_path_),
               "functional source needs content-backed splits");
}

FunctionalTaskSource::FunctionalTaskSource(const gpurt::JobProgram& job,
                                           std::vector<std::string> splits,
                                           Options options)
    : job_(job),
      splits_(std::move(splits)),
      opts_(std::move(options)),
      device_(opts_.device) {}

int FunctionalTaskSource::num_map_tasks() const {
  return fs_ != nullptr ? fs_->NumSplits(input_path_)
                        : static_cast<int>(splits_.size());
}

const std::string& FunctionalTaskSource::SplitContent(int idx) const {
  if (fs_ != nullptr) return fs_->SplitContent(input_path_, idx);
  HD_CHECK(idx >= 0 && idx < static_cast<int>(splits_.size()));
  return splits_[static_cast<std::size_t>(idx)];
}

MapTaskTiming FunctionalTaskSource::MapTask(int idx, bool on_gpu) {
  const std::string& split = SplitContent(idx);
  gpurt::MapTaskResult result;
  if (on_gpu) {
    gpurt::GpuTaskOptions gopts = opts_.gpu;
    gopts.num_reducers = opts_.num_reducers;
    gopts.io = opts_.io;
    try {
      result = gpurt::GpuMapTask(job_, &device_, gopts).Run(split);
    } catch (const gpusim::DeviceOomError& e) {
      throw GpuTaskFailure(e.what());
    }
  } else {
    gpurt::CpuTaskOptions copts;
    copts.num_reducers = opts_.num_reducers;
    copts.io = opts_.io;
    result = gpurt::CpuMapTask(job_, opts_.cpu, copts).Run(split);
  }
  MapTaskTiming timing;
  timing.seconds = result.phases.Total();
  timing.output_bytes = result.stats.output_bytes;
  map_results_[idx] = std::move(result);
  return timing;
}

const gpurt::MapTaskResult& FunctionalTaskSource::TaskResult(int idx) const {
  auto it = map_results_.find(idx);
  HD_CHECK_MSG(it != map_results_.end(), "task " << idx << " never ran");
  return it->second;
}

void FunctionalTaskSource::EnsureReduced() {
  if (reduced_) return;
  HD_CHECK_MSG(static_cast<int>(map_results_.size()) == num_map_tasks(),
               "reduce phase requested before all maps completed");
  const int reducers = num_reducers();
  reduce_outputs_.assign(static_cast<std::size_t>(std::max(1, reducers)), {});
  reduce_seconds_.assign(reduce_outputs_.size(), 0.0);
  if (reducers == 0) {
    // Map-only: output is the concatenation of every task's single
    // partition, in task order.
    for (const auto& [idx, result] : map_results_) {
      auto& out = reduce_outputs_[0];
      out.insert(out.end(), result.partitions[0].begin(),
                 result.partitions[0].end());
    }
    reduced_ = true;
    return;
  }
  for (int r = 0; r < reducers; ++r) {
    // Merge this reducer's partition from every map task, then sort — the
    // reduce-side sort phase (§2.2).
    std::vector<gpurt::KvPair> merged;
    for (const auto& [idx, result] : map_results_) {
      const auto& part = result.partitions[static_cast<std::size_t>(r)];
      merged.insert(merged.end(), part.begin(), part.end());
    }
    gpurt::SortPairsByKey(&merged);
    double seconds = 0.0;
    // Merge cost: n log2(waves) comparisons on key bytes.
    const double n = static_cast<double>(merged.size());
    if (n > 1) {
      double key_bytes = 0.0;
      for (const auto& kv : merged) {
        key_bytes += static_cast<double>(kv.key.size());
      }
      key_bytes /= n;
      const double per_cmp = key_bytes * (opts_.cpu.cycles_mem +
                                          opts_.cpu.cycles_int_alu) +
                             4 * opts_.cpu.cycles_branch;
      seconds += n * std::ceil(std::log2(n)) * per_cmp /
                 (opts_.cpu.clock_ghz * 1e9);
    }
    auto& out = reduce_outputs_[static_cast<std::size_t>(r)];
    if (job_.reduce != nullptr) {
      gpurt::ReduceResult rr = gpurt::RunReduce(*job_.reduce, merged, opts_.cpu);
      out = std::move(rr.output);
      seconds += rr.seconds;
    } else {
      out = std::move(merged);
    }
    std::int64_t out_bytes = 0;
    for (const auto& kv : out) {
      out_bytes += static_cast<std::int64_t>(kv.key.size() +
                                             kv.value.size() + 2);
    }
    seconds += opts_.io.HdfsWriteSeconds(static_cast<double>(out_bytes));
    reduce_seconds_[static_cast<std::size_t>(r)] = seconds;
  }
  reduced_ = true;
}

double FunctionalTaskSource::ReduceSeconds(int reducer) {
  EnsureReduced();
  HD_CHECK(reducer >= 0 &&
           reducer < static_cast<int>(reduce_seconds_.size()));
  return reduce_seconds_[static_cast<std::size_t>(reducer)];
}

std::vector<gpurt::KvPair> FunctionalTaskSource::FinalOutput() {
  EnsureReduced();
  std::vector<gpurt::KvPair> out;
  for (const auto& part : reduce_outputs_) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace hd::hadoop
