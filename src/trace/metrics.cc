#include "trace/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/json.h"
#include "common/stats.h"

namespace hd::trace {

double Distribution::Min() const {
  HD_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Distribution::Max() const {
  HD_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Distribution::Mean() const { return stats::Mean(samples_); }

double Distribution::Percentile(double q) const {
  return stats::NearestRankPercentile(samples_, q);
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Distribution& Registry::distribution(std::string_view name) {
  auto it = distributions_.find(name);
  if (it == distributions_.end()) {
    it = distributions_.emplace(std::string(name), Distribution{}).first;
  }
  return it->second;
}

const Counter* Registry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Distribution* Registry::FindDistribution(std::string_view name) const {
  const auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

void Registry::WriteJson(std::ostream& os) const {
  json::Writer w(os);
  w.BeginObject();
  // The three maps are each name-sorted; a merged walk keeps the whole
  // document sorted by key (counter/gauge/distribution names never clash
  // by convention — suffixed distribution keys sort adjacent regardless).
  auto c = counters_.begin();
  auto g = gauges_.begin();
  auto d = distributions_.begin();
  auto next_is_counter = [&] {
    if (c == counters_.end()) return false;
    if (g != gauges_.end() && g->first < c->first) return false;
    if (d != distributions_.end() && d->first < c->first) return false;
    return true;
  };
  auto next_is_gauge = [&] {
    if (g == gauges_.end()) return false;
    if (d != distributions_.end() && d->first < g->first) return false;
    return true;
  };
  while (c != counters_.end() || g != gauges_.end() ||
         d != distributions_.end()) {
    if (next_is_counter()) {
      w.Key(c->first).Int(c->second.value());
      ++c;
    } else if (next_is_gauge()) {
      w.Key(g->first).Number(g->second.value());
      ++g;
    } else {
      const auto& [name, dist] = *d;
      w.Key(name + ".count").Int(dist.count());
      if (dist.count() > 0) {
        w.Key(name + ".min").Number(dist.Min());
        w.Key(name + ".mean").Number(dist.Mean());
        w.Key(name + ".p50").Number(dist.Percentile(0.50));
        w.Key(name + ".p95").Number(dist.Percentile(0.95));
        w.Key(name + ".p99").Number(dist.Percentile(0.99));
        w.Key(name + ".p999").Number(dist.Percentile(0.999));
        w.Key(name + ".max").Number(dist.Max());
      }
      ++d;
    }
  }
  w.EndObject();
  os << '\n';
}

}  // namespace hd::trace
