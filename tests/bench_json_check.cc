// One schema test covering every bench binary: runs each with
// `--smoke --quiet --json --trace` and validates the shared
// "heterodoop.bench.v1" report schema plus the Chrome trace envelope with
// the in-repo JSON parser. HD_BENCH_BIN_DIR is injected by CMake.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/reporter.h"
#include "common/json.h"

namespace {

using hd::json::Parse;
using hd::json::Value;

constexpr const char* kBenches[] = {
    "table2_workloads", "table3_clusters",  "fig3_tail_example",
    "fig4a_cluster1",   "fig4b_cluster2",   "fig5_task_speedup",
    "fig6_breakdown",   "fig7_optimizations", "ablation_tuning",
    "multijob_throughput", "fault_sweep", "stream_steady", "des_scale",
};

std::string Slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void CheckReport(const std::string& bench, const std::string& path) {
  const Value doc = Parse(Slurp(path));
  ASSERT_TRUE(doc.is_object()) << bench;
  const Value* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr) << bench;
  EXPECT_EQ(schema->string, "heterodoop.bench.v1") << bench;
  const Value* id = doc.Find("benchmark");
  ASSERT_NE(id, nullptr) << bench;
  EXPECT_EQ(id->string, bench);
  const Value* smoke = doc.Find("smoke");
  ASSERT_NE(smoke, nullptr) << bench;
  EXPECT_EQ(smoke->kind, Value::Kind::kBool) << bench;
  const Value* config = doc.Find("config");
  ASSERT_NE(config, nullptr) << bench;
  EXPECT_TRUE(config->is_object()) << bench;
  const Value* modeled = doc.Find("modeled_seconds");
  ASSERT_NE(modeled, nullptr) << bench;
  EXPECT_TRUE(modeled->is_number()) << bench;
  const Value* rows = doc.Find("rows");
  ASSERT_NE(rows, nullptr) << bench;
  ASSERT_TRUE(rows->is_array()) << bench;
  ASSERT_FALSE(rows->array.empty()) << bench;
  for (const Value& row : rows->array) {
    ASSERT_TRUE(row.is_object()) << bench;
    const Value* table = row.Find("table");
    ASSERT_NE(table, nullptr) << bench;
    EXPECT_TRUE(table->is_string()) << bench;
    // Beyond the table tag, each row carries at least one typed cell.
    EXPECT_GE(row.object.size(), 2u) << bench;
  }
  const Value* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr) << bench;
  EXPECT_TRUE(metrics->is_object()) << bench;
  // Distribution exports always carry the running-sum key alongside the
  // percentile expansion.
  for (const auto& [key, v] : metrics->object) {
    const std::string k = key;
    if (k.size() > 6 && k.compare(k.size() - 6, 6, ".count") == 0 &&
        metrics->Find(k.substr(0, k.size() - 6) + ".p50") != nullptr) {
      EXPECT_NE(metrics->Find(k.substr(0, k.size() - 6) + ".sum"), nullptr)
          << bench << " " << k;
    }
  }
  // "alerts" is always present — SLO alert transitions when a telemetry
  // sampler ran, an empty array otherwise.
  const Value* alerts = doc.Find("alerts");
  ASSERT_NE(alerts, nullptr) << bench;
  EXPECT_TRUE(alerts->is_array()) << bench;
  for (const Value& a : alerts->array) {
    ASSERT_TRUE(a.is_object()) << bench;
    EXPECT_NE(a.Find("t"), nullptr) << bench;
    EXPECT_NE(a.Find("rule"), nullptr) << bench;
    EXPECT_NE(a.Find("state"), nullptr) << bench;
    EXPECT_NE(a.Find("value"), nullptr) << bench;
  }
}

void CheckTrace(const std::string& bench, const std::string& path) {
  const Value doc = Parse(Slurp(path));
  ASSERT_TRUE(doc.is_object()) << bench;
  const Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr) << bench;
  ASSERT_TRUE(events->is_array()) << bench;
  const std::set<std::string> allowed = {"M", "X", "i"};
  for (const Value& e : events->array) {
    ASSERT_TRUE(e.is_object()) << bench;
    const Value* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr) << bench;
    EXPECT_TRUE(allowed.count(ph->string)) << bench << " ph=" << ph->string;
    EXPECT_NE(e.Find("pid"), nullptr) << bench;
    EXPECT_NE(e.Find("tid"), nullptr) << bench;
    EXPECT_NE(e.Find("name"), nullptr) << bench;
  }
}

TEST(BenchJson, EveryBinaryEmitsTheSharedSchema) {
  const std::string bin_dir = HD_BENCH_BIN_DIR;
  for (const char* bench : kBenches) {
    const std::string json_path =
        bin_dir + "/" + bench + ".schema_check.json";
    const std::string trace_path =
        bin_dir + "/" + bench + ".schema_check.trace.json";
    const std::string metrics_path =
        bin_dir + "/" + bench + ".schema_check.metrics.json";
    // --trace-out is the canonical flag name across every binary
    // (--trace remains as an alias, exercised by the Reporter unit test).
    const std::string cmd = bin_dir + "/" + bench +
                            " --smoke --quiet --json " + json_path +
                            " --trace-out " + trace_path + " --metrics-out " +
                            metrics_path;
    ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
    CheckReport(bench, json_path);
    CheckTrace(bench, trace_path);
    // The standalone metrics export is the same flat object embedded in
    // the report under "metrics".
    const Value metrics = Parse(Slurp(metrics_path));
    ASSERT_TRUE(metrics.is_object()) << bench;
    const Value report = Parse(Slurp(json_path));
    const Value* embedded = report.Find("metrics");
    ASSERT_NE(embedded, nullptr) << bench;
    EXPECT_EQ(metrics.object.size(), embedded->object.size()) << bench;
    std::remove(json_path.c_str());
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
  }
}

// fault_sweep's contract beyond the shared schema: the shared --seed flag
// threads through, every fault_invariance row reports bit-identical output,
// and
// the faulted rows carry real recovery activity (the invariant is not
// vacuously true).
TEST(BenchJson, FaultSweepReportsOutputInvariance) {
  const std::string bin_dir = HD_BENCH_BIN_DIR;
  const std::string json_path = bin_dir + "/fault_sweep.invariance.json";
  const std::string cmd = bin_dir +
                          "/fault_sweep --smoke --quiet --seed 907 --json " +
                          json_path;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;
  const Value doc = Parse(Slurp(json_path));
  ASSERT_TRUE(doc.is_object());
  const Value* rows = doc.Find("rows");
  ASSERT_NE(rows, nullptr);
  int invariance_rows = 0;
  double recovery_events = 0.0;
  for (const Value& row : rows->array) {
    const Value* table = row.Find("table");
    ASSERT_NE(table, nullptr);
    if (table->string != "fault_invariance") continue;
    ++invariance_rows;
    const Value* identical = row.Find("output_identical");
    ASSERT_NE(identical, nullptr);
    EXPECT_EQ(identical->number, 1.0)
        << "faults=" << row.Find("faults")->string;
    recovery_events += row.Find("fails")->number +
                       row.Find("retries")->number +
                       row.Find("reexec")->number;
  }
  EXPECT_EQ(invariance_rows, 3);  // none / light / heavy
  EXPECT_GT(recovery_events, 0.0);
  const Value* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Value* flag = metrics->Find("fault_sweep.output_identical");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->number, 1.0);
  // The seed threads into the config echo, so CI's per-seed runs are
  // distinguishable in their reports.
  EXPECT_EQ(doc.Find("config")->Find("seed")->number, 907.0);
  std::remove(json_path.c_str());
}

TEST(Reporter, InProcessReportMatchesSchema) {
  const std::string json_path =
      std::string(HD_BENCH_BIN_DIR) + "/reporter_unit.json";
  std::string arg_json = "--json";
  std::string arg_path = json_path;
  std::string arg_quiet = "--quiet";
  std::string arg_smoke = "--smoke";
  std::string prog = "unit";
  char* argv[] = {prog.data(), arg_json.data(), arg_path.data(),
                  arg_quiet.data(), arg_smoke.data()};
  {
    hd::bench::Reporter rep("unit", 5, argv);
    EXPECT_TRUE(rep.smoke());
    EXPECT_TRUE(rep.quiet());
    EXPECT_EQ(rep.sink(), nullptr);  // no --trace
    rep.Config("k", 3);
    rep.metrics()->counter("unit.count").Add(2);
    auto& t = rep.AddTable("t", {"name", "x"});
    t.Row().Cell("a").Cell(1.5, 2);
    rep.Print(t);
    rep.AddModeledSeconds(4.25);
    EXPECT_EQ(rep.Finish(), 0);
  }
  const Value doc = Parse(Slurp(json_path));
  EXPECT_EQ(doc.Find("schema")->string, hd::bench::kSchema);
  EXPECT_EQ(doc.Find("benchmark")->string, "unit");
  EXPECT_TRUE(doc.Find("smoke")->boolean);
  EXPECT_EQ(doc.Find("config")->Find("k")->number, 3.0);
  EXPECT_EQ(doc.Find("modeled_seconds")->number, 4.25);
  const Value* rows = doc.Find("rows");
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_EQ(rows->array[0].Find("table")->string, "t");
  EXPECT_EQ(rows->array[0].Find("name")->string, "a");
  EXPECT_EQ(rows->array[0].Find("x")->number, 1.5);
  EXPECT_EQ(doc.Find("metrics")->Find("unit.count")->number, 2.0);
  std::remove(json_path.c_str());
}

TEST(Reporter, TraceAliasAndMetricsOutWriteTheirFiles) {
  const std::string trace_path =
      std::string(HD_BENCH_BIN_DIR) + "/reporter_unit.trace.json";
  const std::string metrics_path =
      std::string(HD_BENCH_BIN_DIR) + "/reporter_unit.metrics.json";
  std::string prog = "unit";
  std::string arg_trace = "--trace";  // legacy alias of --trace-out
  std::string arg_trace_path = trace_path;
  std::string arg_metrics = "--metrics-out";
  std::string arg_metrics_path = metrics_path;
  std::string arg_quiet = "--quiet";
  char* argv[] = {prog.data(),         arg_trace.data(), arg_trace_path.data(),
                  arg_metrics.data(),  arg_metrics_path.data(),
                  arg_quiet.data()};
  {
    hd::bench::Reporter rep("unit", 6, argv);
    ASSERT_NE(rep.sink(), nullptr);  // the alias enables tracing
    rep.sink()->Span("c", "s", {0, 0}, 0.0, 1.0);
    rep.metrics()->distribution("unit.lat").Record(2.5);
    EXPECT_EQ(rep.Finish(), 0);
  }
  const Value trace = Parse(Slurp(trace_path));
  ASSERT_NE(trace.Find("traceEvents"), nullptr);
  EXPECT_FALSE(trace.Find("traceEvents")->array.empty());
  const Value metrics = Parse(Slurp(metrics_path));
  ASSERT_TRUE(metrics.is_object());
  EXPECT_EQ(metrics.Find("unit.lat.count")->number, 1.0);
  EXPECT_EQ(metrics.Find("unit.lat.p99")->number, 2.5);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

}  // namespace
