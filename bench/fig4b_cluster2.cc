// Reproduces Fig. 4(b): multi-GPU scalability on Cluster2 (32 slaves x
// 4-core Xeon + 3 Tesla M2090, in-memory storage), comparing GPU-first and
// tail scheduling at 1, 2 and 3 GPUs per node. KM is absent: its working
// set exceeds the M2090's device memory (§7.3).
#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "hadoop/engine.h"

int main(int argc, char** argv) {
  using namespace hd;
  using hadoop::CalibratedTaskSource;
  using hadoop::ClusterConfig;
  using hadoop::JobEngine;
  using sched::Policy;

  bench::Reporter rep("fig4b_cluster2", argc, argv);
  const std::int64_t split_bytes = rep.smoke()
                                       ? bench::kMeasuredSplitBytes / 12
                                       : bench::kMeasuredSplitBytes;
  rep.Config("split_bytes", split_bytes);
  rep.Config("num_slaves", 32);
  rep.Config("map_slots_per_node", 4);
  rep.Config("device", gpusim::DeviceConfig::TeslaM2090().name);

  rep.out() << "Fig. 4(b): job speedup over CPU-only Hadoop, Cluster2\n"
            << "(32 slaves, 4 CPU map slots + 1..3 M2090 GPUs per node, "
               "in-memory)\n\n";

  auto& t = rep.AddTable(
      "fig4b", {"Benchmark", "1GPU gf", "1GPU tail", "2GPU gf", "2GPU tail",
                "3GPU gf", "3GPU tail"});
  int pid = 0;
  for (const auto& b : apps::AllBenchmarks()) {
    if (!b.cluster2.available) {
      t.Row().Cell(b.id).Cell("NA").Cell("NA").Cell("NA").Cell("NA")
          .Cell("NA").Cell("NA");
      continue;
    }
    bench::MeasureConfig mcfg;
    mcfg.device = gpusim::DeviceConfig::TeslaM2090();
    mcfg.cpu = gpusim::CpuConfig::XeonX5560();
    mcfg.io = gpurt::IoConfig::InMemory();
    mcfg.measure_baseline = false;
    mcfg.split_bytes = split_bytes;
    mcfg.sink = rep.sink();
    mcfg.metrics = rep.metrics();
    mcfg.track.pid = pid;
    if (mcfg.sink != nullptr) mcfg.sink->NameProcess(pid, b.id);
    ++pid;
    const bench::MeasuredTask m = bench::MeasureTask(b, mcfg);

    CalibratedTaskSource::Params p;
    p.num_maps = b.cluster2.map_tasks;
    p.num_reducers = b.cluster2.reduce_tasks;
    p.cpu_task_sec = m.CpuSec() * bench::kProductionScale;
    p.gpu_task_sec = m.GpuSec() * bench::kProductionScale;
    p.variation = 0.10;
    p.map_output_bytes = static_cast<std::int64_t>(
        m.gpu.stats.output_bytes * bench::kProductionScale);
    p.reduce_sec = 8.0;

    ClusterConfig cluster;
    cluster.num_slaves = 32;
    cluster.map_slots_per_node = 4;
    cluster.reduce_slots_per_node = 2;
    cluster.network_bytes_per_sec = 2.0e9;  // QDR InfiniBand, in-memory
    cluster.metrics = rep.metrics();

    CalibratedTaskSource baseline_source(p);
    cluster.gpus_per_node = 0;
    const double cpu_only =
        JobEngine(cluster, &baseline_source, Policy::kCpuOnly).Run()
            .makespan_sec;
    rep.AddModeledSeconds(cpu_only);

    bench::ReportTable& row = t.Row();
    row.Cell(b.id);
    for (int gpus : {1, 2, 3}) {
      cluster.gpus_per_node = gpus;
      for (Policy policy : {Policy::kGpuFirst, Policy::kTail}) {
        CalibratedTaskSource source(p);
        hadoop::JobResult r = JobEngine(cluster, &source, policy).Run();
        rep.AddModeledSeconds(r.makespan_sec);
        row.Cell(cpu_only / r.makespan_sec, 2);
      }
    }
  }
  rep.Print(t);
  rep.out() << "\nExpected shape: speedups grow with GPU count; tail >= "
               "GPU-first;\nIO-intensive apps gain more than on Cluster1 "
               "(fewer CPU cores, in-memory IO).\n";
  return rep.Finish();
}
