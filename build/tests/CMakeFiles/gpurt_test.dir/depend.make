# Empty dependencies file for gpurt_test.
# This may be replaced when dependencies are built.
