// The continuous-benchmark suite document and its regression comparator.
//
// `bench/regress` runs the figure benches and serializes one suite
// document per revision; `hdprof compare A.json B.json` diffs two such
// documents. Schema "heterodoop.bench-suite.v1":
//
//   {
//     "schema": "heterodoop.bench-suite.v1",
//     "rev": "<revision id>",
//     "smoke": <bool>,
//     "suite": [
//       {
//         "benchmark": "<binary id>",
//         "modeled_seconds": <number>,
//         "metrics": { <flat numeric metrics from the bench report> }
//       }, ...
//     ]
//   }
//
// Comparison semantics: `modeled_seconds` is the scored metric — a
// relative increase beyond the noise threshold is a regression, a decrease
// beyond it an improvement. Every other metric key present in both runs is
// diffed for *attribution* only (what changed inside the regressing
// bench), never scored. Benchmarks present on one side only are reported
// as added/removed. Because same-seed simulator runs are bit-identical,
// the default threshold guards only against intentional model changes, not
// wall-clock noise.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hd::prof {

inline constexpr const char* kSuiteSchema = "heterodoop.bench-suite.v1";

struct BenchRun {
  std::string benchmark;
  double modeled_seconds = 0.0;
  // Flat numeric metrics, sorted by key (the registry export order).
  std::vector<std::pair<std::string, double>> metrics;

  const double* FindMetric(const std::string& key) const;
};

struct Suite {
  std::string rev;
  bool smoke = false;
  std::vector<BenchRun> runs;

  const BenchRun* FindRun(const std::string& benchmark) const;
};

// Parses a suite document; throws std::runtime_error on malformed input or
// a schema mismatch.
Suite ParseSuite(std::string_view text);
Suite LoadSuite(const std::string& path);
void WriteSuite(std::ostream& os, const Suite& suite);

// Builds one suite entry from a "heterodoop.bench.v1" report document
// (keeps `benchmark`, `modeled_seconds` and the numeric `metrics` keys).
BenchRun RunFromBenchReport(std::string_view report_json);

struct Delta {
  std::string benchmark;
  std::string metric;  // "modeled_seconds" or a metrics key
  double before = 0.0;
  double after = 0.0;
  double rel_change = 0.0;  // (after - before) / before; 0/0 -> 0
  bool scored = false;      // modeled_seconds rows only
  bool regression = false;  // scored && rel_change > threshold
};

struct CompareOptions {
  // Relative modeled_seconds change beyond which a delta counts.
  double threshold = 0.01;
};

struct CompareResult {
  std::vector<Delta> deltas;  // beyond-threshold changes, suite order
  std::vector<std::string> added_benchmarks;    // in `after` only
  std::vector<std::string> removed_benchmarks;  // in `before` only
  int regressions = 0;
  int improvements = 0;

  bool Failed() const { return regressions > 0 || !removed_benchmarks.empty(); }
};

CompareResult Compare(const Suite& before, const Suite& after,
                      const CompareOptions& opts = {});

}  // namespace hd::prof
