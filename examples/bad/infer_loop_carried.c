// Rejected by hdinfer: the record loop carries `prev` between iterations
// (each record emits the previous record's number), so records are not
// independently processable and no mapper directive can be synthesized.
int main() {
  char *line;
  size_t nbytes = 256;
  int cur, prev, read;
  prev = 0;
  line = (char*) malloc(nbytes * sizeof(char));
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    cur = atoi(line);
    printf("%d\t%d\n", cur, prev);
    prev = cur;
  }
  free(line);
  return 0;
}
