// hdprof: post-mortem analysis of the traces and bench reports the
// simulated stack emits.
//
//   hdprof critical-path <trace.json> [--skew-factor F] [--json]
//     Per-job makespan-critical chain, slack/straggler report and
//     Algorithm 2 (tail scheduling) accounting from a --trace-out file.
//
//   hdprof kernels <trace.json> [--top N] [--json]
//     Per-kernel hardware-counter hotspot/roofline report.
//
//   hdprof compare <before.json> <after.json> [--threshold F] [--json]
//     Diffs two bench/regress suite documents; exits 1 when a benchmark's
//     modeled_seconds regressed beyond the threshold (or disappeared).
//     When both inputs are heterodoop.timeseries.v1 exports, diffs their
//     per-series steady-state means instead.
//
//   hdprof timeline <telemetry.jsonl> [--width N] [--json]
//     Renders a --timeseries-out telemetry export: per-group timeline
//     tables with ASCII sparklines plus the SLO alert log.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/table.h"
#include "prof/critical_path.h"
#include "prof/kernels.h"
#include "prof/regress.h"
#include "prof/timeline.h"
#include "prof/trace_file.h"

namespace {

using namespace hd;

[[noreturn]] void Usage(int code) {
  std::fprintf(
      stderr,
      "usage: hdprof <command> [args]\n"
      "  critical-path <trace.json> [--skew-factor F] [--json]\n"
      "      makespan-critical chain + straggler report per traced job\n"
      "  kernels <trace.json> [--top N] [--json]\n"
      "      per-kernel hardware-counter hotspot report\n"
      "  compare <before.json> <after.json> [--threshold F] "
      "[--pinned-threshold F] [--json]\n"
      "      diff two bench/regress suite documents (exit 1 on regression;\n"
      "      'pinned.' wall-clock metrics fail only past the pinned "
      "threshold);\n"
      "      two timeseries.v1 exports diff their steady-state means "
      "instead\n"
      "  timeline <telemetry.jsonl> [--width N] [--json]\n"
      "      render a --timeseries-out telemetry export: sparkline "
      "timelines\n"
      "      per metric group plus the SLO alert log\n");
  std::exit(code);
}

struct Flags {
  std::vector<std::string> positional;
  bool json = false;
  double skew_factor = 1.5;
  double threshold = 0.01;
  double pinned_threshold = 0.9;
  int top = 10;
  int width = 48;
};

Flags ParseFlags(int argc, char** argv, int first) {
  Flags f;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage(2);
      return argv[++i];
    };
    if (arg == "--json") {
      f.json = true;
    } else if (arg == "--skew-factor") {
      f.skew_factor = std::atof(value().c_str());
    } else if (arg == "--threshold") {
      f.threshold = std::atof(value().c_str());
    } else if (arg == "--pinned-threshold") {
      f.pinned_threshold = std::atof(value().c_str());
    } else if (arg == "--top") {
      f.top = std::atoi(value().c_str());
    } else if (arg == "--width") {
      f.width = std::atoi(value().c_str());
    } else if (arg == "--help" || arg == "-h") {
      Usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      Usage(2);
    } else {
      f.positional.push_back(arg);
    }
  }
  return f;
}

const char* SegmentKindName(prof::ChainSegment::Kind k) {
  switch (k) {
    case prof::ChainSegment::Kind::kTask: return "task";
    case prof::ChainSegment::Kind::kWait: return "wait";
    case prof::ChainSegment::Kind::kShuffleReduce: return "shuffle_reduce";
    case prof::ChainSegment::Kind::kRecovery: return "recovery";
  }
  return "?";
}

int CmdCriticalPath(const Flags& f) {
  if (f.positional.size() != 1) Usage(2);
  const prof::TraceFile trace = prof::TraceFile::Load(f.positional[0]);
  prof::CriticalPathOptions opts;
  opts.skew_factor = f.skew_factor;
  const std::vector<prof::JobAnalysis> jobs = prof::AnalyzeJobs(trace, opts);
  const std::vector<prof::PolicyComparison> compares =
      prof::ComparePolicies(jobs);

  if (f.json) {
    json::Writer w(std::cout);
    w.BeginObject();
    w.Key("jobs").BeginArray();
    for (const prof::JobAnalysis& j : jobs) {
      w.BeginObject();
      w.Key("job").Int(j.job_id);
      w.Key("name").String(j.name);
      w.Key("policy").String(j.policy);
      w.Key("tracker_pid").Int(j.tracker_pid);
      w.Key("makespan_sec").Number(j.makespan_sec);
      w.Key("chain_total_sec").Number(j.ChainTotalSec());
      w.Key("chain_wait_sec").Number(j.ChainWaitSec());
      w.Key("chain_recovery_sec").Number(j.ChainRecoverySec());
      w.Key("chain_preemption_sec")
          .Number(j.ChainRecoveryClassSec("preemption"));
      w.Key("chain_replay_sec")
          .Number(j.ChainRecoveryClassSec("checkpoint_replay"));
      w.Key("retry_attempts").Int(j.retry_attempts);
      w.Key("speculative_attempts").Int(j.speculative_attempts);
      w.Key("killed_attempts").Int(j.killed_attempts);
      w.Key("failed_attempts").Int(j.failed_attempts);
      w.Key("preempted_attempts").Int(j.preempted_attempts);
      w.Key("restored_attempts").Int(j.restored_attempts);
      w.Key("tail_onset_sec").Number(j.tail_onset_sec);
      w.Key("forced_gpu").Int(j.forced_gpu);
      w.Key("gpu_bounces").Int(j.gpu_bounces);
      w.Key("tail_tasks_rescued").Int(j.tail_tasks_rescued);
      w.Key("chain").BeginArray();
      for (const prof::ChainSegment& s : j.chain) {
        w.BeginObject();
        w.Key("kind").String(SegmentKindName(s.kind));
        w.Key("name").String(s.name);
        if (s.kind == prof::ChainSegment::Kind::kRecovery) {
          w.Key("class").String(s.recovery_class);
        }
        if (s.kind == prof::ChainSegment::Kind::kTask ||
            s.kind == prof::ChainSegment::Kind::kRecovery) {
          w.Key("task").Int(s.task);
        }
        w.Key("start_sec").Number(s.start_sec);
        w.Key("dur_sec").Number(s.dur_sec);
        w.EndObject();
      }
      w.EndArray();
      w.Key("stragglers").BeginArray();
      for (const prof::Straggler& s : j.stragglers) {
        w.BeginObject();
        w.Key("task").Int(s.task);
        w.Key("device").String(s.on_gpu ? "gpu" : "cpu");
        w.Key("dur_sec").Number(s.dur_sec);
        w.Key("cause").String(s.cause);
        w.Key("excess_sec").Number(s.excess_sec);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("policy_comparisons").BeginArray();
    for (const prof::PolicyComparison& c : compares) {
      w.BeginObject();
      w.Key("job_name").String(c.job_name);
      w.Key("baseline_policy").String(c.baseline_policy);
      w.Key("baseline_makespan_sec").Number(c.baseline_makespan_sec);
      w.Key("tail_makespan_sec").Number(c.tail_makespan_sec);
      w.Key("saved_sec").Number(c.saved_sec);
      w.Key("saved_fraction").Number(c.saved_fraction);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << "\n";
    return 0;
  }

  for (const prof::JobAnalysis& j : jobs) {
    std::cout << "job " << j.job_id << " (" << j.name << ", policy "
              << j.policy << "): makespan " << FormatDouble(j.makespan_sec, 3)
              << " s, critical chain " << FormatDouble(j.ChainTotalSec(), 3)
              << " s (" << FormatDouble(j.ChainWaitSec(), 3) << " s waiting";
    if (j.ChainRecoverySec() > 0.0) {
      std::cout << ", " << FormatDouble(j.ChainRecoverySec(), 3)
                << " s recovery";
    }
    std::cout << ")\n";
    Table chain({"#", "segment", "task", "start (s)", "dur (s)"});
    int idx = 0;
    for (const prof::ChainSegment& s : j.chain) {
      chain.Row()
          .Cell(idx++)
          .Cell(s.recovery_class.empty() ? s.name
                                         : s.name + ":" + s.recovery_class)
          .Cell(s.kind == prof::ChainSegment::Kind::kTask ||
                        s.kind == prof::ChainSegment::Kind::kRecovery
                    ? std::to_string(s.task)
                    : std::string("-"))
          .Cell(s.start_sec, 3)
          .Cell(s.dur_sec, 3);
    }
    chain.Print(std::cout);
    if (!j.stragglers.empty()) {
      std::cout << "\nstragglers (critical-chain tasks, latest first):\n";
      Table st({"task", "device", "dur (s)", "cause", "excess (s)"});
      for (const prof::Straggler& s : j.stragglers) {
        st.Row()
            .Cell(s.task)
            .Cell(s.on_gpu ? "gpu" : "cpu")
            .Cell(s.dur_sec, 3)
            .Cell(s.cause)
            .Cell(s.excess_sec, 3);
      }
      st.Print(std::cout);
    }
    if (j.tail_onset_sec >= 0.0) {
      std::cout << "tail scheduling: onset at "
                << FormatDouble(j.tail_onset_sec, 3) << " s, "
                << j.forced_gpu << " forced-GPU decisions, " << j.gpu_bounces
                << " bounces, " << j.tail_tasks_rescued
                << " tail tasks rescued onto the GPU\n";
    }
    if (j.retry_attempts > 0 || j.speculative_attempts > 0 ||
        j.killed_attempts > 0 || j.failed_attempts > 0 ||
        j.restored_attempts > 0) {
      std::cout << "fault recovery: " << j.retry_attempts << " retries, "
                << j.speculative_attempts << " speculative, "
                << j.killed_attempts << " killed, " << j.failed_attempts
                << " failed attempts; "
                << FormatDouble(j.ChainRecoverySec(), 3)
                << " s of the critical chain is recovery\n";
      if (j.preempted_attempts > 0 || j.restored_attempts > 0) {
        std::cout << "elastic serving: " << j.preempted_attempts
                  << " quota preemptions ("
                  << FormatDouble(j.ChainRecoveryClassSec("preemption"), 3)
                  << " s on the chain), " << j.restored_attempts
                  << " attempts replayed from checkpoint ("
                  << FormatDouble(
                         j.ChainRecoveryClassSec("checkpoint_replay"), 3)
                  << " s on the chain)\n";
      }
    }
    std::cout << "\n";
  }
  for (const prof::PolicyComparison& c : compares) {
    std::cout << "tail vs " << c.baseline_policy << " (" << c.job_name
              << "): " << FormatDouble(c.baseline_makespan_sec, 3) << " -> "
              << FormatDouble(c.tail_makespan_sec, 3) << " s, saved "
              << FormatDouble(c.saved_sec, 3) << " s ("
              << FormatDouble(c.saved_fraction * 100.0, 1) << "%)\n";
  }
  return 0;
}

int CmdKernels(const Flags& f) {
  if (f.positional.size() != 1) Usage(2);
  const prof::TraceFile trace = prof::TraceFile::Load(f.positional[0]);
  prof::KernelProfile p = prof::ProfileKernels(trace);
  const auto shown =
      std::min<std::size_t>(p.kernels.size(),
                            f.top > 0 ? static_cast<std::size_t>(f.top)
                                      : p.kernels.size());
  if (f.json) {
    json::Writer w(std::cout);
    w.BeginObject();
    w.Key("total_sec").Number(p.total_sec);
    w.Key("kernels").BeginArray();
    for (std::size_t i = 0; i < shown; ++i) {
      const prof::KernelStats& k = p.kernels[i];
      w.BeginObject();
      w.Key("name").String(k.name);
      w.Key("launches").Int(k.launches);
      w.Key("total_sec").Number(k.total_sec);
      w.Key("bound").String(k.Bound());
      w.Key("divergence").Number(k.Divergence());
      w.Key("coalescing").Number(k.Coalescing());
      w.Key("transactions_per_request").Number(k.TransactionsPerRequest());
      w.Key("texture_hit_rate").Number(k.TextureHitRate());
      w.Key("transactions").Int(k.transactions);
      w.Key("bytes_moved").Int(k.bytes_moved);
      w.Key("bytes_requested").Int(k.bytes_requested);
      w.Key("shared_accesses").Int(k.shared_accesses);
      w.Key("shared_bank_conflicts").Int(k.shared_bank_conflicts);
      w.Key("atomic_conflicts").Int(k.atomic_conflicts);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << "\n";
    return 0;
  }
  std::cout << "kernel time: " << FormatDouble(p.total_sec, 6)
            << " s across " << p.kernels.size() << " kernels (top " << shown
            << ")\n";
  Table t({"kernel", "launches", "time (s)", "%", "bound", "diverg.",
           "coalesc.", "txn/req", "bank conf", "atomic conf"});
  for (std::size_t i = 0; i < shown; ++i) {
    const prof::KernelStats& k = p.kernels[i];
    t.Row()
        .Cell(k.name)
        .Cell(k.launches)
        .Cell(k.total_sec, 6)
        .Cell(p.total_sec > 0.0 ? 100.0 * k.total_sec / p.total_sec : 0.0, 1)
        .Cell(k.Bound())
        .Cell(k.Divergence(), 3)
        .Cell(k.Coalescing(), 3)
        .Cell(k.TransactionsPerRequest(), 2)
        .Cell(k.shared_bank_conflicts)
        .Cell(k.atomic_conflicts);
  }
  t.Print(std::cout);
  return 0;
}

// Metric grouping for the timeline tables: stream series are named
// "stream.<pipeline>.<metric>", so they group per pipeline; everything
// else groups by its first dotted component ("cluster", "des",
// "multijob"). Group order follows the export (sorted by series name).
std::string TimelineGroup(const std::string& name) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  if (name.compare(0, dot, "stream") == 0) {
    const std::size_t dot2 = name.find('.', dot + 1);
    if (dot2 != std::string::npos) return name.substr(0, dot2);
  }
  return name.substr(0, dot);
}

int CmdTimeline(const Flags& f) {
  if (f.positional.size() != 1) Usage(2);
  const prof::TimeSeriesFile ts = prof::TimeSeriesFile::Load(f.positional[0]);

  if (f.json) {
    json::Writer w(std::cout);
    w.BeginObject();
    w.Key("sample_interval_sec").Number(ts.sample_interval_sec);
    w.Key("samples").Int(ts.samples);
    w.Key("series").BeginArray();
    for (const prof::TsSeries& s : ts.series) {
      w.BeginObject();
      w.Key("name").String(s.name);
      w.Key("kind").String(s.kind);
      w.Key("group").String(TimelineGroup(s.name));
      w.Key("points").Int(static_cast<std::int64_t>(s.points.size()));
      if (!s.points.empty()) {
        w.Key("min").Number(s.Min());
        w.Key("mean").Number(s.Mean());
        w.Key("steady_mean").Number(s.SteadyMean());
        w.Key("last").Number(s.Last());
        w.Key("max").Number(s.Max());
        w.Key("sparkline").String(prof::Sparkline(s.points, f.width));
      }
      w.EndObject();
    }
    w.EndArray();
    w.Key("alerts").BeginArray();
    for (const prof::TsAlert& a : ts.alerts) {
      w.BeginObject();
      w.Key("t").Number(a.t);
      w.Key("rule").String(a.rule);
      w.Key("state").String(a.state);
      w.Key("value").Number(a.value);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::cout << "\n";
    return 0;
  }

  double horizon = 0.0;
  for (const prof::TsSeries& s : ts.series) {
    if (!s.points.empty()) horizon = std::max(horizon, s.points.back().first);
  }
  std::cout << "telemetry: " << ts.samples << " samples @ "
            << FormatDouble(ts.sample_interval_sec, 3) << " s over "
            << FormatDouble(horizon, 1) << " s of modeled time, "
            << ts.series.size() << " series, " << ts.alerts.size()
            << " alert transition(s)\n";

  // One table per metric group, series in export (name-sorted) order.
  std::string group;
  std::unique_ptr<Table> t;
  auto flush = [&] {
    if (t != nullptr) t->Print(std::cout);
    t.reset();
  };
  for (const prof::TsSeries& s : ts.series) {
    const std::string g = TimelineGroup(s.name);
    if (t == nullptr || g != group) {
      flush();
      group = g;
      std::cout << "\n[" << group << "]\n";
      t = std::make_unique<Table>(std::vector<std::string>{
          "metric", "kind", "n", "min", "mean", "last", "max", "timeline"});
    }
    // Show the metric name relative to its group header.
    const std::string label = s.name.size() > group.size() + 1
                                  ? s.name.substr(group.size() + 1)
                                  : s.name;
    auto& row = t->Row().Cell(label).Cell(s.kind).Cell(
        static_cast<std::int64_t>(s.points.size()));
    if (s.points.empty()) {
      row.Cell("-").Cell("-").Cell("-").Cell("-").Cell("");
    } else {
      row.Cell(s.Min(), 3)
          .Cell(s.Mean(), 3)
          .Cell(s.Last(), 3)
          .Cell(s.Max(), 3)
          .Cell(prof::Sparkline(s.points, f.width));
    }
  }
  flush();

  if (!ts.alerts.empty()) {
    std::cout << "\nSLO alerts:\n";
    Table at({"t (s)", "rule", "state", "value"});
    for (const prof::TsAlert& a : ts.alerts) {
      at.Row().Cell(a.t, 1).Cell(a.rule).Cell(a.state).Cell(a.value, 3);
    }
    at.Print(std::cout);
  } else {
    std::cout << "\nno SLO alert transitions.\n";
  }
  return 0;
}

int CmdCompareTimeSeries(const Flags& f) {
  const prof::TimeSeriesFile before =
      prof::TimeSeriesFile::Load(f.positional[0]);
  const prof::TimeSeriesFile after =
      prof::TimeSeriesFile::Load(f.positional[1]);
  const prof::CompareResult res =
      prof::CompareTimeSeries(before, after, f.threshold);

  if (f.json) {
    json::Writer w(std::cout);
    w.BeginObject();
    w.Key("threshold").Number(f.threshold);
    w.Key("deltas").BeginArray();
    for (const prof::Delta& d : res.deltas) {
      w.BeginObject();
      w.Key("series").String(d.benchmark);
      w.Key("before").Number(d.before);
      w.Key("after").Number(d.after);
      w.Key("rel_change").Number(d.rel_change);
      w.EndObject();
    }
    w.EndArray();
    w.Key("added_series").BeginArray();
    for (const std::string& s : res.added_benchmarks) w.String(s);
    w.EndArray();
    w.Key("removed_series").BeginArray();
    for (const std::string& s : res.removed_benchmarks) w.String(s);
    w.EndArray();
    w.EndObject();
    std::cout << "\n";
    return res.Failed() ? 1 : 0;
  }

  std::cout << "compare telemetry steady-state means (threshold "
            << FormatDouble(f.threshold * 100.0, 1) << "%)\n";
  if (res.deltas.empty() && res.added_benchmarks.empty() &&
      res.removed_benchmarks.empty()) {
    std::cout << "no series moved beyond the threshold; "
              << before.series.size() << " series match\n";
    return 0;
  }
  Table t({"series", "before", "after", "change (%)"});
  for (const prof::Delta& d : res.deltas) {
    t.Row()
        .Cell(d.benchmark)
        .Cell(d.before, 4)
        .Cell(d.after, 4)
        .Cell(d.rel_change * 100.0, 2);
  }
  t.Print(std::cout);
  for (const std::string& s : res.added_benchmarks) {
    std::cout << "added series: " << s << "\n";
  }
  for (const std::string& s : res.removed_benchmarks) {
    std::cout << "REMOVED series: " << s << "\n";
  }
  return res.Failed() ? 1 : 0;
}

int CmdCompare(const Flags& f) {
  if (f.positional.size() != 2) Usage(2);
  // Telemetry exports carry their schema on the first line; when both
  // inputs are timeseries files the compare switches to steady-state
  // means. Mixing one of each falls through to the suite loader, whose
  // schema check produces the clearer error.
  if (prof::IsTimeSeriesFile(f.positional[0]) &&
      prof::IsTimeSeriesFile(f.positional[1])) {
    return CmdCompareTimeSeries(f);
  }
  const prof::Suite before = prof::LoadSuite(f.positional[0]);
  const prof::Suite after = prof::LoadSuite(f.positional[1]);
  prof::CompareOptions opts;
  opts.threshold = f.threshold;
  opts.pinned_threshold = f.pinned_threshold;
  const prof::CompareResult res = prof::Compare(before, after, opts);

  if (f.json) {
    json::Writer w(std::cout);
    w.BeginObject();
    w.Key("before_rev").String(before.rev);
    w.Key("after_rev").String(after.rev);
    w.Key("threshold").Number(opts.threshold);
    w.Key("pinned_threshold").Number(opts.pinned_threshold);
    w.Key("regressions").Int(res.regressions);
    w.Key("improvements").Int(res.improvements);
    w.Key("deltas").BeginArray();
    for (const prof::Delta& d : res.deltas) {
      w.BeginObject();
      w.Key("benchmark").String(d.benchmark);
      w.Key("metric").String(d.metric);
      w.Key("before").Number(d.before);
      w.Key("after").Number(d.after);
      w.Key("rel_change").Number(d.rel_change);
      w.Key("scored").Bool(d.scored);
      w.Key("regression").Bool(d.regression);
      w.EndObject();
    }
    w.EndArray();
    w.Key("added_benchmarks").BeginArray();
    for (const std::string& b : res.added_benchmarks) w.String(b);
    w.EndArray();
    w.Key("removed_benchmarks").BeginArray();
    for (const std::string& b : res.removed_benchmarks) w.String(b);
    w.EndArray();
    w.EndObject();
    std::cout << "\n";
    return res.Failed() ? 1 : 0;
  }

  std::cout << "compare " << (before.rev.empty() ? "before" : before.rev)
            << " -> " << (after.rev.empty() ? "after" : after.rev)
            << " (threshold " << FormatDouble(opts.threshold * 100.0, 1)
            << "%)\n";
  if (res.deltas.empty() && res.added_benchmarks.empty() &&
      res.removed_benchmarks.empty()) {
    std::cout << "no deltas beyond the threshold; " << before.runs.size()
              << " benchmarks match\n";
    return 0;
  }
  Table t({"benchmark", "metric", "before", "after", "change (%)", "verdict"});
  for (const prof::Delta& d : res.deltas) {
    t.Row()
        .Cell(d.benchmark)
        .Cell(d.metric)
        .Cell(d.before, 4)
        .Cell(d.after, 4)
        .Cell(d.rel_change * 100.0, 2)
        .Cell(!d.scored ? "attribution"
                        : d.regression ? "REGRESSION" : "improvement");
  }
  t.Print(std::cout);
  for (const std::string& b : res.added_benchmarks) {
    std::cout << "added benchmark: " << b << "\n";
  }
  for (const std::string& b : res.removed_benchmarks) {
    std::cout << "REMOVED benchmark: " << b << "\n";
  }
  std::cout << res.regressions << " regression(s), " << res.improvements
            << " improvement(s)\n";
  return res.Failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage(2);
  const std::string cmd = argv[1];
  try {
    const Flags f = ParseFlags(argc, argv, 2);
    if (cmd == "critical-path") return CmdCriticalPath(f);
    if (cmd == "kernels") return CmdKernels(f);
    if (cmd == "compare") return CmdCompare(f);
    if (cmd == "timeline") return CmdTimeline(f);
    if (cmd == "--help" || cmd == "-h") Usage(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hdprof: %s\n", e.what());
    return 2;
  }
  Usage(2);
}
