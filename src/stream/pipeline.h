// Standing-pipeline configuration and steady-state metrics for the
// streaming service mode (see engine.h for the execution model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/policy.h"
#include "stream/source.h"

namespace hd::stream {

// Micro-batch window cut: a window seals when it holds `count` records or
// `span_sec` modeled seconds after it opened — whichever fires first. At
// an exact tie the DES pops the (earlier-scheduled) time trigger before
// the tying arrival, so the time window seals and the tying record opens
// the next window; the convention is pinned by tests/stream_test.cc.
struct WindowTrigger {
  int count = 64;
  double span_sec = 10.0;
};

// How a sealed window becomes a MapReduce job instance: records pack into
// map tasks (`records_per_map` each, at least one map), executed through
// the same calibrated timing model batch jobs use.
struct WindowJobTemplate {
  int records_per_map = 8;
  int num_reducers = 1;
  double cpu_task_sec = 2.0;
  double gpu_task_sec = 0.5;
  double variation = 0.10;
  std::int64_t map_output_bytes = 1 << 20;
  double reduce_sec = 0.5;
};

// What happens when a window seals while the pipeline's ingress queue is
// at max_pending_windows:
//   * kBlock — the window queues anyway; the bound is a watermark, not a
//     wall (an open-loop source cannot be paused), and sustained depth
//     beyond it is exactly the queue-growth signal the stability verdict
//     reads.
//   * kShed — the window is dropped with full accounting (records_shed /
//     windows_shed); the watermark passes it so the pipeline stays live.
enum class Backpressure { kBlock, kShed };

const char* BackpressureName(Backpressure b);

struct PipelineSpec {
  std::string label;  // pipeline id in traces, metrics and reports
  SourceSpec source;
  WindowTrigger trigger;
  WindowJobTemplate job;
  sched::Policy policy = sched::Policy::kTail;
  int pool = 0;  // Capacity scheduler pool
  // Per-window latency SLO, measured seal -> completion. Window jobs carry
  // deadline = seal + slo_sec for the SLO-aware inter-job scheduler.
  double slo_sec = 30.0;
  // Admission control: windows executing as jobs concurrently, and sealed
  // windows waiting in the ingress queue before backpressure applies.
  int max_inflight_windows = 2;
  int max_pending_windows = 4;
  Backpressure backpressure = Backpressure::kBlock;

  // Error budgets feeding the default telemetry SLO rules (trace::SloRule,
  // registered by StreamEngine when a sampler is configured): the fraction
  // of arrived records that may be shed, and of completed windows that may
  // miss their latency SLO, before the multi-window burn-rate alert fires.
  double shed_budget_fraction = 0.01;
  double miss_budget_fraction = 0.05;
};

// HD_CHECKs every PipelineSpec invariant (including its SourceSpec);
// throws CheckError on violation.
void ValidatePipelineSpec(const PipelineSpec& spec);

// One completed (or shed) window's lifecycle timestamps.
struct WindowStats {
  std::int64_t seq = 0;
  std::int64_t records = 0;
  double open_sec = 0.0;
  double seal_sec = 0.0;
  double submit_sec = 0.0;  // admission time (== seal unless queued)
  double finish_sec = 0.0;  // job completion (empty/shed: == seal)
  const char* seal_reason = "";  // "count" | "time" | "horizon"
  bool empty = false;
  bool shed = false;

  double Latency() const { return finish_sec - seal_sec; }
  double QueueWait() const { return submit_sec - seal_sec; }
};

// Steady-state accounting of one pipeline over a RunStream horizon. The
// latency/lag/depth sample sets exclude windows sealed before the warmup
// cutoff, so percentiles describe steady state, not ramp-up.
struct PipelineMetrics {
  std::string label;
  double slo_sec = 0.0;
  double offered_rate_per_sec = 0.0;  // the source's configured mean

  std::int64_t records_arrived = 0;
  std::int64_t records_processed = 0;
  std::int64_t records_shed = 0;
  std::int64_t windows_sealed = 0;
  std::int64_t windows_empty = 0;
  std::int64_t windows_shed = 0;
  std::int64_t windows_shed_steady = 0;  // shed at/after the warmup cutoff
  std::int64_t windows_completed = 0;
  std::int64_t seals_by_count = 0;
  std::int64_t seals_by_time = 0;
  std::int64_t slo_violations = 0;  // completed windows past their SLO

  // Steady-state sample sets (seal_sec >= warmup only).
  std::vector<double> latencies_sec;      // seal -> completion
  std::vector<double> watermark_lags_sec; // now - watermark, at completions
  std::vector<double> queue_depths;       // pending + inflight, at seals

  // Ingress backlog (pending + inflight windows) left when the source
  // stopped at the horizon, and the deepest queue ever observed.
  std::int64_t backlog_at_horizon = 0;
  std::int64_t max_queue_depth = 0;

  // Queue-stability verdict (computed by the engine at drain): no window
  // shed in steady state, and the steady-state queue-depth series did not
  // grow (last-third mean vs first-third mean, smoothed) nor end above the
  // admission bound.
  bool stable = true;
  double depth_growth = 1.0;  // the smoothed last/first ratio

  double LatencyPercentile(double q) const;
  double WatermarkLagPercentile(double q) const;
  double MeanQueueDepth() const;
  double ShedFraction() const;  // records shed / records arrived
  double SloViolationFraction() const;
};

}  // namespace hd::stream
