// Multi-job cluster engine: N MapReduce jobs share one simulated cluster's
// TaskTrackers. Each heartbeat response is filled slot-by-slot: the
// inter-job scheduler picks the job, the job's own sched::Policy picks the
// processor (so Algorithm 2's tail forcing still applies within a job,
// now competing with other jobs for the same GPU slots).
//
// Jobs are submitted at absolute simulated times (open-loop arrivals) or
// from the completion callback (closed-loop streams); heartbeat pulses run
// only while at least one job is in flight.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "hadoop/cluster_core.h"
#include "multijob/metrics.h"
#include "multijob/scheduler.h"

namespace hd::multijob {

// One job submission: the task source, the per-job scheduling policy and
// optional HDFS-backed locality, plus metrics labels.
struct JobSpec {
  hadoop::TaskTimeSource* source = nullptr;
  sched::Policy policy = sched::Policy::kTail;
  const hdfs::Hdfs* fs = nullptr;
  std::string input_path;
  int pool = 0;       // Capacity scheduler pool
  std::string label;  // app id, reported in JobStats
  // Absolute completion target for deadline-aware schedulers; infinity
  // (the default) marks a batch job without an SLO.
  double deadline_sec = std::numeric_limits<double>::infinity();
};

class MultiJobEngine : public hadoop::ClusterCore {
 public:
  MultiJobEngine(hadoop::ClusterConfig cfg,
                 std::unique_ptr<InterJobScheduler> scheduler);

  // Schedules a submission at absolute simulated time `when` (>= now()).
  // Valid before Run() and from within the completion callback. Returns
  // the job id (submission order).
  int Submit(double when, JobSpec spec);

  // Invoked at each job's simulated completion time; may Submit() further
  // jobs (closed-loop workloads).
  void set_on_job_done(std::function<void(const JobStats&)> cb) {
    on_job_done_ = std::move(cb);
  }

  // Runs until every submitted job completes; returns aggregate metrics.
  // With checkpoint_interval_sec set, writes heterodoop.ckpt.v1 snapshots
  // on the way; with stop_at_checkpoint set, may halt mid-flight (see
  // ClusterCore::halted()).
  WorkloadMetrics Run();

  // Warm restart: overlays a heterodoop.ckpt.v1 snapshot onto this engine.
  // Call after rebuilding the same configuration, re-registering the same
  // pipelines, re-submitting the same jobs in the same order and
  // re-scheduling the same membership plan — then Run() continues the
  // interrupted run and produces byte-identical final output and metrics.
  // Throws CheckpointError on corrupt input or an engine mismatch.
  void RestoreFromText(const std::string& text);
  void RestoreFromFile(const std::string& path);

  double now() const { return events_.now(); }
  int active_jobs() const { return active_jobs_; }
  std::int64_t preemptions() const { return preemptions_; }

 protected:
  // Invoked at each job's simulated completion time, before the public
  // on_job_done callback. Subclasses running standing pipelines (the
  // stream engine) override this to tie completions back to windows.
  virtual void OnJobCompleted(const JobStats& stats) { (void)stats; }

  // Checkpoint extension points for subclasses (the stream engine): extra
  // top-level sections next to "cluster"/"jobs"/"multijob", their restore
  // pre-pass (runs before the cluster/job overlay), and the rebuild of a
  // checkpointed job this engine's caller cannot re-submit (stream window
  // jobs own synthetic sources). The base engine supports none of that.
  virtual void WriteExtraSections(json::Writer& w) { (void)w; }
  virtual void RestoreExtraSections(const json::Value& doc) { (void)doc; }
  virtual JobSpec MakeRestoredJobSpec(const json::Value& entry);

  std::string CheckpointToText() override;

 private:
  void Activate(hadoop::JobState* job);
  void StartPulses();
  // One link of a node's heartbeat chain for generation `gen`; the chain
  // retires on generation bumps and stops while the node is down
  // (OnNodeRecovered restarts it).
  void PulseTick(int node_id, std::uint64_t gen);
  // ClusterConfig::batch_heartbeats: one cluster-wide link per interval
  // serving every live tracker in node order.
  void BatchTick(std::uint64_t gen);
  static void ActivateEvent(void* ctx, const hd::des::Payload& p);
  static void PulseTickEvent(void* ctx, const hd::des::Payload& p);
  static void BatchTickEvent(void* ctx, const hd::des::Payload& p);
  static void CompleteJobEvent(void* ctx, const hd::des::Payload& p);
  // Serves every active job from one TaskTracker heartbeat.
  void ClusterHeartbeat(int node_id);
  // Capacity-quota preemption: if a pool with pending work sits below its
  // slot quota, kill the youngest attempt of an over-quota pool on this
  // node and requeue its task. `cap` is the heartbeat's per-active-job
  // allowance; a preemption transfers one slot of allowance from the
  // victim to the claimant (the allowance was computed from free slots
  // before the kill freed one). Returns true when an attempt was preempted
  // (the fill loop then reruns for the freed slot).
  bool MaybePreemptOn(int node_id, std::vector<int>& cap);
  void CompleteJob(hadoop::JobState& job);
  void OnTaskFinished(hadoop::JobState& job, int node_id) override;
  void OnJobFinished(hadoop::JobState& job) override;
  void VisitActiveJobs(
      const std::function<void(hadoop::JobState&)>& fn) override;
  void OnNodeRecovered(int node_id) override;
  void OnClusterGrown(int node_id) override;

  std::unique_ptr<InterJobScheduler> scheduler_;
  std::vector<std::unique_ptr<hadoop::JobState>> jobs_;  // stable addresses
  std::vector<hadoop::JobState*> active_;  // maps in flight or reducing
  int submitted_ = 0;
  int completed_ = 0;
  int active_jobs_ = 0;
  // Jobs that finished past a finite deadline_sec; maintained live (at
  // each completion) so telemetry burn-rate rules can watch the budget
  // being spent mid-run.
  std::int64_t deadline_misses_ = 0;
  // Heartbeat pulses carry a generation; bumping it retires them when the
  // cluster drains, and Activate() starts a fresh set on 0 -> 1.
  std::uint64_t pulse_gen_ = 0;
  // Pending activation events, parallel to jobs_; restore cancels the ones
  // whose activation is already inside the snapshot.
  std::vector<hd::des::EventHandle> activate_events_;
  // Next scheduled fire time of each node's current-generation pulse chain
  // (-1 while stopped) and of the cluster-wide batch chain; checkpointed so
  // a restored run re-arms the heartbeat rotation at the original phases.
  std::vector<double> pulse_next_;
  double batch_next_ = -1.0;
  std::int64_t preemptions_ = 0;
  std::function<void(const JobStats&)> on_job_done_;
  WorkloadMetrics metrics_;
};

}  // namespace hd::multijob
