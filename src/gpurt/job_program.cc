#include "gpurt/job_program.h"

#include "common/check.h"
#include "minic/parser.h"

namespace hd::gpurt {

JobProgram CompileJob(const std::string& map_source,
                      const std::string& combine_source,
                      const std::string& reduce_source) {
  return CompileJob(map_source, combine_source, reduce_source,
                    translator::TranslateOptions{});
}

JobProgram CompileJob(const std::string& map_source,
                      const std::string& combine_source,
                      const std::string& reduce_source,
                      const translator::TranslateOptions& options) {
  JobProgram job;
  job.map = translator::Translate(map_source, options);
  HD_CHECK_MSG(job.map.map_plan.has_value(),
               "map source carries no mapper directive");
  if (!combine_source.empty()) {
    job.combine = translator::Translate(combine_source, options);
    HD_CHECK_MSG(job.combine->combine_plan.has_value(),
                 "combine source carries no combiner directive");
  }
  if (!reduce_source.empty()) {
    auto unit = minic::Parse(reduce_source);
    HD_CHECK_MSG(unit->FindFunction("main") != nullptr,
                 "reduce source has no main()");
    job.reduce = std::shared_ptr<minic::TranslationUnit>(std::move(unit));
  }
  return job;
}

}  // namespace hd::gpurt
