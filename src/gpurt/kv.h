// Key-value pair primitives shared by the CPU and GPU task paths.
//
// Hadoop Streaming represents KV pairs as text lines "key \t value". Both
// execution paths of HeteroDoop produce and consume this representation, so
// the two paths are byte-compatible (a GPU task can be re-run on a CPU and
// vice versa — the fault-tolerance story of §5.1 depends on this).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hd::gpurt {

struct KvPair {
  std::string key;
  std::string value;

  bool operator==(const KvPair&) const = default;
};

// Hadoop's default HashPartitioner analog: stable across processes.
int PartitionOf(std::string_view key, int num_partitions);

// "key\tvalue\n"
std::string FormatKv(const KvPair& kv);

// Parses one streaming output line; the first tab separates key from value.
// Lines without a tab become {line, ""}.
KvPair ParseKvLine(std::string_view line);

// Splits a streaming output buffer into KV pairs (one per line).
std::vector<KvPair> ParseKvText(std::string_view text);

// Serialises pairs back to streaming text.
std::string FormatKvText(const std::vector<KvPair>& pairs);

// Byte-wise key comparison used by the intermediate sort (§5.3): memcmp
// ordering over the key text, ties broken by original position via
// stable sort at the call sites.
bool KvKeyLess(const KvPair& a, const KvPair& b);

}  // namespace hd::gpurt
