#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "analysis/diag_registry.h"

namespace hd::analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

void DiagnosticEngine::Add(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagnosticEngine::Error(std::string id, std::string pass,
                             std::string file, int line, int col,
                             std::string message, std::string hint) {
  Add({Severity::kError, std::move(id), std::move(pass), std::move(file),
       line, col, std::move(message), std::move(hint)});
}

void DiagnosticEngine::Warning(std::string id, std::string pass,
                               std::string file, int line, int col,
                               std::string message, std::string hint) {
  Add({Severity::kWarning, std::move(id), std::move(pass), std::move(file),
       line, col, std::move(message), std::move(hint)});
}

void DiagnosticEngine::Note(std::string id, std::string pass, std::string file,
                            int line, int col, std::string message,
                            std::string hint) {
  Add({Severity::kNote, std::move(id), std::move(pass), std::move(file), line,
       col, std::move(message), std::move(hint)});
}

namespace {

int CountOf(const std::vector<Diagnostic>& ds, Severity s) {
  return static_cast<int>(
      std::count_if(ds.begin(), ds.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int DiagnosticEngine::ErrorCount() const {
  return CountOf(diags_, Severity::kError);
}
int DiagnosticEngine::WarningCount() const {
  return CountOf(diags_, Severity::kWarning);
}
int DiagnosticEngine::NoteCount() const {
  return CountOf(diags_, Severity::kNote);
}

void DiagnosticEngine::SortBySource() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return static_cast<int>(a.severity) <
                            static_cast<int>(b.severity);
                   });
}

std::string DiagnosticEngine::RenderText() const {
  std::ostringstream os;
  for (const auto& d : diags_) {
    os << d.file << ':' << d.line << ':' << d.col << ": "
       << SeverityName(d.severity) << ": " << d.message << " [" << d.pass
       << ' ' << d.id << "]\n";
    if (!d.hint.empty()) os << "  hint: " << d.hint << '\n';
  }
  os << ErrorCount() << " error(s), " << WarningCount() << " warning(s), "
     << NoteCount() << " note(s)\n";
  return os.str();
}

std::string DiagnosticEngine::RenderJson() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) os << ',';
    os << "{\"file\":\"" << JsonEscape(d.file) << "\",\"line\":" << d.line
       << ",\"col\":" << d.col << ",\"severity\":\"" << SeverityName(d.severity)
       << "\",\"id\":\"" << JsonEscape(d.id) << "\",\"pass\":\""
       << JsonEscape(d.pass) << "\",\"message\":\"" << JsonEscape(d.message)
       << "\",\"hint\":\"" << JsonEscape(d.hint) << "\"}";
  }
  os << "],\"errors\":" << ErrorCount() << ",\"warnings\":" << WarningCount()
     << ",\"notes\":" << NoteCount() << "}";
  return os.str();
}

std::string DiagnosticEngine::RenderSarif(const std::string& tool_name) const {
  // Rule table: the registered ids this run used, sorted, with their
  // registry summaries; index map for ruleIndex references.
  std::map<std::string, int> rule_index;
  for (const auto& d : diags_) rule_index.emplace(d.id, 0);
  int next = 0;
  for (auto& [id, idx] : rule_index) idx = next++;

  auto level_of = [](Severity s) {
    switch (s) {
      case Severity::kError: return "error";
      case Severity::kWarning: return "warning";
      case Severity::kNote: return "note";
    }
    return "none";
  };

  std::ostringstream os;
  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
     << "\"name\":\"" << JsonEscape(tool_name) << "\","
     << "\"informationUri\":\"https://github.com/heterodoop\","
     << "\"rules\":[";
  bool first = true;
  for (const auto& [id, idx] : rule_index) {
    const DiagInfo* info = FindDiag(id);
    if (!first) os << ',';
    first = false;
    os << "{\"id\":\"" << JsonEscape(id) << "\"";
    if (info != nullptr) {
      os << ",\"shortDescription\":{\"text\":\"" << JsonEscape(info->summary)
         << "\"},\"properties\":{\"pass\":\"" << JsonEscape(info->pass)
         << "\"}";
    }
    os << '}';
  }
  os << "]}},\"columnKind\":\"utf16CodeUnits\",\"results\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i > 0) os << ',';
    std::string text = d.message;
    if (!d.hint.empty()) text += " (hint: " + d.hint + ")";
    os << "{\"ruleId\":\"" << JsonEscape(d.id)
       << "\",\"ruleIndex\":" << rule_index.at(d.id) << ",\"level\":\""
       << level_of(d.severity) << "\",\"message\":{\"text\":\""
       << JsonEscape(text) << "\"},\"locations\":[{\"physicalLocation\":{"
       << "\"artifactLocation\":{\"uri\":\"" << JsonEscape(d.file)
       << "\"},\"region\":{\"startLine\":" << std::max(1, d.line)
       << ",\"startColumn\":" << std::max(1, d.col) << "}}}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace hd::analysis
