file(REMOVE_RECURSE
  "CMakeFiles/hd_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/hd_bench_util.dir/bench_util.cc.o.d"
  "libhd_bench_util.a"
  "libhd_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
