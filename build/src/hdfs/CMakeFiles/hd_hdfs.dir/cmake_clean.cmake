file(REMOVE_RECURSE
  "CMakeFiles/hd_hdfs.dir/hdfs.cc.o"
  "CMakeFiles/hd_hdfs.dir/hdfs.cc.o.d"
  "libhd_hdfs.a"
  "libhd_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
