file(REMOVE_RECURSE
  "CMakeFiles/minic_parser_test.dir/minic_parser_test.cc.o"
  "CMakeFiles/minic_parser_test.dir/minic_parser_test.cc.o.d"
  "minic_parser_test"
  "minic_parser_test.pdb"
  "minic_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
