// Small string utilities shared by the frontend, runtime, and generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hd {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Formats a double with fixed precision (locale-independent).
std::string FormatDouble(double v, int precision);

// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(std::uint64_t bytes);

}  // namespace hd
