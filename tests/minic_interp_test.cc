#include <gtest/gtest.h>

#include "minic/interp.h"
#include "minic/parser.h"

namespace hd::minic {
namespace {

// Runs main() over `input`, returning captured stdout.
std::string RunProgram(std::string_view src, std::string input = "",
                std::int64_t* exit_code = nullptr) {
  auto unit = Parse(src);
  TextIoEnv io(std::move(input));
  CountingHooks hooks;
  Interp interp(*unit, &io, &hooks);
  std::int64_t rc = interp.RunMain();
  if (exit_code) *exit_code = rc;
  return io.TakeOutput();
}

TEST(Interp, ReturnsExitCode) {
  std::int64_t rc = -1;
  RunProgram("int main() { return 7; }", "", &rc);
  EXPECT_EQ(rc, 7);
}

TEST(Interp, IntegerArithmeticIsCLike) {
  EXPECT_EQ(RunProgram(R"(int main() {
    printf("%d %d %d %d\n", 7/2, 7%2, -7/2, 1+2*3);
    return 0; })"),
            "3 1 -3 7\n");
}

TEST(Interp, FloatPromotion) {
  EXPECT_EQ(RunProgram(R"(int main() {
    printf("%.2f %.2f\n", 7.0/2, 1/2 + 0.5);
    return 0; })"),
            "3.50 0.50\n");
}

TEST(Interp, FloatNarrowingOnFloatVar) {
  // Storing into a float variable rounds to float precision.
  EXPECT_EQ(RunProgram(R"(int main() {
    float f; f = 0.1;
    printf("%.9f\n", f);
    return 0; })"),
            "0.100000001\n");
}

TEST(Interp, CharNarrowing) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char c; c = 321;           /* wraps to 65 */
    printf("%c %d\n", c, c);
    return 0; })"),
            "A 65\n");
}

TEST(Interp, ShortCircuitEvaluation) {
  EXPECT_EQ(RunProgram(R"(
int boom() { printf("boom"); return 1; }
int main() {
  int x; x = 0;
  if (x != 0 && boom()) { }
  if (x == 0 || boom()) { }
  printf("ok\n");
  return 0; })"),
            "ok\n");
}

TEST(Interp, ArraysAndPointerArithmetic) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i * i;
    int *p; p = a + 2;
    printf("%d %d %d\n", a[4], *p, p[1]);
    return 0; })"),
            "16 4 9\n");
}

TEST(Interp, AddressOfScalar) {
  EXPECT_EQ(RunProgram(R"(
void setit(int *p) { *p = 42; }
int main() {
  int x; x = 0;
  setit(&x);
  printf("%d\n", x);
  return 0; })"),
            "42\n");
}

TEST(Interp, RecursionWorks) {
  EXPECT_EQ(RunProgram(R"(
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() { printf("%d\n", fact(10)); return 0; })"),
            "3628800\n");
}

TEST(Interp, StringBuiltins) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char a[16], b[16];
    strcpy(a, "hello");
    strcpy(b, a);
    strcat(b, "!");
    printf("%d %d %s\n", strcmp(a, b), strlen(b), b);
    return 0; })"),
            "-1 6 hello!\n");
}

TEST(Interp, StrstrFindsSubstring) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char h[32];
    strcpy(h, "mapreduce");
    char *p; p = strstr(h, "red");
    if (p != NULL) printf("%s\n", p);
    p = strstr(h, "gpu");
    if (p == NULL) printf("none\n");
    return 0; })"),
            "reduce\nnone\n");
}

TEST(Interp, AtoiAtof) {
  EXPECT_EQ(RunProgram(R"(int main() {
    printf("%d %.2f\n", atoi("123"), atof("2.5"));
    return 0; })"),
            "123 2.50\n");
}

TEST(Interp, GetlineReadsRecords) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char *line; size_t n; int read;
    n = 64;
    line = (char*) malloc(n * sizeof(char));
    while ((read = getline(&line, &n, stdin)) != -1) {
      printf("%d:%s", read, line);
    }
    free(line);
    return 0; })",
                "ab\ncdef\n"),
            "3:ab\n5:cdef\n");
}

TEST(Interp, GetlineGrowsBuffer) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char *line; size_t n; int read;
    n = 2;
    line = (char*) malloc(n);
    read = getline(&line, &n, stdin);
    printf("%d %d\n", read, n >= 11);
    return 0; })",
                "0123456789\n"),
            "11 1\n");
}

TEST(Interp, ScanfParsesTokens) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char w[16]; int v; double d;
    while (scanf("%s %d %lf", w, &v, &d) == 3) {
      printf("%s=%d/%.1f\n", w, v, d);
    }
    return 0; })",
                "cat 3 1.5\ndog 4 2.5\n"),
            "cat=3/1.5\ndog=4/2.5\n");
}

TEST(Interp, ScanfReturnsEofOnExhausted) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int v;
    printf("%d\n", scanf("%d", &v));
    return 0; })",
                ""),
            "-1\n");
}

TEST(Interp, SprintfFormats) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char buf[64];
    sprintf(buf, "%s-%03d", "id", 7);
    printf("%s\n", buf);
    return 0; })"),
            "id-007\n");
}

TEST(Interp, MathBuiltins) {
  EXPECT_EQ(RunProgram(R"(int main() {
    printf("%.2f %.2f %.2f %.2f\n", sqrt(16.0), pow(2.0, 10.0),
           fabs(-2.5), exp(0.0));
    return 0; })"),
            "4.00 1024.00 2.50 1.00\n");
}

TEST(Interp, OutOfBoundsThrows) {
  EXPECT_THROW(RunProgram("int main() { int a[3]; a[3] = 1; return 0; }"),
               CheckError);
}

TEST(Interp, UseAfterFreeThrows) {
  EXPECT_THROW(RunProgram(R"(int main() {
    char *p; p = (char*) malloc(4);
    free(p);
    p[0] = 'x';
    return 0; })"),
               CheckError);
}

TEST(Interp, NullDerefThrows) {
  EXPECT_THROW(RunProgram("int main() { char *p; p = NULL; p[0] = 1; return 0; }"),
               InterpError);
}

TEST(Interp, DivideByZeroThrows) {
  EXPECT_THROW(RunProgram("int main() { int x; x = 0; return 1 / x; }"),
               InterpError);
}

TEST(Interp, StepLimitStopsInfiniteLoop) {
  auto unit = Parse("int main() { while (1) { } return 0; }");
  TextIoEnv io("");
  CountingHooks hooks;
  Interp::Options opts;
  opts.max_steps = 10'000;
  Interp interp(*unit, &io, &hooks, opts);
  EXPECT_THROW(interp.RunMain(), InterpError);
}

TEST(Interp, UnknownFunctionThrows) {
  EXPECT_THROW(RunProgram("int main() { frobnicate(1); return 0; }"), InterpError);
}

TEST(Interp, HooksCountOperations) {
  auto unit = Parse(R"(int main() {
    int i, s; s = 0;
    for (i = 0; i < 100; i++) s += i * 2;
    return s; })");
  TextIoEnv io("");
  CountingHooks hooks;
  Interp interp(*unit, &io, &hooks);
  interp.RunMain();
  EXPECT_GE(hooks.count(OpClass::kIntMul), 100);
  EXPECT_GE(hooks.count(OpClass::kBranch), 100);
  EXPECT_GT(hooks.total_ops(), 300);
}

TEST(Interp, HooksCountMemoryTraffic) {
  auto unit = Parse(R"(int main() {
    int a[64]; int i;
    for (i = 0; i < 64; i++) a[i] = i;
    int s; s = 0;
    for (i = 0; i < 64; i++) s += a[i];
    return s; })");
  TextIoEnv io("");
  CountingHooks hooks;
  Interp interp(*unit, &io, &hooks);
  interp.RunMain();
  EXPECT_EQ(hooks.mem_writes(), 64);
  EXPECT_EQ(hooks.mem_reads(), 64);
}

TEST(Interp, TernaryAndBitOps) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int x; x = 5;
    printf("%d %d %d %d %d %d\n", x > 3 ? 1 : 2, x & 3, x | 8, x ^ 1,
           x << 2, x >> 1);
    return 0; })"),
            "1 1 13 4 20 2\n");
}

TEST(Interp, CastsBetweenScalars) {
  EXPECT_EQ(RunProgram(R"(int main() {
    double d; d = 3.9;
    int i; i = (int) d;
    double back; back = (double) i / 2;
    float f; f = (float) 0.1;
    printf("%d %.1f %d\n", i, back, f < 0.1000001);
    return 0; })"),
            "3 1.5 1\n");
}

TEST(Interp, DoWhileRunsBodyAtLeastOnce) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int n; n = 10;
    do { printf("%d", n); n++; } while (n < 10);
    printf("\n");
    return 0; })"),
            "10\n");
}

TEST(Interp, PointerComparisonsWithinObject) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int a[8];
    int *p; int *q;
    p = a + 2;
    q = a + 5;
    printf("%d %d %d %d\n", p < q, q - p, p == a + 2, p != q);
    return 0; })"),
            "1 3 1 1\n");
}

TEST(Interp, IncrementDecrementSemantics) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int i; i = 5;
    printf("%d %d %d %d %d\n", i++, i, ++i, i--, --i);
    return 0; })"),
            "5 6 7 7 5\n");
}

TEST(Interp, MemsetFillsRange) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char b[8];
    memset(b, 120, 7);
    b[7] = '\0';
    printf("%s\n", b);
    return 0; })"),
            "xxxxxxx\n");
}

TEST(Interp, StrncpyAndStrncmp) {
  EXPECT_EQ(RunProgram(R"(int main() {
    char d[16];
    strncpy(d, "abcdef", 3);
    printf("%s %d %d\n", d, strncmp("abcx", "abcy", 3),
           strncmp("abcx", "abcy", 4));
    return 0; })"),
            "abc 0 -1\n");
}

TEST(Interp, NegativeModuloMatchesC) {
  EXPECT_EQ(RunProgram(R"(int main() {
    printf("%d %d\n", -7 % 3, 7 % -3);
    return 0; })"),
            "-1 1\n");
}

TEST(Interp, BreakEscapesOnlyInnerLoop) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int i, j, n; n = 0;
    for (i = 0; i < 3; i++) {
      for (j = 0; j < 10; j++) {
        if (j == 2) break;
        n++;
      }
    }
    printf("%d\n", n);
    return 0; })"),
            "6\n");
}

TEST(Interp, ContinueSkipsRest) {
  EXPECT_EQ(RunProgram(R"(int main() {
    int i, n; n = 0;
    for (i = 0; i < 10; i++) {
      if (i % 2 == 0) continue;
      n += i;
    }
    printf("%d\n", n);
    return 0; })"),
            "25\n");
}

// --- The paper's Listing 1 + Listing 2: wordcount, end to end on the CPU
// path (interpreter as the "gcc" backend of Hadoop Streaming). -------------

constexpr const char* kWordcountMap = R"(
#include <stdio.h>
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i];
    i++;
    j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kWordcountCombine = R"(
#include <stdio.h>
int main() {
  char word[30], prevWord[30];
  int count, val, read;
  prevWord[0] = '\0';
  count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while ((read = scanf("%s %d", word, &val)) == 2) {
      if (strcmp(word, prevWord) == 0) {
        count += val;
      } else {
        if (prevWord[0] != '\0')
          printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if (prevWord[0] != '\0')
      printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
)";

TEST(Wordcount, MapEmitsKvPairs) {
  EXPECT_EQ(RunProgram(kWordcountMap, "the cat\nthe dog\n"),
            "the\t1\ncat\t1\nthe\t1\ndog\t1\n");
}

TEST(Wordcount, MapSplitsPunctuation) {
  EXPECT_EQ(RunProgram(kWordcountMap, "a,b;;c\n"), "a\t1\nb\t1\nc\t1\n");
}

TEST(Wordcount, MapTruncatesLongWords) {
  std::string input(40, 'x');
  input += "\n";
  std::string out = RunProgram(kWordcountMap, input);
  // 30-char buffer holds 29 chars + NUL; the rest forms a second word.
  EXPECT_EQ(out, std::string(29, 'x') + "\t1\n" + std::string(11, 'x') +
                     "\t1\n");
}

TEST(Wordcount, CombineSumsSortedRuns) {
  EXPECT_EQ(RunProgram(kWordcountCombine, "cat 1\ncat 1\ndog 1\n"),
            "cat\t2\ndog\t1\n");
}

TEST(Wordcount, CombineEmptyInputEmitsNothing) {
  EXPECT_EQ(RunProgram(kWordcountCombine, ""), "");
}

TEST(Wordcount, MapThenSortThenCombineMatchesExpected) {
  std::string mapped = RunProgram(kWordcountMap, "b a b\na b a\n");
  // Shuffle-sort the KV lines like the framework would.
  std::vector<std::string> lines;
  std::istringstream is(mapped);
  std::string l;
  while (std::getline(is, l)) lines.push_back(l);
  std::sort(lines.begin(), lines.end());
  std::string sorted;
  for (auto& s : lines) sorted += s + "\n";
  EXPECT_EQ(RunProgram(kWordcountCombine, sorted), "a\t3\nb\t3\n");
}

}  // namespace
}  // namespace hd::minic
