// Writing your own HeteroDoop application: the classic max-temperature-
// per-station job, from scratch. Shows the full authoring workflow the
// paper's §3 describes — write a sequential C filter, add one directive,
// and the same source runs on CPUs and GPUs.
//
// Build & run:  cmake --build build && ./build/examples/custom_app
#include <iostream>

#include "common/prng.h"
#include "common/strings.h"
#include "common/table.h"
#include "hadoop/engine.h"
#include "hadoop/functional_source.h"

namespace {

// Records look like "station7 -12". One pragma on the record loop is the
// only change from plain sequential C.
constexpr const char* kMaxTempMap = R"(
int nextTok(char *line, int offset, char *buf, int read, int maxb) {
  int i = offset;
  int j = 0;
  while (i < read && (line[i] == ' ' || line[i] == '\n')) i++;
  if (i >= read || line[i] == '\0') return -1;
  while (i < read && line[i] != ' ' && line[i] != '\n' &&
         line[i] != '\0' && j < maxb - 1) {
    buf[j] = line[i];
    i++;
    j++;
  }
  buf[j] = '\0';
  return i;
}
int main() {
  char station[24], tok[16], *line;
  size_t nbytes = 4096;
  int read, offset, temp;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(station) value(temp) keylength(24) \
    vallength(1) kvpairs(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    offset = nextTok(line, 0, station, read, 24);
    if (offset == -1) continue;
    offset = nextTok(line, offset, tok, read, 16);
    if (offset == -1) continue;
    temp = atoi(tok);
    printf("%s\t%d\n", station, temp);
  }
  free(line);
  return 0;
}
)";

// Max combiner/reducer: keeps the maximum per station. The same source
// serves as both (the combiner carries the directive).
std::string MaxFilter(bool combiner) {
  std::string src = R"(
int main() {
  char key[24], prevKey[24];
  int best, val, read, have;
  prevKey[0] = '\0';
  best = -1000000;
  have = 0;
)";
  if (combiner) {
    src += "  #pragma mapreduce combiner key(prevKey) value(best) \\\n"
           "    keyin(key) valuein(val) keylength(24) vallength(1) \\\n"
           "    firstprivate(prevKey, best, have)\n";
  }
  src += R"(  {
    while ((read = scanf("%s %d", key, &val)) == 2) {
      if (strcmp(key, prevKey) == 0) {
        if (val > best) best = val;
      } else {
        if (have) printf("%s\t%d\n", prevKey, best);
        strcpy(prevKey, key);
        best = val;
        have = 1;
      }
    }
    if (have) printf("%s\t%d\n", prevKey, best);
  }
  return 0;
}
)";
  return src;
}

std::string GenerateWeather(int readings, std::uint64_t seed) {
  hd::Prng prng(seed);
  std::string out;
  for (int i = 0; i < readings; ++i) {
    out += "station" + std::to_string(prng.NextBounded(12)) + " " +
           std::to_string(static_cast<long long>(prng.NextBounded(90)) - 40) +
           "\n";
  }
  return out;
}

}  // namespace

int main() {
  using namespace hd;

  // Compile once; the artifact serves both execution paths.
  gpurt::JobProgram job = gpurt::CompileJob(
      kMaxTempMap, MaxFilter(/*combiner=*/true), MaxFilter(false));
  std::cout << "Compiled custom job: mapper + max-combiner + max-reducer\n";
  std::cout << "Combiner firstprivate vars:";
  for (const auto& v : job.combine->combine_plan->vars) {
    if (v.cls == translator::VarClass::kFirstPrivate) {
      std::cout << " " << v.name;
    }
  }
  std::cout << "\n\n";

  std::vector<std::string> splits;
  for (int i = 0; i < 6; ++i) splits.push_back(GenerateWeather(3000, 11 + i));

  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 3;
  cluster.map_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.heartbeat_sec = 0.05;

  hadoop::FunctionalTaskSource::Options fopts;
  fopts.num_reducers = 2;
  hadoop::FunctionalTaskSource source(job, splits, fopts);
  hadoop::JobResult r =
      hadoop::JobEngine(cluster, &source, sched::Policy::kTail).Run();

  std::cout << "Job done in " << FormatDouble(r.makespan_sec, 4)
            << " modeled seconds (" << r.gpu_tasks << " GPU tasks, "
            << r.cpu_tasks << " CPU tasks)\n\n";
  Table t({"Station", "Max temp (C)"});
  auto rows = r.final_output;
  std::sort(rows.begin(), rows.end(),
            [](const gpurt::KvPair& a, const gpurt::KvPair& b) {
              return a.key < b.key;
            });
  for (const auto& kv : rows) t.Row().Cell(kv.key).Cell(kv.value);
  t.Print(std::cout);
  return 0;
}
