#include <gtest/gtest.h>

#include "common/prng.h"
#include "gpurt/seqfile.h"

namespace hd::gpurt {
namespace {

TEST(Crc32, KnownVectors) {
  // Standard check value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(SeqFile, EmptyRoundtrip) {
  EXPECT_TRUE(ReadSeqFile(WriteSeqFile({})).empty());
}

TEST(SeqFile, SimpleRoundtrip) {
  std::vector<KvPair> pairs = {{"the", "4"}, {"cat", "2"}, {"", "empty key"},
                               {"key", ""}};
  EXPECT_EQ(ReadSeqFile(WriteSeqFile(pairs)), pairs);
}

TEST(SeqFile, BinarySafeValues) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary += static_cast<char>(i);
  std::vector<KvPair> pairs = {{"bin", binary}, {binary, "rev"}};
  EXPECT_EQ(ReadSeqFile(WriteSeqFile(pairs)), pairs);
}

TEST(SeqFile, SyncMarkersAcrossManyRecords) {
  Prng prng(55);
  std::vector<KvPair> pairs;
  for (int i = 0; i < 1000; ++i) {
    pairs.push_back({"k" + std::to_string(prng.NextBounded(100)),
                     std::string(prng.NextBounded(40), 'v')});
  }
  SeqFileWriter w(/*sync_interval=*/7);
  w.Append(pairs);
  EXPECT_EQ(w.records_written(), 1000);
  EXPECT_EQ(ReadSeqFile(w.Finish()), pairs);
}

TEST(SeqFile, CorruptionDetected) {
  std::string bytes = WriteSeqFile({{"a", "1"}, {"b", "2"}});
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW(ReadSeqFile(bytes), SeqFileError);
}

TEST(SeqFile, TruncationDetected) {
  std::string bytes = WriteSeqFile({{"key", "value"}});
  EXPECT_THROW(ReadSeqFile(bytes.substr(0, bytes.size() - 6)), SeqFileError);
}

TEST(SeqFile, GarbageRejected) {
  EXPECT_THROW(ReadSeqFile("not a sequence file at all"), SeqFileError);
  EXPECT_THROW(ReadSeqFile(""), SeqFileError);
}

TEST(SeqFile, DoubleFinishRejected) {
  SeqFileWriter w;
  w.Append(KvPair{"a", "1"});
  w.Finish();
  EXPECT_THROW(w.Finish(), CheckError);
}

TEST(SeqFile, StreamingReaderCounts) {
  SeqFileReader r(WriteSeqFile({{"x", "1"}, {"y", "2"}, {"z", "3"}}));
  KvPair kv;
  int n = 0;
  while (r.Next(&kv)) ++n;
  EXPECT_EQ(n, 3);
  EXPECT_EQ(r.records_read(), 3);
  EXPECT_FALSE(r.Next(&kv));  // idempotent at EOF
}

}  // namespace
}  // namespace hd::gpurt
