#include "apps/golden_util.h"

#include <cctype>
#include <cstdio>

namespace hd::apps {

std::vector<std::string> Records(const std::string& split) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < split.size()) {
    std::size_t nl = split.find('\n', pos);
    if (nl == std::string::npos) {
      out.push_back(split.substr(pos));
      break;
    }
    out.push_back(split.substr(pos, nl - pos + 1));
    pos = nl + 1;
  }
  return out;
}

std::vector<std::string> ExtractWords(const std::string& split, int max_word) {
  std::vector<std::string> words;
  for (const std::string& rec : Records(split)) {
    const int read = static_cast<int>(rec.size());
    int i = 0;
    for (;;) {
      while (i < read && !std::isalnum(static_cast<unsigned char>(rec[i]))) {
        ++i;
      }
      if (i >= read) break;
      std::string w;
      while (i < read && std::isalnum(static_cast<unsigned char>(rec[i])) &&
             static_cast<int>(w.size()) < max_word - 1) {
        w += rec[i];
        ++i;
      }
      words.push_back(std::move(w));
    }
  }
  return words;
}

std::vector<std::string> RecordTokens(const std::string& record) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : record) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) toks.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) toks.push_back(std::move(cur));
  return toks;
}

std::string RenderF(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

std::vector<double> KmeansCentroids() {
  std::vector<double> c(2048);
  std::int64_t seed = 12345;
  for (int i = 0; i < 2048; ++i) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    c[static_cast<std::size_t>(i)] = static_cast<double>(seed % 1000) / 100.0;
  }
  return c;
}

}  // namespace hd::apps
