// The GPU host driver: runs one map(+combine) task on the simulated device,
// implementing the Fig. 1 flow — copy fileSplit in, locate/count records,
// allocate the global KV store, launch the map kernel (with record
// stealing), aggregate, sort, launch the combine kernel, write output.
#pragma once

#include <string>

#include "gpurt/io_config.h"
#include "gpurt/job_program.h"
#include "gpurt/task_result.h"
#include "gpusim/device.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace hd::gpurt {

struct GpuTaskOptions {
  // Launch shape; 0 = defaults (blocks = 2x SMs, threads = 128) or the
  // directive's blocks/threads hints if present.
  int blocks = 0;
  int threads = 0;

  // Compiler/runtime optimisations (all on by default; the Fig. 5/7
  // ablations switch them off individually).
  bool vectorize_map = true;        // char4 loads in map kernel (Fig. 7c)
  bool vectorize_combine = true;    // char4 KV loads in combine (Fig. 7b)
  bool use_texture = true;          // honour texture placement (Fig. 7a)
  bool record_stealing = true;      // block-level dynamic records (Fig. 7d)
  bool aggregate_before_sort = true;  // KV compaction before sort (Fig. 7e)
  // Ablation of the paper's design argument in §4.1: a global work queue
  // instead of per-threadblock stealing (expensive global atomics).
  bool global_stealing = false;

  int num_reducers = 1;
  // Global KV store budget; 0 = "all free GPU memory" (§3.2), of which the
  // driver keeps a fraction back for the combine output buffers.
  std::int64_t kv_store_bytes = 0;

  IoConfig io;

  // Observability (src/trace). Null pointers disable tracing/metrics at
  // near-zero cost and never perturb modeled numbers. Spans land in
  // modeled task-local seconds offset by `trace_origin_sec`: the Fig. 1
  // phases on `track`, per-kernel roofline spans on lane tid+1, per-SM
  // busy spans of the user kernels on lanes tid+2+sm.
  trace::Sink* sink = nullptr;
  trace::Registry* metrics = nullptr;
  trace::Track track;
  double trace_origin_sec = 0.0;
};

class GpuMapTask {
 public:
  // `job.map` must carry a mapper plan. The device models one physical GPU;
  // callers serialise tasks on it (the GPU driver of §5.1 admits a single
  // task per GPU at a time).
  GpuMapTask(const JobProgram& job, gpusim::GpuDevice* device,
             GpuTaskOptions options);

  // Executes the task on `file_split`. Throws gpusim::DeviceOomError when
  // the split or KV store exceeds device memory (the Hadoop layer treats
  // that as a task failure and reschedules, §5.1).
  MapTaskResult Run(const std::string& file_split);

 private:
  const JobProgram& job_;
  gpusim::GpuDevice* device_;
  GpuTaskOptions opts_;
};

}  // namespace hd::gpurt
