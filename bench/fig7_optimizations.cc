// Reproduces Fig. 7: the effect of each individual optimisation on the
// kernel it targets —
//   7a texture memory on map kernels (KM, CL),
//   7b vectorised KV read/write on combine kernels,
//   7c vectorised read/write on map kernels,
//   7d record stealing on map kernels,
//   7e KV-pair aggregation before the sort kernel.
// Each experiment toggles exactly one optimisation and reports the affected
// kernel's speedup (off-time / on-time).
#include <functional>
#include <string>

#include "bench/bench_util.h"
#include "bench/reporter.h"
#include "gpusim/device.h"

namespace {

using namespace hd;

// Runs the GPU task for `bench` with options produced by `tweak`, and
// returns the phase breakdown. Each run gets its own trace pid so on/off
// variants render side by side.
gpurt::MapTaskResult RunWith(
    const apps::Benchmark& b,
    const std::function<void(gpurt::GpuTaskOptions*)>& tweak,
    std::int64_t split_bytes, bench::Reporter& rep, int* pid,
    const std::string& label) {
  gpurt::JobProgram job =
      gpurt::CompileJob(b.map_source, b.combine_source, b.reduce_source);
  const std::string split = b.generate(split_bytes, 20150615);
  gpusim::GpuDevice device(gpusim::DeviceConfig::TeslaK40());
  gpurt::GpuTaskOptions opts;
  opts.num_reducers = b.map_only ? 0 : b.num_reducers();
  tweak(&opts);
  opts.sink = rep.sink();
  opts.metrics = rep.metrics();
  opts.track.pid = *pid;
  if (opts.sink != nullptr) opts.sink->NameProcess(*pid, label);
  ++*pid;
  gpurt::MapTaskResult r = gpurt::GpuMapTask(job, &device, opts).Run(split);
  rep.AddModeledSeconds(r.phases.Total());
  return r;
}

void Section(bench::Reporter& rep, int* pid, const char* table_name,
             const char* title, const std::vector<std::string>& ids,
             const std::function<void(gpurt::GpuTaskOptions*)>& disable,
             double gpurt::PhaseBreakdown::* phase,
             std::int64_t split_bytes) {
  rep.out() << title << "\n";
  auto& t = rep.AddTable(table_name,
                         {"Benchmark", "off (ms)", "on (ms)", "speedup"});
  for (const auto& id : ids) {
    const apps::Benchmark& b = apps::GetBenchmark(id);
    auto on = RunWith(b, [](gpurt::GpuTaskOptions*) {}, split_bytes, rep,
                      pid, std::string(table_name) + " " + id + " on");
    auto off = RunWith(b, disable, split_bytes, rep, pid,
                       std::string(table_name) + " " + id + " off");
    t.Row()
        .Cell(id)
        .Cell(off.phases.*phase * 1e3, 3)
        .Cell(on.phases.*phase * 1e3, 3)
        .Cell(off.phases.*phase / on.phases.*phase, 2);
  }
  rep.Print(t);
  rep.out() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("fig7_optimizations", argc, argv);
  const std::int64_t base = rep.smoke() ? bench::kMeasuredSplitBytes / 12
                                        : bench::kMeasuredSplitBytes;
  rep.Config("split_bytes", base);
  int pid = 0;

  rep.out() << "Fig. 7: effects of individual optimisations (kernel-level "
               "speedups)\n\n";

  Section(rep, &pid, "fig7a",
          "(a) Texture memory on map kernels (paper: ~2x on KM, CL)",
          {"KM", "CL"},
          [](gpurt::GpuTaskOptions* o) { o->use_texture = false; },
          &gpurt::PhaseBreakdown::map, base);

  Section(rep, &pid, "fig7b",
          "(b) Vectorized KV read/write on combine kernels (paper: <=2.7x)",
          {"GR", "HS", "WC", "HR", "LR"},
          [](gpurt::GpuTaskOptions* o) { o->vectorize_combine = false; },
          &gpurt::PhaseBreakdown::combine, base);

  Section(rep, &pid, "fig7c",
          "(c) Vectorized read/write on map kernels (paper: <=1.7x)",
          {"GR", "HS", "WC", "HR", "LR", "KM", "CL", "BS"},
          [](gpurt::GpuTaskOptions* o) { o->vectorize_map = false; },
          &gpurt::PhaseBreakdown::map, base);

  // Record stealing only matters once each thread owns several records
  // (production splits hold ~70 records per launched thread): measure on a
  // larger split.
  Section(rep, &pid, "fig7d",
          "(d) Record stealing on map kernels (paper: <=1.36x)",
          {"GR", "HS", "WC", "HR", "KM"},
          [](gpurt::GpuTaskOptions* o) { o->record_stealing = false; },
          &gpurt::PhaseBreakdown::map, 6 * base);

  Section(rep, &pid, "fig7e",
          "(e) KV aggregation before sort (paper: <=7.6x on sort)",
          {"GR", "HS", "WC", "HR", "LR", "KM", "CL"},
          [](gpurt::GpuTaskOptions* o) { o->aggregate_before_sort = false; },
          &gpurt::PhaseBreakdown::sort, base);

  rep.out() << "(ablation) Block-level vs global record stealing "
               "(design argument of 4.1)\n";
  auto& t = rep.AddTable("fig7_stealing_ablation",
                         {"Benchmark", "global (ms)", "block (ms)", "benefit"});
  for (const char* id : {"WC", "HR"}) {
    const apps::Benchmark& b = apps::GetBenchmark(id);
    auto block = RunWith(b, [](gpurt::GpuTaskOptions*) {}, base, rep, &pid,
                         std::string("stealing ") + id + " block");
    auto global = RunWith(b,
                          [](gpurt::GpuTaskOptions* o) {
                            o->record_stealing = false;
                            o->global_stealing = true;
                          },
                          base, rep, &pid,
                          std::string("stealing ") + id + " global");
    t.Row()
        .Cell(id)
        .Cell(global.phases.map * 1e3, 3)
        .Cell(block.phases.map * 1e3, 3)
        .Cell(global.phases.map / block.phases.map, 2);
  }
  rep.Print(t);
  return rep.Finish();
}
