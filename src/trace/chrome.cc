#include "trace/chrome.h"

#include <algorithm>

#include "common/json.h"

namespace hd::trace {

namespace {

void WriteArgs(json::Writer& w, const Args& args) {
  w.Key("args").BeginObject();
  for (const Arg& a : args) {
    w.Key(a.key);
    switch (a.kind) {
      case Arg::Kind::kInt: w.Int(a.i); break;
      case Arg::Kind::kFloat: w.Number(a.f); break;
      case Arg::Kind::kString: w.String(a.s); break;
    }
  }
  w.EndObject();
}

constexpr double kMicrosPerSec = 1e6;

}  // namespace

void ChromeTraceSink::Span(std::string_view category, std::string_view name,
                           Track track, double start_sec, double dur_sec,
                           Args args) {
  Event e;
  e.phase = 'X';
  e.category = std::string(category);
  e.name = std::string(name);
  e.track = track;
  e.start_sec = start_sec;
  e.dur_sec = dur_sec;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceSink::Instant(std::string_view category, std::string_view name,
                              Track track, double at_sec, Args args) {
  Event e;
  e.phase = 'i';
  e.category = std::string(category);
  e.name = std::string(name);
  e.track = track;
  e.start_sec = at_sec;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceSink::NameProcess(std::int32_t pid, std::string_view name) {
  for (const auto& [p, n] : process_names_) {
    if (p == pid) return;  // first registration wins
  }
  process_names_.emplace_back(pid, std::string(name));
}

void ChromeTraceSink::NameThread(Track track, std::string_view name) {
  for (const auto& [t, n] : thread_names_) {
    if (t.pid == track.pid && t.tid == track.tid) return;
  }
  thread_names_.emplace_back(track, std::string(name));
}

void ChromeTraceSink::Write(std::ostream& os) const {
  json::Writer w(os);
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const auto& [pid, name] : process_names_) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("process_name");
    w.Key("pid").Int(pid);
    w.Key("tid").Int(0);
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }
  for (const auto& [pid, name] : process_names_) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("process_sort_index");
    w.Key("pid").Int(pid);
    w.Key("tid").Int(0);
    w.Key("args").BeginObject().Key("sort_index").Int(pid).EndObject();
    w.EndObject();
  }
  for (const auto& [track, name] : thread_names_) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("thread_name");
    w.Key("pid").Int(track.pid);
    w.Key("tid").Int(track.tid);
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }
  // Explicit numeric lane order: Perfetto sorts unlabelled lanes by name,
  // which puts "sm10" before "sm2"; sort_index metadata pins each named
  // lane to its tid so per-SM and per-slot lanes sort numerically.
  for (const auto& [track, name] : thread_names_) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("thread_sort_index");
    w.Key("pid").Int(track.pid);
    w.Key("tid").Int(track.tid);
    w.Key("args").BeginObject().Key("sort_index").Int(track.tid).EndObject();
    w.EndObject();
  }
  for (const Event& e : events_) {
    w.BeginObject();
    w.Key("ph").String(std::string_view(&e.phase, 1));
    w.Key("cat").String(e.category);
    w.Key("name").String(e.name);
    w.Key("pid").Int(e.track.pid);
    w.Key("tid").Int(e.track.tid);
    w.Key("ts").Number(e.start_sec * kMicrosPerSec);
    if (e.phase == 'X') w.Key("dur").Number(e.dur_sec * kMicrosPerSec);
    if (e.phase == 'i') w.Key("s").String("t");
    WriteArgs(w, e.args);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

}  // namespace hd::trace
