// Execution hooks: the interpreter reports every operation it performs so
// that the CPU and GPU cost models can charge time for it.
//
// The same functional execution drives both paths; only the hooks differ.
// This mirrors the paper's single-source property: the "gcc path" and the
// "nvcc path" run the same program with different backends.
#pragma once

#include <cstdint>

#include "minic/value.h"

namespace hd::minic {

// Operation classes with distinct costs in the models.
enum class OpClass : std::uint8_t {
  kIntAlu,     // integer add/sub/logic/compare
  kIntMul,
  kIntDiv,
  kFloatAlu,   // fp add/sub/mul/compare
  kFloatDiv,   // fp divide
  kSpecial,    // sqrt/exp/log/erf/pow — SFU-class operations
  kBranch,
  kCall,
};

// Receives one callback per abstract operation. `count` batches identical
// ops (e.g. a memcpy of N elements is one call with elem_count == N so the
// GPU model can coalesce/vectorise it).
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  virtual void OnOp(OpClass /*op*/, std::int64_t /*count*/ = 1) {}

  // A contiguous access of `elem_count` elements of `obj` starting at
  // `index`. `vectorizable` marks accesses the translator may turn into
  // char4-style vector loads (runtime-library copies of array keys/values).
  virtual void OnMemAccess(const MemObject& /*obj*/, std::int64_t /*index*/,
                           std::int64_t /*elem_count*/, bool /*is_write*/,
                           bool /*vectorizable*/ = false) {}
};

// Counts operations without charging time; used by tests and by the CPU
// cycle model.
class CountingHooks : public ExecHooks {
 public:
  void OnOp(OpClass op, std::int64_t count = 1) override {
    counts_[static_cast<int>(op)] += count;
    total_ops_ += count;
  }
  void OnMemAccess(const MemObject&, std::int64_t, std::int64_t elem_count,
                   bool is_write, bool) override {
    (is_write ? mem_writes_ : mem_reads_) += elem_count;
  }

  std::int64_t count(OpClass op) const {
    return counts_[static_cast<int>(op)];
  }
  std::int64_t total_ops() const { return total_ops_; }
  std::int64_t mem_reads() const { return mem_reads_; }
  std::int64_t mem_writes() const { return mem_writes_; }

 private:
  std::int64_t counts_[8] = {};
  std::int64_t total_ops_ = 0;
  std::int64_t mem_reads_ = 0;
  std::int64_t mem_writes_ = 0;
};

}  // namespace hd::minic
