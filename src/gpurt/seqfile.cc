#include "gpurt/seqfile.h"

#include <array>

#include "common/check.h"

namespace hd::gpurt {
namespace {

constexpr char kMagic[4] = {'H', 'D', 'S', '1'};
constexpr std::uint32_t kSyncMarker = 0x53594E43;  // "SYNC"

const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = CrcTable()[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

SeqFileWriter::SeqFileWriter(int sync_interval)
    : sync_interval_(sync_interval) {
  HD_CHECK(sync_interval > 0);
  buf_.append(kMagic, sizeof kMagic);
}

void SeqFileWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_ += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void SeqFileWriter::PutBytes(const std::string& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  buf_ += s;
}

void SeqFileWriter::Append(const KvPair& kv) {
  HD_CHECK_MSG(!finished_, "Append after Finish");
  if (records_ > 0 && records_ % sync_interval_ == 0) {
    PutU32(kSyncMarker);
  }
  PutBytes(kv.key);
  PutBytes(kv.value);
  ++records_;
}

void SeqFileWriter::Append(const std::vector<KvPair>& pairs) {
  for (const auto& kv : pairs) Append(kv);
}

std::string SeqFileWriter::Finish() {
  HD_CHECK_MSG(!finished_, "double Finish");
  finished_ = true;
  PutU32(kSyncMarker);
  PutU32(static_cast<std::uint32_t>(records_));
  PutU32(Crc32(buf_.data(), buf_.size()));
  return std::move(buf_);
}

SeqFileReader::SeqFileReader(std::string bytes) : bytes_(std::move(bytes)) {
  if (bytes_.size() < sizeof kMagic + 12 ||
      bytes_.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    throw SeqFileError("not a HeteroDoop sequence file");
  }
  // Validate trailer CRC over everything before it.
  const std::size_t crc_pos = bytes_.size() - 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(bytes_[crc_pos + i]))
              << (8 * i);
  }
  if (Crc32(bytes_.data(), crc_pos) != stored) {
    throw SeqFileError("sequence file CRC mismatch");
  }
  // Record count sits just before the CRC.
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) {
    count |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[crc_pos - 4 + i]))
             << (8 * i);
  }
  expected_records_ = count;
  pos_ = sizeof kMagic;
}

std::uint32_t SeqFileReader::GetU32() {
  if (pos_ + 4 > bytes_.size()) throw SeqFileError("truncated sequence file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::string SeqFileReader::GetBytes(std::uint32_t len) {
  if (pos_ + len > bytes_.size()) throw SeqFileError("truncated record");
  std::string s = bytes_.substr(pos_, len);
  pos_ += len;
  return s;
}

bool SeqFileReader::Next(KvPair* kv) {
  if (records_ == expected_records_) return false;
  std::uint32_t len = GetU32();
  while (len == 0x53594E43u) {  // sync marker; keys this long cannot occur
    len = GetU32();
  }
  if (len > bytes_.size()) throw SeqFileError("implausible key length");
  kv->key = GetBytes(len);
  kv->value = GetBytes(GetU32());
  ++records_;
  return true;
}

std::string WriteSeqFile(const std::vector<KvPair>& pairs) {
  SeqFileWriter w;
  w.Append(pairs);
  return w.Finish();
}

std::vector<KvPair> ReadSeqFile(const std::string& bytes) {
  SeqFileReader r(bytes);
  std::vector<KvPair> out;
  KvPair kv;
  while (r.Next(&kv)) out.push_back(kv);
  return out;
}

}  // namespace hd::gpurt
