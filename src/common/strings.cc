#include "common/strings.h"

#include <array>
#include <cctype>
#include <cstdint>
#include <sstream>

namespace hd {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string HumanBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(v < 10 ? 2 : 1);
  os << v << ' ' << kUnits[unit];
  return os.str();
}

}  // namespace hd
