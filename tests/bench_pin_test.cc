// Pins the modeled numbers of representative fig4a/fig5 configurations to
// their exact values from before the observability layer landed, with
// tracing off and on: instrumentation must never perturb simulation
// arithmetic, so these are exact double comparisons, not tolerances.
#include <cstdint>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "hadoop/engine.h"
#include "trace/chrome.h"
#include "trace/metrics.h"
#include "trace/timeseries.h"

namespace {

using namespace hd;

struct Pin {
  const char* id;
  double cpu_sec;
  double gpu_sec;
  double baseline_sec;
  std::int64_t output_bytes;
  double cpu_only_makespan;
  double tail_makespan;
};

// Values recorded from the pre-trace tree at kMeasuredSplitBytes with the
// Fig. 4(a) cluster (48 slaves, 20 map slots, 2 reduce slots, 1 GPU/node,
// 6 GB/s network) and the Fig. 4(a) calibration (variation 0.10,
// reduce_sec 8.0, production-scaled durations/output).
constexpr Pin kPins[] = {
    {"WC", 0.011663192023747989, 0.0027647908911792901,
     0.0038288497837967402, 34605, 115.51844173930539, 99.487739298268963},
    {"BS", 0.09269061022157904, 0.0024691671947906684,
     0.0024715470605624805, 115491, 549.59423397684782, 233.35577433165221},
};

void CheckPin(const Pin& pin, trace::Sink* sink, trace::Registry* metrics,
              const char* des_backend = nullptr,
              trace::TimeSeries* timeseries = nullptr) {
  const apps::Benchmark& b = apps::GetBenchmark(pin.id);
  bench::MeasureConfig cfg;
  cfg.sink = sink;
  cfg.metrics = metrics;
  const bench::MeasuredTask m = bench::MeasureTask(b, cfg);
  EXPECT_EQ(m.CpuSec(), pin.cpu_sec) << pin.id;
  EXPECT_EQ(m.GpuSec(), pin.gpu_sec) << pin.id;
  EXPECT_EQ(m.GpuBaselineSec(), pin.baseline_sec) << pin.id;
  EXPECT_EQ(static_cast<std::int64_t>(m.gpu.stats.output_bytes),
            pin.output_bytes)
      << pin.id;

  hadoop::CalibratedTaskSource::Params p;
  p.num_maps = b.cluster1.map_tasks;
  p.num_reducers = b.cluster1.reduce_tasks;
  p.cpu_task_sec = m.CpuSec() * bench::kProductionScale;
  p.gpu_task_sec = m.GpuSec() * bench::kProductionScale;
  p.variation = 0.10;
  p.map_output_bytes = static_cast<std::int64_t>(
      m.gpu.stats.output_bytes * bench::kProductionScale);
  p.reduce_sec = 8.0;

  hadoop::ClusterConfig cluster;
  cluster.num_slaves = 48;
  cluster.map_slots_per_node = 20;
  cluster.reduce_slots_per_node = 2;
  cluster.gpus_per_node = 1;
  cluster.network_bytes_per_sec = 6.0e9;
  cluster.sink = sink;
  cluster.metrics = metrics;
  if (des_backend != nullptr) cluster.des_backend = des_backend;

  {
    hadoop::CalibratedTaskSource source(p);
    hadoop::ClusterConfig c = cluster;
    c.gpus_per_node = 0;
    const hadoop::JobResult r =
        hadoop::JobEngine(c, &source, sched::Policy::kCpuOnly).Run();
    EXPECT_EQ(r.makespan_sec, pin.cpu_only_makespan) << pin.id;
  }
  {
    hadoop::CalibratedTaskSource source(p);
    // One TimeSeries serves one engine run (probes register once), so
    // only the tail run carries the sampler.
    cluster.timeseries = timeseries;
    const hadoop::JobResult r =
        hadoop::JobEngine(cluster, &source, sched::Policy::kTail).Run();
    EXPECT_EQ(r.makespan_sec, pin.tail_makespan) << pin.id;
  }
}

TEST(BenchPin, ModeledNumbersMatchPrePrValuesWithTracingOff) {
  for (const Pin& pin : kPins) CheckPin(pin, nullptr, nullptr);
}

TEST(BenchPin, ModeledNumbersBitIdenticalOnBothDesBackends) {
  // The des::Scheduler contract assigns seq at schedule time and pops in
  // strict (time, seq) order on every backend, so swapping the calendar
  // queue for the reference heap must not move a single bit of any
  // modeled double. Same exact-double pins, explicitly per backend.
  for (const char* backend : {"heap", "calendar"}) {
    for (const Pin& pin : kPins) CheckPin(pin, nullptr, nullptr, backend);
  }
}

TEST(BenchPin, ModeledNumbersMatchPrePrValuesWithTracingOn) {
  for (const Pin& pin : kPins) {
    trace::ChromeTraceSink sink;
    trace::Registry reg;
    CheckPin(pin, &sink, &reg);
    EXPECT_FALSE(sink.events().empty());
    EXPECT_FALSE(reg.empty());
  }
}

TEST(BenchPin, ModeledNumbersMatchPrePrValuesWithTelemetryOn) {
  // The telemetry sampler adds periodic DES events, but its handlers only
  // read state: every exact-double pin must keep holding with sampling
  // enabled, and the sampler must actually have run.
  for (const Pin& pin : kPins) {
    trace::TimeSeriesOptions opts;
    opts.sample_interval_sec = 5.0;
    trace::TimeSeries ts(opts);
    CheckPin(pin, nullptr, nullptr, nullptr, &ts);
    EXPECT_GT(ts.samples_taken(), 0) << pin.id;
    const trace::TimeSeries::Series* eps = ts.Find("des.events_per_sec");
    ASSERT_NE(eps, nullptr) << pin.id;
    EXPECT_FALSE(eps->points.empty()) << pin.id;
    EXPECT_NE(ts.Find("cluster.running_attempts"), nullptr) << pin.id;
    EXPECT_NE(ts.Find("cluster.available_frac"), nullptr) << pin.id;
  }
}

TEST(BenchPin, HardwareCountersSurfaceWithoutPerturbingPins) {
  // The gpusim hardware counters (divergence, coalescing, conflicts) ride
  // along on kernel spans and the metrics registry; the exact-double pins
  // above must keep holding with them enabled.
  for (const Pin& pin : kPins) {
    trace::ChromeTraceSink sink;
    trace::Registry reg;
    CheckPin(pin, &sink, &reg);

    bool saw_kernel_counters = false;
    for (const auto& e : sink.events()) {
      if (e.phase != 'X' || e.category != "kernel") continue;
      bool has_divergence = false, has_coalescing = false,
           has_requests = false, has_conflicts = false;
      for (const auto& a : e.args) {
        if (a.key == "divergence") has_divergence = true;
        if (a.key == "coalescing") has_coalescing = true;
        if (a.key == "mem_requests") has_requests = true;
        if (a.key == "atomic_conflicts") has_conflicts = true;
      }
      EXPECT_TRUE(has_divergence && has_coalescing && has_requests &&
                  has_conflicts)
          << pin.id << " kernel span " << e.name;
      saw_kernel_counters = true;
    }
    EXPECT_TRUE(saw_kernel_counters) << pin.id;

    EXPECT_NE(reg.FindCounter("gpurt.gpu.mem_requests"), nullptr) << pin.id;
    EXPECT_NE(reg.FindCounter("gpurt.gpu.bytes_requested"), nullptr)
        << pin.id;
    EXPECT_NE(reg.FindCounter("gpurt.gpu.shared_bank_conflicts"), nullptr)
        << pin.id;
    EXPECT_NE(reg.FindCounter("gpurt.gpu.atomic_conflicts"), nullptr)
        << pin.id;
    EXPECT_NE(reg.FindDistribution("gpurt.gpu.map_divergence"), nullptr)
        << pin.id;
    EXPECT_NE(reg.FindDistribution("gpurt.gpu.map_coalescing"), nullptr)
        << pin.id;
  }
}

}  // namespace
