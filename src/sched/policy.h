// Scheduling policies (§6): CPU-only baseline Hadoop, GPU-first, and the
// paper's tail scheduling (Algorithm 2).
//
// Note on Algorithm 2's pseudocode: its TaskTracker branch reads
// `taskTail <= numMapsRemainingPerNode -> forceGPUexecution`, which taken
// literally would force every task of a long job onto the GPU from the
// first heartbeat, idling all CPU cores — contradicting both the
// surrounding prose ("all slots ... force their tasks on the GPU(s) once
// the taskTail begins") and Fig. 3. We implement the reading consistent
// with the prose and the figure: the tail begins when the node's share of
// remaining maps drops to what its GPUs can absorb in one CPU-task time,
// i.e. force GPU iff numMapsRemainingPerNode <= taskTail.
#pragma once

#include <string>

namespace hd::sched {

enum class Policy {
  kCpuOnly,   // baseline Hadoop: GPUs unused
  kGpuFirst,  // §6.1's simplistic scheme
  kTail,      // Algorithm 2
};

const char* PolicyName(Policy p);

// Inverse of PolicyName: "cpu-only" / "gpu-first" / "tail". Throws
// CheckError listing the valid names on anything else — bench binaries
// route their --policy flag straight through here.
Policy MakePolicy(const std::string& name);

inline constexpr const char* kPolicyNames = "cpu-only, gpu-first, tail";

// Per-node view used by the policy decisions.
struct NodeSched {
  int free_cpu_slots = 0;
  int free_gpu_slots = 0;
  int num_gpus = 0;
  // Average GPU-over-CPU task speedup observed on this TaskTracker
  // (aveSpeedup). 1.0 until both paths have samples.
  double ave_speedup = 1.0;
};

// JobTracker side (TailScheduleOnJT): how many tasks to hand this
// TaskTracker in the current heartbeat response. `pending_maps` is the
// job-wide unscheduled map count; `max_speedup` the maximum speedup
// reported by any TaskTracker.
int MaxTasksThisHeartbeat(Policy policy, const NodeSched& node,
                          int pending_maps, double max_speedup,
                          int num_slaves);

// TaskTracker side (TailScheduleOnTT): whether this task must run on a GPU.
// `maps_remaining_per_node` is the JobTracker's estimate shipped in the
// heartbeat response. For kGpuFirst this returns true exactly when a GPU
// slot is free; for kTail it additionally forces the GPU once the tail
// begins (callers queue on the GPU when no slot is free).
bool PlaceOnGpu(Policy policy, const NodeSched& node,
                double maps_remaining_per_node);

// Algorithm 2's tail predicate in isolation: whether a kTail node with this
// view is past the tail onset (numMapsRemainingPerNode <= taskTail) and
// therefore forces GPU execution. Exposed so instrumentation can
// distinguish a forced-GPU placement from body GPU-first without
// re-deriving the policy.
bool TailForces(const NodeSched& node, double maps_remaining_per_node);

}  // namespace hd::sched
