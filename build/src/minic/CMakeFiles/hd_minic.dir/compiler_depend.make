# Empty compiler generated dependencies file for hd_minic.
# This may be replaced when dependencies are built.
