#include "gpurt/kv.h"

#include "common/check.h"
#include "common/prng.h"

namespace hd::gpurt {

int PartitionOf(std::string_view key, int num_partitions) {
  HD_CHECK(num_partitions > 0);
  // FNV-1a over the key bytes, folded through SplitMix64 for avalanche.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<int>(SplitMix64(h) % static_cast<std::uint64_t>(num_partitions));
}

std::string FormatKv(const KvPair& kv) {
  std::string out;
  out.reserve(kv.key.size() + kv.value.size() + 2);
  out += kv.key;
  out += '\t';
  out += kv.value;
  out += '\n';
  return out;
}

KvPair ParseKvLine(std::string_view line) {
  const std::size_t tab = line.find('\t');
  if (tab == std::string_view::npos) {
    return KvPair{std::string(line), std::string()};
  }
  return KvPair{std::string(line.substr(0, tab)),
                std::string(line.substr(tab + 1))};
}

std::vector<KvPair> ParseKvText(std::string_view text) {
  std::vector<KvPair> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    if (nl > pos) out.push_back(ParseKvLine(text.substr(pos, nl - pos)));
    pos = nl + 1;
  }
  return out;
}

std::string FormatKvText(const std::vector<KvPair>& pairs) {
  std::string out;
  for (const auto& kv : pairs) out += FormatKv(kv);
  return out;
}

bool KvKeyLess(const KvPair& a, const KvPair& b) { return a.key < b.key; }

}  // namespace hd::gpurt
