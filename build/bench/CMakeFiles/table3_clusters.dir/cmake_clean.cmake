file(REMOVE_RECURSE
  "CMakeFiles/table3_clusters.dir/table3_clusters.cc.o"
  "CMakeFiles/table3_clusters.dir/table3_clusters.cc.o.d"
  "table3_clusters"
  "table3_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
