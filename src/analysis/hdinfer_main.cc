// hdinfer: command-line front end for the directive-synthesis engine.
//
//   hdinfer [--json|--sarif] [--rewrite] [--strip] [--no-notes] file.c ...
//
// Infers `#pragma mapreduce` directives for plain mini-C loop nests and
// prints the findings (classification, synthesized directive, per-clause
// provenance) as text, JSON, or SARIF. With --rewrite the annotated program
// is printed to stdout (diagnostics go to stderr) so the output can be fed
// straight to hdlint or the translator. Exit status: 0 when every file
// inferred (or was already annotated), 1 when any file was rejected, 2 on
// usage/IO problems.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/infer.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: hdinfer [--json|--sarif] [--rewrite] [--strip] [--no-notes] "
      "file.c ...\n"
      "  --json      print diagnostics as one JSON document per file\n"
      "  --sarif     print diagnostics as one SARIF 2.1.0 document per file\n"
      "  --rewrite   print the annotated program to stdout (diagnostics to "
      "stderr)\n"
      "  --strip     discard existing mapreduce pragmas and re-infer\n"
      "  --no-notes  suppress per-clause provenance notes (HD602)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, sarif = false, rewrite = false, strip = false;
  bool notes = true;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--rewrite") {
      rewrite = true;
    } else if (arg == "--strip") {
      strip = true;
    } else if (arg == "--no-notes") {
      notes = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hdinfer: unknown option '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (json && sarif)) {
    PrintUsage();
    return 2;
  }

  bool failed = false;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "hdinfer: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    hd::analysis::InferOptions opts;
    opts.source_name = path;
    opts.strip_existing = strip;
    opts.provenance_notes = notes;
    const hd::analysis::InferResult result =
        hd::analysis::InferDirectives(buf.str(), opts);

    std::string rendered;
    if (json) {
      rendered = result.diags.RenderJson() + "\n";
    } else if (sarif) {
      rendered = result.diags.RenderSarif("hdinfer") + "\n";
    } else {
      rendered = result.diags.RenderText();
    }
    if (rewrite) {
      std::fputs(rendered.c_str(), stderr);
      std::fputs(result.annotated_source.c_str(), stdout);
    } else {
      std::fputs(rendered.c_str(), stdout);
    }
    if (!result.ok) failed = true;
  }
  return failed ? 1 : 0;
}
