// Cluster-level execution core shared by the single-job JobEngine and the
// multi-job engine (src/multijob).
//
// The split mirrors real Hadoop 1.x: the *cluster* owns the TaskTrackers
// (CPU/GPU map slots), the heartbeat clock and the DES event queue, while
// each *job* owns its pending map list, per-TaskTracker speedup statistics
// (Algorithm 2's aveSpeedup is tracked per job), reduce bookkeeping and
// result counters. N active jobs can therefore share one set of
// TaskTrackers; which job a freed slot serves is the caller's decision
// (trivially "the job" for JobEngine, an inter-job scheduler for
// multijob::MultiJobEngine).
//
// Fault tolerance follows the Hadoop 1.x JobTracker/TaskTracker contract:
// every map execution is an *attempt* with an id; the first attempt of a
// task to complete commits it (exactly-once — later duplicates are killed,
// so job output is bit-identical with or without faults; recovery changes
// timing, never answers). A TaskTracker silent past the expiry window is
// declared lost: its running attempts are killed and re-enqueued, and map
// outputs it committed are re-executed when reducers still need them (map
// output lives on tracker-local disk). Failed attempts retry with
// exponential backoff up to ClusterConfig::max_task_attempts; trackers
// accumulating failures are blacklisted; stragglers in the tail optionally
// get speculative second attempts that prefer idle GPUs (composing with
// Algorithm 2's tail forcing). All of it is driven by an optional
// fault::FaultInjector — null means fault-free and bit-identical modeled
// numbers, the trace::Sink convention.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "gpurt/kv.h"
#include "hadoop/checkpoint.h"
#include "hadoop/des.h"
#include "hadoop/task_source.h"
#include "hdfs/hdfs.h"
#include "sched/policy.h"
#include "trace/metrics.h"
#include "trace/timeseries.h"
#include "trace/trace.h"

namespace hd::hadoop {

// A map task exhausted ClusterConfig::max_task_attempts failed attempts;
// Hadoop 1.x fails the whole job at this point, and so do we.
class JobFailedError : public std::runtime_error {
 public:
  explicit JobFailedError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ClusterConfig {
  int num_slaves = 4;
  int map_slots_per_node = 4;    // CPU map slots (Table 3: 20 / 4)
  int reduce_slots_per_node = 2;
  int gpus_per_node = 0;
  double heartbeat_sec = 3.0;
  double network_bytes_per_sec = 1.0e9;  // shuffle / non-local reads
  double reduce_slowstart = 0.2;  // Table 3: 20% maps before reduce starts
  // Extension (paper §9 future work): inter-node heterogeneity. When
  // non-empty, entry i scales every task duration on node i (e.g. 2.0 =
  // an older node at half speed). Size must equal num_slaves.
  std::vector<double> node_speed_factors;

  // --- Simulator core (src/des) ------------------------------------------
  // Event-queue backend: "calendar" (O(1) amortized, the default) or
  // "heap" (the reference binary heap). Both pop in identical (time, seq)
  // order, so every modeled number is bit-identical across backends.
  std::string des_backend = "calendar";
  // Batch heartbeat processing: one cluster-wide tick per heartbeat_sec
  // serving every tracker in node order, instead of num_slaves staggered
  // per-node chains. Cuts the standing heartbeat event population from
  // O(nodes) to O(1) — what keeps 10k trackers at 3 s from dominating the
  // event stream. Off by default: batching drops the per-node stagger
  // offsets, so modeled numbers differ (correct, but not pin-identical).
  bool batch_heartbeats = false;

  // --- Fault tolerance (Hadoop 1.x recovery semantics) -------------------
  // Deterministic fault injection (src/fault); null = fault-free, the
  // default, and bit-identical modeled numbers.
  const fault::FaultInjector* faults = nullptr;
  // A TaskTracker silent for longer than this is declared lost by the
  // JobTracker (mapred.tasktracker.expiry.interval). Must exceed the
  // heartbeat interval.
  double heartbeat_expiry_sec = 30.0;
  // Failed attempts allowed per task before the job aborts with
  // JobFailedError (mapred.map.max.attempts).
  int max_task_attempts = 4;
  // GPU attempts of one task that may end in GpuTaskFailure / device OOM
  // before the task is demoted to CPU-only placement. Bounds the §5.1
  // GPU-failure rescheduling loop (kmeans on Cluster2), which is otherwise
  // unbounded under tail forcing.
  int max_gpu_attempts = 3;
  // A TaskTracker accumulating this many failed attempts is blacklisted:
  // it keeps heartbeating but receives no further tasks. A restarted
  // tracker re-registers with a clean slate.
  int blacklist_task_failures = 4;
  // Exponential backoff base for re-enqueueing a failed attempt's task:
  // the k-th failure of a task waits retry_backoff_sec * 2^(k-1).
  double retry_backoff_sec = 1.0;
  // Speculative execution of stragglers (off by default so fault-free runs
  // stay pin-identical): once a job's pending queue drains, a second
  // attempt of the slowest running task launches on a free slot —
  // preferring GPUs, the tail-scheduling composition — and the first
  // completion commits while the loser is killed.
  bool speculation = false;
  // A running attempt is a straggler once its elapsed time exceeds this
  // multiple of the job's mean completed duration on the same device.
  double speculation_slowdown = 1.5;

  // Optional schedule trace (one line per task start/finish), for debugging
  // and for the Fig. 3 bench's timeline rendering.
  std::ostream* trace = nullptr;
  // Structured observability (src/trace); null = off and bit-identical
  // modeled numbers. Timestamps are DES virtual seconds. Track layout:
  // pid trace_pid_base is the JobTracker (one lane per job id), pid
  // trace_pid_base+node+1 is cluster node `node` with tid 0 for
  // heartbeats/decisions, tids 1..map_slots_per_node its CPU map slots and
  // the next gpus_per_node tids its GPU slots. `trace_pid_base` lets
  // several engine runs (e.g. two scheduling policies over the same seed)
  // share one trace file on disjoint pid ranges.
  trace::Sink* sink = nullptr;
  trace::Registry* metrics = nullptr;
  // Live telemetry (src/trace/timeseries.h); null = off, the default, and
  // bit-identical modeled numbers. When set, the engine schedules a
  // read-only sample event at every multiple of the sampler's interval:
  // the event snapshots cluster gauges (live trackers, running attempts,
  // slot utilization, DES events/sec, availability) plus whatever probes
  // the engine registered, then re-arms while other events remain — so
  // the queue still drains when the simulation is done.
  trace::TimeSeries* timeseries = nullptr;
  int trace_pid_base = 0;

  // --- Elastic HA serving (checkpoint / resize / preemption) -------------
  // JobTracker checkpoint cadence in modeled seconds; 0 (the default) = off
  // and zero perturbation. When positive, the multi-job engines write a
  // heterodoop.ckpt.v1 snapshot at every multiple of the interval
  // (tick k at k * interval, multiplication not accumulation) to
  // checkpoint_path (atomic tmp+rename overwrite) and/or on_checkpoint.
  double checkpoint_interval_sec = 0.0;
  std::string checkpoint_path;
  // Test/kill-restart hook: halt the run right after writing checkpoint
  // `stop_at_checkpoint` (>= 1), leaving the engine mid-flight — the
  // SIGKILL-equivalent a warm restart recovers from. 0 = never halt.
  int stop_at_checkpoint = 0;
  // Observation hook invoked after each checkpoint write with (seq, text);
  // read-only with respect to modeled state.
  std::function<void(int, const std::string&)> on_checkpoint;
  // Preemptive per-tenant quotas (Capacity scheduler pools): how many times
  // one job may have attempts killed for quota enforcement before it is
  // exempt (the anti-livelock bound). 0 (the default) disables preemption
  // entirely — bit-identical scheduling to the non-preemptive engine.
  int preemption_budget = 0;
  // Runtime resize floor: a ScheduleLeave that would drop the registered
  // tracker count below this is refused (counted, traced). The default 1
  // keeps the last tracker from draining away under active jobs.
  int min_tracker_floor = 1;

  // Throws one CheckError listing every violated invariant (see
  // ValidateClusterConfig below).
  void Validate() const;
};

// Checks every ClusterConfig invariant (positive slot/heartbeat/
// bandwidth values, slowstart fraction in [0,1], speed-factor arity,
// attempt/blacklist/backoff/expiry bounds, a known des_backend). Called
// from the ClusterCore constructor; collects *all* violations and throws
// one CheckError listing each of them (the translator::Translate
// convention), so a misconfigured sweep surfaces every problem at once.
void ValidateClusterConfig(const ClusterConfig& cfg);

struct JobResult {
  double makespan_sec = 0.0;
  double map_phase_end_sec = 0.0;
  std::int64_t cpu_tasks = 0;
  std::int64_t gpu_tasks = 0;
  std::int64_t gpu_failures = 0;
  std::int64_t nonlocal_tasks = 0;
  std::int64_t total_map_output_bytes = 0;
  double max_observed_speedup = 1.0;

  // --- Recovery accounting (all zero on a fault-free run) ----------------
  std::int64_t task_failures = 0;   // attempts that failed partway through
  std::int64_t task_retries = 0;    // re-enqueues after a failed attempt
  std::int64_t killed_attempts = 0;  // killed by node loss or losing a race
  std::int64_t maps_reexecuted = 0;  // committed maps rerun after node loss
  std::int64_t gpu_demotions = 0;   // tasks forced CPU-only by the GPU cap
  std::int64_t speculative_launched = 0;
  std::int64_t speculative_wins = 0;    // speculative attempt committed
  std::int64_t speculative_losses = 0;  // original won; speculative killed
  std::int64_t preempted_attempts = 0;  // killed by quota enforcement

  // Cluster-level counters snapshotted at job completion (single-job runs;
  // the multi-job engine reports them per workload instead).
  std::int64_t nodes_lost = 0;         // expiry declarations
  std::int64_t nodes_blacklisted = 0;

  // Functional sources only: the job's final output (reduce output, or map
  // output for map-only jobs).
  std::vector<gpurt::KvPair> final_output;
};

// Per-(job, TaskTracker) speedup bookkeeping: Algorithm 2's aveSpeedup,
// tracked per job because different jobs see different GPU speedups.
struct JobNodeStats {
  double cpu_avg = 0.0;
  std::int64_t cpu_n = 0;
  double gpu_avg = 0.0;
  std::int64_t gpu_n = 0;

  double AveSpeedup() const {
    if (cpu_n == 0 || gpu_n == 0 || gpu_avg <= 0.0) return 1.0;
    return cpu_avg / gpu_avg;
  }
};

// Lifecycle of one map task under the attempt/commit protocol.
enum class TaskState : unsigned char {
  kPending,    // in JobState::pending, schedulable
  kRunning,    // >= 1 attempt in flight (or lost with the tracker, until
               // the JobTracker's expiry sweep re-enqueues it)
  kRetryWait,  // last attempt failed; backoff timer pending
  kDone,       // committed exactly once
};

// Everything belonging to one MapReduce job in flight.
struct JobState {
  int id = 0;
  std::string label;  // app/bench id for traces and metrics
  TaskTimeSource* source = nullptr;
  sched::Policy policy = sched::Policy::kCpuOnly;
  const hdfs::Hdfs* fs = nullptr;
  std::string input_path;
  int pool = 0;  // multijob Capacity scheduler pool
  // Absolute simulated completion target. Infinity (the default) marks a
  // batch job with no latency SLO; streaming window jobs carry
  // seal_time + slo so deadline-aware inter-job schedulers (multijob's
  // MakeSloScheduler) can prioritize the window nearest to violation.
  double deadline_sec = std::numeric_limits<double>::infinity();

  std::vector<int> pending;    // unscheduled map task ids (FIFO)
  int remaining_maps = 0;      // scheduled-or-pending, not yet finished
  int maps_done = 0;
  int running_tasks = 0;       // currently occupying a slot (Fair shares)
  double max_speedup = 1.0;
  std::vector<JobNodeStats> node_stats;  // one per slave
  bool reduces_scheduled = false;
  std::vector<double> reduce_start;
  bool activated = false;  // the submission's activation event fired
  bool done = false;
  bool tail_onset_traced = false;  // first forced-GPU decision emitted

  // Per-task recovery bookkeeping (indexed by map task id).
  std::vector<TaskState> task_state;
  std::vector<int> attempts_started;  // next attempt index per task
  std::vector<int> attempts_failed;   // toward max_task_attempts
  std::vector<int> gpu_faults;        // toward max_gpu_attempts
  std::vector<unsigned char> cpu_only;  // demoted by the GPU-attempt cap
  std::vector<int> committed_node;    // node holding the map output; -1
  std::vector<std::int64_t> committed_bytes;  // its map-output size
  // Absolute fire time of a kRetryWait task's pending backoff timer
  // (checkpointed so a restore re-arms it); -1 otherwise.
  std::vector<double> retry_at;

  // Job-wide completed-duration averages feeding the speculation
  // straggler threshold.
  double cpu_dur_sum = 0.0;
  std::int64_t cpu_dur_n = 0;
  double gpu_dur_sum = 0.0;
  std::int64_t gpu_dur_n = 0;

  double submit_time = 0.0;
  double first_start_time = -1.0;  // <0 until the first task launches
  JobResult result;

  double MeanDuration(bool on_gpu) const {
    const double sum = on_gpu ? gpu_dur_sum : cpu_dur_sum;
    const std::int64_t n = on_gpu ? gpu_dur_n : cpu_dur_n;
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }
};

// Free map slots of one TaskTracker. Cluster state: shared by all jobs.
struct NodeSlots {
  int free_cpu = 0;
  int free_gpu = 0;
};

// Liveness/health of one TaskTracker as the JobTracker sees it.
struct NodeHealth {
  bool alive = true;         // false between a crash and its recovery
  bool lost = false;         // declared lost by the expiry sweep
  bool blacklisted = false;  // receives no new tasks
  double last_heartbeat_sec = 0.0;
  double down_since_sec = 0.0;   // valid while !alive
  int failed_attempts = 0;       // toward blacklist_task_failures
  std::int64_t heartbeat_seq = 0;

  // --- Runtime membership (elastic resize) -------------------------------
  // `member` is false for a tracker whose join is scheduled but has not
  // fired yet; `departed` marks one that has left for good. Initial nodes
  // are members from time 0. A draining tracker finishes its running
  // attempts but receives no new ones, then departs.
  bool member = true;
  bool draining = false;
  bool departed = false;
  double joined_sec = 0.0;
  double departed_sec = -1.0;   // < 0 while still registered
  double recover_at_sec = -1.0;  // pending RecoverEvent time; < 0 if none
};

// Owns the cluster (nodes, slots, DES clock) and implements the map-task
// placement/execution machinery for any JobState. Subclasses decide which
// job each heartbeat serves and react to completions via the hooks.
class ClusterCore {
 public:
  explicit ClusterCore(ClusterConfig cfg);
  virtual ~ClusterCore() = default;

  // --- Runtime cluster resize (DES-driven membership) --------------------
  // Schedules a fresh TaskTracker to join at modeled time `when` and
  // returns its node id (ids continue past the initial num_slaves). The
  // tracker exists immediately (so traces/arrays are sized) but is not a
  // member — it takes no work and accrues no availability denominator —
  // until the join event fires, at which point active jobs rebalance onto
  // it via an immediate heartbeat.
  int ScheduleJoin(double when);
  // Schedules tracker `node` to leave at `when`. Drain (the default)
  // finishes running attempts before departing; a hard leave kills them
  // and re-enqueues their tasks through the node-loss recovery path. A
  // leave that would drop the registered count below
  // ClusterConfig::min_tracker_floor is refused and counted.
  void ScheduleLeave(double when, int node, bool drain = true);
  // Trackers currently registered (members that have not departed).
  int registered_nodes() const;

  // True when the run stopped early at checkpoint stop_at_checkpoint —
  // the SIGKILL-equivalent state a warm restart recovers from.
  bool halted() const { return halted_; }
  // Sequence number of the last checkpoint written (0 = none yet).
  int checkpoint_seq() const { return checkpoint_seq_; }

 protected:
  // One in-flight map attempt. The DES completion/failure event carries
  // only the attempt id; `outcome_event` is its generation handle, and
  // killing the attempt cancels the event outright — no dead closure
  // lingers in the queue.
  struct Attempt {
    std::int64_t id = 0;
    JobState* job = nullptr;
    int task = -1;
    int index = 0;  // per-task attempt number
    int node = 0;
    bool on_gpu = false;
    bool speculative = false;
    double start_sec = 0.0;
    double duration = 0.0;  // full would-be duration
    std::int64_t output_bytes = 0;
    int lane = -1;
    bool will_fail = false;   // outcome event is a failure, not completion
    double outcome_at = 0.0;  // absolute outcome time (checkpointable)
    bool restored = false;    // resumed from a checkpoint, not started live
    des::EventHandle outcome_event;  // pending completion/failure event
  };

  // Validates the job against the cluster and fills in the derived fields
  // (pending list, per-node stats, per-task recovery tables). Call once
  // before scheduling it.
  void InitJob(JobState& job);

  // The sched::Policy view of `node_id` as seen by `job`: cluster slot
  // availability plus the job's own speedup estimate. A kCpuOnly job sees
  // zero GPUs even when the node has some (baseline Hadoop is GPU-blind).
  sched::NodeSched SchedView(const JobState& job, int node_id) const;

  // Algorithm 2's JobTracker side: how many tasks this job may receive
  // from `node_id` in the current heartbeat response.
  int HeartbeatCap(const JobState& job, int node_id) const;

  // Whether `node_id` has any slot this job could occupy right now.
  bool NodeHasUsableSlot(const JobState& job, int node_id) const;

  // Whether the JobTracker may hand `node_id` new work at all (alive and
  // not blacklisted).
  bool NodeSchedulable(int node_id) const;

  // TaskTracker-side heartbeat gate: false when the node is down or the
  // injector drops this heartbeat. A delivered heartbeat refreshes the
  // node's lease, re-registers a lost-but-alive tracker, and runs the
  // JobTracker's expiry sweep over every node.
  bool HeartbeatDelivered(int node_id);

  // Schedules the injector's crash/recovery plan onto the DES clock. Call
  // once at the start of Run(); a no-op without an injector.
  void ScheduleFaultPlan();

  // Picks up to `max_tasks` pending tasks, preferring node-local splits.
  std::vector<int> PickTasks(JobState& job, int node_id, int max_tasks);
  bool IsLocal(const JobState& job, int node_id, int task) const;

  void PlaceTask(JobState& job, int node_id, int task,
                 double maps_remaining_per_node);
  void StartMap(JobState& job, int node_id, int task, bool on_gpu,
                bool speculative = false);
  // Launches a speculative duplicate of the job's worst straggler on a
  // free slot of `node_id` (GPU preferred). Call after normal assignment
  // when the job's pending queue is empty; a no-op unless
  // cfg_.speculation is set.
  void MaybeSpeculate(JobState& job, int node_id);
  void OnMapsProgress(JobState& job);
  void FinishJob(JobState& job);

  // Sum of node-seconds spent down, for availability accounting; nodes
  // still down at `horizon_sec` count up to the horizon.
  double NodeDownSeconds(double horizon_sec) const;

  // Trace helpers (no-ops when cfg_.sink is null). NodeTrack is lane `tid`
  // of cluster node `node_id` under the layout documented on ClusterConfig;
  // JobTrack is the job's JobTracker lane. EmitHeartbeat is called by the
  // engines' heartbeat handlers.
  trace::Track NodeTrack(int node_id, int tid) const {
    // Joined trackers shift one pid up: trace_pid_base + num_slaves + 1 is
    // reserved for the stream engine's pipeline lane.
    const int shift = node_id < cfg_.num_slaves ? 1 : 2;
    return trace::Track{cfg_.trace_pid_base + node_id + shift, tid};
  }
  trace::Track JobTrack(const JobState& job) const {
    return trace::Track{cfg_.trace_pid_base, job.id};
  }
  void EmitHeartbeat(int node_id);

  // Registers the cluster-level telemetry probes and schedules the first
  // sample tick at cfg_.timeseries->sample_interval_sec. Engines call it
  // once at the top of Run(), after registering their own probes; a no-op
  // when cfg_.timeseries is null. Tick times are exact multiples of the
  // interval (k * interval, computed by multiplication), and the sample
  // handler only reads state — it never perturbs modeled arithmetic.
  void StartTelemetry();

  // Called after each map completion (slot freed; Hadoop 1.x sends an
  // out-of-band heartbeat here) and after a job's last map completes.
  virtual void OnTaskFinished(JobState& job, int node_id) = 0;
  virtual void OnJobFinished(JobState& job) { (void)job; }
  // Recovery needs to reach every in-flight job (a lost tracker may hold
  // map outputs of several). Engines call `fn` for each active job.
  virtual void VisitActiveJobs(const std::function<void(JobState&)>& fn) = 0;
  // A transiently-crashed TaskTracker came back: the engine should restart
  // its heartbeat pulse (the pulse chain stops while the node is down).
  virtual void OnNodeRecovered(int node_id) { (void)node_id; }
  // A scheduled join fired and `node_id` is now a registered member: the
  // engine should size its per-job node tables, start the tracker's
  // heartbeat pulse, and rebalance active work onto it.
  virtual void OnClusterGrown(int node_id) { (void)node_id; }

  // --- Checkpoint machinery ---------------------------------------------
  // Serializes the full engine state as a heterodoop.ckpt.v1 document.
  // Engines that support warm restart override this; the base
  // implementation refuses (single-job JobEngine has no checkpoint story).
  virtual std::string CheckpointToText();
  // Per-job hook for extra checkpoint fields (the stream engine tags
  // window jobs with their pipeline/seq so a restore can rebuild their
  // synthetic task sources). Default: nothing.
  virtual void WriteJobExtra(json::Writer& w, const JobState& job) const {
    (void)w;
    (void)job;
  }

  // Arms the first checkpoint tick (seq restored_seq_+1) when
  // cfg_.checkpoint_interval_sec > 0; a no-op otherwise. Call from Run()
  // before draining events.
  void ScheduleCheckpointTicks();
  // Drains the event queue: events_.Run(), except when a stop_at_checkpoint
  // halt is armed, in which case it single-steps so the halt can freeze the
  // queue mid-flight.
  void DrainEvents();

  // Writes the "cluster" section (node health/slots, attempt registry,
  // lost-task list, membership plan, fault counters) into an open object.
  void WriteClusterSection(json::Writer& w);
  // Serializes one JobState (including its JobResult) as an object value.
  void WriteJobState(json::Writer& w, const JobState& job);

  // Restore passes (see checkpoint.h for the contract). ApplyClusterPre
  // overlays node health/slots/counters and re-schedules recovery and
  // membership events; ApplyJobState overlays one job's tables and arms its
  // retry timers; ApplyAttempts rebuilds the in-flight attempt registry in
  // ascending id order (preserving event-queue tie order) and the lost-task
  // list, resolving jobs through `job_by_id`.
  void ApplyClusterPre(const json::Value& cluster);
  void ApplyJobState(const json::Value& entry, JobState& job);
  void ApplyAttempts(const json::Value& cluster,
                     const std::function<JobState*(int)>& job_by_id);

  // Grows the per-node arrays (slots, health, lanes, lost-task lists) to
  // hold `n` trackers; new entries are non-members with zero slots until
  // admitted.
  void GrowArraysTo(int n);
  // Re-enqueues committed map outputs held by `node_id` for re-execution
  // (map output lives on tracker-local disk). Shared by the expiry sweep
  // and hard leaves.
  void ReexecuteCommittedMaps(int node_id);

  // Registered-tracker node-seconds up to `horizon_sec`, the availability
  // denominator. Equals num_slaves * horizon for a static cluster (fast
  // path, bit-exact); with membership churn each tracker contributes its
  // [joined, departed) overlap instead.
  double RegisteredNodeSeconds(double horizon_sec) const;

  // Kills attempt `id` (slot/lane freed, truncated span); `why` labels the
  // trace event. Protected so the multi-job engine's quota preemption can
  // kill victims through the same path node loss uses.
  void KillAttempt(std::int64_t id, const char* why);
  void RequeueTask(JobState& job, int task);
  bool HasRunningAttempt(const JobState& job, int task) const;

  // One scheduled membership change. The plan is checkpointed (fired
  // entries and all) so a restored run can match it against the caller's
  // re-scheduled plan and cancel the already-fired events.
  struct MembershipOp {
    enum class Kind : unsigned char { kJoin, kLeave };
    Kind kind = Kind::kJoin;
    double when = 0.0;
    int node = 0;
    bool drain = true;
    bool fired = false;
    des::EventHandle event;
  };

  ClusterConfig cfg_;
  EventQueue events_;
  std::vector<NodeSlots> nodes_;
  std::vector<NodeHealth> health_;
  bool trace_job_ids_ = false;  // multijob traces tag lines with job=<id>

  // Per-node free trace lanes (tids), maintained only when cfg_.sink is
  // set; a running task holds its lane from StartMap to FinishMap so
  // overlapping tasks render on distinct rows.
  std::vector<std::vector<int>> free_cpu_lanes_;
  std::vector<std::vector<int>> free_gpu_lanes_;

  // Cluster-level accounting for utilization / contention metrics.
  double cpu_busy_sec_ = 0.0;   // map-slot-seconds spent on CPU tasks
  double gpu_busy_sec_ = 0.0;   // GPU-slot-seconds spent on GPU tasks
  std::int64_t gpu_bounces_ = 0;  // forced-GPU placements, every GPU busy

  // Cluster-level fault/recovery accounting.
  std::int64_t nodes_crashed_ = 0;
  std::int64_t nodes_recovered_ = 0;
  std::int64_t nodes_lost_ = 0;        // expiry declarations
  std::int64_t nodes_blacklisted_ = 0;
  std::int64_t heartbeats_dropped_ = 0;
  // Completed outage intervals [crash, recover); open outages live in
  // NodeHealth::down_since_sec. Kept as intervals so NodeDownSeconds can
  // clamp to a horizon (crash-plan events keep firing after the last job
  // completes; those must not count against availability).
  std::vector<std::pair<double, double>> outages_;

  // Membership accounting.
  std::int64_t nodes_joined_ = 0;
  std::int64_t nodes_left_ = 0;
  std::int64_t leaves_refused_ = 0;  // blocked by min_tracker_floor
  std::vector<MembershipOp> membership_plan_;
  bool membership_used_ = false;  // any join/leave scheduled this run
  int joins_scheduled_ = 0;
  // Pending RecoverEvent per node, cancellable on departure. Parallel to
  // health_.
  std::vector<des::EventHandle> recover_events_;

  // In-flight attempt registry (Hadoop 1.x attempt ids). Protected so the
  // multi-job engine's preemption can pick victims and the checkpoint
  // writer can serialize it.
  std::map<std::int64_t, Attempt> running_;
  std::int64_t next_attempt_id_ = 1;
  // (job, task) pairs whose attempts died with the node, awaiting the
  // expiry sweep. Indexed by node.
  std::vector<std::vector<std::pair<JobState*, int>>> lost_tasks_;

  // Checkpoint / warm-restart state. restored_at_ >= 0 marks an engine
  // restored from checkpoint restored_seq_ at that modeled time; ticks and
  // telemetry resume *after* it instead of from 0.
  bool halted_ = false;
  int checkpoint_seq_ = 0;
  int restored_seq_ = 0;
  double restored_at_ = -1.0;

 private:
  // Pooled DES event trampolines (ctx is the ClusterCore): the payload
  // carries an attempt id, a node id, a packed crash, or a (job, task)
  // pair — never a heap-allocated closure.
  static void CrashEvent(void* ctx, const des::Payload& p);
  static void RecoverEvent(void* ctx, const des::Payload& p);
  static void SampleEvent(void* ctx, const des::Payload& p);
  static void AttemptDoneEvent(void* ctx, const des::Payload& p);
  static void AttemptFailedEvent(void* ctx, const des::Payload& p);
  static void RetryTimerEvent(void* ctx, const des::Payload& p);
  static void JoinEvent(void* ctx, const des::Payload& p);
  static void LeaveEvent(void* ctx, const des::Payload& p);
  static void CheckpointEvent(void* ctx, const des::Payload& p);

  // One telemetry sample at tick k (modeled time k * interval); re-arms
  // tick k+1 while other events remain in the queue.
  void SampleTick(std::int64_t k);

  // Standing auxiliary events (telemetry samples, checkpoint ticks)
  // currently in the queue. Each chain re-arms only while the queue holds
  // more than the auxiliary events, so two self-re-arming chains cannot
  // keep each other alive after the simulation proper has drained.
  std::int64_t aux_pending_ = 0;

  void CrashNode(const fault::NodeCrash& crash);
  void RecoverNode(int node_id);
  void CheckExpiry();
  void DeclareLost(int node_id);
  // Kills every running attempt on `node_id` (frees slots/lanes, emits
  // truncated spans) and remembers the (job, task) pairs for the expiry
  // sweep's re-enqueue.
  void KillAttemptsOn(int node_id);
  // Membership event bodies: a join admits the tracker and notifies the
  // engine; a leave drains or hard-kills, then departs.
  void AdmitNode(int node_id);
  void LeaveNow(int node_id, bool drain);
  void DepartNode(int node_id);
  // Writes checkpoint `k` (file and/or hook), then either halts the run
  // (stop_at_checkpoint) or re-arms tick k+1 while events remain.
  void CheckpointTick(int k);
  void OnAttemptDone(std::int64_t id);
  void OnAttemptFailed(std::int64_t id);
  // The GPU path of StartMap failed to launch (GpuTaskFailure or injected
  // OOM): account it, maybe demote the task, and rescue onto a CPU slot
  // or back to pending.
  void HandleGpuLaunchFailure(JobState& job, int node_id, int task,
                              bool speculative, bool injected_oom);
  // Reschedules the (job, task) pairs whose attempts died on `node_id`:
  // called from DeclareLost (expiry) and from RecoverNode (re-registration
  // after an outage shorter than the expiry window).
  void RequeueLostTasks(int node_id);
  void FreeSlot(int node_id, bool on_gpu, int lane);
};

}  // namespace hd::hadoop
