// Region analysis for the translator (supports Algorithm 1 of the paper).
//
// Given a function and a directive-annotated region inside it, computes:
//   * which variables used inside the region are declared outside it
//     (the kernel's external variables, to be classified as sharedRO /
//     firstprivate / private),
//   * which of those are read before they are written (the compiler's
//     automatic firstprivate detection described in §3.2),
//   * the declared type of every external variable.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace hd::minic {

// One write to an external variable inside the region, with enough context
// for the static analyzer's race/placement diagnostics.
struct WriteSite {
  int line = 0;
  int col = 0;
  // Compound assignment or ++/-- (reads the old value before writing).
  bool compound = false;
  // Wrote one element (base[idx] / *ptr) rather than the whole variable.
  bool element = false;
  // Write happened through a write-only builtin argument (strcpy dst, scanf
  // output, getline buffer, ...).
  bool via_builtin = false;
  // For element writes: the index expression is region-constant (literals
  // and variables the region never modifies only) — every thread would hit
  // the same location if the variable were shared.
  bool constant_index = false;
};

struct RegionInfo {
  // Variables referenced in the region but declared outside it.
  std::set<std::string> used_outer;
  // Subset of used_outer whose first access in the region may be a read
  // (conservative): these need firstprivate initialisation.
  std::set<std::string> read_before_write;
  // Subset of used_outer that is never written inside the region: eligible
  // for sharedRO placement.
  std::set<std::string> never_written;
  // Declared types of used_outer variables.
  std::map<std::string, Type> outer_types;
  // Every write to a used_outer variable, in source order.
  std::map<std::string, std::vector<WriteSite>> write_sites;
  // Location of the first reference to each used_outer variable.
  std::map<std::string, std::pair<int, int>> first_use;  // line, col
  // Subset of used_outer read through an index expression (base[idx]) —
  // the access pattern texture placement accelerates.
  std::set<std::string> indexed_read;
};

// Analyzes `region` (a statement within fn->body). HD_CHECKs that the
// region is actually reachable inside the function body.
RegionInfo AnalyzeRegion(const FunctionDef& fn, const Stmt& region);

// ---------------------------------------------------------------------------
// Loop-carried dependence facts (directive synthesis, hdinfer).
// ---------------------------------------------------------------------------

// One write to a loop-carried variable, with the operator detail the
// reduction-pattern matcher needs (WriteSite only records *that* a compound
// write happened, not which operator carried the old value forward).
struct AccumSite {
  int line = 0;
  int col = 0;
  // Compound assignment operator (v op= e); kAssign for plain assignments,
  // ++/--, and builtin writes.
  AssignOp op = AssignOp::kAssign;
  bool increment = false;    // v++ / ++v
  bool decrement = false;    // v-- / --v
  bool element = false;      // wrote one element (v[i] / *v)
  bool via_builtin = false;  // write-only builtin argument (strcpy dst, ...)
  // Plain assignment whose RHS reads v (v = v - x escapes the compound
  // check; the matcher treats it like the equivalent compound write).
  bool rhs_reads_self = false;
  // Plain assignment guarded by an if whose condition compares v against
  // the assigned value: the min/max reduction idiom.
  bool minmax_guarded = false;
};

// Dependence facts for one candidate loop: which outer variables carry a
// value from iteration i into iteration i+1. A variable is loop-carried
// when the loop both writes it and (on some path) reads it before every
// write of the same iteration — the next iteration then observes the
// previous one's store, so iterations cannot run as independent threads
// unless the carried updates form a commutative/associative reduction.
struct LoopDepInfo {
  // The underlying region facts for the loop statement itself.
  RegionInfo region;
  // Outer variables carried across iterations, in name order.
  std::set<std::string> carried;
  // Every write to a carried variable, with operator detail, source order.
  std::map<std::string, std::vector<AccumSite>> accum_sites;
};

// Analyzes the loop-carried dependences of `loop` (a while/do/for statement
// within fn->body). HD_CHECKs that the loop is reachable in the function.
LoopDepInfo AnalyzeLoopDependence(const FunctionDef& fn, const Stmt& loop);

// Finds the first statement in the function carrying a directive of the
// given kind, or null.
const Stmt* FindDirectiveRegion(const FunctionDef& fn, Directive::Kind kind);

// Finds every directive-bearing statement in the function, in source order.
std::vector<const Stmt*> FindAllDirectiveRegions(const FunctionDef& fn);

}  // namespace hd::minic
