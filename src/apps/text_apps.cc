// Wordcount (WC) and Grep (GR): the IO-intensive text benchmarks (§7.1).
#include <map>

#include "apps/apps_internal.h"
#include "apps/gen.h"
#include "apps/golden_util.h"
#include "apps/sources.h"

namespace hd::apps {
namespace {

// Listing 1, plus the getWord helper it calls.
std::string WordcountMapSource() {
  return std::string(kGetWordSource) + R"(
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";
}

// Emits <word, 1> only for words containing the search pattern.
std::string GrepMapSource() {
  return std::string(kGetWordSource) + R"(
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      if (strstr(word, "w1") != NULL) {
        printf("%s\t%d\n", word, one);
      }
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";
}

std::vector<gpurt::KvPair> CountsToPairs(
    const std::map<std::string, long long>& counts) {
  std::vector<gpurt::KvPair> out;
  out.reserve(counts.size());
  for (const auto& [k, v] : counts) out.push_back({k, std::to_string(v)});
  return out;
}

std::vector<gpurt::KvPair> WordcountGolden(
    const std::vector<std::string>& splits) {
  std::map<std::string, long long> counts;
  for (const auto& split : splits) {
    for (auto& w : ExtractWords(split, 30)) counts[w]++;
  }
  return CountsToPairs(counts);
}

std::vector<gpurt::KvPair> GrepGolden(const std::vector<std::string>& splits) {
  std::map<std::string, long long> counts;
  for (const auto& split : splits) {
    for (auto& w : ExtractWords(split, 30)) {
      if (w.find("w1") != std::string::npos) counts[w]++;
    }
  }
  return CountsToPairs(counts);
}

}  // namespace

Benchmark MakeWordcount() {
  Benchmark b;
  b.id = "WC";
  b.name = "Wordcount";
  b.io_intensive = true;
  b.has_combiner = true;
  b.pct_map_combine_active = 91;
  b.map_source = WordcountMapSource();
  b.combine_source = SumFilterSource(/*with_directive=*/true, 30);
  b.reduce_source = SumFilterSource(/*with_directive=*/false, 30);
  b.generate = GenZipfText;
  b.golden = WordcountGolden;
  b.exact_output = true;
  b.cluster1 = {true, 48, 5760, 844.0};
  b.cluster2 = {true, 32, 1024, 151.0};
  return b;
}

Benchmark MakeGrep() {
  Benchmark b;
  b.id = "GR";
  b.name = "Grep";
  b.io_intensive = true;
  b.has_combiner = true;
  b.pct_map_combine_active = 69;
  b.map_source = GrepMapSource();
  b.combine_source = SumFilterSource(/*with_directive=*/true, 30);
  b.reduce_source = SumFilterSource(/*with_directive=*/false, 30);
  b.generate = GenZipfText;
  b.golden = GrepGolden;
  b.exact_output = true;
  b.cluster1 = {true, 16, 7632, 902.0};
  b.cluster2 = {true, 16, 2880, 340.0};
  return b;
}

}  // namespace hd::apps
