file(REMOVE_RECURSE
  "CMakeFiles/hd_gpurt.dir/cpu_task.cc.o"
  "CMakeFiles/hd_gpurt.dir/cpu_task.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/gpu_task.cc.o"
  "CMakeFiles/hd_gpurt.dir/gpu_task.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/job_program.cc.o"
  "CMakeFiles/hd_gpurt.dir/job_program.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/kv.cc.o"
  "CMakeFiles/hd_gpurt.dir/kv.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/kvstore.cc.o"
  "CMakeFiles/hd_gpurt.dir/kvstore.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/records.cc.o"
  "CMakeFiles/hd_gpurt.dir/records.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/seqfile.cc.o"
  "CMakeFiles/hd_gpurt.dir/seqfile.cc.o.d"
  "CMakeFiles/hd_gpurt.dir/sort.cc.o"
  "CMakeFiles/hd_gpurt.dir/sort.cc.o.d"
  "libhd_gpurt.a"
  "libhd_gpurt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_gpurt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
