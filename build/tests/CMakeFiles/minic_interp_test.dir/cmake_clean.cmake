file(REMOVE_RECURSE
  "CMakeFiles/minic_interp_test.dir/minic_interp_test.cc.o"
  "CMakeFiles/minic_interp_test.dir/minic_interp_test.cc.o.d"
  "minic_interp_test"
  "minic_interp_test.pdb"
  "minic_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
