# Empty dependencies file for table3_clusters.
# This may be replaced when dependencies are built.
