// Node-level I/O parameters used by both CPU and GPU task models.
#pragma once

namespace hd::gpurt {

struct IoConfig {
  // Reading a data-local fileSplit out of HDFS (local disk path).
  double hdfs_read_bytes_per_sec = 300e6;
  // Writing intermediate map+combine output to the node-local disk.
  double disk_write_bytes_per_sec = 150e6;
  // Writing final output to HDFS (replicated, slower than local disk).
  double hdfs_write_bytes_per_sec = 90e6;
  // Hadoop checksums everything it writes (CRC32 per 512-byte chunk);
  // charged on the CPU at this rate.
  double checksum_cycles_per_byte = 0.8;
  double cpu_clock_ghz = 2.8;

  // An in-memory deployment (Cluster2 has no disks, Table 3).
  static IoConfig InMemory() {
    IoConfig io;
    io.hdfs_read_bytes_per_sec = 2.0e9;
    io.disk_write_bytes_per_sec = 1.5e9;
    io.hdfs_write_bytes_per_sec = 1.2e9;
    return io;
  }

  double ReadSeconds(double bytes) const {
    return bytes / hdfs_read_bytes_per_sec;
  }
  double LocalWriteSeconds(double bytes) const {
    return bytes / disk_write_bytes_per_sec +
           bytes * checksum_cycles_per_byte / (cpu_clock_ghz * 1e9);
  }
  double HdfsWriteSeconds(double bytes) const {
    return bytes / hdfs_write_bytes_per_sec +
           bytes * checksum_cycles_per_byte / (cpu_clock_ghz * 1e9);
  }
};

}  // namespace hd::gpurt
