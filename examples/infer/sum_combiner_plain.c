// A plain mini-C streaming sum combiner with no mapreduce pragma: the
// block form (KV loop plus trailing group flush) is the idiom hdinfer
// recognises as a keyed reduction. Inference attaches the directive to the
// block so the flush stays inside the combiner region:
//
//   hdinfer --rewrite sum_combiner_plain.c
int main() {
  char key[32], prevKey[32];
  int count, val, read;
  prevKey[0] = '\0';
  count = 0;
  {
    while ((read = scanf("%s %d", key, &val)) == 2) {
      if (strcmp(key, prevKey) == 0) {
        count += val;
      } else {
        if (prevKey[0] != '\0')
          printf("%s\t%d\n", prevKey, count);
        strcpy(prevKey, key);
        count = val;
      }
    }
    if (prevKey[0] != '\0')
      printf("%s\t%d\n", prevKey, count);
  }
  return 0;
}
