#include "translator/translator.h"

#include <algorithm>

#include "analysis/analyzer.h"
#include "analysis/infer.h"
#include "common/check.h"

namespace hd::translator {

using minic::Directive;
using minic::Type;

const char* VarClassName(VarClass c) {
  switch (c) {
    case VarClass::kSharedROScalar: return "sharedRO-scalar(constant)";
    case VarClass::kSharedROArray: return "sharedRO-array(global)";
    case VarClass::kTexture: return "texture";
    case VarClass::kFirstPrivate: return "firstprivate";
    case VarClass::kPrivate: return "private";
  }
  return "?";
}

const VarPlan* KernelPlan::FindVar(const std::string& name) const {
  for (const auto& v : vars) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

namespace {

// Mirrors TranslateOptions into the analyzer's knobs so the analysis layer
// and the plan builder reason about the identical program model.
analysis::AnalyzerOptions AnalyzerOptionsFor(const TranslateOptions& opts) {
  analysis::AnalyzerOptions aopts;
  aopts.source_name = opts.source_name;
  aopts.require_directive = true;  // translator mode: no directive = error
  aopts.auto_firstprivate = opts.auto_firstprivate;
  aopts.int_text_bytes = opts.int_text_bytes;
  aopts.double_text_bytes = opts.double_text_bytes;
  return aopts;
}

// KV slot widths come from the analysis layer (single source of truth; the
// kv-bounds pass checks against the same numbers the plan will use).
int SlotBytes(const Type& t, int declared_len, const TranslateOptions& opts) {
  return analysis::KvSlotBytes(t, declared_len, opts.int_text_bytes,
                               opts.double_text_bytes);
}

int ParseIntArg(const Directive& dir, const std::string& clause) {
  if (!dir.Has(clause)) return 0;
  const std::string& a = dir.Arg(clause);
  try {
    return std::stoi(a);
  } catch (const std::exception&) {
    // Backstop only: the directive-check pass rejects this first (HD108).
    throw TranslateError("line " + std::to_string(dir.line) + ": clause '" +
                         clause + "' expects an integer, got '" + a + "'");
  }
}

VarClass ToVarClass(analysis::Placement p) {
  switch (p) {
    case analysis::Placement::kConstant: return VarClass::kSharedROScalar;
    case analysis::Placement::kGlobal: return VarClass::kSharedROArray;
    case analysis::Placement::kTexture: return VarClass::kTexture;
    case analysis::Placement::kFirstPrivate: return VarClass::kFirstPrivate;
    case analysis::Placement::kPrivate: return VarClass::kPrivate;
  }
  return VarClass::kPrivate;
}

// Implements Algorithm 1 by consuming the analysis layer's placement
// decision for every variable the region uses but does not declare. The
// race/clause validation itself lives in the analyzer passes, which ran
// (and errored out) before plan building starts.
void ClassifyVariables(const analysis::RegionContext& rc,
                       const TranslateOptions& opts, KernelPlan* plan) {
  analysis::AnalyzerOptions aopts = AnalyzerOptionsFor(opts);
  for (const auto& name : rc.info.used_outer) {
    VarPlan vp;
    vp.name = name;
    vp.type = rc.info.outer_types.at(name);
    vp.cls = ToVarClass(analysis::ClassifyPlacement(name, rc, aopts).placement);
    plan->vars.push_back(std::move(vp));
  }
  std::sort(plan->vars.begin(), plan->vars.end(),
            [](const VarPlan& a, const VarPlan& b) { return a.name < b.name; });
}

KernelPlan BuildPlan(const analysis::RegionContext& rc,
                     const TranslateOptions& opts) {
  const Directive& dir = *rc.directive;
  KernelPlan plan;
  plan.kind = dir.kind;
  plan.fn = rc.fn;
  plan.region = rc.region;
  plan.directive = &dir;

  const minic::RegionInfo& info = rc.info;

  // Clause validation happened in the analyzer passes; Arg() is safe here
  // because HD103/HD104/HD107 errors abort before plan building.
  plan.key_var = dir.Arg("key");
  plan.value_var = dir.Arg("value");
  if (dir.kind == Directive::Kind::kCombiner) {
    plan.keyin_var = dir.Arg("keyin");
    plan.valuein_var = dir.Arg("valuein");
  }

  auto type_of = [&](const std::string& name, const char* what) -> Type {
    auto it = info.outer_types.find(name);
    if (it == info.outer_types.end()) {
      // Backstop only: the directive-check pass rejects this first (HD111).
      throw TranslateError("line " + std::to_string(dir.line) + ": " + what +
                           " variable '" + name +
                           "' is not used in the region or not declared");
    }
    return it->second;
  };

  const Type key_t = type_of(plan.key_var, "key");
  const Type val_t = type_of(plan.value_var, "value");
  if (dir.kind == Directive::Kind::kCombiner) {
    type_of(plan.keyin_var, "keyin");
    type_of(plan.valuein_var, "valuein");
  }

  plan.kv.key_is_array = key_t.is_array || key_t.is_pointer;
  plan.kv.val_is_array = val_t.is_array || val_t.is_pointer;
  plan.kv.key_slot_bytes =
      SlotBytes(key_t, ParseIntArg(dir, "keylength"), opts);
  plan.kv.val_slot_bytes =
      SlotBytes(val_t, ParseIntArg(dir, "vallength"), opts);
  HD_CHECK(plan.kv.key_slot_bytes > 0);
  HD_CHECK(plan.kv.val_slot_bytes > 0);

  plan.kvpairs_hint = ParseIntArg(dir, "kvpairs");
  plan.blocks_hint = ParseIntArg(dir, "blocks");
  plan.threads_hint = ParseIntArg(dir, "threads");

  ClassifyVariables(rc, opts, &plan);
  return plan;
}

}  // namespace

TranslatedProgram Translate(const std::string& source,
                            const TranslateOptions& options) {
  // Phase 0 (opt-in): synthesize directives for plain mini-C programs.
  std::string annotated = source;
  if (options.infer_missing_directives &&
      source.find("mapreduce") == std::string::npos) {
    analysis::InferOptions iopts;
    iopts.source_name = options.source_name;
    iopts.provenance_notes = false;
    analysis::InferResult ir = analysis::InferDirectives(source, iopts);
    if (!ir.ok) {
      throw TranslateError(
          "cannot infer mapreduce directives:\n" + ir.diags.RenderText(),
          ir.diags.diagnostics());
    }
    annotated = ir.annotated_source;
  }

  // Phase 1: run the full hdlint pass pipeline. Any error aborts with one
  // TranslateError reporting every problem found, not just the first.
  analysis::AnalysisResult ar =
      analysis::AnalyzeSource(annotated, AnalyzerOptionsFor(options));
  if (ar.diags.HasErrors()) {
    throw TranslateError(
        "mapreduce program failed static analysis:\n" + ar.diags.RenderText(),
        ar.diags.diagnostics());
  }
  HD_CHECK(ar.unit != nullptr);

  // Phase 2: build kernel plans from the regions the analyzer prepared
  // (the parse and region analysis are shared, not redone).
  TranslatedProgram out;
  out.unit = ar.unit;
  for (const analysis::RegionContext& rc : ar.regions) {
    auto& slot = rc.directive->kind == Directive::Kind::kMapper
                     ? out.map_plan
                     : out.combine_plan;
    if (!slot) slot = BuildPlan(rc, options);
  }
  if (!out.map_plan && !out.combine_plan) {
    // Backstop only: HD102 is an error in translator mode.
    throw TranslateError("no mapreduce directive found in main()");
  }
  return out;
}

}  // namespace hd::translator
