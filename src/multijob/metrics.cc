#include "multijob/metrics.h"

#include "common/stats.h"

namespace hd::multijob {

std::int64_t WorkloadMetrics::TotalCpuTasks() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.cpu_tasks;
  return n;
}

std::int64_t WorkloadMetrics::TotalGpuTasks() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.gpu_tasks;
  return n;
}

std::int64_t WorkloadMetrics::TotalTaskFailures() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.task_failures;
  return n;
}

std::int64_t WorkloadMetrics::TotalTaskRetries() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.task_retries;
  return n;
}

std::int64_t WorkloadMetrics::TotalKilledAttempts() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.killed_attempts;
  return n;
}

std::int64_t WorkloadMetrics::TotalMapsReexecuted() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.maps_reexecuted;
  return n;
}

std::int64_t WorkloadMetrics::TotalSpeculativeLaunched() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.speculative_launched;
  return n;
}

std::int64_t WorkloadMetrics::TotalSpeculativeWins() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.speculative_wins;
  return n;
}

std::int64_t WorkloadMetrics::TotalSpeculativeLosses() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.speculative_losses;
  return n;
}

std::int64_t WorkloadMetrics::TotalPreemptedAttempts() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.preempted_attempts;
  return n;
}

double WorkloadMetrics::MeanQueueWait() const {
  std::vector<double> waits;
  waits.reserve(jobs.size());
  for (const auto& j : jobs) waits.push_back(j.QueueWait());
  return stats::Mean(waits);
}

double WorkloadMetrics::LatencyPercentile(double q) const {
  std::vector<double> lat;
  lat.reserve(jobs.size());
  for (const auto& j : jobs) lat.push_back(j.Latency());
  return stats::NearestRankPercentile(std::move(lat), q);
}

double WorkloadMetrics::ThroughputJobsPerHour() const {
  if (makespan_sec <= 0.0) return 0.0;
  return static_cast<double>(jobs.size()) * 3600.0 / makespan_sec;
}

double WorkloadMetrics::QueueWaitGrowth(double tau_sec) const {
  // jobs is kept in submission (job id) order, which for open-loop runs is
  // arrival order.
  const std::size_t n = jobs.size();
  const std::size_t third = n / 3;
  if (third == 0) return 1.0;
  double first = 0.0;
  double last = 0.0;
  for (std::size_t i = 0; i < third; ++i) first += jobs[i].QueueWait();
  for (std::size_t i = n - third; i < n; ++i) last += jobs[i].QueueWait();
  first /= static_cast<double>(third);
  last /= static_cast<double>(third);
  return (last + tau_sec) / (first + tau_sec);
}

void PrintSummaryRow(std::ostream& os, const WorkloadMetrics& m) {
  os << "jobs=" << m.jobs.size() << " makespan=" << m.makespan_sec
     << "s p50=" << m.LatencyPercentile(0.50)
     << "s p95=" << m.LatencyPercentile(0.95)
     << "s p99=" << m.LatencyPercentile(0.99)
     << "s wait=" << m.MeanQueueWait() << "s cpu=" << m.cpu_utilization
     << " gpu=" << m.gpu_utilization << " bounces=" << m.gpu_bounces;
  if (m.nodes_crashed > 0 || m.TotalTaskFailures() > 0 ||
      m.TotalSpeculativeLaunched() > 0) {
    os << " crashes=" << m.nodes_crashed << " lost=" << m.nodes_lost
       << " retries=" << m.TotalTaskRetries()
       << " reexec=" << m.TotalMapsReexecuted()
       << " spec=" << m.TotalSpeculativeLaunched() << "/"
       << m.TotalSpeculativeWins() << " avail=" << m.availability;
  }
  os << "\n";
}

}  // namespace hd::multijob
