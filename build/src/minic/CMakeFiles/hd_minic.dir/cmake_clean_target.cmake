file(REMOVE_RECURSE
  "libhd_minic.a"
)
