#include "minic/interp.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hd::minic {

std::string MemObject::ReadCString(std::int64_t idx) const {
  HD_CHECK_MSG(elem_ == Scalar::kChar && !is_ptr_cell_,
               "ReadCString on non-char object '" << name_ << "'");
  std::string out;
  for (std::int64_t i = idx;; ++i) {
    CheckIndex(i);
    const char c = static_cast<char>(i_[i]);
    if (c == '\0') break;
    out += c;
  }
  return out;
}

void MemObject::WriteCString(std::int64_t idx, std::string_view s) {
  HD_CHECK_MSG(elem_ == Scalar::kChar && !is_ptr_cell_,
               "WriteCString on non-char object '" << name_ << "'");
  CheckIndex(idx);
  CheckIndex(idx + static_cast<std::int64_t>(s.size()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    i_[idx + static_cast<std::int64_t>(i)] = static_cast<signed char>(s[i]);
  }
  i_[idx + static_cast<std::int64_t>(s.size())] = 0;
}

Interp::Interp(const TranslationUnit& unit, IoEnv* io, ExecHooks* hooks,
               Options opts)
    : unit_(unit), io_(io), hooks_(hooks), opts_(opts) {
  HD_CHECK(io_ != nullptr);
  HD_CHECK(hooks_ != nullptr);
  frames_.emplace_back();
  frames_.back().scopes.emplace_back();
  RegisterDefaultBuiltins(*this);
}

void Interp::OverrideBuiltin(const std::string& name, BuiltinFn fn) {
  builtins_[name] = std::move(fn);
}

void Interp::Fail(int line, const std::string& msg) const {
  std::ostringstream os;
  os << "runtime error at line " << line << ": " << msg;
  throw InterpError(os.str());
}

void Interp::Step(int line) {
  if (++steps_ > opts_.max_steps) {
    Fail(line, "step limit exceeded (possible infinite loop)");
  }
}

Interp::Binding* Interp::FindBinding(const std::string& name) {
  auto& scopes = frames_.back().scopes;
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    auto f = it->find(name);
    if (f != it->end()) return &f->second;
  }
  return nullptr;
}

const Interp::Binding* Interp::FindBinding(const std::string& name) const {
  return const_cast<Interp*>(this)->FindBinding(name);
}

void Interp::PushScope() { frames_.back().scopes.emplace_back(); }

void Interp::PopScope() {
  HD_CHECK(frames_.back().scopes.size() > 1);
  frames_.back().scopes.pop_back();
}

void Interp::Bind(const std::string& name, MemObject* obj, Type type) {
  frames_.back().scopes.back()[name] = Binding{obj, type};
}

MemObject* Interp::Lookup(const std::string& name) const {
  const Binding* b = FindBinding(name);
  return b ? b->obj : nullptr;
}

void Interp::ExecRegion(const Stmt& stmt) {
  Flow flow = ExecStmt(stmt);
  if (flow == Flow::kBreak || flow == Flow::kContinue) {
    Fail(stmt.line, "control flow escaped the mapreduce region");
  }
}

bool Interp::RunMainUntilRegion(const Stmt& region) {
  const FunctionDef* fn = unit_.FindFunction("main");
  if (fn == nullptr) throw InterpError("no main() function");
  frames_.emplace_back();
  frames_.back().scopes.emplace_back();
  stop_at_ = &region;
  reached_stop_ = false;
  ExecStmt(*fn->body);
  stop_at_ = nullptr;
  if (!reached_stop_) {
    frames_.pop_back();
    return false;
  }
  // Frame intentionally left alive: the caller reads variables via Lookup().
  return true;
}

std::int64_t Interp::RunMain() {
  if (unit_.FindFunction("main") == nullptr) {
    throw InterpError("no main() function");
  }
  Value v = CallUserFunction("main", {});
  return v.AsInt();
}

Value Interp::CallUserFunction(const std::string& name,
                               std::vector<Value> args) {
  const FunctionDef* fn = unit_.FindFunction(name);
  if (fn == nullptr) throw InterpError("unknown function '" + name + "'");
  if (args.size() != fn->params.size()) {
    throw InterpError("wrong argument count for '" + name + "'");
  }
  if (frames_.size() > 64) throw InterpError("call stack too deep");
  hooks_->OnOp(OpClass::kCall);
  frames_.emplace_back();
  frames_.back().scopes.emplace_back();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Param& p = fn->params[i];
    if (p.type.is_pointer) {
      MemObject* cell = memory_.AllocPtrCell(p.name, 1, opts_.default_space);
      Ptr pv = args[i].kind == Value::Kind::kPtr ? args[i].p : Ptr{};
      if (args[i].kind == Value::Kind::kInt && args[i].i != 0) {
        Fail(fn->line, "non-null integer passed as pointer parameter");
      }
      cell->StorePtr(0, pv);
      Bind(p.name, cell, p.type);
    } else {
      MemObject* cell =
          memory_.Alloc(p.name, p.type.scalar, 1, opts_.default_space);
      if (p.type.IsFloating()) {
        cell->StoreFloat(0, args[i].AsFloat());
      } else {
        cell->StoreInt(0, args[i].AsInt());
      }
      Bind(p.name, cell, p.type);
    }
  }
  return_value_ = Value::Int(0);
  Flow flow = ExecStmt(*fn->body);
  if (flow == Flow::kBreak || flow == Flow::kContinue) {
    Fail(fn->line, "break/continue escaped function body");
  }
  Value result = return_value_;
  frames_.pop_back();
  return result;
}

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

Interp::Flow Interp::ExecStmt(const Stmt& s) {
  if (stop_at_ == &s) {
    // Region breakpoint (RunMainUntilRegion): unwind as if returning.
    reached_stop_ = true;
    return_value_ = Value::Int(0);
    return Flow::kReturn;
  }
  Step(s.line);
  switch (s.kind) {
    case StmtKind::kExpr:
      EvalExpr(*s.expr);
      return Flow::kNormal;
    case StmtKind::kDecl:
      ExecDecl(s);
      return Flow::kNormal;
    case StmtKind::kBlock: {
      PushScope();
      Flow flow = Flow::kNormal;
      for (const auto& sub : s.stmts) {
        flow = ExecStmt(*sub);
        if (flow != Flow::kNormal) break;
      }
      // When unwinding towards a region breakpoint, keep the scopes alive:
      // the embedder reads the captured variables afterwards.
      if (stop_at_ == nullptr || !reached_stop_) PopScope();
      return flow;
    }
    case StmtKind::kIf: {
      hooks_->OnOp(OpClass::kBranch);
      if (EvalExpr(*s.expr).IsTruthy()) return ExecStmt(*s.then_stmt);
      if (s.else_stmt) return ExecStmt(*s.else_stmt);
      return Flow::kNormal;
    }
    case StmtKind::kWhile: {
      for (;;) {
        Step(s.line);
        hooks_->OnOp(OpClass::kBranch);
        if (!EvalExpr(*s.expr).IsTruthy()) return Flow::kNormal;
        Flow flow = ExecStmt(*s.body);
        if (flow == Flow::kBreak) return Flow::kNormal;
        if (flow == Flow::kReturn) return flow;
      }
    }
    case StmtKind::kDoWhile: {
      for (;;) {
        Step(s.line);
        Flow flow = ExecStmt(*s.body);
        if (flow == Flow::kBreak) return Flow::kNormal;
        if (flow == Flow::kReturn) return flow;
        hooks_->OnOp(OpClass::kBranch);
        if (!EvalExpr(*s.expr).IsTruthy()) return Flow::kNormal;
      }
    }
    case StmtKind::kFor: {
      PushScope();
      if (s.init_stmt) ExecStmt(*s.init_stmt);
      Flow result = Flow::kNormal;
      for (;;) {
        Step(s.line);
        hooks_->OnOp(OpClass::kBranch);
        if (s.expr && !EvalExpr(*s.expr).IsTruthy()) break;
        Flow flow = ExecStmt(*s.body);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) {
          result = flow;
          break;
        }
        if (s.step) EvalExpr(*s.step);
      }
      if (stop_at_ == nullptr || !reached_stop_) PopScope();
      return result;
    }
    case StmtKind::kReturn:
      return_value_ = s.expr ? EvalExpr(*s.expr) : Value::Int(0);
      return Flow::kReturn;
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
  }
  Fail(s.line, "unhandled statement kind");
}

void Interp::ExecDecl(const Stmt& s) {
  for (const auto& d : s.decls) {
    MemObject* obj;
    if (d.type.is_pointer) {
      obj = memory_.AllocPtrCell(d.name, 1, opts_.default_space);
    } else if (d.type.is_array) {
      obj = memory_.Alloc(d.name, d.type.scalar, d.type.array_size,
                          opts_.default_space);
    } else {
      obj = memory_.Alloc(d.name, d.type.scalar, 1, opts_.default_space);
    }
    Bind(d.name, obj, d.type);
    if (d.init) {
      Value v = EvalExpr(*d.init);
      if (d.type.is_pointer) {
        if (v.kind == Value::Kind::kPtr) {
          obj->StorePtr(0, v.p);
        } else if (v.AsInt() == 0) {
          obj->StorePtr(0, Ptr{});
        } else {
          Fail(s.line, "initialising pointer from non-pointer");
        }
      } else if (d.type.is_array) {
        // Array initialisation from a string literal.
        if (d.init->kind == ExprKind::kStringLit &&
            d.type.scalar == Scalar::kChar) {
          obj->WriteCString(0, d.init->string_value);
        } else {
          Fail(s.line, "unsupported array initialiser");
        }
      } else if (d.type.IsFloating()) {
        obj->StoreFloat(0, v.AsFloat());
      } else {
        obj->StoreInt(0, v.AsInt());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Expressions.
// ---------------------------------------------------------------------------

MemObject* Interp::StringLiteralObject(const Expr& e) {
  auto it = string_literals_.find(&e);
  if (it != string_literals_.end()) return it->second;
  MemObject* obj = memory_.Alloc(
      "\"" + e.string_value + "\"", Scalar::kChar,
      static_cast<std::int64_t>(e.string_value.size()) + 1, opts_.default_space);
  obj->WriteCString(0, e.string_value);
  string_literals_.emplace(&e, obj);
  return obj;
}

Value Interp::LoadFrom(const Ptr& p, int line, bool charge) {
  if (p.IsNull()) Fail(line, "null pointer dereference");
  if (charge) hooks_->OnMemAccess(*p.obj, p.index, 1, /*is_write=*/false);
  if (p.obj->is_ptr_cell()) return Value::Pointer(p.obj->LoadPtr(p.index));
  if (p.obj->IsFloatElem()) return Value::Float(p.obj->LoadFloat(p.index));
  return Value::Int(p.obj->LoadInt(p.index));
}

void Interp::StoreTo(const Ptr& p, const Value& v, int line, bool charge) {
  if (p.IsNull()) Fail(line, "null pointer store");
  if (charge) hooks_->OnMemAccess(*p.obj, p.index, 1, /*is_write=*/true);
  if (p.obj->is_ptr_cell()) {
    if (v.kind == Value::Kind::kPtr) {
      p.obj->StorePtr(p.index, v.p);
    } else if (v.AsInt() == 0) {
      p.obj->StorePtr(p.index, Ptr{});
    } else {
      Fail(line, "storing non-pointer into pointer variable");
    }
    return;
  }
  if (p.obj->IsFloatElem()) {
    p.obj->StoreFloat(p.index, v.AsFloat());
  } else {
    p.obj->StoreInt(p.index, v.AsInt());
  }
}

Ptr Interp::EvalLValue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kVarRef: {
      Binding* b = FindBinding(e.string_value);
      if (b == nullptr) Fail(e.line, "unknown variable '" + e.string_value + "'");
      return Ptr{b->obj, 0};
    }
    case ExprKind::kIndex: {
      Value base = EvalExpr(*e.a);
      if (base.kind != Value::Kind::kPtr) {
        Fail(e.line, "indexing a non-pointer");
      }
      std::int64_t idx = EvalExpr(*e.b).AsInt();
      hooks_->OnOp(OpClass::kIntAlu);
      return Ptr{base.p.obj, base.p.index + idx};
    }
    case ExprKind::kUnary:
      if (e.un_op == UnOp::kDeref) {
        Value v = EvalExpr(*e.a);
        if (v.kind != Value::Kind::kPtr) Fail(e.line, "dereferencing non-pointer");
        return v.p;
      }
      break;
    default:
      break;
  }
  Fail(e.line, "expression is not assignable");
}

Value Interp::EvalExpr(const Expr& e) {
  Step(e.line);
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Value::Int(e.int_value);
    case ExprKind::kFloatLit:
      return Value::Float(e.float_value);
    case ExprKind::kStringLit:
      return Value::Pointer(Ptr{StringLiteralObject(e), 0});
    case ExprKind::kVarRef: {
      // Builtin constants usable without declaration.
      if (e.string_value == "NULL") return Value::Null();
      if (e.string_value == "EOF") return Value::Int(-1);
      if (e.string_value == "stdin" || e.string_value == "stdout" ||
          e.string_value == "stderr") {
        return Value::Int(0);
      }
      Binding* b = FindBinding(e.string_value);
      if (b == nullptr) Fail(e.line, "unknown variable '" + e.string_value + "'");
      if (b->type.is_array) return Value::Pointer(Ptr{b->obj, 0});
      // Scalar and pointer variables live in registers: no memory charge.
      return LoadFrom(Ptr{b->obj, 0}, e.line, /*charge=*/false);
    }
    case ExprKind::kIndex: {
      Ptr p = EvalLValue(e);
      return LoadFrom(p, e.line);
    }
    case ExprKind::kUnary:
      return EvalUnary(e);
    case ExprKind::kBinary:
      return EvalBinary(e);
    case ExprKind::kAssign: {
      Ptr lhs = EvalLValue(*e.a);
      Value rhs = EvalExpr(*e.b);
      // Scalar variables are register-resident; only indexed/deref stores
      // charge memory.
      const bool charge = e.a->kind != ExprKind::kVarRef;
      if (e.assign_op != AssignOp::kAssign) {
        Value cur = LoadFrom(lhs, e.line, charge);
        BinOp op;
        switch (e.assign_op) {
          case AssignOp::kAdd: op = BinOp::kAdd; break;
          case AssignOp::kSub: op = BinOp::kSub; break;
          case AssignOp::kMul: op = BinOp::kMul; break;
          case AssignOp::kDiv: op = BinOp::kDiv; break;
          case AssignOp::kMod: op = BinOp::kMod; break;
          default: op = BinOp::kAdd; break;
        }
        rhs = ApplyBin(op, cur, rhs, e.line);
      }
      StoreTo(lhs, rhs, e.line, charge);
      // Result must reflect the (possibly narrowed) stored value.
      return LoadFrom(lhs, e.line, /*charge=*/false);
    }
    case ExprKind::kCall:
      return EvalCall(e);
    case ExprKind::kCast: {
      Value v = EvalExpr(*e.a);
      if (e.cast_type.is_pointer) {
        if (v.kind == Value::Kind::kPtr) return v;  // reinterpret: keep object
        if (v.AsInt() == 0) return Value::Null();
        Fail(e.line, "casting non-pointer to pointer");
      }
      if (e.cast_type.IsFloating()) {
        double d = v.AsFloat();
        if (e.cast_type.scalar == Scalar::kFloat) {
          d = static_cast<float>(d);
        }
        return Value::Float(d);
      }
      std::int64_t i = v.AsInt();
      if (e.cast_type.scalar == Scalar::kChar) i = static_cast<signed char>(i);
      return Value::Int(i);
    }
    case ExprKind::kTernary: {
      hooks_->OnOp(OpClass::kBranch);
      return EvalExpr(*e.a).IsTruthy() ? EvalExpr(*e.b) : EvalExpr(*e.c);
    }
    case ExprKind::kSizeof: {
      if (e.a) {
        // sizeof expr: only variable references are supported.
        if (e.a->kind == ExprKind::kVarRef) {
          Binding* b = FindBinding(e.a->string_value);
          if (b == nullptr) Fail(e.line, "sizeof of unknown variable");
          if (b->type.is_array) {
            return Value::Int(b->type.array_size * ScalarSize(b->type.scalar));
          }
          if (b->type.is_pointer) return Value::Int(8);
          return Value::Int(ScalarSize(b->type.scalar));
        }
        Fail(e.line, "unsupported sizeof operand");
      }
      if (e.cast_type.is_pointer) return Value::Int(8);
      return Value::Int(ScalarSize(e.cast_type.scalar));
    }
  }
  Fail(e.line, "unhandled expression kind");
}

Value Interp::EvalUnary(const Expr& e) {
  switch (e.un_op) {
    case UnOp::kNeg: {
      Value v = EvalExpr(*e.a);
      hooks_->OnOp(v.kind == Value::Kind::kFloat ? OpClass::kFloatAlu
                                                 : OpClass::kIntAlu);
      if (v.kind == Value::Kind::kFloat) return Value::Float(-v.f);
      return Value::Int(-v.AsInt());
    }
    case UnOp::kNot: {
      Value v = EvalExpr(*e.a);
      hooks_->OnOp(OpClass::kIntAlu);
      return Value::Int(v.IsTruthy() ? 0 : 1);
    }
    case UnOp::kBitNot: {
      Value v = EvalExpr(*e.a);
      hooks_->OnOp(OpClass::kIntAlu);
      return Value::Int(~v.AsInt());
    }
    case UnOp::kDeref: {
      Value v = EvalExpr(*e.a);
      if (v.kind != Value::Kind::kPtr) Fail(e.line, "dereferencing non-pointer");
      return LoadFrom(v.p, e.line);
    }
    case UnOp::kAddrOf: {
      Ptr p = EvalLValue(*e.a);
      return Value::Pointer(p);
    }
    case UnOp::kPreInc:
    case UnOp::kPreDec:
    case UnOp::kPostInc:
    case UnOp::kPostDec: {
      Ptr p = EvalLValue(*e.a);
      const bool charge = e.a->kind != ExprKind::kVarRef;
      Value old = LoadFrom(p, e.line, charge);
      const std::int64_t delta =
          (e.un_op == UnOp::kPreInc || e.un_op == UnOp::kPostInc) ? 1 : -1;
      hooks_->OnOp(old.kind == Value::Kind::kFloat ? OpClass::kFloatAlu
                                                   : OpClass::kIntAlu);
      Value next;
      if (old.kind == Value::Kind::kFloat) {
        next = Value::Float(old.f + delta);
      } else if (old.kind == Value::Kind::kPtr) {
        next = Value::Pointer(Ptr{old.p.obj, old.p.index + delta});
      } else {
        next = Value::Int(old.i + delta);
      }
      StoreTo(p, next, e.line, charge);
      const bool pre =
          e.un_op == UnOp::kPreInc || e.un_op == UnOp::kPreDec;
      return pre ? next : old;
    }
  }
  Fail(e.line, "unhandled unary operator");
}

Value Interp::ApplyBin(BinOp op, const Value& a, const Value& b, int line) {
  // Pointer arithmetic and comparisons.
  if (a.kind == Value::Kind::kPtr || b.kind == Value::Kind::kPtr) {
    hooks_->OnOp(OpClass::kIntAlu);
    auto as_ptr = [](const Value& v) { return v.p; };
    switch (op) {
      case BinOp::kAdd: {
        if (a.kind == Value::Kind::kPtr) {
          return Value::Pointer(Ptr{a.p.obj, a.p.index + b.AsInt()});
        }
        return Value::Pointer(Ptr{b.p.obj, b.p.index + a.AsInt()});
      }
      case BinOp::kSub: {
        if (a.kind == Value::Kind::kPtr && b.kind == Value::Kind::kPtr) {
          HD_CHECK_MSG(a.p.obj == b.p.obj, "pointer difference across objects");
          return Value::Int(a.p.index - b.p.index);
        }
        if (a.kind == Value::Kind::kPtr) {
          return Value::Pointer(Ptr{a.p.obj, a.p.index - b.AsInt()});
        }
        break;
      }
      case BinOp::kEq:
      case BinOp::kNe: {
        bool eq;
        if (a.kind == Value::Kind::kPtr && b.kind == Value::Kind::kPtr) {
          eq = a.p.obj == b.p.obj && a.p.index == b.p.index;
        } else {
          const Value& pv = a.kind == Value::Kind::kPtr ? a : b;
          const Value& iv = a.kind == Value::Kind::kPtr ? b : a;
          if (iv.AsInt() != 0) Fail(line, "comparing pointer to integer");
          eq = as_ptr(pv).IsNull();
        }
        return Value::Int((op == BinOp::kEq) == eq ? 1 : 0);
      }
      case BinOp::kLt: case BinOp::kLe: case BinOp::kGt: case BinOp::kGe: {
        if (a.kind == Value::Kind::kPtr && b.kind == Value::Kind::kPtr &&
            a.p.obj == b.p.obj) {
          std::int64_t x = a.p.index, y = b.p.index;
          bool r = op == BinOp::kLt   ? x < y
                   : op == BinOp::kLe ? x <= y
                   : op == BinOp::kGt ? x > y
                                      : x >= y;
          return Value::Int(r ? 1 : 0);
        }
        break;
      }
      default:
        break;
    }
    Fail(line, "unsupported pointer operation");
  }

  const bool flt = a.kind == Value::Kind::kFloat || b.kind == Value::Kind::kFloat;
  if (flt) {
    const double x = a.AsFloat(), y = b.AsFloat();
    switch (op) {
      case BinOp::kAdd: hooks_->OnOp(OpClass::kFloatAlu); return Value::Float(x + y);
      case BinOp::kSub: hooks_->OnOp(OpClass::kFloatAlu); return Value::Float(x - y);
      case BinOp::kMul: hooks_->OnOp(OpClass::kFloatAlu); return Value::Float(x * y);
      case BinOp::kDiv:
        hooks_->OnOp(OpClass::kFloatDiv);
        if (y == 0.0) Fail(line, "floating divide by zero");
        return Value::Float(x / y);
      case BinOp::kMod: Fail(line, "operator %% on floating operands");
      case BinOp::kLt: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x < y);
      case BinOp::kLe: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x <= y);
      case BinOp::kGt: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x > y);
      case BinOp::kGe: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x >= y);
      case BinOp::kEq: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x == y);
      case BinOp::kNe: hooks_->OnOp(OpClass::kFloatAlu); return Value::Int(x != y);
      case BinOp::kAnd: return Value::Int(a.IsTruthy() && b.IsTruthy());
      case BinOp::kOr: return Value::Int(a.IsTruthy() || b.IsTruthy());
      default: Fail(line, "bitwise operator on floating operands");
    }
  }
  const std::int64_t x = a.AsInt(), y = b.AsInt();
  switch (op) {
    case BinOp::kAdd: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x + y);
    case BinOp::kSub: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x - y);
    case BinOp::kMul: hooks_->OnOp(OpClass::kIntMul); return Value::Int(x * y);
    case BinOp::kDiv:
      hooks_->OnOp(OpClass::kIntDiv);
      if (y == 0) Fail(line, "integer divide by zero");
      return Value::Int(x / y);
    case BinOp::kMod:
      hooks_->OnOp(OpClass::kIntDiv);
      if (y == 0) Fail(line, "integer modulo by zero");
      return Value::Int(x % y);
    case BinOp::kLt: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x < y);
    case BinOp::kLe: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x <= y);
    case BinOp::kGt: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x > y);
    case BinOp::kGe: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x >= y);
    case BinOp::kEq: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x == y);
    case BinOp::kNe: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x != y);
    case BinOp::kAnd: return Value::Int(x != 0 && y != 0);
    case BinOp::kOr: return Value::Int(x != 0 || y != 0);
    case BinOp::kBitAnd: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x & y);
    case BinOp::kBitOr: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x | y);
    case BinOp::kBitXor: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x ^ y);
    case BinOp::kShl: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x << y);
    case BinOp::kShr: hooks_->OnOp(OpClass::kIntAlu); return Value::Int(x >> y);
  }
  Fail(line, "unhandled binary operator");
}

Value Interp::EvalBinary(const Expr& e) {
  // Short-circuit evaluation for && and ||.
  if (e.bin_op == BinOp::kAnd) {
    hooks_->OnOp(OpClass::kBranch);
    if (!EvalExpr(*e.a).IsTruthy()) return Value::Int(0);
    return Value::Int(EvalExpr(*e.b).IsTruthy() ? 1 : 0);
  }
  if (e.bin_op == BinOp::kOr) {
    hooks_->OnOp(OpClass::kBranch);
    if (EvalExpr(*e.a).IsTruthy()) return Value::Int(1);
    return Value::Int(EvalExpr(*e.b).IsTruthy() ? 1 : 0);
  }
  Value a = EvalExpr(*e.a);
  Value b = EvalExpr(*e.b);
  return ApplyBin(e.bin_op, a, b, e.line);
}

Value Interp::EvalCall(const Expr& e) {
  const std::string& name = e.string_value;
  // User functions take precedence so benchmarks can define helpers like
  // getWord without clashing with the builtin table.
  if (unit_.FindFunction(name) != nullptr) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(EvalExpr(*a));
    return CallUserFunction(name, std::move(args));
  }
  auto it = builtins_.find(name);
  if (it == builtins_.end()) Fail(e.line, "unknown function '" + name + "'");
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) args.push_back(EvalExpr(*a));
  hooks_->OnOp(OpClass::kCall);
  return it->second(*this, args);
}

// ---------------------------------------------------------------------------
// Builtin support services.
// ---------------------------------------------------------------------------

Ptr Interp::RequirePtr(const Value& v, const char* what) {
  if (v.kind != Value::Kind::kPtr || v.p.IsNull()) {
    throw InterpError(std::string("expected non-null pointer for ") + what);
  }
  return v.p;
}

std::string Interp::ReadString(const Value& v) {
  Ptr p = RequirePtr(v, "string argument");
  std::string s = p.obj->ReadCString(p.index);
  hooks_->OnMemAccess(*p.obj, p.index,
                      static_cast<std::int64_t>(s.size()) + 1,
                      /*is_write=*/false, /*vectorizable=*/true);
  return s;
}

void Interp::WriteString(const Value& v, std::string_view s) {
  Ptr p = RequirePtr(v, "string destination");
  p.obj->WriteCString(p.index, s);
  hooks_->OnMemAccess(*p.obj, p.index, static_cast<std::int64_t>(s.size()) + 1,
                      /*is_write=*/true, /*vectorizable=*/true);
}

void Interp::StoreThroughPtr(const Ptr& p, const Value& v) {
  StoreTo(p, v, 0);
}

std::string Interp::Format(const std::string& fmt,
                           const std::vector<Value>& args,
                           std::size_t first_arg) {
  std::string out;
  std::size_t ai = first_arg;
  auto next_arg = [&]() -> const Value& {
    if (ai >= args.size()) {
      throw InterpError("printf: too few arguments for format '" + fmt + "'");
    }
    return args[ai++];
  };
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out += fmt[i];
      continue;
    }
    ++i;
    if (i >= fmt.size()) throw InterpError("printf: trailing %");
    if (fmt[i] == '%') {
      out += '%';
      continue;
    }
    // Collect the spec: flags, width, precision, length, conversion.
    std::string spec = "%";
    while (i < fmt.size() &&
           (std::isdigit(static_cast<unsigned char>(fmt[i])) ||
            fmt[i] == '.' || fmt[i] == '-' || fmt[i] == '+' || fmt[i] == '0' ||
            fmt[i] == ' ')) {
      spec += fmt[i++];
    }
    // Length modifiers are folded into our widened representation.
    while (i < fmt.size() && (fmt[i] == 'l' || fmt[i] == 'h' || fmt[i] == 'z')) {
      ++i;
    }
    if (i >= fmt.size()) throw InterpError("printf: malformed format");
    const char conv = fmt[i];
    char buf[256];
    switch (conv) {
      case 'd': case 'i': {
        spec += "lld";
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<long long>(next_arg().AsInt()));
        out += buf;
        break;
      }
      case 'u': case 'x': case 'X': {
        spec += "ll";
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<unsigned long long>(next_arg().AsInt()));
        out += buf;
        break;
      }
      case 'f': case 'e': case 'g': case 'E': case 'G': {
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(), next_arg().AsFloat());
        out += buf;
        break;
      }
      case 'c': {
        spec += 'c';
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<int>(next_arg().AsInt()));
        out += buf;
        break;
      }
      case 's': {
        std::string s = ReadString(next_arg());
        if (spec == "%") {
          out += s;
        } else {
          spec += 's';
          std::vector<char> big(s.size() + 64);
          std::snprintf(big.data(), big.size(), spec.c_str(), s.c_str());
          out += big.data();
        }
        break;
      }
      default:
        throw InterpError(std::string("printf: unsupported conversion %") +
                          conv);
    }
  }
  // Formatting cost: proportional to output length.
  hooks_->OnOp(OpClass::kIntAlu, static_cast<std::int64_t>(out.size()));
  return out;
}

}  // namespace hd::minic
