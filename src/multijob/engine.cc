#include "multijob/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace hd::multijob {

using hadoop::JobState;

MultiJobEngine::MultiJobEngine(hadoop::ClusterConfig cfg,
                               std::unique_ptr<InterJobScheduler> scheduler)
    : hadoop::ClusterCore(std::move(cfg)), scheduler_(std::move(scheduler)) {
  HD_CHECK(scheduler_ != nullptr);
  trace_job_ids_ = true;
}

int MultiJobEngine::Submit(double when, JobSpec spec) {
  HD_CHECK_MSG(when >= events_.now(), "submission scheduled in the past");
  const int id = submitted_++;
  auto job = std::make_unique<JobState>();
  job->id = id;
  job->label = spec.label;
  job->source = spec.source;
  job->policy = spec.policy;
  job->fs = spec.fs;
  job->input_path = std::move(spec.input_path);
  job->pool = spec.pool;
  job->deadline_sec = spec.deadline_sec;
  job->submit_time = when;
  InitJob(*job);
  JobState* ptr = job.get();
  jobs_.push_back(std::move(job));
  events_.At(when, &MultiJobEngine::ActivateEvent, this,
             des::Payload{des::PackPtr(ptr), 0});
  return id;
}

void MultiJobEngine::ActivateEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->Activate(
      des::UnpackPtr<JobState>(p.u0));
}

void MultiJobEngine::PulseTickEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->PulseTick(static_cast<int>(p.u0), p.u1);
}

void MultiJobEngine::BatchTickEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->BatchTick(p.u0);
}

void MultiJobEngine::CompleteJobEvent(void* ctx, const des::Payload& p) {
  static_cast<MultiJobEngine*>(ctx)->CompleteJob(
      *des::UnpackPtr<JobState>(p.u0));
}

void MultiJobEngine::Activate(JobState* job) {
  active_.push_back(job);
  if (++active_jobs_ == 1) StartPulses();
}

void MultiJobEngine::StartPulses() {
  const std::uint64_t gen = ++pulse_gen_;
  if (cfg_.batch_heartbeats) {
    events_.After(cfg_.heartbeat_sec, &MultiJobEngine::BatchTickEvent, this,
                  des::Payload{gen, 0});
    return;
  }
  for (int n = 0; n < cfg_.num_slaves; ++n) {
    const double offset = cfg_.heartbeat_sec * (n + 1) / (cfg_.num_slaves + 1);
    events_.After(offset, &MultiJobEngine::PulseTickEvent, this,
                  des::Payload{static_cast<std::uint64_t>(n), gen});
  }
}

void MultiJobEngine::PulseTick(int node_id, std::uint64_t gen) {
  if (pulse_gen_ != gen) return;  // cluster drained: retire
  // A dead tracker sends nothing; the chain resumes at recovery.
  if (!health_[static_cast<std::size_t>(node_id)].alive) return;
  ClusterHeartbeat(node_id);
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), gen});
}

void MultiJobEngine::BatchTick(std::uint64_t gen) {
  if (pulse_gen_ != gen) return;  // cluster drained: retire
  for (int n = 0; n < cfg_.num_slaves; ++n) {
    if (pulse_gen_ != gen) break;  // drained mid-tick
    if (!health_[static_cast<std::size_t>(n)].alive) continue;
    ClusterHeartbeat(n);
  }
  if (pulse_gen_ != gen) return;
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::BatchTickEvent, this,
                des::Payload{gen, 0});
}

void MultiJobEngine::OnNodeRecovered(int node_id) {
  if (active_jobs_ == 0) return;  // next Activate() restarts every pulse
  // In batch mode the cluster-wide chain never stopped; the recovered
  // node is picked up on its next tick.
  if (cfg_.batch_heartbeats) return;
  events_.After(cfg_.heartbeat_sec, &MultiJobEngine::PulseTickEvent, this,
                des::Payload{static_cast<std::uint64_t>(node_id), pulse_gen_});
}

void MultiJobEngine::VisitActiveJobs(
    const std::function<void(hadoop::JobState&)>& fn) {
  for (JobState* job : active_) fn(*job);
}

void MultiJobEngine::ClusterHeartbeat(int node_id) {
  if (!HeartbeatDelivered(node_id)) return;
  EmitHeartbeat(node_id);
  // A blacklisted tracker keeps heartbeating but gets no work.
  if (!NodeSchedulable(node_id)) return;
  // Per-job heartbeat allowances and numMapsRemainingPerNode estimates,
  // computed once at response-construction time exactly as the single-job
  // JobTracker does (Algorithm 2 lines 8-9).
  const std::size_t n_active = active_.size();
  std::vector<int> cap(n_active);
  std::vector<int> assigned(n_active, 0);
  std::vector<double> rem_per_node(n_active);
  for (std::size_t i = 0; i < n_active; ++i) {
    cap[i] = HeartbeatCap(*active_[i], node_id);
    rem_per_node[i] =
        static_cast<double>(active_[i]->pending.size()) / cfg_.num_slaves;
  }
  const std::vector<const JobState*> active_view(active_.begin(),
                                                 active_.end());
  // Fill the response slot-by-slot so Fair/Capacity shares interleave jobs
  // within a single heartbeat, not only across heartbeats.
  for (;;) {
    std::vector<const JobState*> runnable;
    std::vector<std::size_t> index;
    for (std::size_t i = 0; i < n_active; ++i) {
      const JobState& job = *active_[i];
      if (!job.pending.empty() && assigned[i] < cap[i] &&
          NodeHasUsableSlot(job, node_id)) {
        runnable.push_back(&job);
        index.push_back(i);
      }
    }
    if (runnable.empty()) break;
    const std::size_t pick = scheduler_->PickJob(runnable, active_view);
    HD_CHECK_MSG(pick < runnable.size(), "scheduler picked out of range");
    const std::size_t i = index[pick];
    JobState& job = *active_[i];
    const std::vector<int> task = PickTasks(job, node_id, 1);
    HD_CHECK(!task.empty());
    // A bounce (forced-GPU with the GPU busy) still consumes the job's
    // allowance, as it does in the single-job response.
    ++assigned[i];
    PlaceTask(job, node_id, task[0], rem_per_node[i]);
  }
  // With every pending queue this node can serve drained, idle slots may
  // hunt stragglers across the active jobs.
  for (std::size_t i = 0; i < n_active; ++i) {
    MaybeSpeculate(*active_[i], node_id);
  }
}

void MultiJobEngine::OnTaskFinished(JobState&, int node_id) {
  // Out-of-band heartbeat on completion serves *all* jobs: the freed slot
  // may well go to a different job than the one that finished.
  if (!active_.empty()) ClusterHeartbeat(node_id);
}

void MultiJobEngine::OnJobFinished(JobState& job) {
  // The map phase just drained; the modeled shuffle/reduce tail extends to
  // result.makespan_sec. Hold the job active until then so closed-loop
  // feeders and latency metrics see full completions.
  const double delay = job.result.makespan_sec - events_.now();
  HD_CHECK(delay >= 0.0);
  events_.After(delay, &MultiJobEngine::CompleteJobEvent, this,
                des::Payload{des::PackPtr(&job), 0});
}

void MultiJobEngine::CompleteJob(JobState& job) {
  active_.erase(std::find(active_.begin(), active_.end(), &job));
  ++completed_;
  // Infinite deadline (batch) never misses.
  if (job.result.makespan_sec > job.deadline_sec) ++deadline_misses_;
  if (--active_jobs_ == 0) ++pulse_gen_;  // retire pulses lazily

  if (cfg_.sink != nullptr) {
    if (job.first_start_time > job.submit_time) {
      cfg_.sink->Span("multijob", "queue_wait", JobTrack(job),
                      job.submit_time,
                      job.first_start_time - job.submit_time,
                      {trace::Arg::Int("job", job.id),
                       trace::Arg::Int("pool", job.pool)});
    }
    cfg_.sink->Instant("multijob", "job_complete", JobTrack(job),
                       events_.now(),
                       {trace::Arg::Int("job", job.id),
                        trace::Arg::Str("label", job.label)});
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("multijob.jobs_completed").Add(1);
    cfg_.metrics->distribution("multijob.queue_wait_sec")
        .Record(job.first_start_time - job.submit_time);
    cfg_.metrics->distribution("multijob.job_latency_sec")
        .Record(job.result.makespan_sec - job.submit_time);
  }

  JobStats stats;
  stats.job_id = job.id;
  stats.label = job.label;
  stats.pool = job.pool;
  stats.submit_sec = job.submit_time;
  stats.start_sec = job.first_start_time;
  stats.finish_sec = job.result.makespan_sec;
  stats.result = job.result;
  metrics_.jobs.push_back(stats);
  OnJobCompleted(stats);
  if (on_job_done_) on_job_done_(stats);
}

WorkloadMetrics MultiJobEngine::Run() {
  ScheduleFaultPlan();
  if (cfg_.timeseries != nullptr) {
    trace::TimeSeries& ts = *cfg_.timeseries;
    ts.AddGaugeProbe("multijob.active_jobs", [this] {
      return static_cast<double>(active_jobs_);
    });
    ts.AddCumulativeProbe("multijob.jobs_submitted", [this] {
      return static_cast<double>(submitted_);
    });
    ts.AddCumulativeProbe("multijob.jobs_completed", [this] {
      return static_cast<double>(completed_);
    });
    ts.AddCumulativeProbe("multijob.deadline_misses", [this] {
      return static_cast<double>(deadline_misses_);
    });
    // Default SLO rule: jobs with finite deadlines may miss 5% of
    // completions before the budget burns. Deadline-free workloads never
    // fire it (0 misses over any window evaluates to zero burn).
    trace::SloRule rule;
    rule.name = "multijob.deadline_miss_burn";
    rule.kind = trace::SloRule::Kind::kBurnRate;
    rule.bad_series = "multijob.deadline_misses";
    rule.total_series = "multijob.jobs_completed";
    rule.budget = 0.05;
    rule.track = trace::Track{cfg_.trace_pid_base, 0};
    ts.slo().AddRule(rule);
  }
  StartTelemetry();
  events_.Run();
  HD_CHECK_MSG(completed_ == submitted_,
               "event queue drained with jobs still in flight");
  std::sort(metrics_.jobs.begin(), metrics_.jobs.end(),
            [](const JobStats& a, const JobStats& b) {
              return a.job_id < b.job_id;
            });
  for (const JobStats& j : metrics_.jobs) {
    metrics_.makespan_sec = std::max(metrics_.makespan_sec, j.finish_sec);
  }
  const double horizon = metrics_.makespan_sec;
  metrics_.cpu_utilization = stats::Utilization(
      cpu_busy_sec_,
      static_cast<double>(cfg_.num_slaves) * cfg_.map_slots_per_node,
      horizon);
  metrics_.gpu_utilization = stats::Utilization(
      gpu_busy_sec_,
      static_cast<double>(cfg_.num_slaves) * cfg_.gpus_per_node, horizon);
  metrics_.gpu_bounces = gpu_bounces_;
  metrics_.nodes_crashed = nodes_crashed_;
  metrics_.nodes_recovered = nodes_recovered_;
  metrics_.nodes_lost = nodes_lost_;
  metrics_.nodes_blacklisted = nodes_blacklisted_;
  metrics_.heartbeats_dropped = heartbeats_dropped_;
  if (horizon > 0.0 && cfg_.num_slaves > 0) {
    metrics_.availability =
        1.0 - NodeDownSeconds(horizon) /
                  (static_cast<double>(cfg_.num_slaves) * horizon);
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->gauge("multijob.makespan_sec").Set(metrics_.makespan_sec);
    cfg_.metrics->gauge("multijob.cpu_utilization")
        .Set(metrics_.cpu_utilization);
    cfg_.metrics->gauge("multijob.gpu_utilization")
        .Set(metrics_.gpu_utilization);
    cfg_.metrics->counter("multijob.gpu_bounces").Set(gpu_bounces_);
    cfg_.metrics->counter("multijob.jobs_submitted").Set(submitted_);
    if (cfg_.faults != nullptr) {
      cfg_.metrics->gauge("multijob.availability").Set(metrics_.availability);
      cfg_.metrics->counter("multijob.task_retries")
          .Set(metrics_.TotalTaskRetries());
      cfg_.metrics->counter("multijob.maps_reexecuted")
          .Set(metrics_.TotalMapsReexecuted());
    }
  }
  return metrics_;
}

}  // namespace hd::multijob
