# Empty compiler generated dependencies file for hd_translator.
# This may be replaced when dependencies are built.
