file(REMOVE_RECURSE
  "CMakeFiles/movie_analytics.dir/movie_analytics.cpp.o"
  "CMakeFiles/movie_analytics.dir/movie_analytics.cpp.o.d"
  "movie_analytics"
  "movie_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
