# Empty dependencies file for fig5_task_speedup.
# This may be replaced when dependencies are built.
