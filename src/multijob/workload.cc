#include "multijob/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/benchmark.h"
#include "common/check.h"
#include "multijob/engine.h"

namespace hd::multijob {

std::vector<AppTemplate> Table2Mix(int maps_per_job, int num_reducers) {
  HD_CHECK(maps_per_job >= 4);
  HD_CHECK(num_reducers >= 1);
  // Per-app calibration: CPU seconds for one 256 MB split (IO-intensive
  // apps stream-bound, compute-intensive slower per byte) and the
  // optimized single-task GPU speedups measured by bench/fig5_task_speedup
  // (EXPERIMENTS.md "Fig. 5" table).
  struct Calib {
    const char* id;
    double cpu_sec;
    double speedup;
  };
  static constexpr Calib kCalib[] = {
      {"GR", 14.0, 3.77}, {"HS", 15.0, 3.79}, {"WC", 22.0, 4.22},
      {"HR", 18.0, 8.69}, {"LR", 20.0, 5.08}, {"KM", 26.0, 5.06},
      {"CL", 24.0, 7.77}, {"BS", 30.0, 37.5},
  };
  // Per-app job sizes follow Table 2's Cluster1 map counts, rescaled so
  // the mix average is maps_per_job.
  double mean_maps = 0.0;
  for (const Calib& c : kCalib) {
    mean_maps += apps::GetBenchmark(c.id).cluster1.map_tasks;
  }
  mean_maps /= static_cast<double>(std::size(kCalib));
  std::vector<AppTemplate> mix;
  for (const Calib& c : kCalib) {
    const apps::Benchmark& b = apps::GetBenchmark(c.id);
    AppTemplate t;
    t.id = b.id;
    t.weight = 1.0;
    t.pool = b.io_intensive ? 0 : 1;
    const double scaled = maps_per_job * b.cluster1.map_tasks / mean_maps;
    t.params.num_maps = std::clamp(static_cast<int>(std::lround(scaled)), 4,
                                   4 * maps_per_job);
    t.params.num_reducers = b.map_only ? 0 : num_reducers;
    t.params.cpu_task_sec = c.cpu_sec;
    t.params.gpu_task_sec = c.cpu_sec / c.speedup;
    t.params.variation = 0.10;
    t.params.map_output_bytes = 16 << 20;
    t.params.reduce_sec = 4.0;
    mix.push_back(t);
  }
  return mix;
}

WorkloadMetrics RunWorkload(const hadoop::ClusterConfig& cluster,
                            SchedulerKind scheduler,
                            const std::vector<AppTemplate>& mix,
                            const WorkloadSpec& spec) {
  HD_CHECK(!mix.empty());
  HD_CHECK(spec.num_jobs > 0);
  if (spec.mode == WorkloadSpec::Mode::kOpenPoisson) {
    HD_CHECK(spec.arrival_rate_per_sec > 0.0);
  } else {
    HD_CHECK(spec.concurrency > 0);
  }
  std::vector<double> cum_weight;
  double total_weight = 0.0;
  for (const AppTemplate& t : mix) {
    HD_CHECK(t.weight > 0.0);
    total_weight += t.weight;
    cum_weight.push_back(total_weight);
  }

  // Pre-sample the whole trace with a fixed draw order (app, then gap), so
  // open- and closed-loop runs of one seed share the same job sequence.
  Prng prng(SplitMix64(spec.seed ^ 0x6d756c74696a6f62ULL));  // "multijob"
  struct Draw {
    std::size_t app = 0;
    double gap = 0.0;
  };
  std::vector<Draw> trace(static_cast<std::size_t>(spec.num_jobs));
  for (Draw& d : trace) {
    const double u = prng.NextDouble() * total_weight;
    d.app = static_cast<std::size_t>(
        std::lower_bound(cum_weight.begin(), cum_weight.end(), u) -
        cum_weight.begin());
    if (d.app >= mix.size()) d.app = mix.size() - 1;
    // Exponential interarrival gap (ignored by the closed loop).
    d.gap = -std::log(1.0 - prng.NextDouble()) / spec.arrival_rate_per_sec;
  }

  std::vector<std::unique_ptr<hadoop::CalibratedTaskSource>> sources;
  sources.reserve(trace.size());
  for (std::size_t j = 0; j < trace.size(); ++j) {
    hadoop::CalibratedTaskSource::Params p = mix[trace[j].app].params;
    p.seed = SplitMix64(spec.seed + 0x9e37 * (j + 1));
    sources.push_back(std::make_unique<hadoop::CalibratedTaskSource>(p));
  }

  MultiJobEngine engine(cluster, MakeScheduler(scheduler));
  auto spec_of = [&](std::size_t j) {
    JobSpec s;
    s.source = sources[j].get();
    s.policy = spec.policy;
    s.pool = mix[trace[j].app].pool;
    s.label = mix[trace[j].app].id;
    return s;
  };

  // Must outlive the `if` below: the closed-loop refill callback captures it
  // by reference and fires from inside engine.Run().
  std::size_t next = 0;
  if (spec.mode == WorkloadSpec::Mode::kOpenPoisson) {
    double t = 0.0;
    for (std::size_t j = 0; j < trace.size(); ++j) {
      t += trace[j].gap;
      engine.Submit(t, spec_of(j));
    }
  } else {
    engine.set_on_job_done([&](const JobStats&) {
      if (next < trace.size()) {
        engine.Submit(engine.now(), spec_of(next));
        ++next;
      }
    });
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(spec.concurrency), trace.size());
    for (; next < k; ++next) engine.Submit(0.0, spec_of(next));
  }
  return engine.Run();
}

}  // namespace hd::multijob
