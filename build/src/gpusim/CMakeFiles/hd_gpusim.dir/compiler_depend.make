# Empty compiler generated dependencies file for hd_gpusim.
# This may be replaced when dependencies are built.
