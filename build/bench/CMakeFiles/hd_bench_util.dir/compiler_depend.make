# Empty compiler generated dependencies file for hd_bench_util.
# This may be replaced when dependencies are built.
