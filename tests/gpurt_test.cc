#include <gtest/gtest.h>

#include <map>

#include "gpurt/cpu_task.h"
#include "gpurt/gpu_task.h"
#include "gpurt/kv.h"
#include "gpurt/kvstore.h"
#include "gpurt/records.h"
#include "gpurt/sort.h"

#include <algorithm>
#include <tuple>

namespace hd::gpurt {
namespace {

using gpusim::DeviceConfig;
using gpusim::GpuDevice;

// --- fixtures -------------------------------------------------------------

constexpr const char* kWordcountMap = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i];
    i++;
    j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1) kvpairs(32)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kWordcountCombine = R"(
int main() {
  char word[30], prevWord[30];
  int count, val, read;
  prevWord[0] = '\0';
  count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while ((read = scanf("%s %d", word, &val)) == 2) {
      if (strcmp(word, prevWord) == 0) {
        count += val;
      } else {
        if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
)";

// Map-only doubler: emits <n, 2n> per input line.
constexpr const char* kDoublerMap = R"(
int main() {
  char *line;
  size_t n = 64;
  int read, v, w;
  line = (char*) malloc(n);
  #pragma mapreduce mapper key(v) value(w)
  while ((read = getline(&line, &n, stdin)) != -1) {
    v = atoi(line);
    w = v * 2;
    printf("%d\t%d\n", v, w);
  }
  free(line);
  return 0;
}
)";

// Texture-friendly map: every record scans a read-only table.
constexpr const char* kTableScanMap = R"(
int main() {
  double table[256];
  int i;
  for (i = 0; i < 256; i++) table[i] = i * 0.5;
  char *line;
  size_t n = 64;
  int read, k;
  double s;
  line = (char*) malloc(n);
  #pragma mapreduce mapper key(k) value(s) texture(table) kvpairs(1)
  while ((read = getline(&line, &n, stdin)) != -1) {
    k = atoi(line);
    s = 0.0;
    for (i = 0; i < 256; i++) s += table[(k + i) % 256];
    printf("%d\t%f\n", k, s);
  }
  free(line);
  return 0;
}
)";

DeviceConfig TestDevice() {
  DeviceConfig c = DeviceConfig::TeslaK40();
  c.num_sms = 4;
  return c;
}

std::string WordsInput() {
  return "the cat sat on the mat\nthe dog ate the bone\ncat and dog\n";
}

std::string NumbersInput(int n) {
  std::string s;
  for (int i = 0; i < n; ++i) s += std::to_string(i % 97) + "\n";
  return s;
}

// Sums the numeric values per key across all partitions.
std::map<std::string, long> KeySums(
    const std::vector<std::vector<KvPair>>& partitions) {
  std::map<std::string, long> sums;
  for (const auto& part : partitions) {
    for (const auto& kv : part) sums[kv.key] += std::stol(kv.value);
  }
  return sums;
}

GpuTaskOptions SmallGpuOpts(int reducers) {
  GpuTaskOptions o;
  o.blocks = 4;
  o.threads = 32;
  o.num_reducers = reducers;
  return o;
}

// --- kv helpers ------------------------------------------------------------

TEST(Kv, PartitionStableAndInRange) {
  for (int r : {1, 2, 7, 48}) {
    for (const char* k : {"", "a", "hello", "the", "12345"}) {
      const int p = PartitionOf(k, r);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, r);
      EXPECT_EQ(p, PartitionOf(k, r)) << "unstable for " << k;
    }
  }
}

TEST(Kv, PartitionSpreadsKeys) {
  std::map<int, int> hist;
  for (int i = 0; i < 1000; ++i) hist[PartitionOf(std::to_string(i), 8)]++;
  EXPECT_EQ(hist.size(), 8u);
}

TEST(Kv, FormatParseRoundtrip) {
  KvPair kv{"key", "some value"};
  EXPECT_EQ(ParseKvLine("key\tsome value"), kv);
  EXPECT_EQ(FormatKv(kv), "key\tsome value\n");
  auto pairs = ParseKvText("a\t1\nb\t2\n");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[1].key, "b");
  EXPECT_EQ(FormatKvText(pairs), "a\t1\nb\t2\n");
}

TEST(Kv, LineWithoutTab) {
  EXPECT_EQ(ParseKvLine("solo"), (KvPair{"solo", ""}));
}

// --- records ----------------------------------------------------------------

TEST(Records, LocatesNewlineDelimited) {
  auto r = LocateRecords("ab\ncdef\n\nx");
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].offset, 0);
  EXPECT_EQ(r[0].length, 3);
  EXPECT_EQ(r[1].offset, 3);
  EXPECT_EQ(r[1].length, 5);
  EXPECT_EQ(r[2].length, 1);  // empty line
  EXPECT_EQ(r[3].offset, 9);
  EXPECT_EQ(r[3].length, 1);  // no trailing newline
}

TEST(Records, EmptyInput) { EXPECT_TRUE(LocateRecords("").empty()); }

// --- KV store ----------------------------------------------------------------

TEST(KvStore, EmitAndCounts) {
  GlobalKvStore store(4, 40, 8, 8);
  EXPECT_EQ(store.slots_per_thread(), 10);
  store.Emit(0, {"a", "1"});
  store.Emit(0, {"b", "2"});
  store.Emit(3, {"c", "3"});
  EXPECT_EQ(store.CountFor(0), 2);
  EXPECT_EQ(store.CountFor(3), 1);
  EXPECT_EQ(store.total_emitted(), 3);
  // Bounding box: max(2) * 4 threads = 8 slots; 3 used.
  EXPECT_EQ(store.UsedBoundingBoxSlots(), 8);
  EXPECT_EQ(store.WhitespaceSlots(), 5);
}

TEST(KvStore, PortionOverflowThrows) {
  GlobalKvStore store(2, 4, 8, 8);  // 2 slots per thread
  store.Emit(0, {"a", "1"});
  store.Emit(0, {"b", "2"});
  EXPECT_THROW(store.Emit(0, {"c", "3"}), CheckError);
}

TEST(KvStore, OversizedKeyThrows) {
  GlobalKvStore store(1, 4, 4, 4);
  EXPECT_THROW(store.Emit(0, {"toolongkey", "1"}), CheckError);
}

TEST(KvStore, TakeAllPreservesThreadOrder) {
  GlobalKvStore store(2, 8, 8, 8);
  store.Emit(1, {"late", "1"});
  store.Emit(0, {"early", "1"});
  auto all = store.TakeAll();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].key, "early");
  EXPECT_EQ(all[1].key, "late");
  EXPECT_EQ(store.total_emitted(), 0);
}

// --- CPU task ----------------------------------------------------------------

TEST(CpuTask, WordcountWithCombiner) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions opts;
  opts.num_reducers = 2;
  CpuMapTask task(job, cpu, opts);
  auto result = task.Run(WordsInput());
  auto sums = KeySums(result.partitions);
  EXPECT_EQ(sums["the"], 4);
  EXPECT_EQ(sums["cat"], 2);
  EXPECT_EQ(sums["dog"], 2);
  EXPECT_EQ(sums["bone"], 1);
  EXPECT_GT(result.phases.map, 0.0);
  EXPECT_GT(result.phases.sort, 0.0);
  EXPECT_GT(result.phases.combine, 0.0);
  EXPECT_GT(result.phases.output_write, 0.0);
  EXPECT_EQ(result.phases.record_count, 0.0);
  EXPECT_EQ(result.stats.records, 3);
}

TEST(CpuTask, CombinerShrinksOutput) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions opts;
  opts.num_reducers = 1;
  CpuMapTask task(job, cpu, opts);
  auto result = task.Run("a a a a b\n");
  EXPECT_EQ(result.stats.map_kv_pairs, 5);
  EXPECT_EQ(result.stats.out_kv_pairs, 2);
}

TEST(CpuTask, MapOnlyJob) {
  JobProgram job = CompileJob(kDoublerMap);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions opts;
  opts.num_reducers = 0;
  CpuMapTask task(job, cpu, opts);
  auto result = task.Run("3\n5\n");
  ASSERT_EQ(result.partitions.size(), 1u);
  ASSERT_EQ(result.partitions[0].size(), 2u);
  EXPECT_EQ(result.partitions[0][0], (KvPair{"3", "6"}));
  EXPECT_EQ(result.phases.sort, 0.0);
  EXPECT_EQ(result.phases.combine, 0.0);
}

// --- GPU task ----------------------------------------------------------------

TEST(GpuTask, WordcountMatchesCpuAggregates) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions copts;
  copts.num_reducers = 2;
  auto cpu_result = CpuMapTask(job, cpu, copts).Run(WordsInput());

  GpuDevice device(TestDevice());
  GpuMapTask task(job, &device, SmallGpuOpts(2));
  auto gpu_result = task.Run(WordsInput());

  // Combine outputs may be partially aggregated on the GPU (§4.2), but the
  // per-key sums must agree.
  EXPECT_EQ(KeySums(cpu_result.partitions), KeySums(gpu_result.partitions));
  EXPECT_EQ(gpu_result.stats.records, 3);
  EXPECT_EQ(gpu_result.stats.map_kv_pairs, cpu_result.stats.map_kv_pairs);
}

TEST(GpuTask, MapOnlyOutputsMatchCpuExactly) {
  JobProgram job = CompileJob(kDoublerMap);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions copts;
  copts.num_reducers = 0;
  auto cpu_result = CpuMapTask(job, cpu, copts).Run(NumbersInput(50));

  GpuDevice device(TestDevice());
  GpuMapTask task(job, &device, SmallGpuOpts(0));
  auto gpu_result = task.Run(NumbersInput(50));

  ASSERT_EQ(gpu_result.partitions.size(), 1u);
  // Record stealing permutes order; compare as sorted multisets.
  auto cp = cpu_result.partitions[0];
  auto gp = gpu_result.partitions[0];
  auto by_kv = [](const KvPair& a, const KvPair& b) {
    return std::tie(a.key, a.value) < std::tie(b.key, b.value);
  };
  std::sort(cp.begin(), cp.end(), by_kv);
  std::sort(gp.begin(), gp.end(), by_kv);
  EXPECT_EQ(cp, gp);
}

TEST(GpuTask, PhasesPopulated) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  GpuDevice device(TestDevice());
  GpuMapTask task(job, &device, SmallGpuOpts(2));
  auto r = task.Run(WordsInput());
  EXPECT_GT(r.phases.input_read, 0.0);
  EXPECT_GT(r.phases.record_count, 0.0);
  EXPECT_GT(r.phases.map, 0.0);
  EXPECT_GT(r.phases.aggregate, 0.0);
  EXPECT_GT(r.phases.sort, 0.0);
  EXPECT_GT(r.phases.combine, 0.0);
  EXPECT_GT(r.phases.output_write, 0.0);
  EXPECT_GT(r.stats.shared_atomics, 0);
  EXPECT_EQ(r.stats.global_atomics, 0);
}

TEST(GpuTask, DeviceMemoryReleasedAfterRun) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  GpuDevice device(TestDevice());
  GpuMapTask task(job, &device, SmallGpuOpts(2));
  task.Run(WordsInput());
  EXPECT_EQ(device.used_bytes(), 0);
}

TEST(GpuTask, OomOnTinyDevice) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  DeviceConfig cfg = TestDevice();
  cfg.global_mem_bytes = 128;  // cannot even hold the input
  GpuDevice device(cfg);
  GpuMapTask task(job, &device, SmallGpuOpts(2));
  EXPECT_THROW(task.Run(WordsInput()), gpusim::DeviceOomError);
  EXPECT_EQ(device.used_bytes(), 0);  // guard released partial allocations
}

TEST(GpuTask, KvpairsHintShrinksStore) {
  // kWordcountMap carries kvpairs(32): allocation is bounded by records.
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  GpuDevice device(TestDevice());
  GpuMapTask task(job, &device, SmallGpuOpts(2));
  auto r = task.Run(WordsInput());
  const std::int64_t full_store_slots =
      device.config().global_mem_bytes / (30 + 16 + 4);
  EXPECT_LT(r.stats.allocated_slots, full_store_slots / 2);
}

TEST(GpuTask, RecordStealingBeatsStaticOnSkewedRecords) {
  // No kvpairs clause: the huge records emit hundreds of pairs.
  std::string map_src = kWordcountMap;
  const std::string hint = " kvpairs(32)";
  map_src.erase(map_src.find(hint), hint.size());
  JobProgram job = CompileJob(map_src, kWordcountCombine);
  // Two adjacent huge records in a sea of tiny ones: the static contiguous
  // split hands both to thread 0, while stealing spreads them across
  // threads.
  std::string input;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 300; ++j) input += "word" + std::to_string(j) + " ";
    input += "\n";
  }
  for (int i = 0; i < 126; ++i) input += "a\n";

  GpuTaskOptions steal = SmallGpuOpts(2);
  steal.blocks = 1;
  steal.threads = 64;
  GpuTaskOptions fixed = steal;
  fixed.record_stealing = false;

  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_steal = GpuMapTask(job, &d1, steal).Run(input);
  auto r_fixed = GpuMapTask(job, &d2, fixed).Run(input);
  EXPECT_LT(r_steal.phases.map, r_fixed.phases.map);
  EXPECT_EQ(KeySums(r_steal.partitions), KeySums(r_fixed.partitions));
}

TEST(GpuTask, GlobalStealingCostsMoreThanBlockStealing) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  const std::string input = NumbersInput(400);
  GpuTaskOptions block_steal = SmallGpuOpts(2);
  GpuTaskOptions global_steal = block_steal;
  global_steal.global_stealing = true;
  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_block = GpuMapTask(job, &d1, block_steal).Run(input);
  auto r_global = GpuMapTask(job, &d2, global_steal).Run(input);
  EXPECT_GT(r_global.stats.global_atomics, 0);
  EXPECT_LT(r_block.phases.map, r_global.phases.map);
  EXPECT_EQ(KeySums(r_block.partitions), KeySums(r_global.partitions));
}

TEST(GpuTask, VectorizationSpeedsUpCombine) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  const std::string input = WordsInput() + WordsInput() + WordsInput();
  GpuTaskOptions vec = SmallGpuOpts(2);
  GpuTaskOptions novec = vec;
  novec.vectorize_combine = false;
  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_vec = GpuMapTask(job, &d1, vec).Run(input);
  auto r_novec = GpuMapTask(job, &d2, novec).Run(input);
  EXPECT_LT(r_vec.phases.combine, r_novec.phases.combine);
  EXPECT_EQ(KeySums(r_vec.partitions), KeySums(r_novec.partitions));
}

TEST(GpuTask, VectorizationSpeedsUpMap) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  const std::string input = WordsInput() + WordsInput();
  GpuTaskOptions vec = SmallGpuOpts(2);
  GpuTaskOptions novec = vec;
  novec.vectorize_map = false;
  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_vec = GpuMapTask(job, &d1, vec).Run(input);
  auto r_novec = GpuMapTask(job, &d2, novec).Run(input);
  EXPECT_LT(r_vec.phases.map, r_novec.phases.map);
}

TEST(GpuTask, AggregationSpeedsUpSort) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine);
  // Skewed emission (some threads emit many pairs) creates whitespace.
  std::string input;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 30; ++j) input += "w" + std::to_string(j) + " ";
    input += "\n";
  }
  for (int i = 0; i < 120; ++i) input += "x\n";
  GpuTaskOptions agg = SmallGpuOpts(2);
  GpuTaskOptions noagg = agg;
  noagg.aggregate_before_sort = false;
  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_agg = GpuMapTask(job, &d1, agg).Run(input);
  auto r_noagg = GpuMapTask(job, &d2, noagg).Run(input);
  EXPECT_GT(r_agg.stats.whitespace_slots, 0);
  EXPECT_LT(r_agg.phases.sort, r_noagg.phases.sort);
  EXPECT_GT(r_agg.phases.aggregate, 0.0);
  EXPECT_EQ(r_noagg.phases.aggregate, 0.0);
  EXPECT_EQ(KeySums(r_agg.partitions), KeySums(r_noagg.partitions));
}

TEST(GpuTask, TextureSpeedsUpTableScan) {
  JobProgram job = CompileJob(kTableScanMap);
  const std::string input = NumbersInput(200);
  GpuTaskOptions tex = SmallGpuOpts(2);
  GpuTaskOptions notex = tex;
  notex.use_texture = false;
  GpuDevice d1(TestDevice()), d2(TestDevice());
  auto r_tex = GpuMapTask(job, &d1, tex).Run(input);
  auto r_notex = GpuMapTask(job, &d2, notex).Run(input);
  EXPECT_GT(r_tex.stats.texture_hits, 0);
  EXPECT_EQ(r_notex.stats.texture_hits, 0);
  EXPECT_LT(r_tex.phases.map, r_notex.phases.map);
  EXPECT_EQ(KeySums(r_tex.partitions), KeySums(r_notex.partitions));
}

TEST(GpuTask, TableScanMatchesCpuValues) {
  JobProgram job = CompileJob(kTableScanMap);
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions copts;
  copts.num_reducers = 2;
  auto cpu_r = CpuMapTask(job, cpu, copts).Run(NumbersInput(40));
  GpuDevice device(TestDevice());
  auto gpu_r = GpuMapTask(job, &device, SmallGpuOpts(2)).Run(NumbersInput(40));
  // No combiner: partitions should match exactly after sorting.
  ASSERT_EQ(cpu_r.partitions.size(), gpu_r.partitions.size());
  for (std::size_t p = 0; p < cpu_r.partitions.size(); ++p) {
    auto c = cpu_r.partitions[p], g = gpu_r.partitions[p];
    auto by_kv = [](const KvPair& a, const KvPair& b) {
      return std::tie(a.key, a.value) < std::tie(b.key, b.value);
    };
    std::sort(c.begin(), c.end(), by_kv);
    std::sort(g.begin(), g.end(), by_kv);
    EXPECT_EQ(c, g) << "partition " << p;
  }
}

// --- reduce ------------------------------------------------------------------

constexpr const char* kSumReduce = R"(
int main() {
  char word[30], prevWord[30];
  int count, val;
  prevWord[0] = '\0';
  count = 0;
  while (scanf("%s %d", word, &val) == 2) {
    if (strcmp(word, prevWord) == 0) {
      count += val;
    } else {
      if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
      strcpy(prevWord, word);
      count = val;
    }
  }
  if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  return 0;
}
)";

TEST(Reduce, SumsSortedStream) {
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine, kSumReduce);
  std::vector<KvPair> sorted = {{"a", "2"}, {"a", "3"}, {"b", "1"}};
  auto r = RunReduce(*job.reduce, sorted, gpusim::CpuConfig::XeonE5_2680());
  ASSERT_EQ(r.output.size(), 2u);
  EXPECT_EQ(r.output[0], (KvPair{"a", "5"}));
  EXPECT_EQ(r.output[1], (KvPair{"b", "1"}));
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Reduce, RestoresCombinerEquivalence) {
  // GPU combine may emit partial aggregates; the reducer must converge to
  // the same final answer as the CPU pipeline.
  JobProgram job = CompileJob(kWordcountMap, kWordcountCombine, kSumReduce);
  const std::string input = WordsInput() + WordsInput();
  gpusim::CpuConfig cpu = gpusim::CpuConfig::XeonE5_2680();
  CpuTaskOptions copts;
  copts.num_reducers = 1;
  auto cpu_r = CpuMapTask(job, cpu, copts).Run(input);
  GpuDevice device(TestDevice());
  auto gpu_r = GpuMapTask(job, &device, SmallGpuOpts(1)).Run(input);

  auto finish = [&](const std::vector<std::vector<KvPair>>& parts) {
    std::vector<KvPair> merged = parts[0];
    SortPairsByKey(&merged);
    return RunReduce(*job.reduce, merged, cpu).output;
  };
  EXPECT_EQ(finish(cpu_r.partitions), finish(gpu_r.partitions));
}

}  // namespace
}  // namespace hd::gpurt
