// CPU-side timing hooks: models one core running a Hadoop Streaming filter.
#pragma once

#include "gpusim/config.h"
#include "minic/hooks.h"

namespace hd::gpusim {

// Accumulates modeled seconds for a single-core CPU execution of the
// interpreted program (the paper's baseline Hadoop map/combine task body).
class CpuTimingHooks : public minic::ExecHooks {
 public:
  explicit CpuTimingHooks(const CpuConfig& config) : config_(config) {}

  void OnOp(minic::OpClass op, std::int64_t count) override {
    double per;
    switch (op) {
      case minic::OpClass::kIntAlu: per = config_.cycles_int_alu; break;
      case minic::OpClass::kIntMul: per = config_.cycles_int_mul; break;
      case minic::OpClass::kIntDiv: per = config_.cycles_int_div; break;
      case minic::OpClass::kFloatAlu: per = config_.cycles_float_alu; break;
      case minic::OpClass::kFloatDiv: per = config_.cycles_float_div; break;
      case minic::OpClass::kSpecial: per = config_.cycles_special; break;
      case minic::OpClass::kBranch: per = config_.cycles_branch; break;
      case minic::OpClass::kCall: per = config_.cycles_call; break;
      default: per = 1.0; break;
    }
    cycles_ += per * static_cast<double>(count);
  }

  void OnMemAccess(const minic::MemObject&, std::int64_t,
                   std::int64_t elem_count, bool, bool) override {
    cycles_ += config_.cycles_mem * static_cast<double>(elem_count);
  }

  double cycles() const { return cycles_; }
  double seconds() const { return cycles_ / (config_.clock_ghz * 1e9); }
  void Reset() { cycles_ = 0.0; }

 private:
  const CpuConfig& config_;
  double cycles_ = 0.0;
};

}  // namespace hd::gpusim
