// Synthetic input generators. Each produces one fileSplit of roughly the
// requested byte count, deterministically from a seed. Record-shape
// properties mirror the paper's datasets: zipfian word frequencies for the
// text corpora, variable ratings-per-movie for the movie data (the record
// skew that motivates record stealing), fixed-dimension vectors for the
// clustering inputs.
#pragma once

#include <cstdint>
#include <string>

namespace hd::apps {

// Zipf-distributed words over a synthetic vocabulary; 4-12 words per line.
std::string GenZipfText(std::int64_t bytes, std::uint64_t seed);

// Movie ratings: "m<id> r1 r2 ... rn" with n in [1, 24], ratings 1..5.
std::string GenRatings(std::int64_t bytes, std::uint64_t seed);

// 32-dimensional points: "f0 f1 ... f31" with fixed %.3f rendering.
std::string GenPoints32(std::int64_t bytes, std::uint64_t seed);

// Variable-length rating vectors for the clustering benchmarks:
// "r1 r2 ... rn" with n mostly in [4, 16] and a heavy tail up to 64 —
// the record-size skew record stealing exploits (§4.1).
std::string GenRatingVectors(std::int64_t bytes, std::uint64_t seed);

// Regressor rows: "reg<id> x y" with id in [0, 12) (12 regressors, §7.1).
std::string GenRegressors(std::int64_t bytes, std::uint64_t seed);

// Options: "opt<id> S K r v T" with plausible pricing parameters.
std::string GenOptions(std::int64_t bytes, std::uint64_t seed);

}  // namespace hd::apps
