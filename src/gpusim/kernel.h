// Kernel execution timing: per-lane operation accounting rolled up into a
// roofline-style device time.
//
// Functional execution happens lane-by-lane in the embedding runtime (one
// mini-C interpreter run per simulated thread). Each lane's hooks accumulate
// compute cycles and memory-latency cycles; KernelSim then models:
//   * warp SIMD lockstep: a warp's compute time is the max over its lanes
//     (load imbalance across records — what record stealing attacks),
//   * latency hiding: memory latency is overlapped across the block's warps
//     up to the device's resident-warp limit,
//   * DRAM bandwidth: a device-wide roof on total bytes moved,
//   * SM scheduling: blocks round-robin over SMs; the kernel finishes when
//     the busiest SM does.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/config.h"
#include "gpusim/texture_cache.h"
#include "minic/hooks.h"

namespace hd::gpusim {

struct LaneStats {
  double compute_cycles = 0.0;
  double mem_cycles = 0.0;
  std::int64_t transactions = 0;
  std::int64_t bytes_moved = 0;
  // Hardware-counter inputs (counts only — never consulted by the timing
  // arithmetic, so modeled numbers are identical whether or not anything
  // reads them).
  std::int64_t mem_requests = 0;     // global-memory instructions issued
  std::int64_t bytes_requested = 0;  // bytes the program asked for
  std::int64_t shared_accesses = 0;
  std::int64_t shared_atomic_ops = 0;
  std::int64_t global_atomic_ops = 0;
  // Recently touched 128-byte lines (a tiny per-lane L1 image): sequential
  // parsing of a record re-hits its current line until it crosses a line
  // boundary, and interleaved streams (KV slot + index array) do not
  // thrash each other.
  static constexpr int kLineSlots = 4;
  std::array<std::pair<const void*, std::int64_t>, kLineSlots> lines{};
  int next_line_slot = 0;

  bool TouchLine(const void* obj, std::int64_t line) {
    for (auto& [o, l] : lines) {
      if (o == obj && l == line) return true;
    }
    lines[static_cast<std::size_t>(next_line_slot)] = {obj, line};
    next_line_slot = (next_line_slot + 1) % kLineSlots;
    return false;
  }
  void DropLines() {
    lines.fill({nullptr, -1});
  }
};

struct KernelReport {
  double elapsed_sec = 0.0;
  double compute_cycles = 0.0;   // sum of warp-max compute
  double mem_cycles = 0.0;       // sum of lane memory latency
  // Roofline terms resolved by Finish(): the cycles the busiest SM (or the
  // DRAM roof, whichever binds) takes, the device-wide DRAM-bandwidth
  // floor, and each SM's modeled busy cycles (for per-SM trace tracks).
  double device_cycles = 0.0;
  double dram_roof_cycles = 0.0;
  std::vector<double> sm_busy_cycles;
  std::int64_t transactions = 0;
  std::int64_t bytes_moved = 0;
  std::int64_t texture_hits = 0;
  std::int64_t texture_misses = 0;
  std::int64_t shared_atomics = 0;
  std::int64_t global_atomics = 0;

  // Simulator hardware counters (definitions in DESIGN.md "Profiling &
  // regression"). Derived from LaneStats counts in Finish(); they never
  // feed back into the timing model.
  std::int64_t mem_requests = 0;     // global-memory instructions issued
  std::int64_t bytes_requested = 0;  // bytes the program asked for
  std::int64_t shared_accesses = 0;
  // Shared-memory atomics that serialized behind another lane of the same
  // warp (per warp: total atomics minus the busiest lane's share).
  std::int64_t shared_bank_conflicts = 0;
  // Global atomics that contended device-wide (total minus the busiest
  // lane's share — the winner of each round is conflict-free).
  std::int64_t atomic_conflicts = 0;
  // SIMD issue accounting: a warp issues warp-max compute cycles on every
  // active lane; the lanes only had lane_compute_cycles of real work.
  double warp_issue_cycles = 0.0;
  double lane_compute_cycles = 0.0;

  double TextureHitRate() const {
    const std::int64_t total = texture_hits + texture_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(texture_hits) /
                            static_cast<double>(total);
  }
  // Fraction of SIMD issue slots wasted on lockstep padding (divergence +
  // load imbalance across a warp's lanes); 0 = perfectly converged.
  double WarpDivergenceRatio() const {
    return warp_issue_cycles == 0.0
               ? 0.0
               : 1.0 - lane_compute_cycles / warp_issue_cycles;
  }
  // Useful bytes per DRAM byte moved; 1.0 = perfectly coalesced, < 1 means
  // partially-used 128-byte lines, > 1 means on-chip (L1 line) reuse.
  double CoalescingEfficiency() const {
    return bytes_moved == 0 ? 1.0
                            : static_cast<double>(bytes_requested) /
                                  static_cast<double>(bytes_moved);
  }
  // DRAM transactions per issued global-memory instruction.
  double TransactionsPerRequest() const {
    return mem_requests == 0 ? 0.0
                             : static_cast<double>(transactions) /
                                   static_cast<double>(mem_requests);
  }
};

class KernelSim;

// minic::ExecHooks adapter for one simulated GPU thread.
class LaneHooks : public minic::ExecHooks {
 public:
  LaneHooks(KernelSim* kernel, int block, int lane)
      : kernel_(kernel), block_(block), lane_(lane) {}

  void OnOp(minic::OpClass op, std::int64_t count) override;
  void OnMemAccess(const minic::MemObject& obj, std::int64_t index,
                   std::int64_t elem_count, bool is_write,
                   bool vectorizable) override;

 private:
  KernelSim* kernel_;
  int block_;
  int lane_;
};

class KernelSim {
 public:
  KernelSim(const DeviceConfig& config, int num_blocks, int threads_per_block,
            std::string name);

  const std::string& name() const { return name_; }
  int num_blocks() const { return num_blocks_; }
  int threads_per_block() const { return threads_per_block_; }

  // Disables the vector-data-type optimisation (§4.1) for this kernel:
  // accesses marked vectorizable are charged as scalar accesses instead.
  // Used by the Fig. 7b/7c ablations.
  void set_vectorization_enabled(bool on) { vectorization_enabled_ = on; }
  bool vectorization_enabled() const { return vectorization_enabled_; }

  // Hooks object for thread `lane` of `block` (stable for kernel lifetime).
  minic::ExecHooks& Hooks(int block, int lane);

  // Direct charges used by runtime primitives.
  void ChargeOp(int block, int lane, minic::OpClass op, std::int64_t count);
  void ChargeSharedAtomic(int block, int lane);
  void ChargeGlobalAtomic(int block, int lane);

  // A global-memory access at a known location: `obj_id` identifies the
  // buffer, `byte_offset`/`bytes` the touched range. Accesses within the
  // lane's most recent 128-byte line hit on chip (L1); crossing lines pay
  // DRAM latency. Vectorizable accesses issue one instruction per
  // vector_width_bytes, scalar ones one per byte-element.
  void ChargeGlobalAccess(int block, int lane, const void* obj_id,
                          std::int64_t byte_offset, std::int64_t bytes,
                          bool vectorizable);

  // A bulk global-memory stream without a tracked location (sort key loads
  // through the indirection array, combine chunk streams, copies).
  // `granule_bytes` is the contiguous run length — each run starts at an
  // unrelated address and pays one DRAM miss, the rest of the run hits.
  void ChargeGlobalBytes(int block, int lane, std::int64_t bytes,
                         bool vectorized, std::int64_t granule_bytes = 0);

  // Splits `total_units` of kernel-wide work over the lanes (lane 0 first);
  // lanes beyond the available work receive nothing.
  void DistributeUnits(std::int64_t total_units,
                       const std::function<void(int block, int lane,
                                                std::int64_t units)>& fn);
  // Texture-path access for a given object range.
  void ChargeTexture(int block, int lane, const void* obj_id,
                     std::int64_t byte_offset, std::int64_t bytes);
  void ChargeShared(int block, int lane, std::int64_t accesses);

  LaneStats& Lane(int block, int lane);

  // Rolls the lane stats up into the kernel elapsed time.
  KernelReport Finish() const;

 private:
  friend class LaneHooks;

  const DeviceConfig& config_;
  int num_blocks_;
  int threads_per_block_;
  std::string name_;
  std::vector<LaneStats> lanes_;                // [block * tpb + lane]
  std::vector<std::unique_ptr<LaneHooks>> hooks_;
  std::vector<TextureCacheSim> texture_caches_;  // one per SM
  bool vectorization_enabled_ = true;
  std::int64_t shared_atomics_ = 0;
  std::int64_t global_atomics_ = 0;
};

}  // namespace hd::gpusim
