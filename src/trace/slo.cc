#include "trace/slo.h"

#include "common/check.h"
#include "trace/timeseries.h"

namespace hd::trace {

void SloMonitor::AddRule(SloRule rule) {
  HD_CHECK_MSG(!rule.name.empty(), "SLO rule needs a name");
  if (rule.kind == SloRule::Kind::kBurnRate) {
    HD_CHECK_MSG(rule.budget > 0.0 && rule.budget <= 1.0,
                 "rule " << rule.name << ": budget must be in (0, 1], got "
                         << rule.budget);
    HD_CHECK_MSG(rule.short_window_sec > 0.0 &&
                     rule.long_window_sec >= rule.short_window_sec,
                 "rule " << rule.name
                         << ": windows must satisfy 0 < short <= long");
    HD_CHECK_MSG(!rule.bad_series.empty() && !rule.total_series.empty(),
                 "rule " << rule.name
                         << ": burn-rate rules need bad/total series");
  } else {
    HD_CHECK_MSG(!rule.series.empty(),
                 "rule " << rule.name << ": threshold rules need a series");
  }
  rules_.push_back(std::move(rule));
  firing_.push_back(false);
}

std::int64_t SloMonitor::firing_count() const {
  std::int64_t n = 0;
  for (const bool f : firing_) n += f ? 1 : 0;
  return n;
}

double SloMonitor::EvalValue(const SloRule& rule, const TimeSeries& ts,
                             bool* want_firing) {
  switch (rule.kind) {
    case SloRule::Kind::kAbove: {
      const double v = ts.LastValue(rule.series);
      *want_firing = v > rule.threshold;
      return v;
    }
    case SloRule::Kind::kBelow: {
      const double v = ts.LastValue(rule.series);
      *want_firing = v < rule.threshold;
      return v;
    }
    case SloRule::Kind::kBurnRate: {
      const auto burn = [&](double window_sec) {
        const double bad = ts.DeltaOver(rule.bad_series, window_sec);
        const double total = ts.DeltaOver(rule.total_series, window_sec);
        if (total <= 0.0) return 0.0;  // no traffic burns no budget
        return (bad / total) / rule.budget;
      };
      const double short_burn = burn(rule.short_window_sec);
      const double long_burn = burn(rule.long_window_sec);
      *want_firing = short_burn >= rule.burn_threshold &&
                     long_burn >= rule.burn_threshold;
      return short_burn;
    }
  }
  *want_firing = false;
  return 0.0;
}

void SloMonitor::Evaluate(double now, const TimeSeries& ts, Sink* sink) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    bool want = false;
    const double value = EvalValue(rule, ts, &want);
    if (want == static_cast<bool>(firing_[i])) continue;
    firing_[i] = want;
    AlertEvent ev;
    ev.at_sec = now;
    ev.rule = rule.name;
    ev.firing = want;
    ev.value = value;
    alerts_.push_back(ev);
    if (sink != nullptr) {
      sink->Instant("slo", rule.name, rule.track, now,
                    {Arg::Str("state", want ? "firing" : "resolved"),
                     Arg::Float("value", value)});
    }
  }
}

}  // namespace hd::trace
