#include <gtest/gtest.h>

#include "sched/policy.h"

namespace hd::sched {
namespace {

NodeSched MakeNode(int free_cpu, int free_gpu, int gpus, double speedup) {
  return NodeSched{free_cpu, free_gpu, gpus, speedup};
}

TEST(Policy, Names) {
  EXPECT_STREQ(PolicyName(Policy::kCpuOnly), "cpu-only");
  EXPECT_STREQ(PolicyName(Policy::kGpuFirst), "gpu-first");
  EXPECT_STREQ(PolicyName(Policy::kTail), "tail");
}

TEST(Policy, CpuOnlyNeverUsesGpu) {
  NodeSched n = MakeNode(2, 1, 1, 6.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kCpuOnly, n, 0.5));
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kCpuOnly, n, 100, 6.0, 4), 2);
}

TEST(Policy, GpuFirstPrefersFreeGpu) {
  EXPECT_TRUE(PlaceOnGpu(Policy::kGpuFirst, MakeNode(2, 1, 1, 6.0), 100));
  EXPECT_FALSE(PlaceOnGpu(Policy::kGpuFirst, MakeNode(2, 0, 1, 6.0), 100));
}

TEST(Policy, GpuFirstCountsAllFreeSlots) {
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kGpuFirst, MakeNode(3, 1, 1, 6.0),
                                  100, 6.0, 4),
            4);
}

TEST(Policy, TailBodyBehavesLikeGpuFirst) {
  // Plenty of maps remain: taskTail = 1 GPU * 6x = 6 < 100 remaining/node.
  NodeSched n = MakeNode(2, 0, 1, 6.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 100));
  n.free_gpu_slots = 1;
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 100));
}

TEST(Policy, TailForcesGpuWhenTailBegins) {
  // remaining/node (3) <= taskTail (6): force GPU even with the GPU busy.
  NodeSched n = MakeNode(2, 0, 1, 6.0);
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 3.0));
}

TEST(Policy, TailThresholdScalesWithGpus) {
  // 3 GPUs at 4x: taskTail = 12.
  NodeSched n = MakeNode(2, 0, 3, 4.0);
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 12.0));
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 13.0));
}

TEST(Policy, JobTailCapsAssignmentsPerHeartbeat) {
  // jobTail = 1 GPU * 6x * 4 slaves = 24. With 20 pending (< jobTail) the
  // JobTracker hands out at most numGPUs tasks.
  NodeSched n = MakeNode(5, 1, 1, 6.0);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 20, 6.0, 4), 1);
  // Before the tail, all free slots are fed.
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 100, 6.0, 4), 6);
}

TEST(Policy, ZeroGpusNeverPlaceOnGpuAndFeedAllCpuSlots) {
  // A GPU-less TaskTracker (Cluster1 nodes without an accelerator, or a
  // drained GPU pool) must degenerate to plain Hadoop for every policy.
  NodeSched n = MakeNode(3, 0, /*gpus=*/0, /*speedup=*/1.0);
  for (Policy p : {Policy::kGpuFirst, Policy::kTail}) {
    EXPECT_FALSE(PlaceOnGpu(p, n, 100.0));
    EXPECT_FALSE(PlaceOnGpu(p, n, 0.0));  // even in the tail
    EXPECT_EQ(MaxTasksThisHeartbeat(p, n, 100, 6.0, 4), 3);
    // The jobTail cap must not apply with num_gpus == 0 (it would hand out
    // min(free, free_gpu) = 0 tasks forever and hang the job).
    EXPECT_EQ(MaxTasksThisHeartbeat(p, n, 1, 6.0, 4), 3);
  }
}

TEST(Policy, ColdStartSpeedupOfOneKeepsJobTailHarmless) {
  // Before both paths have samples, aveSpeedup is 1.0: jobTail = gpus *
  // 1.0 * slaves, so the per-heartbeat cap only engages when pending maps
  // drop below the GPU count itself — never starving the CPU slots early.
  NodeSched n = MakeNode(4, 1, 1, /*speedup=*/1.0);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 5, 1.0, 4), 5);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 4, 1.0, 4), 5);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 3, 1.0, 4), 1);
}

TEST(Policy, SingleNodeTailOnset) {
  // One slave, 2 GPUs at 5x: jobTail = 2 * 5 * 1 = 10 pending maps.
  NodeSched n = MakeNode(4, 2, 2, 5.0);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 10, 5.0, 1), 6);
  EXPECT_EQ(MaxTasksThisHeartbeat(Policy::kTail, n, 9, 5.0, 1), 2);
  // taskTail = 2 * 5 = 10 remaining on the (only) node forces the GPU.
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 10.0));
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, MakeNode(4, 0, 2, 5.0), 10.5));
}

TEST(Policy, SpeedupOfOneDisablesTailEffects) {
  // Without observed speedup the tail degenerates to tiny thresholds.
  NodeSched n = MakeNode(2, 0, 1, 1.0);
  EXPECT_FALSE(PlaceOnGpu(Policy::kTail, n, 2.0));
  EXPECT_TRUE(PlaceOnGpu(Policy::kTail, n, 1.0));
}

}  // namespace
}  // namespace hd::sched
