file(REMOVE_RECURSE
  "libhd_translator.a"
)
