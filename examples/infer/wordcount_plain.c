// A plain mini-C wordcount mapper with no mapreduce pragma. Feed it to
// hdinfer to synthesize the directive:
//
//   hdinfer --rewrite wordcount_plain.c > wordcount.c && hdlint wordcount.c
//
// (word[32] keeps the key slot a multiple of 4 so the vectorization audit
// stays silent even under hdlint --werror.)
int getWord(char *line, int offset, char *word, int read, int maxw) {
  int i = offset;
  int j = 0;
  while (i < read && !isalnum(line[i])) i++;
  if (i >= read) return -1;
  while (i < read && isalnum(line[i]) && j < maxw - 1) {
    word[j] = line[i];
    i++;
    j++;
  }
  word[j] = '\0';
  return i - offset;
}
int main() {
  char word[32], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 32)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
