// Shared statistics helpers.
//
// Consolidates the copies that used to live in bench/bench_util (geometric
// mean) and src/multijob/metrics (nearest-rank percentiles, utilization):
// the multijob metrics, the trace-layer Distribution metric and the bench
// harnesses all compute through these, so percentile semantics cannot
// drift between reports.
#pragma once

#include <vector>

namespace hd::stats {

// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& xs);

// Geometric mean; HD_CHECKs a non-empty, positive sample.
double GeoMean(const std::vector<double>& xs);

// Nearest-rank percentile, q in [0, 1]: the smallest sample with at least
// q of the mass at or below it. Takes the sample by value (sorts a copy);
// 0 for an empty sample. HD_CHECKs q's range.
double NearestRankPercentile(std::vector<double> xs, double q);

// busy time over capacity: busy_sec / (capacity_units * horizon_sec);
// 0 when the horizon or capacity is empty.
double Utilization(double busy_sec, double capacity_units,
                   double horizon_sec);

}  // namespace hd::stats
