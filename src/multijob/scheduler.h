// Inter-job (JobTracker-level) schedulers: which job a freed map slot
// serves next. Modeled on Hadoop 1.x's pluggable TaskScheduler — the
// default FIFO JobQueueTaskScheduler, the FairScheduler and the
// CapacityScheduler — simplified to the slot-granularity decision the DES
// engine needs. They compose with the per-job sched::Policy: the inter-job
// scheduler picks the *job*, the job's own policy (GPU-first, tail
// forcing) then picks the *processor* for the task.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hadoop/cluster_core.h"

namespace hd::multijob {

enum class SchedulerKind { kFifo, kFair, kCapacity };

const char* SchedulerKindName(SchedulerKind k);

class InterJobScheduler {
 public:
  virtual ~InterJobScheduler() = default;
  virtual const char* name() const = 0;

  // Picks the job the next available slot should serve. `runnable` holds
  // the active jobs that can take a task right now (pending maps, within
  // their heartbeat allowance, a usable slot free); it is never empty.
  // `active` holds every in-flight job, for cluster-wide share accounting.
  // Returns an index into `runnable`.
  virtual std::size_t PickJob(
      const std::vector<const hadoop::JobState*>& runnable,
      const std::vector<const hadoop::JobState*>& active) = 0;

  // Pool weights for quota-based preemption, or nullptr when this
  // scheduler has no pool notion (FIFO/Fair). The Capacity scheduler
  // returns its weight vector; the SLO wrapper forwards to its inner
  // scheduler so slo-capacity preempts too.
  virtual const std::vector<double>* pool_weights() const { return nullptr; }
};

// FIFO: strict submission order — the earliest-submitted runnable job gets
// every slot until it has no pending maps.
std::unique_ptr<InterJobScheduler> MakeFifoScheduler();

// Fair: equal running-task shares — the slot goes to the runnable job with
// the fewest currently running tasks, ties broken by submission order.
std::unique_ptr<InterJobScheduler> MakeFairScheduler();

// Capacity: jobs belong to pools (JobState::pool); each pool owns a slot
// quota proportional to its weight. The slot goes to the runnable job of
// the most underserved pool (cluster-wide running tasks / weight), FIFO
// within the pool. Pools outside [0, weights.size()) get weight 1.
std::unique_ptr<InterJobScheduler> MakeCapacityScheduler(
    std::vector<double> pool_weights);

// SLO-aware composition: earliest-deadline-first over the runnable jobs
// that carry a finite JobState::deadline_sec (streaming window jobs get
// seal_time + slo), ties broken by job id; when no runnable job has a
// deadline the decision is delegated to `inner`, so batch jobs — and
// whole batch workloads — schedule exactly as before. The per-job
// sched::Policy (Algorithm 2 tail forcing) still picks the processor.
std::unique_ptr<InterJobScheduler> MakeSloScheduler(
    std::unique_ptr<InterJobScheduler> inner);

// Factory over SchedulerKind; Capacity uses `pool_weights` (defaults to
// two pools at 2:1 when empty).
std::unique_ptr<InterJobScheduler> MakeScheduler(
    SchedulerKind kind, std::vector<double> pool_weights = {});

// Inverse of SchedulerKindName. Throws CheckError listing the valid names.
SchedulerKind SchedulerKindFromName(const std::string& name);

// Named factory for bench --scheduler flags: "fifo" / "fair" / "capacity"
// plus the SLO compositions "slo-fifo" / "slo-fair" / "slo-capacity"
// (MakeSloScheduler over the named inner). Throws CheckError listing the
// valid names on anything else.
std::unique_ptr<InterJobScheduler> MakeScheduler(
    const std::string& name, std::vector<double> pool_weights = {});

inline constexpr const char* kSchedulerKindNames = "fifo, fair, capacity";
inline constexpr const char* kSchedulerNames =
    "fifo, fair, capacity, slo-fifo, slo-fair, slo-capacity";

}  // namespace hd::multijob
