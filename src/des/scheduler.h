// The simulator core: a backend-pluggable discrete-event scheduler.
//
// Every engine in the repo (hadoop::JobEngine, multijob::MultiJobEngine,
// stream::StreamEngine) drives one des::Scheduler. The API is built for
// million-event traces:
//
//   * Events are pooled records, not heap-allocated closures. The hot
//     path schedules a plain function pointer plus a 16-byte POD payload
//     (Payload) drawn from an arena with a free list — zero allocations
//     once the pool is warm. A std::function overload remains for cold
//     paths (tests, one-shot horizon events); it allocates.
//   * Scheduling returns an EventHandle: a (slot, generation) pair.
//     Cancel(handle) retires the event in O(1) without touching the
//     backend — the stored key goes stale and is skipped at pop time
//     (lazy deletion). This replaces the old dead-closure convention
//     where killed work left a no-op event to drain.
//   * The queue discipline is strict (time, seq) order, seq assigned at
//     schedule time. Ties in time therefore break by insertion order on
//     *every* backend, which is what makes backends interchangeable:
//     identical pop order => identical modeled doubles => every exact
//     bench pin holds bit-identically on "heap" and "calendar".
//
// Backends:
//   "heap"      — binary heap (std::priority_queue) over 24-byte keys;
//                 O(log n) push/pop. The reference implementation.
//   "calendar"  — classic calendar queue (R. Brown, CACM 1988): an array
//                 of day buckets of width ~3x the mean event gap, resized
//                 on occupancy thresholds; O(1) amortized push/pop, and
//                 the default everywhere (ClusterConfig::des_backend).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace hd::des {

// The intrusive event payload: two words the handler interprets itself
// (an attempt id, a packed node+generation, a bit_cast double...). Big
// enough for every engine event; small enough that a whole record stays
// on one cache line.
struct Payload {
  std::uint64_t u0 = 0;
  std::uint64_t u1 = 0;
};

inline std::uint64_t PackDouble(double d) {
  return std::bit_cast<std::uint64_t>(d);
}
inline double UnpackDouble(std::uint64_t u) { return std::bit_cast<double>(u); }
template <typename T>
std::uint64_t PackPtr(T* p) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
}
template <typename T>
T* UnpackPtr(std::uint64_t u) {
  return reinterpret_cast<T*>(static_cast<std::uintptr_t>(u));
}

// A typed event callback: `ctx` is the scheduling object (engine), the
// payload identifies the work. No captures, no allocation.
using Handler = void (*)(void* ctx, const Payload& payload);

// Generation-checked reference to a pending event. Default-constructed
// handles are null; a handle goes stale once its event fires or is
// canceled, after which Cancel/Pending return false.
struct EventHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  // 0 = null (live generations start at 1)
  bool null() const { return gen == 0; }
};

class Scheduler {
 public:
  Scheduler();
  virtual ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual const char* name() const = 0;

  double now() const { return now_; }
  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  // Total events dispatched (fired, not canceled) since construction.
  // Monotone; the telemetry sampler derives events/sec from its deltas.
  std::uint64_t serviced() const { return serviced_; }

  // Schedules `fn(ctx, payload)` at absolute time `time` (>= now(),
  // finite). Returns a handle usable with Cancel until the event fires.
  EventHandle At(double time, Handler fn, void* ctx, Payload payload = {});
  // Relative form; `delay` must be finite and non-negative — a NaN or
  // negative delay is rejected here, at the call site, with the
  // offending value in the message.
  EventHandle After(double delay, Handler fn, void* ctx, Payload payload = {});

  // Closure convenience (allocates; cold paths only).
  EventHandle At(double time, std::function<void()> fn);
  EventHandle After(double delay, std::function<void()> fn);

  // Retires a pending event in O(1). Returns true when the handle was
  // live (the event will now never fire); false for null, already-fired,
  // already-canceled handles.
  bool Cancel(EventHandle h);
  // Whether the handle still refers to a pending event.
  bool Pending(EventHandle h) const;

  // Runs the next live event; returns false when the queue is drained.
  bool Step();
  // Drains the queue. Backends may override with a staged drain loop
  // (pop a batch of due keys, prefetch every record, then dispatch) as
  // long as dispatch order stays exactly (time, seq).
  virtual void Run() {
    while (Step()) {
    }
  }

 protected:
  // What backends order: strict (time, seq) min-first. slot/gen identify
  // the pooled record; a key whose generation no longer matches the
  // record was canceled and is skipped at pop.
  struct Key {
    double time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  static bool KeyLess(const Key& a, const Key& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  virtual void Push(const Key& k) = 0;
  // Pops the minimum stored key, stale or live; false when the backend
  // holds nothing.
  virtual bool PopMin(Key* k) = 0;

  // Backends that can predict the next pop's slot (the heap's new top,
  // the calendar's new bucket minimum) call this from PopMin so the
  // record is in cache by the time the next Step() needs it. At a
  // million live events the pool outgrows cache and this random fetch
  // is the dominant per-event cost; the current handler's execution
  // hides the latency. Purely a hint — never affects pop order.
  void PrefetchSlot(std::uint32_t slot) const {
    if (slot < pool_.size()) __builtin_prefetch(&pool_[slot]);
  }

  // Fires the event behind a popped key: skips it when stale (canceled),
  // otherwise advances now(), recycles the record, and invokes the
  // handler. The one dispatch path every drain loop — Step() and any
  // backend-staged Run() — funnels through, so ordering and release
  // semantics cannot diverge between them. Returns whether it fired.
  bool DispatchKey(const Key& k) {
    const Record& r = pool_[k.slot];
    if (!r.live || r.gen != k.gen) return false;  // canceled: stale key
    now_ = k.time;
    const Handler fn = r.fn;
    void* ctx = r.ctx;
    const Payload payload = r.payload;
    // Release before invoking: the handler may schedule (and the pool
    // may grow), so no reference into pool_ survives past this point.
    Release(k.slot);
    --live_;
    ++serviced_;
    fn(ctx, payload);
    return true;
  }

 private:
  struct Record {
    Handler fn = nullptr;
    void* ctx = nullptr;
    Payload payload{};
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
    bool live = false;
  };

  static void RunClosure(void* ctx, const Payload&);

  std::uint32_t Acquire();
  void Release(std::uint32_t slot);

  std::vector<Record> pool_;
  std::uint32_t free_head_ = kNoFree;
  static constexpr std::uint32_t kNoFree = 0xffffffffu;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t serviced_ = 0;
  double now_ = 0.0;
};

// Named backend factory: "heap" or "calendar". Unknown names throw
// CheckError listing the valid options.
std::unique_ptr<Scheduler> MakeScheduler(const std::string& backend);

// The valid --des-backend / ClusterConfig::des_backend names, for error
// messages and validation.
inline constexpr const char* kBackendNames = "calendar, heap";

std::unique_ptr<Scheduler> MakeHeapScheduler();
std::unique_ptr<Scheduler> MakeCalendarScheduler();

}  // namespace hd::des
