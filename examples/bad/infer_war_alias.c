// Rejected by hdinfer: the record loop updates table[h] in place and reads
// the updated element back on later records — write-after-read aliasing
// through an outer array that parallel GPU threads would race on.
int main() {
  char *line;
  size_t nbytes = 256;
  int table[64];
  int h, hits, read, i;
  i = 0;
  while (i < 64) {
    table[i] = 0;
    i = i + 1;
  }
  line = (char*) malloc(nbytes * sizeof(char));
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    h = atoi(line) % 64;
    if (h < 0) h = h + 64;
    table[h] = table[h] + 1;
    hits = table[h];
    printf("%d\t%d\n", h, hits);
  }
  free(line);
  return 0;
}
