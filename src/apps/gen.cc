#include "apps/gen.h"

#include <cstdio>

#include "common/check.h"
#include "common/prng.h"

namespace hd::apps {
namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

std::string GenZipfText(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  static const ZipfSampler zipf(5000, 1.05);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 128);
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    // Mostly short lines with a heavy tail (~1% run to hundreds of words),
    // mirroring real text corpora — the record-size skew that motivates
    // record stealing (§4.1).
    int words = 4 + static_cast<int>(prng.NextBounded(9));
    if (prng.NextBounded(100) == 0) {
      words = 100 + static_cast<int>(prng.NextBounded(150));
    }
    for (int w = 0; w < words; ++w) {
      if (w) out += ' ';
      out += "w" + std::to_string(zipf.Sample(prng));
    }
    out += '\n';
  }
  return out;
}

std::string GenRatings(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 128);
  std::int64_t movie = 0;
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    out += "m" + std::to_string(movie++);
    // Review counts are heavy-tailed: most movies have a handful, a few
    // (blockbusters) have hundreds — the kmeans imbalance §4.1 describes.
    int n = 1 + static_cast<int>(prng.NextBounded(24));
    if (prng.NextBounded(50) == 0) {
      n = 100 + static_cast<int>(prng.NextBounded(300));
    }
    for (int i = 0; i < n; ++i) {
      out += ' ';
      out += std::to_string(1 + prng.NextBounded(5));
    }
    out += '\n';
  }
  return out;
}

std::string GenPoints32(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 192);
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    for (int d = 0; d < 32; ++d) {
      if (d) out += ' ';
      out += Fmt("%.3f", prng.NextDouble(0.0, 10.0));
    }
    out += '\n';
  }
  return out;
}

std::string GenRatingVectors(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 256);
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    int n = 4 + static_cast<int>(prng.NextBounded(13));
    if (prng.NextBounded(20) == 0) {
      n = 48 + static_cast<int>(prng.NextBounded(17));  // heavy tail
    }
    for (int i = 0; i < n; ++i) {
      if (i) out += ' ';
      out += std::to_string(1 + prng.NextBounded(5));
    }
    out += '\n';
  }
  return out;
}

std::string GenRegressors(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 64);
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    const int reg = static_cast<int>(prng.NextBounded(12));
    const double slope = 0.5 + 0.25 * reg;
    const double x = prng.NextDouble(0.0, 100.0);
    const double noise = prng.NextGaussian();
    const double y = slope * x + 3.0 + noise;
    out += "reg" + std::to_string(reg) + " " + Fmt("%.4f", x) + " " +
           Fmt("%.4f", y) + "\n";
  }
  return out;
}

std::string GenOptions(std::int64_t bytes, std::uint64_t seed) {
  HD_CHECK(bytes > 0);
  Prng prng(seed);
  std::string out;
  out.reserve(static_cast<std::size_t>(bytes) + 96);
  std::int64_t id = 0;
  while (static_cast<std::int64_t>(out.size()) < bytes) {
    const double spot = prng.NextDouble(20.0, 180.0);
    const double strike = spot * prng.NextDouble(0.7, 1.3);
    const double rate = prng.NextDouble(0.01, 0.08);
    const double vol = prng.NextDouble(0.1, 0.6);
    const double expiry = prng.NextDouble(0.25, 2.0);
    out += "opt" + std::to_string(id++) + " " + Fmt("%.4f", spot) + " " +
           Fmt("%.4f", strike) + " " + Fmt("%.4f", rate) + " " +
           Fmt("%.4f", vol) + " " + Fmt("%.4f", expiry) + "\n";
  }
  return out;
}

}  // namespace hd::apps
