#include <gtest/gtest.h>

#include "translator/translator.h"

namespace hd::translator {
namespace {

constexpr const char* kWordcountMap = R"(
int getWord(char *line, int offset, char *word, int read, int maxw) {
  return -1;
}
int main() {
  char word[30], *line;
  size_t nbytes = 10000;
  int read, linePtr, offset, one;
  line = (char*) malloc(nbytes * sizeof(char));
  #pragma mapreduce mapper key(word) value(one) keylength(30) vallength(1)
  while ((read = getline(&line, &nbytes, stdin)) != -1) {
    linePtr = 0;
    offset = 0;
    one = 1;
    while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
      printf("%s\t%d\n", word, one);
      offset += linePtr;
    }
  }
  free(line);
  return 0;
}
)";

constexpr const char* kWordcountCombine = R"(
int main() {
  char word[30], prevWord[30];
  int count, val, read;
  prevWord[0] = '\0';
  count = 0;
  #pragma mapreduce combiner key(prevWord) value(count) \
    keyin(word) valuein(val) keylength(30) vallength(1) \
    firstprivate(prevWord, count)
  {
    while ((read = scanf("%s %d", word, &val)) == 2) {
      if (strcmp(word, prevWord) == 0) {
        count += val;
      } else {
        if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
        strcpy(prevWord, word);
        count = val;
      }
    }
    if (prevWord[0] != '\0') printf("%s\t%d\n", prevWord, count);
  }
  return 0;
}
)";

TEST(Translator, WordcountMapPlan) {
  auto prog = Translate(kWordcountMap);
  ASSERT_TRUE(prog.map_plan.has_value());
  EXPECT_FALSE(prog.combine_plan.has_value());
  const KernelPlan& p = *prog.map_plan;
  EXPECT_EQ(p.kind, minic::Directive::Kind::kMapper);
  EXPECT_EQ(p.key_var, "word");
  EXPECT_EQ(p.value_var, "one");
  EXPECT_EQ(p.kv.key_slot_bytes, 30);
  EXPECT_TRUE(p.kv.key_is_array);
  EXPECT_FALSE(p.kv.val_is_array);
  ASSERT_NE(p.region, nullptr);
  EXPECT_EQ(p.region->kind, minic::StmtKind::kWhile);
}

TEST(Translator, WordcountCombinePlan) {
  auto prog = Translate(kWordcountCombine);
  ASSERT_TRUE(prog.combine_plan.has_value());
  const KernelPlan& p = *prog.combine_plan;
  EXPECT_EQ(p.keyin_var, "word");
  EXPECT_EQ(p.valuein_var, "val");
  const VarPlan* prev = p.FindVar("prevWord");
  ASSERT_NE(prev, nullptr);
  EXPECT_EQ(prev->cls, VarClass::kFirstPrivate);
  const VarPlan* count = p.FindVar("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->cls, VarClass::kFirstPrivate);
  // Scratch variables are plain private.
  EXPECT_EQ(p.FindVar("word")->cls, VarClass::kPrivate);
  EXPECT_EQ(p.FindVar("read")->cls, VarClass::kPrivate);
}

TEST(Translator, SharedROScalarGoesToConstant) {
  auto prog = Translate(R"(
int main() {
  int k; double threshold;
  int key, value;
  k = 4; threshold = 0.5;
  #pragma mapreduce mapper key(key) value(value) sharedRO(k, threshold)
  while (key < k) { value = (int) threshold + k; key++; }
  return 0;
})");
  const KernelPlan& p = *prog.map_plan;
  EXPECT_EQ(p.FindVar("k")->cls, VarClass::kSharedROScalar);
  EXPECT_EQ(p.FindVar("threshold")->cls, VarClass::kSharedROScalar);
}

TEST(Translator, SharedROArrayGoesToGlobal) {
  auto prog = Translate(R"(
int main() {
  double table[64];
  int key, value;
  #pragma mapreduce mapper key(key) value(value) sharedRO(table)
  while (key < 4) { value = (int) table[key]; key++; }
  return 0;
})");
  EXPECT_EQ(prog.map_plan->FindVar("table")->cls, VarClass::kSharedROArray);
}

TEST(Translator, TextureClauseForcesTexture) {
  auto prog = Translate(R"(
int main() {
  double centroids[128];
  int key, value;
  #pragma mapreduce mapper key(key) value(value) texture(centroids)
  while (key < 4) { value = (int) centroids[key]; key++; }
  return 0;
})");
  EXPECT_EQ(prog.map_plan->FindVar("centroids")->cls, VarClass::kTexture);
}

TEST(Translator, TextureOnScalarRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  double x; int key, value;
  #pragma mapreduce mapper key(key) value(value) texture(x)
  while (key < 4) { value = (int) x; key++; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, SharedROWrittenRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int x; int key, value;
  #pragma mapreduce mapper key(key) value(value) sharedRO(x)
  while (key < 4) { x = 1; value = x; key++; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, AutomaticFirstprivateDetection) {
  const char* src = R"(
int main() {
  int seeded; seeded = 42;
  int key, value;
  #pragma mapreduce mapper key(key) value(value)
  while (key < 4) { value = seeded + key; key++; }
  return 0;
})";
  auto on = Translate(src);
  EXPECT_EQ(on.map_plan->FindVar("seeded")->cls, VarClass::kFirstPrivate);
  TranslateOptions opts;
  opts.auto_firstprivate = false;
  auto off = Translate(src, opts);
  EXPECT_EQ(off.map_plan->FindVar("seeded")->cls, VarClass::kPrivate);
}

TEST(Translator, MissingKeyClauseRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int v;
  #pragma mapreduce mapper value(v)
  while (v < 1) { v++; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, KeyinOnMapperRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int k, v;
  #pragma mapreduce mapper key(k) value(v) keyin(k)
  while (v < 1) { v++; k = v; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, CombinerWithoutKeyinRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int k, v;
  #pragma mapreduce combiner key(k) value(v)
  while (v < 1) { v++; k = v; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, KvpairsOnCombinerRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int k, v, ki, vi;
  #pragma mapreduce combiner key(k) value(v) keyin(ki) valuein(vi) kvpairs(4)
  while (scanf("%d %d", &ki, &vi) == 2) { k = ki; v = vi; printf("%d %d", k, v); }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, ClauseNamingUnusedVariableRejected) {
  EXPECT_THROW(Translate(R"(
int main() {
  int k, v, ghost;
  #pragma mapreduce mapper key(k) value(v) sharedRO(ghost)
  while (v < 1) { v++; k = v; }
  return 0;
})"),
               TranslateError);
}

TEST(Translator, LaunchHintsParsed) {
  auto prog = Translate(R"(
int main() {
  int k, v;
  #pragma mapreduce mapper key(k) value(v) kvpairs(12) blocks(30) threads(256)
  while (v < 1) { v++; k = v; }
  return 0;
})");
  EXPECT_EQ(prog.map_plan->kvpairs_hint, 12);
  EXPECT_EQ(prog.map_plan->blocks_hint, 30);
  EXPECT_EQ(prog.map_plan->threads_hint, 256);
}

TEST(Translator, NumericKeySlotUsesTextWidth) {
  auto prog = Translate(R"(
int main() {
  int bin; double v;
  #pragma mapreduce mapper key(bin) value(v)
  while (bin < 4) { v = bin * 2.0; bin++; printf("%d\t%f\n", bin, v); }
  return 0;
})");
  TranslateOptions defaults;
  EXPECT_EQ(prog.map_plan->kv.key_slot_bytes, defaults.int_text_bytes);
  EXPECT_EQ(prog.map_plan->kv.val_slot_bytes, defaults.double_text_bytes);
}

TEST(Translator, DirectiveOnForLoopAccepted) {
  auto prog = Translate(R"(
int main() {
  int k, v, i;
  #pragma mapreduce mapper key(k) value(v)
  for (i = 0; i < 4; i++) {
    k = i;
    v = i * i;
    printf("%d\t%d\n", k, v);
  }
  return 0;
})");
  EXPECT_EQ(prog.map_plan->region->kind, minic::StmtKind::kFor);
}

TEST(Translator, SharedROScalarUsableAlongsideTexture) {
  auto prog = Translate(R"(
int main() {
  double table[32];
  int k_count;
  int key, value, i;
  k_count = 4;
  for (i = 0; i < 32; i++) table[i] = i;
  #pragma mapreduce mapper key(key) value(value) texture(table) \
    sharedRO(k_count)
  while (key < k_count) { value = (int) table[key]; key++; }
  return 0;
})");
  EXPECT_EQ(prog.map_plan->FindVar("table")->cls, VarClass::kTexture);
  EXPECT_EQ(prog.map_plan->FindVar("k_count")->cls,
            VarClass::kSharedROScalar);
}

TEST(Translator, NoDirectiveRejected) {
  EXPECT_THROW(Translate("int main() { return 0; }"), TranslateError);
}

TEST(Translator, NoMainRejected) {
  EXPECT_THROW(Translate("int helper() { return 0; }"), TranslateError);
}

TEST(Translator, MapAndCombineInOneProgram) {
  // A single source can carry both phases (the runtime picks by phase).
  auto prog = Translate(R"(
int main() {
  char key[8]; int v, ki, vi;
  #pragma mapreduce mapper key(key) value(v)
  while ((v = getline(&key, &v, stdin)) != -1) { printf("%s\t%d\n", key, v); }
  #pragma mapreduce combiner key(key) value(v) keyin(key) valuein(vi)
  {
    while (scanf("%s %d", key, &vi) == 2) { v += vi; }
  }
  return 0;
})");
  EXPECT_TRUE(prog.map_plan.has_value());
  EXPECT_TRUE(prog.combine_plan.has_value());
}

}  // namespace
}  // namespace hd::translator
