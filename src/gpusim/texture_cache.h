// LRU model of the per-SM read-only texture cache.
//
// The paper's `texture` clause places read-only arrays in texture memory
// because its separate on-chip cache pays off for random accesses (§3.2);
// Fig. 7a shows ~2x map-kernel speedups for kmeans/classification. This
// small simulator reproduces that effect: repeated reads of a working set
// that fits in the cache hit at on-chip latency.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/check.h"

namespace hd::gpusim {

class TextureCacheSim {
 public:
  // `capacity_lines` cache lines of `line_bytes` each.
  TextureCacheSim(int capacity_lines, int line_bytes)
      : capacity_(capacity_lines), line_bytes_(line_bytes) {
    HD_CHECK(capacity_lines > 0);
    HD_CHECK(line_bytes > 0);
  }

  // Records an access to [byte_offset, byte_offset + bytes) of the object
  // identified by `obj_id`. Returns the number of line misses (0 when fully
  // cached).
  int Access(const void* obj_id, std::int64_t byte_offset, std::int64_t bytes);

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  void Reset();

 private:
  struct Key {
    const void* obj;
    std::int64_t line;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<const void*>()(k.obj) ^
             std::hash<std::int64_t>()(k.line * 0x9e3779b97f4a7c15ULL);
    }
  };

  bool Touch(const Key& k);

  int capacity_;
  int line_bytes_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace hd::gpusim
