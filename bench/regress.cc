// Continuous-benchmark harness: runs the figure/multijob bench suite and
// writes one schema-versioned "heterodoop.bench-suite.v1" document
// (BENCH_<rev>.json) that `hdprof compare` diffs across revisions.
//
//   regress [--smoke] [--rev <id>] [--out <path>] [--bin-dir <dir>]
//
// Each suite member is executed as a child process with --quiet --json so
// the harness consumes exactly the artifact users see; --smoke shrinks the
// inputs for CI. Because the simulator is deterministic, two runs of the
// same revision produce byte-identical suite documents — except des_scale's
// "pinned." wall-clock throughput metrics, which hdprof compare scores
// against its separate, generous pinned threshold.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "prof/regress.h"

namespace {

const char* const kSuite[] = {
    "fig4a_cluster1",     "fig4b_cluster2", "fig5_task_speedup",
    "fig6_breakdown",     "fig7_optimizations",
    "multijob_throughput", "stream_steady",  "des_scale",
    "fault_sweep",
};

[[noreturn]] void Usage(int code) {
  std::fprintf(stderr,
               "usage: regress [--smoke] [--rev <id>] [--out <path>] "
               "[--bin-dir <dir>]\n"
               "  --smoke          run the suite on shrunk inputs\n"
               "  --rev <id>       revision id recorded in the document "
               "(default: dev)\n"
               "  --out <path>     output path (default: BENCH_<rev>.json)\n"
               "  --bin-dir <dir>  where the bench binaries live (default: "
               "this binary's directory)\n");
  std::exit(code);
}

std::string Dirname(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    throw std::runtime_error("cannot read '" + path + "'");
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string rev = "dev";
  std::string out_path;
  std::string bin_dir = Dirname(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Usage(2);
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--rev") {
      rev = value();
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--bin-dir") {
      bin_dir = value();
    } else if (arg == "--help" || arg == "-h") {
      Usage(0);
    } else {
      Usage(2);
    }
  }
  if (out_path.empty()) out_path = "BENCH_" + rev + ".json";

  hd::prof::Suite suite;
  suite.rev = rev;
  suite.smoke = smoke;
  try {
    for (const char* name : kSuite) {
      const std::string report = out_path + "." + name + ".tmp";
      std::string cmd = "\"" + bin_dir + "/" + name + "\" --quiet --json \"" +
                        report + "\"";
      if (smoke) cmd += " --smoke";
      std::cout << "regress: running " << name << (smoke ? " (smoke)" : "")
                << "...\n"
                << std::flush;
      const int status = std::system(cmd.c_str());
      if (status != 0) {
        std::fprintf(stderr, "regress: '%s' exited with status %d\n",
                     cmd.c_str(), status);
        return 1;
      }
      suite.runs.push_back(hd::prof::RunFromBenchReport(ReadFile(report)));
      std::remove(report.c_str());
    }

    std::ofstream f(out_path, std::ios::binary);
    if (!f.good()) {
      std::fprintf(stderr, "regress: cannot open '%s'\n", out_path.c_str());
      return 1;
    }
    hd::prof::WriteSuite(f, suite);
    if (!f.good()) {
      std::fprintf(stderr, "regress: write to '%s' failed\n",
                   out_path.c_str());
      return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "regress: %s\n", e.what());
    return 1;
  }
  std::cout << "regress: wrote " << out_path << " (" << suite.runs.size()
            << " benchmarks, rev " << rev << ")\n";
  return 0;
}
