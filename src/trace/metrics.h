// Typed metrics registry: named counters, gauges and sample distributions
// with a deterministic flat-JSON export.
//
// The registry complements the event trace (trace.h): spans answer "where
// did the time go in this run", the registry answers "what were the totals"
// — task counts, KV volumes, texture hit rates, latency percentiles —
// in a machine-readable form every bench/test shares. Like the Sink, a
// null Registry* means "off" at every instrumentation site.
//
// Export is a single flat JSON object sorted by metric name: counters as
// integers, gauges as numbers, distributions expanded to
// `<name>.count/min/mean/p50/p95/p99/p999/max` (nearest-rank percentiles
// from common/stats.h, deterministic for a given sample set). Flat keys keep
// downstream validation trivial (`json.load` + key lookup, no schema
// walker).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hd::trace {

class Counter {
 public:
  void Add(std::int64_t n = 1) { value_ += n; }
  void Set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A recorded sample set summarised at export time.
class Distribution {
 public:
  void Record(double x) { samples_.push_back(x); }
  std::int64_t count() const {
    return static_cast<std::int64_t>(samples_.size());
  }
  double Min() const;
  double Max() const;
  double Mean() const;
  // Nearest-rank percentile, q in [0, 1].
  double Percentile(double q) const;

 private:
  std::vector<double> samples_;
};

class Registry {
 public:
  // Lookup-or-create. References stay valid for the Registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Distribution& distribution(std::string_view name);

  // Lookup-only; nullptr when the metric was never touched.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Distribution* FindDistribution(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && distributions_.empty();
  }

  // The flat metrics JSON object described above.
  void WriteJson(std::ostream& os) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Distribution, std::less<>> distributions_;
};

}  // namespace hd::trace
