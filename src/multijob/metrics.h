// Per-job and cluster-level metrics for multi-job workloads: queue wait,
// end-to-end latency percentiles, makespan, slot utilization and GPU
// contention. Everything is derived from the DES clock, so two runs of the
// same seeded workload produce bit-identical numbers.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "hadoop/cluster_core.h"

namespace hd::multijob {

struct JobStats {
  int job_id = 0;
  std::string label;  // app/bench id
  int pool = 0;       // Capacity scheduler pool
  double submit_sec = 0.0;  // absolute simulated submission time
  double start_sec = 0.0;   // first map task launch
  double finish_sec = 0.0;  // completion incl. the modeled reduce phase
  hadoop::JobResult result;

  double QueueWait() const { return start_sec - submit_sec; }
  double Latency() const { return finish_sec - submit_sec; }
};

struct WorkloadMetrics {
  std::vector<JobStats> jobs;  // in submission (job id) order
  double makespan_sec = 0.0;   // last job completion
  // Busy-slot-seconds over (slots x makespan), for the map slots.
  double cpu_utilization = 0.0;
  double gpu_utilization = 0.0;
  // Forced-GPU placements (tail forcing / GPU-first fallback) that found
  // every local GPU busy and had to bounce back to the pending queue —
  // the inter-job GPU-slot contention signal.
  std::int64_t gpu_bounces = 0;

  // Cluster-level fault/recovery accounting (all zero without an injector).
  std::int64_t nodes_crashed = 0;
  std::int64_t nodes_recovered = 0;
  std::int64_t nodes_lost = 0;         // heartbeat-expiry declarations
  std::int64_t nodes_blacklisted = 0;
  std::int64_t heartbeats_dropped = 0;
  // Alive node-seconds over registered node-seconds; with runtime resize
  // the denominator only counts the interval each tracker was a member, so
  // a cluster at partial capacity is not charged for absent trackers.
  // 1.0 without crashes.
  double availability = 1.0;

  // Runtime membership churn (zero without ScheduleJoin/ScheduleLeave).
  std::int64_t nodes_joined = 0;
  std::int64_t nodes_left = 0;
  std::int64_t leaves_refused = 0;  // blocked by min_tracker_floor
  // Quota-preemption kills across the workload (zero with budget 0).
  std::int64_t preemptions = 0;

  std::int64_t TotalCpuTasks() const;
  std::int64_t TotalGpuTasks() const;
  std::int64_t TotalTaskFailures() const;
  std::int64_t TotalTaskRetries() const;
  std::int64_t TotalKilledAttempts() const;
  std::int64_t TotalMapsReexecuted() const;
  std::int64_t TotalSpeculativeLaunched() const;
  std::int64_t TotalSpeculativeWins() const;
  std::int64_t TotalSpeculativeLosses() const;
  std::int64_t TotalPreemptedAttempts() const;
  double MeanQueueWait() const;
  // Nearest-rank percentile over per-job latencies; q in [0, 1].
  double LatencyPercentile(double q) const;
  double ThroughputJobsPerHour() const;

  // Open-loop overload accounting. When the offered rate exceeds cluster
  // capacity the queue never converges: per-job wait grows with the
  // submission index, and a single "converged" latency percentile over the
  // finite run is misleading. QueueWaitGrowth compares the mean queue wait
  // of the last third of submissions against the first third
  // (tau-smoothed so near-zero waits do not explode the ratio); a stable
  // queue keeps it near 1, an overloaded one grows without bound as the
  // job count rises.
  double QueueWaitGrowth(double tau_sec = 5.0) const;
  // Queue-stability verdict for open-loop runs: growth ratio <= 2.
  bool OpenLoopStable() const { return QueueWaitGrowth() <= 2.0; }
};

// One row per workload configuration, suitable for common/table.h benches.
void PrintSummaryRow(std::ostream& os, const WorkloadMetrics& m);

}  // namespace hd::multijob
