// Rejected by hdinfer: the combiner accumulates with floating-point
// subtraction. GPU threads combine key-group partials in a different order
// than the sequential stream, and `-=` on double is not associative under
// rounding, so the reduction cannot be parallelized as written.
int main() {
  char key[32], prevKey[32];
  double bal, delta;
  int read;
  prevKey[0] = '\0';
  bal = 0.0;
  {
    while ((read = scanf("%s %lf", key, &delta)) == 2) {
      if (strcmp(key, prevKey) != 0) {
        if (prevKey[0] != '\0')
          printf("%s\t%.4f\n", prevKey, bal);
        strcpy(prevKey, key);
        bal = 0.0;
      }
      bal -= delta;
    }
    if (prevKey[0] != '\0')
      printf("%s\t%.4f\n", prevKey, bal);
  }
  return 0;
}
