
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpurt/cpu_task.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/cpu_task.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/cpu_task.cc.o.d"
  "/root/repo/src/gpurt/gpu_task.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/gpu_task.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/gpu_task.cc.o.d"
  "/root/repo/src/gpurt/job_program.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/job_program.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/job_program.cc.o.d"
  "/root/repo/src/gpurt/kv.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/kv.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/kv.cc.o.d"
  "/root/repo/src/gpurt/kvstore.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/kvstore.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/kvstore.cc.o.d"
  "/root/repo/src/gpurt/records.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/records.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/records.cc.o.d"
  "/root/repo/src/gpurt/seqfile.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/seqfile.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/seqfile.cc.o.d"
  "/root/repo/src/gpurt/sort.cc" "src/gpurt/CMakeFiles/hd_gpurt.dir/sort.cc.o" "gcc" "src/gpurt/CMakeFiles/hd_gpurt.dir/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/hd_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/hd_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/hd_translator.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
