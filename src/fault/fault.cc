#include "fault/fault.h"

#include <algorithm>
#include <cmath>

#include "common/prng.h"

namespace hd::fault {

namespace {

// Domain-separation tags so draws at different sites never alias.
constexpr std::uint64_t kTagSlow = 0x51;
constexpr std::uint64_t kTagHeartbeat = 0xb8;
constexpr std::uint64_t kTagOom = 0x00a3;
constexpr std::uint64_t kTagFail = 0xf1;
constexpr std::uint64_t kTagFailPoint = 0xfb;

// Stateless uniform double in [0, 1) hashed from up to four components.
double HashDouble(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                  std::uint64_t b = 0, std::uint64_t c = 0) {
  std::uint64_t x = SplitMix64(seed ^ SplitMix64(tag));
  x = SplitMix64(x ^ a);
  x = SplitMix64(x ^ b);
  x = SplitMix64(x ^ c);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

void CheckProb(double p, const char* what) {
  HD_CHECK_MSG(p >= 0.0 && p <= 1.0, what << " must be a probability in"
                                          << " [0, 1], got " << p);
}

}  // namespace

void ValidateFaultSpec(const FaultSpec& spec) {
  HD_CHECK_MSG(spec.crash_mttf_sec >= 0.0,
               "crash_mttf_sec must be non-negative (0 disables crashes)");
  CheckProb(spec.permanent_fraction, "permanent_fraction");
  HD_CHECK_MSG(spec.restart_sec > 0.0, "restart_sec must be positive");
  HD_CHECK_MSG(spec.horizon_sec > 0.0, "horizon_sec must be positive");
  CheckProb(spec.heartbeat_drop_prob, "heartbeat_drop_prob");
  CheckProb(spec.cpu_fail_prob, "cpu_fail_prob");
  CheckProb(spec.gpu_fail_prob, "gpu_fail_prob");
  CheckProb(spec.gpu_oom_prob, "gpu_oom_prob");
  CheckProb(spec.slow_node_prob, "slow_node_prob");
  HD_CHECK_MSG(spec.slow_factor >= 1.0,
               "slow_factor must be >= 1 (a degradation, not a speedup)");
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {
  ValidateFaultSpec(spec_);
}

std::vector<NodeCrash> FaultInjector::CrashPlan(int num_nodes) const {
  HD_CHECK(num_nodes > 0);
  std::vector<NodeCrash> plan;
  if (spec_.crash_mttf_sec <= 0.0) return plan;
  for (int node = 0; node < num_nodes; ++node) {
    // One PRNG stream per node so the plan for node i never depends on
    // how many crashes earlier nodes drew.
    Prng prng(SplitMix64(spec_.seed) ^
              SplitMix64(0xc4a54ULL + static_cast<std::uint64_t>(node)));
    double t = 0.0;
    for (;;) {
      double u = prng.NextDouble();
      while (u <= 1e-300) u = prng.NextDouble();
      t += -spec_.crash_mttf_sec * std::log(u);
      if (t >= spec_.horizon_sec) break;
      NodeCrash c;
      c.node = node;
      c.at_sec = t;
      c.permanent = prng.NextDouble() < spec_.permanent_fraction;
      c.down_sec = c.permanent ? 0.0 : spec_.restart_sec;
      plan.push_back(c);
      if (c.permanent) break;  // the node never comes back
      t += spec_.restart_sec;  // next failure can only hit a live node
    }
  }
  std::sort(plan.begin(), plan.end(), [](const NodeCrash& a,
                                         const NodeCrash& b) {
    return a.at_sec != b.at_sec ? a.at_sec < b.at_sec : a.node < b.node;
  });
  return plan;
}

double FaultInjector::SlowFactor(int node) const {
  if (spec_.slow_node_prob <= 0.0) return 1.0;
  const double u = HashDouble(spec_.seed, kTagSlow,
                              static_cast<std::uint64_t>(node));
  return u < spec_.slow_node_prob ? spec_.slow_factor : 1.0;
}

bool FaultInjector::DropHeartbeat(int node, std::int64_t seq) const {
  if (spec_.heartbeat_drop_prob <= 0.0) return false;
  return HashDouble(spec_.seed, kTagHeartbeat,
                    static_cast<std::uint64_t>(node),
                    static_cast<std::uint64_t>(seq)) <
         spec_.heartbeat_drop_prob;
}

AttemptOutcome FaultInjector::DrawAttempt(int job, int task, int attempt,
                                          bool on_gpu) const {
  const auto j = static_cast<std::uint64_t>(job);
  const auto t = static_cast<std::uint64_t>(task);
  const auto a = static_cast<std::uint64_t>(attempt);
  if (on_gpu) {
    if (spec_.gpu_oom_prob > 0.0 &&
        HashDouble(spec_.seed, kTagOom, j, t, a) < spec_.gpu_oom_prob) {
      return AttemptOutcome::kDeviceOom;
    }
    if (spec_.gpu_fail_prob > 0.0 &&
        HashDouble(spec_.seed, kTagFail, j, t, a ^ 0x8000u) <
            spec_.gpu_fail_prob) {
      return AttemptOutcome::kFail;
    }
    return AttemptOutcome::kOk;
  }
  if (spec_.cpu_fail_prob > 0.0 &&
      HashDouble(spec_.seed, kTagFail, j, t, a) < spec_.cpu_fail_prob) {
    return AttemptOutcome::kFail;
  }
  return AttemptOutcome::kOk;
}

double FaultInjector::FailPoint(int job, int task, int attempt) const {
  return 0.1 + 0.8 * HashDouble(spec_.seed, kTagFailPoint,
                                static_cast<std::uint64_t>(job),
                                static_cast<std::uint64_t>(task),
                                static_cast<std::uint64_t>(attempt));
}

}  // namespace hd::fault
