#include "hdfs/hdfs.h"

#include <algorithm>

namespace hd::hdfs {

Hdfs::Hdfs(int num_datanodes, HdfsConfig config, std::uint64_t placement_seed)
    : num_datanodes_(num_datanodes),
      config_(config),
      prng_(placement_seed),
      usage_(static_cast<std::size_t>(num_datanodes), 0) {
  HD_CHECK(num_datanodes > 0);
  HD_CHECK(config_.replication >= 1);
  HD_CHECK_MSG(config_.replication <= num_datanodes,
               "replication factor exceeds cluster size");
}

std::vector<int> Hdfs::PlaceReplicas() {
  // Primary replica round-robins over DataNodes (writer-local placement in
  // real HDFS; round-robin spreads load for generated inputs). Secondary
  // replicas land on distinct random nodes.
  std::vector<int> replicas;
  replicas.push_back(next_node_);
  next_node_ = (next_node_ + 1) % num_datanodes_;
  while (static_cast<int>(replicas.size()) < config_.replication) {
    const int candidate =
        static_cast<int>(prng_.NextBounded(static_cast<std::uint64_t>(num_datanodes_)));
    if (std::find(replicas.begin(), replicas.end(), candidate) ==
        replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

void Hdfs::PutFile(const std::string& path, std::vector<std::string> splits) {
  HD_CHECK_MSG(!files_.count(path), "file '" << path << "' already exists");
  File f;
  for (std::size_t i = 0; i < splits.size(); ++i) {
    SplitInfo s;
    s.path = path;
    s.index = static_cast<int>(i);
    s.bytes = static_cast<std::int64_t>(splits[i].size());
    HD_CHECK_MSG(s.bytes <= config_.block_size,
                 "split " << i << " exceeds the HDFS block size");
    s.replicas = PlaceReplicas();
    for (int r : s.replicas) usage_[r] += s.bytes;
    f.splits.push_back(std::move(s));
  }
  f.contents = std::move(splits);
  files_.emplace(path, std::move(f));
}

void Hdfs::PutSyntheticFile(const std::string& path, int num_splits,
                            std::int64_t bytes_per_split) {
  HD_CHECK_MSG(!files_.count(path), "file '" << path << "' already exists");
  HD_CHECK(num_splits >= 0);
  HD_CHECK_MSG(bytes_per_split <= config_.block_size,
               "split size exceeds the HDFS block size");
  File f;
  for (int i = 0; i < num_splits; ++i) {
    SplitInfo s;
    s.path = path;
    s.index = i;
    s.bytes = bytes_per_split;
    s.replicas = PlaceReplicas();
    for (int r : s.replicas) usage_[r] += s.bytes;
    f.splits.push_back(std::move(s));
  }
  files_.emplace(path, std::move(f));
}

bool Hdfs::Exists(const std::string& path) const { return files_.count(path); }

void Hdfs::Delete(const std::string& path) {
  auto it = files_.find(path);
  HD_CHECK_MSG(it != files_.end(), "no such file '" << path << "'");
  for (const auto& s : it->second.splits) {
    for (int r : s.replicas) usage_[r] -= s.bytes;
  }
  files_.erase(it);
}

const Hdfs::File& Hdfs::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  HD_CHECK_MSG(it != files_.end(), "no such file '" << path << "'");
  return it->second;
}

int Hdfs::NumSplits(const std::string& path) const {
  return static_cast<int>(GetFile(path).splits.size());
}

const SplitInfo& Hdfs::Split(const std::string& path, int index) const {
  const File& f = GetFile(path);
  HD_CHECK(index >= 0 && index < static_cast<int>(f.splits.size()));
  return f.splits[static_cast<std::size_t>(index)];
}

std::vector<SplitInfo> Hdfs::Splits(const std::string& path) const {
  return GetFile(path).splits;
}

bool Hdfs::HasContent(const std::string& path) const {
  return !GetFile(path).contents.empty();
}

const std::string& Hdfs::SplitContent(const std::string& path,
                                      int index) const {
  const File& f = GetFile(path);
  HD_CHECK_MSG(!f.contents.empty(),
               "file '" << path << "' is synthetic (no content)");
  HD_CHECK(index >= 0 && index < static_cast<int>(f.contents.size()));
  return f.contents[static_cast<std::size_t>(index)];
}

std::int64_t Hdfs::NodeUsage(int node) const {
  HD_CHECK(node >= 0 && node < num_datanodes_);
  return usage_[static_cast<std::size_t>(node)];
}

std::int64_t Hdfs::TotalBytes(const std::string& path) const {
  std::int64_t total = 0;
  for (const auto& s : GetFile(path).splits) total += s.bytes;
  return total;
}

}  // namespace hd::hdfs
