// Helpers shared by the golden reference implementations. These replicate
// the mini-C helper functions bit-for-bit (same truncation, same parsing)
// so integer-aggregation benchmarks compare exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hd::apps {

// Replicates getWord (Listing 1): alphanumeric runs, truncated to
// max_word-1 chars; an overlong run continues as further words.
std::vector<std::string> ExtractWords(const std::string& split, int max_word);

// Whitespace tokens of one record.
std::vector<std::string> RecordTokens(const std::string& record);

// Splits a fileSplit into newline-terminated records (mirroring getline).
std::vector<std::string> Records(const std::string& split);

// snprintf(fmt, v) — the exact rendering printf/sprintf apply.
std::string RenderF(const char* fmt, double v);

// The shared 32x64 centroid table of KM/CL, replicating the mini-C LCG
// initialisation (64-bit integer arithmetic).
std::vector<double> KmeansCentroids();

}  // namespace hd::apps
