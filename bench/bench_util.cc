#include "bench/bench_util.h"

#include "common/stats.h"

namespace hd::bench {

gpurt::GpuTaskOptions BaselineGpuOptions() {
  gpurt::GpuTaskOptions o;
  o.vectorize_map = false;
  o.vectorize_combine = false;
  o.use_texture = false;
  o.record_stealing = false;
  o.aggregate_before_sort = false;
  return o;
}

MeasuredTask MeasureTask(const apps::Benchmark& bench,
                         const MeasureConfig& config) {
  gpurt::JobProgram job = gpurt::CompileJob(
      bench.map_source, bench.combine_source, bench.reduce_source);
  const std::string split = bench.generate(config.split_bytes, config.seed);
  const int reducers = bench.map_only ? 0 : bench.num_reducers();

  MeasuredTask m;
  {
    gpurt::CpuTaskOptions copts;
    copts.num_reducers = reducers;
    copts.io = config.io;
    copts.sink = config.sink;
    copts.metrics = config.metrics;
    copts.track = config.track;
    copts.trace_origin_sec = config.trace_origin_sec;
    if (config.sink != nullptr) {
      config.sink->NameThread(copts.track, bench.id + " cpu");
    }
    m.cpu = gpurt::CpuMapTask(job, config.cpu, copts).Run(split);
  }
  {
    gpusim::GpuDevice device(config.device);
    gpurt::GpuTaskOptions gopts;
    gopts.num_reducers = reducers;
    gopts.io = config.io;
    gopts.sink = config.sink;
    gopts.metrics = config.metrics;
    gopts.track = {config.track.pid, config.track.tid + 4};
    gopts.trace_origin_sec = config.trace_origin_sec;
    if (config.sink != nullptr) {
      config.sink->NameThread(gopts.track, bench.id + " gpu");
    }
    m.gpu = gpurt::GpuMapTask(job, &device, gopts).Run(split);
  }
  if (config.measure_baseline) {
    gpusim::GpuDevice device(config.device);
    gpurt::GpuTaskOptions gopts = BaselineGpuOptions();
    gopts.num_reducers = reducers;
    gopts.io = config.io;
    gopts.sink = config.sink;
    // The baseline run shares the registry's "gpurt.gpu" prefix with the
    // optimised run; keep it off the registry so totals stay per-config.
    gopts.track = {config.track.pid,
                   config.track.tid + 4 + config.gpu_lane_stride};
    gopts.trace_origin_sec = config.trace_origin_sec;
    if (config.sink != nullptr) {
      config.sink->NameThread(gopts.track, bench.id + " gpu baseline");
    }
    m.gpu_baseline = gpurt::GpuMapTask(job, &device, gopts).Run(split);
  }
  return m;
}

double GeoMean(const std::vector<double>& xs) { return stats::GeoMean(xs); }

}  // namespace hd::bench
