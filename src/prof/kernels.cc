#include "prof/kernels.h"

#include <algorithm>
#include <map>

namespace hd::prof {

std::string KernelStats::Bound() const {
  if (dram_roof_cycles >= compute_cycles && dram_roof_cycles >= mem_cycles) {
    return "dram";
  }
  return compute_cycles >= mem_cycles ? "compute" : "latency";
}

KernelProfile ProfileKernels(const TraceFile& trace) {
  std::map<std::string, KernelStats> by_name;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase != 'X' || e.category != "kernel") continue;
    KernelStats& k = by_name[e.name];
    k.name = e.name;
    ++k.launches;
    k.total_sec += e.dur_sec;
    k.device_cycles += e.ArgNumber("device_cycles");
    k.compute_cycles += e.ArgNumber("compute_cycles");
    k.mem_cycles += e.ArgNumber("mem_cycles");
    k.dram_roof_cycles += e.ArgNumber("dram_roof_cycles");
    k.transactions += static_cast<std::int64_t>(e.ArgNumber("transactions"));
    k.bytes_moved += static_cast<std::int64_t>(e.ArgNumber("bytes_moved"));
    k.mem_requests +=
        static_cast<std::int64_t>(e.ArgNumber("mem_requests"));
    k.bytes_requested +=
        static_cast<std::int64_t>(e.ArgNumber("bytes_requested"));
    k.shared_accesses +=
        static_cast<std::int64_t>(e.ArgNumber("shared_accesses"));
    k.shared_bank_conflicts +=
        static_cast<std::int64_t>(e.ArgNumber("shared_bank_conflicts"));
    k.atomic_conflicts +=
        static_cast<std::int64_t>(e.ArgNumber("atomic_conflicts"));
    k.divergence_weighted += e.ArgNumber("divergence") * e.dur_sec;
    const double hit_rate = e.ArgNumber("texture_hit_rate");
    if (hit_rate > 0.0) {
      k.texture_hit_weighted += hit_rate * e.dur_sec;
      k.texture_weight += e.dur_sec;
    }
  }

  KernelProfile p;
  p.kernels.reserve(by_name.size());
  for (auto& [name, k] : by_name) {
    p.total_sec += k.total_sec;
    p.kernels.push_back(std::move(k));
  }
  std::sort(p.kernels.begin(), p.kernels.end(),
            [](const KernelStats& a, const KernelStats& b) {
              if (a.total_sec != b.total_sec) return a.total_sec > b.total_sec;
              return a.name < b.name;
            });
  return p;
}

}  // namespace hd::prof
