#include "multijob/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hd::multijob {

std::int64_t WorkloadMetrics::TotalCpuTasks() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.cpu_tasks;
  return n;
}

std::int64_t WorkloadMetrics::TotalGpuTasks() const {
  std::int64_t n = 0;
  for (const auto& j : jobs) n += j.result.gpu_tasks;
  return n;
}

double WorkloadMetrics::MeanQueueWait() const {
  if (jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& j : jobs) sum += j.QueueWait();
  return sum / static_cast<double>(jobs.size());
}

double WorkloadMetrics::LatencyPercentile(double q) const {
  HD_CHECK(q >= 0.0 && q <= 1.0);
  if (jobs.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(jobs.size());
  for (const auto& j : jobs) lat.push_back(j.Latency());
  std::sort(lat.begin(), lat.end());
  // Nearest-rank: smallest latency with at least q of the mass below it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(lat.size())));
  return lat[rank == 0 ? 0 : rank - 1];
}

double WorkloadMetrics::ThroughputJobsPerHour() const {
  if (makespan_sec <= 0.0) return 0.0;
  return static_cast<double>(jobs.size()) * 3600.0 / makespan_sec;
}

void PrintSummaryRow(std::ostream& os, const WorkloadMetrics& m) {
  os << "jobs=" << m.jobs.size() << " makespan=" << m.makespan_sec
     << "s p50=" << m.LatencyPercentile(0.50)
     << "s p95=" << m.LatencyPercentile(0.95)
     << "s p99=" << m.LatencyPercentile(0.99)
     << "s wait=" << m.MeanQueueWait() << "s cpu=" << m.cpu_utilization
     << " gpu=" << m.gpu_utilization << " bounces=" << m.gpu_bounces << "\n";
}

}  // namespace hd::multijob
