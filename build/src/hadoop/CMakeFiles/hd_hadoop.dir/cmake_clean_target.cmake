file(REMOVE_RECURSE
  "libhd_hadoop.a"
)
