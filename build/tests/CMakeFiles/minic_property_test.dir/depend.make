# Empty dependencies file for minic_property_test.
# This may be replaced when dependencies are built.
